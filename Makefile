GO ?= go

# Micro/hot-path benchmarks run long enough for stable numbers; the
# macro sweeps (full registry, full deployment, per-figure regeneration)
# are run once — their headline metrics are simulated time, which does not
# depend on iteration count.
MICRO ?= BenchmarkSimEventThroughput|BenchmarkTrace|BenchmarkAoEHeaderMarshal|BenchmarkBitmap|BenchmarkStoreWrite|BenchmarkMediatedReadRedirect
MACRO ?= BenchmarkRegistrySweep|BenchmarkDeployment|BenchmarkAblation

.PHONY: test bench bench-smoke

test:
	$(GO) build ./...
	$(GO) test ./...

# bench regenerates BENCH_results.json, the tracked perf baseline future
# PRs are measured against. Micro and macro passes are concatenated into
# one parse.
bench:
	( $(GO) test -run '^$$' -bench '$(MICRO)' -benchmem -benchtime=1s -count 1 . && \
	  $(GO) test -run '^$$' -bench '$(MACRO)' -benchmem -benchtime=1x -count 1 . ) \
	| $(GO) run ./cmd/bench2json -out BENCH_results.json

# bench-smoke is the CI variant: every benchmark once, just to prove the
# harness and all benchmark code paths still run end to end.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x -count 1 . \
	| $(GO) run ./cmd/bench2json -out BENCH_results.json
