GO ?= go

# Micro/hot-path benchmarks run long enough for stable numbers; the
# macro sweeps (full registry, full deployment, per-figure regeneration)
# are run for one iteration — their headline metrics are simulated time,
# which does not depend on iteration count. The gated targets (bench,
# bench-rebase, bench-compare) run each suite with -count 3 and bench2json
# keeps the minimum ns/op across repeats: host steal on shared machines
# only ever adds wall time, so min-of-3 estimates the true cost and keeps
# the ±20% compare gate from flapping. That triples the wall time of a
# gated bench run; bench-smoke stays single-shot.
MICRO ?= BenchmarkSimEventThroughput|BenchmarkTrace|BenchmarkAoEHeaderMarshal|BenchmarkBitmap|BenchmarkStoreWrite|BenchmarkMediatedReadRedirect|BenchmarkHistogramPercentile
MACRO ?= BenchmarkRegistrySweep|BenchmarkDeployment|BenchmarkFleetDeploy|BenchmarkElasticity|BenchmarkAblation

BMCASTLINT := bin/bmcastlint
# LINTJSON, when set, makes the lint target append every bmcastlint
# finding to this file as NDJSON (one record per finding); CI sets it
# and uploads the file as the lint artifact.
LINTJSON ?=

.PHONY: test bench bench-rebase bench-smoke bench-compare lint check chaos elasticity

test:
	$(GO) build ./...
	$(GO) test ./...

# chaos runs the fault-injection and recovery suite under the race
# detector: the scripted fault schedules (internal/faults), the crash /
# failover / watchdog scenarios in vblade, aoe, core, cloud and testbed,
# and the top-level determinism-under-faults replay check.
chaos:
	$(GO) test -race -count=1 \
		./internal/faults/ ./internal/ethernet/ ./internal/vblade/ ./internal/aoe/
	$(GO) test -race -count=1 \
		-run 'Fault|Failover|Watchdog|Deadline|Crash|Chaos|DeadServer|Redeploy|MediaError|StopMidFlight' \
		./internal/core/ ./internal/cloud/ ./internal/testbed/ .

# elasticity runs the control-plane robustness suite under the race
# detector: admission/shedding, retry budgets, quarantine/probation,
# storm schedules, the tenant generator, and the end-to-end
# graceful-degradation cell.
elasticity:
	$(GO) test -race -count=1 \
		-run 'Frontend|Admission|Quarantine|DoubleRelease|Backoff|Retry' ./internal/cloud/
	$(GO) test -race -count=1 -run 'Storm|ZeroDuration|Overlapping' ./internal/faults/
	$(GO) test -race -count=1 ./internal/tenants/
	$(GO) test -race -count=1 -run 'Elasticity' ./internal/experiments/

# lint builds the repository's own vet tool and runs the bmcastlint
# analyzer suite — the syntactic checks (walltime, seededrand, simdrift,
# mapiter — DESIGN.md §7) and the CFG-based dataflow checks (spanleak,
# causerestore, framebalance, pooledrelease — DESIGN.md §11) — over
# every package via the go vet driver, including cmd/ and the lint
# packages themselves, then the third-party checkers when available. CI
# installs staticcheck and govulncheck at pinned versions
# (.github/workflows/ci.yml); local runs skip them with a notice when
# they are not on PATH, because the build container has no module proxy
# to install them from (which is also why they are pinned in the
# workflow rather than via go.mod tool directives).
lint:
	$(GO) build -o $(BMCASTLINT) ./cmd/bmcastlint
	BMCASTLINT_JSON=$(LINTJSON) $(GO) vet -vettool=$(BMCASTLINT) ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed; skipping (CI runs it pinned)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not installed; skipping (CI runs it pinned)"; fi

# check is the default pre-push gate: build + tests + the full lint suite.
check: test lint

# bench regenerates BENCH_results.json, the tracked perf baseline future
# PRs are measured against. Micro and macro passes are concatenated into
# one parse. The new numbers are gated against the previous baseline first
# (-compare exits non-zero on >20% ns/op or any allocs/op regression), so a
# regression leaves the tracked file untouched.
bench:
	( $(GO) test -run '^$$' -bench '$(MICRO)' -benchmem -benchtime=1s -count 3 . && \
	  $(GO) test -run '^$$' -bench '$(MACRO)' -benchmem -benchtime=1x -count 3 . ) \
	| $(GO) run ./cmd/bench2json -out BENCH_results.new.json -compare BENCH_results.json
	mv BENCH_results.new.json BENCH_results.json

# bench-rebase regenerates the baseline without the regression gate — for
# deliberate suite-shape changes (a new benchmark, a cell added to the
# registry sweep) where the old numbers are not comparable.
bench-rebase:
	( $(GO) test -run '^$$' -bench '$(MICRO)' -benchmem -benchtime=1s -count 3 . && \
	  $(GO) test -run '^$$' -bench '$(MACRO)' -benchmem -benchtime=1x -count 3 . ) \
	| $(GO) run ./cmd/bench2json -out BENCH_results.json

# bench-compare runs the tracked benchmark suite and checks it against the
# committed baseline without rewriting it; BENCH_compare.json is the fresh
# run (CI uploads it as an artifact).
bench-compare:
	( $(GO) test -run '^$$' -bench '$(MICRO)' -benchmem -benchtime=1s -count 3 . && \
	  $(GO) test -run '^$$' -bench '$(MACRO)' -benchmem -benchtime=1x -count 3 . ) \
	| $(GO) run ./cmd/bench2json -out BENCH_compare.json -compare BENCH_results.json

# bench-smoke is the CI variant: every benchmark once, just to prove the
# harness and all benchmark code paths still run end to end.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x -count 1 . \
	| $(GO) run ./cmd/bench2json -out BENCH_results.json
