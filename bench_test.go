package bmcast

// The benchmark harness: one testing.B benchmark per table/figure in the
// paper's evaluation (regenerating its rows at reduced scale and reporting
// the headline metrics), plus micro-benchmarks of the core data paths and
// ablations of the design choices DESIGN.md calls out.
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkFig7 -benchtime=1x

import (
	"fmt"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/aoe"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/experiments"
	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/hw/nic"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/vblade"
)

// benchOpt returns reduced-scale options sized for benchmarking.
func benchOpt() experiments.Options {
	o := experiments.Quick()
	o.ImageBytes = 1 << 30
	o.DevirtImageBytes = 128 << 20
	o.DBSeconds = 10 * sim.Second
	o.MPIIterations = 10
	o.RDMAIterations = 100
	return o
}

// runFigure runs a registered experiment once per iteration.
func runFigure(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i + 1)
		tables := r.Run(opt)
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// --- one benchmark per paper table/figure --------------------------------

func BenchmarkFig4StartupTime(b *testing.B)        { runFigure(b, "fig4") }
func BenchmarkFig5Database(b *testing.B)           { runFigure(b, "fig5") }
func BenchmarkFig6MPI(b *testing.B)                { runFigure(b, "fig6") }
func BenchmarkFig7Kernbench(b *testing.B)          { runFigure(b, "fig7") }
func BenchmarkFig8Threads(b *testing.B)            { runFigure(b, "fig8") }
func BenchmarkFig9Memory(b *testing.B)             { runFigure(b, "fig9") }
func BenchmarkFig10StorageThroughput(b *testing.B) { runFigure(b, "fig10") }
func BenchmarkFig11StorageLatency(b *testing.B)    { runFigure(b, "fig11") }
func BenchmarkFig12IBThroughput(b *testing.B)      { runFigure(b, "fig12") }
func BenchmarkFig13IBLatency(b *testing.B)         { runFigure(b, "fig13") }
func BenchmarkFig14Moderation(b *testing.B)        { runFigure(b, "fig14") }

// --- full-registry sweep through the work-pool runner ---------------------

// BenchmarkRegistrySweep runs the complete experiment registry at tiny
// scale through experiments.RunAll, sequentially and with one worker per
// CPU. The two sub-benchmarks produce identical tables (the runner derives
// each cell's seed from the base seed and cell id alone); the ratio of
// their wall-clock times is the sweep's parallel speedup.
func BenchmarkRegistrySweep(b *testing.B) {
	opt := benchOpt()
	opt.ImageBytes = 128 << 20
	opt.DevirtImageBytes = 32 << 20
	opt.DBSeconds = 2 * sim.Second
	pars := []int{1, runtime.NumCPU()}
	if pars[1] == 1 {
		// One CPU: the "parallel" run would duplicate the sequential one's
		// name (testing would emit parallel-1 and parallel-1#01) and its
		// result. bench2json aggregates duplicates, but don't produce them.
		pars = pars[:1]
	}
	for _, par := range pars {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := experiments.RunAll(experiments.Registry(), opt, par)
				for _, res := range results {
					if len(res.Tables) == 0 {
						b.Fatalf("%s produced no tables", res.Runner.ID)
					}
				}
			}
		})
	}
}

// --- deployment macro-benchmark -------------------------------------------

// BenchmarkDeployment measures a full BMcast deployment (1 GB image) from
// power-on to de-virtualization, reporting instance-ready and bare-metal
// times in simulated seconds.
func BenchmarkDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testbed.DefaultConfig()
		cfg.Seed = int64(i + 1)
		cfg.ImageBytes = 1 << 30
		tb := testbed.New(cfg)
		n := tb.AddNode(cfg)
		bp := guest.DefaultBootProfile()
		bp.SpanSectors = cfg.ImageBytes / 2 / disk.SectorSize
		var ready, bare float64
		tb.K.Spawn("deploy", func(p *sim.Proc) {
			res, err := tb.DeployBMcast(p, n, core.DefaultConfig(), bp)
			if err != nil {
				b.Error(err)
				return
			}
			tb.WaitBareMetal(p, n, res)
			ready = res.GuestBooted.Sub(res.FirmwareDone).Seconds()
			bare = res.BareMetal.Sub(res.FirmwareDone).Seconds()
			tb.K.Stop()
		})
		tb.K.Run()
		if _, err := tb.VerifyDeployment(n); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ready, "sim-s/ready")
		b.ReportMetric(bare, "sim-s/baremetal")
	}
}

// BenchmarkFleetDeploy measures the fleet fast path: 32 simultaneous
// BMcast deployments streaming one 1 GB image through a single
// cache-enabled vblade. It reports the worst time-to-ready, the serving
// cache's hit rate, and the server's aggregate simulated throughput.
func BenchmarkFleetDeploy(b *testing.B) {
	const fleet = 32
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i + 1)
		r, err := experiments.FleetRun(opt, fleet, true)
		if err != nil {
			b.Fatal(err)
		}
		if r.HitRate <= 0.9 {
			b.Fatalf("fleet cache hit rate = %.4f, want > 0.9", r.HitRate)
		}
		b.ReportMetric(r.Worst.Seconds(), "sim-s/worst-ready")
		b.ReportMetric(r.ReadyP50.Seconds(), "sim-s/p50-ready")
		b.ReportMetric(r.ReadyP99.Seconds(), "sim-s/p99-ready")
		b.ReportMetric(r.HitRate, "hit-rate")
		b.ReportMetric(float64(r.Served)/r.Elapsed.Seconds()/1e6, "sim-MB/s/served")
	}
}

// fleetShards runs the fleet cell on the parallel shard executor
// (DESIGN.md §13) with the given worker count. Results are byte-identical
// at every shard count; wall-clock is what varies.
func fleetShards(b *testing.B, shards int) {
	const fleet = 32
	opt := benchOpt()
	opt.Shards = shards
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i + 1)
		r, err := experiments.FleetRun(opt, fleet, true)
		if err != nil {
			b.Fatal(err)
		}
		if r.HitRate <= 0.9 {
			b.Fatalf("fleet cache hit rate = %.4f, want > 0.9", r.HitRate)
		}
		b.ReportMetric(r.Worst.Seconds(), "sim-s/worst-ready")
		b.ReportMetric(r.ReadyP50.Seconds(), "sim-s/p50-ready")
		b.ReportMetric(r.HitRate, "hit-rate")
	}
}

// BenchmarkFleetDeployShards1 and ...Shards8 are the sharded-executor
// rows of the fleet macro-benchmark: the same cell as
// BenchmarkFleetDeploy decomposed into one domain per node plus a hub,
// run by 1 and 8 workers. Shards1 vs Shards8 is the executor's parallel
// speedup; Shards1 vs the single-kernel BenchmarkFleetDeploy is the cost
// (or win) of the decomposition itself.
func BenchmarkFleetDeployShards1(b *testing.B) { fleetShards(b, 1) }
func BenchmarkFleetDeployShards8(b *testing.B) { fleetShards(b, 8) }

// BenchmarkFleetDeployObs is the traced variant of the fleet deployment:
// 32 instances with the causal recorder attached, run to bare metal on
// every node, then pushed through the critical-path analyzer. It reports
// the fleet's time-to-bare-metal percentiles — the paper's headline
// agility numbers — and pins the cost of observing a deployment end to
// end. The image is reduced because the traced run must wait for every
// background full copy, not just guest boot.
func BenchmarkFleetDeployObs(b *testing.B) {
	const fleet = 32
	opt := benchOpt()
	opt.ImageBytes = 32 << 20
	opt.BootBytes = 1 << 20
	opt.EnableTrace = true
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i + 1)
		r, err := experiments.FleetRun(opt, fleet, true)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := obs.Analyze(r.Trace, r.Snapshot)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Instances) != fleet {
			b.Fatalf("analyzer saw %d instances, want %d", len(rep.Instances), fleet)
		}
		if rep.Fleet.BareMetal == nil {
			b.Fatal("no bare-metal percentiles in traced fleet run")
		}
		b.ReportMetric(sim.Duration(rep.Fleet.BareMetal.P50).Seconds(), "sim-s/p50-baremetal")
		b.ReportMetric(sim.Duration(rep.Fleet.BareMetal.P99).Seconds(), "sim-s/p99-baremetal")
		b.ReportMetric(float64(len(r.Trace.Spans())), "spans")
	}
}

// BenchmarkElasticity measures the elastic control plane cell: open-loop
// tenant traffic admitted through the bounded queue while the fault storm
// partitions a rack and crash-loops the storage server. It reports the
// pre-storm and recovered time-to-bare-metal percentiles — the recovery
// claim — plus how much the storm shed and quarantined.
func BenchmarkElasticity(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i + 1)
		r, err := experiments.ElasticityRun(opt, 0,
			experiments.ElasticProfile(), experiments.ElasticStorm())
		if err != nil {
			b.Fatal(err)
		}
		pre, rec := r.Phases[0], r.Phases[len(r.Phases)-1]
		b.ReportMetric(pre.BareP50.Seconds(), "sim-s/p50-baremetal-pre")
		b.ReportMetric(rec.BareP50.Seconds(), "sim-s/p50-baremetal-recovered")
		b.ReportMetric(rec.BareP99.Seconds(), "sim-s/p99-baremetal-recovered")
		b.ReportMetric(float64(r.ShedTotal), "shed")
		b.ReportMetric(float64(r.Quarantines), "quarantines")
	}
}

// --- ablations -------------------------------------------------------------

// BenchmarkAblationInterruptStrategy compares the paper's dummy-sector
// restart (real hardware raises the interrupt) against virtualized
// interrupt injection, measuring guest boot time under mediation.
func BenchmarkAblationInterruptStrategy(b *testing.B) {
	for _, virt := range []bool{false, true} {
		name := "dummy-restart"
		if virt {
			name = "virtual-irq"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := testbed.DefaultConfig()
				cfg.Seed = int64(i + 1)
				cfg.ImageBytes = 256 << 20
				tb := testbed.New(cfg)
				n := tb.AddNode(cfg)
				n.M.Firmware.InitTime = sim.Second
				vcfg := core.DefaultConfig()
				vcfg.VirtualIRQ = virt
				bp := guest.DefaultBootProfile()
				bp.TotalBytes = 16 << 20
				bp.CPUTime = sim.Second
				bp.SpanSectors = cfg.ImageBytes / 2 / disk.SectorSize
				var boot float64
				tb.K.Spawn("deploy", func(p *sim.Proc) {
					res, err := tb.DeployBMcast(p, n, vcfg, bp)
					if err != nil {
						b.Error(err)
						return
					}
					boot = res.GuestBooted.Sub(res.VMMBooted).Seconds()
					tb.K.Stop()
				})
				tb.K.Run()
				b.ReportMetric(boot, "sim-s/boot")
			}
		})
	}
}

// BenchmarkAblationPollingInterval sweeps the mediator's device polling
// interval (the paper derives it from RTT; §4.1) and reports mediated
// boot time — too coarse wastes latency, too fine wastes CPU.
func BenchmarkAblationPollingInterval(b *testing.B) {
	for _, poll := range []sim.Duration{50 * sim.Microsecond, 200 * sim.Microsecond, 600 * sim.Microsecond, 2 * sim.Millisecond} {
		b.Run(poll.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := testbed.DefaultConfig()
				cfg.Seed = int64(i + 1)
				cfg.ImageBytes = 256 << 20
				tb := testbed.New(cfg)
				n := tb.AddNode(cfg)
				n.M.Firmware.InitTime = sim.Second
				vcfg := core.DefaultConfig()
				vcfg.MinPoll, vcfg.MaxPoll = poll, poll
				bp := guest.DefaultBootProfile()
				bp.TotalBytes = 16 << 20
				bp.CPUTime = sim.Second
				bp.SpanSectors = cfg.ImageBytes / 2 / disk.SectorSize
				var boot float64
				tb.K.Spawn("deploy", func(p *sim.Proc) {
					res, err := tb.DeployBMcast(p, n, vcfg, bp)
					if err != nil {
						b.Error(err)
						return
					}
					boot = res.GuestBooted.Sub(res.VMMBooted).Seconds()
					tb.K.Stop()
				})
				tb.K.Run()
				b.ReportMetric(boot, "sim-s/boot")
			}
		})
	}
}

// BenchmarkAblationVbladePool reproduces the §4.2 server scaling: transfer
// rate against worker-pool size (1 = original single-threaded vblade).
func BenchmarkAblationVbladePool(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := sim.New(int64(i + 1))
				sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)
				cl := nic.New(k, "cl", nic.IntelPro1000, 2, sw.Connect(ethernet.GigabitJumbo()))
				sv := nic.New(k, "sv", nic.IntelX540, 1, sw.Connect(ethernet.GigabitJumbo()))
				img := disk.NewSynthImage("img", 128<<20, 7)
				srv := vblade.NewServer(k, sv, threads)
				srv.AddTarget(0, 0, img)
				srv.Start()
				in := aoe.NewInitiator(k, cl, 1, 0, 0)
				var rate float64
				k.Spawn("client", func(p *sim.Proc) {
					start := p.Now()
					const total = 64 << 20
					for lba := int64(0); lba < total/disk.SectorSize; lba += 2048 {
						if _, err := in.Read(p, lba, 2048); err != nil {
							b.Error(err)
							return
						}
					}
					rate = total / p.Now().Sub(start).Seconds()
				})
				k.Run()
				b.ReportMetric(rate/1e6, "MB/s")
			}
		})
	}
}

// --- micro-benchmarks of the core data paths -------------------------------

func BenchmarkAoEHeaderMarshal(b *testing.B) {
	h := aoe.Header{Major: 1, Tag: 0xABCDEF, Count: 17, LBA: 1 << 30, Cmd: aoe.CmdReadDMAExt}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := aoe.Unmarshal(h.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitmapMarkFilled(b *testing.B) {
	bm := core.NewBitmap(64 << 20 / disk.SectorSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lba := int64(i*2048) % (bm.Sectors() - 2048)
		bm.MarkFilled(lba, 2048)
	}
}

func BenchmarkBitmapNextUnfilled(b *testing.B) {
	bm := core.NewBitmap(32 << 30 / disk.SectorSize)
	bm.MarkFilled(0, bm.Sectors()/2) // half full: realistic mid-deployment
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := bm.NextUnfilled(int64(i)%bm.Sectors(), 2048); !ok {
			b.Fatal("bitmap unexpectedly complete")
		}
	}
}

func BenchmarkStoreWrite(b *testing.B) {
	s := disk.NewStore(1 << 21)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lba := int64(i*8) % (s.Sectors() - 8)
		s.Write(lba, 8, disk.Synth{Seed: int64(i % 7)})
	}
}

// BenchmarkTraceDisabled pins the cost of instrumentation left in place
// with no recorder attached: every call site pays one nil pointer check
// and nothing else (no allocations).
func BenchmarkTraceDisabled(b *testing.B) {
	var r *trace.Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Begin("node0", "mediator", "redirect")
		r.Emit("node0", "cpuvirt", "vm-exit")
		sp.End()
	}
}

// BenchmarkTraceEnabled is the same call sequence against a live recorder,
// for comparison with BenchmarkTraceDisabled.
func BenchmarkTraceEnabled(b *testing.B) {
	r := trace.NewRecorder(sim.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Begin("node0", "mediator", "redirect")
		r.Emit("node0", "cpuvirt", "vm-exit")
		sp.End()
	}
}

func BenchmarkSimEventThroughput(b *testing.B) {
	k := sim.New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(sim.Microsecond, tick)
		}
	}
	b.ResetTimer()
	k.After(sim.Microsecond, tick)
	k.Run()
}

func BenchmarkMediatedReadRedirect(b *testing.B) {
	// Cost of one copy-on-read redirect (4 KB), end to end through
	// mediator, AoE, server, and local write-through.
	cfg := testbed.DefaultConfig()
	cfg.ImageBytes = 8 << 30
	tb := testbed.New(cfg)
	n := tb.AddNode(cfg)
	n.M.Firmware.InitTime = sim.Second
	vcfg := core.DefaultConfig()
	vcfg.WriteInterval = sim.Hour // keep the background copy out of the way
	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 1 << 20
	bp.CPUTime = 100 * sim.Millisecond
	bp.SpanSectors = 1 << 20
	tb.K.Spawn("prep", func(p *sim.Proc) {
		if _, err := tb.DeployBMcast(p, n, vcfg, bp); err != nil {
			b.Error(err)
		}
		tb.K.Stop()
	})
	tb.K.Run()
	b.ResetTimer()
	done := false
	tb.K.Spawn("bench", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < b.N; i++ {
			lba := (1 << 21) + int64(i)*8%(4<<21)
			if _, err := n.OS.ReadSectors(p, lba, 8, true); err != nil {
				b.Error(err)
				return
			}
		}
		b.ReportMetric(p.Now().Sub(start).Seconds()*1e3/float64(b.N), "sim-ms/redirect")
		done = true
		tb.K.Stop()
	})
	for !done && tb.K.Pending() > 0 {
		tb.K.RunUntil(tb.K.Now().Add(sim.Hour))
	}
}

// BenchmarkHistogramPercentile pins the sorted-cache contract: repeated
// percentile queries against an unchanged histogram reuse one cached sort
// instead of re-sorting per call, so the steady-state query is O(1) and
// allocation-free. The fleet summary tables query p50/p99/max back to back
// on thousand-sample histograms; without the cache that path is the
// analyzer's hot spot.
func BenchmarkHistogramPercentile(b *testing.B) {
	h := &metrics.Histogram{}
	r := sim.New(7).Rand()
	for i := 0; i < 4096; i++ {
		h.Observe(sim.Duration(r.Intn(1e9)))
	}
	h.Percentile(50) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.Percentile(50) > h.Percentile(99) {
			b.Fatal("p50 above p99")
		}
	}
}
