// Package bmcast is the public API of the BMcast reproduction: an OS
// deployment system with a de-virtualizable VMM for bare-metal clouds,
// after "Improving Agility and Elasticity in Bare-metal Clouds" (Omote,
// Shinagawa, Kato — ASPLOS 2015), built on a deterministic simulation of
// the paper's testbed.
//
// The three ideas the paper contributes, and where they live here:
//
//   - Device mediators (mediator.IDE, mediator.AHCI) perform I/O
//     interpretation, redirection (copy-on-read), and multiplexing
//     (background copy) against register-level controller models, letting
//     the VMM share physical storage with an unmodified guest while the
//     guest keeps direct hardware access.
//   - The BMcast VMM (core.VMM) streams the OS image from an AoE server
//     with copy-on-read plus a moderated background copy, tracked by a
//     block bitmap with guest-write-wins consistency.
//   - Seamless de-virtualization (core.VMM.Devirtualize) removes the
//     mediator taps and turns nested paging off per CPU; afterwards guest
//     I/O provably never traps.
//
// Quick start:
//
//	cfg := bmcast.DefaultConfig()
//	tb := bmcast.NewTestbed(cfg)
//	node := tb.AddNode(cfg)
//	tb.K.Spawn("deploy", func(p *sim.Proc) {
//	    res, err := tb.DeployBMcast(p, node, bmcast.DefaultVMMConfig(), bmcast.DefaultBootProfile())
//	    ...
//	})
//	tb.K.Run()
//
// See examples/ for runnable scenarios and internal/experiments for the
// harness regenerating every figure in the paper's evaluation.
package bmcast

import (
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/guest"
	"repro/internal/report"
	"repro/internal/tenants"
	"repro/internal/testbed"
)

// Testbed is the assembled cluster: storage server, switch, IB fabric,
// and instance machines.
type Testbed = testbed.Testbed

// Node is one instance machine with its guest OS and (once deployed) VMM.
type Node = testbed.Node

// Config configures a testbed.
type Config = testbed.Config

// VMMConfig holds the BMcast VMM's tunables (copy block size, moderation
// parameters, polling bounds).
type VMMConfig = core.Config

// VMM is a running BMcast instance.
type VMM = core.VMM

// Phase is the deployment lifecycle state.
type Phase = core.Phase

// Deployment phases (paper §3.1). PhaseFailed is reached when the
// deployment watchdog gives up on a stalled or over-deadline deployment.
const (
	PhaseInitialization   = core.PhaseInitialization
	PhaseDeployment       = core.PhaseDeployment
	PhaseDevirtualization = core.PhaseDevirtualization
	PhaseBareMetal        = core.PhaseBareMetal
	PhaseFailed           = core.PhaseFailed
)

// FaultSchedule is an ordered, sim-time-stamped list of fault events
// (link down/up, partitions, corruption, server crashes, media errors)
// applied deterministically to a testbed.
type FaultSchedule = faults.Schedule

// FaultInjector applies fault schedules to registered links and servers.
type FaultInjector = faults.Injector

// ParseFaults parses the fault-schedule grammar, e.g.
// "5s crash server; 20s restart server; 30s loss node0.vmm 0.05".
func ParseFaults(input string) (FaultSchedule, error) { return faults.Parse(input) }

// BootProfile describes the guest OS boot's disk behaviour.
type BootProfile = guest.BootProfile

// BMcastResult summarizes one deployment's timeline.
type BMcastResult = testbed.BMcastResult

// NewTestbed builds a testbed with a storage server and no nodes.
func NewTestbed(cfg Config) *Testbed { return testbed.New(cfg) }

// DefaultConfig returns the paper's testbed setup (32 GB image, gigabit
// Ethernet with jumbo frames, thread-pooled AoE server).
func DefaultConfig() Config { return testbed.DefaultConfig() }

// DefaultVMMConfig returns the calibrated VMM configuration.
func DefaultVMMConfig() VMMConfig { return core.DefaultConfig() }

// DefaultBootProfile returns the calibrated Ubuntu-14.04-like boot trace.
func DefaultBootProfile() BootProfile { return guest.DefaultBootProfile() }

// ExperimentOptions scales an experiment run.
type ExperimentOptions = experiments.Options

// Experiment is one registered figure runner.
type Experiment = experiments.Runner

// Table is a rendered result table.
type Table = report.Table

// Experiments lists the figure runners reproducing the paper's
// evaluation.
func Experiments() []Experiment { return experiments.Registry() }

// PaperScale returns full paper-scale experiment options; QuickScale
// returns reduced-scale options for smoke runs and benchmarks.
func PaperScale() ExperimentOptions { return experiments.Default() }

// QuickScale returns reduced-scale experiment options.
func QuickScale() ExperimentOptions { return experiments.Quick() }

// Controller is the provisioning layer: a bare-metal cloud leasing
// machines from a pool with pluggable deployment strategies.
type Controller = cloud.Controller

// Instance is one bare-metal lease.
type Instance = cloud.Instance

// Deployment strategies for Controller.Request.
const (
	StrategyBMcast    = cloud.StrategyBMcast
	StrategyImageCopy = cloud.StrategyImageCopy
	StrategyNetboot   = cloud.StrategyNetboot
)

// NewController racks poolSize machines into tb and returns the
// provisioning controller.
func NewController(tb *Testbed, cfg Config, poolSize int) *Controller {
	return cloud.NewController(tb, cfg, poolSize)
}

// Frontend is the admission layer in front of a Controller: a bounded
// priority queue with token-bucket pacing and deadline/overflow shedding
// (DESIGN.md §12).
type Frontend = cloud.Frontend

// AdmissionConfig sizes a Frontend's queue and token bucket.
type AdmissionConfig = cloud.AdmissionConfig

// Priority orders admission: low, normal, high.
type Priority = cloud.Priority

// NewFrontend attaches an admission frontend to c.
func NewFrontend(c *Controller, cfg AdmissionConfig) *Frontend {
	return cloud.NewFrontend(c, cfg)
}

// TenantProfile shapes open-loop tenant traffic: Poisson arrivals with
// burst and diurnal modulation, weighted priorities, hold times.
type TenantProfile = tenants.Profile

// ParseTenantProfile parses the traffic grammar, e.g.
// "rate=0.25,dur=4m0s,hold=10s,deadline=40s,burst=1m0s/12s/4".
func ParseTenantProfile(input string) (TenantProfile, error) { return tenants.Parse(input) }

// StormConfig is a declarative fault storm — rack partition, server
// crash cycles, media-error bursts over one window — that lowers to a
// FaultSchedule via its Schedule method.
type StormConfig = faults.StormConfig

// ParseStorm parses the storm grammar, e.g.
// "at=1m0s,for=30s,links=node0.vmm+node1.vmm,server=server,crashes=2".
func ParseStorm(input string) (StormConfig, error) { return faults.ParseStorm(input) }
