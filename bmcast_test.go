package bmcast_test

import (
	"testing"

	bmcast "repro"
	"repro/internal/sim"
)

// TestPublicAPIDeployment drives the whole system through the public
// facade only, the way a downstream user would.
func TestPublicAPIDeployment(t *testing.T) {
	cfg := bmcast.DefaultConfig()
	cfg.ImageBytes = 64 << 20
	cfg.DiskSectors = 1 << 20
	tb := bmcast.NewTestbed(cfg)
	node := tb.AddNode(cfg)
	node.M.Firmware.InitTime = sim.Second

	vcfg := bmcast.DefaultVMMConfig()
	vcfg.WriteInterval = 2 * sim.Millisecond
	bp := bmcast.DefaultBootProfile()
	bp.TotalBytes = 8 << 20
	bp.CPUTime = 2 * sim.Second
	bp.SpanSectors = cfg.ImageBytes / 2 / 512

	var res *bmcast.BMcastResult
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		r, err := tb.DeployBMcast(p, node, vcfg, bp)
		if err != nil {
			t.Error(err)
			return
		}
		res = r
		tb.WaitBareMetal(p, node, res)
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if res == nil || node.VMM.Phase() != bmcast.PhaseBareMetal {
		t.Fatal("public-API deployment did not reach bare metal")
	}
	if _, err := tb.VerifyDeployment(node); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPICloud leases and releases instances through the facade.
func TestPublicAPICloud(t *testing.T) {
	cfg := bmcast.DefaultConfig()
	cfg.ImageBytes = 64 << 20
	cfg.DiskSectors = 1 << 20
	tb := bmcast.NewTestbed(cfg)
	c := bmcast.NewController(tb, cfg, 2)
	c.BootProfile.TotalBytes = 8 << 20
	c.BootProfile.CPUTime = sim.Second
	c.VMMConfig.WriteInterval = 2 * sim.Millisecond
	for _, n := range tb.Nodes {
		n.M.Firmware.InitTime = sim.Second
	}
	ok := false
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		in, err := c.Request(bmcast.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		ok = in.WaitReady(p)
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if !ok {
		t.Fatal("instance did not become ready via the facade")
	}
}

// TestExperimentRegistry lists and looks up every runner.
func TestExperimentRegistry(t *testing.T) {
	exps := bmcast.Experiments()
	if len(exps) < 12 {
		t.Fatalf("registry has %d runners, want >= 12", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("malformed runner %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate runner id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if bmcast.PaperScale().ImageBytes <= bmcast.QuickScale().ImageBytes {
		t.Fatal("paper scale not larger than quick scale")
	}
}
