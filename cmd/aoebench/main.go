// Command aoebench exercises the extended AoE protocol and vblade server
// standalone: fragmentation, retransmission under loss, and the
// single-thread vs worker-pool scaling the paper motivates in §4.2.
//
// Usage:
//
//	aoebench [-mb N] [-loss P] [-threads "1,2,4,8"]
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/aoe"
	"repro/internal/ethernet"
	"repro/internal/hw/disk"
	"repro/internal/hw/nic"
	"repro/internal/sim"
	"repro/internal/vblade"
)

func main() {
	mb := flag.Int64("mb", 256, "megabytes to transfer")
	loss := flag.Float64("loss", 0, "frame loss rate per hop")
	threads := flag.String("threads", "1,2,4,8", "vblade pool sizes to sweep")
	flag.Parse()

	fmt.Printf("AoE transfer of %d MB over gigabit jumbo-frame Ethernet (loss %.1f%%/hop)\n\n",
		*mb, *loss*100)
	fmt.Println("threads   MB/s   retransmits")
	for _, ts := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(ts))
		if err != nil || n < 1 {
			continue
		}
		rate, retrans := run(*mb<<20, n, *loss)
		fmt.Printf("%7d  %6.1f  %11d\n", n, rate/1e6, retrans)
	}
}

func run(bytes int64, threads int, loss float64) (rate float64, retrans int64) {
	k := sim.New(1)
	sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)
	params := ethernet.GigabitJumbo()
	params.LossRate = loss
	clLink := sw.Connect(params)
	svLink := sw.Connect(params)
	client := nic.New(k, "cl0", nic.IntelPro1000, 2, clLink)
	server := nic.New(k, "sv0", nic.IntelX540, 1, svLink)

	img := disk.NewSynthImage("bench", bytes+(64<<20), 7)
	srv := vblade.NewServer(k, server, threads)
	srv.AddTarget(0, 0, img)
	srv.Start()
	in := aoe.NewInitiator(k, client, 1, 0, 0)

	var elapsed sim.Duration
	k.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		const chunk = 2048 // 1 MB requests
		for lba := int64(0); lba < bytes/disk.SectorSize; lba += chunk {
			if _, err := in.Read(p, lba, chunk); err != nil {
				panic(err)
			}
		}
		elapsed = p.Now().Sub(start)
	})
	k.Run()
	return float64(bytes) / elapsed.Seconds(), in.Retransmits.Value()
}
