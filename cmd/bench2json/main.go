// Command bench2json converts `go test -bench` output on stdin into a
// machine-readable JSON document, the format of the repo's tracked
// benchmark baseline (BENCH_results.json).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/bench2json -out BENCH_results.json
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/bench2json -compare BENCH_results.json
//
// Every metric pair the benchmark framework prints — ns/op, B/op,
// allocs/op, and custom b.ReportMetric units like sim-s/ready — lands in
// the benchmark's metrics map verbatim, so new metrics never require a
// parser change. Input lines are echoed to stderr, so the harness stays
// readable when run by hand or in CI logs.
//
// With -compare the parsed results are checked against a baseline document:
// a benchmark regresses when its ns/op grows by more than 20% (wall-clock
// headroom for machine noise) or its allocs/op grows beyond a 0.001%
// jitter allowance (allocation counts are near-deterministic; see
// allocsSlack for why "near"). Regressions
// are listed on stderr and the exit status is non-zero, which is how
// `make bench` and the bench-compare CI job gate perf changes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole baseline document.
type Doc struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// nsOpSlack is how much ns/op may grow before it counts as a regression.
const nsOpSlack = 1.20

// allocsSlack is how much allocs/op may grow before it counts as a
// regression. Allocation counts are effectively deterministic, so the
// tolerance is nearly zero — but only nearly: the single-iteration macro
// cells (fleet, elasticity) count millions of allocations in one shot and
// pick up O(10) background-runtime allocations (GC bookkeeping, pool
// victim refills) that vary with wall-clock GC timing. 0.001% forgives
// that jitter while still flagging one extra allocation per instance in a
// 256-instance fleet cell; for micro benchmarks averaged over millions of
// iterations it is indistinguishable from zero tolerance.
const allocsSlack = 1.00001

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON; exit non-zero on >20% ns/op or >0.001% allocs/op regression")
	flag.Parse()

	doc := Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: read: %v\n", err)
		os.Exit(1)
	}
	doc.Benchmarks = Aggregate(doc.Benchmarks)

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: write: %v\n", err)
		os.Exit(1)
	}

	if *compare != "" {
		blob, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench2json: compare: %v\n", err)
			os.Exit(1)
		}
		var base Doc
		if err := json.Unmarshal(blob, &base); err != nil {
			fmt.Fprintf(os.Stderr, "bench2json: compare: parse %s: %v\n", *compare, err)
			os.Exit(1)
		}
		regressions, notes := Compare(base, doc)
		for _, n := range notes {
			fmt.Fprintf(os.Stderr, "bench2json: %s\n", n)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "bench2json: REGRESSION %s\n", r)
			}
			fmt.Fprintf(os.Stderr, "bench2json: %d regression(s) against %s\n", len(regressions), *compare)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench2json: no regressions against %s\n", *compare)
	}
}

// dupSuffix matches the #NN counter the testing package appends to
// repeated sub-benchmark names (b.Run called twice with the same name —
// e.g. BenchmarkRegistrySweep/parallel-1 and parallel-1#01 on a machine
// where NumCPU is 1).
var dupSuffix = regexp.MustCompile(`#\d+`)

// Aggregate collapses result rows that describe the same benchmark into
// one row per canonical name: the testing package's #NN duplicate
// suffixes are stripped and iterations are summed. ns/op keeps the
// minimum across merged rows — scheduler steal and host noise only ever
// add wall time, so the min of -count=N repeats estimates the true cost
// and keeps the -compare gate stable on noisy machines — while every
// other metric is averaged. Without the merge, duplicate names reach
// the baseline document, and -compare — which matches rows by name —
// silently checks against whichever duplicate came last.
func Aggregate(in []Benchmark) []Benchmark {
	out := make([]Benchmark, 0, len(in))
	index := make(map[string]int, len(in))    // canonical name -> index in out
	counts := make(map[string]map[string]int) // canonical name -> metric -> rows merged
	for _, b := range in {
		name := dupSuffix.ReplaceAllString(b.Name, "")
		i, ok := index[name]
		if !ok {
			index[name] = len(out)
			counts[name] = make(map[string]int, len(b.Metrics))
			for m := range b.Metrics {
				counts[name][m] = 1
			}
			b.Name = name
			out = append(out, b)
			continue
		}
		out[i].Iterations += b.Iterations
		for m, v := range b.Metrics {
			if m == "ns/op" {
				if cur, seen := out[i].Metrics[m]; !seen || v < cur {
					out[i].Metrics[m] = v
				}
				counts[name][m]++
				continue
			}
			n := counts[name][m]
			// Running mean; metrics missing from earlier rows start fresh.
			out[i].Metrics[m] = (out[i].Metrics[m]*float64(n) + v) / float64(n+1)
			counts[name][m] = n + 1
		}
	}
	return out
}

// Compare checks every benchmark in cur against its baseline entry. It
// returns regression descriptions (ns/op growth beyond nsOpSlack, or any
// allocs/op growth) and informational notes (benchmarks without a baseline
// counterpart, baseline entries that disappeared).
func Compare(base, cur Doc) (regressions, notes []string) {
	old := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		old[b.Name] = b
	}
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		seen[b.Name] = true
		o, ok := old[b.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: new benchmark, no baseline", b.Name))
			continue
		}
		if on, cn := o.Metrics["ns/op"], b.Metrics["ns/op"]; on > 0 && cn > on*nsOpSlack {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%%, limit +%.0f%%)",
					b.Name, on, cn, (cn/on-1)*100, (nsOpSlack-1)*100))
		}
		oa, hadAllocs := o.Metrics["allocs/op"]
		if ca := b.Metrics["allocs/op"]; hadAllocs && ca > oa*allocsSlack {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %.0f -> %.0f (over the %.3f%% jitter allowance)",
					b.Name, oa, ca, (allocsSlack-1)*100))
		}
	}
	for _, o := range base.Benchmarks {
		if !seen[o.Name] {
			notes = append(notes, fmt.Sprintf("%s: in baseline but not in this run", o.Name))
		}
	}
	return regressions, notes
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   1234567   63.45 ns/op   48 B/op   1 allocs/op
//
// where any number of value/unit metric pairs may follow the iteration
// count.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		// The name is kept verbatim, including any -N GOMAXPROCS suffix:
		// stripping it cannot be done reliably (sub-benchmark names like
		// parallel-1 end in a dash-number too), and it is real context.
		Name:       fields[0],
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
