package main

import (
	"strings"
	"testing"
)

func bench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, Metrics: metrics}
}

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkFoo-8   1234   63.45 ns/op   48 B/op   1 allocs/op")
	if !ok || b.Name != "BenchmarkFoo-8" || b.Iterations != 1234 {
		t.Fatalf("parseLine = %+v, %v", b, ok)
	}
	if b.Metrics["ns/op"] != 63.45 || b.Metrics["allocs/op"] != 1 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	if _, ok := parseLine("Benchmark broken line"); ok {
		t.Fatal("malformed line parsed")
	}
}

func TestCompareCatchesRegressions(t *testing.T) {
	base := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 100, "allocs/op": 10}),
		bench("BenchmarkB", map[string]float64{"ns/op": 100, "allocs/op": 10}),
		bench("BenchmarkGone", map[string]float64{"ns/op": 1}),
	}}
	cur := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 121, "allocs/op": 10}), // >20% ns/op
		bench("BenchmarkB", map[string]float64{"ns/op": 90, "allocs/op": 11}),  // +1 alloc
		bench("BenchmarkNew", map[string]float64{"ns/op": 5}),
	}}
	regs, notes := Compare(base, cur)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}
	if !strings.Contains(regs[0], "BenchmarkA") || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("first regression = %q", regs[0])
	}
	if !strings.Contains(regs[1], "BenchmarkB") || !strings.Contains(regs[1], "allocs/op") {
		t.Fatalf("second regression = %q", regs[1])
	}
	if len(notes) != 2 { // BenchmarkNew has no baseline; BenchmarkGone vanished
		t.Fatalf("notes = %v, want 2", notes)
	}
}

func TestCompareToleratesNoiseAndImprovement(t *testing.T) {
	base := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 100, "allocs/op": 10}),
	}}
	cur := Doc{Benchmarks: []Benchmark{
		// +19% wall time is inside the slack; fewer allocs is an improvement.
		bench("BenchmarkA", map[string]float64{"ns/op": 119, "allocs/op": 8}),
	}}
	if regs, _ := Compare(base, cur); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareHandlesMissingMetrics(t *testing.T) {
	// Macro benchmarks at -benchtime=1x may lack allocs/op (no -benchmem);
	// a missing metric on either side must not regress.
	base := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 100}),
	}}
	cur := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 100, "allocs/op": 50}),
	}}
	if regs, _ := Compare(base, cur); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}
