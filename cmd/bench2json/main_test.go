package main

import (
	"strings"
	"testing"
)

func bench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, Metrics: metrics}
}

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkFoo-8   1234   63.45 ns/op   48 B/op   1 allocs/op")
	if !ok || b.Name != "BenchmarkFoo-8" || b.Iterations != 1234 {
		t.Fatalf("parseLine = %+v, %v", b, ok)
	}
	if b.Metrics["ns/op"] != 63.45 || b.Metrics["allocs/op"] != 1 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	if _, ok := parseLine("Benchmark broken line"); ok {
		t.Fatal("malformed line parsed")
	}
}

func TestCompareCatchesRegressions(t *testing.T) {
	base := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 100, "allocs/op": 10}),
		bench("BenchmarkB", map[string]float64{"ns/op": 100, "allocs/op": 10}),
		bench("BenchmarkGone", map[string]float64{"ns/op": 1}),
	}}
	cur := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 121, "allocs/op": 10}), // >20% ns/op
		bench("BenchmarkB", map[string]float64{"ns/op": 90, "allocs/op": 11}),  // +1 alloc
		bench("BenchmarkNew", map[string]float64{"ns/op": 5}),
	}}
	regs, notes := Compare(base, cur)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}
	if !strings.Contains(regs[0], "BenchmarkA") || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("first regression = %q", regs[0])
	}
	if !strings.Contains(regs[1], "BenchmarkB") || !strings.Contains(regs[1], "allocs/op") {
		t.Fatalf("second regression = %q", regs[1])
	}
	if len(notes) != 2 { // BenchmarkNew has no baseline; BenchmarkGone vanished
		t.Fatalf("notes = %v, want 2", notes)
	}
}

func TestCompareToleratesNoiseAndImprovement(t *testing.T) {
	base := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 100, "allocs/op": 10}),
	}}
	cur := Doc{Benchmarks: []Benchmark{
		// +19% wall time is inside the slack; fewer allocs is an improvement.
		bench("BenchmarkA", map[string]float64{"ns/op": 119, "allocs/op": 8}),
	}}
	if regs, _ := Compare(base, cur); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareAllocJitterAllowance(t *testing.T) {
	// Single-iteration macro cells pick up O(10) background-runtime
	// allocations that vary with GC timing; the 0.001% allowance forgives
	// that but still flags one extra allocation per fleet instance.
	base := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkJitter", map[string]float64{"allocs/op": 5324665}),
		bench("BenchmarkReal", map[string]float64{"allocs/op": 3578423}),
	}}
	cur := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkJitter", map[string]float64{"allocs/op": 5324671}), // +6 ≈ +0.0001%
		bench("BenchmarkReal", map[string]float64{"allocs/op": 3578679}),   // +256 ≈ +0.007%
	}}
	regs, _ := Compare(base, cur)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkReal") {
		t.Fatalf("regressions = %v, want exactly BenchmarkReal", regs)
	}
}

func TestAggregateCollapsesDuplicateNames(t *testing.T) {
	in := []Benchmark{
		bench("BenchmarkRegistrySweep/parallel-1", map[string]float64{"ns/op": 100, "allocs/op": 10}),
		bench("BenchmarkRegistrySweep/parallel-1#01", map[string]float64{"ns/op": 300, "allocs/op": 10}),
		bench("BenchmarkOther", map[string]float64{"ns/op": 7}),
	}
	out := Aggregate(in)
	if len(out) != 2 {
		t.Fatalf("Aggregate left %d rows, want 2: %+v", len(out), out)
	}
	got := out[0]
	if got.Name != "BenchmarkRegistrySweep/parallel-1" {
		t.Fatalf("canonical name = %q", got.Name)
	}
	if got.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2 (summed)", got.Iterations)
	}
	if got.Metrics["ns/op"] != 100 {
		t.Fatalf("ns/op = %v, want min 100", got.Metrics["ns/op"])
	}
	if got.Metrics["allocs/op"] != 10 {
		t.Fatalf("allocs/op = %v, want 10", got.Metrics["allocs/op"])
	}
	if out[1].Name != "BenchmarkOther" {
		t.Fatalf("row order not preserved: %+v", out)
	}
}

func TestAggregateHandlesPartialMetrics(t *testing.T) {
	in := []Benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 100}),
		bench("BenchmarkA#01", map[string]float64{"ns/op": 200, "hit-rate": 0.5}),
		bench("BenchmarkA#02", map[string]float64{"ns/op": 300, "hit-rate": 0.7}),
	}
	out := Aggregate(in)
	if len(out) != 1 {
		t.Fatalf("Aggregate left %d rows, want 1", len(out))
	}
	if got := out[0].Metrics["ns/op"]; got != 100 {
		t.Fatalf("ns/op = %v, want min 100", got)
	}
	if got := out[0].Metrics["hit-rate"]; got != 0.6 {
		t.Fatalf("hit-rate = %v, want 0.6 (mean of the rows that report it)", got)
	}
}

func TestCompareHandlesMissingMetrics(t *testing.T) {
	// Macro benchmarks at -benchtime=1x may lack allocs/op (no -benchmem);
	// a missing metric on either side must not regress.
	base := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 100}),
	}}
	cur := Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 100, "allocs/op": 50}),
	}}
	if regs, _ := Compare(base, cur); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}
