// Command bmcast-experiments regenerates the paper's evaluation tables
// and figures (§5) from the simulation models.
//
// Usage:
//
//	bmcast-experiments [-fig N[,N...]] [-quick] [-markdown] [-seed S] [-parallel N]
//
// Without -fig every figure runs in order. -quick uses reduced scale
// (smaller image, shorter measurement windows) for fast smoke runs.
//
// Cells run concurrently on up to -parallel workers (default: all CPUs).
// Every cell derives its kernel seed from (-seed, cell id) alone and the
// tables are printed in registry order, so standard output is byte-identical
// for every -parallel setting; per-cell wall-clock timings go to stderr.
//
// -cpuprofile and -memprofile write pprof profiles of the sweep, so the
// simulator's hot paths can be measured without editing code.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "comma-separated figure ids (e.g. 4,7,13); empty = all")
	quick := flag.Bool("quick", false, "reduced-scale run")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list available experiments and exit")
	parallel := flag.Int("parallel", runtime.NumCPU(), "experiment cells run concurrently")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the sweep to `file`")
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-6s %s\n", r.ID, r.Desc)
		}
		return
	}

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}
	opt.Seed = *seed

	var runners []experiments.Runner
	if *fig == "" {
		runners = experiments.Registry()
	} else {
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if _, numeric := experiments.Lookup("fig" + id); numeric {
				id = "fig" + id
			}
			r, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	results := experiments.RunAll(runners, opt, *parallel)
	for _, res := range results {
		for _, t := range res.Tables {
			if *markdown {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %.1fs wall clock]\n", res.Runner.ID, res.Wall.Seconds())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
