// Command bmcast-experiments regenerates the paper's evaluation tables
// and figures (§5) from the simulation models.
//
// Usage:
//
//	bmcast-experiments [-fig N[,N...]] [-quick] [-markdown] [-seed S]
//
// Without -fig every figure runs in order. -quick uses reduced scale
// (smaller image, shorter measurement windows) for fast smoke runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "comma-separated figure ids (e.g. 4,7,13); empty = all")
	quick := flag.Bool("quick", false, "reduced-scale run")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-6s %s\n", r.ID, r.Desc)
		}
		return
	}

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}
	opt.Seed = *seed

	var runners []experiments.Runner
	if *fig == "" {
		runners = experiments.Registry()
	} else {
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if _, numeric := experiments.Lookup("fig" + id); numeric {
				id = "fig" + id
			}
			r, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		tables := r.Run(opt)
		for _, t := range tables {
			if *markdown {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t)
			}
		}
		fmt.Printf("[%s completed in %.1fs wall clock]\n\n", r.ID, time.Since(start).Seconds())
	}
}
