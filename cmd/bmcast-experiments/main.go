// Command bmcast-experiments regenerates the paper's evaluation tables
// and figures (§5) from the simulation models.
//
// Usage:
//
//	bmcast-experiments [-fig N[,N...]] [-quick] [-markdown] [-seed S] [-parallel N]
//	                   [-trace-out FILE] [-metrics-out FILE]
//	                   [-fleet N] [-image-mb N] [-boot-mb N]
//
// Without -fig every figure runs in order. -quick uses reduced scale
// (smaller image, shorter measurement windows) for fast smoke runs.
//
// -trace-out enables structured tracing in the fleet cell and writes its
// Chrome trace-event JSON; -metrics-out writes the traced cell's metrics
// snapshot. Feed both to bmcast-obs for critical-path attribution.
// Traced fleet runs wait for bare metal on every instance, so pair
// -trace-out with -fleet/-image-mb/-boot-mb to keep the cell small, e.g.
//
//	bmcast-experiments -fig fleet -fleet 16 -image-mb 32 -boot-mb 1 \
//	    -trace-out fleet.trace.json -metrics-out fleet.metrics.json
//
// Cells run concurrently on up to -parallel workers (default: all CPUs).
// Every cell derives its kernel seed from (-seed, cell id) alone and the
// tables are printed in registry order, so standard output is byte-identical
// for every -parallel setting; per-cell wall-clock timings go to stderr.
//
// -cpuprofile and -memprofile write pprof profiles of the sweep, so the
// simulator's hot paths can be measured without editing code.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "comma-separated figure ids (e.g. 4,7,13); empty = all")
	quick := flag.Bool("quick", false, "reduced-scale run")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list available experiments and exit")
	parallel := flag.Int("parallel", runtime.NumCPU(), "experiment cells run concurrently")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the sweep to `file`")
	traceOut := flag.String("trace-out", "", "enable tracing in the fleet cell and write its Chrome trace-event JSON to `file`")
	metricsOut := flag.String("metrics-out", "", "write the traced cell's metrics snapshot JSON to `file`")
	fleetN := flag.Int("fleet", 0, "override the fleet cell's instance count (0 = scale default)")
	imageMB := flag.Int64("image-mb", 0, "override the OS image size in MB (0 = scale default)")
	bootMB := flag.Int64("boot-mb", 0, "override the guest boot bytes in MB for the fleet cell (0 = calibrated profile)")
	shards := flag.Int("shards", 0, "run the fleet and elasticity cells on the parallel shard executor with up to N workers (0 = single kernel; output is byte-identical at every N >= 1)")
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-6s %s\n", r.ID, r.Desc)
		}
		return
	}

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}
	opt.Seed = *seed
	opt.EnableTrace = *traceOut != ""
	if *fleetN > 0 {
		opt.FleetInstances = *fleetN
	}
	if *imageMB > 0 {
		opt.ImageBytes = *imageMB << 20
	}
	if *bootMB > 0 {
		opt.BootBytes = *bootMB << 20
	}
	opt.Shards = *shards

	var runners []experiments.Runner
	if *fig == "" {
		runners = experiments.Registry()
	} else {
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if _, numeric := experiments.Lookup("fig" + id); numeric {
				id = "fig" + id
			}
			r, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	results := experiments.RunAll(runners, opt, *parallel)
	failed := false
	for _, res := range results {
		for _, t := range res.Tables {
			if *markdown {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t)
			}
		}
		if res.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "[%s FAILED integrity check: %v]\n", res.Runner.ID, res.Err)
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %.1fs wall clock]\n", res.Runner.ID, res.Wall.Seconds())
	}

	if *traceOut != "" || *metricsOut != "" {
		var traced *experiments.Result
		for i := range results {
			if results[i].Trace != nil {
				traced = &results[i]
			}
		}
		if traced == nil {
			fmt.Fprintln(os.Stderr, "trace-out: no cell produced a trace (only the fleet cell records one; add -fig fleet)")
			os.Exit(1)
		}
		if *traceOut != "" {
			writeOrDie(*traceOut, traced.Trace.WriteChromeTrace)
			fmt.Fprintf(os.Stderr, "[wrote %d spans and %d events to %s]\n",
				len(traced.Trace.Spans()), len(traced.Trace.Events()), *traceOut)
		}
		if *metricsOut != "" {
			writeOrDie(*metricsOut, traced.Snapshot.WriteJSON)
			fmt.Fprintf(os.Stderr, "[wrote %d metric samples to %s]\n", len(traced.Snapshot.Samples), *metricsOut)
		}
	}
	if failed {
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeOrDie streams write into a freshly created file, exiting on error.
func writeOrDie(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(1)
	}
	f.Close()
}
