// Command bmcast-obs explains where time-to-bare-metal went. It reads a
// recorded deployment trace (the Chrome trace-event JSON that bmcast-sim
// and bmcast-experiments write with -trace-out) plus, optionally, a
// metrics snapshot (-metrics-out), and computes the critical path and
// per-bucket latency attribution of every instance in the trace: fleet
// percentiles, where each nanosecond of time-to-ready went, per-source
// served-bytes skew, and which bucket explains each slow outlier.
//
// Usage:
//
//	bmcast-obs -trace deploy.trace.json [-metrics metrics.json]
//	           [-json] [-o FILE] [-chrome-out FILE]
//
// The analysis is deterministic: the same trace and snapshot always
// produce byte-identical output (-json included), so reports can be
// diffed across runs to prove a change didn't move the needle — or to
// show exactly which bucket it moved.
//
// -chrome-out re-emits the loaded trace as Chrome trace-event JSON with
// causal flow arrows, for loading into Perfetto or chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/metrics"
	"repro/internal/obs"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON written with -trace-out (required)")
	metricsPath := flag.String("metrics", "", "metrics snapshot JSON written with -metrics-out (optional)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	outPath := flag.String("o", "", "write the report to this file (default stdout)")
	chromeOut := flag.String("chrome-out", "", "re-emit the loaded trace as Chrome trace-event JSON")
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "bmcast-obs: -trace is required (write one with bmcast-sim -trace-out or bmcast-experiments -trace-out)")
		os.Exit(2)
	}
	tf, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	rec, err := obs.LoadChromeTrace(tf)
	tf.Close()
	if err != nil {
		fatal(err)
	}

	var snap metrics.Snapshot
	if *metricsPath != "" {
		mf, err := os.Open(*metricsPath)
		if err != nil {
			fatal(err)
		}
		snap, err = metrics.ReadSnapshot(mf)
		mf.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *metricsPath, err))
		}
	}

	rep, err := obs.Analyze(rec, snap)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *jsonOut {
		if err := rep.WriteJSON(w); err != nil {
			fatal(err)
		}
	} else {
		rep.WriteText(w)
	}

	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bmcast-obs: %v\n", err)
	os.Exit(1)
}
