// Command bmcast-sim runs one BMcast deployment end to end and prints the
// phase timeline, deployment statistics, and the content-verification
// summary.
//
// Usage:
//
//	bmcast-sim [-image-gb N] [-storage ide|ahci] [-seed S] [-loss P] [-trace]
//	           [-trace-out FILE] [-metrics] [-metrics-out FILE] [-secondary N]
//	           [-faults SCHEDULE] [-tenants PROFILE [-storm STORM] [-pool N]]
//	           [-shards N] [-cpuprofile FILE] [-memprofile FILE]
//
// -shards N runs the simulation on the parallel shard executor
// (DESIGN.md §13): the testbed is decomposed into one domain per node
// plus a hub, executed by up to N workers. Output — stdout, trace JSON,
// metrics — is byte-identical at every N >= 1 for a given seed; it
// differs from the -shards 0 single-kernel schedule, so compare sharded
// runs with sharded runs. -cpuprofile and -memprofile write pprof
// profiles of the run (parity with bmcast-experiments).
//
// -trace-out writes a Chrome trace-event JSON file (load it in Perfetto or
// chrome://tracing) with one span per deployment phase, mediated command,
// and AoE round trip. -metrics dumps the full instrument registry;
// -metrics-out writes it as JSON for bmcast-obs and bench tooling.
//
// -faults takes a deterministic fault schedule, e.g.
//
//	bmcast-sim -secondary 1 -faults '5s crash server; 30s loss node0.vmm 0.02'
//
// Targets are "server", "server2"… and "node0.guest"/"node0.vmm"; verbs are
// linkdown, linkup, partition, loss, corrupt, dup, reorder, crash, restart,
// and mediaerr (see DESIGN.md §8 for the grammar). The same seed and the
// same schedule replay the run byte-identically.
//
// -tenants switches to the elastic control-plane mode: open-loop tenant
// traffic (Poisson arrivals with bursts and diurnal modulation) admitted
// through the bounded queue, optionally under a -storm fault storm, e.g.
//
//	bmcast-sim -tenants default -storm default
//	bmcast-sim -tenants 'rate=0.3,dur=2m0s,hold=10s,deadline=30s' \
//	           -storm 'at=30s,for=20s,links=node0.vmm,server=server,crashes=2' -pool 8
//
// Both flags accept "default" for the fixed "elasticity" experiment cell
// scenario (see DESIGN.md §12 for the profile and storm grammars).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/guest"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/tenants"
	"repro/internal/testbed"
)

// runTenants is the -tenants mode: open-loop tenant traffic through the
// elastic control plane, optionally under a -storm fault storm, rendered
// as the same per-phase table as the "elasticity" experiment cell.
func runTenants(seed int64, pool, shards int, profileStr, stormStr string) {
	profile := experiments.ElasticProfile()
	if profileStr != "default" {
		p, err := tenants.Parse(profileStr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-tenants: %v\n", err)
			os.Exit(2)
		}
		profile = p
	}
	var storm faults.StormConfig
	switch stormStr {
	case "":
	case "default":
		storm = experiments.ElasticStorm()
	default:
		s, err := faults.ParseStorm(stormStr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-storm: %v\n", err)
			os.Exit(2)
		}
		storm = s
	}
	opt := experiments.Quick()
	opt.Seed = seed
	opt.Shards = shards
	fmt.Println(experiments.ElasticityTable(opt, pool, profile, storm).String())
}

// profileFlags starts a CPU profile and returns a function that stops it
// and writes the heap profile; either path may be empty.
func profileFlags(cpuprofile, memprofile string) (stop func()) {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	return func() {
		if cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if memprofile != "" {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func main() {
	imageGB := flag.Float64("image-gb", 8, "OS image size in GB")
	storage := flag.String("storage", "ahci", "storage controller: ide or ahci")
	seed := flag.Int64("seed", 1, "simulation seed")
	loss := flag.Float64("loss", 0, "frame loss rate on the node's VMM-side link")
	trace := flag.Bool("trace", false, "print VMM trace lines")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file")
	metricsDump := flag.Bool("metrics", false, "dump the instrument registry after the run")
	metricsOut := flag.String("metrics-out", "", "write the instrument registry as JSON (for bmcast-obs)")
	secondary := flag.Int("secondary", 0, "number of secondary storage servers (AoE failover targets)")
	faultSched := flag.String("faults", "", "deterministic fault schedule, e.g. '5s crash server; 20s restart server'")
	tenantsFlag := flag.String("tenants", "", "elastic control-plane mode: tenant traffic profile, e.g. 'rate=0.25,dur=4m0s,hold=10s,deadline=40s', or 'default'")
	stormFlag := flag.String("storm", "", "fault storm for -tenants mode, e.g. 'at=1m0s,for=30s,links=node0.vmm+node1.vmm,server=server,crashes=2', or 'default'")
	pool := flag.Int("pool", 0, "machine pool size for -tenants mode (0 = cell default)")
	shards := flag.Int("shards", 0, "run on the parallel shard executor with up to N workers (0 = single kernel)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to `file`")
	flag.Parse()

	stopProfiles := profileFlags(*cpuprofile, *memprofile)
	if *tenantsFlag != "" {
		runTenants(*seed, *pool, *shards, *tenantsFlag, *stormFlag)
		stopProfiles()
		return
	}
	if *stormFlag != "" || *pool != 0 {
		fmt.Fprintln(os.Stderr, "-storm and -pool require -tenants")
		os.Exit(2)
	}
	if *trace && *shards > 0 {
		// Kernel debug tracing prints from whichever worker runs a domain;
		// the interleave would break the sharded byte-identity contract.
		fmt.Fprintln(os.Stderr, "-trace is not supported with -shards (use -trace-out)")
		os.Exit(2)
	}

	cfg := testbed.DefaultConfig()
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.ImageBytes = int64(*imageGB * float64(1<<30))
	cfg.EnableTrace = *traceOut != ""
	switch *storage {
	case "ide":
		cfg.Storage = machine.StorageIDE
	case "ahci":
		cfg.Storage = machine.StorageAHCI
	default:
		fmt.Fprintln(os.Stderr, "storage must be ide or ahci")
		os.Exit(2)
	}

	tb := testbed.New(cfg)
	for i := 0; i < *secondary; i++ {
		tb.AddSecondaryServer(cfg)
	}
	node := tb.AddNode(cfg)
	if *faultSched != "" {
		sched, err := faults.Parse(*faultSched)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-faults: %v\n", err)
			os.Exit(2)
		}
		if err := tb.NewFaultInjector().Apply(sched); err != nil {
			fmt.Fprintf(os.Stderr, "-faults: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("fault schedule: %s\n", sched)
	}
	if *trace {
		tb.K.SetTracer(func(t sim.Time, format string, args ...any) {
			fmt.Printf("[%v] %s\n", t, fmt.Sprintf(format, args...))
		})
	}
	if *loss > 0 {
		// Inject loss on the node's VMM-side link only: the deployment
		// traffic path, leaving the guest's NIC clean.
		node.VMMLink.SetLossRate(*loss)
		fmt.Printf("injecting %.1f%% frame loss on %s's VMM link\n", *loss*100, node.M.Name)
	}

	done := false
	tb.RunOnNode(node, "deploy", func(p *sim.Proc) {
		res, err := tb.DeployBMcast(p, node, core.DefaultConfig(), guest.DefaultBootProfile())
		if err != nil {
			fmt.Fprintf(os.Stderr, "deployment failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("timeline:\n")
		fmt.Printf("  firmware init      %10v\n", res.FirmwareDone.Sub(0))
		fmt.Printf("  vmm network boot   %10v\n", res.VMMBooted.Sub(res.FirmwareDone))
		fmt.Printf("  guest OS boot      %10v   <- instance usable here\n", res.GuestBooted.Sub(res.VMMBooted))
		tb.WaitBareMetal(p, node, res) // PhaseFailed wakes this too
		if node.VMM.Phase() == core.PhaseFailed {
			fmt.Fprintf(os.Stderr, "deployment failed: %v\n", node.VMM.Err())
			os.Exit(1)
		}
		fmt.Printf("  deployment done    %10v after boot\n", res.Deployed.Sub(res.GuestBooted))
		fmt.Printf("  de-virtualized     %10v after boot\n", res.BareMetal.Sub(res.GuestBooted))

		vmm := node.VMM
		st := vmm.Mediator().Stats()
		fmt.Printf("\nstatistics:\n")
		fmt.Printf("  fetched from server    %8d MB\n", vmm.FetchedBytes.Value()>>20)
		fmt.Printf("  background-copied      %8d MB\n", vmm.CopiedBytes.Value()>>20)
		fmt.Printf("  copy-on-read redirects %8d (%d MB)\n", st.Redirects.Value(), st.RedirectBytes.Value()>>20)
		fmt.Printf("  multiplexed inserts    %8d\n", st.Inserted.Value())
		fmt.Printf("  guest cmds queued      %8d\n", st.QueuedCommands.Value())
		fmt.Printf("  dummy-sector restarts  %8d\n", st.DummyRestarts.Value())
		fmt.Printf("  status polls           %8d\n", st.Polls.Value())
		fmt.Printf("  moderation suspends    %8d\n", vmm.Suspends.Value())
		fmt.Printf("  VM exits               %8d\n", node.M.World.TotalExits())
		fmt.Printf("  AoE retransmits        %8d\n", vmm.Initiator().Retransmits.Value())
		fmt.Printf("  AoE failovers          %8d\n", vmm.Initiator().Failovers.Value())

		counts, err := tb.VerifyDeployment(node)
		if err != nil {
			fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nverification: every image sector has content; provenance:\n")
		// Sorted names: map iteration order would leak into stdout and
		// break the byte-identity contract.
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-28s %d sectors\n", name, counts[name])
		}
		tb.PostToHub(tb.NodeKernel(node), func() {
			done = true
			if !tb.Sharded() {
				tb.K.Stop()
			}
		})
	})
	if tb.Sharded() {
		tb.ShardRun(func() bool { return done })
	} else {
		tb.K.Run()
	}

	if *traceOut != "" {
		tr := tb.TraceMerged()
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote %d spans and %d events to %s (open in Perfetto or chrome://tracing)\n",
			len(tr.Spans()), len(tr.Events()), *traceOut)
	}
	if *metricsDump {
		fmt.Printf("\nmetrics:\n")
		tb.Metrics.Snapshot().WriteText(os.Stdout)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
			os.Exit(1)
		}
		if err := tb.Metrics.Snapshot().WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsOut)
	}
	stopProfiles()
}
