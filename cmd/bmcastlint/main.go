// Command bmcastlint is the repository's vet tool: it runs the
// internal/lint analyzer suite — the syntactic checks (walltime,
// seededrand, simdrift, mapiter) and the CFG-based dataflow checks
// (spanleak, causerestore, framebalance, pooledrelease) — over every
// package, driven by the go command:
//
//	go build -o bin/bmcastlint ./cmd/bmcastlint
//	go vet -vettool=bin/bmcastlint ./...
//
// With BMCASTLINT_JSON=<path> in the environment, every finding is also
// appended to <path> as one JSON object per line (NDJSON); CI uploads
// the file as the lint artifact. The file is opened with O_APPEND and
// each package's findings are written in a single write, so the
// parallel per-package tool invocations the go command spawns never
// interleave mid-record.
//
// It speaks the same unit-checker protocol as
// golang.org/x/tools/go/analysis/unitchecker, re-implemented on the
// standard library because this build environment has no module proxy:
// for each package, the go command writes a JSON config describing the
// files, the import map, and the export-data file of every dependency,
// then invokes this tool with the config path as its argument. The tool
// type-checks from export data, runs the analyzers, prints findings to
// stderr, and writes the (empty — no analyzer exports facts) .vetx fact
// file go expects.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/lint"
)

// vetConfig mirrors the JSON the go command feeds a -vettool (see
// cmd/go/internal/work's buildVetConfig). Fields this tool ignores are
// kept so the decoder stays strict about nothing and future go versions
// can add fields freely.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]
	// The go command interrogates the tool before using it: -V=full asks
	// for a content-addressed version (cache key), -flags for the flag
	// set it may forward. Mimic unitchecker's answers.
	if len(args) == 1 && args[0] == "-V=full" {
		fmt.Printf("bmcastlint version devel buildID=%s\n", selfHash())
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr,
			"bmcastlint: must be run by the go command as a vet tool:\n"+
				"\tgo vet -vettool=$(which bmcastlint) ./...\n")
		os.Exit(1)
	}
	if err := run(args[0]); err != nil {
		fmt.Fprintf(os.Stderr, "bmcastlint: %v\n", err)
		os.Exit(1)
	}
}

// selfHash hashes this executable so rebuilt tools invalidate go's vet
// result cache.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func run(cfgPath string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// Dependencies are analyzed only for facts; this suite exports none,
	// so an empty fact file satisfies the protocol immediately. The same
	// shortcut applies to packages outside the module: the analyzers
	// would stay silent anyway.
	if cfg.VetxOnly || !lint.InModule(cfg.ImportPath) {
		return writeVetx(cfg)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			return err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		return fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	findings, err := lint.Run(fset, files, pkg, info, lint.Analyzers)
	if err != nil {
		return err
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if err := appendJSON(cfg.ImportPath, findings); err != nil {
		return err
	}
	if err := writeVetx(cfg); err != nil {
		return err
	}
	if len(findings) > 0 {
		os.Exit(2) // diagnostics found: fail the vet run
	}
	return nil
}

// typecheck loads the package from source with every dependency resolved
// through the export-data files the go command listed in cfg.PackageFile.
func typecheck(fset *token.FileSet, files []*ast.File, cfg vetConfig) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if canonical, ok := cfg.ImportMap[importPath]; ok {
				importPath = canonical
			}
			return base.Import(importPath)
		}),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", buildArch()),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func buildArch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}

// appendJSON appends one NDJSON record per finding to the file named by
// BMCASTLINT_JSON, for CI to upload as the lint artifact. Nothing is
// written (not even an empty file) when the variable is unset or the
// package is clean. The go command runs one tool process per package in
// parallel, so the records for a package are buffered and appended with
// a single write to an O_APPEND descriptor — POSIX makes such writes
// atomic with respect to each other, keeping records line-intact.
func appendJSON(pkg string, findings []lint.Finding) error {
	path := os.Getenv("BMCASTLINT_JSON")
	if path == "" || len(findings) == 0 {
		return nil
	}
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	for _, f := range findings {
		rec := struct {
			Package  string `json:"package"`
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		}{pkg, f.Analyzer, f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	out, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	if _, err := out.WriteString(buf.String()); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// writeVetx writes the fact file the go command expects every vet tool to
// produce. No bmcastlint analyzer exports facts, so it is always empty.
func writeVetx(cfg vetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
}
