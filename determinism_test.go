package bmcast_test

import (
	"fmt"
	"strings"
	"testing"

	bmcast "repro"
	"repro/internal/guest"
	"repro/internal/sim"

	"math/rand"
)

// deployTrace runs one full BMcast deployment through the public facade
// with the given seed and renders every recorded span and event — names,
// nodes, categories, and sim-timestamps — into one canonical string.
func deployTrace(t *testing.T, seed int64) string {
	t.Helper()
	cfg := bmcast.DefaultConfig()
	cfg.Seed = seed
	cfg.ImageBytes = 64 << 20
	cfg.DiskSectors = 1 << 20
	cfg.EnableTrace = true
	tb := bmcast.NewTestbed(cfg)
	node := tb.AddNode(cfg)
	node.M.Firmware.InitTime = sim.Second

	vcfg := bmcast.DefaultVMMConfig()
	vcfg.WriteInterval = 2 * sim.Millisecond
	bp := bmcast.DefaultBootProfile()
	bp.TotalBytes = 8 << 20
	bp.CPUTime = 2 * sim.Second
	bp.SpanSectors = cfg.ImageBytes / 2 / 512

	var res *bmcast.BMcastResult
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		r, err := tb.DeployBMcast(p, node, vcfg, bp)
		if err != nil {
			t.Error(err)
			return
		}
		res = r
		tb.WaitBareMetal(p, node, res)
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if res == nil {
		t.Fatal("deployment did not complete")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "firmware=%d vmm=%d guest=%d deployed=%d baremetal=%d\n",
		res.FirmwareDone, res.VMMBooted, res.GuestBooted, res.Deployed, res.BareMetal)
	for _, s := range res.Trace.Spans() {
		fmt.Fprintf(&b, "span %s/%s/%s %d..%d open=%v\n", s.Node, s.Cat, s.Name, s.Start, s.Stop, s.Open)
	}
	for _, e := range res.Trace.Events() {
		fmt.Fprintf(&b, "event %s/%s/%s @%d\n", e.Node, e.Cat, e.Name, e.Time)
	}
	return b.String()
}

// TestSameSeedSameTrace pins the determinism invariant the bmcastlint
// suite exists to protect, at the top level a user sees: two deployments
// with the same experiment seed must produce identical traces — every
// span and event at identical sim-times — and a different seed must still
// produce a complete, self-consistent run.
func TestSameSeedSameTrace(t *testing.T) {
	a := deployTrace(t, 7)
	b := deployTrace(t, 7)
	if a != b {
		t.Fatalf("same seed produced different traces:\nfirst run:\n%s\nsecond run:\n%s", a, b)
	}
	if !strings.Contains(a, "span") {
		t.Fatalf("trace recorded no spans; determinism check is vacuous:\n%s", a)
	}
	// A different seed exercises the same code paths; it must also be
	// internally reproducible.
	c := deployTrace(t, 8)
	d := deployTrace(t, 8)
	if c != d {
		t.Fatalf("seed 8 produced different traces across runs")
	}
}

// deployFaultTrace is deployTrace under chaos: a secondary storage
// server, a scripted fault schedule (primary crash mid-deployment, loss
// and reordering on the VMM link), and the same canonical trace render.
func deployFaultTrace(t *testing.T, seed int64) string {
	t.Helper()
	cfg := bmcast.DefaultConfig()
	cfg.Seed = seed
	cfg.ImageBytes = 64 << 20
	cfg.DiskSectors = 1 << 20
	cfg.EnableTrace = true
	tb := bmcast.NewTestbed(cfg)
	tb.AddSecondaryServer(cfg)
	node := tb.AddNode(cfg)
	node.M.Firmware.InitTime = sim.Second

	sched, err := bmcast.ParseFaults(
		"1500ms reorder node0.vmm 0.01; 3s crash server; 10s loss node0.vmm 0.02; 20s loss node0.vmm 0")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NewFaultInjector().Apply(sched); err != nil {
		t.Fatal(err)
	}

	vcfg := bmcast.DefaultVMMConfig()
	vcfg.WriteInterval = 2 * sim.Millisecond
	bp := bmcast.DefaultBootProfile()
	bp.TotalBytes = 8 << 20
	bp.CPUTime = 2 * sim.Second
	bp.SpanSectors = cfg.ImageBytes / 2 / 512

	var res *bmcast.BMcastResult
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		r, err := tb.DeployBMcast(p, node, vcfg, bp)
		if err != nil {
			t.Error(err)
			return
		}
		res = r
		tb.WaitBareMetal(p, node, res)
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if res == nil {
		t.Fatal("deployment did not complete under faults")
	}
	if node.VMM.Initiator().Failovers.Value() == 0 {
		t.Fatal("fault schedule did not force a failover; chaos check is vacuous")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "firmware=%d vmm=%d guest=%d deployed=%d baremetal=%d\n",
		res.FirmwareDone, res.VMMBooted, res.GuestBooted, res.Deployed, res.BareMetal)
	for _, s := range res.Trace.Spans() {
		fmt.Fprintf(&b, "span %s/%s/%s %d..%d open=%v\n", s.Node, s.Cat, s.Name, s.Start, s.Stop, s.Open)
	}
	for _, e := range res.Trace.Events() {
		fmt.Fprintf(&b, "event %s/%s/%s @%d\n", e.Node, e.Cat, e.Name, e.Time)
	}
	return b.String()
}

// TestSameSeedSameTraceUnderFaults extends the determinism invariant to
// the fault machinery: the same seed and the same fault schedule must
// replay byte-identically — crashes, failovers, and lossy links included.
func TestSameSeedSameTraceUnderFaults(t *testing.T) {
	a := deployFaultTrace(t, 7)
	b := deployFaultTrace(t, 7)
	if a != b {
		t.Fatalf("same seed + same schedule produced different traces:\nfirst run:\n%s\nsecond run:\n%s", a, b)
	}
	if !strings.Contains(a, "event faults/faults/crash") {
		t.Fatalf("trace recorded no injected crash; chaos determinism check is vacuous:\n%s", a)
	}
	if !strings.Contains(a, "aoe/failover") {
		t.Fatalf("trace recorded no failover event:\n%s", a)
	}
}

// TestBootTraceRandInjection pins the seededrand migration contract on
// the boot-trace generator: Trace() is exactly TraceRand with a stream
// seeded from the profile's own Seed, and an injected stream derived from
// the experiment seed produces its own reproducible op list.
func TestBootTraceRandInjection(t *testing.T) {
	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 4 << 20

	viaSeed := bp.Trace()
	viaRand := bp.TraceRand(rand.New(rand.NewSource(bp.Seed)))
	if len(viaSeed) == 0 || len(viaSeed) != len(viaRand) {
		t.Fatalf("Trace and TraceRand lengths differ: %d vs %d", len(viaSeed), len(viaRand))
	}
	for i := range viaSeed {
		if viaSeed[i] != viaRand[i] {
			t.Fatalf("op %d differs between Trace and seeded TraceRand: %+v vs %+v",
				i, viaSeed[i], viaRand[i])
		}
	}

	injected1 := bp.TraceRand(rand.New(rand.NewSource(99)))
	injected2 := bp.TraceRand(rand.New(rand.NewSource(99)))
	for i := range injected1 {
		if injected1[i] != injected2[i] {
			t.Fatalf("same injected stream produced different ops at %d", i)
		}
	}
}
