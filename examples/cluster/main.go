// Cluster scenario (paper §5.3): bring up a 10-node cluster with BMcast
// and compare against image-copy provisioning, then run MPI collectives
// across the freshly deployed nodes over InfiniBand.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

const nodes = 10

func main() {
	cfg := testbed.DefaultConfig()
	cfg.ImageBytes = 1 << 30
	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 16 << 20
	bp.CPUTime = 2 * sim.Second
	bp.SpanSectors = cfg.ImageBytes / 2 / 512

	// --- BMcast: all ten instances start in parallel; the shared server
	// and switch carry the load.
	tb := testbed.New(cfg)
	var ms []*machine.Machine
	ready := 0
	readySig := tb.K.NewSignal("ready")
	for i := 0; i < nodes; i++ {
		n := tb.AddNode(cfg)
		ms = append(ms, n.M)
		tb.K.Spawn("deploy", func(p *sim.Proc) {
			if _, err := tb.DeployBMcast(p, n, core.DefaultConfig(), bp); err != nil {
				panic(err)
			}
			ready++
			readySig.Broadcast()
		})
	}
	tb.K.Spawn("driver", func(p *sim.Proc) {
		p.WaitCond(readySig, func() bool { return ready == nodes })
		fmt.Printf("BMcast: all %d instances serving at t=%.0fs (firmware included)\n",
			nodes, p.Now().Seconds())

		cl, err := workload.NewMPICluster(tb.K, ms)
		if err != nil {
			panic(err)
		}
		fmt.Println("\nMPI collectives across the fresh cluster (64 KB messages):")
		for _, c := range workload.AllCollectives() {
			lat := cl.Latency(p, c, 64<<10, 50)
			fmt.Printf("  %-10s %8.1f µs\n", c, lat.Microseconds())
		}
		tb.K.Stop()
	})
	tb.K.Run()

	// --- Image copy on one node, for contrast.
	tb2 := testbed.New(cfg)
	n2 := tb2.AddNode(cfg)
	rs := baseline.NewRemoteStore(tb2.K, "srv", baseline.ISCSI, tb2.Image)
	tb2.K.Spawn("copy", func(p *sim.Proc) {
		res, err := baseline.DeployImageCopy(p, n2.M, n2.OS, baseline.DefaultImageCopyConfig(), rs, bp)
		if err != nil {
			panic(err)
		}
		fmt.Printf("\nImage copy: one instance serving at t=%.0fs — and ten would contend for the server\n",
			res.GuestBootedAt.Seconds())
		tb2.K.Stop()
	})
	tb2.K.Run()
}
