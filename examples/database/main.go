// Database scenario (paper §5.2): launch a new instance with BMcast and
// serve a memcached-style YCSB workload while the OS image streams in
// underneath; watch throughput step up to bare-metal level at
// de-virtualization, with no interruption.
//
// Run with: go run ./examples/database
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	cfg := testbed.DefaultConfig()
	cfg.ImageBytes = 4 << 30 // 4 GB so the demo finishes quickly
	tb := testbed.New(cfg)
	node := tb.AddNode(cfg)
	node.M.Firmware.InitTime = sim.Second

	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 16 << 20
	bp.CPUTime = 2 * sim.Second
	bp.SpanSectors = cfg.ImageBytes / 2 / 512

	y := workload.NewYCSB(node.OS, workload.Memcached())

	tb.K.Spawn("scenario", func(p *sim.Proc) {
		res, err := tb.DeployBMcast(p, node, core.DefaultConfig(), bp)
		if err != nil {
			panic(err)
		}
		fmt.Printf("instance serving requests %.1fs after power-on\n\n", res.GuestBooted.Seconds())
		tb.K.Spawn("ycsb", func(wp *sim.Proc) { y.Run(wp, sim.Hour) })

		// Report throughput every 20 s until well past de-virtualization.
		start := p.Now()
		for i := 0; i < 30; i++ {
			p.Sleep(20 * sim.Second)
			win := y.Throughput.MeanBetween(p.Now().Add(-20*sim.Second), p.Now())
			phase := "deploying"
			if node.VMM.Phase() == core.PhaseBareMetal {
				phase = "bare-metal"
			}
			fmt.Printf("t=%4.0fs  %8.0f T/s  (%s, %4.1f%% copied)\n",
				p.Now().Sub(start).Seconds(), win, phase,
				100*float64(node.VMM.Bitmap().FilledCount())/float64(node.VMM.Bitmap().Sectors()))
			if node.VMM.Phase() == core.PhaseBareMetal && i > 2 {
				break
			}
		}
		y.Stop()
		fmt.Printf("\nno interruption at the phase shift: the throughput series is continuous\n")
		tb.K.Stop()
	})
	tb.K.Run()
}
