// Moderation scenario (paper §5.6 / Figure 14): sweep the VMM's
// background-copy write interval and print the trade-off between guest
// storage throughput and copy speed.
//
// Run with: go run ./examples/moderation
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	intervals := []sim.Duration{
		sim.Second, 100 * sim.Millisecond, 10 * sim.Millisecond,
		sim.Millisecond, 0, // 0 = full speed
	}
	fmt.Println("interval      guest-read MB/s   vmm-write MB/s")
	for _, iv := range intervals {
		g, v := point(iv)
		label := iv.String()
		if iv == 0 {
			label = "full-speed"
		}
		fmt.Printf("%-12s  %15.1f   %14.1f\n", label, g/1e6, v/1e6)
	}
	fmt.Println("\nslower intervals favor the guest; faster ones finish deployment sooner —")
	fmt.Println("the moderation parameters (threshold, write/suspend intervals) pick the balance.")
}

func point(interval sim.Duration) (guestRate, vmmRate float64) {
	cfg := testbed.DefaultConfig()
	cfg.ImageBytes = 8 << 30
	tb := testbed.New(cfg)
	n := tb.AddNode(cfg)
	n.M.Firmware.InitTime = sim.Second

	vcfg := core.DefaultConfig()
	vcfg.WriteInterval = interval
	vcfg.GuestIOFreqThreshold = 1e12 // measure the interval alone

	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 8 << 20
	bp.CPUTime = sim.Second
	bp.SpanSectors = cfg.ImageBytes / 2 / 512

	done := false
	tb.K.Spawn("sweep", func(p *sim.Proc) {
		if _, err := tb.DeployBMcast(p, n, vcfg, bp); err != nil {
			panic(err)
		}
		const fileLBA = 5 << 21 // 5 GB in
		if _, err := workload.Fio(p, n.OS, true, 100<<20, 1<<20, fileLBA); err != nil {
			panic(err)
		}
		before := n.VMM.CopiedBytes.Value()
		start := p.Now()
		res, err := workload.Fio(p, n.OS, false, 100<<20, 1<<20, fileLBA)
		if err != nil {
			panic(err)
		}
		guestRate = res.Throughput
		vmmRate = float64(n.VMM.CopiedBytes.Value()-before) / p.Now().Sub(start).Seconds()
		done = true
		tb.K.Stop()
	})
	for !done && tb.K.Pending() > 0 {
		tb.K.RunUntil(tb.K.Now().Add(sim.Hour))
	}
	return guestRate, vmmRate
}
