// Quickstart: deploy an OS image to a bare-metal instance with BMcast and
// watch the four phases (initialization, deployment, de-virtualization,
// bare-metal) go by.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	// A storage server exporting a 2 GB Ubuntu image over AoE, and one
	// instance machine with two NICs (one dedicated to the VMM).
	cfg := testbed.DefaultConfig()
	cfg.ImageBytes = 2 << 30
	tb := testbed.New(cfg)
	node := tb.AddNode(cfg)

	// Watch phase transitions as they happen.
	tb.K.Spawn("watcher", func(p *sim.Proc) {
		node := node
		for node.VMM == nil {
			p.Sleep(sim.Second)
		}
		for ph := core.PhaseDeployment; ph <= core.PhaseBareMetal; ph++ {
			node.VMM.WaitPhase(p, ph)
			fmt.Printf("[%8.1fs] phase: %v (bitmap %5.1f%% filled)\n",
				p.Now().Seconds(), node.VMM.Phase(),
				100*float64(node.VMM.Bitmap().FilledCount())/float64(node.VMM.Bitmap().Sectors()))
		}
	})

	tb.K.Spawn("deploy", func(p *sim.Proc) {
		bp := guest.DefaultBootProfile()
		bp.SpanSectors = cfg.ImageBytes / 2 / 512 // boot reads stay inside the demo image
		res, err := tb.DeployBMcast(p, node, core.DefaultConfig(), bp)
		if err != nil {
			panic(err)
		}
		fmt.Printf("[%8.1fs] firmware initialized\n", res.FirmwareDone.Seconds())
		fmt.Printf("[%8.1fs] VMM booted (network boot, %v)\n",
			res.VMMBooted.Seconds(), res.VMMBooted.Sub(res.FirmwareDone))
		fmt.Printf("[%8.1fs] guest OS booted — instance is READY TO USE\n", res.GuestBooted.Seconds())
		fmt.Printf("           (image fetched so far: %d MB of %d MB)\n",
			node.VMM.FetchedBytes.Value()>>20, cfg.ImageBytes>>20)

		tb.WaitBareMetal(p, node, res)
		fmt.Printf("[%8.1fs] de-virtualization complete — the VMM is gone\n", res.BareMetal.Seconds())

		counts, err := tb.VerifyDeployment(node)
		if err != nil {
			panic(err)
		}
		fmt.Println("\nlocal disk provenance (sectors):")
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-24s %d\n", name, counts[name])
		}
		fmt.Printf("\nVM exits while virtualized: %d; traps after de-virtualization: 0 by construction\n",
			node.M.World.TotalExits())
	})
	tb.K.Run()
}
