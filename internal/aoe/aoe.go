// Package aoe implements the ATA-over-Ethernet protocol with the paper's
// extensions (§4.2): jumbo-frame payloads, fragmentation of large
// transfers with the tag field encoding the fragment offset, and
// retransmission to tolerate packet loss.
//
// AoE is chosen exactly as in the paper: its header carries the ATA device
// register values, so a device mediator converts an intercepted command to
// a request with near-zero effort — the LBA/count/command fields captured
// by I/O interpretation map 1:1 onto the wire format.
package aoe

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hw/disk"
)

// EtherType is the registered AoE ethertype.
const EtherType = 0x88A2

// HeaderSize is the wire size of the AoE header plus the ATA argument
// section, in bytes.
const HeaderSize = 36

// Protocol flag bits.
const (
	FlagResponse = 1 << 3
	FlagError    = 1 << 2
)

// ATA aflags bits.
const (
	AFlagWrite = 1 << 0
	AFlagLBA48 = 1 << 6
)

// ATA command opcodes used by the protocol.
const (
	CmdReadDMAExt  = 0x25
	CmdWriteDMAExt = 0x35
	CmdIdentify    = 0xEC
)

// Tag packs a request ID and a fragment index: the paper's extension uses
// the tag to determine the offset of a received fragment.
const (
	tagFragBits = 12
	tagFragMask = 1<<tagFragBits - 1
	// MaxFragments is the largest number of fragments per request.
	MaxFragments = 1 << tagFragBits
)

// MakeTag builds a tag from a request ID and fragment index.
func MakeTag(reqID uint32, frag int) uint32 {
	if frag < 0 || frag >= MaxFragments {
		panic("aoe: fragment index out of range")
	}
	return reqID<<tagFragBits | uint32(frag)
}

// SplitTag recovers the request ID and fragment index from a tag.
func SplitTag(tag uint32) (reqID uint32, frag int) {
	return tag >> tagFragBits, int(tag & tagFragMask)
}

// Header is the AoE header including the ATA argument section. The ATA
// fields mirror the task-file registers: a mediator copies intercepted
// register values straight in.
type Header struct {
	Flags   uint8
	Error   uint8
	Major   uint16 // shelf address
	Minor   uint8  // slot address
	Tag     uint32
	AFlags  uint8
	Feature uint8
	Count   uint16 // sectors in this fragment (extension: 16-bit count)
	Cmd     uint8  // ATA command / status
	LBA     uint64 // 48-bit LBA
	// FragTotal is the paper-extension fragment count for the whole
	// request, letting the receiver size its reassembly window.
	FragTotal uint16
	// Stamp is the paper-extension send timestamp (ns) of this exact
	// transmission, echoed verbatim by the target. It gives the initiator
	// an unambiguous RTT sample per response — a reply to a retransmitted
	// fragment carries the stamp of whichever copy the target actually
	// served, so samples stay truthful under retransmission (where timing
	// against the most recent send would read far below the real round
	// trip). Zero means unstamped; receivers skip the sample.
	Stamp int64
}

// Marshal encodes the header into a fresh HeaderSize-byte slice.
func (h *Header) Marshal() []byte {
	b := make([]byte, HeaderSize)
	b[0] = 0x10 | h.Flags // version 1
	b[1] = h.Error
	binary.BigEndian.PutUint16(b[2:], h.Major)
	b[4] = h.Minor
	b[5] = 0 // command: ATA
	binary.BigEndian.PutUint32(b[6:], h.Tag)
	b[10] = h.AFlags
	b[11] = h.Feature
	binary.BigEndian.PutUint16(b[12:], h.Count)
	b[14] = h.Cmd
	b[15] = 0
	binary.BigEndian.PutUint64(b[16:], h.LBA&0xFFFFFFFFFFFF)
	binary.BigEndian.PutUint16(b[24:], h.FragTotal)
	binary.BigEndian.PutUint64(b[26:], uint64(h.Stamp))
	return b
}

// Unmarshal decodes a header from b.
func Unmarshal(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("aoe: short header: %d bytes", len(b))
	}
	if b[0]>>4 != 1 {
		return Header{}, fmt.Errorf("aoe: unsupported version %d", b[0]>>4)
	}
	var h Header
	h.Flags = b[0] & 0x0F
	h.Error = b[1]
	h.Major = binary.BigEndian.Uint16(b[2:])
	h.Minor = b[4]
	h.Tag = binary.BigEndian.Uint32(b[6:])
	h.AFlags = b[10]
	h.Feature = b[11]
	h.Count = binary.BigEndian.Uint16(b[12:])
	h.Cmd = b[14]
	h.LBA = binary.BigEndian.Uint64(b[16:]) & 0xFFFFFFFFFFFF
	h.FragTotal = binary.BigEndian.Uint16(b[24:])
	h.Stamp = int64(binary.BigEndian.Uint64(b[26:]))
	return h, nil
}

// Message is a protocol message in flight: the header plus, for read
// responses and write requests, the sector payload it carries. Payloads
// travel by reference; WireSize accounts for their bytes.
type Message struct {
	Header
	Payload disk.Payload
}

// IsResponse reports whether the message is a target response.
func (m *Message) IsResponse() bool { return m.Flags&FlagResponse != 0 }

// IsWrite reports whether the ATA command transfers data to the target.
func (m *Message) IsWrite() bool { return m.AFlags&AFlagWrite != 0 }

// WireSize reports the frame payload size on the wire: AoE header plus
// carried sectors.
func (m *Message) WireSize() int64 {
	n := int64(HeaderSize)
	if m.carriesData() {
		n += int64(m.Count) * disk.SectorSize
	}
	return n
}

func (m *Message) carriesData() bool {
	if m.IsResponse() {
		return !m.IsWrite() && m.Flags&FlagError == 0 // read response
	}
	return m.IsWrite() // write request
}

// SectorsPerFrame reports how many sectors fit in one frame on a link with
// the given MTU, accounting for Ethernet and AoE headers. With the paper's
// 9000-byte-payload jumbo frames this is 17 sectors per fragment.
func SectorsPerFrame(mtu int64) int64 {
	n := (mtu - 18 /* ethernet */ - HeaderSize) / disk.SectorSize
	if n < 1 {
		panic(fmt.Sprintf("aoe: MTU %d cannot carry a sector", mtu))
	}
	return n
}

// Fragments reports how many fragments a count-sector transfer needs on a
// link carrying perFrame sectors per frame.
func Fragments(count, perFrame int64) int {
	n := int((count + perFrame - 1) / perFrame)
	if n > MaxFragments {
		panic(fmt.Sprintf("aoe: %d-sector transfer needs %d fragments (max %d)", count, n, MaxFragments))
	}
	return n
}
