package aoe

import (
	"testing"
	"testing/quick"

	"repro/internal/hw/disk"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Flags:     FlagResponse,
		Error:     3,
		Major:     0x1234,
		Minor:     7,
		Tag:       0xDEADBEEF,
		AFlags:    AFlagWrite | AFlagLBA48,
		Feature:   0x55,
		Count:     2048,
		Cmd:       CmdWriteDMAExt,
		LBA:       0x123456789AB,
		FragTotal: 128,
		Stamp:     987654321012345,
	}
	got, err := Unmarshal(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(flags, errc, minor, aflags, feature, cmd uint8, major, count, fragTotal uint16, tag uint32, lba uint64) bool {
		h := Header{
			Flags: flags & 0x0F, Error: errc, Major: major, Minor: minor,
			Tag: tag, AFlags: aflags, Feature: feature, Count: count,
			Cmd: cmd, LBA: lba & 0xFFFFFFFFFFFF, FragTotal: fragTotal,
		}
		got, err := Unmarshal(h.Marshal())
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
	b := (&Header{}).Marshal()
	b[0] = 0x20 // version 2
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestTagPacking(t *testing.T) {
	tag := MakeTag(12345, 678)
	id, frag := SplitTag(tag)
	if id != 12345 || frag != 678 {
		t.Fatalf("SplitTag = %d,%d", id, frag)
	}
}

func TestTagPackingProperty(t *testing.T) {
	f := func(id uint32, frag uint16) bool {
		id %= 1 << 20
		fi := int(frag) % MaxFragments
		gid, gfrag := SplitTag(MakeTag(id, fi))
		return gid == id && gfrag == fi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeTagRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized fragment index accepted")
		}
	}()
	MakeTag(1, MaxFragments)
}

func TestSectorsPerFrame(t *testing.T) {
	if got := SectorsPerFrame(9018); got != 17 {
		t.Fatalf("jumbo SectorsPerFrame = %d, want 17", got)
	}
	if got := SectorsPerFrame(1518); got != 2 {
		t.Fatalf("standard SectorsPerFrame = %d, want 2", got)
	}
}

func TestFragments(t *testing.T) {
	if got := Fragments(2048, 17); got != 121 {
		t.Fatalf("Fragments(2048,17) = %d, want 121", got)
	}
	if got := Fragments(17, 17); got != 1 {
		t.Fatalf("Fragments(17,17) = %d, want 1", got)
	}
	if got := Fragments(18, 17); got != 2 {
		t.Fatalf("Fragments(18,17) = %d, want 2", got)
	}
}

func TestMessageWireSize(t *testing.T) {
	readReq := &Message{Header: Header{Count: 17, Cmd: CmdReadDMAExt, AFlags: AFlagLBA48}}
	if readReq.WireSize() != HeaderSize {
		t.Fatal("read request should carry no data")
	}
	readResp := &Message{Header: Header{Count: 17, Flags: FlagResponse}}
	if readResp.WireSize() != HeaderSize+17*disk.SectorSize {
		t.Fatal("read response should carry sectors")
	}
	writeReq := &Message{Header: Header{Count: 17, AFlags: AFlagWrite}}
	if writeReq.WireSize() != HeaderSize+17*disk.SectorSize {
		t.Fatal("write request should carry sectors")
	}
	writeResp := &Message{Header: Header{Count: 17, AFlags: AFlagWrite, Flags: FlagResponse}}
	if writeResp.WireSize() != HeaderSize {
		t.Fatal("write ack should carry no data")
	}
	errResp := &Message{Header: Header{Count: 17, Flags: FlagResponse | FlagError}}
	if errResp.WireSize() != HeaderSize {
		t.Fatal("error response should carry no data")
	}
}

// TestInitiatorHeaderFieldsFromRegisters checks the paper's core argument
// for AoE: the header fields are the ATA register values, so conversion
// from an intercepted command is mechanical.
func TestInitiatorHeaderFieldsFromRegisters(t *testing.T) {
	h := Header{AFlags: AFlagLBA48, Count: 17, Cmd: CmdReadDMAExt, LBA: 0xABCDEF}
	b := h.Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.LBA != 0xABCDEF || got.Count != 17 || got.Cmd != CmdReadDMAExt {
		t.Fatal("register fields did not survive the wire")
	}
}
