package aoe

import (
	"repro/internal/ethernet"
	"repro/internal/hw/disk"
)

// FramePool recycles paired Frame+Message records for one AoE endpoint.
// Senders take a pair with Get, fill in the message and frame fields, and
// transmit; the frame rides the wire ref-counted (see ethernet.Frame) and
// returns here when the last reference — the receiver, or a drop point —
// releases it. A deployment streams millions of fragments through a single
// initiator/target pair, so recycling these two records removes the
// dominant per-fragment allocations.
//
// Pools are single-owner: the sim is single-threaded, and Get/ReleaseFrame
// never straddle a yield point, so no locking is needed.
type FramePool struct {
	free []*framePair
}

// framePair is one recyclable frame with its embedded message payload.
type framePair struct {
	pool  *FramePool
	frame ethernet.Frame
	msg   Message
}

// ReleaseFrame implements ethernet.FrameOwner: the pair returns to its
// pool. The payload source is dropped immediately so a recycled pair never
// pins sector data for the GC.
func (fp *framePair) ReleaseFrame(*ethernet.Frame) {
	fp.msg.Payload = disk.Payload{}
	fp.pool.free = append(fp.pool.free, fp)
}

// Get returns a zeroed frame/message pair with the frame's payload already
// pointing at the message and one reference outstanding. The caller fills
// in addressing and header fields and hands the frame to a transport.
func (p *FramePool) Get() (*ethernet.Frame, *Message) {
	var fp *framePair
	if n := len(p.free) - 1; n >= 0 {
		fp = p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		fp.frame = ethernet.Frame{}
		fp.msg = Message{}
	} else {
		fp = &framePair{pool: p}
	}
	fp.frame.Payload = &fp.msg
	fp.frame.InitRef(fp)
	return &fp.frame, &fp.msg
}
