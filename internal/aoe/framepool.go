package aoe

import (
	"sync"

	"repro/internal/ethernet"
	"repro/internal/hw/disk"
)

// FramePool recycles paired Frame+Message records for one AoE endpoint.
// Senders take a pair with Get, fill in the message and frame fields, and
// transmit; the frame rides the wire ref-counted (see ethernet.Frame) and
// returns here when the last reference — the receiver, or a drop point —
// releases it. A deployment streams millions of fragments through a single
// initiator/target pair, so recycling these two records removes the
// dominant per-fragment allocations.
//
// Pools are single-owner by default: the sim is single-threaded, and
// Get/ReleaseFrame never straddle a yield point, so no locking is needed.
// Under the sharded kernel (DESIGN.md §13) an endpoint's frames are
// released by the peer's shard domain, so sharded testbeds call Share to
// guard the free list with a mutex. Only the free list needs guarding:
// a pair's contents are written solely by whichever side holds its one
// live reference, with the pool handoff as the ordering edge, and Get
// zeroes the pair anyway — free-list order never affects simulation
// output.
type FramePool struct {
	free []*framePair
	mu   *sync.Mutex
}

// Share makes the pool safe for cross-shard release. Must be called
// before the pool sees traffic.
func (p *FramePool) Share() { p.mu = &sync.Mutex{} }

// framePair is one recyclable frame with its embedded message payload.
type framePair struct {
	pool  *FramePool
	frame ethernet.Frame
	msg   Message
}

// ReleaseFrame implements ethernet.FrameOwner: the pair returns to its
// pool. The payload source is dropped immediately so a recycled pair never
// pins sector data for the GC.
func (fp *framePair) ReleaseFrame(*ethernet.Frame) {
	fp.msg.Payload = disk.Payload{}
	p := fp.pool
	if p.mu != nil {
		p.mu.Lock()
		p.free = append(p.free, fp)
		p.mu.Unlock()
		return
	}
	p.free = append(p.free, fp)
}

// Get returns a zeroed frame/message pair with the frame's payload already
// pointing at the message and one reference outstanding. The caller fills
// in addressing and header fields and hands the frame to a transport.
func (p *FramePool) Get() (*ethernet.Frame, *Message) {
	var fp *framePair
	if p.mu != nil {
		p.mu.Lock()
	}
	if n := len(p.free) - 1; n >= 0 {
		fp = p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
	}
	if p.mu != nil {
		p.mu.Unlock()
	}
	if fp != nil {
		fp.frame = ethernet.Frame{}
		fp.msg = Message{}
	} else {
		fp = &framePair{pool: p}
	}
	fp.frame.Payload = &fp.msg
	fp.frame.InitRef(fp)
	return &fp.frame, &fp.msg
}
