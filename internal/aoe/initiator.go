package aoe

import (
	"fmt"

	"repro/internal/ethernet"
	"repro/internal/hw/disk"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Transport is the link the initiator speaks through: a dedicated NIC in
// the paper's chosen configuration, or the shared-NIC mediator's
// interleaved path in the §6 alternative.
type Transport interface {
	Send(f *ethernet.Frame)
	MTU() int64
	SetOnReceive(fn func(*ethernet.Frame))
	TryRecv() (*ethernet.Frame, bool)
}

// TargetAddr names one AoE target: a server MAC plus shelf/slot address.
type TargetAddr struct {
	Server ethernet.MAC
	Major  uint16
	Minor  uint8
}

// Initiator is the client side of the extended AoE protocol: it converts
// sector ranges into per-fragment requests, reassembles responses, and
// retransmits fragments lost on the wire. BMcast's VMM embeds one; the
// image-copy installer uses one too.
type Initiator struct {
	k      *sim.Kernel
	nic    Transport
	Server ethernet.MAC
	Major  uint16
	Minor  uint8

	// targets is the failover list; targets[cur] mirrors Server/Major/Minor.
	// When a request exhausts MaxRetries (or the target answers with an
	// error) the initiator rotates to the next entry instead of failing.
	targets []TargetAddr
	cur     int

	perFrame int64
	nextReq  uint32
	pending  map[uint32]*pendingReq
	// reqPool recycles completed request records (and their per-fragment
	// slices and progress signals), so a steady stream of round trips —
	// a 32 GB background copy issues millions — does not allocate a fresh
	// record per request.
	reqPool []*pendingReq
	// framePool recycles outbound request frames; they come back when the
	// target (or a drop point on the path) releases them.
	framePool FramePool

	// RTO management: exponentially weighted RTT estimate; the timeout
	// fires only after no fragment progress for the current RTO.
	rtt sim.Duration

	// MaxRetries bounds retransmission rounds per request before failing.
	MaxRetries int

	closed bool

	Requests       metrics.Counter
	FragmentsSent  metrics.Counter
	FragmentsRecvd metrics.Counter
	Retransmits    metrics.Counter
	Failovers      metrics.Counter
	BytesRead      metrics.Counter
	BytesWritten   metrics.Counter

	// Observability (see Instrument): one round-trip span per request.
	node string
	tr   *trace.Recorder
}

// Instrument adopts the initiator's counters into reg under "aoe.*" names
// labeled with the node, and makes every request record a round-trip span
// on tr (nil tr: no spans). No-op counters on a nil registry.
func (in *Initiator) Instrument(reg *metrics.Registry, tr *trace.Recorder, node string) {
	in.node, in.tr = node, tr
	l := metrics.L("node", node)
	reg.RegisterCounter("aoe.requests", &in.Requests, l)
	reg.RegisterCounter("aoe.fragments_sent", &in.FragmentsSent, l)
	reg.RegisterCounter("aoe.fragments_recvd", &in.FragmentsRecvd, l)
	reg.RegisterCounter("aoe.retransmits", &in.Retransmits, l)
	reg.RegisterCounter("aoe.failovers", &in.Failovers, l)
	reg.RegisterCounter("aoe.bytes_read", &in.BytesRead, l)
	reg.RegisterCounter("aoe.bytes_written", &in.BytesWritten, l)
}

type pendingReq struct {
	lba, count int64
	frags      int
	got        []bool
	gotCount   int
	parts      []disk.Payload
	write      bool
	src        disk.SectorSource // write data source
	progress   *sim.Signal
	err        error
	cycled     int   // failovers consumed by this request (≤ len(targets)-1)
	flowID     int64 // trace span ID stamped on outgoing frames (0 untraced)
}

// newReq takes a request record from the pool (or allocates one) and sizes
// its per-fragment slices for frags fragments.
func (in *Initiator) newReq(frags int) *pendingReq {
	if n := len(in.reqPool) - 1; n >= 0 {
		pr := in.reqPool[n]
		in.reqPool[n] = nil
		in.reqPool = in.reqPool[:n]
		pr.frags = frags
		pr.gotCount = 0
		pr.cycled = 0
		pr.write, pr.src, pr.err = false, nil, nil
		pr.got = resetSlice(pr.got, frags)
		pr.parts = resetSlice(pr.parts, frags)
		return pr
	}
	return &pendingReq{
		frags:    frags,
		got:      make([]bool, frags),
		parts:    make([]disk.Payload, frags),
		progress: in.k.NewSignal("aoe.req"),
	}
}

// release returns a completed record to the pool. Safe because run()
// deletes the reqID from pending before returning, so late frames for the
// old request can never touch the recycled record.
func (in *Initiator) release(pr *pendingReq) {
	for i := range pr.parts {
		pr.parts[i] = disk.Payload{} // drop payload sources for the GC
	}
	pr.src = nil
	in.reqPool = append(in.reqPool, pr)
}

// resetSlice returns s resized to n elements, all zero, reusing its backing
// array when capacity allows.
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// NewInitiator returns an initiator speaking through n to the target with
// the given MAC and shelf/slot address. Frames are delivered immediately
// (interrupt-style); see SetPolled for the VMM's polled-driver mode.
// ShareFramePool makes the initiator's frame pool safe for cross-shard
// release (the vblade server releases request frames from its own shard
// domain). Sharded testbeds call this right after boot.
func (i *Initiator) ShareFramePool() { i.framePool.Share() }

func NewInitiator(k *sim.Kernel, n Transport, server ethernet.MAC, major uint16, minor uint8) *Initiator {
	in := &Initiator{
		k:          k,
		nic:        n,
		Server:     server,
		Major:      major,
		Minor:      minor,
		targets:    []TargetAddr{{Server: server, Major: major, Minor: minor}},
		perFrame:   SectorsPerFrame(n.MTU()),
		pending:    make(map[uint32]*pendingReq),
		rtt:        2 * sim.Millisecond, // conservative initial estimate
		MaxRetries: 16,
	}
	n.SetOnReceive(in.handleFrame)
	return in
}

// AddTarget appends a secondary target to the failover list. The initiator
// stays on its current target until a request exhausts MaxRetries (or the
// target answers with an error), then rotates; once failed over, later
// requests go straight to the live target.
func (in *Initiator) AddTarget(server ethernet.MAC, major uint16, minor uint8) {
	in.targets = append(in.targets, TargetAddr{Server: server, Major: major, Minor: minor})
}

// Targets returns the configured target list (primary first).
func (in *Initiator) Targets() []TargetAddr { return in.targets }

// failover rotates to the next target if this request has not already tried
// every one, rewriting the address used by subsequent sends. Reports whether
// a switch happened.
func (in *Initiator) failover(pr *pendingReq) bool {
	if len(in.targets) < 2 || pr.cycled >= len(in.targets)-1 {
		return false
	}
	pr.cycled++
	in.cur = (in.cur + 1) % len(in.targets)
	t := in.targets[in.cur]
	in.Server, in.Major, in.Minor = t.Server, t.Major, t.Minor
	in.Failovers.Inc()
	in.tr.Emit(in.node, "aoe", "failover", trace.Str("server", t.Server.String()))
	return true
}

// SetPolled switches the initiator to the VMM's polled receive mode: the
// paper's dedicated-NIC drivers (§4.3) have no interrupt path, so arrived
// frames wait in the rx ring until the polling thread's next tick.
// interval returns the current poll interval (the VMM derives it from the
// RTT estimate, §4.1).
func (in *Initiator) SetPolled(interval func() sim.Duration) {
	in.nic.SetOnReceive(nil) // frames queue on the NIC
	var poll func()
	poll = func() {
		if in.closed {
			return
		}
		for {
			f, ok := in.nic.TryRecv()
			if !ok {
				break
			}
			in.handleFrame(f)
		}
		in.k.After(interval(), poll)
	}
	in.k.After(interval(), poll)
}

// Close shuts the initiator down: the polling loop (if any) stops at its
// next tick and late frames are ignored. The de-virtualizing VMM calls
// this when it disappears.
func (in *Initiator) Close() {
	in.closed = true
	in.nic.SetOnReceive(nil)
}

// RTT reports the smoothed round-trip time estimate; the VMM uses it to
// pick device polling intervals (paper §4.1).
func (in *Initiator) RTT() sim.Duration { return in.rtt }

// SectorsPerFragment reports the per-fragment payload capacity.
func (in *Initiator) SectorsPerFragment() int64 { return in.perFrame }

func (in *Initiator) handleFrame(f *ethernet.Frame) {
	// The initiator is the final consumer of response frames: whatever it
	// needs (the payload descriptor) is copied out below, so the frame's
	// last reference drops on every return path.
	defer f.Release()
	msg, ok := f.Payload.(*Message)
	if !ok || f.EtherType != EtherType || !msg.IsResponse() {
		return
	}
	reqID, frag := SplitTag(msg.Tag)
	pr, ok := in.pending[reqID]
	if !ok || frag >= pr.frags || pr.got[frag] {
		return // duplicate or stale response
	}
	if msg.Flags&FlagError != 0 {
		pr.err = fmt.Errorf("aoe: target error %#x for request %d", msg.Error, reqID)
		pr.progress.Broadcast()
		return
	}
	pr.got[frag] = true
	pr.gotCount++
	in.FragmentsRecvd.Inc()
	if !pr.write {
		pr.parts[frag] = msg.Payload
	}
	// The echoed stamp identifies which transmission the target served,
	// so the sample is exact even for retransmitted fragments. That
	// matters under fleet-scale congestion: a reply to the original send
	// timed against a later retransmit would read far below the true
	// round trip, and the low estimate keeps the RTO under the server's
	// queue delay — every request retransmits, the queue grows, and the
	// collapse feeds itself. A truthful sample lets the estimate track
	// the queue and the RTO back off to match.
	if msg.Stamp > 0 {
		sample := in.k.Now().Sub(sim.Time(msg.Stamp))
		in.rtt = (in.rtt*7 + sample) / 8
	}
	pr.progress.Broadcast()
}

func (in *Initiator) fragRange(pr *pendingReq, frag int) (lba, count int64) {
	lba = pr.lba + int64(frag)*in.perFrame
	count = in.perFrame
	if rem := pr.lba + pr.count - lba; rem < count {
		count = rem
	}
	return lba, count
}

func (in *Initiator) sendFragment(pr *pendingReq, reqID uint32, frag int) {
	lba, count := in.fragRange(pr, frag)
	f, msg := in.framePool.Get()
	msg.Header = Header{
		Major:     in.Major,
		Minor:     in.Minor,
		Tag:       MakeTag(reqID, frag),
		Count:     uint16(count),
		LBA:       uint64(lba),
		FragTotal: uint16(pr.frags),
	}
	if pr.write {
		msg.AFlags = AFlagWrite | AFlagLBA48
		msg.Cmd = CmdWriteDMAExt
		msg.Payload = disk.Payload{LBA: lba, Count: count, Source: pr.src}
	} else {
		msg.AFlags = AFlagLBA48
		msg.Cmd = CmdReadDMAExt
	}
	msg.Stamp = int64(in.k.Now())
	in.FragmentsSent.Inc()
	f.Dst = in.Server
	f.EtherType = EtherType
	f.Size = ethernet.HeaderSize + msg.WireSize()
	f.FlowID = pr.flowID // always set: pooled frames carry stale IDs
	in.nic.Send(f)
}

// run executes a request to completion with retransmission, blocking the
// calling process.
func (in *Initiator) run(p *sim.Proc, pr *pendingReq) error {
	reqID := in.nextReq
	in.nextReq = (in.nextReq + 1) % (1 << (32 - tagFragBits))
	in.pending[reqID] = pr
	defer delete(in.pending, reqID)
	in.Requests.Inc()
	// Building span attributes boxes values even when no recorder is
	// installed, so the uninstrumented hot path skips Begin entirely
	// (End is nil-safe).
	var sp *trace.Span
	pr.flowID = 0
	if in.tr != nil {
		name := "read"
		if pr.write {
			name = "write"
		}
		sp = in.tr.BeginChild(trace.Cause(p), in.node, "aoe", name,
			trace.Int("lba", pr.lba), trace.Int("count", pr.count), trace.Int("frags", int64(pr.frags)))
		pr.flowID = sp.SpanID()
	}
	defer sp.End()

	for f := 0; f < pr.frags; f++ {
		in.sendFragment(pr, reqID, f)
	}
	retries := 0
	for pr.gotCount < pr.frags {
		if in.closed {
			return fmt.Errorf("aoe: initiator closed with request %d incomplete (%d/%d fragments)",
				reqID, pr.gotCount, pr.frags)
		}
		if pr.err != nil {
			// The target answered with an error status. With a secondary
			// configured, rotate to it and retry; otherwise fail the request.
			if !in.failover(pr) {
				return pr.err
			}
			pr.err = nil
			retries = 0
			in.retransmitMissing(pr, reqID)
			continue
		}
		// Wait for progress; time out after 4×RTT of silence, doubling
		// per retry round (exponential backoff keeps a loaded server
		// from melting down under retransmit storms).
		rto := 4 * in.rtt << uint(retries)
		if min := 2 * sim.Millisecond; rto < min {
			rto = min
		}
		if max := 2 * sim.Second; rto > max {
			rto = max
		}
		before := pr.gotCount
		if p.WaitTimeout(pr.progress, rto) {
			if pr.gotCount > before {
				// Forward progress: the path is live again, so stop
				// escalating — otherwise one early loss burst pins every
				// later timeout in this request at the cap.
				retries = 0
			}
			continue // a fragment (or an error) arrived
		}
		retries++
		if retries > in.MaxRetries {
			// The current target is unreachable. Fail over if a fresh
			// target remains; otherwise surface the timeout.
			if !in.failover(pr) {
				return fmt.Errorf("aoe: request %d timed out after %d retries (%d/%d fragments)",
					reqID, in.MaxRetries, pr.gotCount, pr.frags)
			}
			retries = 0
		}
		in.retransmitMissing(pr, reqID)
	}
	return nil
}

// retransmitMissing resends every fragment not yet acknowledged.
func (in *Initiator) retransmitMissing(pr *pendingReq, reqID uint32) {
	for f := 0; f < pr.frags; f++ {
		if !pr.got[f] {
			in.Retransmits.Inc()
			in.sendFragment(pr, reqID, f)
		}
	}
}

// Read fetches count sectors at lba from the target, blocking the process.
func (in *Initiator) Read(p *sim.Proc, lba, count int64) (disk.Payload, error) {
	if count <= 0 {
		return disk.Payload{}, fmt.Errorf("aoe: non-positive read count %d", count)
	}
	pr := in.newReq(Fragments(count, in.perFrame))
	pr.lba, pr.count = lba, count
	if err := in.run(p, pr); err != nil {
		in.release(pr)
		return disk.Payload{}, err
	}
	in.BytesRead.Add(count * disk.SectorSize)
	out := in.assemble(pr)
	in.release(pr)
	return out, nil
}

// assemble merges fragment payloads into one. Fragments sharing one source
// stay symbolic; mixed sources are materialized.
func (in *Initiator) assemble(pr *pendingReq) disk.Payload {
	uniform := true
	for _, part := range pr.parts {
		if part.Source != pr.parts[0].Source {
			uniform = false
			break
		}
	}
	if uniform {
		return disk.Payload{LBA: pr.lba, Count: pr.count, Source: pr.parts[0].Source}
	}
	buf := make([]byte, 0, pr.count*disk.SectorSize)
	for _, part := range pr.parts {
		buf = part.AppendTo(buf)
	}
	return disk.Payload{LBA: pr.lba, Count: pr.count, Source: disk.OwnedBuffer(pr.lba, buf, "aoe-read")}
}

// Write stores the payload's sectors on the target, blocking the process.
func (in *Initiator) Write(p *sim.Proc, payload disk.Payload) error {
	if payload.Count <= 0 {
		return fmt.Errorf("aoe: non-positive write count %d", payload.Count)
	}
	pr := in.newReq(Fragments(payload.Count, in.perFrame))
	pr.lba, pr.count = payload.LBA, payload.Count
	pr.write, pr.src = true, payload.Source
	err := in.run(p, pr)
	in.release(pr)
	if err != nil {
		return err
	}
	in.BytesWritten.Add(payload.Count * disk.SectorSize)
	return nil
}
