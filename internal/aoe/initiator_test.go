package aoe

import (
	"testing"

	"repro/internal/ethernet"
	"repro/internal/hw/disk"
	"repro/internal/sim"
)

// fakeTarget is a scripted stand-in for one vblade server: requests are
// answered after a fixed delay unless muted (swallowed silently) or failing
// (answered with an AoE error status).
type fakeTarget struct {
	mute bool
	fail bool
	// respond, when set, filters which fragment indices get answered.
	respond func(frag int) bool
	served  int
}

// fakeTransport routes initiator frames to scripted targets keyed by MAC,
// recording every send, so tests can drive loss/failover scenarios without
// a network stack.
type fakeTransport struct {
	k       *sim.Kernel
	targets map[ethernet.MAC]*fakeTarget
	onRecv  func(*ethernet.Frame)
	delay   sim.Duration

	sentTo   []ethernet.MAC
	sentFrag []int
	sentReq  []uint32
	sentAt   []sim.Time
}

func newFakeTransport(k *sim.Kernel) *fakeTransport {
	return &fakeTransport{k: k, targets: make(map[ethernet.MAC]*fakeTarget), delay: 100 * sim.Microsecond}
}

func (ft *fakeTransport) Send(f *ethernet.Frame) {
	msg := f.Payload.(*Message)
	reqID, frag := SplitTag(msg.Tag)
	ft.sentTo = append(ft.sentTo, f.Dst)
	ft.sentFrag = append(ft.sentFrag, frag)
	ft.sentReq = append(ft.sentReq, reqID)
	ft.sentAt = append(ft.sentAt, ft.k.Now())
	tgt := ft.targets[f.Dst]
	if tgt == nil || tgt.mute || (tgt.respond != nil && !tgt.respond(frag)) {
		return
	}
	tgt.served++
	resp := &Message{Header: msg.Header}
	resp.Flags |= FlagResponse
	if tgt.fail {
		resp.Flags |= FlagError
		resp.Error = 2
	} else if !msg.IsWrite() {
		resp.Payload = disk.Payload{LBA: int64(msg.LBA), Count: int64(msg.Count), Source: disk.Zero}
	}
	ft.k.After(ft.delay, func() {
		if ft.onRecv != nil {
			ft.onRecv(&ethernet.Frame{Src: f.Dst, EtherType: EtherType, Payload: resp,
				Size: ethernet.HeaderSize + resp.WireSize()})
		}
	})
}

func (ft *fakeTransport) MTU() int64                            { return 9018 }
func (ft *fakeTransport) SetOnReceive(fn func(*ethernet.Frame)) { ft.onRecv = fn }
func (ft *fakeTransport) TryRecv() (*ethernet.Frame, bool)      { return nil, false }

func TestBackoffResetsAfterProgress(t *testing.T) {
	// One early silence burst escalates the RTO; once a fragment arrives the
	// backoff must reset, so the next timeout fires quickly instead of being
	// pinned near the 2s cap for the rest of the request.
	k := sim.New(1)
	ft := newFakeTransport(k)
	tgt := &fakeTarget{mute: true}
	ft.targets[0x0A] = tgt
	in := NewInitiator(k, ft, 0x0A, 0, 0)
	in.MaxRetries = 40

	// t=600ms: after ~6 silent timeout rounds, answer fragment 0 only.
	var frag0ServedAt sim.Time
	k.After(600*sim.Millisecond, func() {
		tgt.mute = false
		tgt.respond = func(frag int) bool {
			if frag == 0 {
				if frag0ServedAt == 0 {
					frag0ServedAt = k.Now()
				}
				return true
			}
			return false
		}
	})
	// t=2s: open up fully so the request completes.
	k.After(2*sim.Second, func() { tgt.respond = nil })

	var err error
	k.Spawn("client", func(p *sim.Proc) {
		_, err = in.Read(p, 0, 18) // 2 fragments
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if frag0ServedAt == 0 {
		t.Fatal("fragment 0 was never served")
	}

	// Find the gap between the first two frag-1 retransmits after the
	// frag-0 response (progress) arrived. With the reset it is a handful of
	// ms; without it the escalated RTO puts it hundreds of ms out.
	progress := frag0ServedAt.Add(ft.delay)
	var prev, next sim.Time
	for i, frag := range ft.sentFrag {
		if frag != 1 || ft.sentAt[i] <= progress {
			continue
		}
		if prev == 0 {
			prev = ft.sentAt[i]
			continue
		}
		next = ft.sentAt[i]
		break
	}
	if prev == 0 || next == 0 {
		t.Fatal("no frag-1 retransmits observed after progress")
	}
	if gap := next.Sub(prev); gap > 100*sim.Millisecond {
		t.Fatalf("retransmit gap after progress = %v; backoff did not reset", gap)
	}
}

func TestFailoverAfterRetriesExhausted(t *testing.T) {
	k := sim.New(1)
	ft := newFakeTransport(k)
	ft.targets[0x0A] = &fakeTarget{mute: true} // dead primary
	ft.targets[0x0B] = &fakeTarget{}           // live secondary
	in := NewInitiator(k, ft, 0x0A, 0, 0)
	in.AddTarget(0x0B, 1, 0)
	in.MaxRetries = 2

	var err error
	k.Spawn("client", func(p *sim.Proc) {
		if _, err = in.Read(p, 0, 8); err != nil {
			return
		}
		_, err = in.Read(p, 8, 8) // second request: straight to the secondary
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Failovers.Value(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	if in.Server != 0x0B || in.Major != 1 {
		t.Fatalf("initiator still addresses %v major %d after failover", in.Server, in.Major)
	}
	// The second request (reqID 1) must go straight to the secondary, never
	// probing the dead primary again.
	for i, mac := range ft.sentTo {
		if ft.sentReq[i] == 1 && mac == 0x0A {
			t.Fatal("request after failover still sent to the dead primary")
		}
	}
}

func TestFailoverOnTargetError(t *testing.T) {
	// An explicit error status (e.g. a media-error window) triggers
	// failover immediately, without burning MaxRetries timeouts first.
	k := sim.New(1)
	ft := newFakeTransport(k)
	ft.targets[0x0A] = &fakeTarget{fail: true}
	ft.targets[0x0B] = &fakeTarget{}
	in := NewInitiator(k, ft, 0x0A, 0, 0)
	in.AddTarget(0x0B, 0, 0)

	var err error
	k.Spawn("client", func(p *sim.Proc) {
		_, err = in.Read(p, 0, 8)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if in.Failovers.Value() != 1 {
		t.Fatalf("Failovers = %d, want 1", in.Failovers.Value())
	}
	if k.Now() > sim.Time(sim.Second) {
		t.Fatalf("error-triggered failover took %v; should not wait out timeouts", k.Now())
	}
}

func TestNoSecondaryTargetErrorFailsRequest(t *testing.T) {
	k := sim.New(1)
	ft := newFakeTransport(k)
	ft.targets[0x0A] = &fakeTarget{fail: true}
	in := NewInitiator(k, ft, 0x0A, 0, 0)
	var err error
	k.Spawn("client", func(p *sim.Proc) {
		_, err = in.Read(p, 0, 8)
	})
	k.Run()
	if err == nil {
		t.Fatal("target error with no secondary did not fail the request")
	}
}

func TestFailoverCycleBounded(t *testing.T) {
	// With every target dead, a request tries each one once and then fails
	// instead of rotating forever.
	k := sim.New(1)
	ft := newFakeTransport(k)
	ft.targets[0x0A] = &fakeTarget{mute: true}
	ft.targets[0x0B] = &fakeTarget{mute: true}
	in := NewInitiator(k, ft, 0x0A, 0, 0)
	in.AddTarget(0x0B, 0, 0)
	in.MaxRetries = 1

	var err error
	k.Spawn("client", func(p *sim.Proc) {
		_, err = in.Read(p, 0, 8)
	})
	k.Run()
	if err == nil {
		t.Fatal("request with all targets dead succeeded")
	}
	if in.Failovers.Value() != 1 {
		t.Fatalf("Failovers = %d, want exactly 1 (one rotation, then fail)", in.Failovers.Value())
	}
}

func TestClosedInitiatorFailsFast(t *testing.T) {
	// A watchdog closing the initiator must make a stuck request error out
	// at its next timeout instead of grinding through every retry round.
	k := sim.New(1)
	ft := newFakeTransport(k)
	ft.targets[0x0A] = &fakeTarget{mute: true}
	in := NewInitiator(k, ft, 0x0A, 0, 0)
	in.MaxRetries = 1000

	k.After(20*sim.Millisecond, in.Close)
	var err error
	k.Spawn("client", func(p *sim.Proc) {
		_, err = in.Read(p, 0, 8)
	})
	k.Run()
	if err == nil {
		t.Fatal("request on a closed initiator succeeded")
	}
	if k.Now() > sim.Time(5*sim.Second) {
		t.Fatalf("closed initiator took %v to fail", k.Now())
	}
}
