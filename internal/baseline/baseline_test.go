package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/machine"
	"repro/internal/sim"
)

func testSetup(imageBytes int64) (*sim.Kernel, *machine.Machine, *disk.Image) {
	k := sim.New(3)
	cfg := machine.RX200S6("m0")
	cfg.MemBytes = 512 << 20
	cfg.Disk.Sectors = 1 << 21
	m := machine.New(k, cfg)
	img := disk.NewSynthImage("ubuntu", imageBytes, 9)
	return k, m, img
}

func smallBoot() guest.BootProfile {
	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 8 << 20
	bp.CPUTime = 3 * sim.Second
	bp.SpanSectors = (48 << 20) / disk.SectorSize
	return bp
}

func TestRemoteStoreReadWrite(t *testing.T) {
	k, _, img := testSetup(64 << 20)
	rs := baseline.NewRemoteStore(k, "srv", baseline.NFS, img)
	k.Spawn("client", func(p *sim.Proc) {
		pl, err := rs.Read(p, 100, 64)
		if err != nil {
			t.Error(err)
			return
		}
		want := img.Payload(100, 64)
		if string(pl.Bytes()) != string(want.Bytes()) {
			t.Error("remote read content mismatch")
		}
		src := disk.Synth{Seed: 7, Label: "client"}
		if err := rs.Write(p, disk.Payload{LBA: 100, Count: 8, Source: src}); err != nil {
			t.Error(err)
			return
		}
		pl2, _ := rs.Read(p, 100, 8)
		if pl2.Source != disk.SectorSource(src) {
			t.Error("remote write not visible")
		}
	})
	k.Run()
	if rs.Requests.Value() != 3 {
		t.Fatalf("Requests = %d, want 3", rs.Requests.Value())
	}
}

func TestRemoteStoreBandwidthShared(t *testing.T) {
	k, _, img := testSetup(256 << 20)
	rs := baseline.NewRemoteStore(k, "srv", baseline.NFS, img)
	var solo, contended sim.Duration
	k.Spawn("solo", func(p *sim.Proc) {
		start := p.Now()
		rs.Read(p, 0, 65536) // 32 MB
		solo = p.Now().Sub(start)
	})
	k.Run()
	// Two concurrent 32 MB transfers must each take roughly 2× solo.
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("pair", func(p *sim.Proc) {
			start := p.Now()
			rs.Read(p, int64(i)*131072, 65536)
			if d := p.Now().Sub(start); d > contended {
				contended = d
			}
		})
	}
	k.Run()
	if contended < solo*3/2 {
		t.Fatalf("contended transfer %v not slower than solo %v", contended, solo)
	}
}

func TestRemoteRangeErrors(t *testing.T) {
	k, _, img := testSetup(1 << 20)
	rs := baseline.NewRemoteStore(k, "srv", baseline.ISCSI, img)
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := rs.Read(p, rs.Sectors(), 1); err == nil {
			t.Error("out-of-range remote read accepted")
		}
		if err := rs.Write(p, disk.Payload{LBA: -1, Count: 1, Source: disk.Zero}); err == nil {
			t.Error("bad remote write accepted")
		}
	})
	k.Run()
}

func TestKVMLocalBoot(t *testing.T) {
	k, m, img := testSetup(64 << 20)
	m.SetDiskImage(img)
	m.Firmware.InitTime = sim.Second
	var kvm *baseline.KVM
	k.Spawn("kvm", func(p *sim.Proc) {
		var err error
		kvm, err = baseline.StartKVM(p, m, baseline.DefaultKVMConfig(), baseline.KVMLocal, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := kvm.BootGuest(p, smallBoot()); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if kvm == nil || !kvm.OS.Booted {
		t.Fatal("KVM guest did not boot")
	}
	if !m.World.Virtualized() {
		t.Fatal("KVM world not virtualized")
	}
	if m.World.Overheads.MemPenalty == 0 {
		t.Fatal("KVM overheads not applied")
	}
	// virtio boot must cost more than host boot + trace CPU alone.
	boot := kvm.GuestBootedAt.Sub(kvm.BootedAt)
	if boot <= 3*sim.Second {
		t.Fatalf("guest boot %v implausibly fast", boot)
	}
}

func TestKVMGuestIOCorrect(t *testing.T) {
	k, m, img := testSetup(64 << 20)
	m.SetDiskImage(img)
	m.Firmware.InitTime = sim.Second
	k.Spawn("kvm", func(p *sim.Proc) {
		kvm, err := baseline.StartKVM(p, m, baseline.DefaultKVMConfig(), baseline.KVMLocal, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := kvm.OS.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		got, err := kvm.OS.ReadSectors(p, 500, 16, false)
		if err != nil {
			t.Error(err)
			return
		}
		want := make([]byte, 16*disk.SectorSize)
		img.ReadAt(500, want)
		if string(got) != string(want) {
			t.Error("virtio read content mismatch")
		}
	})
	k.Run()
}

func TestKVMRemoteNeedsStore(t *testing.T) {
	k, m, _ := testSetup(1 << 20)
	k.Spawn("kvm", func(p *sim.Proc) {
		if _, err := baseline.StartKVM(p, m, baseline.DefaultKVMConfig(), baseline.KVMNFS, nil); err == nil {
			t.Error("KVM over NFS without a store accepted")
		}
	})
	k.Run()
}

func TestKVMNFSFasterThanISCSIBoot(t *testing.T) {
	bootWith := func(proto baseline.Protocol, storage baseline.KVMStorage) sim.Duration {
		k, m, img := testSetup(64 << 20)
		m.Firmware.InitTime = sim.Second
		rs := baseline.NewRemoteStore(k, "srv", proto, img)
		var boot sim.Duration
		k.Spawn("kvm", func(p *sim.Proc) {
			kvm, err := baseline.StartKVM(p, m, baseline.DefaultKVMConfig(), storage, rs)
			if err != nil {
				t.Error(err)
				return
			}
			if err := kvm.BootGuest(p, smallBoot()); err != nil {
				t.Error(err)
				return
			}
			boot = kvm.GuestBootedAt.Sub(kvm.BootedAt)
		})
		k.Run()
		return boot
	}
	nfs := bootWith(baseline.NFS, baseline.KVMNFS)
	iscsi := bootWith(baseline.ISCSI, baseline.KVMISCSI)
	if nfs >= iscsi {
		t.Fatalf("NFS boot %v not faster than iSCSI %v", nfs, iscsi)
	}
}

func TestImageCopyDeployment(t *testing.T) {
	k, m, img := testSetup(128 << 20)
	m.Firmware.InitTime = 2 * sim.Second
	rs := baseline.NewRemoteStore(k, "srv", baseline.ISCSI, img)
	o := guest.NewOS("ubuntu", m)
	var res *baseline.ImageCopyResult
	k.Spawn("deploy", func(p *sim.Proc) {
		var err error
		res, err = baseline.DeployImageCopy(p, m, o, baseline.DefaultImageCopyConfig(), rs, smallBoot())
		if err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if res == nil || !o.Booted {
		t.Fatal("image-copy deployment failed")
	}
	if !(res.InstallerUp < res.TransferDone && res.TransferDone < res.RestartDone && res.RestartDone < res.GuestBootedAt) {
		t.Fatalf("stage ordering wrong: %+v", res)
	}
	// The whole image must be on the local disk (image content plus the
	// guest's own boot-time writes).
	var covered int64
	for name, c := range m.Disk.Store().CountBySource() {
		if name != "zero" {
			covered += c
		}
	}
	if covered < img.Sectors {
		t.Fatalf("local disk holds %d of %d image sectors", covered, img.Sectors)
	}
	// 128 MB at ~100 MB/s: transfer stage ≈ 1.3-2 s.
	transfer := res.TransferDone.Sub(res.InstallerUp)
	if transfer < sim.Second || transfer > 4*sim.Second {
		t.Fatalf("transfer took %v, want ~1.3-2s", transfer)
	}
}

func TestNetbootNoLocalDisk(t *testing.T) {
	k, m, img := testSetup(64 << 20)
	m.Firmware.InitTime = sim.Second
	rs := baseline.NewRemoteStore(k, "srv", baseline.NFS, img)
	o := guest.NewOS("ubuntu", m)
	k.Spawn("netboot", func(p *sim.Proc) {
		if err := baseline.BootNetboot(p, m, o, rs, smallBoot()); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if !o.Booted {
		t.Fatal("netboot did not boot")
	}
	// Nothing must have landed on the local disk.
	if m.Disk.BytesWritten.Value() != 0 {
		t.Fatal("netboot wrote the local disk")
	}
	if rs.BytesRead.Value() == 0 {
		t.Fatal("netboot read nothing from the server")
	}
}

func TestLHPOverheadsConfigured(t *testing.T) {
	cfg := baseline.DefaultKVMConfig()
	if cfg.LHPProb <= 0 || cfg.LHPStall <= 0 {
		t.Fatal("LHP parameters missing")
	}
	if cfg.MemPenalty < 0.2 || cfg.MemPenalty > 0.5 {
		t.Fatalf("MemPenalty %v outside the paper's plausible band", cfg.MemPenalty)
	}
}
