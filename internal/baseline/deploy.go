package baseline

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/machine"
	"repro/internal/sim"
)

// ImageCopyResult records the stages of an image-copy deployment, matching
// the paper's Fig 4 breakdown (50 s installer boot + 320 s transfer +
// 145 s restart + 29 s OS boot for a 32 GB image on gigabit Ethernet).
type ImageCopyResult struct {
	FirmwareDone  sim.Time
	InstallerUp   sim.Time
	TransferDone  sim.Time
	RestartDone   sim.Time
	GuestBootedAt sim.Time
}

// ImageCopyConfig tunes the image-copy baseline.
type ImageCopyConfig struct {
	// InstallerBoot is the network boot of the installer OS (PXE + a
	// minimal ramdisk environment).
	InstallerBoot sim.Duration
	// ShutdownTime is the non-firmware part of the post-copy restart.
	ShutdownTime sim.Duration
	// CopyChunk is the streaming granularity of the image transfer.
	CopyChunk int64
}

// DefaultImageCopyConfig returns the calibrated baseline.
func DefaultImageCopyConfig() ImageCopyConfig {
	return ImageCopyConfig{
		InstallerBoot: 47 * sim.Second, // +3 s PXE = the paper's 50 s
		ShutdownTime:  12 * sim.Second,
		CopyChunk:     4 << 20,
	}
}

// DeployImageCopy performs the OS-transparent but slow baseline: network
// boot an installer, stream the whole image to the local disk, reboot
// from disk, boot the OS. The remote store provides the image (over
// iSCSI in the paper's measurement).
func DeployImageCopy(p *sim.Proc, m *machine.Machine, o *guest.OS, cfg ImageCopyConfig,
	remote *RemoteStore, bp guest.BootProfile) (*ImageCopyResult, error) {

	res := &ImageCopyResult{}
	m.Firmware.PowerOn(p, 1 /* network */)
	res.FirmwareDone = p.Now()
	p.Sleep(cfg.InstallerBoot - m.Firmware.PXETime)
	res.InstallerUp = p.Now()

	// Stream the image: a fetch loop and a disk-write loop connected by
	// a small queue, so network and disk overlap and the slower side
	// paces the pipeline. The installer writes the raw disk, as dd would.
	sectorsPerChunk := cfg.CopyChunk / disk.SectorSize
	q := sim.NewQueue[disk.Payload](m.K, m.Name+".imgcopy")
	writerDone := m.K.NewSignal(m.Name + ".imgcopy.done")
	var writerErr error
	finished := false
	m.K.Spawn(m.Name+".imgcopy.writer", func(wp *sim.Proc) {
		for {
			pl, ok := q.Pop(wp)
			if !ok {
				break
			}
			m.Disk.Write(wp, pl.LBA, pl.Count, pl.Source)
		}
		finished = true
		writerDone.Broadcast()
	})
	for lba := int64(0); lba < remote.Sectors(); lba += sectorsPerChunk {
		n := sectorsPerChunk
		if lba+n > remote.Sectors() {
			n = remote.Sectors() - lba
		}
		for q.Len() >= 4 {
			p.Sleep(10 * sim.Millisecond) // bounded pipeline depth
		}
		pl, err := remote.Read(p, lba, n)
		if err != nil {
			return nil, fmt.Errorf("baseline: image copy fetch: %w", err)
		}
		q.Push(pl)
	}
	q.Close()
	p.WaitCond(writerDone, func() bool { return finished })
	if writerErr != nil {
		return nil, writerErr
	}
	res.TransferDone = p.Now()

	// Reboot from the local disk: shutdown plus full firmware init.
	p.Sleep(cfg.ShutdownTime)
	m.Firmware.PowerOn(p, 0)
	res.RestartDone = p.Now()

	if err := o.Boot(p, bp); err != nil {
		return nil, err
	}
	res.GuestBootedAt = p.Now()
	return res, nil
}

// NetbootDriver is the NFS-root block driver: every request goes to the
// remote store, forever — quick to start but with permanent network
// overhead (§2).
type NetbootDriver struct {
	remote *RemoteStore
}

// NewNetbootDriver returns a driver serving all I/O from remote.
func NewNetbootDriver(remote *RemoteStore) *NetbootDriver {
	return &NetbootDriver{remote: remote}
}

// Name implements guest.BlockDriver.
func (d *NetbootDriver) Name() string { return "nfs-root" }

// Init implements guest.BlockDriver.
func (d *NetbootDriver) Init(p *sim.Proc) error {
	p.Sleep(5 * sim.Millisecond) // mount
	return nil
}

// ReadSectors implements guest.BlockDriver.
func (d *NetbootDriver) ReadSectors(p *sim.Proc, lba, count int64, discard bool) ([]byte, error) {
	pl, err := d.remote.Read(p, lba, count)
	if err != nil {
		return nil, err
	}
	if discard {
		return nil, nil
	}
	return pl.Bytes(), nil
}

// WriteSectors implements guest.BlockDriver.
func (d *NetbootDriver) WriteSectors(p *sim.Proc, payload disk.Payload) error {
	return d.remote.Write(p, payload)
}

// Flush implements guest.BlockDriver.
func (d *NetbootDriver) Flush(p *sim.Proc) error {
	p.Sleep(d.remote.ReqLatency)
	return nil
}

// BootNetboot boots the OS with an NFS root: firmware network boot, then
// the boot trace served entirely from the remote store.
func BootNetboot(p *sim.Proc, m *machine.Machine, o *guest.OS, remote *RemoteStore, bp guest.BootProfile) error {
	m.Firmware.PowerOn(p, 1)
	o.SetDriver(NewNetbootDriver(remote))
	return o.Boot(p, bp)
}

var _ guest.BlockDriver = (*NetbootDriver)(nil)
