package baseline

import (
	"fmt"

	"repro/internal/cpuvirt"
	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/machine"
	"repro/internal/sim"
)

// KVMStorage selects the KVM guest's storage backend.
type KVMStorage int

// KVM storage backends from the paper's figures.
const (
	KVMLocal KVMStorage = iota // virtio-blk over the local disk
	KVMNFS                     // virtio over an NFS-held image
	KVMISCSI                   // virtio over an iSCSI-held image
)

func (s KVMStorage) String() string {
	switch s {
	case KVMLocal:
		return "local"
	case KVMNFS:
		return "nfs"
	default:
		return "iscsi"
	}
}

// KVMConfig captures the baseline's tuning, which follows the paper's
// setup: ELI exit-less interrupts, vCPU pinning, 2 GB huge pages.
type KVMConfig struct {
	// HostBootTime is KVM/host boot (30 s measured in §5.1).
	HostBootTime sim.Duration
	// MemPenalty is the slowdown of memory-bound guest work: nested
	// paging plus cache pollution from the VMM and host OS (§5.5.1:
	// +35% on the memory benchmark even with huge pages).
	MemPenalty float64
	// CPUTax is host housekeeping CPU share.
	CPUTax float64
	// LHPProb/LHPStall model the lock-holder preemption problem at full
	// thread load (§5.5.1: +68% at 24 threads).
	LHPProb  float64
	LHPStall sim.Duration
	// IRQLatency is the per-interrupt/IOMMU cost on assigned devices
	// (ELI removes exits, the IOMMU remains: +23.6% IB latency, §5.5.3).
	IRQLatency sim.Duration
	// VirtioPerReq is the virtio-blk per-request cost (vmexit-driven
	// kick, host block layer).
	VirtioPerReq sim.Duration
	// VirtioRateFactor scales storage bandwidth through the paravirtual
	// path (Fig 10: −10.5% read / −13.6% write on the local disk).
	VirtioReadFactor  float64
	VirtioWriteFactor float64
	// SchedJitter is host scheduling/timer noise added to
	// latency-sensitive steps (drives the MPI collective overheads).
	SchedJitter sim.Duration
	// NetPathLatency is the virtio/vhost per-hop latency on the guest
	// network path (drives the database request-latency overhead).
	NetPathLatency sim.Duration
	// IBExtraLatency is the per-side IOMMU/interrupt cost on the
	// directly assigned InfiniBand HCA (+23.6% RDMA latency, §5.5.3).
	IBExtraLatency sim.Duration
}

// DefaultKVMConfig returns the calibrated baseline.
func DefaultKVMConfig() KVMConfig {
	return KVMConfig{
		HostBootTime:      30 * sim.Second,
		MemPenalty:        0.42,
		CPUTax:            0.01,
		LHPProb:           5e-5,
		LHPStall:          1500 * sim.Microsecond,
		IRQLatency:        1200 * sim.Nanosecond,
		VirtioPerReq:      120 * sim.Microsecond,
		VirtioReadFactor:  0.895,
		VirtioWriteFactor: 0.864,
		SchedJitter:       1500 * sim.Nanosecond,
		NetPathLatency:    20 * sim.Microsecond,
		IBExtraLatency:    2600 * sim.Nanosecond,
	}
}

// KVM is a running KVM instance on one machine.
type KVM struct {
	Cfg     KVMConfig
	M       *machine.Machine
	OS      *guest.OS
	Storage KVMStorage
	remote  *RemoteStore

	BootedAt      sim.Time // host + VMM ready
	GuestBootedAt sim.Time
}

// StartKVM boots the KVM host on machine m and prepares a guest with a
// virtio storage driver over the chosen backend. For KVMLocal the local
// disk must already hold the image.
func StartKVM(p *sim.Proc, m *machine.Machine, cfg KVMConfig, storage KVMStorage, remote *RemoteStore) (*KVM, error) {
	if storage != KVMLocal && remote == nil {
		return nil, fmt.Errorf("baseline: %v storage needs a remote store", storage)
	}
	kvm := &KVM{Cfg: cfg, M: m, Storage: storage, remote: remote}
	m.Firmware.PowerOn(p, 0)
	p.Sleep(cfg.HostBootTime)
	m.World.EnterVMX()
	m.World.Overheads = cpuvirt.Overheads{
		MemPenalty:     cfg.MemPenalty,
		CPUTaxStatic:   cfg.CPUTax,
		LHPProb:        cfg.LHPProb,
		LHPStall:       cfg.LHPStall,
		IRQLatency:     cfg.IRQLatency,
		SchedJitter:    cfg.SchedJitter,
		NetPathLatency: cfg.NetPathLatency,
	}
	if m.IB != nil {
		m.IB.ExtraLatency = cfg.IBExtraLatency // direct assignment still pays the IOMMU
	}
	kvm.OS = guest.NewOS("ubuntu", m)
	kvm.OS.SetDriver(&VirtioDriver{kvm: kvm})
	kvm.BootedAt = p.Now()
	return kvm, nil
}

// BootGuest boots the guest OS through virtio.
func (kvm *KVM) BootGuest(p *sim.Proc, bp guest.BootProfile) error {
	if err := kvm.OS.Boot(p, bp); err != nil {
		return err
	}
	kvm.GuestBootedAt = p.Now()
	return nil
}

// VirtioDriver is the guest's virtio-blk front end: requests go to the
// host's block layer (a vmexit-driven kick per request) instead of real
// controller registers; the host serves them from the local disk or the
// remote store.
type VirtioDriver struct {
	kvm *KVM
}

// Name implements guest.BlockDriver.
func (d *VirtioDriver) Name() string { return "virtio-blk/" + d.kvm.Storage.String() }

// Init implements guest.BlockDriver.
func (d *VirtioDriver) Init(p *sim.Proc) error {
	p.Sleep(2 * sim.Millisecond) // virtio feature negotiation
	return nil
}

// request charges the paravirtual path cost: the kick hypercall exit plus
// host-side processing, then the backend access stretched by the virtio
// bandwidth factor.
func (d *VirtioDriver) request(p *sim.Proc, write bool, lba, count int64, src disk.SectorSource) (disk.Payload, error) {
	kvm := d.kvm
	kvm.M.World.Exit(p, cpuvirt.ExitHypercall)
	p.Sleep(kvm.Cfg.VirtioPerReq)

	if kvm.Storage != KVMLocal {
		if write {
			return disk.Payload{}, kvm.remote.Write(p, disk.Payload{LBA: lba, Count: count, Source: src})
		}
		return kvm.remote.Read(p, lba, count)
	}

	dsk := kvm.M.Disk
	factor := kvm.Cfg.VirtioReadFactor
	if write {
		factor = kvm.Cfg.VirtioWriteFactor
	}
	// The host block layer serves the request; the virtio path stretches
	// effective service time.
	start := p.Now()
	var pl disk.Payload
	if write {
		dsk.Write(p, lba, count, src)
	} else {
		pl = dsk.Read(p, lba, count)
	}
	service := p.Now().Sub(start)
	p.Sleep(sim.Duration(float64(service) * (1/factor - 1)))
	return pl, nil
}

// ReadSectors implements guest.BlockDriver.
func (d *VirtioDriver) ReadSectors(p *sim.Proc, lba, count int64, discard bool) ([]byte, error) {
	if lba < 0 || count <= 0 || count > guest.MaxTransferSectors {
		return nil, fmt.Errorf("baseline: invalid virtio read [%d,+%d)", lba, count)
	}
	pl, err := d.request(p, false, lba, count, nil)
	if err != nil {
		return nil, err
	}
	if discard {
		return nil, nil
	}
	return pl.Bytes(), nil
}

// WriteSectors implements guest.BlockDriver.
func (d *VirtioDriver) WriteSectors(p *sim.Proc, payload disk.Payload) error {
	if payload.LBA < 0 || payload.Count <= 0 || payload.Count > guest.MaxTransferSectors {
		return fmt.Errorf("baseline: invalid virtio write [%d,+%d)", payload.LBA, payload.Count)
	}
	_, err := d.request(p, true, payload.LBA, payload.Count, payload.Source)
	return err
}

// Flush implements guest.BlockDriver.
func (d *VirtioDriver) Flush(p *sim.Proc) error {
	d.kvm.M.World.Exit(p, cpuvirt.ExitHypercall)
	p.Sleep(500 * sim.Microsecond)
	return nil
}

var _ guest.BlockDriver = (*VirtioDriver)(nil)
