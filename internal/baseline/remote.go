// Package baseline implements the systems BMcast is compared against in
// the paper's evaluation: image-copy deployment (§2, Fig 4), network boot
// with an NFS root (Fig 4, Fig 10), and a KVM instance with ELI-style
// exit-less interrupts, paravirtual (virtio) storage, and direct device
// assignment (Figs 4–13).
package baseline

import (
	"fmt"

	"repro/internal/hw/disk"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Protocol selects the remote-storage protocol model.
type Protocol int

// Remote storage protocols used by the baselines.
const (
	NFS Protocol = iota
	ISCSI
)

func (p Protocol) String() string {
	if p == ISCSI {
		return "iscsi"
	}
	return "nfs"
}

// RemoteStore models a network storage service (the NFS export or iSCSI
// target holding the OS image): per-request latency, a shared service
// rate, and a backing store. Concurrent clients contend for the rate.
type RemoteStore struct {
	k     *sim.Kernel
	Name  string
	Proto Protocol
	// ReqLatency is the per-request round-trip overhead (protocol
	// processing + network RTT). iSCSI's block-granular round trips make
	// it slower per request than NFS with readahead (the paper measures
	// KVM guest boot at 42 s over NFS vs 55 s over iSCSI).
	ReqLatency sim.Duration
	// Readahead marks a client-side cache/readahead layer (the KVM
	// host's NFS client) that hides part of the per-request latency.
	Readahead bool
	// Rate is the service bandwidth in bytes/sec (gigabit-limited).
	Rate float64

	store *disk.Store
	// link serializes transfers: chunked acquisition approximates fair
	// sharing when several instances deploy at once.
	link *sim.Resource

	BytesRead    metrics.Counter
	BytesWritten metrics.Counter
	Requests     metrics.Counter
}

// NewRemoteStore exports image via the given protocol.
func NewRemoteStore(k *sim.Kernel, name string, proto Protocol, img *disk.Image) *RemoteStore {
	rs := &RemoteStore{
		k:     k,
		Name:  name,
		Proto: proto,
		Rate:  100e6, // gigabit Ethernet payload rate
		store: disk.NewStore(img.Sectors),
		link:  sim.NewResource(k, name+".link", 1),
	}
	switch proto {
	case NFS:
		rs.ReqLatency = 1050 * sim.Microsecond
	case ISCSI:
		rs.ReqLatency = 1100 * sim.Microsecond
	}
	rs.store.Write(0, img.Sectors, img)
	return rs
}

// Sectors reports the exported capacity.
func (rs *RemoteStore) Sectors() int64 { return rs.store.Sectors() }

// transfer occupies the shared link for the given volume, in chunks so
// concurrent clients interleave.
func (rs *RemoteStore) transfer(p *sim.Proc, bytes int64) {
	const chunk = 1 << 20
	for bytes > 0 {
		n := int64(chunk)
		if n > bytes {
			n = bytes
		}
		rs.link.Acquire(p)
		p.Sleep(sim.RateDuration(n, rs.Rate))
		rs.link.Release()
		bytes -= n
	}
}

// Read fetches count sectors at lba, blocking for latency and bandwidth.
func (rs *RemoteStore) Read(p *sim.Proc, lba, count int64) (disk.Payload, error) {
	if lba < 0 || count <= 0 || lba+count > rs.store.Sectors() {
		return disk.Payload{}, fmt.Errorf("baseline: remote read [%d,+%d) out of range", lba, count)
	}
	rs.Requests.Inc()
	lat := rs.ReqLatency
	if rs.Readahead {
		lat /= 2 // the client cache absorbs about half the round trips
	}
	p.Sleep(lat)
	rs.transfer(p, count*disk.SectorSize)
	rs.BytesRead.Add(count * disk.SectorSize)
	return rs.store.ReadPayload(lba, count), nil
}

// Write stores count sectors at lba.
func (rs *RemoteStore) Write(p *sim.Proc, pl disk.Payload) error {
	if pl.LBA < 0 || pl.Count <= 0 || pl.LBA+pl.Count > rs.store.Sectors() {
		return fmt.Errorf("baseline: remote write [%d,+%d) out of range", pl.LBA, pl.Count)
	}
	rs.Requests.Inc()
	p.Sleep(rs.ReqLatency)
	rs.transfer(p, pl.Count*disk.SectorSize)
	rs.store.Write(pl.LBA, pl.Count, pl.Source)
	rs.BytesWritten.Add(pl.Count * disk.SectorSize)
	return nil
}

// Store exposes the backing store for verification.
func (rs *RemoteStore) Store() *disk.Store { return rs.store }
