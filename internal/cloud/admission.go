package cloud

import (
	"errors"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// This file is the admission front end of the control plane: a bounded,
// priority-ordered request queue in front of Controller.Request, paced by
// a token bucket and shedding work whose deadline has passed. Under
// overload the controller degrades gracefully — low-priority requests are
// shed, the queue never grows past its limit, and the dispatcher never
// deadlocks (it always either dispatches, sleeps until the next token, or
// parks until a submission/repool wakes it).

// Priority orders queued requests; higher priorities dispatch first and
// can evict lower-priority work from a full queue.
type Priority int

// Request priorities.
const (
	PriorityLow Priority = iota
	PriorityNormal
	PriorityHigh
)

func (pr Priority) String() string {
	return [...]string{"low", "normal", "high"}[pr]
}

// Shed and lifecycle errors; callers test with errors.Is.
var (
	// ErrShedQueueFull marks a request shed because the bounded queue was
	// full and nothing cheaper could be evicted.
	ErrShedQueueFull = errors.New("request shed: queue full")
	// ErrShedDeadline marks a request shed because its deadline passed
	// before a machine and an admission token were available.
	ErrShedDeadline = errors.New("request shed: deadline expired")
	// ErrFrontendClosed marks a request submitted after Close.
	ErrFrontendClosed = errors.New("admission frontend closed")
)

// Request is one tenant submission queued at the front end. It resolves
// to an Instance (admitted and leased) or an error (shed, closed, or the
// controller's own failure).
type Request struct {
	ID       int
	Strategy Strategy
	Priority Priority
	// Deadline, when nonzero, is the absolute sim time by which the
	// request must be dispatched; past it the request is shed.
	Deadline sim.Time

	SubmittedAt sim.Time
	// AdmittedAt is when the dispatcher handed the request to the
	// controller (zero if shed).
	AdmittedAt sim.Time

	in      *Instance
	err     error
	done    bool
	changed *sim.Signal
}

// Wait blocks until the request resolves, returning the leased instance
// or the shed/deployment error.
func (r *Request) Wait(p *sim.Proc) (*Instance, error) {
	p.WaitCond(r.changed, func() bool { return r.done })
	return r.in, r.err
}

// Done reports whether the request has resolved.
func (r *Request) Done() bool { return r.done }

// Instance returns the leased instance once resolved (nil if shed).
func (r *Request) Instance() *Instance { return r.in }

// Err returns the resolution error (nil if an instance was leased).
func (r *Request) Err() error { return r.err }

// QueueWait is how long the request sat in the admission queue (zero
// until dispatched).
func (r *Request) QueueWait() sim.Duration {
	if r.AdmittedAt == 0 {
		return 0
	}
	return r.AdmittedAt.Sub(r.SubmittedAt)
}

// AdmissionConfig bounds the front end.
type AdmissionConfig struct {
	// QueueLimit caps queued (not yet dispatched) requests across all
	// priorities.
	QueueLimit int
	// TokenRate is the sustained admission rate (requests per simulated
	// second); TokenBurst is the bucket capacity. TokenRate <= 0 disables
	// pacing.
	TokenRate  float64
	TokenBurst float64
}

// DefaultAdmissionConfig bounds the queue at 64 with a 4 req/s sustained
// admission rate and bursts of 8.
func DefaultAdmissionConfig() AdmissionConfig {
	return AdmissionConfig{QueueLimit: 64, TokenRate: 4, TokenBurst: 8}
}

// Frontend is the admission/queueing layer over a Controller.
type Frontend struct {
	c   *Controller
	cfg AdmissionConfig

	// queues holds FIFO queues per priority; depth is the total.
	queues [PriorityHigh + 1][]*Request
	depth  int
	closed bool

	tokens     float64
	lastRefill sim.Time

	work *sim.Signal

	Submitted     metrics.Counter
	Admitted      metrics.Counter
	ShedQueueFull metrics.Counter
	ShedDeadline  metrics.Counter
	QueueDepth    metrics.Gauge
	QueueWait     metrics.Histogram
	// MaxQueueDepth is the high-water mark — the boundedness witness.
	MaxQueueDepth int

	requests []*Request
	nextID   int
}

// NewFrontend wires an admission front end onto c and starts its
// dispatcher.
func NewFrontend(c *Controller, cfg AdmissionConfig) *Frontend {
	f := &Frontend{
		c:          c,
		cfg:        cfg,
		work:       c.tb.K.NewSignal("cloud.admit.work"),
		lastRefill: c.tb.K.Now(),
		tokens:     cfg.TokenBurst,
	}
	m := c.tb.Metrics
	m.RegisterCounter("cloud.admit.submitted", &f.Submitted)
	m.RegisterCounter("cloud.admit.admitted", &f.Admitted)
	m.RegisterCounter("cloud.admit.shed_queue_full", &f.ShedQueueFull)
	m.RegisterCounter("cloud.admit.shed_deadline", &f.ShedDeadline)
	m.RegisterGauge("cloud.admit.queue_depth", &f.QueueDepth)
	m.RegisterHistogram("cloud.admit.queue_wait", &f.QueueWait)
	c.onFree = func() { f.work.Broadcast() }
	c.tb.K.Spawn("cloud.admit.dispatch", f.dispatch)
	return f
}

// Controller returns the controller behind the front end (for Release).
func (f *Frontend) Controller() *Controller { return f.c }

// Requests returns every request ever submitted, in submission order.
func (f *Frontend) Requests() []*Request {
	out := make([]*Request, len(f.requests))
	copy(out, f.requests)
	return out
}

// Submit enqueues a request. It never blocks: if the queue is full and no
// lower-priority or expired entry can be evicted, the request resolves
// immediately with ErrShedQueueFull. Use Request.Wait for the outcome.
func (f *Frontend) Submit(strategy Strategy, prio Priority, deadline sim.Time) *Request {
	r := &Request{
		ID:          f.nextID,
		Strategy:    strategy,
		Priority:    prio,
		Deadline:    deadline,
		SubmittedAt: f.c.tb.K.Now(),
		changed:     f.c.tb.K.NewSignal("cloud.request"),
	}
	f.nextID++
	f.requests = append(f.requests, r)
	f.Submitted.Inc()
	if f.closed {
		f.resolve(r, nil, fmt.Errorf("cloud: request %d: %w", r.ID, ErrFrontendClosed))
		return r
	}
	if f.cfg.QueueLimit > 0 && f.depth >= f.cfg.QueueLimit && !f.evictFor(prio) {
		f.ShedQueueFull.Inc()
		f.resolve(r, nil, fmt.Errorf("cloud: request %d (%v): %w", r.ID, prio, ErrShedQueueFull))
		return r
	}
	f.queues[prio] = append(f.queues[prio], r)
	f.depth++
	if f.depth > f.MaxQueueDepth {
		f.MaxQueueDepth = f.depth
	}
	f.QueueDepth.Set(float64(f.depth))
	f.work.Broadcast()
	return r
}

// Close stops intake; queued requests still dispatch, then the
// dispatcher exits.
func (f *Frontend) Close() {
	f.closed = true
	f.work.Broadcast()
}

// evictFor frees one queue slot for an incoming request of priority
// incoming: first by shedding any expired entry, then by shedding the
// newest entry of the lowest priority strictly below incoming. Reports
// whether a slot was freed.
func (f *Frontend) evictFor(incoming Priority) bool {
	now := f.c.tb.K.Now()
	for pr := PriorityLow; pr <= PriorityHigh; pr++ {
		for i, r := range f.queues[pr] {
			if r.Deadline != 0 && now > r.Deadline {
				f.queues[pr] = append(f.queues[pr][:i:i], f.queues[pr][i+1:]...)
				f.shedQueued(r, ErrShedDeadline)
				return true
			}
		}
	}
	for pr := PriorityLow; pr < incoming; pr++ {
		if q := f.queues[pr]; len(q) > 0 {
			r := q[len(q)-1]
			f.queues[pr] = q[:len(q)-1]
			f.shedQueued(r, ErrShedQueueFull)
			return true
		}
	}
	return false
}

// shedQueued drops an already-queued request (the caller has removed it
// from its queue).
func (f *Frontend) shedQueued(r *Request, cause error) {
	f.depth--
	f.QueueDepth.Set(float64(f.depth))
	if errors.Is(cause, ErrShedDeadline) {
		f.ShedDeadline.Inc()
	} else {
		f.ShedQueueFull.Inc()
	}
	f.resolve(r, nil, fmt.Errorf("cloud: request %d (%v): %w", r.ID, r.Priority, cause))
}

func (f *Frontend) resolve(r *Request, in *Instance, err error) {
	r.in, r.err, r.done = in, err, true
	r.changed.Broadcast()
}

// refill accrues admission tokens up to the burst cap.
func (f *Frontend) refill(now sim.Time) {
	if f.cfg.TokenRate <= 0 {
		f.tokens = 1 // pacing disabled: always one token available
		return
	}
	f.tokens += f.cfg.TokenRate * now.Sub(f.lastRefill).Seconds()
	f.lastRefill = now
	if f.tokens > f.cfg.TokenBurst {
		f.tokens = f.cfg.TokenBurst
	}
}

// peek returns the next dispatchable request — highest priority first,
// FIFO within a priority — shedding expired heads along the way.
func (f *Frontend) peek(now sim.Time) *Request {
	for pr := PriorityHigh; pr >= PriorityLow; pr-- {
		for len(f.queues[pr]) > 0 {
			r := f.queues[pr][0]
			if r.Deadline != 0 && now > r.Deadline {
				f.queues[pr] = f.queues[pr][1:]
				f.shedQueued(r, ErrShedDeadline)
				continue
			}
			return r
		}
	}
	return nil
}

// pop removes r (the current head of its priority queue).
func (f *Frontend) pop(r *Request) {
	f.queues[r.Priority] = f.queues[r.Priority][1:]
	f.depth--
	f.QueueDepth.Set(float64(f.depth))
}

// dispatch is the front end's single dispatcher process. Each iteration
// either dispatches one request, sleeps until the next token accrues, or
// parks on the work signal (kicked by Submit, Close, and every machine
// returned to the pool) — so it can never spin and never deadlock.
func (f *Frontend) dispatch(p *sim.Proc) {
	for {
		now := p.Now()
		f.refill(now)
		r := f.peek(now)
		if r == nil {
			if f.closed {
				return
			}
			p.Wait(f.work)
			continue
		}
		if f.c.FreeMachines() == 0 {
			// Every machine is leased or quarantined; a repool (release,
			// reclaim, or probation pass) kicks the work signal.
			p.Wait(f.work)
			continue
		}
		if f.tokens < 1 {
			// Deterministic pacing: sleep exactly until the next token.
			wait := sim.Duration((1 - f.tokens) / f.cfg.TokenRate * float64(sim.Second))
			if wait < 1 {
				wait = 1
			}
			p.Sleep(wait)
			continue
		}
		f.pop(r)
		f.tokens--
		r.AdmittedAt = p.Now()
		f.QueueWait.Observe(r.QueueWait())
		f.Admitted.Inc()
		in, err := f.c.Request(r.Strategy)
		f.resolve(r, in, err)
	}
}
