package cloud_test

import (
	"errors"
	"testing"

	"repro/internal/cloud"
	"repro/internal/sim"
)

// unpaced is an admission config with the token bucket disabled, so
// tests exercise queueing and shedding in isolation.
func unpaced(limit int) cloud.AdmissionConfig {
	return cloud.AdmissionConfig{QueueLimit: limit, TokenRate: 0, TokenBurst: 0}
}

// TestFrontendDispatchesAndPrioritizes: requests queue while the pool is
// busy, and on the next free machine the high-priority request jumps the
// earlier low-priority one.
func TestFrontendDispatchesAndPrioritizes(t *testing.T) {
	tb, c := testController(1)
	f := cloud.NewFrontend(c, unpaced(8))
	var low, high *cloud.Request
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		a := f.Submit(cloud.StrategyBMcast, cloud.PriorityNormal, 0)
		in, err := a.Wait(p)
		if err != nil {
			t.Error(err)
			return
		}
		if !in.WaitReady(p) {
			t.Errorf("first lease failed: %v", in.Err())
			return
		}
		// Pool now empty: these two queue behind the busy machine.
		low = f.Submit(cloud.StrategyBMcast, cloud.PriorityLow, 0)
		high = f.Submit(cloud.StrategyBMcast, cloud.PriorityHigh, 0)
		in.WaitBareMetal(p)
		if err := c.Release(in); err != nil {
			t.Error(err)
			return
		}
		// The high-priority request must win the freed machine.
		hin, err := high.Wait(p)
		if err != nil {
			t.Errorf("high-priority request: %v", err)
			return
		}
		if low.Done() {
			t.Error("low-priority request dispatched before high")
		}
		if hin.WaitReady(p) {
			hin.WaitBareMetal(p)
			if err := c.Release(hin); err != nil {
				t.Error(err)
			}
		}
		if lin, err := low.Wait(p); err != nil {
			t.Errorf("low-priority request: %v", err)
		} else if !lin.WaitReady(p) {
			t.Errorf("low-priority lease failed: %v", lin.Err())
		}
	})
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if low == nil || high == nil || !low.Done() || !high.Done() {
		t.Fatal("queued requests never resolved")
	}
	if high.AdmittedAt >= low.AdmittedAt {
		t.Fatalf("high admitted at %v, low at %v: priority order violated",
			high.AdmittedAt, low.AdmittedAt)
	}
	if f.Admitted.Value() != 3 {
		t.Fatalf("Admitted = %d, want 3", f.Admitted.Value())
	}
}

// TestFrontendQueueBoundAndEviction: the queue never exceeds its limit; a
// full queue sheds the incoming request unless a lower-priority entry can
// be evicted for it.
func TestFrontendQueueBoundAndEviction(t *testing.T) {
	tb, c := testController(1)
	f := cloud.NewFrontend(c, unpaced(2))
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		busy := f.Submit(cloud.StrategyBMcast, cloud.PriorityHigh, 0)
		in, err := busy.Wait(p)
		if err != nil {
			t.Error(err)
			return
		}
		in.WaitReady(p)
		// Queue is empty, pool is empty: fill the queue with two lows.
		l1 := f.Submit(cloud.StrategyBMcast, cloud.PriorityLow, 0)
		l2 := f.Submit(cloud.StrategyBMcast, cloud.PriorityLow, 0)
		// A third low finds the queue full and nothing below it: shed.
		l3 := f.Submit(cloud.StrategyBMcast, cloud.PriorityLow, 0)
		if _, err := l3.Wait(p); !errors.Is(err, cloud.ErrShedQueueFull) {
			t.Errorf("overflow low = %v, want ErrShedQueueFull", err)
		}
		// A high evicts the newest low (l2) to take its slot.
		h := f.Submit(cloud.StrategyBMcast, cloud.PriorityHigh, 0)
		if _, err := l2.Wait(p); !errors.Is(err, cloud.ErrShedQueueFull) {
			t.Errorf("evicted low = %v, want ErrShedQueueFull", err)
		}
		if h.Done() || l1.Done() {
			t.Error("surviving queued requests resolved early")
		}
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if f.MaxQueueDepth > 2 {
		t.Fatalf("MaxQueueDepth = %d, want <= 2 (bounded queue)", f.MaxQueueDepth)
	}
	if f.ShedQueueFull.Value() != 2 {
		t.Fatalf("ShedQueueFull = %d, want 2", f.ShedQueueFull.Value())
	}
}

// TestFrontendDeadlineShedding: a queued request whose deadline passes
// before a machine frees up is shed with ErrShedDeadline at dispatch
// time.
func TestFrontendDeadlineShedding(t *testing.T) {
	tb, c := testController(1)
	f := cloud.NewFrontend(c, unpaced(8))
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		busy := f.Submit(cloud.StrategyBMcast, cloud.PriorityNormal, 0)
		in, err := busy.Wait(p)
		if err != nil {
			t.Error(err)
			return
		}
		in.WaitReady(p)
		in.WaitBareMetal(p)
		// This request expires long before the machine is released below.
		doomed := f.Submit(cloud.StrategyBMcast, cloud.PriorityHigh, p.Now().Add(5*sim.Second))
		p.Sleep(30 * sim.Second)
		if err := c.Release(in); err != nil {
			t.Error(err)
			return
		}
		if _, err := doomed.Wait(p); !errors.Is(err, cloud.ErrShedDeadline) {
			t.Errorf("expired request = %v, want ErrShedDeadline", err)
		}
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if f.ShedDeadline.Value() != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", f.ShedDeadline.Value())
	}
}

// TestFrontendTokenBucketPacing: with a 1-token/s bucket of depth 1,
// back-to-back submissions are admitted at least a second apart even with
// free machines waiting.
func TestFrontendTokenBucketPacing(t *testing.T) {
	tb, c := testController(3)
	f := cloud.NewFrontend(c, cloud.AdmissionConfig{QueueLimit: 8, TokenRate: 1, TokenBurst: 1})
	var reqs []*cloud.Request
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			reqs = append(reqs, f.Submit(cloud.StrategyBMcast, cloud.PriorityNormal, 0))
		}
		for _, r := range reqs {
			if _, err := r.Wait(p); err != nil {
				t.Error(err)
				return
			}
		}
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if len(reqs) != 3 {
		t.Fatal("submissions never ran")
	}
	for i := 1; i < len(reqs); i++ {
		gap := reqs[i].AdmittedAt.Sub(reqs[i-1].AdmittedAt)
		if gap < 999*sim.Millisecond {
			t.Fatalf("admissions %d→%d only %v apart, want >= 1s", i-1, i, gap)
		}
	}
	if w := reqs[2].QueueWait(); w <= 0 {
		t.Fatalf("third request QueueWait = %v, want > 0", w)
	}
}

// TestFrontendClosed: submissions after Close resolve immediately with
// ErrFrontendClosed.
func TestFrontendClosed(t *testing.T) {
	tb, c := testController(1)
	f := cloud.NewFrontend(c, unpaced(4))
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		f.Close()
		r := f.Submit(cloud.StrategyBMcast, cloud.PriorityHigh, 0)
		if _, err := r.Wait(p); !errors.Is(err, cloud.ErrFrontendClosed) {
			t.Errorf("post-close submit = %v, want ErrFrontendClosed", err)
		}
	})
	tb.K.RunUntil(sim.Time(sim.Minute))
}
