// Package cloud is the provisioning layer the paper motivates: a
// bare-metal cloud controller that leases physical machines on demand.
// It manages a rack of powered-off machines and provisions instances with
// a pluggable deployment strategy, so the agility/elasticity comparison
// (§1, §5.1) can be driven as a workload: request N instances, watch
// time-to-ready, release, re-provision.
package cloud

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// Strategy selects how an instance's OS is deployed.
type Strategy int

// Deployment strategies.
const (
	StrategyBMcast Strategy = iota
	StrategyImageCopy
	StrategyNetboot
)

func (s Strategy) String() string {
	switch s {
	case StrategyBMcast:
		return "bmcast"
	case StrategyImageCopy:
		return "image-copy"
	default:
		return "netboot"
	}
}

// InstanceState is the lifecycle of a lease.
type InstanceState int

// Instance lifecycle states.
const (
	StateRequested InstanceState = iota
	StateDeploying
	StateReady
	StateFailed
	StateReleased
)

func (s InstanceState) String() string {
	return [...]string{"requested", "deploying", "ready", "failed", "released"}[s]
}

// Instance is one bare-metal lease.
type Instance struct {
	ID       int
	Strategy Strategy
	Node     *testbed.Node

	state   InstanceState
	changed *sim.Signal
	err     error
	// reclaimed means the controller already scrubbed the machine and
	// returned it to the pool (pre-ready failures); Release must not
	// return it a second time.
	reclaimed bool

	// Redeploys counts how many times this lease was restarted on a fresh
	// machine after a failed deployment attempt.
	Redeploys int

	RequestedAt sim.Time
	ReadyAt     sim.Time
	// BareMetalAt is when the VMM disappeared (BMcast only).
	BareMetalAt sim.Time
}

// State reports the current lifecycle state.
func (in *Instance) State() InstanceState { return in.state }

// Err reports the deployment error for a failed instance.
func (in *Instance) Err() error { return in.err }

// TimeToReady is the request-to-usable latency — the paper's agility
// metric.
func (in *Instance) TimeToReady() sim.Duration { return in.ReadyAt.Sub(in.RequestedAt) }

// WaitReady blocks until the instance is usable (or failed), reporting
// success.
func (in *Instance) WaitReady(p *sim.Proc) bool {
	p.WaitCond(in.changed, func() bool { return in.state == StateReady || in.state == StateFailed })
	return in.state == StateReady
}

// Controller provisions instances from a machine pool.
type Controller struct {
	tb   *testbed.Testbed
	tcfg testbed.Config

	VMMConfig   core.Config
	BootProfile guest.BootProfile
	// Remote backs the image-copy and netboot strategies.
	Remote *baseline.RemoteStore

	// RedeployRetries caps how many times a failed BMcast deployment is
	// retried on a fresh machine before the instance is marked failed.
	RedeployRetries int

	free      []*testbed.Node
	instances []*Instance

	Requested  metrics.Counter
	Ready      metrics.Counter
	Failures   metrics.Counter
	Redeploys  metrics.Counter
	TimeToUse  metrics.Histogram
	nextID     int
	poolEmpty  int64
	freeSignal *sim.Signal
}

// NewController racks poolSize machines into tb.
func NewController(tb *testbed.Testbed, tcfg testbed.Config, poolSize int) *Controller {
	c := &Controller{
		tb:              tb,
		tcfg:            tcfg,
		VMMConfig:       core.DefaultConfig(),
		BootProfile:     guest.DefaultBootProfile(),
		Remote:          baseline.NewRemoteStore(tb.K, "cloud-store", baseline.ISCSI, tb.Image),
		RedeployRetries: 1,
		freeSignal:      tb.K.NewSignal("cloud.free"),
	}
	tb.Metrics.RegisterHistogram("cloud.time_to_ready", &c.TimeToUse)
	c.BootProfile.SpanSectors = tcfg.ImageBytes / 2 / disk.SectorSize
	for i := 0; i < poolSize; i++ {
		c.free = append(c.free, tb.AddNode(tcfg))
	}
	return c
}

// FreeMachines reports the machines currently unleased.
func (c *Controller) FreeMachines() int { return len(c.free) }

// Instances returns all leases, live and released.
func (c *Controller) Instances() []*Instance {
	out := make([]*Instance, len(c.instances))
	copy(out, c.instances)
	return out
}

// Request leases a machine and starts deployment with the given strategy.
// It returns immediately; use WaitReady on the instance. It fails fast
// when the pool is empty.
func (c *Controller) Request(strategy Strategy) (*Instance, error) {
	node, err := c.lease()
	if err != nil {
		return nil, err
	}
	in := &Instance{
		ID:          c.nextID,
		Strategy:    strategy,
		Node:        node,
		state:       StateRequested,
		changed:     c.tb.K.NewSignal("cloud.instance"),
		RequestedAt: c.tb.K.Now(),
	}
	c.nextID++
	c.instances = append(c.instances, in)
	c.Requested.Inc()
	if c.tb.Trace != nil { // variadic attrs box; skip entirely when not tracing
		c.tb.Trace.Emit(node.M.Name, "cloud", "requested",
			trace.Int("instance", int64(in.ID)))
	}
	c.tb.K.Spawn(fmt.Sprintf("cloud.deploy.%d", in.ID), func(p *sim.Proc) { c.deploy(p, in) })
	return in, nil
}

// lease pops a free machine, failing fast when the pool is empty.
func (c *Controller) lease() (*testbed.Node, error) {
	if len(c.free) == 0 {
		c.poolEmpty++
		return nil, fmt.Errorf("cloud: machine pool exhausted")
	}
	node := c.free[0]
	c.free = c.free[1:]
	return node, nil
}

func (c *Controller) deploy(p *sim.Proc, in *Instance) {
	in.state = StateDeploying
	in.changed.Broadcast()
	var err error
	switch in.Strategy {
	case StrategyBMcast:
		c.deployBMcast(p, in)
		return
	case StrategyImageCopy:
		_, err = baseline.DeployImageCopy(p, in.Node.M, in.Node.OS,
			baseline.DefaultImageCopyConfig(), c.Remote, c.BootProfile)
		if err == nil {
			c.markReady(p, in)
			return
		}
	case StrategyNetboot:
		err = baseline.BootNetboot(p, in.Node.M, in.Node.OS, c.Remote, c.BootProfile)
		if err == nil {
			c.markReady(p, in)
			return
		}
	}
	c.fail(in, err)
}

// deployBMcast runs the BMcast strategy with the capped-retry redeploy
// policy: an attempt that fails before the instance is handed over has
// its machine scrubbed and returned to the pool, and the lease restarts
// on a fresh machine, up to RedeployRetries times. A failure after
// hand-over (the watchdog firing while the tenant already has the
// machine) only marks the instance failed; the tenant keeps the machine
// until Release.
func (c *Controller) deployBMcast(p *sim.Proc, in *Instance) {
	var err error
	for attempt := 0; ; attempt++ {
		var res *testbed.BMcastResult
		res, err = c.tb.DeployBMcast(p, in.Node, c.VMMConfig, c.BootProfile)
		if err == nil && in.Node.VMM.Phase() == core.PhaseFailed {
			// The guest "booted" against a dead stream (the mediator
			// tolerates fetch errors); the watchdog is the authority.
			err = in.Node.VMM.Err()
		}
		if err == nil {
			c.markReady(p, in)
			// The instance is already leased out; the copy finishes in
			// the background and the VMM melts away.
			c.tb.WaitBareMetal(p, in.Node, res) // PhaseFailed wakes this too
			if in.Node.VMM.Phase() == core.PhaseFailed {
				c.fail(in, in.Node.VMM.Err())
				return
			}
			in.BareMetalAt = p.Now()
			if c.tb.Trace != nil {
				c.tb.Trace.Emit(in.Node.M.Name, "cloud", "baremetal",
					trace.Int("instance", int64(in.ID)))
			}
			return
		}
		// Pre-ready failure: scrub the machine and return it to the pool.
		c.reclaim(p, in.Node)
		if attempt >= c.RedeployRetries {
			in.reclaimed = true
			c.fail(in, fmt.Errorf("cloud: instance %d failed after %d deployment attempts: %w",
				in.ID, attempt+1, err))
			return
		}
		node, lerr := c.lease()
		if lerr != nil {
			in.reclaimed = true
			c.fail(in, fmt.Errorf("cloud: instance %d redeploy: %w", in.ID, lerr))
			return
		}
		in.Node = node
		in.Redeploys++
		c.Redeploys.Inc()
	}
}

// reclaim sanitizes a machine whose deployment failed and returns it to
// the free pool.
func (c *Controller) reclaim(p *sim.Proc, n *testbed.Node) {
	if n.VMM != nil {
		n.VMM.Scrub(p) // drain mediation, detach taps, leave virtualization
	}
	c.scrub(n)
	c.free = append(c.free, n)
	c.freeSignal.Broadcast()
}

// scrub sanitizes a machine between leases: blocks return to zero (as a
// provider would wipe between tenants), no VMM, a fresh guest OS.
func (c *Controller) scrub(n *testbed.Node) {
	n.M.Disk.Store().Write(0, n.M.Disk.Sectors, disk.Zero)
	n.VMM = nil
	n.OS = guest.NewOS("ubuntu", n.M)
}

func (c *Controller) fail(in *Instance, err error) {
	in.err = err
	in.state = StateFailed
	c.Failures.Inc()
	if c.tb.Trace != nil {
		c.tb.Trace.Emit(in.Node.M.Name, "cloud", "failed",
			trace.Int("instance", int64(in.ID)))
	}
	in.changed.Broadcast()
}

func (c *Controller) markReady(p *sim.Proc, in *Instance) {
	in.ReadyAt = p.Now()
	in.state = StateReady
	c.Ready.Inc()
	c.TimeToUse.Observe(in.TimeToReady())
	if c.tb.Trace != nil {
		c.tb.Trace.Emit(in.Node.M.Name, "cloud", "ready",
			trace.Int("instance", int64(in.ID)))
	}
	in.changed.Broadcast()
}

// Release ends a lease: the disk is wiped (a fresh zero store, as a
// provider would sanitize between tenants) and the machine returns to the
// pool. Failed instances may be released too; if the controller already
// reclaimed the machine (pre-ready failure), releasing is a no-op beyond
// the state change, and for a post-ready failure the sanitization runs
// asynchronously (the dead VMM must first drain and detach).
func (c *Controller) Release(in *Instance) error {
	if in.state != StateReady && in.state != StateFailed {
		return fmt.Errorf("cloud: instance %d is %v, not releasable", in.ID, in.state)
	}
	wasFailed := in.state == StateFailed
	in.state = StateReleased
	in.changed.Broadcast()
	if in.reclaimed {
		return nil // machine already scrubbed and pooled
	}
	if wasFailed {
		node := in.Node
		in.reclaimed = true
		c.tb.K.Spawn(fmt.Sprintf("cloud.reclaim.%d", in.ID), func(p *sim.Proc) {
			c.reclaim(p, node)
		})
		return nil
	}
	c.scrub(in.Node)
	c.free = append(c.free, in.Node)
	c.freeSignal.Broadcast()
	return nil
}
