// Package cloud is the provisioning layer the paper motivates: a
// bare-metal cloud controller that leases physical machines on demand.
// It manages a rack of powered-off machines and provisions instances with
// a pluggable deployment strategy, so the agility/elasticity comparison
// (§1, §5.1) can be driven as a workload: request N instances, watch
// time-to-ready, release, re-provision.
package cloud

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// ErrAlreadyReleased is the stable error returned when Release is called
// on an instance whose lease has already ended. Callers test for it with
// errors.Is.
var ErrAlreadyReleased = errors.New("instance already released")

// Strategy selects how an instance's OS is deployed.
type Strategy int

// Deployment strategies.
const (
	StrategyBMcast Strategy = iota
	StrategyImageCopy
	StrategyNetboot
)

func (s Strategy) String() string {
	switch s {
	case StrategyBMcast:
		return "bmcast"
	case StrategyImageCopy:
		return "image-copy"
	default:
		return "netboot"
	}
}

// InstanceState is the lifecycle of a lease.
type InstanceState int

// Instance lifecycle states.
const (
	StateRequested InstanceState = iota
	StateDeploying
	StateReady
	StateFailed
	StateReleased
)

func (s InstanceState) String() string {
	return [...]string{"requested", "deploying", "ready", "failed", "released"}[s]
}

// Instance is one bare-metal lease.
type Instance struct {
	ID       int
	Strategy Strategy
	Node     *testbed.Node

	state   InstanceState
	changed *sim.Signal
	err     error
	// reclaimed means the controller already scrubbed the machine and
	// returned it to the pool (pre-ready failures); Release must not
	// return it a second time.
	reclaimed bool

	// Redeploys counts how many times this lease was restarted on a fresh
	// machine after a failed deployment attempt.
	Redeploys int

	RequestedAt sim.Time
	ReadyAt     sim.Time
	// BareMetalAt is when the VMM disappeared (BMcast only).
	BareMetalAt sim.Time
}

// State reports the current lifecycle state.
func (in *Instance) State() InstanceState { return in.state }

// Err reports the deployment error for a failed instance.
func (in *Instance) Err() error { return in.err }

// TimeToReady is the request-to-usable latency — the paper's agility
// metric.
func (in *Instance) TimeToReady() sim.Duration { return in.ReadyAt.Sub(in.RequestedAt) }

// TimeToBareMetal is the request-to-devirtualized latency, the paper's
// end-state metric (0 until the hand-off completes).
func (in *Instance) TimeToBareMetal() sim.Duration {
	if in.BareMetalAt == 0 {
		return 0
	}
	return in.BareMetalAt.Sub(in.RequestedAt)
}

// WaitReady blocks until the instance is usable (or failed), reporting
// success.
func (in *Instance) WaitReady(p *sim.Proc) bool {
	p.WaitCond(in.changed, func() bool { return in.state == StateReady || in.state == StateFailed })
	return in.state == StateReady
}

// WaitBareMetal blocks until the instance's VMM has melted away (or the
// deployment failed), reporting whether bare metal was reached. Tenants
// that release after this point hand back a quiescent machine.
func (in *Instance) WaitBareMetal(p *sim.Proc) bool {
	p.WaitCond(in.changed, func() bool { return in.BareMetalAt != 0 || in.state == StateFailed })
	return in.BareMetalAt != 0
}

// RetryPolicy governs per-lease redeploy attempts: a budget of retries
// and a seeded exponential backoff with jitter between attempts. It
// replaces the flat retry counter the controller started with — the
// backoff spaces retries out so a storm of failing deployments does not
// hammer a recovering storage server in lockstep.
type RetryPolicy struct {
	// Budget caps how many times a failed BMcast deployment is retried
	// on a fresh machine before the instance is marked failed.
	Budget int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff. Zero disables backoff.
	BaseBackoff sim.Duration
	MaxBackoff  sim.Duration
	// JitterFrac spreads each backoff uniformly over ±JitterFrac of its
	// value, drawn from the kernel's seeded source, so simultaneous
	// failures do not retry at the same instant.
	JitterFrac float64
	// LeaseWait bounds how long a redeploy may wait for a free machine
	// when the pool is empty at retry time. Zero keeps the original
	// fail-fast behavior; under open-loop tenant load a short wait stops
	// transient pool exhaustion from burning the whole retry budget.
	LeaseWait sim.Duration
}

// DefaultRetryPolicy matches the original controller behavior (one
// retry) plus a short jittered backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Budget:      1,
		BaseBackoff: 500 * sim.Millisecond,
		MaxBackoff:  8 * sim.Second,
		JitterFrac:  0.2,
	}
}

// backoff computes the delay before retry attempt (0-based), drawing
// jitter from rng.
func (rp RetryPolicy) backoff(attempt int, rng *rand.Rand) sim.Duration {
	if rp.BaseBackoff <= 0 {
		return 0
	}
	d := rp.BaseBackoff
	for i := 0; i < attempt && d < rp.MaxBackoff; i++ {
		d *= 2
	}
	if rp.MaxBackoff > 0 && d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	if rp.JitterFrac > 0 {
		spread := (2*rng.Float64() - 1) * rp.JitterFrac // uniform in ±JitterFrac
		d = sim.Duration(float64(d) * (1 + spread))
	}
	return d
}

// HealthPolicy governs machine quarantine: a node whose deployments fail
// FailThreshold times in a row is pulled out of the free pool and probed
// after Probation; the probe re-admits it only once its links carry
// traffic again. This stops one flapping machine from consuming the
// retry budget of every lease that happens to land on it.
type HealthPolicy struct {
	// FailThreshold is the consecutive-failure count that trips
	// quarantine. 0 disables quarantine entirely.
	FailThreshold int
	// Probation is how long a quarantined machine sits out before each
	// probe.
	Probation sim.Duration
}

// DefaultHealthPolicy quarantines after 3 consecutive failures with a
// 30-second probation.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{FailThreshold: 3, Probation: 30 * sim.Second}
}

// Controller provisions instances from a machine pool.
type Controller struct {
	tb   *testbed.Testbed
	tcfg testbed.Config

	VMMConfig   core.Config
	BootProfile guest.BootProfile
	// Remote backs the image-copy and netboot strategies.
	Remote *baseline.RemoteStore

	// Retry is the per-lease redeploy policy (budget + backoff).
	Retry RetryPolicy
	// Health is the machine quarantine policy.
	Health HealthPolicy

	free      []*testbed.Node
	instances []*Instance

	// health tracks consecutive deployment failures per machine;
	// quarantined holds machines pulled from the pool. Both are keyed
	// maps only ever accessed by node — never iterated — so they cannot
	// leak map order into the simulation.
	health      map[*testbed.Node]int
	quarantined map[*testbed.Node]bool

	Requested   metrics.Counter
	Ready       metrics.Counter
	Failures    metrics.Counter
	Redeploys   metrics.Counter
	Quarantines metrics.Counter
	Probes      metrics.Counter
	TimeToUse   metrics.Histogram
	TimeToBare  metrics.Histogram
	// FreePool and Quarantined mirror the pool census as gauges.
	FreePool    metrics.Gauge
	Quarantined metrics.Gauge

	nextID     int
	poolEmpty  int64
	freeSignal *sim.Signal
	// onFree, when set (by the admission frontend), is invoked every
	// time a machine returns to the pool, so the dispatcher can wake.
	onFree func()
}

// NewController racks poolSize machines into tb.
func NewController(tb *testbed.Testbed, tcfg testbed.Config, poolSize int) *Controller {
	c := &Controller{
		tb:          tb,
		tcfg:        tcfg,
		VMMConfig:   core.DefaultConfig(),
		BootProfile: guest.DefaultBootProfile(),
		Remote:      baseline.NewRemoteStore(tb.K, "cloud-store", baseline.ISCSI, tb.Image),
		Retry:       DefaultRetryPolicy(),
		Health:      DefaultHealthPolicy(),
		health:      make(map[*testbed.Node]int),
		quarantined: make(map[*testbed.Node]bool),
		freeSignal:  tb.K.NewSignal("cloud.free"),
	}
	tb.Metrics.RegisterHistogram("cloud.time_to_ready", &c.TimeToUse)
	tb.Metrics.RegisterHistogram("cloud.time_to_baremetal", &c.TimeToBare)
	tb.Metrics.RegisterGauge("cloud.free_pool", &c.FreePool)
	tb.Metrics.RegisterGauge("cloud.quarantined", &c.Quarantined)
	tb.Metrics.RegisterCounter("cloud.quarantines", &c.Quarantines)
	tb.Metrics.RegisterCounter("cloud.probes", &c.Probes)
	c.BootProfile.SpanSectors = tcfg.ImageBytes / 2 / disk.SectorSize
	for i := 0; i < poolSize; i++ {
		c.free = append(c.free, tb.AddNode(tcfg))
	}
	c.FreePool.Set(float64(len(c.free)))
	return c
}

// FreeMachines reports the machines currently unleased.
func (c *Controller) FreeMachines() int { return len(c.free) }

// Instances returns all leases, live and released.
func (c *Controller) Instances() []*Instance {
	out := make([]*Instance, len(c.instances))
	copy(out, c.instances)
	return out
}

// Request leases a machine and starts deployment with the given strategy.
// It returns immediately; use WaitReady on the instance. It fails fast
// when the pool is empty.
func (c *Controller) Request(strategy Strategy) (*Instance, error) {
	node, err := c.lease()
	if err != nil {
		return nil, err
	}
	in := &Instance{
		ID:          c.nextID,
		Strategy:    strategy,
		Node:        node,
		state:       StateRequested,
		changed:     c.tb.K.NewSignal("cloud.instance"),
		RequestedAt: c.tb.K.Now(),
	}
	c.nextID++
	c.instances = append(c.instances, in)
	c.Requested.Inc()
	if c.tb.Trace != nil { // variadic attrs box; skip entirely when not tracing
		c.tb.Trace.Emit(node.M.Name, "cloud", "requested",
			trace.Int("instance", int64(in.ID)))
	}
	c.tb.K.Spawn(fmt.Sprintf("cloud.deploy.%d", in.ID), func(p *sim.Proc) { c.deploy(p, in) })
	return in, nil
}

// lease pops a free machine, failing fast when the pool is empty.
func (c *Controller) lease() (*testbed.Node, error) {
	if len(c.free) == 0 {
		c.poolEmpty++
		return nil, fmt.Errorf("cloud: machine pool exhausted")
	}
	node := c.free[0]
	c.free = c.free[1:]
	c.FreePool.Set(float64(len(c.free)))
	return node, nil
}

// leaseWait leases a machine, parking on the pool signal for up to wait
// if the pool is momentarily empty. wait <= 0 degenerates to lease().
func (c *Controller) leaseWait(p *sim.Proc, wait sim.Duration) (*testbed.Node, error) {
	deadline := p.Now().Add(wait)
	for len(c.free) == 0 && p.Now() < deadline {
		p.WaitTimeout(c.freeSignal, deadline.Sub(p.Now()))
	}
	return c.lease()
}

// repool returns a sanitized machine to the free pool and wakes anything
// waiting on pool capacity (lease waiters, the admission dispatcher).
func (c *Controller) repool(n *testbed.Node) {
	c.free = append(c.free, n)
	c.FreePool.Set(float64(len(c.free)))
	c.freeSignal.Broadcast()
	if c.onFree != nil {
		c.onFree()
	}
}

// noteFailure records a failed deployment against n's health score and
// either quarantines the machine or returns it to the pool.
func (c *Controller) noteFailure(n *testbed.Node) {
	c.health[n]++
	if c.Health.FailThreshold > 0 && c.health[n] >= c.Health.FailThreshold {
		c.quarantine(n)
		return
	}
	c.repool(n)
}

// quarantine pulls n out of circulation and arms the probation probe.
func (c *Controller) quarantine(n *testbed.Node) {
	c.quarantined[n] = true
	c.Quarantines.Inc()
	c.Quarantined.Set(float64(len(c.quarantined)))
	if c.tb.Trace != nil {
		c.tb.Trace.Emit(n.M.Name, "cloud", "quarantine")
	}
	c.tb.K.After(c.Health.Probation, func() { c.probe(n) })
}

// probe decides whether a quarantined machine is fit to serve again. The
// check is deliberately cheap — are the machine's links carrying frames?
// — because the deployment path itself is the real test; probation only
// needs to keep a machine benched while its rack is visibly unhealthy.
// A failed probe re-arms probation.
func (c *Controller) probe(n *testbed.Node) {
	c.Probes.Inc()
	if c.nodeLinksDown(n) {
		c.tb.K.After(c.Health.Probation, func() { c.probe(n) })
		return
	}
	delete(c.quarantined, n)
	c.health[n] = 0
	c.Quarantined.Set(float64(len(c.quarantined)))
	if c.tb.Trace != nil {
		c.tb.Trace.Emit(n.M.Name, "cloud", "readmit")
	}
	c.repool(n)
}

// nodeLinksDown reports whether either of n's links is down. On a
// sharded testbed the probe reads the hub's fault-schedule mirror
// instead of the node domain's live link state.
func (c *Controller) nodeLinksDown(n *testbed.Node) bool {
	if c.tb.Sharded() {
		return c.tb.NodeLinksDownMirror(c.tb.NodeIndex(n))
	}
	return n.GuestLink.Down(ethernet.DirBoth) || n.VMMLink.Down(ethernet.DirBoth)
}

// runOnNodeWait runs fn as a process on n's shard domain and parks the
// calling hub process until it returns, yielding fn's error. The hub
// never reads node state directly: everything it needs comes back by
// value through the completion post. On a single-threaded testbed it
// simply calls fn inline.
func (c *Controller) runOnNodeWait(p *sim.Proc, n *testbed.Node, name string, fn func(np *sim.Proc) error) error {
	if !c.tb.Sharded() {
		return fn(p)
	}
	var (
		done bool
		res  error
	)
	sig := c.tb.K.NewSignal(name)
	nk := c.tb.NodeKernel(n)
	c.tb.RunOnNode(n, name, func(np *sim.Proc) {
		err := fn(np)
		c.tb.PostToHub(nk, func() {
			res, done = err, true
			sig.Broadcast()
		})
	})
	for !done {
		p.Wait(sig)
	}
	return res
}

// QuarantinedMachines reports how many machines are currently benched.
func (c *Controller) QuarantinedMachines() int { return len(c.quarantined) }

func (c *Controller) deploy(p *sim.Proc, in *Instance) {
	in.state = StateDeploying
	in.changed.Broadcast()
	if c.tb.Sharded() && in.Strategy != StrategyBMcast {
		// The baseline strategies drive node hardware from the control
		// plane's process, which is illegal across shard domains.
		c.fail(in, fmt.Errorf("cloud: strategy %v not supported on a sharded testbed", in.Strategy))
		return
	}
	var err error
	switch in.Strategy {
	case StrategyBMcast:
		c.deployBMcast(p, in)
		return
	case StrategyImageCopy:
		_, err = baseline.DeployImageCopy(p, in.Node.M, in.Node.OS,
			baseline.DefaultImageCopyConfig(), c.Remote, c.BootProfile)
		if err == nil {
			c.markReady(p, in)
			return
		}
	case StrategyNetboot:
		err = baseline.BootNetboot(p, in.Node.M, in.Node.OS, c.Remote, c.BootProfile)
		if err == nil {
			c.markReady(p, in)
			return
		}
	}
	c.fail(in, err)
}

// deployBMcast runs the BMcast strategy with the budgeted-retry redeploy
// policy: an attempt that fails before the instance is handed over has
// its machine scrubbed and health-scored (repooled or quarantined), and
// the lease restarts on a fresh machine after a seeded, jittered backoff,
// up to Retry.Budget times. A failure after hand-over (the watchdog
// firing while the tenant already has the machine) only marks the
// instance failed; the tenant keeps the machine until Release.
func (c *Controller) deployBMcast(p *sim.Proc, in *Instance) {
	var err error
	for attempt := 0; ; attempt++ {
		node := in.Node
		var res *testbed.BMcastResult
		err = c.runOnNodeWait(p, node, "cloud.deploy.node", func(np *sim.Proc) error {
			r, e := c.tb.DeployBMcast(np, node, c.VMMConfig, c.BootProfile)
			if e == nil && node.VMM.Phase() == core.PhaseFailed {
				// The guest "booted" against a dead stream (the mediator
				// tolerates fetch errors); the watchdog is the authority.
				e = node.VMM.Err()
			}
			res = r
			return e
		})
		if err == nil {
			c.markReady(p, in)
			// The instance is already leased out; the copy finishes in
			// the background and the VMM melts away. res stays node-owned:
			// the wait and the phase check both run on the node's domain.
			werr := c.runOnNodeWait(p, node, "cloud.wait.baremetal", func(np *sim.Proc) error {
				c.tb.WaitBareMetal(np, node, res) // PhaseFailed wakes this too
				if node.VMM.Phase() == core.PhaseFailed {
					return node.VMM.Err()
				}
				return nil
			})
			if werr != nil {
				c.fail(in, werr)
				return
			}
			in.BareMetalAt = p.Now()
			c.TimeToBare.Observe(in.TimeToBareMetal())
			if c.tb.Trace != nil {
				c.tb.Trace.Emit(in.Node.M.Name, "cloud", "baremetal",
					trace.Int("instance", int64(in.ID)))
			}
			in.changed.Broadcast() // wake WaitBareMetal
			return
		}
		// Pre-ready failure: scrub the machine; its health score decides
		// whether it goes back to the pool or into quarantine.
		c.reclaim(p, in.Node)
		if attempt >= c.Retry.Budget {
			in.reclaimed = true
			c.fail(in, fmt.Errorf("cloud: instance %d failed after %d deployment attempts: %w",
				in.ID, attempt+1, err))
			return
		}
		if d := c.Retry.backoff(attempt, c.tb.K.Rand()); d > 0 {
			p.Sleep(d)
		}
		node, lerr := c.leaseWait(p, c.Retry.LeaseWait)
		if lerr != nil {
			in.reclaimed = true
			c.fail(in, fmt.Errorf("cloud: instance %d redeploy: %w", in.ID, lerr))
			return
		}
		in.Node = node
		in.Redeploys++
		c.Redeploys.Inc()
	}
}

// reclaim sanitizes a machine whose deployment failed and hands it to
// the health policy, which repools or quarantines it.
func (c *Controller) reclaim(p *sim.Proc, n *testbed.Node) {
	_ = c.runOnNodeWait(p, n, "cloud.reclaim.node", func(np *sim.Proc) error {
		if n.VMM != nil {
			n.VMM.Scrub(np) // drain mediation, detach taps, leave virtualization
		}
		c.scrub(n)
		return nil
	})
	c.noteFailure(n)
}

// scrub sanitizes a machine between leases: blocks return to zero (as a
// provider would wipe between tenants), no VMM, a fresh guest OS.
func (c *Controller) scrub(n *testbed.Node) {
	n.M.Disk.Store().Write(0, n.M.Disk.Sectors, disk.Zero)
	n.VMM = nil
	n.OS = guest.NewOS("ubuntu", n.M)
}

func (c *Controller) fail(in *Instance, err error) {
	in.err = err
	in.state = StateFailed
	c.Failures.Inc()
	if c.tb.Trace != nil {
		c.tb.Trace.Emit(in.Node.M.Name, "cloud", "failed",
			trace.Int("instance", int64(in.ID)))
	}
	in.changed.Broadcast()
}

func (c *Controller) markReady(p *sim.Proc, in *Instance) {
	in.ReadyAt = p.Now()
	in.state = StateReady
	c.health[in.Node] = 0 // a successful deployment clears the failure streak
	c.Ready.Inc()
	c.TimeToUse.Observe(in.TimeToReady())
	if c.tb.Trace != nil {
		c.tb.Trace.Emit(in.Node.M.Name, "cloud", "ready",
			trace.Int("instance", int64(in.ID)))
	}
	in.changed.Broadcast()
}

// Release ends a lease: the disk is wiped (a fresh zero store, as a
// provider would sanitize between tenants) and the machine returns to the
// pool. Failed instances may be released too; if the controller already
// reclaimed the machine (pre-ready failure), releasing is a no-op beyond
// the state change, and for a post-ready failure the sanitization runs
// asynchronously (the dead VMM must first drain and detach).
func (c *Controller) Release(in *Instance) error {
	if in.state == StateReleased {
		return fmt.Errorf("cloud: instance %d: %w", in.ID, ErrAlreadyReleased)
	}
	if in.state != StateReady && in.state != StateFailed {
		return fmt.Errorf("cloud: instance %d is %v, not releasable", in.ID, in.state)
	}
	wasFailed := in.state == StateFailed
	in.state = StateReleased
	in.changed.Broadcast()
	if in.reclaimed {
		return nil // machine already scrubbed and pooled
	}
	if wasFailed {
		node := in.Node
		in.reclaimed = true
		c.tb.K.Spawn(fmt.Sprintf("cloud.reclaim.%d", in.ID), func(p *sim.Proc) {
			c.reclaim(p, node)
		})
		return nil
	}
	if !c.tb.Sharded() {
		c.scrub(in.Node)
		c.repool(in.Node)
		return nil
	}
	// Sharded: the wipe runs on the node's domain, and the machine
	// rejoins the pool when the completion post reaches the hub.
	node := in.Node
	nk := c.tb.NodeKernel(node)
	c.tb.RunOnNode(node, "cloud.release.scrub", func(np *sim.Proc) {
		c.scrub(node)
		c.tb.PostToHub(nk, func() { c.repool(node) })
	})
	return nil
}
