// Package cloud is the provisioning layer the paper motivates: a
// bare-metal cloud controller that leases physical machines on demand.
// It manages a rack of powered-off machines and provisions instances with
// a pluggable deployment strategy, so the agility/elasticity comparison
// (§1, §5.1) can be driven as a workload: request N instances, watch
// time-to-ready, release, re-provision.
package cloud

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Strategy selects how an instance's OS is deployed.
type Strategy int

// Deployment strategies.
const (
	StrategyBMcast Strategy = iota
	StrategyImageCopy
	StrategyNetboot
)

func (s Strategy) String() string {
	switch s {
	case StrategyBMcast:
		return "bmcast"
	case StrategyImageCopy:
		return "image-copy"
	default:
		return "netboot"
	}
}

// InstanceState is the lifecycle of a lease.
type InstanceState int

// Instance lifecycle states.
const (
	StateRequested InstanceState = iota
	StateDeploying
	StateReady
	StateFailed
	StateReleased
)

func (s InstanceState) String() string {
	return [...]string{"requested", "deploying", "ready", "failed", "released"}[s]
}

// Instance is one bare-metal lease.
type Instance struct {
	ID       int
	Strategy Strategy
	Node     *testbed.Node

	state   InstanceState
	changed *sim.Signal
	err     error

	RequestedAt sim.Time
	ReadyAt     sim.Time
	// BareMetalAt is when the VMM disappeared (BMcast only).
	BareMetalAt sim.Time
}

// State reports the current lifecycle state.
func (in *Instance) State() InstanceState { return in.state }

// Err reports the deployment error for a failed instance.
func (in *Instance) Err() error { return in.err }

// TimeToReady is the request-to-usable latency — the paper's agility
// metric.
func (in *Instance) TimeToReady() sim.Duration { return in.ReadyAt.Sub(in.RequestedAt) }

// WaitReady blocks until the instance is usable (or failed), reporting
// success.
func (in *Instance) WaitReady(p *sim.Proc) bool {
	p.WaitCond(in.changed, func() bool { return in.state == StateReady || in.state == StateFailed })
	return in.state == StateReady
}

// Controller provisions instances from a machine pool.
type Controller struct {
	tb   *testbed.Testbed
	tcfg testbed.Config

	VMMConfig   core.Config
	BootProfile guest.BootProfile
	// Remote backs the image-copy and netboot strategies.
	Remote *baseline.RemoteStore

	free      []*testbed.Node
	instances []*Instance

	Requested  metrics.Counter
	Ready      metrics.Counter
	Failures   metrics.Counter
	TimeToUse  metrics.Histogram
	nextID     int
	poolEmpty  int64
	freeSignal *sim.Signal
}

// NewController racks poolSize machines into tb.
func NewController(tb *testbed.Testbed, tcfg testbed.Config, poolSize int) *Controller {
	c := &Controller{
		tb:          tb,
		tcfg:        tcfg,
		VMMConfig:   core.DefaultConfig(),
		BootProfile: guest.DefaultBootProfile(),
		Remote:      baseline.NewRemoteStore(tb.K, "cloud-store", baseline.ISCSI, tb.Image),
		freeSignal:  tb.K.NewSignal("cloud.free"),
	}
	c.BootProfile.SpanSectors = tcfg.ImageBytes / 2 / disk.SectorSize
	for i := 0; i < poolSize; i++ {
		c.free = append(c.free, tb.AddNode(tcfg))
	}
	return c
}

// FreeMachines reports the machines currently unleased.
func (c *Controller) FreeMachines() int { return len(c.free) }

// Instances returns all leases, live and released.
func (c *Controller) Instances() []*Instance {
	out := make([]*Instance, len(c.instances))
	copy(out, c.instances)
	return out
}

// Request leases a machine and starts deployment with the given strategy.
// It returns immediately; use WaitReady on the instance. It fails fast
// when the pool is empty.
func (c *Controller) Request(strategy Strategy) (*Instance, error) {
	if len(c.free) == 0 {
		c.poolEmpty++
		return nil, fmt.Errorf("cloud: machine pool exhausted")
	}
	node := c.free[0]
	c.free = c.free[1:]
	in := &Instance{
		ID:          c.nextID,
		Strategy:    strategy,
		Node:        node,
		state:       StateRequested,
		changed:     c.tb.K.NewSignal("cloud.instance"),
		RequestedAt: c.tb.K.Now(),
	}
	c.nextID++
	c.instances = append(c.instances, in)
	c.Requested.Inc()
	c.tb.K.Spawn(fmt.Sprintf("cloud.deploy.%d", in.ID), func(p *sim.Proc) { c.deploy(p, in) })
	return in, nil
}

func (c *Controller) deploy(p *sim.Proc, in *Instance) {
	in.state = StateDeploying
	in.changed.Broadcast()
	var err error
	switch in.Strategy {
	case StrategyBMcast:
		var res *testbed.BMcastResult
		res, err = c.tb.DeployBMcast(p, in.Node, c.VMMConfig, c.BootProfile)
		if err == nil {
			c.markReady(p, in)
			// The instance is already leased out; the copy finishes in
			// the background and the VMM melts away.
			c.tb.WaitBareMetal(p, in.Node, res)
			in.BareMetalAt = p.Now()
			return
		}
	case StrategyImageCopy:
		_, err = baseline.DeployImageCopy(p, in.Node.M, in.Node.OS,
			baseline.DefaultImageCopyConfig(), c.Remote, c.BootProfile)
		if err == nil {
			c.markReady(p, in)
			return
		}
	case StrategyNetboot:
		err = baseline.BootNetboot(p, in.Node.M, in.Node.OS, c.Remote, c.BootProfile)
		if err == nil {
			c.markReady(p, in)
			return
		}
	}
	in.err = err
	in.state = StateFailed
	c.Failures.Inc()
	in.changed.Broadcast()
}

func (c *Controller) markReady(p *sim.Proc, in *Instance) {
	in.ReadyAt = p.Now()
	in.state = StateReady
	c.Ready.Inc()
	c.TimeToUse.Observe(in.TimeToReady())
	in.changed.Broadcast()
}

// Release ends a lease: the disk is wiped (a fresh zero store, as a
// provider would sanitize between tenants) and the machine returns to the
// pool.
func (c *Controller) Release(in *Instance) error {
	if in.state != StateReady {
		return fmt.Errorf("cloud: instance %d is %v, not ready", in.ID, in.state)
	}
	in.state = StateReleased
	in.changed.Broadcast()
	// Sanitize: all blocks return to zero; a future lease re-deploys.
	in.Node.M.Disk.Store().Write(0, in.Node.M.Disk.Sectors, disk.Zero)
	in.Node.VMM = nil
	in.Node.OS = guest.NewOS("ubuntu", in.Node.M)
	c.free = append(c.free, in.Node)
	c.freeSignal.Broadcast()
	return nil
}
