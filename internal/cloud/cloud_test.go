package cloud_test

import (
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func testController(poolSize int) (*testbed.Testbed, *cloud.Controller) {
	tcfg := testbed.DefaultConfig()
	tcfg.ImageBytes = 64 << 20
	tcfg.DiskSectors = 1 << 20
	tb := testbed.New(tcfg)
	c := cloud.NewController(tb, tcfg, poolSize)
	c.BootProfile.TotalBytes = 8 << 20
	c.BootProfile.CPUTime = 2 * sim.Second
	c.VMMConfig.WriteInterval = 2 * sim.Millisecond
	for _, n := range tb.Nodes {
		n.M.Firmware.InitTime = 2 * sim.Second
	}
	return tb, c
}

func TestRequestAndReady(t *testing.T) {
	tb, c := testController(2)
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		in, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if !in.WaitReady(p) {
			t.Errorf("instance failed: %v", in.Err())
			return
		}
		if in.TimeToReady() <= 0 {
			t.Error("TimeToReady not recorded")
		}
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if c.Ready.Value() != 1 || c.FreeMachines() != 1 {
		t.Fatalf("ready=%d free=%d", c.Ready.Value(), c.FreeMachines())
	}
}

func TestPoolExhaustion(t *testing.T) {
	tb, c := testController(1)
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		if _, err := c.Request(cloud.StrategyBMcast); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Request(cloud.StrategyBMcast); err == nil {
			t.Error("second request on a one-machine pool succeeded")
		}
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
}

func TestReleaseSanitizesAndReuses(t *testing.T) {
	tb, c := testController(1)
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		in, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if !in.WaitReady(p) {
			t.Errorf("first lease failed: %v", in.Err())
			return
		}
		// Wait for the background copy to finish before release, so the
		// machine is quiescent.
		in.Node.VMM.WaitPhase(p, 3)
		if err := c.Release(in); err != nil {
			t.Error(err)
			return
		}
		// The disk must hold no tenant data.
		if got := in.Node.M.Disk.Store().CountBySource()["zero"]; got != in.Node.M.Disk.Sectors {
			t.Errorf("disk not sanitized: %d of %d zero", got, in.Node.M.Disk.Sectors)
			return
		}
		// Lease again: a fresh deployment must work on the wiped machine.
		in2, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if !in2.WaitReady(p) {
			t.Errorf("re-lease failed: %v", in2.Err())
		}
	})
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if c.Ready.Value() != 2 {
		t.Fatalf("Ready = %d, want 2", c.Ready.Value())
	}
}

func TestReleaseRequiresReady(t *testing.T) {
	tb, c := testController(1)
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		in, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if err := c.Release(in); err == nil {
			t.Error("released a still-deploying instance")
		}
		in.WaitReady(p)
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
}

// TestDeadServerFailsInstanceAndReclaimsMachine is the no-recovery
// acceptance scenario: with a dead storage server and no secondary, the
// watchdog fails every deployment attempt, the instance ends up
// StateFailed with a descriptive error, and the machine — scrubbed — is
// back in the free pool.
func TestDeadServerFailsInstanceAndReclaimsMachine(t *testing.T) {
	tb, c := testController(1)
	c.VMMConfig.StallTimeout = 2 * sim.Second
	c.RedeployRetries = 1
	tb.Server.Crash() // dead before the first request
	var in *cloud.Instance
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		var err error
		in, err = c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if in.WaitReady(p) {
			t.Error("instance became ready against a dead server")
		}
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if in == nil {
		t.Fatal("request never ran")
	}
	if got := in.State(); got != cloud.StateFailed {
		t.Fatalf("state = %v, want failed", got)
	}
	err := in.Err()
	if err == nil || !strings.Contains(err.Error(), "deployment attempts") {
		t.Fatalf("error not descriptive: %v", err)
	}
	if in.Redeploys != 1 || c.Redeploys.Value() != 1 {
		t.Fatalf("redeploys: instance=%d counter=%d, want 1/1", in.Redeploys, c.Redeploys.Value())
	}
	if c.Failures.Value() != 1 {
		t.Fatalf("Failures = %d, want 1", c.Failures.Value())
	}
	if c.FreeMachines() != 1 {
		t.Fatalf("machine not returned to pool: free = %d", c.FreeMachines())
	}
	n := tb.Nodes[0]
	if got := n.M.Disk.Store().CountBySource()["zero"]; got != n.M.Disk.Sectors {
		t.Fatalf("reclaimed machine not sanitized: %d of %d sectors zero", got, n.M.Disk.Sectors)
	}
	// Releasing the failed instance is allowed and must not re-pool the
	// already-reclaimed machine.
	if err := c.Release(in); err != nil {
		t.Fatal(err)
	}
	if in.State() != cloud.StateReleased || c.FreeMachines() != 1 {
		t.Fatalf("release of reclaimed instance: state=%v free=%d", in.State(), c.FreeMachines())
	}
}

// TestRedeployRecoversAfterServerRestart: the capped-retry policy turns a
// transient server outage into a late — but successful — lease.
func TestRedeployRecoversAfterServerRestart(t *testing.T) {
	tb, c := testController(2)
	c.VMMConfig.StallTimeout = 2 * sim.Second
	c.RedeployRetries = 3
	tb.Server.Crash()
	tb.K.After(20*sim.Second, tb.Server.Restart)
	var in *cloud.Instance
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		var err error
		in, err = c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if !in.WaitReady(p) {
			t.Errorf("instance failed despite retries: %v", in.Err())
		}
	})
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if in == nil || in.State() != cloud.StateReady {
		t.Fatalf("instance not ready")
	}
	if in.Redeploys == 0 {
		t.Fatal("lease succeeded without redeploying; outage scenario did not run")
	}
}

// TestScaleUpBMcastVsImageCopy is the elasticity claim (§5.1): starting
// several instances at once, BMcast's per-instance time-to-ready stays
// near the single-instance value (it moves only ~90 MB per boot), while
// image copy serializes behind the shared server link.
func TestScaleUpBMcastVsImageCopy(t *testing.T) {
	const fleet = 4
	run := func(s cloud.Strategy) (worst sim.Duration) {
		tb, c := testController(fleet)
		done := 0
		for i := 0; i < fleet; i++ {
			tb.K.Spawn("tenant", func(p *sim.Proc) {
				in, err := c.Request(s)
				if err != nil {
					t.Error(err)
					return
				}
				if !in.WaitReady(p) {
					t.Errorf("%v instance failed: %v", s, in.Err())
					return
				}
				if d := in.TimeToReady(); d > worst {
					worst = d
				}
				done++
			})
		}
		tb.K.RunUntil(sim.Time(4 * sim.Hour))
		if done != fleet {
			t.Fatalf("%v: only %d of %d instances became ready", s, done, fleet)
		}
		return worst
	}
	bmcast := run(cloud.StrategyBMcast)
	imageCopy := run(cloud.StrategyImageCopy)
	if bmcast >= imageCopy {
		t.Fatalf("BMcast fleet worst-case %v not better than image copy %v", bmcast, imageCopy)
	}
	t.Logf("worst time-to-ready for %d instances: bmcast=%v image-copy=%v", fleet, bmcast, imageCopy)
}
