package cloud_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/ethernet"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func testController(poolSize int) (*testbed.Testbed, *cloud.Controller) {
	tcfg := testbed.DefaultConfig()
	tcfg.ImageBytes = 64 << 20
	tcfg.DiskSectors = 1 << 20
	tb := testbed.New(tcfg)
	c := cloud.NewController(tb, tcfg, poolSize)
	c.BootProfile.TotalBytes = 8 << 20
	c.BootProfile.CPUTime = 2 * sim.Second
	c.VMMConfig.WriteInterval = 2 * sim.Millisecond
	for _, n := range tb.Nodes {
		n.M.Firmware.InitTime = 2 * sim.Second
	}
	return tb, c
}

func TestRequestAndReady(t *testing.T) {
	tb, c := testController(2)
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		in, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if !in.WaitReady(p) {
			t.Errorf("instance failed: %v", in.Err())
			return
		}
		if in.TimeToReady() <= 0 {
			t.Error("TimeToReady not recorded")
		}
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if c.Ready.Value() != 1 || c.FreeMachines() != 1 {
		t.Fatalf("ready=%d free=%d", c.Ready.Value(), c.FreeMachines())
	}
}

func TestPoolExhaustion(t *testing.T) {
	tb, c := testController(1)
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		if _, err := c.Request(cloud.StrategyBMcast); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Request(cloud.StrategyBMcast); err == nil {
			t.Error("second request on a one-machine pool succeeded")
		}
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
}

func TestReleaseSanitizesAndReuses(t *testing.T) {
	tb, c := testController(1)
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		in, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if !in.WaitReady(p) {
			t.Errorf("first lease failed: %v", in.Err())
			return
		}
		// Wait for the background copy to finish before release, so the
		// machine is quiescent.
		in.Node.VMM.WaitPhase(p, 3)
		if err := c.Release(in); err != nil {
			t.Error(err)
			return
		}
		// The disk must hold no tenant data.
		if got := in.Node.M.Disk.Store().CountBySource()["zero"]; got != in.Node.M.Disk.Sectors {
			t.Errorf("disk not sanitized: %d of %d zero", got, in.Node.M.Disk.Sectors)
			return
		}
		// Lease again: a fresh deployment must work on the wiped machine.
		in2, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if !in2.WaitReady(p) {
			t.Errorf("re-lease failed: %v", in2.Err())
		}
	})
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if c.Ready.Value() != 2 {
		t.Fatalf("Ready = %d, want 2", c.Ready.Value())
	}
}

func TestReleaseRequiresReady(t *testing.T) {
	tb, c := testController(1)
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		in, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if err := c.Release(in); err == nil {
			t.Error("released a still-deploying instance")
		}
		in.WaitReady(p)
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
}

// TestDeadServerFailsInstanceAndReclaimsMachine is the no-recovery
// acceptance scenario: with a dead storage server and no secondary, the
// watchdog fails every deployment attempt, the instance ends up
// StateFailed with a descriptive error, and the machine — scrubbed — is
// back in the free pool.
func TestDeadServerFailsInstanceAndReclaimsMachine(t *testing.T) {
	tb, c := testController(1)
	c.VMMConfig.StallTimeout = 2 * sim.Second
	c.Retry.Budget = 1
	tb.Server.Crash() // dead before the first request
	var in *cloud.Instance
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		var err error
		in, err = c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if in.WaitReady(p) {
			t.Error("instance became ready against a dead server")
		}
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if in == nil {
		t.Fatal("request never ran")
	}
	if got := in.State(); got != cloud.StateFailed {
		t.Fatalf("state = %v, want failed", got)
	}
	err := in.Err()
	if err == nil || !strings.Contains(err.Error(), "deployment attempts") {
		t.Fatalf("error not descriptive: %v", err)
	}
	if in.Redeploys != 1 || c.Redeploys.Value() != 1 {
		t.Fatalf("redeploys: instance=%d counter=%d, want 1/1", in.Redeploys, c.Redeploys.Value())
	}
	if c.Failures.Value() != 1 {
		t.Fatalf("Failures = %d, want 1", c.Failures.Value())
	}
	if c.FreeMachines() != 1 {
		t.Fatalf("machine not returned to pool: free = %d", c.FreeMachines())
	}
	n := tb.Nodes[0]
	if got := n.M.Disk.Store().CountBySource()["zero"]; got != n.M.Disk.Sectors {
		t.Fatalf("reclaimed machine not sanitized: %d of %d sectors zero", got, n.M.Disk.Sectors)
	}
	// Releasing the failed instance is allowed and must not re-pool the
	// already-reclaimed machine.
	if err := c.Release(in); err != nil {
		t.Fatal(err)
	}
	if in.State() != cloud.StateReleased || c.FreeMachines() != 1 {
		t.Fatalf("release of reclaimed instance: state=%v free=%d", in.State(), c.FreeMachines())
	}
}

// TestRedeployRecoversAfterServerRestart: the capped-retry policy turns a
// transient server outage into a late — but successful — lease.
func TestRedeployRecoversAfterServerRestart(t *testing.T) {
	tb, c := testController(2)
	c.VMMConfig.StallTimeout = 2 * sim.Second
	c.Retry.Budget = 3
	tb.Server.Crash()
	tb.K.After(20*sim.Second, tb.Server.Restart)
	var in *cloud.Instance
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		var err error
		in, err = c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if !in.WaitReady(p) {
			t.Errorf("instance failed despite retries: %v", in.Err())
		}
	})
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if in == nil || in.State() != cloud.StateReady {
		t.Fatalf("instance not ready")
	}
	if in.Redeploys == 0 {
		t.Fatal("lease succeeded without redeploying; outage scenario did not run")
	}
}

// TestDoubleReleaseReturnsStableError pins the double-release contract:
// the second Release returns ErrAlreadyReleased (stable under errors.Is)
// and the machine is pooled exactly once.
func TestDoubleReleaseReturnsStableError(t *testing.T) {
	tb, c := testController(1)
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		in, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if !in.WaitReady(p) {
			t.Errorf("lease failed: %v", in.Err())
			return
		}
		if !in.WaitBareMetal(p) {
			t.Errorf("never reached bare metal: %v", in.Err())
			return
		}
		if d := in.TimeToBareMetal(); d <= 0 || d < in.TimeToReady() {
			t.Errorf("TimeToBareMetal = %v (ready %v)", d, in.TimeToReady())
		}
		if err := c.Release(in); err != nil {
			t.Error(err)
			return
		}
		err = c.Release(in)
		if !errors.Is(err, cloud.ErrAlreadyReleased) {
			t.Errorf("second release error = %v, want ErrAlreadyReleased", err)
		}
		if err == nil || !strings.Contains(err.Error(), "already released") {
			t.Errorf("second release error not descriptive: %v", err)
		}
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if c.FreeMachines() != 1 {
		t.Fatalf("free = %d after double release, want 1 (machine pooled once)", c.FreeMachines())
	}
}

// TestQuarantineAndProbationReadmit pins the machine health policy: a
// machine whose deployments keep failing is pulled from the free pool
// after FailThreshold consecutive failures, held out while probation
// probes keep failing, and re-admitted (with its score reset) once a
// probe passes.
func TestQuarantineAndProbationReadmit(t *testing.T) {
	tb, c := testController(2)
	c.VMMConfig.StallTimeout = 2 * sim.Second
	c.Retry.Budget = 0 // every lease fails on its first bad attempt
	c.Health = cloud.HealthPolicy{FailThreshold: 2, Probation: 10 * sim.Second}
	bad := tb.Nodes[0]
	down := func(v bool) {
		bad.GuestLink.SetDown(ethernet.DirBoth, v)
		bad.VMMLink.SetDown(ethernet.DirBoth, v)
	}
	down(true)
	tb.K.After(40*sim.Second, func() { down(false) })
	tb.K.Spawn("tenant", func(p *sim.Proc) {
		// First lease lands on the partitioned machine and fails: one
		// strike, machine back in the pool.
		a, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		// Second lease takes the healthy machine out of circulation.
		b, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if a.WaitReady(p) {
			t.Error("lease on partitioned machine became ready")
			return
		}
		if c.QuarantinedMachines() != 0 {
			t.Errorf("quarantined after one strike: %d", c.QuarantinedMachines())
		}
		// Second strike trips quarantine.
		a2, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if a2.WaitReady(p) {
			t.Error("second lease on partitioned machine became ready")
			return
		}
		if c.QuarantinedMachines() != 1 {
			t.Errorf("quarantined = %d after second strike, want 1", c.QuarantinedMachines())
		}
		// The quarantined machine is out of the free pool: with the healthy
		// machine leased, the pool is exhausted.
		if _, err := c.Request(cloud.StrategyBMcast); err == nil {
			t.Error("request succeeded while only machine is quarantined")
		}
		if !b.WaitReady(p) {
			t.Errorf("healthy lease failed: %v", b.Err())
			return
		}
		// Probes fail while the links stay down; after they come back up
		// (t=40s) the next probe re-admits the machine.
		for c.FreeMachines() == 0 {
			p.Sleep(sim.Second)
		}
		if c.QuarantinedMachines() != 0 {
			t.Errorf("still quarantined after readmit: %d", c.QuarantinedMachines())
		}
		if p.Now() < sim.Time(40*sim.Second) {
			t.Errorf("re-admitted at %v, before links recovered", p.Now())
		}
		// The re-admitted machine serves a lease again.
		a3, err := c.Request(cloud.StrategyBMcast)
		if err != nil {
			t.Error(err)
			return
		}
		if !a3.WaitReady(p) {
			t.Errorf("lease on re-admitted machine failed: %v", a3.Err())
		}
	})
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if c.Quarantines.Value() != 1 {
		t.Fatalf("Quarantines = %d, want 1", c.Quarantines.Value())
	}
	if c.Probes.Value() < 2 {
		t.Fatalf("Probes = %d, want at least one failed and one passing probe", c.Probes.Value())
	}
}

// TestScaleUpBMcastVsImageCopy is the elasticity claim (§5.1): starting
// several instances at once, BMcast's per-instance time-to-ready stays
// near the single-instance value (it moves only ~90 MB per boot), while
// image copy serializes behind the shared server link.
func TestScaleUpBMcastVsImageCopy(t *testing.T) {
	const fleet = 4
	run := func(s cloud.Strategy) (worst sim.Duration) {
		tb, c := testController(fleet)
		done := 0
		for i := 0; i < fleet; i++ {
			tb.K.Spawn("tenant", func(p *sim.Proc) {
				in, err := c.Request(s)
				if err != nil {
					t.Error(err)
					return
				}
				if !in.WaitReady(p) {
					t.Errorf("%v instance failed: %v", s, in.Err())
					return
				}
				if d := in.TimeToReady(); d > worst {
					worst = d
				}
				done++
			})
		}
		tb.K.RunUntil(sim.Time(4 * sim.Hour))
		if done != fleet {
			t.Fatalf("%v: only %d of %d instances became ready", s, done, fleet)
		}
		return worst
	}
	bmcast := run(cloud.StrategyBMcast)
	imageCopy := run(cloud.StrategyImageCopy)
	if bmcast >= imageCopy {
		t.Fatalf("BMcast fleet worst-case %v not better than image copy %v", bmcast, imageCopy)
	}
	t.Logf("worst time-to-ready for %d instances: bmcast=%v image-copy=%v", fleet, bmcast, imageCopy)
}
