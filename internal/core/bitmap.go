// Package core implements the BMcast VMM: the four-phase deployment
// lifecycle (initialization, deployment, de-virtualization, bare-metal),
// copy-on-read and background copy over the device mediators, the block
// bitmap with its consistency guarantees, copy-speed moderation, and
// seamless de-virtualization (paper §3).
package core

import "fmt"

// Bitmap tracks, per sector, whether the local disk already holds valid
// data (filled by the background copy, copy-on-read, or a guest write).
// The paper stores one bit per disk block and checks it atomically to
// keep the VMM from overwriting guest-written blocks (§3.3); here the
// atomicity is the simulation's cooperative scheduling: checks and updates
// between yields are indivisible.
type Bitmap struct {
	sectors int64
	words   []uint64
	filled  int64
}

// NewBitmap returns an all-unfilled bitmap covering the given sectors.
func NewBitmap(sectors int64) *Bitmap {
	if sectors <= 0 {
		panic("core: bitmap must cover a positive sector count")
	}
	return &Bitmap{sectors: sectors, words: make([]uint64, (sectors+63)/64)}
}

// Sectors reports the tracked capacity.
func (b *Bitmap) Sectors() int64 { return b.sectors }

// FilledCount reports how many sectors are filled.
func (b *Bitmap) FilledCount() int64 { return b.filled }

// Complete reports whether every sector is filled.
func (b *Bitmap) Complete() bool { return b.filled == b.sectors }

func (b *Bitmap) check(lba, count int64) {
	if lba < 0 || count <= 0 || lba+count > b.sectors {
		panic(fmt.Sprintf("core: bitmap range [%d,+%d) outside %d sectors", lba, count, b.sectors))
	}
}

// Filled reports whether sector lba is filled.
func (b *Bitmap) Filled(lba int64) bool {
	b.check(lba, 1)
	return b.words[lba/64]&(1<<uint(lba%64)) != 0
}

// AllFilled reports whether every sector in [lba, lba+count) is filled.
func (b *Bitmap) AllFilled(lba, count int64) bool {
	b.check(lba, count)
	for i := lba; i < lba+count; i++ {
		if b.words[i/64]&(1<<uint(i%64)) == 0 {
			return false
		}
	}
	return true
}

// MarkFilled sets [lba, lba+count) filled, returning how many sectors
// changed state.
func (b *Bitmap) MarkFilled(lba, count int64) int64 {
	b.check(lba, count)
	var changed int64
	for i := lba; i < lba+count; i++ {
		w, bit := i/64, uint64(1)<<uint(i%64)
		if b.words[w]&bit == 0 {
			b.words[w] |= bit
			changed++
		}
	}
	b.filled += changed
	return changed
}

// Run is a contiguous sector range.
type Run struct {
	LBA   int64
	Count int64
}

// End reports the first sector past the run.
func (r Run) End() int64 { return r.LBA + r.Count }

// UnfilledRuns returns the maximal unfilled sub-ranges of [lba, lba+count)
// in ascending order.
func (b *Bitmap) UnfilledRuns(lba, count int64) []Run {
	b.check(lba, count)
	var runs []Run
	var cur *Run
	for i := lba; i < lba+count; i++ {
		if b.words[i/64]&(1<<uint(i%64)) == 0 {
			if cur != nil && cur.End() == i {
				cur.Count++
				continue
			}
			runs = append(runs, Run{LBA: i, Count: 1})
			cur = &runs[len(runs)-1]
		}
	}
	return runs
}

// NextUnfilled finds the first unfilled sector at or after lba, wrapping
// to the start; it returns the run beginning there, capped at maxCount.
// ok is false when the bitmap is complete.
func (b *Bitmap) NextUnfilled(lba, maxCount int64) (Run, bool) {
	if b.Complete() {
		return Run{}, false
	}
	if lba >= b.sectors || lba < 0 {
		lba = 0
	}
	scan := func(from, to int64) (Run, bool) {
		for i := from; i < to; {
			w := b.words[i/64]
			if w == ^uint64(0) {
				i = (i/64 + 1) * 64 // skip full word
				continue
			}
			if w&(1<<uint(i%64)) == 0 {
				run := Run{LBA: i, Count: 0}
				for i < to && run.Count < maxCount && b.words[i/64]&(1<<uint(i%64)) == 0 {
					run.Count++
					i++
				}
				return run, true
			}
			i++
		}
		return Run{}, false
	}
	if r, ok := scan(lba, b.sectors); ok {
		return r, true
	}
	return scan(0, lba)
}

// Marshal serializes the bitmap for on-disk persistence: the VMM saves it
// to an unused disk region across shutdowns (§3.3).
func (b *Bitmap) Marshal() []byte {
	out := make([]byte, 16+len(b.words)*8)
	putU64(out[0:], uint64(b.sectors))
	putU64(out[8:], uint64(b.filled))
	for i, w := range b.words {
		putU64(out[16+i*8:], w)
	}
	return out
}

// UnmarshalBitmap restores a bitmap saved by Marshal.
func UnmarshalBitmap(data []byte) (*Bitmap, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("core: bitmap blob too short: %d bytes", len(data))
	}
	sectors := int64(getU64(data[0:]))
	filled := int64(getU64(data[8:]))
	if sectors <= 0 {
		return nil, fmt.Errorf("core: bitmap blob has invalid sector count %d", sectors)
	}
	b := NewBitmap(sectors)
	if want := 16 + len(b.words)*8; len(data) < want {
		return nil, fmt.Errorf("core: bitmap blob truncated: %d of %d bytes", len(data), want)
	}
	var recount int64
	for i := range b.words {
		w := getU64(data[16+i*8:])
		b.words[i] = w
		for ; w != 0; w &= w - 1 {
			recount++
		}
	}
	if recount != filled {
		return nil, fmt.Errorf("core: bitmap blob corrupt: header says %d filled, bits say %d", filled, recount)
	}
	b.filled = filled
	return b, nil
}

// PersistSize reports the marshaled size in bytes.
func (b *Bitmap) PersistSize() int64 { return int64(16 + len(b.words)*8) }

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
