// Package core implements the BMcast VMM: the four-phase deployment
// lifecycle (initialization, deployment, de-virtualization, bare-metal),
// copy-on-read and background copy over the device mediators, the block
// bitmap with its consistency guarantees, copy-speed moderation, and
// seamless de-virtualization (paper §3).
package core

import (
	"fmt"
	"math/bits"
)

// Bitmap tracks, per sector, whether the local disk already holds valid
// data (filled by the background copy, copy-on-read, or a guest write).
// The paper stores one bit per disk block and checks it atomically to
// keep the VMM from overwriting guest-written blocks (§3.3); here the
// atomicity is the simulation's cooperative scheduling: checks and updates
// between yields are indivisible.
//
// The structure is a two-level hierarchy: words holds one bit per sector,
// and summary holds one bit per word, set when that word is completely
// filled. Scans skip filled regions one summary word — 4096 sectors — at
// a time, which keeps NextUnfilled cheap late in a deployment when almost
// everything below the copy frontier is filled.
type Bitmap struct {
	sectors int64
	words   []uint64
	// summary: bit j of summary[i] is set iff words[i*64+j] == ^uint64(0).
	// The trailing partial word of a non-multiple-of-64 bitmap never
	// reaches all-ones, so its summary bit stays clear — scans always
	// examine it directly, exactly like the flat scan did.
	summary []uint64
	filled  int64
}

// NewBitmap returns an all-unfilled bitmap covering the given sectors.
func NewBitmap(sectors int64) *Bitmap {
	if sectors <= 0 {
		panic("core: bitmap must cover a positive sector count")
	}
	nw := (sectors + 63) / 64
	return &Bitmap{
		sectors: sectors,
		words:   make([]uint64, nw),
		summary: make([]uint64, (nw+63)/64),
	}
}

// Sectors reports the tracked capacity.
func (b *Bitmap) Sectors() int64 { return b.sectors }

// FilledCount reports how many sectors are filled.
func (b *Bitmap) FilledCount() int64 { return b.filled }

// Complete reports whether every sector is filled.
func (b *Bitmap) Complete() bool { return b.filled == b.sectors }

func (b *Bitmap) check(lba, count int64) {
	if lba < 0 || count <= 0 || lba+count > b.sectors {
		panic(fmt.Sprintf("core: bitmap range [%d,+%d) outside %d sectors", lba, count, b.sectors))
	}
}

// Filled reports whether sector lba is filled.
func (b *Bitmap) Filled(lba int64) bool {
	b.check(lba, 1)
	return b.words[lba/64]&(1<<uint(lba%64)) != 0
}

// rangeMask returns the mask covering bits [off, off+n) of a word, n ≤ 64.
func rangeMask(off, n int64) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (uint64(1)<<uint(n) - 1) << uint(off)
}

// AllFilled reports whether every sector in [lba, lba+count) is filled.
func (b *Bitmap) AllFilled(lba, count int64) bool {
	b.check(lba, count)
	for i, end := lba, lba+count; i < end; {
		off := i % 64
		n := 64 - off
		if rem := end - i; n > rem {
			n = rem
		}
		m := rangeMask(off, n)
		if b.words[i/64]&m != m {
			return false
		}
		i += n
	}
	return true
}

// MarkFilled sets [lba, lba+count) filled, returning how many sectors
// changed state.
func (b *Bitmap) MarkFilled(lba, count int64) int64 {
	b.check(lba, count)
	var changed int64
	for i, end := lba, lba+count; i < end; {
		off := i % 64
		n := 64 - off
		if rem := end - i; n > rem {
			n = rem
		}
		w := i / 64
		if added := rangeMask(off, n) &^ b.words[w]; added != 0 {
			b.words[w] |= added
			changed += int64(bits.OnesCount64(added))
			if b.words[w] == ^uint64(0) {
				b.summary[w/64] |= 1 << uint(w%64)
			}
		}
		i += n
	}
	b.filled += changed
	return changed
}

// Run is a contiguous sector range.
type Run struct {
	LBA   int64
	Count int64
}

// End reports the first sector past the run.
func (r Run) End() int64 { return r.LBA + r.Count }

// UnfilledRuns returns the maximal unfilled sub-ranges of [lba, lba+count)
// in ascending order.
func (b *Bitmap) UnfilledRuns(lba, count int64) []Run {
	b.check(lba, count)
	var runs []Run
	var cur *Run
	for i := lba; i < lba+count; i++ {
		if b.words[i/64]&(1<<uint(i%64)) == 0 {
			if cur != nil && cur.End() == i {
				cur.Count++
				continue
			}
			runs = append(runs, Run{LBA: i, Count: 1})
			cur = &runs[len(runs)-1]
		}
	}
	return runs
}

// NextUnfilled finds the first unfilled sector at or after lba, wrapping
// to the start; it returns the run beginning there, capped at maxCount.
// An out-of-range lba (negative, or past the last sector) is normalized
// onto [0, sectors) by modular wrap — deterministic, and visible to the
// caller through the returned Run's LBA rather than a silent restart from
// sector 0. ok is false when the bitmap is complete.
func (b *Bitmap) NextUnfilled(lba, maxCount int64) (Run, bool) {
	if b.Complete() {
		return Run{}, false
	}
	if lba >= b.sectors || lba < 0 {
		lba = (lba%b.sectors + b.sectors) % b.sectors
	}
	if r, ok := b.scanUnfilled(lba, b.sectors, maxCount); ok {
		return r, true
	}
	return b.scanUnfilled(0, lba, maxCount)
}

// scanUnfilled returns the first unfilled run in [from, to), capped at
// maxCount sectors. Filled stretches are skipped hierarchically: first to
// the end of the current word, then whole summary words at a time.
func (b *Bitmap) scanUnfilled(from, to, maxCount int64) (Run, bool) {
	i := from
	for i < to {
		w := i / 64
		// Unfilled sectors of the current word at or above i, as set bits.
		open := ^b.words[w] &^ (uint64(1)<<uint(i%64) - 1)
		if open == 0 {
			// The rest of this word is filled: hop via the summary to the
			// next word with a clear bit. Summary bits for words past the
			// end of the bitmap are zero ("not full"), so the hop can land
			// past the last word; the outer i < to check catches that.
			w++
			s := w / 64
			notFull := ^b.summary[s] &^ (uint64(1)<<uint(w%64) - 1)
			for notFull == 0 {
				s++
				if s >= int64(len(b.summary)) {
					return Run{}, false // everything up to the last word is full
				}
				notFull = ^b.summary[s]
			}
			i = (s*64 + int64(bits.TrailingZeros64(notFull))) * 64
			continue
		}
		i = w*64 + int64(bits.TrailingZeros64(open))
		if i >= to {
			return Run{}, false
		}
		// Found the run start; extend to the first filled sector, the scan
		// end, or the cap, a word at a time.
		run := Run{LBA: i}
		for i < to && run.Count < maxCount {
			rest := b.words[i/64] >> uint(i%64)
			zeros := 64 - i%64 // unfilled sectors at/after i in this word
			if rest != 0 {
				zeros = int64(bits.TrailingZeros64(rest))
			}
			if zeros == 0 {
				break
			}
			take := zeros
			if rem := to - i; take > rem {
				take = rem
			}
			if rem := maxCount - run.Count; take > rem {
				take = rem
			}
			run.Count += take
			i += take
			if take == zeros && rest != 0 {
				break // the run ended at a filled sector
			}
		}
		return run, true
	}
	return Run{}, false
}

// Cursor is a per-caller scan position for sweeping a bitmap with repeated
// NextUnfilled calls: each scan resumes where the previous run ended, so
// independent sweepers (the background copier, a prefetcher) do not perturb
// each other's progress.
type Cursor struct {
	pos int64
}

// Pos reports the cursor's current scan position.
func (c *Cursor) Pos() int64 { return c.pos }

// Reset moves the cursor back to sector 0.
func (c *Cursor) Reset() { c.pos = 0 }

// NextUnfilledFrom finds the next unfilled run at or after the cursor
// (wrapping like NextUnfilled) and advances the cursor past it.
func (b *Bitmap) NextUnfilledFrom(c *Cursor, maxCount int64) (Run, bool) {
	r, ok := b.NextUnfilled(c.pos, maxCount)
	if ok {
		c.pos = r.End()
	}
	return r, ok
}

// Marshal serializes the bitmap for on-disk persistence: the VMM saves it
// to an unused disk region across shutdowns (§3.3).
func (b *Bitmap) Marshal() []byte {
	out := make([]byte, 16+len(b.words)*8)
	putU64(out[0:], uint64(b.sectors))
	putU64(out[8:], uint64(b.filled))
	for i, w := range b.words {
		putU64(out[16+i*8:], w)
	}
	return out
}

// UnmarshalBitmap restores a bitmap saved by Marshal.
func UnmarshalBitmap(data []byte) (*Bitmap, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("core: bitmap blob too short: %d bytes", len(data))
	}
	sectors := int64(getU64(data[0:]))
	filled := int64(getU64(data[8:]))
	if sectors <= 0 {
		return nil, fmt.Errorf("core: bitmap blob has invalid sector count %d", sectors)
	}
	b := NewBitmap(sectors)
	if want := 16 + len(b.words)*8; len(data) < want {
		return nil, fmt.Errorf("core: bitmap blob truncated: %d of %d bytes", len(data), want)
	}
	var recount int64
	for i := range b.words {
		w := getU64(data[16+i*8:])
		b.words[i] = w
		recount += int64(bits.OnesCount64(w))
		if w == ^uint64(0) {
			b.summary[i/64] |= 1 << uint(i%64)
		}
	}
	if recount != filled {
		return nil, fmt.Errorf("core: bitmap blob corrupt: header says %d filled, bits say %d", filled, recount)
	}
	b.filled = filled
	return b, nil
}

// PersistSize reports the marshaled size in bytes.
func (b *Bitmap) PersistSize() int64 { return int64(16 + len(b.words)*8) }

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
