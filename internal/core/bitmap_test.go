package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(1000)
	if b.Filled(0) || b.FilledCount() != 0 || b.Complete() {
		t.Fatal("fresh bitmap not empty")
	}
	if changed := b.MarkFilled(10, 5); changed != 5 {
		t.Fatalf("changed = %d, want 5", changed)
	}
	if !b.AllFilled(10, 5) || b.Filled(9) || b.Filled(15) {
		t.Fatal("mark boundaries wrong")
	}
	if changed := b.MarkFilled(10, 5); changed != 0 {
		t.Fatal("re-mark reported changes")
	}
}

func TestBitmapComplete(t *testing.T) {
	b := NewBitmap(130) // crosses word boundaries
	b.MarkFilled(0, 130)
	if !b.Complete() || b.FilledCount() != 130 {
		t.Fatal("bitmap not complete after full mark")
	}
}

func TestUnfilledRuns(t *testing.T) {
	b := NewBitmap(100)
	b.MarkFilled(10, 10)
	b.MarkFilled(50, 25)
	runs := b.UnfilledRuns(0, 100)
	want := []Run{{0, 10}, {20, 30}, {75, 25}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
}

func TestUnfilledRunsSubrange(t *testing.T) {
	b := NewBitmap(100)
	b.MarkFilled(30, 10)
	runs := b.UnfilledRuns(25, 20) // [25,45): unfilled 25-30 and 40-45
	if len(runs) != 2 || runs[0] != (Run{25, 5}) || runs[1] != (Run{40, 5}) {
		t.Fatalf("runs = %v", runs)
	}
}

func TestNextUnfilled(t *testing.T) {
	b := NewBitmap(200)
	b.MarkFilled(0, 100)
	r, ok := b.NextUnfilled(0, 64)
	if !ok || r.LBA != 100 || r.Count != 64 {
		t.Fatalf("NextUnfilled = %v, %v", r, ok)
	}
	// Capped by maxCount.
	r, _ = b.NextUnfilled(150, 10)
	if r.LBA != 150 || r.Count != 10 {
		t.Fatalf("NextUnfilled(150) = %v", r)
	}
}

func TestNextUnfilledWraps(t *testing.T) {
	b := NewBitmap(100)
	b.MarkFilled(50, 50)
	r, ok := b.NextUnfilled(80, 64)
	if !ok || r.LBA != 0 {
		t.Fatalf("NextUnfilled did not wrap: %v, %v", r, ok)
	}
}

func TestNextUnfilledComplete(t *testing.T) {
	b := NewBitmap(64)
	b.MarkFilled(0, 64)
	if _, ok := b.NextUnfilled(0, 8); ok {
		t.Fatal("NextUnfilled on complete bitmap returned a run")
	}
}

func TestNextUnfilledLastSector(t *testing.T) {
	// Only the very last sector is unfilled, in a bitmap whose tail word is
	// partial; scans from anywhere must land on it.
	b := NewBitmap(1000)
	b.MarkFilled(0, 999)
	for _, from := range []int64{0, 63, 64, 512, 998, 999} {
		r, ok := b.NextUnfilled(from, 8)
		if !ok || r != (Run{LBA: 999, Count: 1}) {
			t.Fatalf("NextUnfilled(%d) = %v, %v; want {999 1}", from, r, ok)
		}
	}
}

func TestNextUnfilledFullWordBoundary(t *testing.T) {
	// The unfilled run starts exactly at a word boundary after a stretch of
	// completely filled words (the summary fast path), and another ends
	// exactly at a word boundary.
	b := NewBitmap(64 * 10)
	b.MarkFilled(0, 64*4)     // words 0-3 full
	b.MarkFilled(64*5, 64)    // word 5 full
	r, ok := b.NextUnfilled(0, 1000)
	if !ok || r != (Run{LBA: 64 * 4, Count: 64}) {
		t.Fatalf("NextUnfilled(0) = %v, %v; want {256 64}", r, ok)
	}
	r, ok = b.NextUnfilled(64*5, 1000)
	if !ok || r != (Run{LBA: 64 * 6, Count: 64 * 4}) {
		t.Fatalf("NextUnfilled(320) = %v, %v; want {384 256}", r, ok)
	}
}

func TestNextUnfilledSingleBit(t *testing.T) {
	// A single unfilled bit in the middle of an otherwise full bitmap.
	b := NewBitmap(64 * 100)
	b.MarkFilled(0, b.Sectors())
	// Poke one bit clear through a fresh bitmap with the same shape.
	b = NewBitmap(64 * 100)
	b.MarkFilled(0, 3000)
	b.MarkFilled(3001, b.Sectors()-3001)
	for _, from := range []int64{0, 2999, 3000, 3001, 6000} {
		r, ok := b.NextUnfilled(from, 64)
		if !ok || r != (Run{LBA: 3000, Count: 1}) {
			t.Fatalf("NextUnfilled(%d) = %v, %v; want {3000 1}", from, r, ok)
		}
	}
}

func TestNextUnfilledOutOfRangeWrap(t *testing.T) {
	// Out-of-range positions normalize by modular wrap — deterministically,
	// and visibly via the returned run — instead of silently restarting at 0.
	b := NewBitmap(100)
	b.MarkFilled(0, 50)
	cases := []struct {
		lba  int64
		want Run
	}{
		{100, Run{50, 10}},  // == sectors → 0 → first unfilled is 50
		{175, Run{75, 10}},  // wraps to 75
		{-25, Run{75, 10}},  // negative wraps from the end
		{-100, Run{50, 10}}, // -100 → 0
	}
	for _, c := range cases {
		r, ok := b.NextUnfilled(c.lba, 10)
		if !ok || r != c.want {
			t.Fatalf("NextUnfilled(%d) = %v, %v; want %v", c.lba, r, ok, c.want)
		}
	}
}

func TestBitmapCursor(t *testing.T) {
	b := NewBitmap(200)
	b.MarkFilled(0, 100)
	var c Cursor
	r, ok := b.NextUnfilledFrom(&c, 30)
	if !ok || r != (Run{100, 30}) || c.Pos() != 130 {
		t.Fatalf("first = %v, %v, pos %d", r, ok, c.Pos())
	}
	r, ok = b.NextUnfilledFrom(&c, 100)
	if !ok || r != (Run{130, 70}) || c.Pos() != 200 {
		t.Fatalf("second = %v, %v, pos %d", r, ok, c.Pos())
	}
	// Cursor at the end wraps like NextUnfilled does.
	b2 := NewBitmap(200)
	b2.MarkFilled(100, 100)
	c = Cursor{pos: 200}
	r, ok = b2.NextUnfilledFrom(&c, 64)
	if !ok || r != (Run{0, 64}) {
		t.Fatalf("wrapped = %v, %v", r, ok)
	}
	c.Reset()
	if c.Pos() != 0 {
		t.Fatal("Reset did not zero the cursor")
	}
}

// TestNextUnfilledMatchesReference checks that the hierarchical scan emits
// byte-identical runs to a straightforward per-bit reference scan.
func TestNextUnfilledMatchesReference(t *testing.T) {
	const n = 64*5 + 17 // partial tail word
	ref := func(words []bool, lba, maxCount int64) (Run, bool) {
		scan := func(from, to int64) (Run, bool) {
			for i := from; i < to; i++ {
				if !words[i] {
					r := Run{LBA: i}
					for i < to && r.Count < maxCount && !words[i] {
						r.Count++
						i++
					}
					return r, true
				}
			}
			return Run{}, false
		}
		if r, ok := scan(lba, n); ok {
			return r, true
		}
		return scan(0, lba)
	}
	f := func(ops []uint16, probes []uint16) bool {
		b := NewBitmap(n)
		bits := make([]bool, n)
		for _, op := range ops {
			lba := int64(op) % n
			count := int64(op)/n%70 + 1
			if lba+count > n {
				count = n - lba
			}
			b.MarkFilled(lba, count)
			for i := lba; i < lba+count; i++ {
				bits[i] = true
			}
		}
		if b.Complete() {
			return true
		}
		for _, pr := range probes {
			lba := int64(pr) % n
			maxCount := int64(pr)%100 + 1
			got, gok := b.NextUnfilled(lba, maxCount)
			want, wok := ref(bits, lba, maxCount)
			if gok != wok || got != want {
				t.Logf("NextUnfilled(%d,%d) = %v,%v; reference %v,%v", lba, maxCount, got, gok, want, wok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	b := NewBitmap(1000)
	b.MarkFilled(3, 100)
	b.MarkFilled(500, 77)
	got, err := UnmarshalBitmap(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.FilledCount() != b.FilledCount() || got.Sectors() != b.Sectors() {
		t.Fatal("round trip counts differ")
	}
	if !bytes.Equal(got.Marshal(), b.Marshal()) {
		t.Fatal("round trip bytes differ")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	b := NewBitmap(100)
	b.MarkFilled(0, 10)
	blob := b.Marshal()
	blob[8] = 99 // lie about the filled count
	if _, err := UnmarshalBitmap(blob); err == nil {
		t.Fatal("corrupt blob accepted")
	}
	if _, err := UnmarshalBitmap(blob[:10]); err == nil {
		t.Fatal("short blob accepted")
	}
	if _, err := UnmarshalBitmap(make([]byte, 100)); err == nil {
		t.Fatal("zero sector count accepted")
	}
}

func TestBitmapRangeChecks(t *testing.T) {
	b := NewBitmap(10)
	for _, f := range []func(){
		func() { b.MarkFilled(5, 6) },
		func() { b.Filled(10) },
		func() { b.AllFilled(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range bitmap op did not panic")
				}
			}()
			f()
		}()
	}
}

// TestBitmapMatchesReferenceProperty compares against a plain bool slice.
func TestBitmapMatchesReferenceProperty(t *testing.T) {
	const n = 300
	f := func(ops []uint16) bool {
		b := NewBitmap(n)
		ref := make([]bool, n)
		for _, op := range ops {
			lba := int64(op) % n
			count := int64(op)/n%9 + 1
			if lba+count > n {
				count = n - lba
			}
			b.MarkFilled(lba, count)
			for i := lba; i < lba+count; i++ {
				ref[i] = true
			}
		}
		var refFilled int64
		for i, v := range ref {
			if v != b.Filled(int64(i)) {
				return false
			}
			if v {
				refFilled++
			}
		}
		if refFilled != b.FilledCount() {
			return false
		}
		// Round trip must preserve everything.
		rt, err := UnmarshalBitmap(b.Marshal())
		if err != nil {
			return false
		}
		for i := int64(0); i < n; i++ {
			if rt.Filled(i) != b.Filled(i) {
				return false
			}
		}
		// UnfilledRuns must exactly cover the unfilled sectors.
		covered := make([]bool, n)
		for _, r := range b.UnfilledRuns(0, n) {
			for i := r.LBA; i < r.End(); i++ {
				covered[i] = true
			}
		}
		for i, v := range ref {
			if covered[i] == v { // covered iff unfilled
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
