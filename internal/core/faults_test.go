package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw/disk"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// TestDeploymentSurvivesPacketLoss injects frame loss on both deployment
// links; AoE retransmission must still produce a byte-exact deployment.
func TestDeploymentSurvivesPacketLoss(t *testing.T) {
	tcfg, vcfg, bp := smallConfig(machine.StorageAHCI)
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second
	var res *testbed.BMcastResult
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		r, err := tb.DeployBMcast(p, n, vcfg, bp)
		if err != nil {
			t.Error(err)
			return
		}
		res = r
		tb.WaitBareMetal(p, n, res)
	})
	// Set loss after the spawn but before events run: attach via the
	// kernel's first event.
	tb.K.After(0, func() { setNodeLoss(tb, n, 0.03) })
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if res == nil || res.BareMetal == 0 {
		t.Fatal("deployment did not complete under loss")
	}
	if n.VMM.Initiator().Retransmits.Value() == 0 {
		t.Fatal("no retransmissions despite injected loss")
	}
	if _, err := tb.VerifyDeployment(n); err != nil {
		t.Fatal(err)
	}
	// Spot-check bytes.
	want := make([]byte, 64*disk.SectorSize)
	tb.Image.ReadAt(4096, want)
	got := make([]byte, 64*disk.SectorSize)
	n.M.Disk.Store().ReadAt(4096, got)
	if string(got) != string(want) {
		t.Fatal("content corrupted under loss")
	}
}

// setNodeLoss sets the loss rate on the node's own links plus the server
// link, so every deployment flow is hit in both directions.
func setNodeLoss(tb *testbed.Testbed, n *testbed.Node, rate float64) {
	for _, l := range n.Links() {
		l.SetLossRate(rate)
	}
	tb.ServerLink.SetLossRate(rate)
}

// TestDeploymentWithVirtualIRQAblation checks the rejected design
// alternative still deploys correctly (it is only costlier/less portable).
func TestDeploymentWithVirtualIRQAblation(t *testing.T) {
	for _, storage := range []machine.StorageKind{machine.StorageIDE, machine.StorageAHCI} {
		t.Run(storage.String(), func(t *testing.T) {
			tcfg, vcfg, bp := smallConfig(storage)
			vcfg.VirtualIRQ = true
			tb := testbed.New(tcfg)
			n := tb.AddNode(tcfg)
			n.M.Firmware.InitTime = sim.Second
			var res *testbed.BMcastResult
			tb.K.Spawn("deploy", func(p *sim.Proc) {
				r, err := tb.DeployBMcast(p, n, vcfg, bp)
				if err != nil {
					t.Error(err)
					return
				}
				res = r
				tb.WaitBareMetal(p, n, res)
			})
			tb.K.RunUntil(sim.Time(sim.Hour))
			if res == nil || res.BareMetal == 0 {
				t.Fatal("virtual-IRQ deployment did not complete")
			}
			if n.VMM.Mediator().Stats().DummyRestarts.Value() != 0 {
				t.Fatal("virtual-IRQ mode still performed dummy restarts")
			}
			if _, err := tb.VerifyDeployment(n); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentDeployments starts several instances against one server:
// they contend for server bandwidth but must all complete and verify.
func TestConcurrentDeployments(t *testing.T) {
	tcfg, vcfg, bp := smallConfig(machine.StorageAHCI)
	tcfg.ImageBytes = 32 << 20
	bp.TotalBytes = 4 << 20
	bp.SpanSectors = (16 << 20) / disk.SectorSize
	tb := testbed.New(tcfg)
	const instances = 4
	var nodes []*testbed.Node
	doneCount := 0
	for i := 0; i < instances; i++ {
		n := tb.AddNode(tcfg)
		n.M.Firmware.InitTime = sim.Second
		nodes = append(nodes, n)
		tb.K.Spawn("deploy", func(p *sim.Proc) {
			res, err := tb.DeployBMcast(p, n, vcfg, bp)
			if err != nil {
				t.Error(err)
				return
			}
			tb.WaitBareMetal(p, n, res)
			doneCount++
		})
	}
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if doneCount != instances {
		t.Fatalf("only %d of %d concurrent deployments completed", doneCount, instances)
	}
	for i, n := range nodes {
		if _, err := tb.VerifyDeployment(n); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
}

// TestLargeDeploymentProperty runs randomized guest activity during a
// deployment and asserts the end-state invariant: every image sector's
// content equals either the image or the most recent guest write.
func TestLargeDeploymentProperty(t *testing.T) {
	tcfg, vcfg, bp := smallConfig(machine.StorageAHCI)
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second
	rng := tb.K.Rand()
	type writeRec struct{ lba, count int64 }
	var writes []writeRec
	gsrc := disk.Synth{Seed: 0xAB, Label: "guest-random"}
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		res, err := tb.DeployBMcast(p, n, vcfg, bp)
		if err != nil {
			t.Error(err)
			return
		}
		image := tb.Image.Sectors
		for i := 0; i < 60; i++ {
			lba := rng.Int63n(image - 256)
			count := rng.Int63n(255) + 1
			if rng.Intn(2) == 0 {
				if err := n.OS.WriteSectors(p, disk.Payload{LBA: lba, Count: count, Source: gsrc}); err != nil {
					t.Error(err)
					return
				}
				writes = append(writes, writeRec{lba, count})
			} else {
				if _, err := n.OS.ReadSectors(p, lba, count, true); err != nil {
					t.Error(err)
					return
				}
			}
			p.Sleep(sim.Duration(rng.Int63n(int64(40 * sim.Millisecond))))
		}
		tb.WaitBareMetal(p, n, res)
	})
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if n.VMM == nil || n.VMM.Phase() != core.PhaseBareMetal {
		t.Fatal("deployment did not finish")
	}
	// Build the expected content: image overlaid with guest writes in
	// order (later writes win), plus boot writes which we skip checking.
	lastWriter := make(map[int64]bool) // sector -> guest wrote it
	for _, w := range writes {
		for s := w.lba; s < w.lba+w.count; s++ {
			lastWriter[s] = true
		}
	}
	store := n.M.Disk.Store()
	for probe := 0; probe < 300; probe++ {
		s := rng.Int63n(tb.Image.Sectors)
		src := store.SourceAt(s)
		name := src.Name()
		switch {
		case lastWriter[s]:
			if name != "guest-random" {
				// A guest-written sector may have been rewritten by a
				// later guest write only; never by the copy.
				t.Fatalf("sector %d: guest write clobbered by %q", s, name)
			}
		case name == "boot-writes" || name == "guest-random":
			// Boot writes land outside image verification interest.
		default:
			if name != tb.Image.Name() {
				t.Fatalf("sector %d: unexpected source %q", s, name)
			}
		}
	}
}
