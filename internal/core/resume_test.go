package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// TestShutdownResumeDeployment reproduces §3.3's shutdown story end to
// end: stop a deployment partway, power off, reboot a fresh VMM, resume
// from the on-disk bitmap, and finish. The resumed copy must not refetch
// already-deployed blocks, and the final disk must verify.
func TestShutdownResumeDeployment(t *testing.T) {
	tcfg, vcfg, bp := smallConfig(machine.StorageAHCI)
	tcfg.ImageBytes = 256 << 20
	vcfg.WriteInterval = 50 * sim.Millisecond // slow copy: plenty of time to stop midway
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second

	var filledAtShutdown int64
	var fetchedFirstRun int64
	done := false
	tb.K.Spawn("lifecycle", func(p *sim.Proc) {
		// First boot: deploy partway, then shut down.
		if _, err := tb.DeployBMcast(p, n, vcfg, bp); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(10 * sim.Second) // let the copy make progress
		filledAtShutdown = n.VMM.Bitmap().FilledCount()
		if filledAtShutdown == 0 || n.VMM.Bitmap().Complete() {
			t.Errorf("bad shutdown point: %d filled", filledAtShutdown)
			return
		}
		if err := n.VMM.Shutdown(p); err != nil {
			t.Error(err)
			return
		}
		fetchedFirstRun = n.VMM.FetchedBytes.Value()
		if n.M.IO.Tapped(n.M.StorageRegions[0]) {
			t.Error("storage still tapped after shutdown")
			return
		}

		// "Reboot": a fresh VMM instance on the same machine resumes.
		p.Sleep(30 * sim.Second) // machine off
		vmm2, err := core.Boot(p, n.M, vcfg, 1, testbed.ServerMAC, 0, 0, tb.Image.Sectors)
		if err != nil {
			t.Error(err)
			return
		}
		n.VMM = vmm2
		if err := vmm2.Resume(p); err != nil {
			t.Error(err)
			return
		}
		if got := vmm2.Bitmap().FilledCount(); got != filledAtShutdown {
			t.Errorf("resumed bitmap has %d filled, want %d", got, filledAtShutdown)
			return
		}
		if err := n.OS.Boot(p, bp); err != nil {
			t.Error(err)
			return
		}
		vmm2.WaitPhase(p, core.PhaseBareMetal)
		done = true
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if !done {
		t.Fatal("resumed deployment did not finish")
	}
	if _, err := tb.VerifyDeployment(n); err != nil {
		t.Fatal(err)
	}
	// The resumed run must have skipped already-deployed data: its fetch
	// volume plus the first run's must stay near one image's worth
	// (boot-trace redirects of already-filled blocks don't refetch).
	total := fetchedFirstRun + n.VMM.FetchedBytes.Value()
	imageBytes := tb.Image.Sectors * 512
	if total > imageBytes+imageBytes/4 {
		t.Fatalf("fetched %d bytes across both runs for a %d-byte image: resume refetched", total, imageBytes)
	}
}

// TestShutdownOutsideDeploymentFails guards the API contract.
func TestShutdownOutsideDeploymentFails(t *testing.T) {
	tb, n, _ := runDeployment(t, machine.StorageAHCI) // reaches bare metal
	tb.K.Spawn("x", func(p *sim.Proc) {
		if err := n.VMM.Shutdown(p); err == nil {
			t.Error("shutdown accepted in bare-metal phase")
		}
	})
	tb.K.Run()
}
