package core

import (
	"fmt"

	"repro/internal/aoe"
	"repro/internal/cpuvirt"
	"repro/internal/ethernet"
	"repro/internal/hw/disk"
	"repro/internal/hw/mem"
	"repro/internal/machine"
	"repro/internal/mediator"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Phase is the deployment lifecycle state (paper §3.1, Figure 1).
type Phase int

// The four phases of the BMcast deployment process, plus the terminal
// failure state a hung deployment is forced into by the watchdog.
// PhaseFailed sorts after PhaseBareMetal so WaitPhase(PhaseBareMetal)
// wakes on failure too instead of blocking forever.
const (
	PhaseInitialization Phase = iota
	PhaseDeployment
	PhaseDevirtualization
	PhaseBareMetal
	PhaseFailed
)

func (p Phase) String() string {
	switch p {
	case PhaseInitialization:
		return "initialization"
	case PhaseDeployment:
		return "deployment"
	case PhaseDevirtualization:
		return "de-virtualization"
	case PhaseFailed:
		return "failed"
	default:
		return "bare-metal"
	}
}

// SpanName is the phase's span name in the deployment trace (category
// "phase"). These are part of the trace format and stay CamelCase even
// though String is free-form.
func (p Phase) SpanName() string {
	switch p {
	case PhaseInitialization:
		return "Initialization"
	case PhaseDeployment:
		return "Deployment"
	case PhaseDevirtualization:
		return "Devirtualization"
	case PhaseFailed:
		return "Failed"
	default:
		return "BareMetal"
	}
}

// Config holds the VMM's tunables.
type Config struct {
	// VMMBootTime is the network boot + initialization time of the VMM
	// itself; the paper measures 5 seconds (parallelized init, only the
	// dedicated NIC brought up).
	VMMBootTime sim.Duration
	// VMMMemory is the reserved memory, hidden from the guest (128 MB in
	// the prototype).
	VMMMemory int64
	// CopyBlockSectors is the background-copy unit (1 MB).
	CopyBlockSectors int64
	// FIFODepth bounds the retriever→writer queue.
	FIFODepth int

	// Moderation (§3.3): when the guest's disk I/O frequency exceeds
	// GuestIOFreqThreshold (ops/sec), the writer waits SuspendInterval;
	// otherwise it writes one block every WriteInterval.
	GuestIOFreqThreshold float64
	WriteInterval        sim.Duration
	SuspendInterval      sim.Duration

	// Polling bounds: the device poll interval is derived from the
	// network RTT estimate, clamped to [MinPoll, MaxPoll] (§4.1).
	MinPoll, MaxPoll sim.Duration

	// CopyCPUPerBlock is the VMM CPU time consumed per copied block
	// (packet handling, checksums, queue management) — the "5% of total
	// CPU time for handling threads" the paper reports.
	CopyCPUPerBlock sim.Duration

	// DeployMemPenalty is the nested-paging/TLB-pollution slowdown on
	// memory-bound guest work while the VMM is present (§5.2: TLB misses
	// up 5×, miss latency doubled ⇒ ≈6% on memory-heavy benchmarks).
	DeployMemPenalty float64
	// CoreTax is the VMM core's fixed CPU share while present (≈1%).
	CoreTax float64
	// DeployJitter is the scheduling jitter the deploying VMM adds
	// (small: polling is preemption-timer-driven).
	DeployJitter sim.Duration
	// VirtualIRQ switches the mediators to the rejected
	// interrupt-injection design, for the ablation benchmark.
	VirtualIRQ bool

	// StallTimeout arms the deployment watchdog: if streaming progress
	// (fetched bytes, copied bytes, or guest I/O) stays flat for this long
	// during the deployment phase, the VMM transitions to PhaseFailed
	// instead of wedging the retriever forever. Zero disables the stall
	// detector.
	StallTimeout sim.Duration
	// DeployDeadline bounds the whole deployment phase; exceeding it fails
	// the deployment even if slow progress is still trickling in. Zero
	// disables the deadline.
	DeployDeadline sim.Duration
}

// DefaultConfig returns the prototype's calibrated configuration.
func DefaultConfig() Config {
	return Config{
		VMMBootTime:          5 * sim.Second,
		VMMMemory:            128 << 20,
		CopyBlockSectors:     2048, // 1 MB
		FIFODepth:            8,
		GuestIOFreqThreshold: 100,
		WriteInterval:        21 * sim.Millisecond,
		SuspendInterval:      200 * sim.Millisecond,
		MinPoll:              50 * sim.Microsecond,
		MaxPoll:              600 * sim.Microsecond,
		CopyCPUPerBlock:      8 * sim.Millisecond,
		DeployMemPenalty:     0.06,
		CoreTax:              0.01,
		DeployJitter:         300 * sim.Nanosecond,
		StallTimeout:         2 * sim.Minute,
	}
}

// VMM is a running BMcast instance on one machine.
type VMM struct {
	Cfg Config
	M   *machine.Machine

	phase        Phase
	PhaseChanged *sim.Signal

	med    mediator.Mediator
	init   *aoe.Initiator
	bitmap *Bitmap
	region mem.Region

	imageSectors int64
	saveLBA      int64 // on-disk bitmap save region (protected)
	saveSectors  int64

	// Guest I/O frequency estimation for moderation: completed windows
	// feed GuestIORate.
	ioWindowStart sim.Time
	ioWindowCount int64
	ioRate        float64

	lastGuestLBA int64
	guestTouched bool

	fifo *sim.Queue[disk.Payload]
	// inflight tracks fetched-but-not-yet-written blocks so the
	// retriever's locality rescans never fetch a block twice.
	inflight map[int64]int64

	stopped bool
	err     error // terminal failure cause once PhaseFailed is reached

	// Timings and counters.
	BootedAt     sim.Time
	DeployedAt   sim.Time
	DevirtedAt   sim.Time
	FetchedBytes metrics.Counter
	CopiedBytes  metrics.Counter
	Suspends     metrics.Counter
	GuestIOs     metrics.Counter
	// BitmapHits/BitmapMisses classify AllFilled checks: a hit means the
	// guest's read needs no redirection. CopyConflicts counts background
	// writes cancelled by the insertion guard because a racing guest write
	// filled the run first (guest-write-wins, §3.3).
	BitmapHits    metrics.Counter
	BitmapMisses  metrics.Counter
	CopyConflicts metrics.Counter
	WatchdogFires metrics.Counter

	// phaseSpan is the open span of the current lifecycle phase (category
	// "phase" on the machine's trace recorder; nil recorder: nil spans).
	phaseSpan *trace.Span
}

// Boot network-boots the VMM on machine m and enters the deployment
// phase: reserve memory, enter VMX, attach the mediator, start the
// background copy. serverMAC/major/minor address the AoE target exporting
// the instance's image; vmmNIC is the dedicated NIC index.
func Boot(p *sim.Proc, m *machine.Machine, cfg Config, vmmNIC int, serverMAC ethernet.MAC, major uint16, minor uint8, imageSectors int64) (*VMM, error) {
	if vmmNIC >= len(m.NICs) {
		return nil, fmt.Errorf("core: machine has no NIC %d for the VMM", vmmNIC)
	}
	v := &VMM{
		Cfg:          cfg,
		M:            m,
		phase:        PhaseInitialization,
		PhaseChanged: m.K.NewSignal(m.Name + ".vmm.phase"),
		imageSectors: imageSectors,
		fifo:         sim.NewQueue[disk.Payload](m.K, m.Name+".vmm.fifo"),
		inflight:     make(map[int64]int64),
	}
	v.phaseSpan = m.Trace.Begin(m.Name, "phase", PhaseInitialization.SpanName())
	l := metrics.L("node", m.Name)
	m.Metrics.RegisterCounter("vmm.fetched_bytes", &v.FetchedBytes, l)
	m.Metrics.RegisterCounter("vmm.copied_bytes", &v.CopiedBytes, l)
	m.Metrics.RegisterCounter("vmm.suspends", &v.Suspends, l)
	m.Metrics.RegisterCounter("vmm.guest_ios", &v.GuestIOs, l)
	m.Metrics.RegisterCounter("vmm.bitmap_hits", &v.BitmapHits, l)
	m.Metrics.RegisterCounter("vmm.bitmap_misses", &v.BitmapMisses, l)
	m.Metrics.RegisterCounter("vmm.copy_conflicts", &v.CopyConflicts, l)
	m.Metrics.RegisterCounter("vmm.watchdog_fires", &v.WatchdogFires, l)
	m.World.Instrument(m.Metrics, m.Trace, m.Name)

	// Initialization phase: minimal VMM boot — only the dedicated NIC is
	// initialized; all other devices are left for the guest (§3.1).
	p.Sleep(cfg.VMMBootTime)
	v.region = m.Firmware.ReserveForVMM(cfg.VMMMemory)
	m.World.EnterVMX()
	m.World.Overheads.MemPenalty = cfg.DeployMemPenalty
	m.World.Overheads.CPUTaxStatic = cfg.CoreTax
	m.World.Overheads.SchedJitter = cfg.DeployJitter

	v.init = aoe.NewInitiator(m.K, m.NICs[vmmNIC], serverMAC, major, minor)
	if m.SharedPools {
		v.init.ShareFramePool()
	}
	v.init.Instrument(m.Metrics, m.Trace, m.Name)
	v.init.SetPolled(v.PollInterval) // the VMM's NIC drivers are polled (§4.3)
	v.bitmap = NewBitmap(imageSectors)

	// The bitmap save region lives in unused space past the image,
	// hidden from the guest (§3.3).
	v.saveLBA = imageSectors
	v.saveSectors = (v.bitmap.PersistSize() + disk.SectorSize - 1) / disk.SectorSize
	if v.saveLBA+v.saveSectors > m.Disk.Sectors {
		return nil, fmt.Errorf("core: no room for the bitmap save region")
	}

	switch m.Storage {
	case machine.StorageIDE:
		md := mediator.NewIDE(m, v, v.region)
		md.VirtualIRQ = cfg.VirtualIRQ
		v.med = md
	default:
		md := mediator.NewAHCI(m, v, v.region)
		md.VirtualIRQ = cfg.VirtualIRQ
		v.med = md
	}
	v.med.Attach()
	v.med.Stats().Register(m.Metrics, m.Name)
	v.BootedAt = p.Now()
	v.setPhase(PhaseDeployment)

	m.K.Spawn(m.Name+".vmm.retriever", v.retriever)
	m.K.Spawn(m.Name+".vmm.writer", v.writer)
	if cfg.StallTimeout > 0 || cfg.DeployDeadline > 0 {
		m.K.Spawn(m.Name+".vmm.watchdog", v.watchdog)
	}
	return v, nil
}

// Phase reports the current lifecycle phase.
func (v *VMM) Phase() Phase { return v.phase }

// Err reports the terminal failure cause once the VMM has reached
// PhaseFailed, and nil otherwise.
func (v *VMM) Err() error { return v.err }

// progressSignature condenses the streaming state the watchdog monitors:
// any fetch, background copy, or guest I/O counts as forward progress
// (guest I/O included so moderation suspends under an active guest don't
// read as a stall).
func (v *VMM) progressSignature() int64 {
	return v.FetchedBytes.Value() + v.CopiedBytes.Value() + v.GuestIOs.Value()
}

// watchdog guards the deployment phase against silent wedges: a dead AoE
// server with no secondary, a partitioned link, a retriever stuck in
// retry loops. On a stall (no progress for StallTimeout) or a blown
// DeployDeadline it forces the VMM into PhaseFailed with a wrapped error
// instead of letting the deployment hang forever.
func (v *VMM) watchdog(p *sim.Proc) {
	start := p.Now()
	tick := v.Cfg.StallTimeout / 4
	if tick <= 0 {
		tick = v.Cfg.DeployDeadline / 8
	}
	lastSig := v.progressSignature()
	lastProgress := p.Now()
	for {
		p.Sleep(tick)
		if v.phase != PhaseDeployment || v.stopped {
			return
		}
		if sig := v.progressSignature(); sig != lastSig {
			lastSig = sig
			lastProgress = p.Now()
		} else if v.Cfg.StallTimeout > 0 && p.Now().Sub(lastProgress) >= v.Cfg.StallTimeout {
			v.fail(fmt.Errorf("no streaming progress for %v", v.Cfg.StallTimeout))
			return
		}
		if v.Cfg.DeployDeadline > 0 && p.Now().Sub(start) >= v.Cfg.DeployDeadline {
			v.fail(fmt.Errorf("deployment deadline %v exceeded", v.Cfg.DeployDeadline))
			return
		}
	}
}

// fail transitions a deployment-phase VMM into the terminal PhaseFailed:
// the copy pipeline is shut down, the initiator closed so pending requests
// error out fast, and the cause preserved for the controller. The mediator
// stays attached — the machine needs a scrub/power-cycle anyway.
func (v *VMM) fail(cause error) {
	if v.phase != PhaseDeployment || v.stopped {
		return
	}
	v.err = fmt.Errorf("core: deployment failed: %w", cause)
	v.stopped = true
	v.WatchdogFires.Inc()
	v.M.Trace.Emit(v.M.Name, "vmm", "watchdog", trace.Str("cause", cause.Error()))
	if !v.fifo.Closed() {
		v.fifo.Close()
	}
	v.init.Close()
	v.setPhase(PhaseFailed)
}

func (v *VMM) setPhase(ph Phase) {
	v.phase = ph
	prev := v.phaseSpan
	prev.End()
	v.phaseSpan = v.M.Trace.Begin(v.M.Name, "phase", ph.SpanName())
	// Chain the phases with flow edges so the whole lifecycle reads as
	// one causal path in the exported trace.
	v.phaseSpan.LinkFlowFrom(prev)
	v.M.K.Tracef("%s: vmm phase -> %s", v.M.Name, ph)
	v.PhaseChanged.Broadcast()
}

// PhaseSpan returns the open trace span of the current lifecycle phase
// (nil when tracing is off).
func (v *VMM) PhaseSpan() *trace.Span { return v.phaseSpan }

// Mediator exposes the device mediator (for stats and tests).
func (v *VMM) Mediator() mediator.Mediator { return v.med }

// Bitmap exposes the block bitmap (for verification).
func (v *VMM) Bitmap() *Bitmap { return v.bitmap }

// Initiator exposes the AoE initiator (for stats).
func (v *VMM) Initiator() *aoe.Initiator { return v.init }

// WaitPhase blocks until the VMM reaches at least the given phase.
func (v *VMM) WaitPhase(p *sim.Proc, ph Phase) {
	p.WaitCond(v.PhaseChanged, func() bool { return v.phase >= ph })
}

// --- mediator.Backend implementation -----------------------------------

// clip restricts a range to the image-tracked area; sectors past the image
// are always local (the guest owns them from the start).
func (v *VMM) clip(lba, count int64) (int64, int64) {
	if lba >= v.imageSectors {
		return 0, 0
	}
	if lba+count > v.imageSectors {
		count = v.imageSectors - lba
	}
	return lba, count
}

// AllFilled implements mediator.Backend.
func (v *VMM) AllFilled(lba, count int64) bool {
	lba, count = v.clip(lba, count)
	if count == 0 || v.bitmap.AllFilled(lba, count) {
		v.BitmapHits.Inc()
		return true
	}
	v.BitmapMisses.Inc()
	return false
}

// UnfilledRuns implements mediator.Backend.
func (v *VMM) UnfilledRuns(lba, count int64) []mediator.Run {
	lba, count = v.clip(lba, count)
	if count == 0 {
		return nil
	}
	runs := v.bitmap.UnfilledRuns(lba, count)
	out := make([]mediator.Run, len(runs))
	for i, r := range runs {
		out[i] = mediator.Run{LBA: r.LBA, Count: r.Count}
	}
	return out
}

// Fetch implements mediator.Backend: retrieve blocks from the server over
// the extended AoE protocol.
func (v *VMM) Fetch(p *sim.Proc, lba, count int64) (disk.Payload, error) {
	pl, err := v.init.Read(p, lba, count)
	if err == nil {
		v.FetchedBytes.Add(count * disk.SectorSize)
	}
	return pl, err
}

// MarkFilled implements mediator.Backend.
func (v *VMM) MarkFilled(lba, count int64) {
	lba, count = v.clip(lba, count)
	if count > 0 {
		v.bitmap.MarkFilled(lba, count)
	}
}

// GuestWrote implements mediator.Backend: guest data fills blocks.
func (v *VMM) GuestWrote(lba, count int64) {
	v.noteGuestIO(lba + count)
	v.MarkFilled(lba, count)
}

// GuestRead implements mediator.Backend.
func (v *VMM) GuestRead(lba, count int64) {
	v.noteGuestIO(lba + count)
}

func (v *VMM) noteGuestIO(endLBA int64) {
	v.GuestIOs.Inc()
	v.lastGuestLBA = endLBA
	v.guestTouched = true
	const window = 100 * sim.Millisecond
	now := v.M.K.Now()
	for now.Sub(v.ioWindowStart) >= window {
		v.ioRate = float64(v.ioWindowCount) / window.Seconds()
		v.ioWindowCount = 0
		v.ioWindowStart = v.ioWindowStart.Add(window)
		if v.ioWindowStart.Add(window) < now {
			v.ioRate = 0
			v.ioWindowStart = now
		}
	}
	v.ioWindowCount++
}

// GuestIORate reports the guest I/O frequency (ops/sec) over the last
// completed measurement window.
func (v *VMM) GuestIORate() float64 {
	v.noteGuestIOWindowRoll()
	return v.ioRate
}

func (v *VMM) noteGuestIOWindowRoll() {
	const window = 100 * sim.Millisecond
	now := v.M.K.Now()
	for now.Sub(v.ioWindowStart) >= window {
		v.ioRate = float64(v.ioWindowCount) / window.Seconds()
		v.ioWindowCount = 0
		v.ioWindowStart = v.ioWindowStart.Add(window)
		if v.ioWindowStart.Add(window) < now {
			v.ioRate = 0
			v.ioWindowStart = now
		}
	}
}

// PollInterval implements mediator.Backend: derived from the smoothed
// network RTT, clamped (§4.1).
func (v *VMM) PollInterval() sim.Duration {
	d := v.init.RTT() / 2
	if d < v.Cfg.MinPoll {
		d = v.Cfg.MinPoll
	}
	if d > v.Cfg.MaxPoll {
		d = v.Cfg.MaxPoll
	}
	return d
}

// Protected implements mediator.Backend: the on-disk bitmap save area.
func (v *VMM) Protected(lba, count int64) bool {
	return lba < v.saveLBA+v.saveSectors && v.saveLBA < lba+count
}

// --- background copy ----------------------------------------------------

// retriever fetches unfilled blocks from the server and feeds the FIFO
// (§3.3: a retriever thread and a writer thread connected by a queue).
func (v *VMM) retriever(p *sim.Proc) {
	var cursor Cursor
	for v.phase == PhaseDeployment && !v.stopped {
		if v.fifo.Len() >= v.Cfg.FIFODepth {
			// Back off while the writer drains; never sleep zero (a
			// full-speed WriteInterval must not spin the clock).
			backoff := v.Cfg.WriteInterval
			if backoff < sim.Millisecond {
				backoff = sim.Millisecond
			}
			p.Sleep(backoff)
			continue
		}
		// Locality heuristic: follow the guest's last access to minimize
		// seeks between guest I/O and the background copy.
		if v.guestTouched {
			cursor = Cursor{pos: v.lastGuestLBA}
			v.guestTouched = false
		}
		run, ok := v.nextCopyRun(&cursor)
		if !ok {
			if len(v.inflight) > 0 {
				// Everything left is already in the FIFO; let the
				// writer drain.
				backoff := v.Cfg.WriteInterval
				if backoff < sim.Millisecond {
					backoff = sim.Millisecond
				}
				p.Sleep(backoff)
				continue
			}
			break // image complete
		}
		sp := v.M.Trace.BeginChild(v.phaseSpan, v.M.Name, "vmm", "bg-fetch",
			trace.Int("lba", run.LBA), trace.Int("count", run.Count))
		// Carry the span as the proc's cause so the AoE round trip it
		// triggers parents here, not on the guest's critical path.
		prev := trace.SwapCause(p, sp)
		pl, err := v.Fetch(p, run.LBA, run.Count)
		trace.SwapCause(p, prev)
		sp.End()
		if err != nil {
			v.M.K.Tracef("%s: background fetch failed at %d: %v", v.M.Name, run.LBA, err)
			p.Sleep(100 * sim.Millisecond) // back off and retry
			continue
		}
		if v.stopped || v.phase != PhaseDeployment {
			break // the watchdog closed the FIFO while we were fetching
		}
		v.M.World.RecordVMMWork(v.Cfg.CopyCPUPerBlock / 2)
		v.inflight[pl.LBA] = pl.Count
		v.fifo.Push(pl)
	}
	if !v.fifo.Closed() {
		v.fifo.Close()
	}
}

// nextCopyRun finds the next unfilled run not already fetched into the
// FIFO, scanning past in-flight blocks. The cursor advances past every run
// examined, so the next call resumes where this one left off.
func (v *VMM) nextCopyRun(cursor *Cursor) (Run, bool) {
	for tries := 0; tries < v.Cfg.FIFODepth+2; tries++ {
		run, ok := v.bitmap.NextUnfilledFrom(cursor, v.Cfg.CopyBlockSectors)
		if !ok {
			return Run{}, false
		}
		overlap := false
		for lba, count := range v.inflight {
			if run.LBA < lba+count && lba < run.End() {
				overlap = true
				break
			}
		}
		if !overlap {
			return run, true
		}
	}
	return Run{}, false
}

// writer drains the FIFO onto the local disk through the mediator's
// multiplexing path, moderated by the guest's I/O frequency.
func (v *VMM) writer(p *sim.Proc) {
	for {
		pl, ok := v.fifo.Pop(p)
		if !ok {
			break
		}
		// Moderation (§3.3): while the guest's disk I/O frequency
		// exceeds the threshold, keep waiting for the suspend interval.
		// Below the threshold, pace at the write interval, stretched in
		// proportion to how close the guest is to the threshold so that
		// moderate guest load still sees a gentle copy.
		for v.GuestIORate() > v.Cfg.GuestIOFreqThreshold {
			v.Suspends.Inc()
			p.Sleep(v.Cfg.SuspendInterval)
		}
		pace := float64(v.Cfg.WriteInterval) * (1 + v.GuestIORate()/v.Cfg.GuestIOFreqThreshold)
		p.Sleep(sim.Duration(pace))
		sp := v.M.Trace.BeginChild(v.phaseSpan, v.M.Name, "vmm", "bg-write",
			trace.Int("lba", pl.LBA), trace.Int("count", pl.Count))
		prev := trace.SwapCause(p, sp)
		v.writeBlock(p, pl)
		trace.SwapCause(p, prev)
		sp.End()
		delete(v.inflight, pl.LBA)
	}
	if v.bitmap.Complete() && v.phase == PhaseDeployment && !v.stopped {
		v.DeployedAt = p.Now()
		v.Devirtualize(p)
	}
}

// writeBlock writes the still-unfilled parts of a fetched block, re-
// checking the bitmap atomically (via the insertion guard) so a guest
// write racing with the copy always wins (§3.3).
func (v *VMM) writeBlock(p *sim.Proc, pl disk.Payload) {
	for {
		runs := v.bitmap.UnfilledRuns(pl.LBA, pl.Count)
		if len(runs) == 0 {
			return
		}
		progressed := false
		for _, run := range runs {
			part := disk.Payload{LBA: run.LBA, Count: run.Count, Source: pl.Source}
			guard := func() bool {
				// Atomic re-check after device acquisition: write only
				// if no sector of the run was filled meanwhile.
				return len(v.bitmap.UnfilledRuns(run.LBA, run.Count)) == 1 &&
					v.bitmap.UnfilledRuns(run.LBA, run.Count)[0] == run
			}
			if v.med.InsertWrite(p, part, guard) {
				v.bitmap.MarkFilled(run.LBA, run.Count)
				v.CopiedBytes.Add(run.Count * disk.SectorSize)
				v.M.World.RecordVMMWork(v.Cfg.CopyCPUPerBlock / 2)
				progressed = true
			} else {
				v.CopyConflicts.Inc() // a racing guest write won (§3.3)
			}
		}
		if !progressed {
			// Every run was invalidated by guest writes; recompute.
			continue
		}
		return
	}
}

// --- de-virtualization ---------------------------------------------------

// Devirtualize performs the seamless hand-off to bare metal (§3.4): wait
// for a consistent hardware state, remove the mediator taps, turn nested
// paging off CPU by CPU without IPIs, and terminate virtualization.
func (v *VMM) Devirtualize(p *sim.Proc) {
	v.setPhase(PhaseDevirtualization)
	for !v.med.Quiesced() {
		p.Sleep(v.PollInterval())
	}
	v.med.Detach()
	v.init.Close()
	v.M.World.Devirtualize(p)
	v.M.World.Overheads = cpuvirt.Overheads{} // zero overhead from here on
	v.DevirtedAt = p.Now()
	v.setPhase(PhaseBareMetal)
}

// Scrub tears a failed VMM off its machine so the controller can sanitize
// and re-lease it: wait for in-flight mediated commands to drain, remove
// the taps, and leave virtualization. Only meaningful in PhaseFailed.
func (v *VMM) Scrub(p *sim.Proc) {
	if v.phase != PhaseFailed {
		return
	}
	for !v.med.Quiesced() {
		p.Sleep(v.PollInterval())
	}
	v.med.Detach()
	v.M.World.Devirtualize(p)
	v.M.World.Overheads = cpuvirt.Overheads{}
}

// Shutdown stops a deployment in progress for a machine power-off: the
// copy threads drain, the bitmap is persisted to its protected on-disk
// region, and the VMM detaches (§3.3: "In case of shutdown and reboot,
// the VMM saves the bitmap on the local disk"). A later Boot with Resume
// picks the deployment up where it stopped.
func (v *VMM) Shutdown(p *sim.Proc) error {
	if v.phase != PhaseDeployment {
		return fmt.Errorf("core: shutdown in phase %v", v.phase)
	}
	v.stopped = true
	if !v.fifo.Closed() {
		v.fifo.Close()
	}
	if err := v.SaveBitmap(p); err != nil {
		return err
	}
	for !v.med.Quiesced() {
		p.Sleep(v.PollInterval())
	}
	v.med.Detach()
	v.init.Close()
	v.setPhase(PhaseInitialization) // instance is off; no phase applies
	return nil
}

// Resume restores a previously saved bitmap after a reboot, so the
// background copy skips everything already deployed. Call right after
// Boot on the rebooted machine.
func (v *VMM) Resume(p *sim.Proc) error {
	return v.LoadBitmap(p)
}

// --- bitmap persistence --------------------------------------------------

// SaveBitmap persists the bitmap into the protected on-disk region, for
// shutdown/reboot during the deployment phase (§3.3).
func (v *VMM) SaveBitmap(p *sim.Proc) error {
	blob := v.bitmap.Marshal()
	src := disk.NewBuffer(v.saveLBA, blob, "vmm-bitmap")
	pl := disk.Payload{LBA: v.saveLBA, Count: v.saveSectors, Source: src}
	if !v.med.InsertWrite(p, pl, nil) {
		return fmt.Errorf("core: bitmap save was refused")
	}
	return nil
}

// LoadBitmap restores the bitmap from the protected region, replacing the
// in-memory state. It fails cleanly if the region holds no valid bitmap.
func (v *VMM) LoadBitmap(p *sim.Proc) error {
	pl, ok := v.med.InsertRead(p, v.saveLBA, v.saveSectors)
	if !ok {
		return fmt.Errorf("core: bitmap load was refused")
	}
	b, err := UnmarshalBitmap(pl.Bytes())
	if err != nil {
		return err
	}
	if b.Sectors() != v.imageSectors {
		return fmt.Errorf("core: saved bitmap covers %d sectors, image has %d", b.Sectors(), v.imageSectors)
	}
	v.bitmap = b
	return nil
}

var _ mediator.Backend = (*VMM)(nil)
