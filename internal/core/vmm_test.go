package core_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// smallConfig builds a quick deployment scenario: 64 MB image, fast
// firmware, aggressive copy so tests finish in simulated minutes.
func smallConfig(storage machine.StorageKind) (testbed.Config, core.Config, guest.BootProfile) {
	tcfg := testbed.DefaultConfig()
	tcfg.ImageBytes = 64 << 20
	tcfg.Storage = storage
	tcfg.DiskSectors = 1 << 20 // 512 MB disk

	vcfg := core.DefaultConfig()
	vcfg.WriteInterval = 2 * sim.Millisecond
	vcfg.SuspendInterval = 20 * sim.Millisecond

	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 8 << 20
	bp.CPUTime = 3 * sim.Second
	bp.SpanSectors = (48 << 20) / disk.SectorSize
	return tcfg, vcfg, bp
}

func runDeployment(t *testing.T, storage machine.StorageKind) (*testbed.Testbed, *testbed.Node, *testbed.BMcastResult) {
	t.Helper()
	tcfg, vcfg, bp := smallConfig(storage)
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second // fast firmware for unit tests
	var res *testbed.BMcastResult
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		r, err := tb.DeployBMcast(p, n, vcfg, bp)
		if err != nil {
			t.Error(err)
			return
		}
		res = r
		tb.WaitBareMetal(p, n, res)
	})
	tb.K.RunUntil(sim.Time(30 * sim.Minute))
	if res == nil || res.BareMetal == 0 {
		t.Fatalf("deployment did not reach bare metal (res=%+v, phase=%v)", res, n.VMM.Phase())
	}
	return tb, n, res
}

func TestFullDeploymentAHCI(t *testing.T) {
	tb, n, res := runDeployment(t, machine.StorageAHCI)
	if !n.OS.Booted {
		t.Fatal("guest did not boot")
	}
	// With the test's tiny image the copy can finish before the guest
	// boot does — legitimate for BMcast; only the causal order matters.
	if !(res.VMMBooted < res.GuestBooted && res.VMMBooted < res.BareMetal && res.Deployed <= res.BareMetal) {
		t.Fatalf("phase ordering wrong: %+v", res)
	}
	if !n.VMM.Bitmap().Complete() {
		t.Fatal("bitmap incomplete at bare-metal phase")
	}
	if n.M.World.Virtualized() {
		t.Fatal("still virtualized after de-virtualization")
	}
	if n.M.IO.Tapped(n.M.StorageRegions[0]) {
		t.Fatal("storage still tapped after de-virtualization")
	}
	if _, err := tb.VerifyDeployment(n); err != nil {
		t.Fatal(err)
	}
}

func TestFullDeploymentIDE(t *testing.T) {
	tb, n, _ := runDeployment(t, machine.StorageIDE)
	if _, err := tb.VerifyDeployment(n); err != nil {
		t.Fatal(err)
	}
	if !n.VMM.Bitmap().Complete() {
		t.Fatal("bitmap incomplete")
	}
}

// TestDeployedContentByteExact spot-checks actual bytes: after
// deployment, random ranges of the local disk equal the server image
// except guest-written ranges.
func TestDeployedContentByteExact(t *testing.T) {
	tb, n, _ := runDeployment(t, machine.StorageAHCI)
	img := tb.Image
	for _, lba := range []int64{0, 12345, 77777, img.Sectors - 64} {
		want := make([]byte, 64*disk.SectorSize)
		img.ReadAt(lba, want)
		got := make([]byte, 64*disk.SectorSize)
		n.M.Disk.Store().ReadAt(lba, got)
		if !bytes.Equal(got, want) {
			src := n.M.Disk.Store().SourceAt(lba)
			// Guest boot writes are legitimate differences.
			if src.Name() == "boot-writes" {
				continue
			}
			t.Fatalf("content mismatch at lba %d (source %s)", lba, src.Name())
		}
	}
}

func TestGuestIOWorksAfterDevirt(t *testing.T) {
	tb, n, _ := runDeployment(t, machine.StorageAHCI)
	trapsBefore := n.M.IO.Traps
	done := false
	tb.K.Spawn("post", func(p *sim.Proc) {
		src := disk.Synth{Seed: 777, Label: "post-devirt"}
		if err := n.OS.WriteSectors(p, disk.Payload{LBA: 4096, Count: 64, Source: src}); err != nil {
			t.Error(err)
			return
		}
		if _, err := n.OS.ReadSectors(p, 4096, 64, true); err != nil {
			t.Error(err)
			return
		}
		done = true
	})
	tb.K.Run()
	if !done {
		t.Fatal("post-devirt I/O did not complete")
	}
	if n.M.IO.Traps != trapsBefore {
		t.Fatal("post-devirt I/O trapped — zero-overhead claim violated")
	}
}

func TestGuestWritesDuringDeploymentWin(t *testing.T) {
	// The paper's §3.3 consistency scenario: a guest write racing the
	// background copy must survive.
	tcfg, vcfg, bp := smallConfig(machine.StorageAHCI)
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second
	gsrc := disk.Synth{Seed: 0xFEED, Label: "guest-app"}
	writes := []int64{1000, 30000, 60000, 100000}
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		res, err := tb.DeployBMcast(p, n, vcfg, bp)
		if err != nil {
			t.Error(err)
			return
		}
		// While deployment runs, the guest writes to scattered blocks.
		for _, lba := range writes {
			if err := n.OS.WriteSectors(p, disk.Payload{LBA: lba, Count: 128, Source: gsrc}); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(50 * sim.Millisecond)
		}
		tb.WaitBareMetal(p, n, res)
	})
	tb.K.RunUntil(sim.Time(30 * sim.Minute))
	for _, lba := range writes {
		for _, probe := range []int64{lba, lba + 64, lba + 127} {
			if got := n.M.Disk.Store().SourceAt(probe); got != disk.SectorSource(gsrc) {
				t.Fatalf("guest write at %d clobbered by background copy (source %s)", probe, got.Name())
			}
		}
	}
}

func TestBitmapSaveLoad(t *testing.T) {
	tcfg, vcfg, bp := smallConfig(machine.StorageAHCI)
	vcfg.WriteInterval = 50 * sim.Millisecond // slow copy so we stop mid-deploy
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		if _, err := tb.DeployBMcast(p, n, vcfg, bp); err != nil {
			t.Error(err)
			return
		}
		// Mid-deployment: persist, corrupt memory state, restore.
		before := n.VMM.Bitmap().FilledCount()
		if before == 0 || n.VMM.Bitmap().Complete() {
			t.Errorf("unexpected bitmap state for save test: %d filled", before)
			return
		}
		if err := n.VMM.SaveBitmap(p); err != nil {
			t.Error(err)
			return
		}
		if err := n.VMM.LoadBitmap(p); err != nil {
			t.Error(err)
			return
		}
		if got := n.VMM.Bitmap().FilledCount(); got != before {
			t.Errorf("restored bitmap has %d filled, want %d", got, before)
		}
	})
	tb.K.RunUntil(sim.Time(10 * sim.Minute))
}

func TestModerationSuspendsUnderGuestLoad(t *testing.T) {
	tcfg, vcfg, bp := smallConfig(machine.StorageAHCI)
	vcfg.GuestIOFreqThreshold = 10
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		if _, err := tb.DeployBMcast(p, n, vcfg, bp); err != nil {
			t.Error(err)
			return
		}
		// Hammer the disk: moderation must suspend the copy.
		for i := 0; i < 400; i++ {
			if _, err := n.OS.ReadSectors(p, int64(i%100)*64, 8, true); err != nil {
				t.Error(err)
				return
			}
		}
	})
	tb.K.RunUntil(sim.Time(5 * sim.Minute))
	if n.VMM.Suspends.Value() == 0 {
		t.Fatal("background copy never suspended under guest load")
	}
}

func TestPhaseString(t *testing.T) {
	want := map[core.Phase]string{
		core.PhaseInitialization:   "initialization",
		core.PhaseDeployment:       "deployment",
		core.PhaseDevirtualization: "de-virtualization",
		core.PhaseBareMetal:        "bare-metal",
	}
	for ph, s := range want {
		if ph.String() != s {
			t.Fatalf("Phase(%d).String() = %q", ph, ph.String())
		}
	}
}
