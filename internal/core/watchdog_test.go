package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// TestFailoverToSecondaryMidDeployment is the headline recovery scenario:
// the AoE server crashes at ~50% streamed and the deployment completes via
// failover to a secondary vblade, byte-exact.
func TestFailoverToSecondaryMidDeployment(t *testing.T) {
	tcfg, vcfg, bp := smallConfig(machine.StorageAHCI)
	tb := testbed.New(tcfg)
	tb.AddSecondaryServer(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second

	// Crash the primary once roughly half the image has been fetched.
	half := tcfg.ImageBytes / 2
	var crashProc func(p *sim.Proc)
	crashProc = func(p *sim.Proc) {
		for !tb.Server.Crashed() {
			if n.VMM != nil && n.VMM.FetchedBytes.Value() >= half {
				tb.Server.Crash()
				return
			}
			p.Sleep(10 * sim.Millisecond)
		}
	}
	tb.K.Spawn("chaos", crashProc)

	var res *testbed.BMcastResult
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		r, err := tb.DeployBMcast(p, n, vcfg, bp)
		if err != nil {
			t.Error(err)
			return
		}
		res = r
		tb.WaitBareMetal(p, n, res)
	})
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if res == nil || res.BareMetal == 0 {
		t.Fatalf("deployment did not complete after failover (phase=%v)", n.VMM.Phase())
	}
	if !tb.Server.Crashed() {
		t.Fatal("primary was never crashed; scenario did not run")
	}
	if n.VMM.Initiator().Failovers.Value() == 0 {
		t.Fatal("no failover recorded")
	}
	if _, err := tb.VerifyDeployment(n); err != nil {
		t.Fatal(err)
	}
}

// TestWatchdogFailsHungDeployment: a dead server and no secondary must not
// wedge the deployment forever — the stall detector forces PhaseFailed
// with a descriptive error.
func TestWatchdogFailsHungDeployment(t *testing.T) {
	tcfg, vcfg, bp := smallConfig(machine.StorageAHCI)
	vcfg.StallTimeout = 2 * sim.Second
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second
	tb.Server.Crash() // dead before the deployment starts

	tb.K.Spawn("deploy", func(p *sim.Proc) {
		res, err := tb.DeployBMcast(p, n, vcfg, bp)
		if err != nil {
			return // a failed guest boot is acceptable here
		}
		tb.WaitBareMetal(p, n, res) // PhaseFailed wakes this too
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if n.VMM == nil {
		t.Fatal("VMM never booted")
	}
	if got := n.VMM.Phase(); got != core.PhaseFailed {
		t.Fatalf("phase = %v, want failed", got)
	}
	err := n.VMM.Err()
	if err == nil {
		t.Fatal("PhaseFailed with nil Err")
	}
	if !strings.Contains(err.Error(), "deployment failed") ||
		!strings.Contains(err.Error(), "progress") {
		t.Fatalf("error not descriptive: %v", err)
	}
	if n.VMM.WatchdogFires.Value() != 1 {
		t.Fatalf("WatchdogFires = %d, want 1", n.VMM.WatchdogFires.Value())
	}
}

// TestDeployDeadline bounds the whole deployment even when progress is
// still trickling in.
func TestDeployDeadline(t *testing.T) {
	tcfg, vcfg, bp := smallConfig(machine.StorageAHCI)
	vcfg.StallTimeout = 0
	vcfg.WriteInterval = 50 * sim.Millisecond // 64 blocks: ≥3.2s of writing
	vcfg.DeployDeadline = 2 * sim.Second
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		res, err := tb.DeployBMcast(p, n, vcfg, bp)
		if err != nil {
			return
		}
		tb.WaitBareMetal(p, n, res)
	})
	tb.K.RunUntil(sim.Time(sim.Hour))
	if got := n.VMM.Phase(); got != core.PhaseFailed {
		t.Fatalf("phase = %v, want failed", got)
	}
	if err := n.VMM.Err(); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("error should name the deadline: %v", err)
	}
}
