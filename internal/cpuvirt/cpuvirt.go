// Package cpuvirt models hardware-assisted CPU virtualization (Intel VT-x /
// AMD-V) at the level BMcast depends on: which events cause VM exits and
// what they cost, nested-paging (EPT) state per CPU, the VMX preemption
// timer used to schedule the VMM's polling threads, and the aggregate
// overheads a virtualization platform imposes on guest execution.
//
// The paper's BMcast traps only PIO/MMIO to the storage controllers,
// startup IPIs/INIT, CR0/CR4 changes, and the unconditional CPUID exits;
// after de-virtualization nothing but CPUID traps, and its cost is
// negligible (§5.5.2). This package gives every platform model a common
// vocabulary to express exactly that.
package cpuvirt

import (
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ExitReason classifies VM exits.
type ExitReason int

// Exit reasons relevant to BMcast and the KVM baseline.
const (
	ExitPIO ExitReason = iota
	ExitMMIO
	ExitCPUID
	ExitCR
	ExitStartupIPI
	ExitPreemptionTimer
	ExitExternalInterrupt
	ExitHypercall
	numExitReasons
)

var exitNames = [...]string{
	"pio", "mmio", "cpuid", "cr", "startup-ipi", "preemption-timer",
	"external-interrupt", "hypercall",
}

func (r ExitReason) String() string {
	if int(r) < len(exitNames) {
		return exitNames[r]
	}
	return fmt.Sprintf("exit(%d)", int(r))
}

// Costs gives the round-trip cost of a VM exit per reason: world switch out,
// handler, world switch back. Values follow published VT-x measurements on
// Westmere-class parts (≈1 µs for a trivial handled exit).
type Costs [numExitReasons]sim.Duration

// DefaultCosts returns exit costs for the testbed's Xeon X5680 generation.
func DefaultCosts() Costs {
	var c Costs
	for i := range c {
		c[i] = 1200 * sim.Nanosecond
	}
	c[ExitCPUID] = 800 * sim.Nanosecond
	c[ExitPreemptionTimer] = 900 * sim.Nanosecond
	c[ExitExternalInterrupt] = 2500 * sim.Nanosecond // redelivery via the VMM
	return c
}

// CPU is one logical processor's virtualization state.
type CPU struct {
	ID    int
	VMXOn bool // VMX root mode active (a VMM exists underneath the guest)
	EPTOn bool // nested paging enabled for this CPU
}

// World is the machine-wide virtualization state shared by the VMM, the
// mediators, and the workload models.
type World struct {
	k     *sim.Kernel
	CPUs  []*CPU
	costs Costs

	exitCounts [numExitReasons]int64
	exitTime   sim.Duration // total guest time consumed by exits

	// Instrumentation (see Instrument): per-reason registry counters and
	// cost histograms, plus a trace recorder emitting one vm-exit event
	// per exit. All nil until instrumented; Exit pays one pointer check
	// each when they are.
	node  string
	tr    *trace.Recorder
	exitC *[numExitReasons]*metrics.Counter
	exitH *[numExitReasons]*metrics.Histogram

	// vmmWork accumulates CPU time spent by VMM threads (polling, copy
	// engines); Tax derives the recent fraction of machine CPU it uses.
	vmmWork     sim.Duration
	taxWindowAt sim.Time
	taxPrev     float64

	// Overheads are the platform-imposed execution penalties; see the
	// field docs. Platforms (bare metal, BMcast phases, KVM) set them.
	Overheads Overheads
}

// Overheads are the dials a virtualization platform sets to describe its
// steady-state cost to guest execution. Bare metal is the zero value.
type Overheads struct {
	// MemPenalty is the fractional slowdown of memory-bound work: EPT
	// two-dimensional page walks, TLB pollution, and cache pollution from
	// the VMM/host. 0 = bare metal.
	MemPenalty float64
	// CPUTaxStatic is a fixed CPU fraction consumed by the platform
	// (e.g. KVM host housekeeping); the dynamic VMM-thread tax from
	// RecordVMMWork is added on top.
	CPUTaxStatic float64
	// LHPProb is the probability that a mutex handoff hits a preempted
	// lock holder (the lock-holder preemption problem, paper §5.5.1);
	// LHPStall is the resulting stall.
	LHPProb  float64
	LHPStall sim.Duration
	// IRQLatency is extra per-interrupt delivery latency through the
	// virtualization layer (eliminated by ELI on the KVM baseline for
	// assigned devices, but IOMMU/remapping cost remains).
	IRQLatency sim.Duration
	// VirtIOPathOverhead is the fractional throughput loss of
	// paravirtual I/O devices (virtio) relative to direct access.
	VirtIOPathOverhead float64
	// SchedJitter is the mean scheduling/timer jitter the platform adds
	// to latency-sensitive steps. Collectives amplify it: each step of a
	// synchronized operation waits for the slowest of N nodes, which is
	// how KVM's Allgather reaches 235% of bare metal (§5.3) while
	// BMcast's fine-grained polling stays near zero.
	SchedJitter sim.Duration
	// NetPathLatency is extra one-way latency on the guest's network
	// request path (virtio/vhost queue handoffs); zero with direct
	// hardware access.
	NetPathLatency sim.Duration
}

// Jitter draws one scheduling-jitter sample (exponential with mean
// SchedJitter) from rng. It returns 0 when the platform adds none.
func (o Overheads) Jitter(rng *rand.Rand) sim.Duration {
	if o.SchedJitter <= 0 {
		return 0
	}
	return sim.Duration(rng.ExpFloat64() * float64(o.SchedJitter))
}

// NewWorld returns a bare-metal world with ncpu processors.
func NewWorld(k *sim.Kernel, ncpu int) *World {
	w := &World{k: k, costs: DefaultCosts()}
	for i := 0; i < ncpu; i++ {
		w.CPUs = append(w.CPUs, &CPU{ID: i})
	}
	return w
}

// NCPU reports the number of logical processors.
func (w *World) NCPU() int { return len(w.CPUs) }

// EnterVMX puts every CPU in VMX root mode with nested paging on: the state
// after a VMM boots and starts the guest.
func (w *World) EnterVMX() {
	for _, c := range w.CPUs {
		c.VMXOn = true
		c.EPTOn = true
	}
}

// Virtualized reports whether any CPU still runs under a VMM.
func (w *World) Virtualized() bool {
	for _, c := range w.CPUs {
		if c.VMXOn {
			return true
		}
	}
	return false
}

// NestedPagingOff reports whether every CPU has EPT disabled.
func (w *World) NestedPagingOff() bool {
	for _, c := range w.CPUs {
		if c.EPTOn {
			return false
		}
	}
	return true
}

// Instrument registers per-exit-reason counters ("cpuvirt.exits") and
// cost histograms ("cpuvirt.exit_cost") labeled by node and reason into
// reg, and makes every subsequent Exit emit a "vm-exit" instant event
// on tr (nil tr: no events). Call once per deployment, before traffic.
func (w *World) Instrument(reg *metrics.Registry, tr *trace.Recorder, node string) {
	w.node = node
	w.tr = tr
	var cs [numExitReasons]*metrics.Counter
	var hs [numExitReasons]*metrics.Histogram
	for r := ExitReason(0); r < numExitReasons; r++ {
		cs[r] = reg.Counter("cpuvirt.exits", metrics.L("node", node), metrics.L("exit_reason", r.String()))
		hs[r] = reg.Histogram("cpuvirt.exit_cost", metrics.L("node", node), metrics.L("exit_reason", r.String()))
	}
	w.exitC, w.exitH = &cs, &hs
}

// Exit charges one VM exit of the given reason to the calling guest
// context. When p is nil only accounting happens (for exits modeled in
// aggregate).
func (w *World) Exit(p *sim.Proc, r ExitReason) {
	w.exitCounts[r]++
	c := w.costs[r]
	w.exitTime += c
	w.RecordVMMWork(c)
	if w.exitC != nil {
		w.exitC[r].Inc()
		w.exitH[r].Observe(c)
	}
	if w.tr != nil {
		w.tr.Emit(w.node, "cpuvirt", "vm-exit", trace.Str("reason", r.String()))
	}
	if p != nil {
		p.Sleep(c)
	}
}

// ExitCount reports how many exits of reason r occurred.
func (w *World) ExitCount(r ExitReason) int64 { return w.exitCounts[r] }

// TotalExits reports all exits across reasons.
func (w *World) TotalExits() int64 {
	var n int64
	for _, c := range w.exitCounts {
		n += c
	}
	return n
}

// RecordVMMWork accounts d of CPU time consumed by VMM threads.
func (w *World) RecordVMMWork(d sim.Duration) {
	const window = sim.Second
	now := w.k.Now()
	for now.Sub(w.taxWindowAt) >= window {
		w.taxPrev = float64(w.vmmWork) / float64(window) / float64(len(w.CPUs))
		w.vmmWork = 0
		w.taxWindowAt = w.taxWindowAt.Add(window)
		if w.taxWindowAt.Add(window) < now { // long idle gap: fast-forward
			w.taxPrev = 0
			w.taxWindowAt = now
		}
	}
	w.vmmWork += d
}

// Tax reports the machine CPU fraction currently consumed by the platform:
// the static platform tax plus VMM-thread work measured over the last
// completed one-second window.
func (w *World) Tax() float64 {
	w.RecordVMMWork(0) // roll the window forward
	return w.Overheads.CPUTaxStatic + w.taxPrev
}

// Slowdown reports the execution-time multiplier for work whose
// memory-bound fraction is memShare (0..1), combining the memory penalty
// and the CPU tax.
func (w *World) Slowdown(memShare float64) float64 {
	s := 1 + w.Overheads.MemPenalty*memShare
	tax := w.Tax()
	if tax > 0.95 {
		tax = 0.95
	}
	return s / (1 - tax)
}

// PreemptionTimer schedules fn to run every interval of guest time, as the
// VMX preemption timer does for BMcast's polling threads. Each fire is a
// VM exit. Stop the timer by calling the returned cancel function. The
// interval can be changed by calling set. When the preemption timer is not
// available, BMcast falls back to soft-timer-style scheduling on interrupt
// exits; that path is modeled by a coarser interval.
type PreemptionTimer struct {
	w        *World
	interval sim.Duration
	fn       func()
	stopped  bool
	event    sim.Handle
}

// StartPreemptionTimer begins firing fn every interval.
func (w *World) StartPreemptionTimer(interval sim.Duration, fn func()) *PreemptionTimer {
	t := &PreemptionTimer{w: w, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *PreemptionTimer) arm() {
	t.event = t.w.k.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.w.Exit(nil, ExitPreemptionTimer)
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// SetInterval changes the firing interval from the next arm.
func (t *PreemptionTimer) SetInterval(d sim.Duration) { t.interval = d }

// Interval reports the current firing interval.
func (t *PreemptionTimer) Interval() sim.Duration { return t.interval }

// Stop cancels the timer.
func (t *PreemptionTimer) Stop() {
	t.stopped = true
	t.event.Cancel()
	t.event = sim.Handle{}
}

// Devirtualize performs BMcast's de-virtualization on the CPU side: each
// CPU independently invalidates its TLB and turns nested paging off (no
// IPIs needed because the identity mapping never changed, §3.4), then VMX
// is turned off once every CPU is done. The per-CPU step costs a TLB flush.
// It must be called from a process context.
func (w *World) Devirtualize(p *sim.Proc) {
	const tlbFlush = 2 * sim.Microsecond
	for _, c := range w.CPUs {
		if !c.VMXOn {
			continue
		}
		c.EPTOn = false
		p.Sleep(tlbFlush) // CPUs take turns at their own pace
	}
	if !w.NestedPagingOff() {
		panic("cpuvirt: nested paging still on after per-CPU disable")
	}
	for _, c := range w.CPUs {
		c.VMXOn = false // VMXOFF
	}
}
