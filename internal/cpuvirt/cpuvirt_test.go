package cpuvirt

import (
	"testing"

	"repro/internal/sim"
)

func TestEnterVMX(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, 12)
	if w.NCPU() != 12 || w.Virtualized() {
		t.Fatal("fresh world wrong")
	}
	w.EnterVMX()
	if !w.Virtualized() || w.NestedPagingOff() {
		t.Fatal("EnterVMX did not enable VMX+EPT")
	}
}

func TestExitAccounting(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, 2)
	var elapsed sim.Duration
	k.Spawn("guest", func(p *sim.Proc) {
		start := p.Now()
		w.Exit(p, ExitPIO)
		w.Exit(p, ExitPIO)
		w.Exit(p, ExitCPUID)
		elapsed = p.Now().Sub(start)
	})
	k.Run()
	if w.ExitCount(ExitPIO) != 2 || w.ExitCount(ExitCPUID) != 1 {
		t.Fatal("exit counts wrong")
	}
	if w.TotalExits() != 3 {
		t.Fatalf("TotalExits = %d", w.TotalExits())
	}
	want := 2*DefaultCosts()[ExitPIO] + DefaultCosts()[ExitCPUID]
	if elapsed != want {
		t.Fatalf("exit time charged = %v, want %v", elapsed, want)
	}
}

func TestExitWithoutProc(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, 1)
	w.Exit(nil, ExitMMIO) // accounting only, no sleep
	if w.ExitCount(ExitMMIO) != 1 {
		t.Fatal("nil-proc exit not counted")
	}
}

func TestDevirtualize(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, 12)
	w.EnterVMX()
	k.Spawn("vmm", func(p *sim.Proc) { w.Devirtualize(p) })
	k.Run()
	if w.Virtualized() {
		t.Fatal("still virtualized after Devirtualize")
	}
	if !w.NestedPagingOff() {
		t.Fatal("EPT still on after Devirtualize")
	}
}

func TestDevirtualizeIdempotentOnBareMetal(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, 4)
	k.Spawn("vmm", func(p *sim.Proc) { w.Devirtualize(p) }) // never entered VMX
	k.Run()
	if w.Virtualized() {
		t.Fatal("bare metal world reports virtualized")
	}
}

func TestPreemptionTimer(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, 1)
	fires := 0
	tm := w.StartPreemptionTimer(100*sim.Microsecond, func() { fires++ })
	k.RunUntil(sim.Time(sim.Millisecond))
	tm.Stop()
	k.Run()
	if fires != 10 {
		t.Fatalf("timer fired %d times in 1ms at 100µs, want 10", fires)
	}
	if w.ExitCount(ExitPreemptionTimer) != 10 {
		t.Fatal("preemption-timer exits not counted")
	}
	after := fires
	k.RunUntil(sim.Time(2 * sim.Millisecond))
	if fires != after {
		t.Fatal("timer fired after Stop")
	}
}

func TestPreemptionTimerSetInterval(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, 1)
	fires := 0
	tm := w.StartPreemptionTimer(100*sim.Microsecond, func() { fires++ })
	tm.SetInterval(500 * sim.Microsecond)
	k.RunUntil(sim.Time(sim.Millisecond))
	tm.Stop()
	// First fire at 100µs, subsequent at 600µs; next would be 1100µs.
	if fires != 2 {
		t.Fatalf("fires = %d, want 2", fires)
	}
	if tm.Interval() != 500*sim.Microsecond {
		t.Fatal("Interval not updated")
	}
}

func TestTaxFromVMMWork(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, 10)
	// Consume 0.5 CPU-seconds of VMM work during the first second on a
	// 10-CPU machine: tax should be ~5% once the window closes.
	k.Spawn("vmm", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			w.RecordVMMWork(5 * sim.Millisecond)
			p.Sleep(10 * sim.Millisecond)
		}
	})
	k.RunUntil(sim.Time(1500 * sim.Millisecond))
	got := w.Tax()
	if got < 0.045 || got > 0.055 {
		t.Fatalf("Tax = %v, want ~0.05", got)
	}
}

func TestTaxDecaysWhenIdle(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, 1)
	w.RecordVMMWork(500 * sim.Millisecond)
	k.RunUntil(sim.Time(10 * sim.Second))
	if got := w.Tax(); got != 0 {
		t.Fatalf("Tax after long idle = %v, want 0", got)
	}
}

func TestSlowdown(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, 1)
	if w.Slowdown(1.0) != 1.0 {
		t.Fatal("bare metal slowdown must be 1")
	}
	w.Overheads.MemPenalty = 0.35
	if got := w.Slowdown(1.0); got != 1.35 {
		t.Fatalf("Slowdown(1.0) = %v, want 1.35", got)
	}
	if got := w.Slowdown(0.5); got < 1.17 || got > 1.18 {
		t.Fatalf("Slowdown(0.5) = %v, want ~1.175", got)
	}
	w.Overheads.CPUTaxStatic = 0.5
	if got := w.Slowdown(0.0); got != 2.0 {
		t.Fatalf("Slowdown with 50%% tax = %v, want 2.0", got)
	}
}

func TestExitReasonString(t *testing.T) {
	if ExitPIO.String() != "pio" || ExitPreemptionTimer.String() != "preemption-timer" {
		t.Fatal("ExitReason names wrong")
	}
}
