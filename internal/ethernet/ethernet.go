// Package ethernet models a switched Ethernet segment: full-duplex links
// with bandwidth, propagation delay and MTU (including 9000-byte jumbo
// frames as in the paper's testbed), a learning switch, and deterministic
// loss injection for exercising AoE retransmission.
package ethernet

import (
	"fmt"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// MAC is a link-layer address.
type MAC uint64

// Broadcast is the all-stations address.
const Broadcast MAC = 0xFFFFFFFFFFFF

func (m MAC) String() string { return fmt.Sprintf("%012x", uint64(m)) }

// HeaderSize is the Ethernet frame header size in bytes (dest, src,
// ethertype) plus FCS.
const HeaderSize = 18

// Frame is a link-layer frame. Payload carries the upper-layer message by
// reference; Size is the wire size in bytes including headers, which drives
// serialization timing and MTU checks.
//
// Frames may be pooled: a sender that recycles frames calls InitRef before
// transmitting, and every hop that consumes a reference (drop on a faulty
// link, MAC filter, final receiver) calls Release. Duplication and switch
// flooding Retain extra references, so a frame returns to its owner exactly
// once, after the last copy is consumed. Frames that never call InitRef are
// unmanaged: Retain/Release are no-ops and the collector reclaims them.
type Frame struct {
	Src, Dst  MAC
	EtherType uint16
	Payload   any
	Size      int64

	// Observability metadata, not part of the wire image: FlowID carries
	// the originating trace-span ID across the network so the receiver can
	// link its span back to the sender's; QueuedAt is stamped when the
	// frame enters a server queue so service code can attribute the wait.
	// Both travel with the frame through pooling; senders overwrite them
	// on reuse (a pool Get does not clear them).
	FlowID   int64
	QueuedAt sim.Time

	owner FrameOwner
	refs  int32
}

// FrameOwner recycles frames whose reference count reaches zero.
type FrameOwner interface{ ReleaseFrame(f *Frame) }

// InitRef marks the frame as owned with a single outstanding reference.
// The sender calls it immediately before handing the frame to the wire.
func (f *Frame) InitRef(owner FrameOwner) { f.owner, f.refs = owner, 1 }

// Retain adds a reference to a managed frame (no-op when unmanaged).
// The count is atomic so copies of one frame fanned out across shard
// domains (router flood) may release concurrently.
func (f *Frame) Retain() {
	if f.owner != nil {
		atomic.AddInt32(&f.refs, 1)
	}
}

// Release drops one reference; the last release returns the frame to its
// owner. Callers must not touch the frame afterwards. Safe on nil and on
// unmanaged frames.
func (f *Frame) Release() {
	if f == nil || f.owner == nil {
		return
	}
	n := atomic.AddInt32(&f.refs, -1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("ethernet: frame released more times than retained")
	}
	o := f.owner
	f.owner = nil
	o.ReleaseFrame(f)
}

// Port receives frames from the segment.
type Port interface {
	Deliver(f *Frame)
}

// LinkParams describe one full-duplex link.
type LinkParams struct {
	Bandwidth   float64      // bits per second
	Propagation sim.Duration // one-way propagation delay
	MTU         int64        // max frame size in bytes (incl. headers)
	LossRate    float64      // fraction of frames dropped, per direction
}

// GigabitJumbo returns the paper's testbed link: gigabit Ethernet with a
// 9000-byte MTU.
func GigabitJumbo() LinkParams {
	return LinkParams{Bandwidth: 1e9, Propagation: 2 * sim.Microsecond, MTU: 9018}
}

// Gigabit returns a standard-MTU gigabit link.
func Gigabit() LinkParams {
	return LinkParams{Bandwidth: 1e9, Propagation: 2 * sim.Microsecond, MTU: 1518}
}

// TenGigabitJumbo returns a 10 GbE jumbo-frame link.
func TenGigabitJumbo() LinkParams {
	return LinkParams{Bandwidth: 10e9, Propagation: 2 * sim.Microsecond, MTU: 9018}
}

// FaultParams are the injectable impairments of one link direction beyond
// the base LossRate: carrier loss and probabilistic frame corruption,
// duplication, and reordering. All randomness draws from the kernel's
// seeded source, so the same seed and fault schedule replay identically.
type FaultParams struct {
	// Down models carrier loss: every frame is dropped at the transmitter.
	Down bool
	// CorruptRate is the fraction of frames whose FCS check fails at the
	// receiving end: the frame consumes full wire time but is discarded on
	// arrival (unlike LossRate, which drops at the transmitter).
	CorruptRate float64
	// DuplicateRate is the fraction of frames delivered twice (the second
	// copy one propagation delay later), exercising receiver dedup.
	DuplicateRate float64
	// ReorderRate is the fraction of frames held back by a random multiple
	// of their own serialization time, so back-to-back frames overtake them.
	ReorderRate float64
}

// direction models one direction of a link: a serializing transmitter.
type direction struct {
	k         *sim.Kernel
	p         LinkParams
	f         FaultParams
	busyUntil sim.Time
	free      []*delivery // recycled delivery records
	dropped   metrics.Counter
	delivered metrics.Counter
	bytes     metrics.Counter // bytes serialized (delivered frames only)
	corrupted metrics.Counter // frames discarded by the receiver FCS check
	dups      metrics.Counter // frames delivered twice
	reordered metrics.Counter // frames held back past their slot
}

// delivery is one scheduled frame arrival. Records recycle through the
// direction's free list so the per-frame `port.Deliver(f)` event costs no
// allocation; fire returns the record to the list before delivering, so a
// delivery that triggers further sends can reuse it immediately.
type delivery struct {
	d    *direction
	port Port
	f    *Frame
	fire func()
}

// deliverAt schedules f's arrival at port at instant t using a recycled
// delivery record.
func (d *direction) deliverAt(t sim.Time, port Port, f *Frame) {
	var rec *delivery
	if n := len(d.free); n > 0 {
		rec = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		rec = &delivery{d: d}
		rec.fire = func() {
			port, f := rec.port, rec.f
			rec.port, rec.f = nil, nil
			rec.d.free = append(rec.d.free, rec)
			port.Deliver(f)
		}
	}
	rec.port, rec.f = port, f
	d.k.At(t, rec.fire)
}

// transmit schedules delivery of f to port after serialization and
// propagation, honoring MTU, loss rate, and injected faults. It reports
// the time the frame finishes serializing (even if lost).
func (d *direction) transmit(f *Frame, port Port) sim.Time {
	if f.Size > d.p.MTU {
		panic(fmt.Sprintf("ethernet: frame size %d exceeds MTU %d", f.Size, d.p.MTU))
	}
	if d.f.Down {
		d.dropped.Inc()
		f.Release()
		return d.k.Now()
	}
	start := d.k.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	ser := sim.Duration(float64(f.Size*8) / d.p.Bandwidth * float64(sim.Second))
	done := start.Add(ser)
	d.busyUntil = done
	if d.p.LossRate > 0 && d.k.Rand().Float64() < d.p.LossRate {
		d.dropped.Inc()
		f.Release()
		return done
	}
	arrival := done.Add(d.p.Propagation)
	if d.f.CorruptRate > 0 && d.k.Rand().Float64() < d.f.CorruptRate {
		// The frame occupies the wire but fails the FCS check on arrival;
		// nothing is delivered.
		d.corrupted.Inc()
		f.Release()
		return done
	}
	if d.f.ReorderRate > 0 && d.k.Rand().Float64() < d.f.ReorderRate {
		// Hold the frame back a few frame-times so later frames overtake it.
		d.reordered.Inc()
		arrival = arrival.Add(ser * sim.Duration(1+d.k.Rand().Int63n(4)))
	}
	d.delivered.Inc()
	d.bytes.Add(f.Size)
	d.deliverAt(arrival, port, f)
	if d.f.DuplicateRate > 0 && d.k.Rand().Float64() < d.f.DuplicateRate {
		d.dups.Inc()
		f.Retain() // the second copy is an extra reference for the receiver
		d.deliverAt(arrival.Add(d.p.Propagation), port, f)
	}
	return done
}

// Link is a full-duplex point-to-point link between a station and a switch
// (or another station).
type Link struct {
	a2b, b2a *direction
	aPort    Port // station side
	bPort    Port // switch side
}

// NewLink creates a link with the given parameters on both directions.
func NewLink(k *sim.Kernel, p LinkParams) *Link {
	return &Link{
		a2b: &direction{k: k, p: p},
		b2a: &direction{k: k, p: p},
	}
}

// AttachA sets the station-side port (receives frames travelling B→A).
func (l *Link) AttachA(p Port) { l.aPort = p }

// AttachB sets the switch-side port (receives frames travelling A→B).
func (l *Link) AttachB(p Port) { l.bPort = p }

// SendFromA transmits a frame from the A side toward B.
func (l *Link) SendFromA(f *Frame) {
	if l.bPort == nil {
		panic("ethernet: link B side not attached")
	}
	l.a2b.transmit(f, l.bPort)
}

// SendFromB transmits a frame from the B side toward A.
func (l *Link) SendFromB(f *Frame) {
	if l.aPort == nil {
		panic("ethernet: link A side not attached")
	}
	l.b2a.transmit(f, l.aPort)
}

// MTU reports the link MTU in bytes.
func (l *Link) MTU() int64 { return l.a2b.p.MTU }

// SetLossRate changes the frame loss rate on both directions.
func (l *Link) SetLossRate(r float64) {
	l.a2b.p.LossRate = r
	l.b2a.p.LossRate = r
}

// Dir selects one direction of a link for asymmetric fault injection.
type Dir int

// Link directions: A is the station side, B the switch side.
const (
	DirBoth Dir = iota
	DirA2B      // station → switch ("tx")
	DirB2A      // switch → station ("rx")
)

func (d Dir) String() string {
	switch d {
	case DirA2B:
		return "tx"
	case DirB2A:
		return "rx"
	default:
		return "both"
	}
}

// dirs returns the direction structs selected by d.
func (l *Link) dirs(d Dir) []*direction {
	switch d {
	case DirA2B:
		return []*direction{l.a2b}
	case DirB2A:
		return []*direction{l.b2a}
	default:
		return []*direction{l.a2b, l.b2a}
	}
}

// SetDown sets or clears carrier loss on the selected direction(s).
// DirA2B or DirB2A alone model an asymmetric partition: traffic flows one
// way but never the other.
func (l *Link) SetDown(d Dir, down bool) {
	for _, dir := range l.dirs(d) {
		dir.f.Down = down
	}
}

// Down reports whether any selected direction currently has carrier loss.
func (l *Link) Down(d Dir) bool {
	for _, dir := range l.dirs(d) {
		if dir.f.Down {
			return true
		}
	}
	return false
}

// SetCorruptRate sets the FCS-failure rate on the selected direction(s).
func (l *Link) SetCorruptRate(d Dir, r float64) {
	for _, dir := range l.dirs(d) {
		dir.f.CorruptRate = r
	}
}

// SetDuplicateRate sets the frame duplication rate on the selected
// direction(s).
func (l *Link) SetDuplicateRate(d Dir, r float64) {
	for _, dir := range l.dirs(d) {
		dir.f.DuplicateRate = r
	}
}

// SetReorderRate sets the frame reordering rate on the selected
// direction(s).
func (l *Link) SetReorderRate(d Dir, r float64) {
	for _, dir := range l.dirs(d) {
		dir.f.ReorderRate = r
	}
}

// Corrupted reports frames discarded by the receiver FCS check in both
// directions.
func (l *Link) Corrupted() int64 { return l.a2b.corrupted.Value() + l.b2a.corrupted.Value() }

// Duplicated reports frames delivered twice in both directions.
func (l *Link) Duplicated() int64 { return l.a2b.dups.Value() + l.b2a.dups.Value() }

// Reordered reports frames held back past their arrival slot in both
// directions.
func (l *Link) Reordered() int64 { return l.a2b.reordered.Value() + l.b2a.reordered.Value() }

// Dropped reports frames dropped in both directions.
func (l *Link) Dropped() int64 { return l.a2b.dropped.Value() + l.b2a.dropped.Value() }

// Delivered reports frames delivered in both directions.
func (l *Link) Delivered() int64 { return l.a2b.delivered.Value() + l.b2a.delivered.Value() }

// Bytes reports bytes carried by delivered frames in both directions.
func (l *Link) Bytes() int64 { return l.a2b.bytes.Value() + l.b2a.bytes.Value() }

// Instrument registers the link's per-direction frame, byte, and drop
// counters into reg under the given link name ("tx" is station→switch,
// "rx" the reverse). No-op on a nil registry.
func (l *Link) Instrument(reg *metrics.Registry, name string) {
	for dir, d := range map[string]*direction{"tx": l.a2b, "rx": l.b2a} {
		reg.RegisterCounter("ethernet.frames", &d.delivered, metrics.L("link", name), metrics.L("dir", dir))
		reg.RegisterCounter("ethernet.bytes", &d.bytes, metrics.L("link", name), metrics.L("dir", dir))
		reg.RegisterCounter("ethernet.dropped", &d.dropped, metrics.L("link", name), metrics.L("dir", dir))
		reg.RegisterCounter("ethernet.corrupted", &d.corrupted, metrics.L("link", name), metrics.L("dir", dir))
		reg.RegisterCounter("ethernet.duplicated", &d.dups, metrics.L("link", name), metrics.L("dir", dir))
		reg.RegisterCounter("ethernet.reordered", &d.reordered, metrics.L("link", name), metrics.L("dir", dir))
	}
}

// Switch is a store-and-forward learning switch. Stations connect through
// links; the switch learns source MACs and floods unknown destinations.
type Switch struct {
	k       *sim.Kernel
	name    string
	latency sim.Duration
	links   []*Link
	table   map[MAC]*Link
}

// NewSwitch returns a switch with the given forwarding latency.
func NewSwitch(k *sim.Kernel, name string, latency sim.Duration) *Switch {
	return &Switch{k: k, name: name, latency: latency, table: make(map[MAC]*Link)}
}

// Connect attaches a new link to the switch and returns it; the caller
// attaches its station to the A side.
func (s *Switch) Connect(p LinkParams) *Link {
	l := NewLink(s.k, p)
	l.AttachB(&switchPort{sw: s, link: l})
	s.links = append(s.links, l)
	return l
}

type switchPort struct {
	sw   *Switch
	link *Link
	free []*forward // recycled forward records
}

// forward is one frame queued through the switch's forwarding latency.
// Records recycle through the ingress port's free list so store-and-forward
// costs no allocation per frame.
type forward struct {
	sp   *switchPort
	f    *Frame
	fire func()
}

// Deliver handles a frame arriving at the switch from link.
func (sp *switchPort) Deliver(f *Frame) {
	sp.sw.table[f.Src] = sp.link // learn
	var rec *forward
	if n := len(sp.free); n > 0 {
		rec = sp.free[n-1]
		sp.free = sp.free[:n-1]
	} else {
		rec = &forward{sp: sp}
		rec.fire = func() {
			f, owner := rec.f, rec.sp
			rec.f = nil
			owner.free = append(owner.free, rec)
			owner.forward(f)
		}
	}
	rec.f = f
	sp.sw.k.After(sp.sw.latency, rec.fire)
}

// forward sends f out the learned port, or floods it. Each SendFromB
// consumes one frame reference, so flooding to n egress ports retains n-1
// extra; a frame with no egress (hairpin to its ingress port, or a
// single-link switch) is released here.
func (sp *switchPort) forward(f *Frame) {
	sw := sp.sw
	if f.Dst != Broadcast {
		if out, ok := sw.table[f.Dst]; ok {
			if out != sp.link {
				out.SendFromB(f)
			} else {
				f.Release()
			}
			return
		}
	}
	n := 0
	for _, l := range sw.links { // flood
		if l != sp.link {
			n++
		}
	}
	if n == 0 {
		f.Release()
		return
	}
	for i := 1; i < n; i++ {
		//bmcast:allow framebalance flood holds n refs total; the send loop below hands off exactly n
		f.Retain()
	}
	for _, l := range sw.links {
		if l != sp.link {
			l.SendFromB(f)
		}
	}
}
