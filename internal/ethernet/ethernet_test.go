package ethernet

import (
	"testing"

	"repro/internal/sim"
)

type collector struct {
	frames []*Frame
	times  []sim.Time
	k      *sim.Kernel
}

func (c *collector) Deliver(f *Frame) {
	c.frames = append(c.frames, f)
	c.times = append(c.times, c.k.Now())
}

func twoStations(k *sim.Kernel, p LinkParams) (*Switch, *Link, *Link, *collector, *collector) {
	sw := NewSwitch(k, "sw", 5*sim.Microsecond)
	la := sw.Connect(p)
	lb := sw.Connect(p)
	ca := &collector{k: k}
	cb := &collector{k: k}
	la.AttachA(ca)
	lb.AttachA(cb)
	return sw, la, lb, ca, cb
}

func TestDeliveryThroughSwitch(t *testing.T) {
	k := sim.New(1)
	_, la, _, _, cb := twoStations(k, GigabitJumbo())
	la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 1000})
	k.Run()
	if len(cb.frames) != 1 {
		t.Fatalf("station B received %d frames, want 1 (flooded unknown dst)", len(cb.frames))
	}
}

func TestLearningSuppressesFlood(t *testing.T) {
	k := sim.New(1)
	sw := NewSwitch(k, "sw", 0)
	la := sw.Connect(GigabitJumbo())
	lb := sw.Connect(GigabitJumbo())
	lc := sw.Connect(GigabitJumbo())
	ca, cb, cc := &collector{k: k}, &collector{k: k}, &collector{k: k}
	la.AttachA(ca)
	lb.AttachA(cb)
	lc.AttachA(cc)

	lb.SendFromA(&Frame{Src: 2, Dst: 1, Size: 100}) // teaches the switch MAC 2
	k.Run()
	la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 100}) // should go only to B
	k.Run()
	if len(cb.frames) != 1 {
		t.Fatalf("B received %d frames, want 1", len(cb.frames))
	}
	if len(cc.frames) != 1 { // only the initial flood of the first frame
		t.Fatalf("C received %d frames, want 1 (flood of first frame only)", len(cc.frames))
	}
}

func TestSerializationTiming(t *testing.T) {
	// A 9000-byte frame on gigabit takes 72 µs to serialize per hop, plus
	// propagation and switch latency.
	k := sim.New(1)
	_, la, _, _, cb := twoStations(k, GigabitJumbo())
	la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 9000})
	k.Run()
	got := cb.times[0]
	want := sim.Time(2*72*sim.Microsecond + 2*2*sim.Microsecond + 5*sim.Microsecond)
	if got != want {
		t.Fatalf("delivery at %v, want %v", got, want)
	}
}

func TestBackToBackFramesSerialize(t *testing.T) {
	k := sim.New(1)
	_, la, _, _, cb := twoStations(k, GigabitJumbo())
	for i := 0; i < 3; i++ {
		la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 9000})
	}
	k.Run()
	if len(cb.times) != 3 {
		t.Fatalf("received %d frames", len(cb.times))
	}
	gap := cb.times[1].Sub(cb.times[0])
	if gap != 72*sim.Microsecond {
		t.Fatalf("inter-frame gap = %v, want 72µs (line rate)", gap)
	}
}

func TestMTUEnforced(t *testing.T) {
	k := sim.New(1)
	_, la, _, _, _ := twoStations(k, Gigabit())
	defer func() {
		if recover() == nil {
			t.Fatal("oversize frame did not panic")
		}
	}()
	la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 9000})
}

func TestLossInjection(t *testing.T) {
	k := sim.New(1)
	p := GigabitJumbo()
	p.LossRate = 0.5
	_, la, _, _, cb := twoStations(k, p)
	const n = 1000
	for i := 0; i < n; i++ {
		la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 1000})
	}
	k.Run()
	got := len(cb.frames)
	// Loss is applied per hop: two 50% links give ~25% end-to-end delivery.
	if got < 150 || got > 350 {
		t.Fatalf("with 50%% loss per hop, delivered %d of %d, want ~250", got, n)
	}
	if la.Dropped() == 0 {
		t.Fatal("Dropped counter not incremented")
	}
	if la.Dropped()+int64(got) > n { // some drops could be on the egress link
		t.Logf("ingress drops %d, delivered %d", la.Dropped(), got)
	}
}

func TestSetLossRate(t *testing.T) {
	k := sim.New(1)
	_, la, _, _, cb := twoStations(k, GigabitJumbo())
	la.SetLossRate(1.0)
	la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 100})
	k.Run()
	if len(cb.frames) != 0 {
		t.Fatal("frame delivered despite 100% loss")
	}
	la.SetLossRate(0)
	la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 100})
	k.Run()
	if len(cb.frames) != 1 {
		t.Fatal("frame lost despite 0% loss")
	}
}

func TestLinkDownAndUp(t *testing.T) {
	k := sim.New(1)
	_, la, _, _, cb := twoStations(k, GigabitJumbo())
	la.SetDown(DirBoth, true)
	if !la.Down(DirBoth) {
		t.Fatal("Down not reported after SetDown")
	}
	la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 100})
	k.Run()
	if len(cb.frames) != 0 {
		t.Fatal("frame delivered over a down link")
	}
	if la.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", la.Dropped())
	}
	la.SetDown(DirBoth, false)
	la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 100})
	k.Run()
	if len(cb.frames) != 1 {
		t.Fatal("frame lost after link came back up")
	}
}

func TestAsymmetricPartition(t *testing.T) {
	// Station→switch down, switch→station up: A's frames die but frames
	// toward A still arrive — the classic one-way partition.
	k := sim.New(1)
	_, la, lb, ca, cb := twoStations(k, GigabitJumbo())
	la.SetDown(DirA2B, true)
	la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 100})
	lb.SendFromA(&Frame{Src: 2, Dst: 1, Size: 100})
	k.Run()
	if len(cb.frames) != 0 {
		t.Fatal("frame crossed the partitioned direction")
	}
	if len(ca.frames) != 1 {
		t.Fatalf("reverse direction delivered %d frames, want 1", len(ca.frames))
	}
}

func TestCorruptionDiscardsAtReceiver(t *testing.T) {
	k := sim.New(1)
	_, la, _, _, cb := twoStations(k, GigabitJumbo())
	la.SetCorruptRate(DirA2B, 1.0)
	const n = 20
	for i := 0; i < n; i++ {
		la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 1000})
	}
	k.Run()
	if len(cb.frames) != 0 {
		t.Fatalf("%d corrupt frames delivered", len(cb.frames))
	}
	if la.Corrupted() != n {
		t.Fatalf("Corrupted = %d, want %d", la.Corrupted(), n)
	}
	if la.Dropped() != 0 {
		t.Fatal("corruption must be counted separately from loss")
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	k := sim.New(1)
	_, la, _, _, cb := twoStations(k, GigabitJumbo())
	la.SetDuplicateRate(DirA2B, 1.0)
	la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 100})
	k.Run()
	// Duplication on the ingress hop: the switch forwards both copies.
	if len(cb.frames) != 2 {
		t.Fatalf("delivered %d frames, want 2 (original + duplicate)", len(cb.frames))
	}
	if la.Duplicated() != 1 {
		t.Fatalf("Duplicated = %d, want 1", la.Duplicated())
	}
}

func TestReorderingOvertakesFrames(t *testing.T) {
	k := sim.New(1)
	_, la, _, _, cb := twoStations(k, GigabitJumbo())
	// Force the first frame to be held back; send a clean train behind it.
	la.SetReorderRate(DirA2B, 1.0)
	la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 9000, EtherType: 1})
	la.SetReorderRate(DirA2B, 0)
	for i := 0; i < 4; i++ {
		la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 9000, EtherType: 2})
	}
	k.Run()
	if len(cb.frames) != 5 {
		t.Fatalf("delivered %d frames, want 5", len(cb.frames))
	}
	if la.Reordered() != 1 {
		t.Fatalf("Reordered = %d, want 1", la.Reordered())
	}
	if cb.frames[0].EtherType == 1 {
		t.Fatal("held-back frame still arrived first; no reordering happened")
	}
}

func TestFaultDeterminism(t *testing.T) {
	// The same seed and the same impairment settings must deliver the same
	// frames at the same instants.
	run := func() []sim.Time {
		k := sim.New(99)
		p := GigabitJumbo()
		p.LossRate = 0.2
		_, la, _, _, cb := twoStations(k, p)
		la.SetCorruptRate(DirA2B, 0.1)
		la.SetDuplicateRate(DirA2B, 0.1)
		la.SetReorderRate(DirA2B, 0.1)
		for i := 0; i < 200; i++ {
			la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 1000})
		}
		k.Run()
		return cb.times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBidirectionalIndependence(t *testing.T) {
	// Full duplex: simultaneous transfers in both directions don't share
	// bandwidth.
	k := sim.New(1)
	_, la, lb, ca, cb := twoStations(k, GigabitJumbo())
	// Teach the switch both addresses first.
	la.SendFromA(&Frame{Src: 1, Dst: Broadcast, Size: 64})
	lb.SendFromA(&Frame{Src: 2, Dst: Broadcast, Size: 64})
	k.Run()
	ca.frames, cb.frames, ca.times, cb.times = nil, nil, nil, nil
	start := k.Now()
	for i := 0; i < 10; i++ {
		la.SendFromA(&Frame{Src: 1, Dst: 2, Size: 9000})
		lb.SendFromA(&Frame{Src: 2, Dst: 1, Size: 9000})
	}
	k.Run()
	elapsed := k.Now().Sub(start)
	// 10 jumbo frames at line rate ≈ 720 µs + small constants. If the
	// directions shared bandwidth this would be ~1.44 ms.
	if elapsed > sim.Millisecond {
		t.Fatalf("bidirectional transfer took %v; directions appear coupled", elapsed)
	}
	if len(ca.frames) != 10 || len(cb.frames) != 10 {
		t.Fatalf("delivered %d/%d frames", len(ca.frames), len(cb.frames))
	}
}
