package ethernet

import (
	"repro/internal/sim"
)

// Router is the sharded-mode fabric (DESIGN.md §13): a static
// source-routed replacement for Switch used when the testbed partitions
// stations across shard domains. Each station's link lives entirely on
// the station's domain kernel — both directions serialize on the
// station's clock — and the switch hop is folded into a single
// cross-domain post carrying the forwarding latency, so a frame costs no
// events on any third domain.
//
// Unlike Switch, the Router does not learn: every station MAC is
// registered at Connect time (the testbed knows the full topology), and
// a frame for an unregistered destination floods like a learning switch
// would. Forwarding decisions run on the *sender's* kernel, which is
// deterministic because the MAC table is immutable after build.
type Router struct {
	name    string
	latency sim.Duration
	ports   []*routerPort
	table   map[MAC]*routerPort
}

// NewRouter returns a router with the given store-and-forward latency.
func NewRouter(name string, latency sim.Duration) *Router {
	return &Router{name: name, latency: latency, table: make(map[MAC]*routerPort)}
}

// Connect attaches a new link owned by station kernel k, registering the
// station's MACs for static forwarding. The caller attaches its station
// to the A side. Connect must only be called during build, before the
// shard set runs.
func (r *Router) Connect(k *sim.Kernel, p LinkParams, macs ...MAC) *Link {
	l := NewLink(k, p)
	rp := &routerPort{rt: r, k: k, link: l}
	l.AttachB(rp)
	r.ports = append(r.ports, rp)
	for _, m := range macs {
		r.table[m] = rp
	}
	return l
}

// routerPort is one station attachment. It is both the link's B-side
// Port (ingress: runs on the sending station's kernel) and the
// cross-domain delivery handler (egress: runs on the receiving station's
// kernel).
type routerPort struct {
	rt   *Router
	k    *sim.Kernel
	link *Link
}

// Deliver routes an ingress frame on the sender's kernel: one
// cross-domain post per egress port, timestamped with the forwarding
// latency. Hairpins (destination behind the ingress port) are dropped
// like the learning switch drops them.
func (rp *routerPort) Deliver(f *Frame) {
	rt := rp.rt
	at := rp.k.Now().Add(rt.latency)
	if f.Dst != Broadcast {
		if out, ok := rt.table[f.Dst]; ok {
			if out == rp {
				f.Release()
				return
			}
			rp.k.PostDeliver(out.k, at, out, f)
			return
		}
	}
	n := 0
	for _, out := range rt.ports { // flood
		if out != rp {
			n++
		}
	}
	if n == 0 {
		f.Release()
		return
	}
	for i := 1; i < n; i++ {
		//bmcast:allow framebalance flood holds n refs total; the post loop below hands off exactly n
		f.Retain()
	}
	for _, out := range rt.ports {
		if out != rp {
			rp.k.PostDeliver(out.k, at, out, f)
		}
	}
}

// XDeliver completes the forwarded hop on the receiving station's
// kernel: the frame starts serializing toward the station (B→A).
func (rp *routerPort) XDeliver(payload any) {
	rp.link.SendFromB(payload.(*Frame))
}
