package experiments

import (
	"errors"
	"fmt"

	"repro/internal/cloud"
	"repro/internal/faults"
	"repro/internal/hw/disk"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tenants"
	"repro/internal/testbed"
)

// The elasticity cell exercises the paper's headline claim end to end: a
// long-running control plane serving open-loop tenant traffic through a
// fault storm. The scenario is fixed (same seed ⇒ byte-identical report):
// a 12-machine pool, bursty diurnal arrivals for four minutes, and a
// 30-second storm at t=60s that partitions three machines' mediation
// links, crash-loops the storage server, and injects media-error bursts.
// The report slices the run into phases around the storm window so the
// graceful-degradation story — shed, quarantine, recover — is visible as
// data rather than prose.
const (
	elasticPool     = 12
	elasticStormAt  = 60 * sim.Second
	elasticStormFor = 30 * sim.Second
	// elasticDrain is the post-storm window in which backlog and retries
	// are still clearing; after it the plane must be back to normal.
	elasticDrain = 60 * sim.Second
)

// ElasticStorm is the cell's storm: a 3-machine rack partition plus
// server crash/restart cycles and media-error bursts.
func ElasticStorm() faults.StormConfig {
	return faults.StormConfig{
		At:  elasticStormAt,
		For: elasticStormFor,
		Links: []string{"node0.vmm", "node1.vmm", "node2.vmm"},
		Server: "server", Crashes: 2,
		MediaErrs: 2, MediaErrLBA: 0, MediaErrCount: 64,
	}
}

// ElasticProfile is the cell's tenant traffic: bursty, diurnally
// modulated, mixed-priority open-loop arrivals spanning the storm.
func ElasticProfile() tenants.Profile {
	return tenants.Profile{
		Rate:     0.25,
		Duration: 4 * sim.Minute,
		Hold:     10 * sim.Second,
		Deadline: 40 * sim.Second,
		// Bursts recur at the storm period, so one lands inside the storm
		// window — peak demand colliding with degraded capacity is the
		// scenario the admission plane exists for.
		BurstEvery: 60 * sim.Second, BurstFor: 12 * sim.Second, BurstFactor: 4,
		DiurnalPeriod: 4 * sim.Minute, DiurnalAmp: 0.3,
		PriorityWeights: [3]float64{1, 2, 1},
	}
}

// ElasticityPhase aggregates one phase of the run (pre-storm, storm,
// drain, recovered), with requests classified by submission time.
type ElasticityPhase struct {
	Name      string
	Requested int
	Ready     int
	Shed      int
	Failed    int
	ReadyP50  sim.Duration
	ReadyP99  sim.Duration
	BareP50   sim.Duration
	BareP99   sim.Duration
}

// ElasticityResult is the cell's aggregate outcome.
type ElasticityResult struct {
	Phases []ElasticityPhase

	Generated     int64
	Completed     int64
	SubmittedReqs int
	Redeploys     int64
	Quarantines   int64
	Probes        int64
	ShedTotal     int64
	MaxQueueDepth int
	Pool          int
	FreeAtEnd     int
	QuarantinedAtEnd int

	Storm   faults.StormConfig
	Profile tenants.Profile

	Snapshot metrics.Snapshot
}

// ElasticityRun drives the elastic control plane scenario: tenant traffic
// from profile against a machine pool (pool <= 0 means the cell default),
// with storm applied on the testbed clock. It runs until the traffic
// drains and reports per-phase latency percentiles.
func ElasticityRun(opt Options, pool int, profile tenants.Profile, storm faults.StormConfig) (ElasticityResult, error) {
	if pool <= 0 {
		pool = elasticPool
	}
	tcfg := testbed.DefaultConfig()
	tcfg.Seed = opt.Seed
	tcfg.Shards = opt.Shards
	// The cell's pool shares one gigabit vblade among 12 concurrent
	// background copies, so a large image keeps every machine saturated
	// for minutes; cap it so pre-storm steady state has headroom.
	tcfg.ImageBytes = opt.DevirtImageBytes
	if tcfg.ImageBytes <= 0 || tcfg.ImageBytes > 96<<20 {
		tcfg.ImageBytes = 96 << 20
	}
	if min := 2 * tcfg.ImageBytes / disk.SectorSize; tcfg.DiskSectors < min {
		tcfg.DiskSectors = min
	}
	tb := testbed.New(tcfg)
	c := cloud.NewController(tb, tcfg, pool)
	c.BootProfile.TotalBytes = 16 << 20
	if opt.BootBytes > 0 {
		c.BootProfile.TotalBytes = opt.BootBytes
	}
	c.BootProfile.CPUTime = 2 * sim.Second
	c.VMMConfig.WriteInterval = 2 * sim.Millisecond
	// StallTimeout sits below the storm's 30s partitions and above any
	// congestion stall healthy traffic produces at this scale, so the
	// watchdog only fires on genuinely faulted machines.
	c.VMMConfig.StallTimeout = 4 * sim.Second
	c.Retry = cloud.RetryPolicy{
		Budget:      3,
		BaseBackoff: sim.Second,
		MaxBackoff:  8 * sim.Second,
		JitterFrac:  0.2,
		LeaseWait:   20 * sim.Second,
	}
	c.Health = cloud.HealthPolicy{FailThreshold: 2, Probation: 20 * sim.Second}
	for _, n := range tb.Nodes {
		n.M.Firmware.InitTime = 2 * sim.Second
	}
	f := cloud.NewFrontend(c, cloud.AdmissionConfig{QueueLimit: 10, TokenRate: 2, TokenBurst: 4})
	inj := tb.NewFaultInjector()
	if err := inj.Apply(storm.Schedule()); err != nil {
		return ElasticityResult{}, fmt.Errorf("elasticity: storm: %w", err)
	}
	g := tenants.NewGenerator(tb.K, f, tb.Metrics, profile)
	g.Start()

	drained := false
	tb.K.Spawn("elasticity.waiter", func(p *sim.Proc) {
		g.WaitDrained(p)
		drained = true
		if !tb.Sharded() {
			tb.K.Stop() // sharded runs stop at the next window barrier
		}
	})
	// Horizon guard: the graceful-degradation invariant says this loop
	// terminates, but a bug must surface as an error, not a hang.
	horizon := sim.Time(profile.Duration + sim.Hour)
	if tb.Sharded() {
		tb.Set.RunUntil(horizon, func() bool { return drained })
	} else {
		for !drained && tb.K.Pending() > 0 && tb.K.Now() < horizon {
			tb.K.RunUntil(tb.K.Now().Add(sim.Minute))
		}
	}
	if !drained {
		return ElasticityResult{}, fmt.Errorf("elasticity: traffic never drained (deadlock or runaway backlog): %d requests open at %v",
			openRequests(f), tb.K.Now())
	}

	res := ElasticityResult{
		Generated:        g.Generated.Value(),
		Completed:        g.Completed.Value(),
		SubmittedReqs:    len(f.Requests()),
		Redeploys:        c.Redeploys.Value(),
		Quarantines:      c.Quarantines.Value(),
		Probes:           c.Probes.Value(),
		ShedTotal:        f.ShedQueueFull.Value() + f.ShedDeadline.Value(),
		MaxQueueDepth:    f.MaxQueueDepth,
		Pool:             pool,
		FreeAtEnd:        c.FreeMachines(),
		QuarantinedAtEnd: c.QuarantinedMachines(),
		Storm:            storm,
		Profile:          profile,
		Snapshot:         tb.Metrics.Snapshot(),
	}

	// Phase classification by submission time: pre-storm, the storm
	// window, the drain window, and recovered steady state.
	bounds := []struct {
		name string
		upto sim.Time // exclusive upper bound on SubmittedAt
	}{
		{"pre-storm", sim.Time(storm.At)},
		{"storm", sim.Time(storm.At + storm.For)},
		{"drain", sim.Time(storm.At + storm.For + elasticDrain)},
		{"recovered", sim.Time(1) << 62},
	}
	phases := make([]ElasticityPhase, len(bounds))
	ready := make([]metrics.Histogram, len(bounds))
	bare := make([]metrics.Histogram, len(bounds))
	for i, b := range bounds {
		phases[i].Name = b.name
	}
	for _, r := range f.Requests() {
		i := 0
		for i < len(bounds)-1 && r.SubmittedAt >= bounds[i].upto {
			i++
		}
		ph := &phases[i]
		ph.Requested++
		if err := r.Err(); err != nil {
			if errors.Is(err, cloud.ErrShedQueueFull) || errors.Is(err, cloud.ErrShedDeadline) ||
				errors.Is(err, cloud.ErrFrontendClosed) {
				ph.Shed++
			} else {
				ph.Failed++
			}
			continue
		}
		in := r.Instance()
		if in.ReadyAt != 0 {
			ph.Ready++
			ready[i].Observe(in.ReadyAt.Sub(r.SubmittedAt))
		} else {
			ph.Failed++
			continue
		}
		if in.BareMetalAt != 0 {
			bare[i].Observe(in.BareMetalAt.Sub(r.SubmittedAt))
		}
	}
	for i := range phases {
		phases[i].ReadyP50 = ready[i].Percentile(50)
		phases[i].ReadyP99 = ready[i].Percentile(99)
		phases[i].BareP50 = bare[i].Percentile(50)
		phases[i].BareP99 = bare[i].Percentile(99)
	}
	res.Phases = phases
	return res, nil
}

// openRequests counts submitted requests that never resolved — the
// witness reported when the drain guard trips.
func openRequests(f *cloud.Frontend) int {
	n := 0
	for _, r := range f.Requests() {
		if !r.Done() {
			n++
		}
	}
	return n
}

// ElasticityTable runs the scenario and renders it as a per-phase table.
// Shared by the registry cell and bmcast-sim's -tenants mode.
func ElasticityTable(opt Options, pool int, profile tenants.Profile, storm faults.StormConfig) *report.Table {
	if pool <= 0 {
		pool = elasticPool
	}
	t := &report.Table{
		Title: fmt.Sprintf("Elastic control plane — %d machines, fault storm %v→%v",
			pool, sim.Time(storm.At), sim.Time(storm.At+storm.For)),
		Columns: []string{"phase", "requested", "ready", "shed", "failed",
			"p50 ready", "p99 ready", "p50 baremetal", "p99 baremetal"},
	}
	r, err := ElasticityRun(opt, pool, profile, storm)
	if err != nil {
		t.AddRow("FAILED", "-", "-", "-", "-", "-", "-", "-", fmt.Sprintf("%v", err))
		return t
	}
	for _, ph := range r.Phases {
		t.AddRow(ph.Name, ph.Requested, ph.Ready, ph.Shed, ph.Failed,
			durOrDash(ph.ReadyP50), durOrDash(ph.ReadyP99),
			durOrDash(ph.BareP50), durOrDash(ph.BareP99))
	}
	t.AddNote("storm: %s", r.Storm.String())
	t.AddNote("traffic: %s", r.Profile.String())
	t.AddNote("redeploys=%d quarantines=%d probes=%d shed=%d max queue depth=%d (limit 10)",
		r.Redeploys, r.Quarantines, r.Probes, r.ShedTotal, r.MaxQueueDepth)
	t.AddNote("pool at end: %d free, %d quarantined of %d", r.FreeAtEnd, r.QuarantinedAtEnd, r.Pool)
	return t
}

// Elasticity is the registry cell: the fixed storm scenario rendered as a
// per-phase table.
func Elasticity(opt Options) []*report.Table {
	return []*report.Table{ElasticityTable(opt, elasticPool, ElasticProfile(), ElasticStorm())}
}
