package experiments

import (
	"strings"
	"testing"
)

// phase finds a named phase in an elasticity result.
func phase(t *testing.T, r ElasticityResult, name string) ElasticityPhase {
	t.Helper()
	for _, ph := range r.Phases {
		if ph.Name == name {
			return ph
		}
	}
	t.Fatalf("no phase %q in %+v", name, r.Phases)
	return ElasticityPhase{}
}

// TestElasticityGracefulDegradation is the cell's headline invariant: the
// control plane serves open-loop traffic through the fault storm without
// deadlocking, keeps the admission queue bounded, degrades by shedding
// and quarantining rather than failing tenants, and returns to pre-storm
// time-to-bare-metal once the storm clears.
func TestElasticityGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("full storm scenario; skipped in -short")
	}
	opt := Quick()
	opt.Seed = 3
	r, err := ElasticityRun(opt, 0, ElasticProfile(), ElasticStorm())
	if err != nil {
		t.Fatal(err) // non-nil means the traffic never drained (deadlock)
	}

	// The queue stayed bounded and degradation was visible: requests were
	// shed, failing machines were quarantined and later re-admitted.
	if r.MaxQueueDepth > 10 {
		t.Errorf("queue depth %d exceeded the limit 10", r.MaxQueueDepth)
	}
	if r.ShedTotal == 0 {
		t.Error("storm did not shed any requests")
	}
	if r.Quarantines < 1 {
		t.Errorf("quarantines = %d, want >= 1", r.Quarantines)
	}
	if r.Probes < r.Quarantines {
		t.Errorf("probes = %d < quarantines = %d: benched machines were never probed",
			r.Probes, r.Quarantines)
	}
	if r.QuarantinedAtEnd != 0 || r.FreeAtEnd != 12 {
		t.Errorf("pool did not recover: %d free, %d quarantined, want 12/0",
			r.FreeAtEnd, r.QuarantinedAtEnd)
	}

	// Steady state on both sides of the storm is clean; the storm window
	// is where the shedding concentrates.
	pre := phase(t, r, "pre-storm")
	storm := phase(t, r, "storm")
	rec := phase(t, r, "recovered")
	if pre.Failed != 0 || pre.Shed != 0 {
		t.Errorf("pre-storm not clean: %+v", pre)
	}
	if storm.Shed == 0 {
		t.Errorf("storm phase shed nothing: %+v", storm)
	}
	if rec.Failed != 0 || rec.Shed != 0 {
		t.Errorf("recovered phase not clean: %+v", rec)
	}

	// Recovery: post-storm time-to-bare-metal is within 10% of pre-storm.
	if max := pre.BareP50 * 11 / 10; rec.BareP50 > max {
		t.Errorf("recovered p50 bare-metal %v > %v (pre-storm %v + 10%%)",
			rec.BareP50, max, pre.BareP50)
	}
	if max := pre.BareP99 * 11 / 10; rec.BareP99 > max {
		t.Errorf("recovered p99 bare-metal %v > %v (pre-storm %v + 10%%)",
			rec.BareP99, max, pre.BareP99)
	}

	// Every arrival is accounted for, and each phase's rows add up.
	var requested, ready, shed, failed int
	for _, ph := range r.Phases {
		requested += ph.Requested
		ready += ph.Ready
		shed += ph.Shed
		failed += ph.Failed
	}
	if requested != r.SubmittedReqs {
		t.Errorf("phases hold %d requests, frontend saw %d", requested, r.SubmittedReqs)
	}
	if ready+shed+failed != requested {
		t.Errorf("accounting: ready %d + shed %d + failed %d != requested %d",
			ready, shed, failed, requested)
	}
	if int64(requested) != r.Generated {
		t.Errorf("generated %d arrivals, submitted %d", r.Generated, requested)
	}
}

// TestElasticityDeterministic: the registry cell renders byte-identical
// tables on repeated runs with the same options.
func TestElasticityDeterministic(t *testing.T) {
	opt := tiny()
	opt.DevirtImageBytes = 32 << 20
	a := Elasticity(opt)[0].String()
	b := Elasticity(opt)[0].String()
	if a != b {
		t.Fatalf("same-seed elasticity runs differ:\n%s\n---\n%s", a, b)
	}
	if strings.Contains(a, "FAILED") {
		t.Fatalf("elasticity cell failed:\n%s", a)
	}
	for _, name := range []string{"pre-storm", "storm", "drain", "recovered"} {
		if !strings.Contains(a, name) {
			t.Fatalf("missing phase %q in:\n%s", name, a)
		}
	}
}
