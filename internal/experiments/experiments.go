// Package experiments regenerates every table and figure in the paper's
// evaluation (§5). Each FigN function builds the scenario from scratch —
// machines, network, storage server, platform — runs the measurement, and
// returns report tables whose rows mirror what the paper plots.
//
// Absolute numbers come from the calibrated models; the claims worth
// checking are the comparisons: who wins, by how much, and where the
// crossovers sit. EXPERIMENTS.md records paper-vs-measured for each row.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// Options scale and seed an experiment run.
type Options struct {
	Seed int64
	// ImageBytes is the OS image size (the paper uses 32 GB). Figures
	// that must finish a whole deployment honor DevirtImageBytes
	// instead, so they reach the de-virtualized state quickly.
	ImageBytes       int64
	DevirtImageBytes int64
	// DBSeconds bounds the steady-state database measurement windows.
	DBSeconds sim.Duration
	// MPIIterations / RDMAIterations bound the network microbenchmarks.
	MPIIterations  int
	RDMAIterations int
	// FleetInstances sizes the fleet fast-path cell (<= 0 means 256).
	FleetInstances int
	// EnableTrace records structured spans during the fleet cell so
	// critical-path attribution can be computed; traced runs also wait
	// for every instance to reach bare metal (so all spans close),
	// which at paper scale means copying the whole image per instance —
	// enable it only on reduced-scale runs.
	EnableTrace bool
	// BootBytes overrides the guest boot profile size in the fleet cell
	// (0 = the calibrated default profile).
	BootBytes int64

	// Shards > 0 runs the fleet and elasticity cells on the parallel
	// shard executor (DESIGN.md §13): one domain per node plus a hub,
	// executed by up to Shards workers. Output is byte-identical at
	// every Shards value ≥ 1; it differs from the Shards == 0
	// single-kernel schedule, so compare sharded runs with sharded runs.
	Shards int

	// observe, when set, receives each fleet-cell testbed's trace
	// recorder and metrics snapshot as the run finishes. The runner
	// uses it for the open-span leak check and to surface the trace to
	// the CLI's -trace-out / -metrics-out.
	observe func(tr *trace.Recorder, snap metrics.Snapshot)
}

// Default returns paper-scale options.
func Default() Options {
	return Options{
		Seed:             1,
		ImageBytes:       32 << 30,
		DevirtImageBytes: 1 << 30,
		DBSeconds:        120 * sim.Second,
		MPIIterations:    100,
		RDMAIterations:   1000,
		FleetInstances:   256,
	}
}

// Quick returns reduced-scale options for benchmarks and smoke tests.
func Quick() Options {
	o := Default()
	o.ImageBytes = 2 << 30
	o.DevirtImageBytes = 256 << 20
	o.DBSeconds = 30 * sim.Second
	o.MPIIterations = 20
	o.RDMAIterations = 200
	o.FleetInstances = 16
	return o
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(Options) []*report.Table
}

// Registry lists every figure runner in figure order.
func Registry() []Runner {
	return []Runner{
		{"fig4", "OS startup time (Baremetal, BMcast, Image Copy, NFS Root, KVM/NFS, KVM/iSCSI)", Fig4},
		{"fig5", "memcached and Cassandra throughput/latency through deployment and de-virtualization", Fig5},
		{"fig6", "MPI collective latency on a 10-node cluster", Fig6},
		{"fig7", "kernbench elapsed time", Fig7},
		{"fig8", "SysBench threads (lock-holder preemption)", Fig8},
		{"fig9", "SysBench memory", Fig9},
		{"fig10", "fio storage throughput", Fig10},
		{"fig11", "ioping storage latency", Fig11},
		{"fig12", "InfiniBand RDMA throughput", Fig12},
		{"fig13", "InfiniBand RDMA latency", Fig13},
		{"fig14", "Background-copy moderation sweep", Fig14},
		{"scale", "Scale-up: N simultaneous instances, BMcast vs image copy (§5.1 claim)", Scale},
		{"fleet", "Fleet fast path: 256 instances from one vblade, serving cache on/off", Fleet},
		{"elasticity", "Elastic control plane: tenant traffic through a fault storm (shed/quarantine/recover)", Elasticity},
	}
}

// Lookup finds a runner by ID.
func Lookup(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// platform identifies the system under test for the workload figures.
type platform int

const (
	platBaremetal platform = iota
	platDeploy             // BMcast, deployment in progress
	platDevirt             // BMcast, after de-virtualization
	platKVM                // KVM with virtio storage on the local disk
)

func (pl platform) String() string {
	switch pl {
	case platBaremetal:
		return "Baremetal"
	case platDeploy:
		return "Deploy"
	case platDevirt:
		return "Devirt"
	default:
		return "KVM"
	}
}

// rig is a prepared system under test: a booted platform with an
// initialized block driver, ready to run a workload.
type rig struct {
	tb  *testbed.Testbed
	n   *testbed.Node
	os  *guest.OS
	kvm *baseline.KVM
}

// prepare builds the platform. For platDeploy the background copy is
// running against opt.ImageBytes; for platDevirt a small image is
// deployed to completion first so measurements happen on genuine
// de-virtualized state.
func prepare(opt Options, pl platform) *rig {
	tcfg := testbed.DefaultConfig()
	tcfg.Seed = opt.Seed
	switch pl {
	case platDeploy:
		tcfg.ImageBytes = opt.ImageBytes
	case platDevirt:
		tcfg.ImageBytes = opt.DevirtImageBytes
	default:
		tcfg.ImageBytes = opt.DevirtImageBytes
	}
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second // firmware is irrelevant to workloads
	r := &rig{tb: tb, n: n, os: n.OS}

	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 16 << 20 // abbreviated boot: workloads start warm
	bp.CPUTime = 2 * sim.Second
	bp.SpanSectors = tcfg.ImageBytes / 2 / 512

	switch pl {
	case platBaremetal:
		tb.K.Spawn("prep", func(p *sim.Proc) {
			if err := tb.BootBareMetal(p, n, bp); err != nil {
				panic(fmt.Sprintf("experiments: bare-metal prep: %v", err))
			}
		})
		tb.K.Run()
	case platDeploy:
		tb.K.Spawn("prep", func(p *sim.Proc) {
			if _, err := tb.DeployBMcast(p, n, core.DefaultConfig(), bp); err != nil {
				panic(fmt.Sprintf("experiments: deploy prep: %v", err))
			}
			tb.K.Stop() // stop as soon as the guest is up; copy continues
		})
		tb.K.Run()
	case platDevirt:
		tb.K.Spawn("prep", func(p *sim.Proc) {
			vcfg := core.DefaultConfig()
			vcfg.WriteInterval = 2 * sim.Millisecond // finish the small image fast
			res, err := tb.DeployBMcast(p, n, vcfg, bp)
			if err != nil {
				panic(fmt.Sprintf("experiments: devirt prep: %v", err))
			}
			tb.WaitBareMetal(p, n, res)
			tb.K.Stop()
		})
		tb.K.Run()
	case platKVM:
		n.M.SetDiskImage(tb.Image)
		tb.K.Spawn("prep", func(p *sim.Proc) {
			kvm, err := baseline.StartKVM(p, n.M, baseline.DefaultKVMConfig(), baseline.KVMLocal, nil)
			if err != nil {
				panic(fmt.Sprintf("experiments: kvm prep: %v", err))
			}
			r.kvm = kvm
			r.os = kvm.OS
			if err := kvm.OS.Drv.Init(p); err != nil {
				panic(fmt.Sprintf("experiments: kvm driver init: %v", err))
			}
		})
		tb.K.Run()
	}
	return r
}

// measure runs fn in a process and drives the simulation until it
// finishes (bounded, so platforms with perpetual background activity
// still return).
func (r *rig) measure(fn func(p *sim.Proc)) {
	done := false
	r.tb.K.Spawn("measure", func(p *sim.Proc) {
		fn(p)
		done = true
		r.tb.K.Stop()
	})
	for !done {
		r.tb.K.RunUntil(r.tb.K.Now().Add(sim.Hour))
		if r.tb.K.Pending() == 0 {
			break
		}
	}
}

// pct formats new/base as a percentage string.
func pct(v, base float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (v/base-1)*100)
}

// sortedKeys returns map keys in sorted order (for deterministic tables).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
