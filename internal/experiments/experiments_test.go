package experiments

import (
	"testing"

	"repro/internal/sim"
)

// tiny returns minimal-scale options so every runner can be smoke-tested.
func tiny() Options {
	return Options{
		Seed:             3,
		ImageBytes:       256 << 20,
		DevirtImageBytes: 64 << 20,
		DBSeconds:        5 * sim.Second,
		MPIIterations:    3,
		RDMAIterations:   20,
		FleetInstances:   4,
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range Registry() {
		ids[r.ID] = true
	}
	for _, want := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "scale", "fleet", "elasticity"} {
		if !ids[want] {
			t.Fatalf("registry missing %s", want)
		}
	}
	if _, ok := Lookup("fig7"); !ok {
		t.Fatal("Lookup(fig7) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
}

// TestFastFiguresProduceRows smoke-runs the cheap figures at tiny scale
// and checks each emits plausible tables. (Fig 4/5/14/scale run full
// deployments and are exercised by the benchmarks instead.)
func TestFastFiguresProduceRows(t *testing.T) {
	for _, id := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, _ := Lookup(id)
			tables := r.Run(tiny())
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
					t.Fatalf("table %q empty", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("table %q row width %d != %d columns", tab.Title, len(row), len(tab.Columns))
					}
				}
			}
		})
	}
}

// TestFig13Ordering pins the paper's qualitative result at tiny scale:
// KVM/Direct pays the IOMMU latency, BMcast does not.
func TestFig13Ordering(t *testing.T) {
	tables := Fig13(tiny())
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("fig13 rows = %d", len(rows))
	}
	if rows[3][2] == "+0.0%" {
		t.Fatal("KVM/Direct shows no latency overhead")
	}
	if rows[2][2] != "+0.0%" {
		t.Fatalf("Devirt shows overhead: %v", rows[2])
	}
}

// TestFleetCacheHitRate pins the fleet fast path's core claim at reduced
// scale: instances booting the same image share one working set, so the
// serving cache absorbs all but the first read of each extent.
func TestFleetCacheHitRate(t *testing.T) {
	opt := tiny()
	opt.FleetInstances = 16
	r, err := FleetRun(opt, opt.FleetInstances, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.HitRate <= 0.9 {
		t.Fatalf("fleet cache hit rate = %.4f, want > 0.9", r.HitRate)
	}
	if r.Served == 0 || r.Elapsed <= 0 || r.Worst <= 0 {
		t.Fatalf("implausible fleet result: %+v", r)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Fig7(tiny())[0].String()
	b := Fig7(tiny())[0].String()
	if a != b {
		t.Fatal("same-seed runs differ")
	}
}
