package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/hw/disk"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// fioRegionLBA is where the fio/ioping test file lives. The workload lays
// the file out first (as fio does), so reads hit guest-written blocks and
// the deployment-phase overhead comes from background-copy interference,
// not from copy-on-read.
const fioRegionLBA = 20 << 21 // 20 GB into the disk

// Fig10 reproduces the storage throughput benchmark (paper Figure 10):
// fio reading and writing 200 MB in 1 MB direct-I/O blocks. Paper:
// Baremetal 116.6/111.9 MB/s; Deploy −4.1% read; Devirt −1.7%; KVM/Local
// −10.5%/−13.6%; KVM/NFS −12.3%/−15.3%; Netboot is network-bound.
func Fig10(opt Options) []*report.Table {
	t := &report.Table{
		Title:   "Fig 10 — fio storage throughput (200 MB, 1 MB blocks)",
		Columns: []string{"platform", "read MB/s", "read vs BM", "write MB/s", "write vs BM"},
	}
	var bmRead, bmWrite float64
	addRow := func(name string, read, write float64) {
		if name == "Baremetal" {
			bmRead, bmWrite = read, write
		}
		t.AddRow(name, fmt.Sprintf("%.1f", read/1e6), pct(read, bmRead),
			fmt.Sprintf("%.1f", write/1e6), pct(write, bmWrite))
	}

	runFio := func(r *rig, initDriver bool) (read, write float64) {
		r.measure(func(p *sim.Proc) {
			if initDriver {
				if err := r.os.Drv.Init(p); err != nil {
					panic(err)
				}
			}
			// Lay out the file, then measure.
			if _, err := workload.Fio(p, r.os, true, 200<<20, 1<<20, fioRegionLBA); err != nil {
				panic(err)
			}
			rr, err := workload.Fio(p, r.os, false, 200<<20, 1<<20, fioRegionLBA)
			if err != nil {
				panic(err)
			}
			wr, err := workload.Fio(p, r.os, true, 200<<20, 1<<20, fioRegionLBA)
			if err != nil {
				panic(err)
			}
			read, write = rr.Throughput, wr.Throughput
		})
		return read, write
	}

	for _, pl := range []platform{platBaremetal, platDeploy, platDevirt, platKVM} {
		r := prepare(opt, pl)
		read, write := runFio(r, pl == platBaremetal || pl == platDevirt)
		name := pl.String()
		if pl == platKVM {
			name = "KVM/Local"
		}
		addRow(name, read, write)
	}

	// Netboot: all I/O over NFS.
	{
		tcfg := testbed.DefaultConfig()
		tcfg.Seed = opt.Seed
		tcfg.ImageBytes = opt.DevirtImageBytes
		tb := testbed.New(tcfg)
		n := tb.AddNode(tcfg)
		n.M.Firmware.InitTime = sim.Second
		rs := baseline.NewRemoteStore(tb.K, "srv-nfs", baseline.NFS, disk.NewSynthImage("big", 32<<30, 5))
		n.OS.SetDriver(baseline.NewNetbootDriver(rs))
		r := &rig{tb: tb, n: n, os: n.OS}
		read, write := runFio(r, true)
		addRow("Netboot", read, write)
	}

	// KVM/NFS.
	{
		tcfg := testbed.DefaultConfig()
		tcfg.Seed = opt.Seed
		tcfg.ImageBytes = opt.DevirtImageBytes
		tb := testbed.New(tcfg)
		n := tb.AddNode(tcfg)
		n.M.Firmware.InitTime = sim.Second
		rs := baseline.NewRemoteStore(tb.K, "srv-nfs", baseline.NFS, disk.NewSynthImage("big", 32<<30, 5))
		rs.Readahead = true
		r := &rig{tb: tb, n: n, os: n.OS}
		tb.K.Spawn("prep", func(p *sim.Proc) {
			kvm, err := baseline.StartKVM(p, n.M, baseline.DefaultKVMConfig(), baseline.KVMNFS, rs)
			if err != nil {
				panic(err)
			}
			r.os = kvm.OS
		})
		tb.K.Run()
		read, write := runFio(r, true)
		addRow("KVM/NFS", read, write)
	}

	t.AddNote("paper: BM 116.6/111.9; Deploy read −4.1%%; Devirt −1.7%%; KVM/Local −10.5/−13.6%%; KVM/NFS −12.3/−15.3%%")
	return []*report.Table{t}
}

// Fig11 reproduces the storage latency benchmark (paper Figure 11):
// ioping-style paced 4 KB reads within a 1 MB window. Paper: Deploy
// +4.3 ms mean (blocking behind multiplexed VMM requests); Devirt adds
// nothing.
func Fig11(opt Options) []*report.Table {
	t := &report.Table{
		Title:   "Fig 11 — ioping storage latency (4 KB reads, 1 MB window)",
		Columns: []string{"platform", "mean ms", "p99 ms", "vs BM mean"},
	}
	var bmMean sim.Duration
	for _, pl := range []platform{platBaremetal, platDeploy, platDevirt, platKVM} {
		r := prepare(opt, pl)
		var res workload.IopingResult
		r.measure(func(p *sim.Proc) {
			if pl == platBaremetal || pl == platDevirt {
				if err := r.os.Drv.Init(p); err != nil {
					panic(err)
				}
			}
			// Lay the probe file out first, as ioping requires an
			// existing file.
			src := disk.Synth{Seed: 0x10, Label: "ioping-file"}
			if err := r.os.WriteSectors(p, disk.Payload{LBA: fioRegionLBA, Count: 2048, Source: src}); err != nil {
				panic(err)
			}
			var err error
			res, err = workload.Ioping(p, r.os, 100, 4096, 200*sim.Millisecond, fioRegionLBA)
			if err != nil {
				panic(err)
			}
		})
		if pl == platBaremetal {
			bmMean = res.Mean
		}
		delta := "-"
		if pl != platBaremetal {
			delta = fmt.Sprintf("%+.1f ms", (res.Mean - bmMean).Milliseconds())
		}
		t.AddRow(pl.String(), fmt.Sprintf("%.2f", res.Mean.Milliseconds()),
			fmt.Sprintf("%.2f", res.P99.Milliseconds()), delta)
	}
	t.AddNote("paper: Deploy +4.3 ms mean (queued behind VMM insertions); Devirt ≈ Baremetal")
	return []*report.Table{t}
}
