package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/hw/ib"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ibPair builds two HCAs on one fabric with the platform's per-operation
// extra latency: zero on bare metal and under BMcast (the HCA is
// untouched in both phases), the IOMMU/interrupt cost on KVM even with
// direct device assignment.
func ibPair(opt Options, pl platform) (*sim.Kernel, *ib.HCA, *ib.HCA) {
	k := sim.New(opt.Seed)
	fabric := ib.QDR4X(k)
	a, b := fabric.NewHCA("a"), fabric.NewHCA("b")
	switch pl {
	case platDeploy:
		// BMcast leaves the HCA alone; the polling threads add only a
		// sliver of host-side interference.
		a.ExtraLatency, b.ExtraLatency = 40*sim.Nanosecond, 40*sim.Nanosecond
	case platKVM:
		x := baseline.DefaultKVMConfig().IBExtraLatency
		a.ExtraLatency, b.ExtraLatency = x, x
	}
	return k, a, b
}

// Fig12 reproduces the InfiniBand throughput benchmark (paper Figure 12):
// ib_rdma_bw with 64 KB messages. Paper: no measurable difference — the
// link saturates and the HCA's command queuing hides everything.
func Fig12(opt Options) []*report.Table {
	t := &report.Table{
		Title:   "Fig 12 — InfiniBand RDMA throughput (64 KB × pipelined)",
		Columns: []string{"platform", "GB/s", "vs BM"},
	}
	var bm float64
	for _, pl := range []platform{platBaremetal, platDeploy, platDevirt, platKVM} {
		k, a, b := ibPair(opt, pl)
		var res workload.RDMABwResult
		k.Spawn("bw", func(p *sim.Proc) {
			res = workload.RDMABandwidth(p, a, b, 64<<10, opt.RDMAIterations, 16)
		})
		k.Run()
		if pl == platBaremetal {
			bm = res.Throughput
		}
		name := pl.String()
		if pl == platKVM {
			name = "KVM/Direct"
		}
		t.AddRow(name, fmt.Sprintf("%.3f", res.Throughput/1e9), pct(res.Throughput, bm))
	}
	t.AddNote("paper: all platforms equal — network saturated, overhead hidden by RDMA command queuing")
	return []*report.Table{t}
}

// Fig13 reproduces the InfiniBand latency benchmark (paper Figure 13):
// ib_rdma_lat with 64 KB messages. Paper: KVM/Direct +23.6% (IOMMU, cache
// pollution, nested paging); BMcast <1% in both phases.
func Fig13(opt Options) []*report.Table {
	t := &report.Table{
		Title:   "Fig 13 — InfiniBand RDMA latency (64 KB × sequential)",
		Columns: []string{"platform", "µs", "vs BM"},
	}
	var bm sim.Duration
	for _, pl := range []platform{platBaremetal, platDeploy, platDevirt, platKVM} {
		k, a, b := ibPair(opt, pl)
		var res workload.RDMALatResult
		k.Spawn("lat", func(p *sim.Proc) {
			res = workload.RDMALatency(p, a, b, 64<<10, opt.RDMAIterations)
		})
		k.Run()
		if pl == platBaremetal {
			bm = res.Mean
		}
		name := pl.String()
		if pl == platKVM {
			name = "KVM/Direct"
		}
		t.AddRow(name, fmt.Sprintf("%.2f", res.Mean.Microseconds()), pct(float64(res.Mean), float64(bm)))
	}
	t.AddNote("paper: KVM/Direct +23.6%%; BMcast <1%% in deployment and after de-virtualization")
	return []*report.Table{t}
}
