package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Fig14 reproduces the moderation study (paper Figure 14): guest read (a)
// and write (b) throughput against the VMM's background-copy write
// throughput while the VMM write interval sweeps from 1 s down to 1 µs
// and finally full speed. The sum stays below bare metal because the
// guest and VMM write different disk regions, adding seeks — exactly the
// paper's observation.
func Fig14(opt Options) []*report.Table {
	intervals := []sim.Duration{
		sim.Second, 100 * sim.Millisecond, 10 * sim.Millisecond,
		sim.Millisecond, 100 * sim.Microsecond, 10 * sim.Microsecond,
		sim.Microsecond, 0, // 0 = full speed
	}
	var tables []*report.Table
	for _, guestWrites := range []bool{false, true} {
		sub := "a: guest reads"
		if guestWrites {
			sub = "b: guest writes"
		}
		t := &report.Table{
			Title:   "Fig 14" + sub + " vs VMM write interval (1024 KB VMM blocks)",
			Columns: []string{"interval", "guest MB/s", "vmm MB/s", "sum MB/s"},
		}
		// Bare-metal reference: the guest stream alone.
		bmRate := fig14Guest(opt, guestWrites, nil)
		t.AddRow("Baremetal", fmt.Sprintf("%.1f", bmRate/1e6), "-", fmt.Sprintf("%.1f", bmRate/1e6))
		for _, iv := range intervals {
			g, v := fig14Point(opt, guestWrites, iv)
			label := iv.String()
			if iv == 0 {
				label = "Full-speed"
			}
			t.AddRow(label, fmt.Sprintf("%.1f", g/1e6), fmt.Sprintf("%.1f", v/1e6),
				fmt.Sprintf("%.1f", (g+v)/1e6))
		}
		t.AddNote("paper: guest throughput falls and VMM throughput rises as the interval shrinks;")
		t.AddNote("the sum stays below bare metal due to seeks between guest and VMM regions")
		tables = append(tables, t)
	}
	return tables
}

// fig14Guest measures the guest stream alone on bare metal.
func fig14Guest(opt Options, writes bool, _ any) float64 {
	r := prepare(opt, platBaremetal)
	var rate float64
	r.measure(func(p *sim.Proc) {
		if err := r.os.Drv.Init(p); err != nil {
			panic(err)
		}
		res, err := workload.Fio(p, r.os, writes, 200<<20, 1<<20, fioRegionLBA)
		if err != nil {
			panic(err)
		}
		rate = res.Throughput
	})
	return rate
}

// fig14Point measures one sweep point: guest stream + background copy at
// the given interval with moderation's frequency threshold disabled (the
// paper controls the interval directly here).
func fig14Point(opt Options, guestWrites bool, interval sim.Duration) (guestRate, vmmRate float64) {
	tcfg := testbed.DefaultConfig()
	tcfg.Seed = opt.Seed
	tcfg.ImageBytes = opt.ImageBytes
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second

	vcfg := core.DefaultConfig()
	vcfg.WriteInterval = interval
	vcfg.GuestIOFreqThreshold = 1e12 // moderation threshold out of the way

	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 8 << 20
	bp.CPUTime = sim.Second
	bp.SpanSectors = tcfg.ImageBytes / 2 / 512

	done := false
	tb.K.Spawn("fig14", func(p *sim.Proc) {
		if _, err := tb.DeployBMcast(p, n, vcfg, bp); err != nil {
			panic(err)
		}
		// Lay the guest file out, then measure a 200 MB stream while the
		// copy runs at the configured pace.
		if !guestWrites {
			if _, err := workload.Fio(p, n.OS, true, 200<<20, 1<<20, fioRegionLBA); err != nil {
				panic(err)
			}
		}
		copiedBefore := n.VMM.CopiedBytes.Value()
		start := p.Now()
		res, err := workload.Fio(p, n.OS, guestWrites, 200<<20, 1<<20, fioRegionLBA)
		if err != nil {
			panic(err)
		}
		window := p.Now().Sub(start)
		guestRate = res.Throughput
		vmmRate = float64(n.VMM.CopiedBytes.Value()-copiedBefore) / window.Seconds()
		done = true
		tb.K.Stop()
	})
	for !done && tb.K.Pending() > 0 {
		tb.K.RunUntil(tb.K.Now().Add(sim.Hour))
	}
	return guestRate, vmmRate
}
