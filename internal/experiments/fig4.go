package experiments

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Fig4 reproduces the OS startup time comparison (paper Figure 4): six
// deployment strategies for the same 32 GB image on gigabit Ethernet. The
// paper's headline: BMcast starts a bare-metal instance 8.6× faster than
// image copying (excluding the initial firmware initialization all
// strategies share).
func Fig4(opt Options) []*report.Table {
	t := &report.Table{
		Title:   "Fig 4 — OS startup time (32 GB image, GbE)",
		Columns: []string{"scenario", "firmware", "vmm/installer", "transfer", "restart", "os-boot", "total", "total-excl-fw"},
	}
	bp := guest.DefaultBootProfile()
	// Keep the boot trace inside the image at reduced scales.
	if max := opt.ImageBytes / 2 / 512; bp.SpanSectors > max {
		bp.SpanSectors = max
	}
	row := func(name string, fw, stage1, transfer, restart, boot sim.Duration) (total, excl sim.Duration) {
		total = fw + stage1 + transfer + restart + boot
		excl = total - fw
		t.AddRow(name, fw, stage1, transfer, restart, boot, total, excl)
		return total, excl
	}
	dash := sim.Duration(0)

	newTB := func(imageBytes int64) (*testbed.Testbed, *testbed.Node) {
		tcfg := testbed.DefaultConfig()
		tcfg.Seed = opt.Seed
		tcfg.ImageBytes = imageBytes
		tb := testbed.New(tcfg)
		return tb, tb.AddNode(tcfg)
	}

	// Baremetal: power on a machine whose disk already holds the image.
	{
		tb, n := newTB(opt.ImageBytes)
		var fw, boot sim.Duration
		tb.K.Spawn("bm", func(p *sim.Proc) {
			start := p.Now()
			if err := tb.BootBareMetal(p, n, bp); err != nil {
				panic(err)
			}
			fw = n.M.Firmware.InitTime
			boot = p.Now().Sub(start) - fw
			tb.K.Stop()
		})
		tb.K.Run()
		row("Baremetal", fw, dash, dash, dash, boot)
	}

	// BMcast: firmware once, VMM network boot, mediated OS boot.
	var bmcastExcl sim.Duration
	var fetchedMB float64
	{
		tb, n := newTB(opt.ImageBytes)
		var res *testbed.BMcastResult
		tb.K.Spawn("bmcast", func(p *sim.Proc) {
			r, err := tb.DeployBMcast(p, n, core.DefaultConfig(), bp)
			if err != nil {
				panic(err)
			}
			res = r
			fetchedMB = float64(n.VMM.FetchedBytes.Value()) / 1e6
			tb.K.Stop() // startup measured; deployment continues off-figure
		})
		tb.K.Run()
		fw := res.FirmwareDone.Sub(0)
		vmm := res.VMMBooted.Sub(res.FirmwareDone)
		boot := res.GuestBooted.Sub(res.VMMBooted)
		_, bmcastExcl = row("BMcast", fw, vmm, dash, dash, boot)
	}

	// Image Copy: installer netboot, full transfer, reboot, OS boot.
	var copyExcl sim.Duration
	{
		tb, n := newTB(opt.ImageBytes)
		rs := baseline.NewRemoteStore(tb.K, "srv-iscsi", baseline.ISCSI, tb.Image)
		var res *baseline.ImageCopyResult
		tb.K.Spawn("copy", func(p *sim.Proc) {
			r, err := baseline.DeployImageCopy(p, n.M, n.OS, baseline.DefaultImageCopyConfig(), rs, bp)
			if err != nil {
				panic(err)
			}
			res = r
			tb.K.Stop()
		})
		tb.K.Run()
		fw := res.FirmwareDone.Sub(0) - n.M.Firmware.PXETime
		installer := res.InstallerUp.Sub(res.FirmwareDone) + n.M.Firmware.PXETime
		transfer := res.TransferDone.Sub(res.InstallerUp)
		restart := res.RestartDone.Sub(res.TransferDone)
		boot := res.GuestBootedAt.Sub(res.RestartDone)
		_, copyExcl = row("Image Copy", fw, installer, transfer, restart, boot)
	}

	// NFS Root: network boot, no local deployment at all.
	{
		tb, n := newTB(opt.ImageBytes)
		rs := baseline.NewRemoteStore(tb.K, "srv-nfs", baseline.NFS, tb.Image)
		var fw, boot sim.Duration
		tb.K.Spawn("netboot", func(p *sim.Proc) {
			start := p.Now()
			if err := baseline.BootNetboot(p, n.M, n.OS, rs, bp); err != nil {
				panic(err)
			}
			fw = n.M.Firmware.InitTime
			boot = p.Now().Sub(start) - fw
			tb.K.Stop()
		})
		tb.K.Run()
		row("NFS Root", fw, dash, dash, dash, boot)
	}

	// KVM over NFS and iSCSI.
	for _, kv := range []struct {
		name    string
		proto   baseline.Protocol
		storage baseline.KVMStorage
		ra      bool
	}{
		{"KVM/NFS", baseline.NFS, baseline.KVMNFS, true},
		{"KVM/iSCSI", baseline.ISCSI, baseline.KVMISCSI, false},
	} {
		tb, n := newTB(opt.ImageBytes)
		rs := baseline.NewRemoteStore(tb.K, "srv", kv.proto, tb.Image)
		rs.Readahead = kv.ra
		var fw, host, boot sim.Duration
		tb.K.Spawn("kvm", func(p *sim.Proc) {
			kvm, err := baseline.StartKVM(p, n.M, baseline.DefaultKVMConfig(), kv.storage, rs)
			if err != nil {
				panic(err)
			}
			if err := kvm.BootGuest(p, bp); err != nil {
				panic(err)
			}
			fw = n.M.Firmware.InitTime
			host = kvm.BootedAt.Sub(0) - fw
			boot = kvm.GuestBootedAt.Sub(kvm.BootedAt)
			tb.K.Stop()
		})
		tb.K.Run()
		row(kv.name, fw, host, dash, dash, boot)
	}

	speedup := float64(copyExcl) / float64(bmcastExcl)
	t.AddNote("BMcast vs image copy (excl. firmware): %.1fx faster (paper: 8.6x)", speedup)
	t.AddNote("BMcast transferred %.0f MB during boot (paper: 72 MB redirected + prefetch)", fetchedMB)
	return []*report.Table{t}
}
