package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// dbRun is one platform's database measurement.
type dbRun struct {
	name       string
	tput       *metrics.Series
	lat        *metrics.Series
	deployedAt sim.Time // de-virtualization instant (BMcast only)
	runStart   sim.Time
}

// Fig5 reproduces the database benchmark (paper Figure 5): a freshly
// launched instance serves YCSB traffic while BMcast streams the OS image
// underneath; throughput and latency shift to bare-metal levels at
// de-virtualization with no interruption. The KVM baseline runs the same
// workload without any deployment cost.
func Fig5(opt Options) []*report.Table {
	var tables []*report.Table
	for _, prof := range []workload.DBProfile{workload.Memcached(), workload.Cassandra()} {
		tables = append(tables, fig5One(opt, prof))
	}
	return tables
}

func fig5One(opt Options, prof workload.DBProfile) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Fig 5 — %s under YCSB (%.0f%% reads)",
			prof.Name, prof.ReadFraction*100),
		Columns: []string{"platform", "phase", "throughput T/s", "vs BM", "latency µs", "vs BM"},
	}

	bm := fig5Steady(opt, platBaremetal, prof)
	kvm := fig5Steady(opt, platKVM, prof)
	bmc := fig5BMcast(opt, prof)

	bmTput, bmLat := bm.tput.Mean(), bm.lat.Mean()
	t.AddRow("Baremetal", "steady", fmt.Sprintf("%.0f", bmTput), "100%", fmt.Sprintf("%.0f", bmLat), "100%")
	t.AddRow("KVM", "steady", fmt.Sprintf("%.0f", kvm.tput.Mean()), pct(kvm.tput.Mean(), bmTput),
		fmt.Sprintf("%.0f", kvm.lat.Mean()), pct(kvm.lat.Mean(), bmLat))

	// BMcast split at de-virtualization.
	depTput := bmc.tput.MeanBetween(bmc.runStart, bmc.deployedAt)
	depLat := bmc.lat.MeanBetween(bmc.runStart, bmc.deployedAt)
	postTput := bmc.tput.MeanBetween(bmc.deployedAt, bmc.deployedAt.Add(sim.Hour))
	postLat := bmc.lat.MeanBetween(bmc.deployedAt, bmc.deployedAt.Add(sim.Hour))
	t.AddRow("BMcast", "deploying", fmt.Sprintf("%.0f", depTput), pct(depTput, bmTput),
		fmt.Sprintf("%.0f", depLat), pct(depLat, bmLat))
	t.AddRow("BMcast", "de-virtualized", fmt.Sprintf("%.0f", postTput), pct(postTput, bmTput),
		fmt.Sprintf("%.0f", postLat), pct(postLat, bmLat))

	t.AddNote("deployment phase lasted %.0f s after workload start (paper: %s)",
		bmc.deployedAt.Sub(bmc.runStart).Seconds(),
		map[string]string{"memcached": "≈960 s", "cassandra": "≈1020 s"}[prof.Name])
	t.AddNote("throughput over time (10 bins): %s", report.SeriesSummary(bmc.tput, 10))
	t.AddNote("latency µs over time (10 bins): %s", report.SeriesSummary(bmc.lat, 10))
	return t
}

// fig5Steady measures the workload on a steady platform.
func fig5Steady(opt Options, pl platform, prof workload.DBProfile) dbRun {
	r := prepare(opt, pl)
	y := workload.NewYCSB(r.os, prof)
	r.measure(func(p *sim.Proc) {
		if pl == platBaremetal || pl == platDevirt {
			if err := r.os.Drv.Init(p); err != nil {
				panic(err)
			}
		}
		y.Run(p, opt.DBSeconds)
	})
	return dbRun{name: pl.String(), tput: &y.Throughput, lat: &y.Latency}
}

// fig5BMcast deploys with BMcast and runs the workload from guest boot
// through de-virtualization plus a post-window.
func fig5BMcast(opt Options, prof workload.DBProfile) dbRun {
	tcfg := testbed.DefaultConfig()
	tcfg.Seed = opt.Seed
	tcfg.ImageBytes = opt.ImageBytes
	tb := testbed.New(tcfg)
	n := tb.AddNode(tcfg)
	n.M.Firmware.InitTime = sim.Second

	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 16 << 20
	bp.CPUTime = 2 * sim.Second
	bp.SpanSectors = tcfg.ImageBytes / 2 / 512

	y := workload.NewYCSB(n.OS, prof)
	run := dbRun{name: "BMcast"}
	done := false
	tb.K.Spawn("fig5", func(p *sim.Proc) {
		res, err := tb.DeployBMcast(p, n, core.DefaultConfig(), bp)
		if err != nil {
			panic(err)
		}
		run.runStart = p.Now()
		// Run until de-virtualization, then a post-window.
		tb.K.Spawn("ycsb", func(wp *sim.Proc) { y.Run(wp, 4*sim.Hour) })
		tb.WaitBareMetal(p, n, res)
		run.deployedAt = n.VMM.DevirtedAt
		p.Sleep(opt.DBSeconds)
		y.Stop()
		done = true
		tb.K.Stop()
	})
	for !done && tb.K.Pending() > 0 {
		tb.K.RunUntil(tb.K.Now().Add(sim.Hour))
	}
	run.tput, run.lat = &y.Throughput, &y.Latency
	return run
}
