package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Fig6 reproduces the MPI benchmark (paper Figure 6): OSU collective
// latencies across a 10-node InfiniBand cluster with every node on bare
// metal, on BMcast (deploying), and on KVM. The paper's result: BMcast is
// nearly indistinguishable from bare metal (Allreduce +22% worst case)
// while KVM reaches 235% on Allgather.
func Fig6(opt Options) []*report.Table {
	const nodes = 10
	const msgBytes = 64 << 10

	run := func(pl platform) map[workload.Collective]sim.Duration {
		tcfg := testbed.DefaultConfig()
		tcfg.Seed = opt.Seed
		tcfg.ImageBytes = opt.DevirtImageBytes
		tb := testbed.New(tcfg)
		var machines []*machine.Machine
		for i := 0; i < nodes; i++ {
			n := tb.AddNode(tcfg)
			n.M.Firmware.InitTime = sim.Second
			machines = append(machines, n.M)
			// Apply the platform's steady-state overheads per node. The
			// BMcast case models all ten nodes mid-deployment: the VMM's
			// CPU share and jitter are active, the HCA untouched.
			switch pl {
			case platDeploy:
				vcfg := core.DefaultConfig()
				n.M.World.EnterVMX()
				n.M.World.Overheads.MemPenalty = vcfg.DeployMemPenalty
				n.M.World.Overheads.CPUTaxStatic = vcfg.CoreTax + 0.05 // copy threads
				n.M.World.Overheads.SchedJitter = vcfg.DeployJitter
			case platKVM:
				kcfg := baseline.DefaultKVMConfig()
				n.M.World.EnterVMX()
				n.M.World.Overheads.MemPenalty = kcfg.MemPenalty
				n.M.World.Overheads.CPUTaxStatic = kcfg.CPUTax
				n.M.World.Overheads.SchedJitter = kcfg.SchedJitter
				n.M.IB.ExtraLatency = kcfg.IBExtraLatency
			}
		}
		cl, err := workload.NewMPICluster(tb.K, machines)
		if err != nil {
			panic(err)
		}
		out := make(map[workload.Collective]sim.Duration)
		done := false
		tb.K.Spawn("mpi", func(p *sim.Proc) {
			for _, c := range workload.AllCollectives() {
				out[c] = cl.Latency(p, c, msgBytes, opt.MPIIterations)
			}
			done = true
			tb.K.Stop()
		})
		for !done && tb.K.Pending() > 0 {
			tb.K.RunUntil(tb.K.Now().Add(sim.Hour))
		}
		return out
	}

	bm := run(platBaremetal)
	bmc := run(platDeploy)
	kvm := run(platKVM)

	t := &report.Table{
		Title:   fmt.Sprintf("Fig 6 — MPI collective latency (%d nodes, %d KB msgs)", nodes, msgBytes>>10),
		Columns: []string{"collective", "Baremetal µs", "BMcast µs", "BMcast vs BM", "KVM µs", "KVM vs BM"},
	}
	for _, c := range workload.AllCollectives() {
		t.AddRow(c.String(),
			fmt.Sprintf("%.1f", bm[c].Microseconds()),
			fmt.Sprintf("%.1f", bmc[c].Microseconds()),
			pct(float64(bmc[c]), float64(bm[c])),
			fmt.Sprintf("%.1f", kvm[c].Microseconds()),
			pct(float64(kvm[c]), float64(bm[c])))
	}
	t.AddNote("paper: KVM Allgather 235%% of bare metal; Allreduce BMcast +22%%, KVM +35%%")
	t.AddNote("BMcast nodes modeled mid-deployment with the VMM's measured steady overheads")
	return []*report.Table{t}
}
