package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig7 reproduces the kernel-compile benchmark (paper Figure 7): kernbench
// (`make -j12 allnoconfig`, ≈16 s on bare metal) on the four platforms.
// Paper: Deploy +8%, KVM +3%, Devirt identical to bare metal.
func Fig7(opt Options) []*report.Table {
	t := &report.Table{
		Title:   "Fig 7 — kernbench elapsed time",
		Columns: []string{"platform", "elapsed s", "vs Baremetal"},
	}
	var base sim.Duration
	for _, pl := range []platform{platBaremetal, platDeploy, platDevirt, platKVM} {
		r := prepare(opt, pl)
		var res workload.KernbenchResult
		r.measure(func(p *sim.Proc) {
			var err error
			res, err = workload.Kernbench(p, r.os)
			if err != nil {
				panic(err)
			}
		})
		if pl == platBaremetal {
			base = res.Elapsed
		}
		t.AddRow(pl.String(), fmt.Sprintf("%.2f", res.Elapsed.Seconds()), pct(float64(res.Elapsed), float64(base)))
	}
	t.AddNote("paper: Baremetal ≈16 s; Deploy +8%%; KVM +3%%; Devirt = Baremetal")
	return []*report.Table{t}
}
