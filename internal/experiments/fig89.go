package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig8 reproduces the SysBench thread benchmark (paper Figure 8): 1–24
// threads performing acquire–yield–release over 8 mutexes. Paper: KVM's
// lock-holder preemption reaches +68% at 24 threads; BMcast stays around
// +6% even mid-deployment.
func Fig8(opt Options) []*report.Table {
	threadCounts := []int{1, 2, 4, 8, 12, 16, 20, 24}
	t := &report.Table{
		Title:   "Fig 8 — SysBench threads (8 mutexes, 1000 iterations)",
		Columns: []string{"threads", "Baremetal ms", "Deploy ms", "Deploy vs BM", "KVM ms", "KVM vs BM"},
	}
	results := make(map[platform][]sim.Duration)
	for _, pl := range []platform{platBaremetal, platDeploy, platKVM} {
		r := prepare(opt, pl)
		r.measure(func(p *sim.Proc) {
			for _, n := range threadCounts {
				res := workload.SysbenchThreads(p, r.n.M, n)
				results[pl] = append(results[pl], res.Elapsed)
			}
		})
	}
	for i, n := range threadCounts {
		bm := results[platBaremetal][i]
		dep := results[platDeploy][i]
		kvm := results[platKVM][i]
		t.AddRow(n,
			fmt.Sprintf("%.2f", bm.Milliseconds()),
			fmt.Sprintf("%.2f", dep.Milliseconds()), pct(float64(dep), float64(bm)),
			fmt.Sprintf("%.2f", kvm.Milliseconds()), pct(float64(kvm), float64(bm)))
	}
	t.AddNote("paper: KVM +68%% at 24 threads (lock-holder preemption); BMcast +6%%")
	return []*report.Table{t}
}

// Fig9 reproduces the SysBench memory benchmark (paper Figure 9): write
// 1 MB in blocks of 1–16 KB. Paper: KVM +35% at 16 KB blocks (nested
// paging + cache pollution); BMcast ≈+6% during deployment.
func Fig9(opt Options) []*report.Table {
	blockSizes := []int64{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10}
	t := &report.Table{
		Title:   "Fig 9 — SysBench memory (1 MB total per pass)",
		Columns: []string{"block", "Baremetal MB/s", "Deploy MB/s", "Deploy vs BM", "KVM MB/s", "KVM vs BM"},
	}
	results := make(map[platform][]workload.MemoryResult)
	for _, pl := range []platform{platBaremetal, platDeploy, platKVM} {
		r := prepare(opt, pl)
		r.measure(func(p *sim.Proc) {
			for _, bs := range blockSizes {
				results[pl] = append(results[pl], workload.SysbenchMemory(p, r.n.M, bs, 1<<20))
			}
		})
	}
	for i, bs := range blockSizes {
		bm := results[platBaremetal][i]
		dep := results[platDeploy][i]
		kvm := results[platKVM][i]
		t.AddRow(fmt.Sprintf("%dK", bs>>10),
			fmt.Sprintf("%.0f", bm.Rate/1e6),
			fmt.Sprintf("%.0f", dep.Rate/1e6), pct(bm.Rate, dep.Rate),
			fmt.Sprintf("%.0f", kvm.Rate/1e6), pct(bm.Rate, kvm.Rate))
	}
	t.AddNote("vs-BM columns show the slowdown of the virtualized platform (positive = slower)")
	t.AddNote("paper: KVM +35%% at 16K blocks; BMcast ≈+6%%")
	return []*report.Table{t}
}
