package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// Fleet cache sizing: a 1 GB serving cache in 128 KB extents. The boot
// working set (≈72 MB per the calibrated profile) plus the shared
// background-copy frontier fit comfortably, so with every instance booting
// the same image the first reader of each extent pays the cold-storage read
// and everyone else is served from memory.
const (
	fleetCacheBudget   = 1 << 30
	fleetExtentSectors = 256
)

// Fleet is the fleet-scale fast-path cell: FleetInstances simultaneous
// BMcast deployments stream one image from one vblade, with and without the
// shared-image serving cache. The cache-off row is the original model
// (every read served from an assumed-infinite page cache); the cache-on row
// makes the server's memory budget explicit and must stay close to it by
// keeping the hit rate high — the §5.1 elasticity claim survives only
// because N instances share one working set.
//
// With Options.EnableTrace the run waits for bare metal on every
// instance, the time-to-bare-metal percentile columns fill in, and a
// second table attributes the fleet's time-to-ready to the obs buckets.
func Fleet(opt Options) []*report.Table {
	fleet := opt.FleetInstances
	if fleet <= 0 {
		fleet = 256
	}
	t := &report.Table{
		Title: fmt.Sprintf("Fleet fast path — %d simultaneous instances from one vblade", fleet),
		Columns: []string{"serving cache", "instances", "p50 ready", "p99 ready", "worst ready",
			"p50 baremetal", "p99 baremetal", "served", "throughput", "hit rate", "evictions"},
	}
	var traced *FleetResult
	for _, cached := range []bool{false, true} {
		r, err := FleetRun(opt, fleet, cached)
		label := "off (ideal page cache)"
		if cached {
			label = fmt.Sprintf("%d MB / %d KB extents", fleetCacheBudget>>20, fleetExtentSectors/2)
		}
		if err != nil {
			t.AddRow(label, fleet, "-", "-", fmt.Sprintf("FAILED (%v)", err), "-", "-", "-", "-", "-", "-")
			continue
		}
		if cached && r.Trace != nil {
			rr := r
			traced = &rr
		}
		hitRate := "-"
		evictions := "-"
		if cached {
			hitRate = fmt.Sprintf("%.4f", r.HitRate)
			evictions = fmt.Sprintf("%d", r.Evictions)
		}
		t.AddRow(label, fleet, r.ReadyP50, r.ReadyP99, r.Worst,
			durOrDash(r.BareP50), durOrDash(r.BareP99),
			fmt.Sprintf("%.1f GB", float64(r.Served)/(1<<30)),
			fmt.Sprintf("%.1f MB/s", float64(r.Served)/r.Elapsed.Seconds()/1e6),
			hitRate, evictions)
	}
	t.AddNote("one gigabit vblade serves every instance's boot + background copy;")
	t.AddNote("cache on: only the first reader of an extent pays cold storage")
	tables := []*report.Table{t}
	if traced != nil {
		if at := fleetAttribution(traced); at != nil {
			tables = append(tables, at)
		}
	} else if opt.EnableTrace {
		t.AddNote("tracing requested but no traced run completed; attribution skipped")
	} else {
		t.AddNote("baremetal percentiles need a traced run (-trace-out); untraced cells stop at ready")
	}
	return tables
}

// durOrDash renders a duration cell, dash when the run never measured it.
func durOrDash(d sim.Duration) any {
	if d == 0 {
		return "-"
	}
	return d
}

// fleetAttribution analyzes the traced run's causal DAG into the
// where-did-the-time-go table.
func fleetAttribution(r *FleetResult) *report.Table {
	rep, err := obs.Analyze(r.Trace, r.Snapshot)
	if err != nil || rep.Fleet.Instances == 0 {
		return nil
	}
	var total int64
	for _, b := range rep.Fleet.Buckets {
		total += b.Dur
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Time-to-ready attribution — %d instances, serving cache on", rep.Fleet.Instances),
		Columns: []string{"bucket", "fleet total", "share", "per-instance mean"},
	}
	for _, b := range rep.Fleet.Buckets {
		share := "-"
		if total > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(b.Dur)/float64(total))
		}
		t.AddRow(b.Name, sim.Duration(b.Dur), share,
			sim.Duration(b.Dur/int64(rep.Fleet.Instances)))
	}
	if n := len(rep.Anomalies); n > 0 {
		a := rep.Anomalies[0]
		t.AddNote(fmt.Sprintf("%d anomalous instance(s); worst: instance %d +%.1f%% vs median, %.1f%% of delta = %s",
			n, a.ID, a.DeltaPct, a.TopSharePct, a.TopBucket))
	}
	t.AddNote("buckets sum exactly to the fleet's total time-to-ready (see DESIGN.md §10)")
	return t
}

// FleetResult is one fleet deployment's aggregate outcome.
type FleetResult struct {
	Worst    sim.Duration // worst time-to-ready across the fleet
	ReadyP50 sim.Duration
	ReadyP99 sim.Duration
	// BareP50/BareP99/BareWorst are time-to-bare-metal percentiles,
	// measured only when the run waited for the full hand-off (traced
	// runs do; untraced runs stop at ready with copies in flight).
	BareP50   sim.Duration
	BareP99   sim.Duration
	BareWorst sim.Duration
	Elapsed   sim.Duration // start to last instance ready
	Served    int64        // bytes the vblade served
	HitRate   float64
	Evictions int64

	// Trace is the run's recorder (nil unless Options.EnableTrace);
	// Snapshot is the end-of-run instrument registry state.
	Trace    *trace.Recorder
	Snapshot metrics.Snapshot
}

// FleetRun deploys fleet simultaneous BMcast instances against one storage
// server, optionally with the serving cache enabled, and waits until every
// instance is ready — plus, when tracing, until every instance reaches
// bare metal, so the recorded spans all close.
func FleetRun(opt Options, fleet int, cached bool) (FleetResult, error) {
	tcfg := testbed.DefaultConfig()
	tcfg.Seed = opt.Seed
	tcfg.ImageBytes = opt.ImageBytes
	tcfg.EnableTrace = opt.EnableTrace
	tcfg.Shards = opt.Shards
	tb := testbed.New(tcfg)
	if cached {
		tb.Server.EnableCache(fleetCacheBudget, fleetExtentSectors)
	}
	c := cloud.NewController(tb, tcfg, fleet)
	if opt.BootBytes > 0 {
		c.BootProfile.TotalBytes = opt.BootBytes
	}
	for _, n := range tb.Nodes {
		n.M.Firmware.InitTime = 2 * sim.Second
	}
	var res FleetResult
	var firstErr error
	done := 0
	finish := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		done++
		if done == fleet {
			res.Elapsed = tb.K.Now().Sub(0)
			if !tb.Sharded() {
				tb.K.Stop() // sharded runs stop at the next window barrier
			}
		}
	}
	for i := 0; i < fleet; i++ {
		tb.K.Spawn("tenant", func(p *sim.Proc) {
			in, err := c.Request(cloud.StrategyBMcast)
			if err != nil {
				finish(fmt.Errorf("request: %w", err))
				return
			}
			if !in.WaitReady(p) {
				finish(fmt.Errorf("deploy: %w", in.Err()))
				return
			}
			if d := in.TimeToReady(); d > res.Worst {
				res.Worst = d
			}
			finish(nil)
		})
	}
	if tb.Sharded() {
		tb.ShardRun(func() bool { return done >= fleet })
	} else {
		for done < fleet && tb.K.Pending() > 0 {
			tb.K.RunUntil(tb.K.Now().Add(sim.Hour))
		}
	}
	if firstErr != nil {
		return FleetResult{}, firstErr
	}
	if tb.Trace != nil {
		// Attribution needs closed spans: keep the simulation running
		// until the background copies finish and every VMM melts away.
		if tb.Sharded() {
			tb.ShardRun(func() bool { return allBareMetal(c) })
		} else {
			for !allBareMetal(c) && tb.K.Pending() > 0 {
				tb.K.RunUntil(tb.K.Now().Add(sim.Hour))
			}
		}
		if !allBareMetal(c) {
			return FleetResult{}, fmt.Errorf("fleet: traced run never reached bare metal on all instances")
		}
		var bm metrics.Histogram
		for _, in := range c.Instances() {
			bm.Observe(in.BareMetalAt.Sub(in.RequestedAt))
		}
		res.BareP50 = bm.Percentile(50)
		res.BareP99 = bm.Percentile(99)
		res.BareWorst = bm.Max()
	}
	res.ReadyP50 = c.TimeToUse.Percentile(50)
	res.ReadyP99 = c.TimeToUse.Percentile(99)
	res.Served = tb.Server.BytesServed.Value()
	res.HitRate = tb.Server.CacheHitRate()
	res.Evictions = tb.Server.CacheEvictions.Value()
	res.Trace = tb.TraceMerged()
	res.Snapshot = tb.Metrics.Snapshot()
	if opt.observe != nil {
		opt.observe(res.Trace, res.Snapshot)
	}
	return res, nil
}

// allBareMetal reports whether every lease finished its hand-off.
func allBareMetal(c *cloud.Controller) bool {
	for _, in := range c.Instances() {
		if in.BareMetalAt == 0 {
			return false
		}
	}
	return true
}
