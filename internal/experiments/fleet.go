package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Fleet cache sizing: a 1 GB serving cache in 128 KB extents. The boot
// working set (≈72 MB per the calibrated profile) plus the shared
// background-copy frontier fit comfortably, so with every instance booting
// the same image the first reader of each extent pays the cold-storage read
// and everyone else is served from memory.
const (
	fleetCacheBudget   = 1 << 30
	fleetExtentSectors = 256
)

// Fleet is the fleet-scale fast-path cell: FleetInstances simultaneous
// BMcast deployments stream one image from one vblade, with and without the
// shared-image serving cache. The cache-off row is the original model
// (every read served from an assumed-infinite page cache); the cache-on row
// makes the server's memory budget explicit and must stay close to it by
// keeping the hit rate high — the §5.1 elasticity claim survives only
// because N instances share one working set.
func Fleet(opt Options) []*report.Table {
	fleet := opt.FleetInstances
	if fleet <= 0 {
		fleet = 256
	}
	t := &report.Table{
		Title: fmt.Sprintf("Fleet fast path — %d simultaneous instances from one vblade", fleet),
		Columns: []string{"serving cache", "instances", "worst ready", "served",
			"throughput", "hit rate", "evictions"},
	}
	for _, cached := range []bool{false, true} {
		r, err := FleetRun(opt, fleet, cached)
		label := "off (ideal page cache)"
		if cached {
			label = fmt.Sprintf("%d MB / %d KB extents", fleetCacheBudget>>20, fleetExtentSectors/2)
		}
		if err != nil {
			t.AddRow(label, fleet, fmt.Sprintf("FAILED (%v)", err), "-", "-", "-", "-")
			continue
		}
		hitRate := "-"
		evictions := "-"
		if cached {
			hitRate = fmt.Sprintf("%.4f", r.HitRate)
			evictions = fmt.Sprintf("%d", r.Evictions)
		}
		t.AddRow(label, fleet, r.Worst,
			fmt.Sprintf("%.1f GB", float64(r.Served)/(1<<30)),
			fmt.Sprintf("%.1f MB/s", float64(r.Served)/r.Elapsed.Seconds()/1e6),
			hitRate, evictions)
	}
	t.AddNote("one gigabit vblade serves every instance's boot + background copy;")
	t.AddNote("cache on: only the first reader of an extent pays cold storage")
	return []*report.Table{t}
}

// FleetResult is one fleet deployment's aggregate outcome.
type FleetResult struct {
	Worst     sim.Duration // worst time-to-ready across the fleet
	Elapsed   sim.Duration // start to last instance ready
	Served    int64        // bytes the vblade served
	HitRate   float64
	Evictions int64
}

// FleetRun deploys fleet simultaneous BMcast instances against one storage
// server, optionally with the serving cache enabled, and waits until every
// instance is ready.
func FleetRun(opt Options, fleet int, cached bool) (FleetResult, error) {
	tcfg := testbed.DefaultConfig()
	tcfg.Seed = opt.Seed
	tcfg.ImageBytes = opt.ImageBytes
	tb := testbed.New(tcfg)
	if cached {
		tb.Server.EnableCache(fleetCacheBudget, fleetExtentSectors)
	}
	c := cloud.NewController(tb, tcfg, fleet)
	for _, n := range tb.Nodes {
		n.M.Firmware.InitTime = 2 * sim.Second
	}
	var res FleetResult
	var firstErr error
	done := 0
	finish := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		done++
		if done == fleet {
			res.Elapsed = tb.K.Now().Sub(0)
			tb.K.Stop()
		}
	}
	for i := 0; i < fleet; i++ {
		tb.K.Spawn("tenant", func(p *sim.Proc) {
			in, err := c.Request(cloud.StrategyBMcast)
			if err != nil {
				finish(fmt.Errorf("request: %w", err))
				return
			}
			if !in.WaitReady(p) {
				finish(fmt.Errorf("deploy: %w", in.Err()))
				return
			}
			if d := in.TimeToReady(); d > res.Worst {
				res.Worst = d
			}
			finish(nil)
		})
	}
	for done < fleet && tb.K.Pending() > 0 {
		tb.K.RunUntil(tb.K.Now().Add(sim.Hour))
	}
	if firstErr != nil {
		return FleetResult{}, firstErr
	}
	res.Served = tb.Server.BytesServed.Value()
	res.HitRate = tb.Server.CacheHitRate()
	res.Evictions = tb.Server.CacheEvictions.Value()
	return res, nil
}
