package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// fleet256Run executes the paper-scale 256-instance fleet cell with tracing
// on and returns its analyzed report plus the serialized JSON. The image and
// boot profile are reduced so the traced run (which must reach bare metal on
// every instance to close all spans) stays inside a test budget; the fleet
// width — the part the paper's elasticity claim rides on — is not.
func fleet256Run(t *testing.T) (*obs.Report, []byte) {
	t.Helper()
	opt := Quick()
	opt.Seed = 1
	opt.ImageBytes = 8 << 20
	opt.BootBytes = 512 << 10
	opt.EnableTrace = true
	res, err := FleetRun(opt, 256, true)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.Analyze(res.Trace, res.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return rep, buf.Bytes()
}

// TestFleet256Attribution pins the acceptance bar for the observability
// layer at the paper's fleet scale: for all 256 instances the attribution
// buckets must sum to within 1% of the measured time-to-ready (the
// hierarchical-subtraction design makes the sum exact, so this asserts
// zero drift and the 1% criterion follows a fortiori), and the analyzer
// report must be byte-identical across two same-seed runs.
func TestFleet256Attribution(t *testing.T) {
	if testing.Short() {
		t.Skip("256-instance traced fleet cell takes ~30s per run")
	}
	rep, js := fleet256Run(t)
	if got := len(rep.Instances); got != 256 {
		t.Fatalf("analyzed %d instances, want 256", got)
	}
	for _, in := range rep.Instances {
		var sum int64
		for _, b := range in.Buckets {
			if b.Dur < 0 {
				t.Fatalf("instance %d (%s): negative bucket %s = %d", in.ID, in.Node, b.Name, b.Dur)
			}
			sum += b.Dur
		}
		if sum != in.TimeToReady {
			t.Errorf("instance %d (%s): buckets sum to %v, time-to-ready %v (drift %v)",
				in.ID, in.Node, sim.Duration(sum), sim.Duration(in.TimeToReady),
				sim.Duration(sum-in.TimeToReady))
		}
		if in.TimeToBareMetal < in.TimeToReady {
			t.Errorf("instance %d (%s): bare metal %v before ready %v",
				in.ID, in.Node, sim.Duration(in.TimeToBareMetal), sim.Duration(in.TimeToReady))
		}
	}
	if rep.Fleet.BareMetal == nil {
		t.Fatal("fleet bare-metal percentile summary missing")
	}
	if rep.Fleet.Ready.P50 <= 0 || rep.Fleet.Ready.P99 < rep.Fleet.Ready.P50 {
		t.Fatalf("time-to-ready percentiles implausible: p50=%v p99=%v",
			sim.Duration(rep.Fleet.Ready.P50), sim.Duration(rep.Fleet.Ready.P99))
	}
	if rep.Fleet.BareMetal.P50 <= 0 || rep.Fleet.BareMetal.P99 < rep.Fleet.BareMetal.P50 {
		t.Fatalf("bare-metal percentiles implausible: p50=%v p99=%v",
			sim.Duration(rep.Fleet.BareMetal.P50), sim.Duration(rep.Fleet.BareMetal.P99))
	}

	_, js2 := fleet256Run(t)
	if !bytes.Equal(js, js2) {
		t.Fatalf("analyzer report not byte-identical across same-seed runs (%d vs %d bytes)",
			len(js), len(js2))
	}
}
