//go:build race

package experiments

// raceEnabled trims the determinism matrices when the race detector is
// on (make chaos / make elasticity): the byte-identity contract is
// already pinned at every shard count by the non-race run, so under
// race we keep one representative sharded comparison and let the
// detector hunt for data races in the parallel executor.
const raceEnabled = true
