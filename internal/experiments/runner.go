package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/trace"
)

// Result is one completed experiment cell: the runner that produced it, the
// tables it emitted, and how long it took in wall-clock time.
type Result struct {
	Runner Runner
	Tables []*report.Table
	// Err is a post-cell integrity failure: currently, spans left open
	// by a traced run (an unclosed span silently corrupts attribution).
	Err error
	// Trace and Snapshot are captured from the cell's traced run (nil /
	// zero unless the cell honored Options.EnableTrace); the CLI's
	// -trace-out and -metrics-out read them.
	Trace    *trace.Recorder
	Snapshot metrics.Snapshot
	Wall     time.Duration
}

// leakCheck flags spans still open after a cell finished. The terminal
// phase spans are the documented exceptions: BareMetal lasts until the
// machine is released and Failed is a tombstone, so both outlive every
// run by design. A nil recorder (untraced cell) passes trivially.
func leakCheck(tr *trace.Recorder) error {
	var leaked []string
	for _, s := range tr.OpenSpanList() {
		if s.Cat == "phase" && (s.Name == "BareMetal" || s.Name == "Failed") {
			continue
		}
		leaked = append(leaked, fmt.Sprintf("%s/%s/%s", s.Node, s.Cat, s.Name))
	}
	if len(leaked) == 0 {
		return nil
	}
	n := len(leaked)
	if n > 8 {
		leaked = append(leaked[:8], fmt.Sprintf("... %d more", n-8))
	}
	return fmt.Errorf("cell leaked %d open span(s): %s", n, strings.Join(leaked, ", "))
}

// DeriveSeed maps (base seed, cell id) to the seed that cell's kernel runs
// with. Each cell gets an independent, reproducible stream: the id is
// hashed (FNV-1a) and folded with the base seed through a splitmix-style
// finalizer. Because a cell's seed depends only on its id and the base
// seed — never on execution order — a parallel sweep is byte-identical to
// a sequential one.
func DeriveSeed(base int64, id string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	x := h ^ uint64(base)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// RunAll executes every runner against opt, at most parallel cells at a
// time, and returns results in registry order regardless of completion
// order. Each cell builds its own sim.Kernel from a seed derived with
// DeriveSeed, so results are identical for every parallel setting,
// including 1. parallel < 1 means GOMAXPROCS.
func RunAll(runners []Runner, opt Options, parallel int) []Result {
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(runners) {
		parallel = len(runners)
	}
	results := make([]Result, len(runners))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		//bmcast:allow simdrift harness worker pool: each cell is its own kernel; results merge by index
		go func() {
			defer wg.Done()
			for i := range jobs {
				i := i
				r := runners[i]
				o := opt
				o.Seed = DeriveSeed(opt.Seed, r.ID)
				o.observe = func(tr *trace.Recorder, snap metrics.Snapshot) {
					results[i].Trace = tr
					results[i].Snapshot = snap
					if err := leakCheck(tr); err != nil && results[i].Err == nil {
						results[i].Err = fmt.Errorf("%s: %w", r.ID, err)
					}
				}
				// Wall-clock timing here is harness instrumentation, not
				// simulation: it measures how long the host took to run the
				// cell (reported on stderr for the operator) and never feeds
				// back into simulated results, so determinism is unaffected.
				start := time.Now() //bmcast:allow walltime harness cell timing, not sim state
				tables := r.Run(o)
				// Field assignments, not a struct literal: the observe
				// hook already filled Trace/Snapshot/Err for this cell.
				results[i].Runner = r
				results[i].Tables = tables
				results[i].Wall = time.Since(start) //bmcast:allow walltime harness cell timing, not sim state
			}
		}()
	}
	for i := range runners {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
