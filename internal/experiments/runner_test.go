package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDeriveSeedIndependentPerCell(t *testing.T) {
	seen := map[int64]string{}
	for _, r := range Registry() {
		s := DeriveSeed(1, r.ID)
		if prev, dup := seen[s]; dup {
			t.Fatalf("cells %s and %s share derived seed %d", prev, r.ID, s)
		}
		seen[s] = r.ID
	}
	if DeriveSeed(1, "fig7") != DeriveSeed(1, "fig7") {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, "fig7") == DeriveSeed(2, "fig7") {
		t.Fatal("DeriveSeed ignores the base seed")
	}
}

// renderAll flattens a result list the way the CLI prints it, so equality
// here is byte-equality of the experiment output.
func renderAll(results []Result) string {
	var b strings.Builder
	for _, res := range results {
		for _, tab := range res.Tables {
			b.WriteString(tab.String())
			b.WriteString(tab.Markdown())
		}
	}
	return b.String()
}

// TestParallelMatchesSequential is the parallel runner's determinism
// contract: the full registry, fanned out across workers, renders the very
// same tables as a one-worker run with the same base seed.
func TestParallelMatchesSequential(t *testing.T) {
	reg := Registry()
	if testing.Short() {
		var cheap []Runner
		for _, r := range reg {
			switch r.ID {
			case "fig6", "fig7", "fig10", "fig13":
				cheap = append(cheap, r)
			}
		}
		reg = cheap
	}
	opt := tiny()
	opt.ImageBytes = 64 << 20 // both sweeps run twice; keep the cells small
	opt.DevirtImageBytes = 32 << 20
	opt.DBSeconds = 2 * sim.Second
	seq := RunAll(reg, opt, 1)
	par := RunAll(reg, opt, 4)
	if len(seq) != len(reg) || len(par) != len(reg) {
		t.Fatalf("result counts: sequential %d, parallel %d, want %d", len(seq), len(par), len(reg))
	}
	for i := range seq {
		if seq[i].Runner.ID != reg[i].ID || par[i].Runner.ID != reg[i].ID {
			t.Fatalf("results out of registry order at %d: %s / %s / %s",
				i, reg[i].ID, seq[i].Runner.ID, par[i].Runner.ID)
		}
	}
	a, b := renderAll(seq), renderAll(par)
	if a != b {
		t.Fatalf("parallel output diverges from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
}
