package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Scale supports the paper's §5.1 elasticity argument: BMcast moves only
// ~90 MB per boot, so many instances can start simultaneously without
// saturating the storage server, while image copy serializes whole-image
// transfers behind the shared link. Not a numbered figure in the paper;
// reported as worst-case time-to-ready per fleet size.
func Scale(opt Options) []*report.Table {
	fleets := []int{1, 2, 4, 8}
	t := &report.Table{
		Title:   "Scale-up — worst time-to-ready for N simultaneous instances",
		Columns: []string{"instances", "BMcast", "Image Copy", "ratio"},
	}
	for _, n := range fleets {
		bm := scaleRun(opt, cloud.StrategyBMcast, n)
		ic := scaleRun(opt, cloud.StrategyImageCopy, n)
		t.AddRow(n, bm, ic, fmt.Sprintf("%.1fx", float64(ic)/float64(bm)))
	}
	t.AddNote("paper §5.1: BMcast's 1.2 MB/s per booting instance leaves room to scale;")
	t.AddNote("image copy saturates the server link and serializes")
	return []*report.Table{t}
}

func scaleRun(opt Options, s cloud.Strategy, fleet int) sim.Duration {
	tcfg := testbed.DefaultConfig()
	tcfg.Seed = opt.Seed
	tcfg.ImageBytes = opt.ImageBytes
	tb := testbed.New(tcfg)
	c := cloud.NewController(tb, tcfg, fleet)
	for _, n := range tb.Nodes {
		n.M.Firmware.InitTime = 2 * sim.Second
	}
	var worst sim.Duration
	done := 0
	for i := 0; i < fleet; i++ {
		tb.K.Spawn("tenant", func(p *sim.Proc) {
			in, err := c.Request(s)
			if err != nil {
				panic(err)
			}
			if !in.WaitReady(p) {
				panic(in.Err())
			}
			if d := in.TimeToReady(); d > worst {
				worst = d
			}
			done++
			if done == fleet {
				tb.K.Stop()
			}
		})
	}
	for done < fleet && tb.K.Pending() > 0 {
		tb.K.RunUntil(tb.K.Now().Add(sim.Hour))
	}
	return worst
}
