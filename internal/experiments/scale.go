package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Scale supports the paper's §5.1 elasticity argument: BMcast moves only
// ~90 MB per boot, so many instances can start simultaneously without
// saturating the storage server, while image copy serializes whole-image
// transfers behind the shared link. Not a numbered figure in the paper;
// reported as worst-case time-to-ready per fleet size.
func Scale(opt Options) []*report.Table {
	fleets := []int{1, 2, 4, 8}
	t := &report.Table{
		Title:   "Scale-up — worst time-to-ready for N simultaneous instances",
		Columns: []string{"instances", "BMcast", "BMcast p50", "BMcast p99", "Image Copy", "ratio"},
	}
	for _, n := range fleets {
		bm, bmErr := scaleRun(opt, cloud.StrategyBMcast, n)
		ic, icErr := scaleRun(opt, cloud.StrategyImageCopy, n)
		if bmErr != nil || icErr != nil {
			t.AddRow(n, scaleCell(bm.Worst, bmErr), scaleCell(bm.P50, bmErr), scaleCell(bm.P99, bmErr),
				scaleCell(ic.Worst, icErr), "-")
			continue
		}
		t.AddRow(n, bm.Worst, bm.P50, bm.P99, ic.Worst,
			fmt.Sprintf("%.1fx", float64(ic.Worst)/float64(bm.Worst)))
	}
	t.AddNote("paper §5.1: BMcast's 1.2 MB/s per booting instance leaves room to scale;")
	t.AddNote("image copy saturates the server link and serializes")
	return []*report.Table{t}
}

// scaleCell renders a duration cell, or the failure that replaced it.
func scaleCell(d sim.Duration, err error) string {
	if err != nil {
		return fmt.Sprintf("FAILED (%v)", err)
	}
	return d.String()
}

// scaleResult is one scale run's time-to-ready summary.
type scaleResult struct {
	Worst sim.Duration
	P50   sim.Duration
	P99   sim.Duration
}

// scaleRun deploys fleet simultaneous instances with strategy s and reports
// worst/p50/p99 time-to-ready. A tenant whose provisioning fails does not
// crash the run: the first failure is reported so the row can carry it, and
// the remaining tenants still finish.
func scaleRun(opt Options, s cloud.Strategy, fleet int) (scaleResult, error) {
	tcfg := testbed.DefaultConfig()
	tcfg.Seed = opt.Seed
	tcfg.ImageBytes = opt.ImageBytes
	tb := testbed.New(tcfg)
	c := cloud.NewController(tb, tcfg, fleet)
	for _, n := range tb.Nodes {
		n.M.Firmware.InitTime = 2 * sim.Second
	}
	var res scaleResult
	var firstErr error
	done := 0
	finish := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		done++
		if done == fleet {
			tb.K.Stop()
		}
	}
	for i := 0; i < fleet; i++ {
		tb.K.Spawn("tenant", func(p *sim.Proc) {
			in, err := c.Request(s)
			if err != nil {
				finish(fmt.Errorf("request: %w", err))
				return
			}
			if !in.WaitReady(p) {
				finish(fmt.Errorf("deploy: %w", in.Err()))
				return
			}
			if d := in.TimeToReady(); d > res.Worst {
				res.Worst = d
			}
			finish(nil)
		})
	}
	for done < fleet && tb.K.Pending() > 0 {
		tb.K.RunUntil(tb.K.Now().Add(sim.Hour))
	}
	if firstErr != nil {
		return scaleResult{}, firstErr
	}
	res.P50 = c.TimeToUse.Percentile(50)
	res.P99 = c.TimeToUse.Percentile(99)
	return res, nil
}
