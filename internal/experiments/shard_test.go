package experiments

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// The sharded determinism matrix (ISSUE 10): the same seed must produce
// byte-identical results at every -shards value, because the domain
// partition, window grid, and barrier merge order are properties of the
// model, not of the worker count. These tests pin that contract for the
// fleet and elasticity cells, including under a fault storm whose
// events cross shard boundaries (node-link partitions mutate node
// domains while crash/restart hits the hub).

// fleetFingerprint runs the fleet cell sharded and digests everything
// observable: the result struct, the merged trace (spans and events),
// and the metrics snapshot.
func fleetFingerprint(t *testing.T, shards int) string {
	t.Helper()
	opt := Quick()
	opt.ImageBytes = 256 << 20
	opt.BootBytes = 8 << 20
	opt.EnableTrace = true
	opt.Shards = shards
	r, err := FleetRun(opt, 6, true)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return fingerprint(t, r, r.Trace, r.Snapshot)
}

func fingerprint(t *testing.T, result any, tr *trace.Recorder, snap any) string {
	t.Helper()
	var out []byte
	add := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b...)
		out = append(out, '\n')
	}
	add(result)
	add(snap)
	if tr != nil {
		for _, s := range tr.Spans() {
			add(s)
		}
		for _, e := range tr.Events() {
			add(e)
		}
	}
	return string(out)
}

// matrixShards is the comparison set: every shard count from the issue
// in a normal run, one representative count under the race detector.
func matrixShards() []int {
	if raceEnabled {
		return []int{8}
	}
	return []int{2, 4, 8}
}

func TestShardedFleetDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow")
	}
	want := fleetFingerprint(t, 1)
	for _, shards := range matrixShards() {
		got := fleetFingerprint(t, shards)
		if got != want {
			diffLine(t, want, got, fmt.Sprintf("fleet shards=1 vs shards=%d", shards))
		}
	}
}

// TestShardedElasticityDeterminismMatrix pins byte-identical elasticity
// results — tenant traffic through the storm schedule — across shard
// counts. The storm partitions three node-domain links and crash-loops
// the hub's storage server, so fault events cross shard boundaries.
// (Name matches the `make elasticity` -run filter.)
func TestShardedElasticityDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow")
	}
	// A shortened storm cell: the same structure as the registry cell
	// (bursty traffic, a storm that partitions three node domains and
	// crash-loops the hub's server) at a duration that keeps the 4-point
	// matrix and the -race run affordable.
	profile := ElasticProfile()
	profile.Duration = 2 * sim.Minute
	storm := ElasticStorm()
	run := func(shards int) string {
		opt := Quick()
		opt.Shards = shards
		r, err := ElasticityRun(opt, 0, profile, storm)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return fingerprint(t, r, nil, r.Snapshot)
	}
	want := run(1)
	for _, shards := range matrixShards() {
		got := run(shards)
		if got != want {
			diffLine(t, want, got, fmt.Sprintf("elasticity shards=1 vs shards=%d", shards))
		}
	}
}

// diffLine fails with the first differing line, which names the diverging
// span/metric instead of dumping two multi-megabyte blobs.
func diffLine(t *testing.T, want, got, label string) {
	t.Helper()
	w, g := splitLines(want), splitLines(got)
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			t.Fatalf("%s diverges at line %d:\n  want %.300s\n  got  %.300s", label, i, w[i], g[i])
		}
	}
	t.Fatalf("%s: line counts differ: %d vs %d", label, len(w), len(g))
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestShardedFleetSmoke is the fast path of the matrix for -short runs:
// one sharded fleet run must complete and verify.
func TestShardedFleetSmoke(t *testing.T) {
	opt := Quick()
	opt.ImageBytes = 64 << 20
	opt.BootBytes = 4 << 20
	opt.Shards = 4
	r, err := FleetRun(opt, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadyP50 <= 0 {
		t.Fatalf("degenerate ready percentile: %v", r.ReadyP50)
	}
}
