// Package faults provides sim-time-scheduled, seed-deterministic fault
// injection for the BMcast testbed. A Schedule is an ordered list of
// scripted events — link flaps, asymmetric partitions, frame corruption/
// duplication/reordering, vblade server crashes and restarts, disk
// media-error windows — applied at exact sim-times by an Injector, so the
// same kernel seed plus the same schedule replays byte-identically. All
// probabilistic impairments draw from the kernel's seeded source; the
// package itself introduces no randomness and never reads the wall clock.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/ethernet"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vblade"
)

// Kind names one fault verb.
type Kind string

// The fault verbs of the schedule grammar.
const (
	LinkDown  Kind = "linkdown"  // linkdown <link> [dir]
	LinkUp    Kind = "linkup"    // linkup <link> [dir]
	Partition Kind = "partition" // partition <link> <dir>  (one-way down)
	Loss      Kind = "loss"      // loss <link> <rate> [dir]
	Corrupt   Kind = "corrupt"   // corrupt <link> <rate> [dir]
	Duplicate Kind = "dup"       // dup <link> <rate> [dir]
	Reorder   Kind = "reorder"   // reorder <link> <rate> [dir]
	Crash     Kind = "crash"     // crash <server>
	Restart   Kind = "restart"   // restart <server>
	MediaErr  Kind = "mediaerr"  // mediaerr <server> <lba> <count> <for>
)

// Event is one scripted fault: Kind applied to Target at offset At from
// the instant the schedule is applied.
type Event struct {
	At     sim.Duration
	Kind   Kind
	Target string

	Dir   ethernet.Dir // link events: which direction(s)
	Rate  float64      // loss/corrupt/dup/reorder
	LBA   int64        // mediaerr: first faulty sector
	Count int64        // mediaerr: faulty sector count
	For   sim.Duration // mediaerr: window length
}

// String renders the event in schedule grammar, round-tripping Parse.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s", fmtDuration(e.At), e.Kind, e.Target)
	switch e.Kind {
	case LinkDown, LinkUp:
		if e.Dir != ethernet.DirBoth {
			fmt.Fprintf(&b, " %s", e.Dir)
		}
	case Partition:
		fmt.Fprintf(&b, " %s", e.Dir)
	case Loss, Corrupt, Duplicate, Reorder:
		fmt.Fprintf(&b, " %g", e.Rate)
		if e.Dir != ethernet.DirBoth {
			fmt.Fprintf(&b, " %s", e.Dir)
		}
	case MediaErr:
		fmt.Fprintf(&b, " %d %d %s", e.LBA, e.Count, fmtDuration(e.For))
	}
	return b.String()
}

// fmtDuration renders a duration in the grammar's unit syntax (time.Duration
// notation, which time.ParseDuration round-trips).
func fmtDuration(d sim.Duration) string { return time.Duration(d).String() }

// Schedule is an ordered fault script.
type Schedule struct {
	Events []Event
}

// String renders the schedule in grammar form: events joined by "; ".
func (s Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// Parse reads a schedule from its grammar form: semicolon-separated events,
// each "<time> <verb> <target> [args]". Times are time.Duration literals
// ("500ms", "1.5s"); link directions are "tx" (station→switch), "rx", or
// "both" (the default). Events are sorted by time, original order breaking
// ties, so a schedule string applies identically however it is written.
func Parse(input string) (Schedule, error) {
	var s Schedule
	for _, stmt := range strings.Split(input, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		ev, err := parseEvent(stmt)
		if err != nil {
			return Schedule{}, err
		}
		s.Events = append(s.Events, ev)
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s, nil
}

func parseEvent(stmt string) (Event, error) {
	fields := strings.Fields(stmt)
	if len(fields) < 3 {
		return Event{}, fmt.Errorf("faults: %q: want \"<time> <verb> <target> [args]\"", stmt)
	}
	at, err := parseDuration(fields[0])
	if err != nil {
		return Event{}, fmt.Errorf("faults: %q: bad time: %v", stmt, err)
	}
	ev := Event{At: at, Kind: Kind(fields[1]), Target: fields[2]}
	args := fields[3:]
	switch ev.Kind {
	case LinkDown, LinkUp:
		if len(args) > 1 {
			return Event{}, fmt.Errorf("faults: %q: want at most one direction", stmt)
		}
		if len(args) == 1 {
			if ev.Dir, err = parseDir(args[0]); err != nil {
				return Event{}, fmt.Errorf("faults: %q: %v", stmt, err)
			}
		}
	case Partition:
		if len(args) != 1 {
			return Event{}, fmt.Errorf("faults: %q: partition wants a direction (tx|rx)", stmt)
		}
		if ev.Dir, err = parseDir(args[0]); err != nil {
			return Event{}, fmt.Errorf("faults: %q: %v", stmt, err)
		}
		if ev.Dir == ethernet.DirBoth {
			return Event{}, fmt.Errorf("faults: %q: a partition is one-way; use linkdown for both", stmt)
		}
	case Loss, Corrupt, Duplicate, Reorder:
		if len(args) < 1 || len(args) > 2 {
			return Event{}, fmt.Errorf("faults: %q: want \"<rate> [dir]\"", stmt)
		}
		if ev.Rate, err = strconv.ParseFloat(args[0], 64); err != nil {
			return Event{}, fmt.Errorf("faults: %q: bad rate: %v", stmt, err)
		}
		if ev.Rate < 0 || ev.Rate > 1 {
			return Event{}, fmt.Errorf("faults: %q: rate %g outside [0,1]", stmt, ev.Rate)
		}
		if len(args) == 2 {
			if ev.Dir, err = parseDir(args[1]); err != nil {
				return Event{}, fmt.Errorf("faults: %q: %v", stmt, err)
			}
		}
	case Crash, Restart:
		if len(args) != 0 {
			return Event{}, fmt.Errorf("faults: %q: %s takes no arguments", stmt, ev.Kind)
		}
	case MediaErr:
		if len(args) != 3 {
			return Event{}, fmt.Errorf("faults: %q: want \"<lba> <count> <for>\"", stmt)
		}
		if ev.LBA, err = strconv.ParseInt(args[0], 10, 64); err != nil {
			return Event{}, fmt.Errorf("faults: %q: bad lba: %v", stmt, err)
		}
		if ev.Count, err = strconv.ParseInt(args[1], 10, 64); err != nil {
			return Event{}, fmt.Errorf("faults: %q: bad count: %v", stmt, err)
		}
		if ev.Count <= 0 {
			return Event{}, fmt.Errorf("faults: %q: non-positive count", stmt)
		}
		if ev.For, err = parseDuration(args[2]); err != nil {
			return Event{}, fmt.Errorf("faults: %q: bad window: %v", stmt, err)
		}
	default:
		return Event{}, fmt.Errorf("faults: %q: unknown verb %q", stmt, fields[1])
	}
	return ev, nil
}

func parseDuration(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %s", s)
	}
	return sim.Duration(d), nil
}

func parseDir(s string) (ethernet.Dir, error) {
	switch s {
	case "tx":
		return ethernet.DirA2B, nil
	case "rx":
		return ethernet.DirB2A, nil
	case "both":
		return ethernet.DirBoth, nil
	}
	return 0, fmt.Errorf("unknown direction %q (want tx|rx|both)", s)
}

// Injector applies schedules to registered links and servers on a kernel's
// clock. Register targets under canonical names, then Apply one or more
// schedules before (or while) the simulation runs.
type Injector struct {
	k       *sim.Kernel
	links   map[string]*ethernet.Link
	servers map[string]*vblade.Server

	// kernels maps targets living on another shard domain (DESIGN.md §13)
	// to their owning kernel: the state mutation is scheduled there, while
	// bookkeeping (counter, trace event, observer) stays on k. Empty on a
	// single-threaded testbed.
	kernels map[string]*sim.Kernel
	// observer, when set, sees every fired event on k's clock — the
	// sharded testbed mirrors link carrier state for control-plane probes
	// through it.
	observer func(ev Event)

	// Injected counts fault events fired (metric "faults.injected").
	Injected metrics.Counter

	tr *trace.Recorder
}

// NewInjector returns an empty injector on kernel k.
func NewInjector(k *sim.Kernel) *Injector {
	return &Injector{
		k:       k,
		links:   make(map[string]*ethernet.Link),
		servers: make(map[string]*vblade.Server),
		kernels: make(map[string]*sim.Kernel),
	}
}

// SetObserver installs a hub-side observer called for every fired event
// (after its bookkeeping) on the injector kernel's clock.
func (inj *Injector) SetObserver(fn func(ev Event)) { inj.observer = fn }

// Instrument registers the injected-events counter in reg and makes every
// fired event record a trace event on tr (nil-safe on both).
func (inj *Injector) Instrument(reg *metrics.Registry, tr *trace.Recorder) {
	inj.tr = tr
	reg.RegisterCounter("faults.injected", &inj.Injected)
}

// RegisterLink makes a link addressable by name in schedules.
func (inj *Injector) RegisterLink(name string, l *ethernet.Link) {
	inj.links[name] = l
}

// RegisterLinkOn registers a link owned by shard domain k: its state
// mutations will be scheduled on k instead of the injector kernel.
func (inj *Injector) RegisterLinkOn(name string, l *ethernet.Link, k *sim.Kernel) {
	inj.links[name] = l
	if k != nil && k != inj.k {
		inj.kernels[name] = k
	}
}

// RegisterServer makes a vblade server addressable by name in schedules.
func (inj *Injector) RegisterServer(name string, s *vblade.Server) {
	inj.servers[name] = s
}

// Apply validates the schedule against the registered targets and arms
// every event on the kernel clock, offset from the current instant. It
// rejects the whole schedule on the first unknown target or verb, arming
// nothing.
func (inj *Injector) Apply(s Schedule) error {
	for _, ev := range s.Events {
		if err := inj.check(ev); err != nil {
			return err
		}
	}
	for _, ev := range s.Events {
		ev := ev
		tk := inj.kernels[ev.Target]
		if tk == nil {
			inj.k.After(ev.At, func() { inj.fire(ev) })
			continue
		}
		// Sharded target: the mutation runs on the owning domain and the
		// bookkeeping on the injector (hub) domain, both at the scheduled
		// instant. Apply must happen before the shard set runs — both
		// kernels still sit at time zero, so scheduling on the foreign
		// kernel is not yet a cross-domain operation.
		if tk.Now() != 0 || inj.k.Now() != 0 {
			return fmt.Errorf("faults: sharded schedules must be applied before the run")
		}
		inj.k.After(ev.At, func() { inj.book(ev) })
		tk.After(ev.At, func() { inj.mutate(ev) })
	}
	return nil
}

// check validates one event's target against the registry.
func (inj *Injector) check(ev Event) error {
	switch ev.Kind {
	case LinkDown, LinkUp, Partition, Loss, Corrupt, Duplicate, Reorder:
		if inj.links[ev.Target] == nil {
			return fmt.Errorf("faults: unknown link %q (registered: %s)", ev.Target, inj.names(true))
		}
	case Crash, Restart, MediaErr:
		if inj.servers[ev.Target] == nil {
			return fmt.Errorf("faults: unknown server %q (registered: %s)", ev.Target, inj.names(false))
		}
		if ev.Kind == MediaErr && inj.servers[ev.Target].Target(0, 0) == nil {
			return fmt.Errorf("faults: server %q exports no target 0.0", ev.Target)
		}
	default:
		return fmt.Errorf("faults: unknown verb %q", ev.Kind)
	}
	return nil
}

// names lists registered link or server names, sorted, for error messages.
func (inj *Injector) names(links bool) string {
	var out []string
	if links {
		for n := range inj.links {
			out = append(out, n)
		}
	} else {
		for n := range inj.servers {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	if len(out) == 0 {
		return "none"
	}
	return strings.Join(out, ", ")
}

// fire applies one event at its scheduled instant.
func (inj *Injector) fire(ev Event) {
	inj.mutate(ev)
	inj.book(ev)
}

// book records one fired event: the injected counter, the trace event,
// and the observer. On a sharded testbed this runs on the hub domain.
func (inj *Injector) book(ev Event) {
	inj.Injected.Inc()
	inj.tr.Emit("faults", "faults", string(ev.Kind),
		trace.Str("target", ev.Target), trace.Str("event", ev.String()))
	if inj.observer != nil {
		inj.observer(ev)
	}
}

// mutate applies one event's state change on the target's owning kernel.
func (inj *Injector) mutate(ev Event) {
	switch ev.Kind {
	case LinkDown:
		inj.links[ev.Target].SetDown(ev.Dir, true)
	case LinkUp:
		inj.links[ev.Target].SetDown(ev.Dir, false)
	case Partition:
		inj.links[ev.Target].SetDown(ev.Dir, true)
	case Loss:
		// Schedule-driven loss overrides the link's configured rate in
		// both selected directions (SetLossRate has no Dir form; loss is
		// symmetric in LinkParams).
		inj.links[ev.Target].SetLossRate(ev.Rate)
	case Corrupt:
		inj.links[ev.Target].SetCorruptRate(ev.Dir, ev.Rate)
	case Duplicate:
		inj.links[ev.Target].SetDuplicateRate(ev.Dir, ev.Rate)
	case Reorder:
		inj.links[ev.Target].SetReorderRate(ev.Dir, ev.Rate)
	case Crash:
		inj.servers[ev.Target].Crash()
	case Restart:
		inj.servers[ev.Target].Restart()
	case MediaErr:
		// Server targets always live on the injector kernel (the sharded
		// testbed keeps storage servers in the hub domain), so its clock is
		// the firing instant.
		until := inj.k.Now().Add(ev.For)
		inj.servers[ev.Target].Target(0, 0).AddMediaError(ev.LBA, ev.Count, until)
	}
}
