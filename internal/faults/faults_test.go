package faults

import (
	"strings"
	"testing"

	"repro/internal/ethernet"
	"repro/internal/hw/disk"
	"repro/internal/hw/nic"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vblade"
)

func TestParseRoundTrip(t *testing.T) {
	in := "0s linkdown node0.vmm; 500ms linkup node0.vmm; 1s partition node0.guest tx; " +
		"1.5s loss server 0.05; 2s corrupt server 0.1 rx; 2.5s dup node0.vmm 0.01; " +
		"3s reorder node0.vmm 0.02 tx; 4s crash server; 6s restart server; " +
		"7s mediaerr server 1024 2048 500ms"
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 10 {
		t.Fatalf("parsed %d events, want 10", len(s.Events))
	}
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.String(), err)
	}
	if s.String() != s2.String() {
		t.Fatalf("round trip mismatch:\n %s\n %s", s, s2)
	}
}

func TestParseSortsByTime(t *testing.T) {
	s, err := Parse("2s crash server; 1s linkdown l; 1s loss l 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Events[0].Kind != LinkDown || s.Events[1].Kind != Loss || s.Events[2].Kind != Crash {
		t.Fatalf("events not stably sorted by time: %v", s)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"1s explode server",         // unknown verb
		"xx crash server",           // bad time
		"1s loss server",            // missing rate
		"1s loss server 1.5",        // rate out of range
		"1s partition l both",       // partition must be one-way
		"1s partition l",            // partition needs a direction
		"1s linkdown l sideways",    // bad direction
		"1s crash server now",       // crash takes no args
		"1s mediaerr server 1 2",    // mediaerr needs a window
		"1s mediaerr server 1 0 1s", // non-positive count
		"-1s crash server",          // negative time
		"1s",                        // too short
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// rig assembles a kernel, a link pair through a switch, and a vblade server
// for injector tests.
type rig struct {
	k    *sim.Kernel
	inj  *Injector
	link *ethernet.Link
	srv  *vblade.Server
	reg  *metrics.Registry
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.New(7)
	sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)
	link := sw.Connect(ethernet.GigabitJumbo())
	svLink := sw.Connect(ethernet.GigabitJumbo())
	img := disk.NewSynthImage("img", 1<<20, 3)
	servNIC := nic.New(k, "sv0", nic.IntelX540, 0x01, svLink)
	srv := vblade.NewServer(k, servNIC, 1)
	srv.AddTarget(0, 0, img)
	srv.Start()
	inj := NewInjector(k)
	reg := metrics.NewRegistry()
	inj.Instrument(reg, nil)
	inj.RegisterLink("l", link)
	inj.RegisterServer("server", srv)
	return &rig{k: k, inj: inj, link: link, srv: srv, reg: reg}
}

func TestApplyRejectsUnknownTargets(t *testing.T) {
	r := newRig(t)
	for _, bad := range []string{
		"1s linkdown nosuch",
		"1s crash nosuch",
		"1s crash l", // a link is not a server
	} {
		s, err := Parse(bad)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.inj.Apply(s); err == nil {
			t.Errorf("Apply(%q) accepted", bad)
		}
	}
}

func TestInjectorFiresAtScheduledTimes(t *testing.T) {
	r := newRig(t)
	s, err := Parse("10ms linkdown l; 30ms linkup l; 50ms crash server; 70ms restart server; " +
		"90ms loss l 0.25; 110ms mediaerr server 0 64 1s")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.inj.Apply(s); err != nil {
		t.Fatal(err)
	}
	type check struct {
		at   sim.Duration
		want func() bool
		desc string
	}
	checks := []check{
		{20 * sim.Millisecond, func() bool { return r.link.Down(ethernet.DirBoth) }, "link down at 20ms"},
		{40 * sim.Millisecond, func() bool { return !r.link.Down(ethernet.DirBoth) }, "link up at 40ms"},
		{60 * sim.Millisecond, func() bool { return r.srv.Crashed() }, "server crashed at 60ms"},
		{80 * sim.Millisecond, func() bool { return !r.srv.Crashed() }, "server restarted at 80ms"},
	}
	for _, c := range checks {
		c := c
		r.k.After(c.at, func() {
			if !c.want() {
				t.Errorf("%s: state wrong", c.desc)
			}
		})
	}
	r.k.Run()
	if got := r.inj.Injected.Value(); got != 6 {
		t.Fatalf("Injected = %d, want 6", got)
	}
	if v := r.reg.Snapshot().CounterValue("faults.injected"); v != 6 {
		t.Fatalf("faults.injected metric = %d, want 6", v)
	}
}

func TestScheduleStringIsStable(t *testing.T) {
	// The rendered grammar is part of the experiment record; keep it stable.
	s, err := Parse("0s linkdown l tx;  1s   loss l 0.05 ;2s mediaerr server 10 20 250ms")
	if err != nil {
		t.Fatal(err)
	}
	want := "0s linkdown l tx; 1s loss l 0.05; 2s mediaerr server 10 20 250ms"
	if got := s.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if !strings.Contains(s.String(), "mediaerr server 10 20 250ms") {
		t.Fatal("mediaerr args lost")
	}
}
