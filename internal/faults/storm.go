package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// StormConfig describes a fault storm — the compound failure pattern the
// elastic control plane is hardened against: a rack partition (a set of
// links go down for the storm window), vblade crash/restart cycles, and
// disk media-error bursts, all inside one window. Schedule() lowers the
// storm to ordinary schedule events, so a storm replays with the same
// byte-identical determinism as any hand-written schedule.
type StormConfig struct {
	// At is the storm's start offset; For is the window length. Links go
	// down at At and come back at At+For.
	At  sim.Duration
	For sim.Duration

	// Links are partitioned (both directions) for the whole window.
	Links []string

	// Server is the vblade server hit by crash and media-error bursts
	// (ignored when Crashes and MediaErrs are both zero).
	Server string

	// Crashes is the number of crash/restart cycles spread evenly across
	// the window; each restart comes half a slot after its crash.
	Crashes int

	// MediaErrs is the number of media-error windows spread evenly
	// across the storm, each covering MediaErrCount sectors at
	// MediaErrLBA for half a slot.
	MediaErrs     int
	MediaErrLBA   int64
	MediaErrCount int64
}

// Schedule lowers the storm to a plain fault schedule, events sorted by
// time with the same stable tie-breaking Parse uses.
func (sc StormConfig) Schedule() Schedule {
	var s Schedule
	for _, l := range sc.Links {
		s.Events = append(s.Events, Event{At: sc.At, Kind: LinkDown, Target: l})
		s.Events = append(s.Events, Event{At: sc.At + sc.For, Kind: LinkUp, Target: l})
	}
	if sc.Server != "" && sc.Crashes > 0 {
		slot := sc.For / sim.Duration(sc.Crashes)
		for i := 0; i < sc.Crashes; i++ {
			at := sc.At + sim.Duration(i)*slot
			s.Events = append(s.Events, Event{At: at, Kind: Crash, Target: sc.Server})
			s.Events = append(s.Events, Event{At: at + slot/2, Kind: Restart, Target: sc.Server})
		}
	}
	if sc.Server != "" && sc.MediaErrs > 0 && sc.MediaErrCount > 0 {
		slot := sc.For / sim.Duration(sc.MediaErrs)
		for i := 0; i < sc.MediaErrs; i++ {
			s.Events = append(s.Events, Event{
				At: sc.At + sim.Duration(i)*slot, Kind: MediaErr, Target: sc.Server,
				LBA: sc.MediaErrLBA, Count: sc.MediaErrCount, For: slot / 2,
			})
		}
	}
	sortEvents(&s)
	return s
}

// sortEvents orders events by time, original order breaking ties — the
// same convention Parse uses, so a lowered storm and its re-parsed string
// agree event for event.
func sortEvents(s *Schedule) {
	evs := s.Events
	for i := 1; i < len(evs); i++ { // insertion sort: stable, no deps
		for j := i; j > 0 && evs[j].At < evs[j-1].At; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// String renders the storm in its flag grammar ("at=60s,for=30s,..."),
// round-tripping ParseStorm.
func (sc StormConfig) String() string {
	var parts []string
	parts = append(parts, "at="+fmtDuration(sc.At), "for="+fmtDuration(sc.For))
	if len(sc.Links) > 0 {
		parts = append(parts, "links="+strings.Join(sc.Links, "+"))
	}
	if sc.Server != "" {
		parts = append(parts, "server="+sc.Server)
	}
	if sc.Crashes > 0 {
		parts = append(parts, "crashes="+strconv.Itoa(sc.Crashes))
	}
	if sc.MediaErrs > 0 {
		parts = append(parts, "mediaerr="+strconv.Itoa(sc.MediaErrs),
			"lba="+strconv.FormatInt(sc.MediaErrLBA, 10),
			"sectors="+strconv.FormatInt(sc.MediaErrCount, 10))
	}
	return strings.Join(parts, ",")
}

// ParseStorm reads a storm from its flag grammar: comma-separated
// key=value pairs — at, for (durations), links (names joined by "+"),
// server, crashes, mediaerr, lba, sectors. Unset mediaerr sector counts
// default to 64.
func ParseStorm(input string) (StormConfig, error) {
	var sc StormConfig
	for _, kv := range strings.Split(input, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return StormConfig{}, fmt.Errorf("faults: storm %q: want key=value", kv)
		}
		var err error
		switch k {
		case "at":
			sc.At, err = parseDuration(v)
		case "for":
			sc.For, err = parseDuration(v)
		case "links":
			for _, l := range strings.Split(v, "+") {
				if l = strings.TrimSpace(l); l != "" {
					sc.Links = append(sc.Links, l)
				}
			}
		case "server":
			sc.Server = v
		case "crashes":
			sc.Crashes, err = strconv.Atoi(v)
		case "mediaerr":
			sc.MediaErrs, err = strconv.Atoi(v)
		case "lba":
			sc.MediaErrLBA, err = strconv.ParseInt(v, 10, 64)
		case "sectors":
			sc.MediaErrCount, err = strconv.ParseInt(v, 10, 64)
		default:
			return StormConfig{}, fmt.Errorf("faults: storm: unknown key %q", k)
		}
		if err != nil {
			return StormConfig{}, fmt.Errorf("faults: storm %q: %v", kv, err)
		}
	}
	if sc.Crashes < 0 || sc.MediaErrs < 0 {
		return StormConfig{}, fmt.Errorf("faults: storm: negative burst count")
	}
	if (sc.Crashes > 0 || sc.MediaErrs > 0) && sc.Server == "" {
		return StormConfig{}, fmt.Errorf("faults: storm: crashes/mediaerr need server=")
	}
	if sc.MediaErrs > 0 && sc.MediaErrCount == 0 {
		sc.MediaErrCount = 64
	}
	return sc, nil
}
