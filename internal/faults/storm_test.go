package faults

import (
	"strings"
	"testing"

	"repro/internal/ethernet"
	"repro/internal/sim"
)

func TestStormScheduleLowering(t *testing.T) {
	sc := StormConfig{
		At:    60 * sim.Second,
		For:   30 * sim.Second,
		Links: []string{"node0.vmm", "node1.vmm"},
		Server: "server", Crashes: 2,
		MediaErrs: 2, MediaErrLBA: 128, MediaErrCount: 64,
	}
	s := sc.Schedule()
	// 2 links × (down+up) + 2 × (crash+restart) + 2 mediaerr = 10 events.
	if len(s.Events) != 10 {
		t.Fatalf("storm lowered to %d events, want 10:\n%s", len(s.Events), s)
	}
	// The window boundaries: every linkdown at At, every linkup at At+For.
	for _, ev := range s.Events {
		switch ev.Kind {
		case LinkDown:
			if ev.At != sc.At {
				t.Errorf("linkdown %s at %v, want %v", ev.Target, ev.At, sc.At)
			}
		case LinkUp:
			if ev.At != sc.At+sc.For {
				t.Errorf("linkup %s at %v, want %v", ev.Target, ev.At, sc.At+sc.For)
			}
		case Restart:
			if ev.At >= sc.At+sc.For {
				t.Errorf("restart at %v, after the storm window", ev.At)
			}
		}
	}
	// Crash/restart cycles: crash at 60s and 75s, restarts half a slot on.
	var crashes, restarts []sim.Duration
	for _, ev := range s.Events {
		if ev.Kind == Crash {
			crashes = append(crashes, ev.At)
		}
		if ev.Kind == Restart {
			restarts = append(restarts, ev.At)
		}
	}
	if len(crashes) != 2 || crashes[0] != 60*sim.Second || crashes[1] != 75*sim.Second {
		t.Fatalf("crash times %v, want [60s 75s]", crashes)
	}
	if len(restarts) != 2 || restarts[0] != 67500*sim.Millisecond {
		t.Fatalf("restart times %v, want first at 67.5s", restarts)
	}
	// Events are time-sorted like Parse output.
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].At < s.Events[i-1].At {
			t.Fatalf("events not sorted: %s", s)
		}
	}
}

// TestStormScheduleRoundTrip: a lowered storm survives the schedule
// grammar's Parse/String round trip — the storm is plain schedule events.
func TestStormScheduleRoundTrip(t *testing.T) {
	sc := StormConfig{
		At: 10 * sim.Second, For: 5 * sim.Second,
		Links:  []string{"node0.vmm"},
		Server: "server", Crashes: 1, MediaErrs: 1, MediaErrCount: 32,
	}
	s := sc.Schedule()
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse of lowered storm %q: %v", s.String(), err)
	}
	if s.String() != s2.String() {
		t.Fatalf("round trip mismatch:\n %s\n %s", s, s2)
	}
}

func TestParseStormRoundTrip(t *testing.T) {
	in := "at=1m0s,for=30s,links=node0.vmm+node1.vmm,server=server,crashes=2,mediaerr=2,lba=128,sectors=64"
	sc, err := ParseStorm(in)
	if err != nil {
		t.Fatal(err)
	}
	if sc.At != 60*sim.Second || sc.For != 30*sim.Second || len(sc.Links) != 2 ||
		sc.Server != "server" || sc.Crashes != 2 || sc.MediaErrs != 2 ||
		sc.MediaErrLBA != 128 || sc.MediaErrCount != 64 {
		t.Fatalf("parsed storm = %+v", sc)
	}
	if got := sc.String(); got != in {
		t.Fatalf("String = %q, want %q", got, in)
	}
	sc2, err := ParseStorm(sc.String())
	if err != nil {
		t.Fatal(err)
	}
	if sc2.String() != sc.String() {
		t.Fatalf("round trip mismatch: %q vs %q", sc2, sc)
	}
}

func TestParseStormDefaultsAndErrors(t *testing.T) {
	sc, err := ParseStorm("at=5s,for=10s,server=server,mediaerr=1")
	if err != nil {
		t.Fatal(err)
	}
	if sc.MediaErrCount != 64 {
		t.Fatalf("default mediaerr sectors = %d, want 64", sc.MediaErrCount)
	}
	for _, bad := range []string{
		"at=xx",                  // bad duration
		"bogus=1",                // unknown key
		"at",                     // not key=value
		"crashes=2",              // crashes without server
		"mediaerr=1",             // mediaerr without server
		"server=server,crashes=-1", // negative burst
	} {
		if _, err := ParseStorm(bad); err == nil {
			t.Errorf("ParseStorm(%q) accepted", bad)
		}
	}
}

// TestStormOverlappingWindowsSameTarget: two overlapping media-error
// windows on the same target stack rather than clobbering — the earlier
// window's expiry does not clear the later one — and overlapping
// link-down windows resolve by last event applied.
func TestStormOverlappingWindowsSameTarget(t *testing.T) {
	r := newRig(t)
	// Windows [10ms, 110ms) and [60ms, 260ms) overlap on the same LBA.
	s, err := Parse("10ms mediaerr server 0 64 100ms; 60ms mediaerr server 0 64 200ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.inj.Apply(s); err != nil {
		t.Fatal(err)
	}
	tgt := r.srv.Target(0, 0)
	at := func(d sim.Duration, want bool, desc string) {
		r.k.After(d, func() {
			if got := tgt.HasMediaError(0, r.k.Now()); got != want {
				t.Errorf("%s: media error = %v, want %v", desc, got, want)
			}
		})
	}
	at(5*sim.Millisecond, false, "before both windows")
	at(80*sim.Millisecond, true, "inside the overlap")
	at(150*sim.Millisecond, true, "after first expiry, inside second window")
	at(300*sim.Millisecond, false, "after both windows")
	r.k.Run()
}

// TestZeroDurationEvents: a zero-length storm window emits linkdown and
// linkup at the same instant; stable ordering applies the down first and
// the up last, leaving the link up — a degenerate but legal schedule.
func TestZeroDurationEvents(t *testing.T) {
	r := newRig(t)
	sc := StormConfig{At: 10 * sim.Millisecond, For: 0, Links: []string{"l"}}
	s := sc.Schedule()
	if len(s.Events) != 2 || s.Events[0].Kind != LinkDown || s.Events[1].Kind != LinkUp {
		t.Fatalf("zero-duration storm events: %s", s)
	}
	if err := r.inj.Apply(s); err != nil {
		t.Fatal(err)
	}
	r.k.After(20*sim.Millisecond, func() {
		if r.link.Down(ethernet.DirBoth) {
			t.Error("link left down after zero-duration storm")
		}
	})
	r.k.Run()
	if got := r.inj.Injected.Value(); got != 2 {
		t.Fatalf("Injected = %d, want 2", got)
	}
	// A zero-window mediaerr is also legal: the window expires instantly.
	if _, err := Parse("1s mediaerr server 0 64 0s"); err != nil {
		t.Fatalf("zero-window mediaerr rejected: %v", err)
	}
	// String keeps zero-duration storms parseable.
	if _, err := ParseStorm(sc.String()); err != nil {
		t.Fatalf("zero-duration storm string %q rejected: %v", sc.String(), err)
	}
	if !strings.Contains(sc.String(), "for=0s") {
		t.Fatalf("storm string %q lost the zero window", sc.String())
	}
}
