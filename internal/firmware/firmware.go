// Package firmware models the server's BIOS/UEFI: the long initialization
// that dominates bare-metal restart time, the boot-device handoff, and the
// memory-map manipulation hook BMcast uses to reserve VMM memory.
//
// The paper's testbed firmware takes 133 seconds to initialize — a major
// reason image-copy deployment (which must reboot after the copy) is slow,
// and a cost BMcast pays only once because it never reboots.
package firmware

import (
	"repro/internal/hw/mem"
	"repro/internal/sim"
)

// BootSource selects where the firmware hands control.
type BootSource int

// Boot sources.
const (
	BootLocalDisk BootSource = iota
	BootNetwork              // PXE
)

func (b BootSource) String() string {
	if b == BootNetwork {
		return "network"
	}
	return "local-disk"
}

// Firmware is one machine's firmware.
type Firmware struct {
	// InitTime is the power-on initialization time (POST, option ROMs,
	// management controller); server boards are notoriously slow.
	InitTime sim.Duration
	// PXETime is the extra time network boot spends in DHCP/TFTP before
	// loading the first-stage payload.
	PXETime sim.Duration

	memory *mem.Memory

	// Boots counts completed firmware initializations.
	Boots int
}

// New returns firmware for a machine with the given memory.
func New(memory *mem.Memory, initTime sim.Duration) *Firmware {
	return &Firmware{InitTime: initTime, PXETime: 3 * sim.Second, memory: memory}
}

// PowerOn performs the full firmware initialization, blocking the process,
// and reports the boot source handed off to.
func (f *Firmware) PowerOn(p *sim.Proc, src BootSource) BootSource {
	p.Sleep(f.InitTime)
	if src == BootNetwork {
		p.Sleep(f.PXETime)
	}
	f.Boots++
	return f.Boots1Source(src)
}

// Boots1Source exists to keep the handoff explicit in traces.
func (f *Firmware) Boots1Source(src BootSource) BootSource { return src }

// ReserveForVMM manipulates the memory map so the guest never sees the
// VMM's region (paper §3.4): the returned region is removed from the
// e820 map the guest OS will read.
func (f *Firmware) ReserveForVMM(size int64) mem.Region {
	return f.memory.Reserve(size, "vmm")
}

// E820 reports the guest-visible memory map.
func (f *Firmware) E820() []mem.Region { return f.memory.E820() }
