package firmware

import (
	"testing"

	"repro/internal/hw/mem"
	"repro/internal/sim"
)

func TestPowerOnTiming(t *testing.T) {
	k := sim.New(1)
	m := mem.New(64 << 20)
	fw := New(m, 133*sim.Second)
	var local, network sim.Time
	k.Spawn("boot", func(p *sim.Proc) {
		fw.PowerOn(p, BootLocalDisk)
		local = p.Now()
		fw.PowerOn(p, BootNetwork)
		network = p.Now()
	})
	k.Run()
	if local != sim.Time(133*sim.Second) {
		t.Fatalf("local boot handoff at %v, want 133s", local)
	}
	if network.Sub(local) != 133*sim.Second+fw.PXETime {
		t.Fatalf("network boot took %v, want 133s + PXE", network.Sub(local))
	}
	if fw.Boots != 2 {
		t.Fatalf("Boots = %d", fw.Boots)
	}
}

func TestReserveForVMMHidesMemory(t *testing.T) {
	m := mem.New(64 << 20)
	fw := New(m, sim.Second)
	before := m.UsableSize()
	r := fw.ReserveForVMM(8 << 20)
	if m.UsableSize() != before-(8<<20) {
		t.Fatal("reservation did not shrink the usable map")
	}
	for _, u := range fw.E820() {
		if u.Start < r.End() && r.Start < u.End() {
			t.Fatal("E820 exposes the VMM region")
		}
	}
}

func TestBootSourceString(t *testing.T) {
	if BootLocalDisk.String() != "local-disk" || BootNetwork.String() != "network" {
		t.Fatal("BootSource names wrong")
	}
}
