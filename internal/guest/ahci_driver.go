package guest

import (
	"fmt"

	"repro/internal/hw/ahci"
	"repro/internal/hw/disk"
	hwio "repro/internal/hw/io"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Guest-physical addresses the AHCI driver allocates for its structures.
const (
	ahciFISBase   = 0x3000
	ahciCLB       = 0x4000
	ahciCTBABase  = 0x8000   // one 0x200-byte command table per slot
	ahciBufBase   = 0x400000 // one 1 MB DMA buffer per slot
	ahciSlotCount = 8        // slots this driver uses concurrently
)

// AHCIDriver drives the AHCI HBA through MMIO: per-command slots with
// command tables and PRDTs built in guest memory, completion by interrupt.
type AHCIDriver struct {
	m    *machine.Machine
	port int64 // port 0 register base in the MMIO space

	slotFree [ahciSlotCount]bool
	slotDone [ahciSlotCount]bool
	slotErr  [ahciSlotCount]bool
	freeSig  *sim.Signal
	doneSig  *sim.Signal
}

// NewAHCIDriver returns the guest's AHCI driver for machine m.
func NewAHCIDriver(m *machine.Machine) *AHCIDriver {
	d := &AHCIDriver{
		m:       m,
		port:    ahci.ABAR + ahci.PortBase,
		freeSig: m.K.NewSignal(m.Name + ".ahci-drv.free"),
		doneSig: m.K.NewSignal(m.Name + ".ahci-drv.done"),
	}
	for i := range d.slotFree {
		d.slotFree[i] = true
	}
	return d
}

// Name implements BlockDriver.
func (d *AHCIDriver) Name() string { return "ahci" }

func (d *AHCIDriver) mmw(p *sim.Proc, off int64, v uint64) {
	d.m.IO.Write(p, hwio.MMIO, ahci.ABAR+off, 4, v)
}

func (d *AHCIDriver) mmr(p *sim.Proc, off int64) uint64 {
	return d.m.IO.Read(p, hwio.MMIO, ahci.ABAR+off, 4)
}

// irqHandler acknowledges completions and wakes slot waiters. It runs in
// interrupt context.
func (d *AHCIDriver) irqHandler() {
	is := d.m.IO.Read(nil, hwio.MMIO, ahci.ABAR+ahci.PortBase+ahci.PxIS, 4)
	if is == 0 {
		return
	}
	d.m.IO.Write(nil, hwio.MMIO, ahci.ABAR+ahci.PortBase+ahci.PxIS, 4, is)
	d.m.IO.Write(nil, hwio.MMIO, ahci.ABAR+ahci.RegIS, 4, 1)
	ci := d.m.IO.Read(nil, hwio.MMIO, ahci.ABAR+ahci.PortBase+ahci.PxCI, 4)
	tfd := d.m.IO.Read(nil, hwio.MMIO, ahci.ABAR+ahci.PortBase+ahci.PxTFD, 4)
	for slot := 0; slot < ahciSlotCount; slot++ {
		if !d.slotFree[slot] && !d.slotDone[slot] && ci&(1<<slot) == 0 {
			d.slotDone[slot] = true
			d.slotErr[slot] = tfd&ahci.TFDErr != 0
		}
	}
	d.doneSig.Broadcast()
}

// Init implements BlockDriver: bring the port up and IDENTIFY the drive.
func (d *AHCIDriver) Init(p *sim.Proc) error {
	d.m.StorageIRQ.SetHandler(d.irqHandler)
	d.mmw(p, ahci.RegGHC, ahci.GHCAHCIEnable|ahci.GHCInterruptEnable)
	d.mmw(p, ahci.PortBase+ahci.PxCLB, ahciCLB)
	d.mmw(p, ahci.PortBase+ahci.PxCLBU, 0)
	d.mmw(p, ahci.PortBase+ahci.PxFB, ahciFISBase)
	d.mmw(p, ahci.PortBase+ahci.PxFBU, 0)
	d.mmw(p, ahci.PortBase+ahci.PxIE, ahci.ISDHRS|ahci.ISTFES)
	d.mmw(p, ahci.PortBase+ahci.PxCMD, ahci.CmdST|ahci.CmdFRE)
	if err := d.command(p, ahci.CmdIdentify, 0, 1, false, nil, false, nil); err != nil {
		return fmt.Errorf("guest/ahci: identify failed: %w", err)
	}
	return nil
}

func (d *AHCIDriver) allocSlot(p *sim.Proc) int {
	for {
		for s := 0; s < ahciSlotCount; s++ {
			if d.slotFree[s] {
				d.slotFree[s] = false
				d.slotDone[s] = false
				d.slotErr[s] = false
				return s
			}
		}
		p.Wait(d.freeSig)
	}
}

func (d *AHCIDriver) releaseSlot(s int) {
	d.slotFree[s] = true
	d.freeSig.Broadcast()
}

// command issues one command in a free slot and waits for its completion.
func (d *AHCIDriver) command(p *sim.Proc, cmd uint8, lba, count int64, write bool, hintSrc disk.SectorSource, hintDiscard bool, literal []byte) error {
	slot := d.allocSlot(p)
	defer d.releaseSlot(slot)

	ctba := uint64(ahciCTBABase + slot*0x200)
	buf := int64(ahciBufBase + slot*(MaxTransferSectors*disk.SectorSize))
	if literal != nil {
		d.m.Mem.Write(buf, literal)
	}
	ahci.WriteFIS(d.m.Mem, ctba, ahci.FIS{Command: cmd, LBA: lba, Count: count})
	ahci.WritePRDT(d.m.Mem, ctba, []ahci.PRD{{Addr: buf, Bytes: count * disk.SectorSize}})
	ahci.WriteCmdHeader(d.m.Mem, ahciCLB, slot, ahci.CmdHeader{
		FISLen: 5, Write: write, PRDTL: 1, CTBA: ctba,
	})

	if hintSrc != nil || hintDiscard {
		d.m.SetNextStorageDMA(buf, hintSrc, hintDiscard)
	}
	d.mmw(p, ahci.PortBase+ahci.PxCI, 1<<slot)

	p.WaitCond(d.doneSig, func() bool { return d.slotDone[slot] })
	if d.slotErr[slot] {
		return fmt.Errorf("guest/ahci: command %#x at lba %d failed", cmd, lba)
	}
	return nil
}

// ReadSectors implements BlockDriver.
func (d *AHCIDriver) ReadSectors(p *sim.Proc, lba, count int64, discard bool) ([]byte, error) {
	if err := validateRange(lba, count); err != nil {
		return nil, err
	}
	if discard {
		return nil, d.command(p, ahci.CmdReadDMAExt, lba, count, false, nil, true, nil)
	}
	slot := d.allocSlot(p)
	defer d.releaseSlot(slot)
	ctba := uint64(ahciCTBABase + slot*0x200)
	buf := int64(ahciBufBase + slot*(MaxTransferSectors*disk.SectorSize))
	ahci.WriteFIS(d.m.Mem, ctba, ahci.FIS{Command: ahci.CmdReadDMAExt, LBA: lba, Count: count})
	ahci.WritePRDT(d.m.Mem, ctba, []ahci.PRD{{Addr: buf, Bytes: count * disk.SectorSize}})
	ahci.WriteCmdHeader(d.m.Mem, ahciCLB, slot, ahci.CmdHeader{FISLen: 5, PRDTL: 1, CTBA: ctba})
	d.mmw(p, ahci.PortBase+ahci.PxCI, 1<<slot)
	p.WaitCond(d.doneSig, func() bool { return d.slotDone[slot] })
	if d.slotErr[slot] {
		return nil, fmt.Errorf("guest/ahci: read at lba %d failed", lba)
	}
	return d.m.Mem.Read(buf, count*disk.SectorSize), nil
}

// WriteSectors implements BlockDriver.
func (d *AHCIDriver) WriteSectors(p *sim.Proc, payload disk.Payload) error {
	if err := validateRange(payload.LBA, payload.Count); err != nil {
		return err
	}
	if _, ok := payload.Source.(*disk.Buffer); ok {
		return d.command(p, ahci.CmdWriteDMAExt, payload.LBA, payload.Count, true, nil, false, payload.Bytes())
	}
	return d.command(p, ahci.CmdWriteDMAExt, payload.LBA, payload.Count, true, payload.Source, false, nil)
}

// Flush implements BlockDriver.
func (d *AHCIDriver) Flush(p *sim.Proc) error {
	return d.command(p, ahci.CmdFlushCache, 0, 1, false, nil, false, nil)
}
