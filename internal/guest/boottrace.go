package guest

import (
	"math/rand"

	"repro/internal/hw/disk"
	"repro/internal/sim"
)

// BootOp is one step of the OS boot sequence: think for Think, then read
// Count sectors at LBA (Count == 0 means a pure compute step; Write marks
// the few log/state writes boot performs).
type BootOp struct {
	LBA   int64
	Count int64
	Write bool
	Think sim.Duration
}

// BootProfile describes the disk behaviour of an OS boot: how much is
// read, in what pattern, and how much CPU work happens between reads.
//
// The default profile is calibrated to the paper's measurements: an Ubuntu
// 14.04 boot reads ≈72 MB (§5.1: BMcast transferred 72 MB while booting)
// and takes 29 s on bare metal, where most of the time is CPU/service
// startup and the disk portion is seek-dominated small reads.
type BootProfile struct {
	TotalBytes  int64        // bytes read during boot
	ReadSectors int64        // sectors per read
	ClusterLen  int          // contiguous reads per cluster before seeking
	SpanSectors int64        // disk region boot reads are scattered over
	CPUTime     sim.Duration // total compute between reads
	WriteEvery  int          // a small write every N reads (0 = none)
	Seed        int64
}

// DefaultBootProfile returns the calibrated Ubuntu-14.04-like profile.
func DefaultBootProfile() BootProfile {
	return BootProfile{
		TotalBytes:  72 << 20,
		ReadSectors: 6, // 3 KB average reads (many small dependent reads)
		ClusterLen:  32,
		SpanSectors: (8 << 30) / disk.SectorSize, // first 8 GB of the image
		CPUTime:     23 * sim.Second,
		WriteEvery:  400,
		Seed:        1,
	}
}

// Trace generates the deterministic boot operation list from the
// profile's own Seed. All randomness in the trace flows from that seed —
// never from the global math/rand source (enforced by bmcastlint's
// seededrand analyzer) — so a profile value fully determines its trace.
func (bp BootProfile) Trace() []BootOp {
	return bp.TraceRand(rand.New(rand.NewSource(bp.Seed)))
}

// TraceRand generates the boot operation list drawing from an injected
// rng, for callers that derive the stream from the experiment seed
// (e.g. sim.Kernel.Rand or experiments.DeriveSeed) instead of the
// profile's embedded Seed. The op sequence is a pure function of the
// profile fields and the rng's draw sequence.
func (bp BootProfile) TraceRand(rng *rand.Rand) []BootOp {
	nReads := int(bp.TotalBytes / (bp.ReadSectors * disk.SectorSize))
	if nReads < 1 {
		nReads = 1
	}
	think := sim.Duration(int64(bp.CPUTime) / int64(nReads))
	ops := make([]BootOp, 0, nReads+nReads/max(bp.WriteEvery, 1))
	var clusterBase int64
	for i := 0; i < nReads; i++ {
		if i%bp.ClusterLen == 0 {
			limit := bp.SpanSectors - int64(bp.ClusterLen)*bp.ReadSectors
			clusterBase = rng.Int63n(limit/bp.ReadSectors) * bp.ReadSectors
		}
		lba := clusterBase + int64(i%bp.ClusterLen)*bp.ReadSectors
		ops = append(ops, BootOp{LBA: lba, Count: bp.ReadSectors, Think: think})
		if bp.WriteEvery > 0 && i%bp.WriteEvery == bp.WriteEvery-1 {
			// Boot-time log/state writes land just past the read span.
			wlba := bp.SpanSectors + rng.Int63n(1<<10)*bp.ReadSectors
			ops = append(ops, BootOp{LBA: wlba, Count: bp.ReadSectors, Write: true})
		}
	}
	return ops
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
