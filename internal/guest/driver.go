// Package guest models an unmodified guest operating system: block-device
// drivers that program the IDE/AHCI controllers exactly as real minimal
// drivers do (task files, PRD tables, command lists — all through the I/O
// space, so a mediator's taps see every access), a boot sequence driven by
// a deterministic read trace, and the execution surface workloads run on.
//
// OS transparency is the point: the same driver code runs on bare metal,
// under BMcast (where its register traffic is mediated), and under KVM
// pass-through, without knowing which.
package guest

import (
	"fmt"

	"repro/internal/hw/disk"
	"repro/internal/sim"
)

// MaxTransferSectors is the largest single driver command (1 MB), matching
// typical block-layer segmentation.
const MaxTransferSectors = 2048

// BlockDriver is the guest kernel's storage driver interface.
type BlockDriver interface {
	// Init probes and initializes the device; it must be called once
	// before I/O.
	Init(p *sim.Proc) error
	// ReadSectors reads count sectors at lba. With discard=true the data
	// is not materialized into guest memory (the caller will not look at
	// it) and nil is returned on success.
	ReadSectors(p *sim.Proc, lba, count int64, discard bool) ([]byte, error)
	// WriteSectors writes the payload's sectors.
	WriteSectors(p *sim.Proc, payload disk.Payload) error
	// Flush issues a cache flush.
	Flush(p *sim.Proc) error
	// Name identifies the driver.
	Name() string
}

// validateRange rejects transfers the drivers cannot express.
func validateRange(lba, count int64) error {
	if lba < 0 || count <= 0 {
		return fmt.Errorf("guest: invalid transfer [%d,+%d)", lba, count)
	}
	if count > MaxTransferSectors {
		return fmt.Errorf("guest: transfer of %d sectors exceeds driver max %d", count, MaxTransferSectors)
	}
	return nil
}
