package guest

import (
	"bytes"
	"testing"

	"repro/internal/hw/disk"
	"repro/internal/machine"
	"repro/internal/sim"
)

func testMachine(storage machine.StorageKind) (*sim.Kernel, *machine.Machine) {
	k := sim.New(1)
	cfg := machine.RX200S6("m0")
	cfg.MemBytes = 256 << 20
	cfg.Storage = storage
	cfg.Disk.Sectors = 1 << 21 // 1 GB disk for tests
	return k, machine.New(k, cfg)
}

func driversUnderTest(t *testing.T, fn func(t *testing.T, k *sim.Kernel, m *machine.Machine, o *OS)) {
	for _, kind := range []machine.StorageKind{machine.StorageIDE, machine.StorageAHCI} {
		t.Run(kind.String(), func(t *testing.T) {
			k, m := testMachine(kind)
			o := NewOS("ubuntu", m)
			fn(t, k, m, o)
		})
	}
}

func TestDriverInit(t *testing.T) {
	driversUnderTest(t, func(t *testing.T, k *sim.Kernel, m *machine.Machine, o *OS) {
		k.Spawn("os", func(p *sim.Proc) {
			if err := o.Drv.Init(p); err != nil {
				t.Error(err)
			}
		})
		k.Run()
	})
}

func TestWriteReadRoundTrip(t *testing.T) {
	driversUnderTest(t, func(t *testing.T, k *sim.Kernel, m *machine.Machine, o *OS) {
		data := bytes.Repeat([]byte{0x42, 0x24}, 2*disk.SectorSize) // 4 sectors
		k.Spawn("os", func(p *sim.Proc) {
			if err := o.Drv.Init(p); err != nil {
				t.Error(err)
				return
			}
			src := disk.NewBuffer(1000, data, "t")
			if err := o.WriteSectors(p, disk.Payload{LBA: 1000, Count: 4, Source: src}); err != nil {
				t.Error(err)
				return
			}
			got, err := o.ReadSectors(p, 1000, 4, false)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, data) {
				t.Error("round trip mismatch")
			}
		})
		k.Run()
	})
}

func TestLargeTransferSplit(t *testing.T) {
	driversUnderTest(t, func(t *testing.T, k *sim.Kernel, m *machine.Machine, o *OS) {
		k.Spawn("os", func(p *sim.Proc) {
			if err := o.Drv.Init(p); err != nil {
				t.Error(err)
				return
			}
			src := disk.Synth{Seed: 3, Label: "big"}
			// 5000 sectors > MaxTransferSectors: needs splitting.
			if err := o.WriteSectors(p, disk.Payload{LBA: 0, Count: 5000, Source: src}); err != nil {
				t.Error(err)
				return
			}
			if _, err := o.ReadSectors(p, 0, 5000, true); err != nil {
				t.Error(err)
			}
		})
		k.Run()
		if o.Writes.Value() != 3 {
			t.Fatalf("writes = %d, want 3 split commands", o.Writes.Value())
		}
		if m.Disk.Store().SourceAt(4999).Name() != "big" {
			t.Fatal("split write did not cover the full range")
		}
	})
}

func TestSymbolicWriteStaysSymbolic(t *testing.T) {
	driversUnderTest(t, func(t *testing.T, k *sim.Kernel, m *machine.Machine, o *OS) {
		src := disk.Synth{Seed: 9, Label: "workload"}
		k.Spawn("os", func(p *sim.Proc) {
			if err := o.Drv.Init(p); err != nil {
				t.Error(err)
				return
			}
			if err := o.WriteSectors(p, disk.Payload{LBA: 64, Count: 64, Source: src}); err != nil {
				t.Error(err)
			}
		})
		k.Run()
		if got := m.Disk.Store().SourceAt(64); got != disk.SectorSource(src) {
			t.Fatalf("store source = %s, want symbolic workload", got.Name())
		}
	})
}

func TestConcurrentAHCIRequests(t *testing.T) {
	k, m := testMachine(machine.StorageAHCI)
	o := NewOS("ubuntu", m)
	var initDone bool
	sig := k.NewSignal("init")
	k.Spawn("init", func(p *sim.Proc) {
		if err := o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		initDone = true
		sig.Broadcast()
	})
	results := make([]bool, 4)
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("io", func(p *sim.Proc) {
			p.WaitCond(sig, func() bool { return initDone })
			src := disk.Synth{Seed: int64(i), Label: "c"}
			lba := int64(i) * 10000
			if err := o.WriteSectors(p, disk.Payload{LBA: lba, Count: 128, Source: src}); err != nil {
				t.Error(err)
				return
			}
			if _, err := o.ReadSectors(p, lba, 128, true); err != nil {
				t.Error(err)
				return
			}
			results[i] = true
		})
	}
	k.Run()
	for i, okDone := range results {
		if !okDone {
			t.Fatalf("concurrent request %d did not complete", i)
		}
	}
	for i := 0; i < 4; i++ {
		if m.Disk.Store().SourceAt(int64(i)*10000) == disk.Zero {
			t.Fatalf("write %d lost under concurrency", i)
		}
	}
}

func TestBootOnPreloadedDisk(t *testing.T) {
	k, m := testMachine(machine.StorageAHCI)
	img := disk.NewSynthImage("ubuntu", int64(m.Disk.Sectors)*disk.SectorSize, 11)
	m.SetDiskImage(img)
	o := NewOS("ubuntu", m)
	bp := DefaultBootProfile()
	bp.TotalBytes = 4 << 20 // shrink for test speed
	bp.CPUTime = 2 * sim.Second
	bp.SpanSectors = 1 << 20
	k.Spawn("os", func(p *sim.Proc) {
		if err := o.Boot(p, bp); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if !o.Booted {
		t.Fatal("OS did not boot")
	}
	if o.BootTook < 2*sim.Second || o.BootTook > 5*sim.Second {
		t.Fatalf("boot took %v, want ~2-5s (mostly CPU)", o.BootTook)
	}
	if o.Reads.Value() == 0 || o.Writes.Value() == 0 {
		t.Fatal("boot did no I/O")
	}
}

func TestBootTraceDeterministic(t *testing.T) {
	bp := DefaultBootProfile()
	a, b := bp.Trace(), bp.Trace()
	if len(a) != len(b) {
		t.Fatal("trace length differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d", i)
		}
	}
	var bytes int64
	for _, op := range a {
		if !op.Write {
			bytes += op.Count * disk.SectorSize
		}
	}
	if bytes != 72<<20 {
		t.Fatalf("trace reads %d bytes, want 72 MB", bytes)
	}
}

func TestBareMetalBootTime(t *testing.T) {
	// Calibration check: full boot profile on a pre-deployed local disk
	// should take ≈29 s (paper Fig 4, "OS boot" on bare metal). Uses the
	// full testbed disk geometry — seek distances matter here.
	k := sim.New(1)
	cfg := machine.RX200S6("m0")
	cfg.MemBytes = 256 << 20
	m := machine.New(k, cfg)
	m.Disk.Store().Write(0, m.Disk.Sectors, disk.Synth{Seed: 11, Label: "image:ubuntu"})
	o := NewOS("ubuntu", m)
	bp := DefaultBootProfile()
	k.Spawn("os", func(p *sim.Proc) {
		if err := o.Boot(p, bp); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	got := o.BootTook.Seconds()
	if got < 25 || got > 33 {
		t.Fatalf("bare-metal boot = %.1fs, want ~29s", got)
	}
	t.Logf("bare-metal boot time: %.1fs", got)
}

func TestValidateRange(t *testing.T) {
	if err := validateRange(0, MaxTransferSectors+1); err == nil {
		t.Fatal("oversize transfer accepted")
	}
	if err := validateRange(-1, 1); err == nil {
		t.Fatal("negative lba accepted")
	}
	if err := validateRange(0, 0); err == nil {
		t.Fatal("zero count accepted")
	}
}
