package guest

import (
	"fmt"

	"repro/internal/hw/disk"
	"repro/internal/hw/ide"
	hwio "repro/internal/hw/io"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Guest-physical addresses the IDE driver allocates for its structures.
const (
	idePRDTable = 0x10000
	ideDMABuf   = 0x100000 // 1 MB bounce buffer
)

// Legacy port bases matching ide.Controller.RegisterRegions.
const (
	ideCmdBase = 0x1F0
	ideCtlBase = 0x3F6
	ideBMBase  = 0xC000
)

// IDEDriver drives the IDE controller through port I/O, one command at a
// time, waiting for completion interrupts.
type IDEDriver struct {
	m    *machine.Machine
	lock *sim.Resource
	done *sim.Signal

	irqSeen bool
	errSeen bool
}

// NewIDEDriver returns the guest's IDE driver for machine m.
func NewIDEDriver(m *machine.Machine) *IDEDriver {
	d := &IDEDriver{
		m:    m,
		lock: sim.NewResource(m.K, m.Name+".ide-drv", 1),
		done: m.K.NewSignal(m.Name + ".ide-drv.done"),
	}
	return d
}

// Name implements BlockDriver.
func (d *IDEDriver) Name() string { return "ide" }

func (d *IDEDriver) outb(p *sim.Proc, addr int64, v uint64) {
	d.m.IO.Write(p, hwio.PIO, addr, 1, v)
}

func (d *IDEDriver) inb(p *sim.Proc, addr int64) uint64 {
	return d.m.IO.Read(p, hwio.PIO, addr, 1)
}

// irqHandler is the driver's top half: acknowledge the controller and wake
// the waiting request. It runs in interrupt context (no proc).
func (d *IDEDriver) irqHandler() {
	status := d.m.IO.Read(nil, hwio.PIO, ideCmdBase+ide.RegStatusCmd, 1)
	d.m.IO.Write(nil, hwio.PIO, ideBMBase+ide.BMRegStatus, 1, ide.BMStatusIRQ)
	d.errSeen = status&ide.StatusERR != 0
	d.irqSeen = true
	d.done.Broadcast()
}

// Init implements BlockDriver: install the interrupt handler and IDENTIFY
// the drive.
func (d *IDEDriver) Init(p *sim.Proc) error {
	d.m.StorageIRQ.SetHandler(d.irqHandler)
	d.irqSeen = false
	d.outb(p, ideCmdBase+ide.RegStatusCmd, ide.CmdIdentify)
	p.WaitCond(d.done, func() bool { return d.irqSeen })
	if d.errSeen {
		return fmt.Errorf("guest/ide: identify failed")
	}
	var sectors int64
	words := make([]uint16, 256)
	for i := range words {
		words[i] = uint16(d.inb(p, ideCmdBase+ide.RegData))
	}
	for i := 0; i < 4; i++ {
		sectors |= int64(words[100+i]) << (16 * i)
	}
	if sectors == 0 {
		return fmt.Errorf("guest/ide: drive reports no LBA48 capacity")
	}
	return nil
}

// command runs one DMA command to completion under the driver lock.
// hintSrc/hintDiscard are applied once the lock is held so concurrent
// requests cannot clobber each other's DMA hints.
func (d *IDEDriver) command(p *sim.Proc, cmd uint8, lba, count int64, write bool, hintSrc disk.SectorSource, hintDiscard bool, literal []byte) error {
	d.lock.Acquire(p)
	defer d.lock.Release()
	d.irqSeen = false
	if literal != nil {
		d.m.Mem.Write(ideDMABuf, literal)
	}
	if hintSrc != nil || hintDiscard {
		d.m.SetNextStorageDMA(ideDMABuf, hintSrc, hintDiscard)
	}

	ide.WritePRDTable(d.m.Mem, idePRDTable, ideDMABuf, count*disk.SectorSize)
	d.m.IO.Write(p, hwio.PIO, ideBMBase+ide.BMRegPRDT, 4, idePRDTable)
	d.outb(p, ideCmdBase+ide.RegSectorCount, uint64(count>>8&0xFF))
	d.outb(p, ideCmdBase+ide.RegSectorCount, uint64(count&0xFF))
	d.outb(p, ideCmdBase+ide.RegLBALow, uint64(lba>>24&0xFF))
	d.outb(p, ideCmdBase+ide.RegLBALow, uint64(lba&0xFF))
	d.outb(p, ideCmdBase+ide.RegLBAMid, uint64(lba>>32&0xFF))
	d.outb(p, ideCmdBase+ide.RegLBAMid, uint64(lba>>8&0xFF))
	d.outb(p, ideCmdBase+ide.RegLBAHigh, uint64(lba>>40&0xFF))
	d.outb(p, ideCmdBase+ide.RegLBAHigh, uint64(lba>>16&0xFF))
	d.outb(p, ideCmdBase+ide.RegDevice, ide.DeviceLBA)
	d.outb(p, ideCmdBase+ide.RegStatusCmd, uint64(cmd))
	dir := uint64(0)
	if !write {
		dir = ide.BMCmdRead
	}
	d.outb(p, ideBMBase+ide.BMRegCmd, ide.BMCmdStart|dir)

	p.WaitCond(d.done, func() bool { return d.irqSeen })
	d.outb(p, ideBMBase+ide.BMRegCmd, 0)
	if d.errSeen {
		return fmt.Errorf("guest/ide: command %#x at lba %d failed", cmd, lba)
	}
	return nil
}

// ReadSectors implements BlockDriver.
func (d *IDEDriver) ReadSectors(p *sim.Proc, lba, count int64, discard bool) ([]byte, error) {
	if err := validateRange(lba, count); err != nil {
		return nil, err
	}
	if err := d.command(p, ide.CmdReadDMAExt, lba, count, false, nil, discard, nil); err != nil {
		return nil, err
	}
	if discard {
		return nil, nil
	}
	return d.m.Mem.Read(ideDMABuf, count*disk.SectorSize), nil
}

// WriteSectors implements BlockDriver. Literal buffer payloads are copied
// through guest memory (the architectural path); other sources ride the
// DMA hint.
func (d *IDEDriver) WriteSectors(p *sim.Proc, payload disk.Payload) error {
	if err := validateRange(payload.LBA, payload.Count); err != nil {
		return err
	}
	if _, ok := payload.Source.(*disk.Buffer); ok {
		return d.command(p, ide.CmdWriteDMAExt, payload.LBA, payload.Count, true, nil, false, payload.Bytes())
	}
	return d.command(p, ide.CmdWriteDMAExt, payload.LBA, payload.Count, true, payload.Source, false, nil)
}

// Flush implements BlockDriver.
func (d *IDEDriver) Flush(p *sim.Proc) error {
	d.lock.Acquire(p)
	defer d.lock.Release()
	d.irqSeen = false
	d.outb(p, ideCmdBase+ide.RegStatusCmd, ide.CmdFlushCache)
	p.WaitCond(d.done, func() bool { return d.irqSeen })
	if d.errSeen {
		return fmt.Errorf("guest/ide: flush failed")
	}
	return nil
}
