package guest

import (
	"fmt"

	"repro/internal/ethernet"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/nic"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Guest-physical addresses for the network driver's rings and buffers.
const (
	netTXRing  = 0x30000
	netRXRing  = 0x34000
	netBufBase = 0x800000
	netRingLen = 64
	netBufSize = 0x2400 // 9 KB
)

// NetDriver is the guest's ring-NIC driver: it programs descriptor rings
// in guest memory and head/tail registers through MMIO, oblivious to
// whether a shared-NIC mediator is virtualizing those registers.
type NetDriver struct {
	m    *machine.Machine
	ring *nic.RingNIC
	irq  *hwio.IRQ

	tdt    uint32
	rxNext uint32 // next RX descriptor the driver will consume
	rdt    uint32
	txSeq  int64

	rxReady *sim.Signal
}

// NewNetDriver returns the guest driver for the machine's ring NIC. The
// ring handle is needed only for the frame side table (the simulation's
// stand-in for packet bytes in buffers).
func NewNetDriver(m *machine.Machine, ring *nic.RingNIC, irq *hwio.IRQ) *NetDriver {
	d := &NetDriver{m: m, ring: ring, irq: irq, rxReady: m.K.NewSignal(m.Name + ".net.rx")}
	return d
}

func (d *NetDriver) mmw(p *sim.Proc, off int64, v uint64) {
	d.m.IO.Write(p, hwio.MMIO, nic.RingBase+off, 4, v)
}

// Init programs the rings and enables the device.
func (d *NetDriver) Init(p *sim.Proc) error {
	d.irq.SetHandler(func() { d.rxReady.Broadcast() })
	for i := uint32(0); i < netRingLen; i++ {
		nic.WriteDesc(d.m.Mem, netRXRing, i, d.rxBuf(i), netBufSize)
	}
	d.mmw(p, nic.RegIMS, 1)
	d.mmw(p, nic.RegTDBAL, netTXRing)
	d.mmw(p, nic.RegTDLEN, netRingLen)
	d.mmw(p, nic.RegTDH, 0)
	d.mmw(p, nic.RegTDT, 0)
	d.mmw(p, nic.RegRDBAL, netRXRing)
	d.mmw(p, nic.RegRDLEN, netRingLen)
	d.mmw(p, nic.RegRDH, 0)
	d.rdt = netRingLen - 1
	d.mmw(p, nic.RegRDT, uint64(d.rdt))
	d.mmw(p, nic.RegCTRL, nic.CtrlEnable)
	return nil
}

func (d *NetDriver) txBuf(i uint32) int64 { return netBufBase + int64(i)*netBufSize }
func (d *NetDriver) rxBuf(i uint32) int64 {
	return netBufBase + int64(netRingLen+i)*netBufSize
}

// Send transmits one frame: stage it in the next TX buffer, program the
// descriptor, bump the tail register.
func (d *NetDriver) Send(p *sim.Proc, f *ethernet.Frame) {
	slot := d.tdt
	buf := d.txBuf(slot % netRingLen)
	d.ring.StageTxFrame(buf, f)
	nic.WriteDesc(d.m.Mem, netTXRing, slot, buf, uint16(f.Size))
	d.tdt = (d.tdt + 1) % netRingLen
	d.txSeq++
	d.mmw(p, nic.RegTDT, uint64(d.tdt))
}

// TryRecv returns the next received frame without blocking.
func (d *NetDriver) TryRecv() (*ethernet.Frame, bool) {
	if !nic.DescDone(d.m.Mem, netRXRing, d.rxNext) {
		return nil, false
	}
	addr := nic.ReadDescAddr(d.m.Mem, netRXRing, d.rxNext)
	f, ok := d.ring.TakeRxFrame(addr)
	nic.SetDescDone(d.m.Mem, netRXRing, d.rxNext, false)
	d.rxNext = (d.rxNext + 1) % netRingLen
	// Return the buffer to the hardware.
	d.rdt = (d.rdt + 1) % netRingLen
	d.m.IO.Write(nil, hwio.MMIO, nic.RingBase+nic.RegRDT, 4, uint64(d.rdt))
	if !ok {
		return nil, false
	}
	return f, true
}

// Recv blocks until a frame arrives or the timeout elapses.
func (d *NetDriver) Recv(p *sim.Proc, timeout sim.Duration) (*ethernet.Frame, error) {
	deadline := p.Now().Add(timeout)
	for {
		if f, ok := d.TryRecv(); ok {
			return f, nil
		}
		if p.Now() >= deadline {
			return nil, fmt.Errorf("guest/net: receive timeout")
		}
		if !p.WaitTimeout(d.rxReady, deadline.Sub(p.Now())) {
			if f, ok := d.TryRecv(); ok {
				return f, nil
			}
			return nil, fmt.Errorf("guest/net: receive timeout")
		}
	}
}
