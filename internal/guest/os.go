package guest

import (
	"fmt"

	"repro/internal/cpuvirt"
	"repro/internal/hw/disk"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// OS is the guest operating system instance on one machine.
type OS struct {
	Name string
	M    *machine.Machine
	Drv  BlockDriver

	Booted   bool
	BootTook sim.Duration

	Reads      metrics.Counter
	Writes     metrics.Counter
	BytesRead  metrics.Counter
	BytesWrote metrics.Counter
}

// NewOS creates the OS for machine m, selecting the block driver matching
// the machine's storage controller — the same driver code regardless of
// whether a VMM mediates underneath.
func NewOS(name string, m *machine.Machine) *OS {
	o := &OS{Name: name, M: m}
	switch m.Storage {
	case machine.StorageIDE:
		o.Drv = NewIDEDriver(m)
	default:
		o.Drv = NewAHCIDriver(m)
	}
	return o
}

// SetDriver overrides the block driver (the KVM baseline substitutes its
// virtio driver here; everything above the driver is unchanged).
func (o *OS) SetDriver(d BlockDriver) { o.Drv = d }

// Boot runs the OS boot sequence: driver initialization followed by the
// profile's read trace with interleaved compute.
func (o *OS) Boot(p *sim.Proc, bp BootProfile) error {
	start := p.Now()
	// The boot span is the guest's side of the causal DAG: mediated
	// commands issued by this proc parent under it (via the proc-carried
	// cause), and it parents under whatever drove the deployment.
	var sp *trace.Span
	if o.M.Trace != nil {
		sp = o.M.Trace.BeginChild(trace.Cause(p), o.M.Name, "guest", "boot",
			trace.Int("bytes", bp.TotalBytes))
	}
	prevCause := trace.SwapCause(p, sp)
	defer func() {
		trace.SwapCause(p, prevCause)
		sp.End()
	}()
	// SMP bring-up: when a VMM is underneath, each AP's startup IPI and
	// the kernel's early CR0/CR4 writes trap (paper §4.1 lists exactly
	// these events as required VM exits).
	if o.M.World.Virtualized() {
		for range o.M.World.CPUs {
			o.M.World.Exit(p, cpuvirt.ExitStartupIPI)
		}
		for i := 0; i < 2*o.M.World.NCPU(); i++ {
			o.M.World.Exit(p, cpuvirt.ExitCR)
		}
	}
	if err := o.Drv.Init(p); err != nil {
		return fmt.Errorf("guest: driver init: %w", err)
	}
	for _, op := range bp.Trace() {
		if op.Think > 0 {
			o.Compute(p, op.Think, 0.2)
		}
		if op.Write {
			src := disk.Synth{Seed: 0xB007, Label: "boot-writes"}
			if err := o.WriteSectors(p, disk.Payload{LBA: op.LBA, Count: op.Count, Source: src}); err != nil {
				return fmt.Errorf("guest: boot write at %d: %w", op.LBA, err)
			}
			continue
		}
		if _, err := o.ReadSectors(p, op.LBA, op.Count, true); err != nil {
			return fmt.Errorf("guest: boot read at %d: %w", op.LBA, err)
		}
	}
	o.Booted = true
	o.BootTook = p.Now().Sub(start)
	return nil
}

// Compute consumes d of CPU time scaled by the platform's current
// slowdown for work whose memory-bound share is memShare.
func (o *OS) Compute(p *sim.Proc, d sim.Duration, memShare float64) {
	p.Sleep(sim.Duration(float64(d) * o.M.World.Slowdown(memShare)))
}

// ReadSectors reads count sectors at lba, splitting transfers larger than
// the driver maximum. With discard=true no data is returned.
func (o *OS) ReadSectors(p *sim.Proc, lba, count int64, discard bool) ([]byte, error) {
	var out []byte
	if !discard {
		out = make([]byte, 0, count*disk.SectorSize)
	}
	for count > 0 {
		n := count
		if n > MaxTransferSectors {
			n = MaxTransferSectors
		}
		b, err := o.Drv.ReadSectors(p, lba, n, discard)
		if err != nil {
			return nil, err
		}
		if !discard {
			out = append(out, b...)
		}
		o.Reads.Inc()
		o.BytesRead.Add(n * disk.SectorSize)
		lba += n
		count -= n
	}
	return out, nil
}

// WriteSectors writes the payload, splitting transfers larger than the
// driver maximum.
func (o *OS) WriteSectors(p *sim.Proc, payload disk.Payload) error {
	lba, count := payload.LBA, payload.Count
	for count > 0 {
		n := count
		if n > MaxTransferSectors {
			n = MaxTransferSectors
		}
		err := o.Drv.WriteSectors(p, disk.Payload{LBA: lba, Count: n, Source: payload.Source})
		if err != nil {
			return err
		}
		o.Writes.Inc()
		o.BytesWrote.Add(n * disk.SectorSize)
		lba += n
		count -= n
	}
	return nil
}
