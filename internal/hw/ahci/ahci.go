// Package ahci models an AHCI host bus adapter at register and in-memory
// structure level: one port with a 32-slot command list, command tables
// with Register-H2D FISes and PRDTs in guest memory, write-1-clear
// interrupt status, and interrupt enables.
//
// The AHCI mediator in the paper (2,285 LOC) performs I/O interpretation
// against exactly these structures: it watches PxCI writes to learn which
// slots were issued, parses the command FIS in guest memory for the
// LBA/count/direction, and reads the PRDT for the guest DMA buffers. This
// model keeps those structures as real bytes in simulated guest memory so
// the mediator genuinely parses them.
package ahci

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hw/disk"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/mem"
	"repro/internal/sim"
)

// Global HBA register offsets.
const (
	RegCAP = 0x00
	RegGHC = 0x04
	RegIS  = 0x08
	RegPI  = 0x0C
)

// GHC bits.
const (
	GHCInterruptEnable = 1 << 1
	GHCAHCIEnable      = 1 << 31
)

// PortBase is the offset of port 0's register bank; each port is
// PortSpan bytes.
const (
	PortBase = 0x100
	PortSpan = 0x80
)

// Port register offsets (from the port's bank).
const (
	PxCLB  = 0x00
	PxCLBU = 0x04
	PxFB   = 0x08
	PxFBU  = 0x0C
	PxIS   = 0x10
	PxIE   = 0x14
	PxCMD  = 0x18
	PxTFD  = 0x20
	PxSIG  = 0x24
	PxSSTS = 0x28
	PxSERR = 0x30
	PxSACT = 0x34
	PxCI   = 0x38
)

// PxCMD bits.
const (
	CmdST  = 1 << 0 // start processing the command list
	CmdFRE = 1 << 4 // FIS receive enable
	CmdFR  = 1 << 14
	CmdCR  = 1 << 15
)

// PxIS bits.
const (
	ISDHRS = 1 << 0 // device-to-host register FIS (command completion)
	ISTFES = 1 << 30
)

// Task-file data (PxTFD) status bits mirror the ATA status register.
const (
	TFDBusy = 1 << 7
	TFDDRQ  = 1 << 3
	TFDErr  = 1 << 0
)

// NumSlots is the command-list depth.
const NumSlots = 32

// Structure sizes in guest memory.
const (
	CmdHeaderSize = 32
	CmdTableFIS   = 0x00 // CFIS offset within the command table
	CmdTablePRDT  = 0x80 // PRDT offset within the command table
	PRDTEntrySize = 16
	FISRegH2D     = 0x27
)

// ATA commands the HBA model executes.
const (
	CmdReadDMAExt  = 0x25
	CmdWriteDMAExt = 0x35
	CmdFlushCache  = 0xE7
	CmdIdentify    = 0xEC
)

// HBA is a single-port AHCI controller attached to one drive.
type HBA struct {
	Name string

	k      *sim.Kernel
	memory *mem.Memory
	drive  *disk.Device
	IRQ    *hwio.IRQ

	ghc uint32
	is  uint32 // global interrupt status (bit 0 = port 0)

	// Port 0 state.
	clb  uint64
	fb   uint64
	pxis uint32
	pxie uint32
	cmd  uint32
	tfd  uint32
	ci   uint32
	sact uint32

	issueOrder []int // FIFO of issued slots awaiting the engine
	execReady  *sim.Signal
	dmaScratch []byte // reusable buffer for scatterPRD materialization

	// DMA content hints keyed by buffer address (see SetNextDMA).
	hints map[int64]dmaHint

	// CmdLog counts executed ATA commands by opcode.
	CmdLog map[uint8]int64
	// SlotsIssued counts command issues (PxCI bits set).
	SlotsIssued int64
}

// New creates an HBA in front of drive. Register it with RegisterRegion.
func New(k *sim.Kernel, name string, drive *disk.Device, memory *mem.Memory, irq *hwio.IRQ) *HBA {
	h := &HBA{
		Name:      name,
		k:         k,
		memory:    memory,
		drive:     drive,
		IRQ:       irq,
		tfd:       0x50, // DRDY, not busy
		execReady: k.NewSignal(name + ".exec"),
		CmdLog:    make(map[uint8]int64),
		hints:     make(map[int64]dmaHint),
	}
	k.Spawn(name+".engine", h.engine)
	return h
}

// Drive exposes the attached disk device.
func (h *HBA) Drive() *disk.Device { return h.drive }

// ABAR is the conventional MMIO base the model registers at.
const ABAR = 0xF000_0000

// RegisterRegion registers the HBA's MMIO bank in ios and returns the
// region name for tap installation.
func (h *HBA) RegisterRegion(ios *hwio.Space) string {
	name := h.Name + ".abar"
	ios.Register(name, hwio.MMIO, ABAR, PortBase+PortSpan, h)
	return name
}

// IORead implements io.Handler.
func (h *HBA) IORead(_ *sim.Proc, off int64, _ int) uint64 {
	switch off {
	case RegCAP:
		return uint64(NumSlots-1)<<8 | 1<<30 // slots, 64-bit addressing
	case RegGHC:
		return uint64(h.ghc)
	case RegIS:
		return uint64(h.is)
	case RegPI:
		return 1 // one port
	}
	if off < PortBase {
		return 0
	}
	switch off - PortBase {
	case PxCLB:
		return uint64(uint32(h.clb))
	case PxCLBU:
		return h.clb >> 32
	case PxFB:
		return uint64(uint32(h.fb))
	case PxFBU:
		return h.fb >> 32
	case PxIS:
		return uint64(h.pxis)
	case PxIE:
		return uint64(h.pxie)
	case PxCMD:
		return uint64(h.cmd)
	case PxTFD:
		return uint64(h.tfd)
	case PxSIG:
		return 0x0101 // SATA drive signature
	case PxSSTS:
		return 0x133 // device present, Gen3, active
	case PxSERR:
		return 0
	case PxSACT:
		return uint64(h.sact)
	case PxCI:
		return uint64(h.ci)
	}
	return 0
}

// IOWrite implements io.Handler.
func (h *HBA) IOWrite(_ *sim.Proc, off int64, _ int, v uint64) {
	switch off {
	case RegGHC:
		h.ghc = uint32(v)
		return
	case RegIS:
		h.is &^= uint32(v) // write 1 to clear
		return
	}
	if off < PortBase {
		return
	}
	switch off - PortBase {
	case PxCLB:
		h.clb = h.clb&^0xFFFFFFFF | v&0xFFFFFFFF
	case PxCLBU:
		h.clb = h.clb&0xFFFFFFFF | v<<32
	case PxFB:
		h.fb = h.fb&^0xFFFFFFFF | v&0xFFFFFFFF
	case PxFBU:
		h.fb = h.fb&0xFFFFFFFF | v<<32
	case PxIS:
		h.pxis &^= uint32(v) // write 1 to clear
	case PxIE:
		h.pxie = uint32(v)
	case PxCMD:
		h.cmd = uint32(v)
		if h.cmd&CmdST != 0 {
			h.cmd |= CmdCR
		} else {
			h.cmd &^= CmdCR
		}
		if h.cmd&CmdFRE != 0 {
			h.cmd |= CmdFR
		} else {
			h.cmd &^= CmdFR
		}
	case PxCI:
		h.issueSlots(uint32(v))
	case PxSACT:
		h.sact |= uint32(v)
	}
}

// issueSlots accepts newly set CI bits in FIFO bit order.
func (h *HBA) issueSlots(v uint32) {
	if h.cmd&CmdST == 0 {
		return // command processing not started
	}
	newBits := v &^ h.ci
	h.ci |= v
	for slot := 0; slot < NumSlots; slot++ {
		if newBits&(1<<slot) != 0 {
			h.issueOrder = append(h.issueOrder, slot)
			h.SlotsIssued++
		}
	}
	if newBits != 0 {
		h.execReady.Broadcast()
	}
}

// CmdHeader is the decoded 32-byte command-list entry.
type CmdHeader struct {
	FISLen int  // command FIS length in dwords
	Write  bool // direction: host-to-device
	PRDTL  int  // PRDT entry count
	CTBA   uint64
	PRDBC  uint32
}

// ReadCmdHeader decodes slot's header from the command list at clb.
func ReadCmdHeader(m *mem.Memory, clb uint64, slot int) CmdHeader {
	var b [CmdHeaderSize]byte
	m.ReadInto(int64(clb)+int64(slot)*CmdHeaderSize, b[:])
	dw0 := binary.LittleEndian.Uint32(b[0:])
	return CmdHeader{
		FISLen: int(dw0 & 0x1F),
		Write:  dw0&(1<<6) != 0,
		PRDTL:  int(dw0 >> 16),
		PRDBC:  binary.LittleEndian.Uint32(b[4:]),
		CTBA:   uint64(binary.LittleEndian.Uint32(b[8:])) | uint64(binary.LittleEndian.Uint32(b[12:]))<<32,
	}
}

// WriteCmdHeader encodes a header into the command list.
func WriteCmdHeader(m *mem.Memory, clb uint64, slot int, hd CmdHeader) {
	var b [CmdHeaderSize]byte
	dw0 := uint32(hd.FISLen&0x1F) | uint32(hd.PRDTL)<<16
	if hd.Write {
		dw0 |= 1 << 6
	}
	binary.LittleEndian.PutUint32(b[0:], dw0)
	binary.LittleEndian.PutUint32(b[4:], hd.PRDBC)
	binary.LittleEndian.PutUint32(b[8:], uint32(hd.CTBA))
	binary.LittleEndian.PutUint32(b[12:], uint32(hd.CTBA>>32))
	m.Write(int64(clb)+int64(slot)*CmdHeaderSize, b[:])
}

// FIS is the decoded Register H2D FIS.
type FIS struct {
	Command uint8
	LBA     int64
	Count   int64
}

// ReadFIS decodes the command FIS from a command table.
func ReadFIS(m *mem.Memory, ctba uint64) (FIS, error) {
	var b [20]byte
	m.ReadInto(int64(ctba)+CmdTableFIS, b[:])
	if b[0] != FISRegH2D {
		return FIS{}, fmt.Errorf("ahci: not a Register H2D FIS: %#x", b[0])
	}
	f := FIS{Command: b[2]}
	f.LBA = int64(b[4]) | int64(b[5])<<8 | int64(b[6])<<16 |
		int64(b[8])<<24 | int64(b[9])<<32 | int64(b[10])<<40
	f.Count = int64(b[12]) | int64(b[13])<<8
	if f.Count == 0 {
		f.Count = 65536
	}
	return f, nil
}

// WriteFIS encodes a Register H2D FIS into a command table.
func WriteFIS(m *mem.Memory, ctba uint64, f FIS) {
	var b [20]byte
	b[0] = FISRegH2D
	b[1] = 1 << 7 // C bit: command register update
	b[2] = f.Command
	b[4], b[5], b[6] = byte(f.LBA), byte(f.LBA>>8), byte(f.LBA>>16)
	b[7] = 1 << 6 // LBA mode
	b[8], b[9], b[10] = byte(f.LBA>>24), byte(f.LBA>>32), byte(f.LBA>>40)
	b[12], b[13] = byte(f.Count), byte(f.Count>>8)
	m.Write(int64(ctba)+CmdTableFIS, b[:])
}

// PRD is one decoded PRDT entry.
type PRD struct {
	Addr  int64
	Bytes int64
}

// ReadPRDT decodes n PRDT entries from a command table.
func ReadPRDT(m *mem.Memory, ctba uint64, n int) []PRD {
	out := make([]PRD, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ReadPRD(m, ctba, i))
	}
	return out
}

// ReadPRD decodes the i'th PRDT entry from a command table without
// allocating — the hot paths walk entries one at a time instead of
// materializing the whole table.
func ReadPRD(m *mem.Memory, ctba uint64, i int) PRD {
	var b [PRDTEntrySize]byte
	m.ReadInto(int64(ctba)+CmdTablePRDT+int64(i)*PRDTEntrySize, b[:])
	addr := int64(binary.LittleEndian.Uint32(b[0:])) | int64(binary.LittleEndian.Uint32(b[4:]))<<32
	dbc := int64(binary.LittleEndian.Uint32(b[12:])&0x3FFFFF) + 1 // 0-based
	return PRD{Addr: addr, Bytes: dbc}
}

// WritePRDT encodes PRDT entries into a command table.
func WritePRDT(m *mem.Memory, ctba uint64, prds []PRD) {
	for i, pe := range prds {
		var b [PRDTEntrySize]byte
		binary.LittleEndian.PutUint32(b[0:], uint32(pe.Addr))
		binary.LittleEndian.PutUint32(b[4:], uint32(pe.Addr>>32))
		binary.LittleEndian.PutUint32(b[12:], uint32(pe.Bytes-1)&0x3FFFFF)
		m.Write(int64(ctba)+CmdTablePRDT+int64(i)*PRDTEntrySize, b[:])
	}
}

// dmaHint is a DMA content annotation: src supplies write data; discard
// marks read data as not-to-be-materialized.
type dmaHint struct {
	src     disk.SectorSource
	discard bool
}

// SetNextDMA annotates the DMA buffer at bufAddr, exactly as
// ide.Controller.SetNextDMA does: a simulation affordance keyed by buffer
// address so guest and VMM hints never collide.
func (h *HBA) SetNextDMA(bufAddr int64, src disk.SectorSource, discard bool) {
	h.hints[bufAddr] = dmaHint{src: src, discard: discard}
}

// TakeHintAt removes and returns the DMA annotation for bufAddr, for
// mediators that swallow a command issue and replay it later.
func (h *HBA) TakeHintAt(bufAddr int64) (src disk.SectorSource, discard, armed bool) {
	hint, ok := h.hints[bufAddr]
	if !ok {
		return nil, false, false
	}
	delete(h.hints, bufAddr)
	return hint.src, hint.discard, true
}

// engine processes issued slots in FIFO order.
func (h *HBA) engine(p *sim.Proc) {
	for {
		p.WaitCond(h.execReady, func() bool { return len(h.issueOrder) > 0 })
		slot := h.issueOrder[0]
		n := copy(h.issueOrder, h.issueOrder[1:])
		h.issueOrder = h.issueOrder[:n] // shift in place; keep the backing array
		h.execute(p, slot)
	}
}

func (h *HBA) execute(p *sim.Proc, slot int) {
	hd := ReadCmdHeader(h.memory, h.clb, slot)
	fis, err := ReadFIS(h.memory, hd.CTBA)
	if err != nil {
		h.fault(slot)
		return
	}
	h.CmdLog[fis.Command]++
	h.tfd |= TFDBusy
	var hintSrc disk.SectorSource
	var discard bool
	if hd.PRDTL > 0 {
		hintSrc, discard, _ = h.TakeHintAt(ReadPRD(h.memory, hd.CTBA, 0).Addr)
	}

	switch fis.Command {
	case CmdFlushCache:
		p.Sleep(500 * sim.Microsecond)
	case CmdIdentify:
		p.Sleep(100 * sim.Microsecond)
		// Identify data DMA'd to the first PRD buffer.
		if hd.PRDTL > 0 {
			h.memory.Write(ReadPRD(h.memory, hd.CTBA, 0).Addr, h.identifyData())
		}
	case CmdReadDMAExt, CmdWriteDMAExt:
		if fis.LBA < 0 || fis.LBA+fis.Count > h.drive.Sectors {
			h.fault(slot)
			return
		}
		if hd.Write != (fis.Command == CmdWriteDMAExt) {
			h.fault(slot)
			return
		}
		if hd.Write {
			src := hintSrc
			if src == nil {
				src = h.gatherPRD(hd, fis)
			}
			h.drive.Write(p, fis.LBA, fis.Count, src)
		} else {
			pl := h.drive.Read(p, fis.LBA, fis.Count)
			if !discard {
				h.scatterPRD(hd, pl)
			}
		}
		hd.PRDBC = uint32(fis.Count * disk.SectorSize)
		WriteCmdHeader(h.memory, h.clb, slot, hd)
	default:
		h.fault(slot)
		return
	}
	h.completeSlot(slot, ISDHRS)
}

func (h *HBA) fault(slot int) {
	h.tfd = 0x50 | TFDErr
	h.completeSlot(slot, ISDHRS|ISTFES)
}

func (h *HBA) completeSlot(slot int, isBits uint32) {
	if isBits&ISTFES == 0 {
		h.tfd = 0x50
	}
	h.ci &^= 1 << slot
	h.pxis |= isBits
	if h.pxis&h.pxie != 0 && h.ghc&GHCInterruptEnable != 0 {
		h.is |= 1 // port 0
		h.IRQ.Raise()
	}
}

func (h *HBA) identifyData() []byte {
	b := make([]byte, 512)
	put16 := func(word int, v uint16) { b[word*2] = byte(v); b[word*2+1] = byte(v >> 8) }
	put16(83, 1<<10)
	for i := 0; i < 4; i++ {
		put16(100+i, uint16(h.drive.Sectors>>(16*i)))
	}
	return b
}

func (h *HBA) gatherPRD(hd CmdHeader, fis FIS) disk.SectorSource {
	want := fis.Count * disk.SectorSize
	buf := make([]byte, 0, want)
	for i := 0; i < hd.PRDTL; i++ {
		pe := ReadPRD(h.memory, hd.CTBA, i)
		take := pe.Bytes
		if rem := want - int64(len(buf)); take > rem {
			take = rem
		}
		n := len(buf)
		buf = buf[:n+int(take)]
		h.memory.ReadInto(pe.Addr, buf[n:])
		if int64(len(buf)) >= want {
			break
		}
	}
	if int64(len(buf)) < want {
		buf = append(buf, make([]byte, want-int64(len(buf)))...)
	}
	return disk.NewBuffer(fis.LBA, buf, h.Name+".dma")
}

func (h *HBA) scatterPRD(hd CmdHeader, pl disk.Payload) {
	data := pl.AppendTo(h.dmaScratch[:0])
	h.dmaScratch = data[:0]
	for i := 0; i < hd.PRDTL; i++ {
		pe := ReadPRD(h.memory, hd.CTBA, i)
		take := pe.Bytes
		if rem := int64(len(data)); take > rem {
			take = rem
		}
		h.memory.Write(pe.Addr, data[:take])
		data = data[take:]
		if len(data) == 0 {
			break
		}
	}
}

// Busy reports whether a command is currently executing.
func (h *HBA) Busy() bool { return h.tfd&TFDBusy != 0 || len(h.issueOrder) > 0 }

// OutstandingCI reports the current command-issue bitmap.
func (h *HBA) OutstandingCI() uint32 { return h.ci }

// CLB reports the command-list base the driver programmed (for mediators).
func (h *HBA) CLB() uint64 { return h.clb }
