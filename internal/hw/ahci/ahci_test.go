package ahci

import (
	"bytes"
	"testing"

	"repro/internal/hw/disk"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/mem"
	"repro/internal/sim"
)

// rig assembles HBA + drive + memory + an inline minimal driver.
type rig struct {
	k    *sim.Kernel
	m    *mem.Memory
	d    *disk.Device
	h    *HBA
	ios  *hwio.Space
	done *sim.Signal
	irqs int
}

const (
	clbAddr   = 0x4000  // command list
	ctbaAddr  = 0x8000  // command tables, one per slot, 0x100 apart
	bufAddr   = 0x40000 // DMA buffer
	abarMMIO  = ABAR
	port0Base = abarMMIO + PortBase
)

func newRig() *rig {
	k := sim.New(1)
	m := mem.New(64 << 20)
	params := disk.Constellation2()
	params.Sectors = 1 << 20
	d := disk.NewDevice(k, "sda", params)
	irq := hwio.NewIRQ(k, "ahci")
	h := New(k, "ahci0", d, m, irq)
	ios := hwio.NewSpace()
	h.RegisterRegion(ios)
	r := &rig{k: k, m: m, d: d, h: h, ios: ios, done: k.NewSignal("drv.done")}
	irq.SetHandler(func() {
		r.irqs++
		is := r.ios.Read(nil, hwio.MMIO, port0Base+PxIS, 4)
		r.ios.Write(nil, hwio.MMIO, port0Base+PxIS, 4, is) // ack
		r.ios.Write(nil, hwio.MMIO, abarMMIO+RegIS, 4, 1)
		r.done.Broadcast()
	})
	return r
}

func (r *rig) mmw(p *sim.Proc, off int64, v uint64) { r.ios.Write(p, hwio.MMIO, abarMMIO+off, 4, v) }
func (r *rig) mmr(p *sim.Proc, off int64) uint64    { return r.ios.Read(p, hwio.MMIO, abarMMIO+off, 4) }

// initPort brings the port up the way libahci does.
func (r *rig) initPort(p *sim.Proc) {
	r.mmw(p, RegGHC, GHCAHCIEnable|GHCInterruptEnable)
	r.mmw(p, PortBase+PxCLB, clbAddr)
	r.mmw(p, PortBase+PxCLBU, 0)
	r.mmw(p, PortBase+PxFB, 0x3000)
	r.mmw(p, PortBase+PxFBU, 0)
	r.mmw(p, PortBase+PxIE, ISDHRS|ISTFES)
	r.mmw(p, PortBase+PxCMD, CmdST|CmdFRE)
}

// issue builds a command in slot and sets its CI bit.
func (r *rig) issue(p *sim.Proc, slot int, cmd uint8, lba, count int64, write bool) {
	ctba := uint64(ctbaAddr + slot*0x200)
	WriteFIS(r.m, ctba, FIS{Command: cmd, LBA: lba, Count: count})
	WritePRDT(r.m, ctba, []PRD{{Addr: bufAddr, Bytes: count * disk.SectorSize}})
	WriteCmdHeader(r.m, clbAddr, slot, CmdHeader{FISLen: 5, Write: write, PRDTL: 1, CTBA: ctba})
	r.mmw(p, PortBase+PxCI, 1<<slot)
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := newRig()
	data := bytes.Repeat([]byte{0xC3}, 4*disk.SectorSize)
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.initPort(p)
		r.m.Write(bufAddr, data)
		r.issue(p, 0, CmdWriteDMAExt, 200, 4, true)
		p.Wait(r.done)
		r.m.Write(bufAddr, make([]byte, len(data)))
		r.issue(p, 1, CmdReadDMAExt, 200, 4, false)
		p.Wait(r.done)
		if got := r.m.Read(bufAddr, int64(len(data))); !bytes.Equal(got, data) {
			t.Error("AHCI DMA round trip mismatch")
		}
	})
	r.k.Run()
	if r.irqs != 2 {
		t.Fatalf("irqs = %d, want 2", r.irqs)
	}
}

func TestCIClearedOnCompletion(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.initPort(p)
		r.issue(p, 5, CmdReadDMAExt, 10, 1, false)
		if ci := r.mmr(p, PortBase+PxCI); ci&(1<<5) == 0 {
			t.Error("CI bit not set after issue")
		}
		p.Wait(r.done)
		if ci := r.mmr(p, PortBase+PxCI); ci&(1<<5) != 0 {
			t.Error("CI bit still set after completion")
		}
	})
	r.k.Run()
}

func TestMultipleSlotsFIFO(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.initPort(p)
		// Issue three commands at once in one CI write.
		for slot, lba := range []int64{100, 200, 300} {
			ctba := uint64(ctbaAddr + slot*0x200)
			WriteFIS(r.m, ctba, FIS{Command: CmdWriteDMAExt, LBA: lba, Count: 1})
			WritePRDT(r.m, ctba, []PRD{{Addr: bufAddr, Bytes: disk.SectorSize}})
			WriteCmdHeader(r.m, clbAddr, slot, CmdHeader{FISLen: 5, Write: true, PRDTL: 1, CTBA: ctba})
		}
		r.m.Write(bufAddr, bytes.Repeat([]byte{1}, disk.SectorSize))
		r.mmw(p, PortBase+PxCI, 0b111)
		for r.mmr(p, PortBase+PxCI) != 0 {
			p.Wait(r.done)
		}
	})
	r.k.Run()
	for _, lba := range []int64{100, 200, 300} {
		if r.d.Store().SourceAt(lba) == disk.Zero {
			t.Fatalf("slot write at %d did not land", lba)
		}
	}
	if r.h.SlotsIssued != 3 {
		t.Fatalf("SlotsIssued = %d, want 3", r.h.SlotsIssued)
	}
}

func TestNoProcessingWithoutST(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.mmw(p, RegGHC, GHCAHCIEnable|GHCInterruptEnable)
		r.mmw(p, PortBase+PxCLB, clbAddr)
		// ST not set: issue must be ignored.
		r.issue(p, 0, CmdReadDMAExt, 10, 1, false)
		p.Sleep(50 * sim.Millisecond)
	})
	r.k.Run()
	if r.irqs != 0 {
		t.Fatal("command processed with ST clear")
	}
}

func TestInterruptMasking(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.initPort(p)
		r.mmw(p, PortBase+PxIE, 0) // mask everything
		r.issue(p, 0, CmdReadDMAExt, 10, 1, false)
		// Poll PxCI for completion, like a mediator would.
		for r.mmr(p, PortBase+PxCI)&1 != 0 {
			p.Sleep(100 * sim.Microsecond)
		}
	})
	r.k.Run()
	if r.irqs != 0 {
		t.Fatal("interrupt fired despite masked PxIE")
	}
	if r.h.pxis&ISDHRS == 0 {
		t.Fatal("PxIS not recording completion while masked")
	}
}

func TestGHCInterruptEnableGates(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.initPort(p)
		r.mmw(p, RegGHC, GHCAHCIEnable) // clear global IE
		r.issue(p, 0, CmdReadDMAExt, 10, 1, false)
		for r.mmr(p, PortBase+PxCI)&1 != 0 {
			p.Sleep(100 * sim.Microsecond)
		}
	})
	r.k.Run()
	if r.irqs != 0 {
		t.Fatal("interrupt fired despite GHC.IE clear")
	}
}

func TestTaskFileErrorOnBadLBA(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.initPort(p)
		r.issue(p, 0, CmdReadDMAExt, r.d.Sectors+5, 1, false)
		p.Wait(r.done)
		if tfd := r.mmr(p, PortBase+PxTFD); tfd&TFDErr == 0 {
			t.Errorf("TFD = %#x, want error bit", tfd)
		}
	})
	r.k.Run()
}

func TestIdentify(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.initPort(p)
		r.issue(p, 0, CmdIdentify, 0, 1, false)
		p.Wait(r.done)
		b := r.m.Read(bufAddr, 512)
		sectors := int64(b[200]) | int64(b[201])<<8 | int64(b[202])<<16 |
			int64(b[203])<<24 | int64(b[204])<<32
		if sectors != r.d.Sectors {
			t.Errorf("identify sectors = %d, want %d", sectors, r.d.Sectors)
		}
	})
	r.k.Run()
}

func TestHeaderFISPRDTRoundTrip(t *testing.T) {
	m := mem.New(1 << 20)
	hd := CmdHeader{FISLen: 5, Write: true, PRDTL: 3, CTBA: 0xABCD00, PRDBC: 4096}
	WriteCmdHeader(m, 0x100, 7, hd)
	if got := ReadCmdHeader(m, 0x100, 7); got != hd {
		t.Fatalf("header round trip: got %+v want %+v", got, hd)
	}
	f := FIS{Command: CmdReadDMAExt, LBA: 0x123456789A, Count: 2048}
	WriteFIS(m, 0x2000, f)
	got, err := ReadFIS(m, 0x2000)
	if err != nil || got != f {
		t.Fatalf("FIS round trip: got %+v, %v", got, err)
	}
	prds := []PRD{{Addr: 0x10000, Bytes: 65536}, {Addr: 0x30000, Bytes: 512}}
	WritePRDT(m, 0x2000, prds)
	rt := ReadPRDT(m, 0x2000, 2)
	for i := range prds {
		if rt[i] != prds[i] {
			t.Fatalf("PRDT round trip: %+v vs %+v", rt[i], prds[i])
		}
	}
}

func TestReadFISRejectsGarbage(t *testing.T) {
	m := mem.New(1 << 20)
	if _, err := ReadFIS(m, 0x500); err == nil { // zeroed memory: not a FIS
		t.Fatal("garbage FIS accepted")
	}
}

func TestSymbolicHints(t *testing.T) {
	r := newRig()
	src := disk.Synth{Seed: 5, Label: "wl"}
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.initPort(p)
		r.h.SetNextDMA(bufAddr, src, false)
		r.issue(p, 0, CmdWriteDMAExt, 700, 8, true)
		p.Wait(r.done)
	})
	r.k.Run()
	if got := r.d.Store().SourceAt(700); got != disk.SectorSource(src) {
		t.Fatalf("source = %s, want wl", got.Name())
	}
}

func TestDirectionMismatchFaults(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.initPort(p)
		// Header says write, FIS says read: fault.
		r.issue(p, 0, CmdReadDMAExt, 10, 1, true)
		p.Wait(r.done)
		if tfd := r.mmr(p, PortBase+PxTFD); tfd&TFDErr == 0 {
			t.Error("direction mismatch not faulted")
		}
	})
	r.k.Run()
}
