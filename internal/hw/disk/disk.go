package disk

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Params is the mechanical/timing model of a drive.
type Params struct {
	Sectors    int64
	SeekMin    sim.Duration // track-to-track seek
	SeekMax    sim.Duration // full-stroke seek
	RotAvg     sim.Duration // average rotational latency (half a revolution)
	ReadRate   float64      // sustained media read rate, bytes/sec
	WriteRate  float64      // sustained media write rate, bytes/sec
	CacheHit   sim.Duration // service time for a drive-cache hit
	CacheSlots int          // number of recently-accessed ranges remembered
	// WriteCacheSectors is the largest write absorbed by the drive's
	// write-back cache: it completes at interface speed without moving
	// the head, and the media commit happens during idle time (which the
	// model treats as free). Larger writes go straight to the media.
	WriteCacheSectors int64
	// CacheAcceptRate is the interface rate for cache-absorbed writes.
	CacheAcceptRate float64
}

// Constellation2 returns parameters for the Seagate Constellation.2
// ST9500620NS (500 GB, 7200 rpm SATA) used in the paper's testbed,
// calibrated to the paper's measured 116.6 MB/s read and 111.9 MB/s write.
func Constellation2() Params {
	return Params{
		Sectors:    500 * 1000 * 1000 * 1000 / SectorSize,
		SeekMin:    500 * sim.Microsecond,
		SeekMax:    16 * sim.Millisecond,
		RotAvg:     4167 * sim.Microsecond, // 7200 rpm: 8.33 ms/rev
		ReadRate:   116.6e6,
		WriteRate:  111.9e6,
		CacheHit:   100 * sim.Microsecond,
		CacheSlots: 32,
		// 64 MB of drive cache absorbs sub-256 KB bursts.
		WriteCacheSectors: 512,
		CacheAcceptRate:   250e6,
	}
}

// Device is a disk drive: the content Store plus the mechanism that
// serializes and times accesses. All accesses go through a single arm.
type Device struct {
	Params
	k     *sim.Kernel
	store *Store
	arm   *sim.Resource
	head  int64 // LBA under the head after the last access

	cache []cachedRange // LRU of recently read ranges (drive cache)

	// Statistics.
	BytesRead    metrics.Counter
	BytesWritten metrics.Counter
	Reads        metrics.Counter
	Writes       metrics.Counter
	Seeks        metrics.Counter
	CacheHits    metrics.Counter
	busyUntil    sim.Time
}

type cachedRange struct{ start, end int64 }

// NewDevice returns a drive with the given parameters and an all-zero store.
func NewDevice(k *sim.Kernel, name string, p Params) *Device {
	return &Device{
		Params: p,
		k:      k,
		store:  NewStore(p.Sectors),
		arm:    sim.NewResource(k, name+".arm", 1),
	}
}

// Store exposes the content state (for verification and direct setup).
func (d *Device) Store() *Store { return d.store }

// Head reports the LBA currently under the head.
func (d *Device) Head() int64 { return d.head }

// ServiceTime reports the mechanical time to access count sectors at lba
// from the current head position, without performing the access.
func (d *Device) ServiceTime(lba, count int64, write bool) sim.Duration {
	if !write && d.inCache(lba, count) {
		return d.CacheHit
	}
	if write && d.cachedWrite(count) {
		return d.CacheHit + sim.RateDuration(count*SectorSize, d.CacheAcceptRate)
	}
	rate := d.ReadRate
	if write {
		rate = d.WriteRate
	}
	transfer := sim.RateDuration(count*SectorSize, rate)
	if lba == d.head {
		return transfer // streaming: no seek, no rotational delay
	}
	dist := lba - d.head
	if dist < 0 {
		dist = -dist
	}
	frac := float64(dist) / float64(d.Sectors)
	seek := d.SeekMin + sim.Duration(float64(d.SeekMax-d.SeekMin)*math.Sqrt(frac))
	return seek + d.RotAvg + transfer
}

// cachedWrite reports whether a write of count sectors is absorbed by the
// drive's write-back cache.
func (d *Device) cachedWrite(count int64) bool {
	return d.WriteCacheSectors > 0 && count <= d.WriteCacheSectors
}

func (d *Device) inCache(lba, count int64) bool {
	for _, c := range d.cache {
		if lba >= c.start && lba+count <= c.end {
			return true
		}
	}
	return false
}

func (d *Device) remember(lba, count int64) {
	if d.CacheSlots == 0 {
		return
	}
	d.cache = append(d.cache, cachedRange{start: lba, end: lba + count})
	if len(d.cache) > d.CacheSlots {
		d.cache = d.cache[1:]
	}
}

// access acquires the arm, spends the service time, applies fn, and updates
// head position and stats.
func (d *Device) access(p *sim.Proc, lba, count int64, write bool, fn func()) {
	d.arm.Acquire(p)
	t := d.ServiceTime(lba, count, write)
	cached := (!write && d.inCache(lba, count)) || (write && d.cachedWrite(count))
	if lba != d.head && !cached {
		d.Seeks.Inc()
	}
	if cached {
		d.CacheHits.Inc()
	} else {
		d.head = lba + count
	}
	p.Sleep(t)
	fn()
	if write {
		d.Writes.Inc()
		d.BytesWritten.Add(count * SectorSize)
	} else {
		d.Reads.Inc()
		d.BytesRead.Add(count * SectorSize)
		d.remember(lba, count)
	}
	d.busyUntil = p.Now()
	d.arm.Release()
}

// Read performs a blocking read of count sectors at lba, returning the
// content as a (possibly symbolic) payload.
func (d *Device) Read(p *sim.Proc, lba, count int64) Payload {
	var pl Payload
	d.access(p, lba, count, false, func() { pl = d.store.ReadPayload(lba, count) })
	return pl
}

// Write performs a blocking write of count sectors at lba with content from
// src.
func (d *Device) Write(p *sim.Proc, lba, count int64, src SectorSource) {
	d.access(p, lba, count, true, func() { d.store.Write(lba, count, src) })
}

// Busy reports whether a command is being serviced right now.
func (d *Device) Busy() bool { return d.arm.InUse() > 0 }
