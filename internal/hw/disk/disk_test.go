package disk

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func testParams() Params {
	p := Constellation2()
	p.Sectors = 1 << 20 // keep test disks small
	return p
}

func TestSequentialFasterThanRandom(t *testing.T) {
	k := sim.New(1)
	d := NewDevice(k, "sda", testParams())
	seqT, randT := sim.Duration(0), sim.Duration(0)
	k.Spawn("seq", func(p *sim.Proc) {
		start := p.Now()
		for i := int64(0); i < 10; i++ {
			d.Read(p, i*128, 128) // back-to-back sequential
		}
		seqT = p.Now().Sub(start)
	})
	k.Run()

	k2 := sim.New(1)
	d2 := NewDevice(k2, "sdb", testParams())
	k2.Spawn("rand", func(p *sim.Proc) {
		start := p.Now()
		for i := int64(0); i < 10; i++ {
			d2.Read(p, (i*379+7)*1024%d2.Sectors, 128)
		}
		randT = p.Now().Sub(start)
	})
	k2.Run()
	if seqT >= randT {
		t.Fatalf("sequential %v not faster than random %v", seqT, randT)
	}
}

func TestSequentialThroughputNearMediaRate(t *testing.T) {
	k := sim.New(1)
	d := NewDevice(k, "sda", testParams())
	const total = 200 << 20 // 200 MB, as fio in the paper
	const block = 1 << 20
	var elapsed sim.Duration
	k.Spawn("fio", func(p *sim.Proc) {
		start := p.Now()
		for off := int64(0); off < total; off += block {
			d.Read(p, off/SectorSize, block/SectorSize)
		}
		elapsed = p.Now().Sub(start)
	})
	k.Run()
	rate := float64(total) / elapsed.Seconds()
	if rate < 110e6 || rate > 120e6 {
		t.Fatalf("sequential read rate = %.1f MB/s, want ~116.6", rate/1e6)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	p := testParams()
	k := sim.New(1)
	d := NewDevice(k, "sda", p)
	rt := d.ServiceTime(0, 2048, false)
	wt := d.ServiceTime(0, 2048, true)
	if wt <= rt {
		t.Fatalf("write %v not slower than read %v", wt, rt)
	}
}

func TestCacheHit(t *testing.T) {
	k := sim.New(1)
	d := NewDevice(k, "sda", testParams())
	k.Spawn("p", func(p *sim.Proc) {
		d.Read(p, 1000, 8)
		d.Read(p, 5000, 8) // move the head away
		before := p.Now()
		d.Read(p, 1000, 8) // same range again: drive cache hit
		if got := p.Now().Sub(before); got != d.CacheHit {
			t.Errorf("cached read took %v, want %v", got, d.CacheHit)
		}
	})
	k.Run()
	if d.CacheHits.Value() != 1 {
		t.Fatalf("CacheHits = %d, want 1", d.CacheHits.Value())
	}
}

func TestArmSerializesRequests(t *testing.T) {
	k := sim.New(1)
	d := NewDevice(k, "sda", testParams())
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("rw", func(p *sim.Proc) {
			d.Read(p, int64(i)*100000, 256)
			ends = append(ends, p.Now())
		})
	}
	k.Run()
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatalf("overlapping service completions: %v", ends)
		}
	}
}

func TestReadWriteContent(t *testing.T) {
	k := sim.New(1)
	d := NewDevice(k, "sda", testParams())
	data := bytes.Repeat([]byte{0x5A}, 4*SectorSize)
	k.Spawn("p", func(p *sim.Proc) {
		d.Write(p, 100, 4, NewBuffer(100, data, "w"))
		got := d.Read(p, 100, 4).Bytes()
		if !bytes.Equal(got, data) {
			t.Error("device read-back mismatch")
		}
	})
	k.Run()
	if d.BytesWritten.Value() != 4*SectorSize || d.BytesRead.Value() != 4*SectorSize {
		t.Fatalf("stats: read=%d written=%d", d.BytesRead.Value(), d.BytesWritten.Value())
	}
}

func TestAlternatingRegionsIncurSeeks(t *testing.T) {
	// The Fig-14 effect: two writers at distant LBAs force a seek per
	// access, so total throughput drops below one sequential stream.
	k := sim.New(1)
	d := NewDevice(k, "sda", testParams())
	var altT sim.Duration
	k.Spawn("alt", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 20; i++ {
			lba := int64(0)
			if i%2 == 1 {
				lba = d.Sectors / 2
			}
			d.Write(p, lba+int64(i/2)*2048, 2048, Synth{Seed: 1})
		}
		altT = p.Now().Sub(start)
	})
	k.Run()

	k2 := sim.New(1)
	d2 := NewDevice(k2, "sdb", testParams())
	var seqT sim.Duration
	k2.Spawn("seq", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 20; i++ {
			d2.Write(p, int64(i)*2048, 2048, Synth{Seed: 1})
		}
		seqT = p.Now().Sub(start)
	})
	k2.Run()
	if altT <= seqT {
		t.Fatalf("alternating %v not slower than sequential %v", altT, seqT)
	}
	if d.Seeks.Value() <= d2.Seeks.Value() {
		t.Fatalf("seeks: alternating %d vs sequential %d", d.Seeks.Value(), d2.Seeks.Value())
	}
}

func TestImageAsSource(t *testing.T) {
	img := NewSynthImage("ubuntu", 1<<20, 42)
	if img.Size() != 1<<20 || img.Sectors != (1<<20)/SectorSize {
		t.Fatal("image geometry wrong")
	}
	a := make([]byte, SectorSize)
	b := make([]byte, SectorSize)
	img.Fill(7, a)
	img.Fill(7, b)
	if !bytes.Equal(a, b) {
		t.Fatal("synthetic image content not deterministic")
	}
	img.Fill(8, b)
	if bytes.Equal(a, b) {
		t.Fatal("different sectors produced identical content")
	}
}

func TestLiteralImage(t *testing.T) {
	data := []byte("kernel, initrd, rootfs bytes")
	img := NewLiteralImage("tiny", data)
	buf := make([]byte, SectorSize)
	img.ReadAt(0, buf)
	if !bytes.Equal(buf[:len(data)], data) {
		t.Fatal("literal image content mismatch")
	}
}

func TestBufferSourceOffsets(t *testing.T) {
	b := NewBuffer(10, []byte{1, 2, 3}, "b")
	buf := make([]byte, SectorSize)
	b.Fill(10, buf)
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Fatal("in-range fill wrong")
	}
	b.Fill(11, buf) // past the data: zeros
	if buf[0] != 0 {
		t.Fatal("out-of-data fill not zero")
	}
	b.Fill(9, buf) // one sector before base: zeros
	if buf[0] != 0 {
		t.Fatal("before-base fill not zero")
	}
}

func TestSynthDeterminism(t *testing.T) {
	s1, s2 := Synth{Seed: 5}, Synth{Seed: 5}
	a := make([]byte, 2*SectorSize)
	b := make([]byte, 2*SectorSize)
	s1.Fill(100, a)
	s2.Fill(100, b)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed, different content")
	}
	s3 := Synth{Seed: 6}
	s3.Fill(100, b)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds, same content")
	}
}

func TestSynthFillMatchesPerSectorFill(t *testing.T) {
	// Filling a range at once must equal filling sector by sector, so
	// payload content is independent of transfer chunking.
	s := Synth{Seed: 11}
	whole := make([]byte, 4*SectorSize)
	s.Fill(20, whole)
	for i := int64(0); i < 4; i++ {
		one := make([]byte, SectorSize)
		s.Fill(20+i, one)
		if !bytes.Equal(one, whole[i*SectorSize:(i+1)*SectorSize]) {
			t.Fatalf("sector %d differs between chunked and whole fill", 20+i)
		}
	}
}

func TestPayloadLen(t *testing.T) {
	p := Payload{LBA: 0, Count: 8, Source: Zero}
	if p.Len() != 8*SectorSize {
		t.Fatalf("Len = %d", p.Len())
	}
	if len(p.Bytes()) != 8*SectorSize {
		t.Fatalf("Bytes len = %d", len(p.Bytes()))
	}
}
