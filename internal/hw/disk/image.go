package disk

// Image is an OS disk image held by the storage server. It is itself a
// SectorSource: BMcast's identical-block-address-space design means image
// sector N is local-disk sector N, so the image's content function applies
// directly to local LBAs.
type Image struct {
	ImageName string
	Sectors   int64
	src       SectorSource
}

// NewSynthImage returns an image of the given byte size with deterministic
// synthetic content. Large experiment images use this form; no bulk data is
// materialized.
func NewSynthImage(name string, bytes int64, seed int64) *Image {
	if bytes <= 0 || bytes%SectorSize != 0 {
		panic("disk: image size must be a positive multiple of the sector size")
	}
	return &Image{
		ImageName: name,
		Sectors:   bytes / SectorSize,
		src:       Synth{Seed: seed, Label: "image:" + name},
	}
}

// NewLiteralImage returns an image holding the given bytes, padded to a
// whole number of sectors. Correctness tests use this form to compare
// deployed disks byte-for-byte.
func NewLiteralImage(name string, data []byte) *Image {
	buf := NewBuffer(0, data, "image:"+name)
	return &Image{
		ImageName: name,
		Sectors:   int64(len(buf.Data) / SectorSize),
		src:       buf,
	}
}

// Fill produces image content for the requested absolute sectors.
func (im *Image) Fill(lba int64, buf []byte) { im.src.Fill(lba, buf) }

// Name identifies the image as a content source.
func (im *Image) Name() string { return "image:" + im.ImageName }

// Size reports the image size in bytes.
func (im *Image) Size() int64 { return im.Sectors * SectorSize }

// ReadAt materializes image content (for server-side protocol handling).
func (im *Image) ReadAt(lba int64, buf []byte) { im.src.Fill(lba, buf) }

// Payload returns a symbolic payload covering [lba, lba+count).
func (im *Image) Payload(lba, count int64) Payload {
	return Payload{LBA: lba, Count: count, Source: im}
}
