// Package disk models a SATA hard drive: a sector-addressed content store
// with provenance tracking and a mechanical timing model (seek, rotation,
// media transfer, drive cache).
//
// Content is tracked by *source* rather than by materialized bytes so that
// deploying a 32 GB image remains cheap: an extent of the local disk that
// was filled by the background copy simply records "sectors [a,b) come from
// image X". Sources produce bytes for any absolute LBA on demand, which
// lets tests verify byte-exact deployment while performance runs stay
// symbolic. Because BMcast uses the identical block address space on the
// server image and the local disk (paper §3.1), a source's content is a
// function of the absolute LBA, and writing a source to the disk at the
// same LBA it was read from is exact.
package disk

import (
	"encoding/binary"
	"fmt"
)

// SectorSize is the logical block size in bytes.
const SectorSize = 512

// SectorSource produces disk content for absolute sector addresses.
type SectorSource interface {
	// Fill writes the content of sectors [lba, lba+len(buf)/SectorSize)
	// into buf. len(buf) must be a multiple of SectorSize.
	Fill(lba int64, buf []byte)
	// Name identifies the source for provenance reports.
	Name() string
}

// Zero is the all-zeroes source: the state of an empty (undeployed) disk.
var Zero SectorSource = zeroSource{}

type zeroSource struct{}

func (zeroSource) Fill(_ int64, buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
}
func (zeroSource) Name() string { return "zero" }

// Synth is a deterministic pseudo-random source: content is a pure function
// of (Seed, LBA). Performance experiments use it for guest writes and large
// images so that no bulk data is ever materialized unless read back.
type Synth struct {
	Seed  int64
	Label string
}

// Fill generates the synthetic content of the requested sectors.
func (s Synth) Fill(lba int64, buf []byte) {
	if len(buf)%SectorSize != 0 {
		panic("disk: Fill buffer not a multiple of the sector size")
	}
	for off := 0; off < len(buf); off += 8 {
		cur := lba + int64(off/SectorSize)
		x := mix(uint64(s.Seed), uint64(cur), uint64(off%SectorSize))
		binary.LittleEndian.PutUint64(buf[off:], x)
	}
}

func (s Synth) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return fmt.Sprintf("synth(%d)", s.Seed)
}

// mix is a splitmix64-style hash combining seed, sector, and offset.
func mix(seed, lba, off uint64) uint64 {
	x := seed ^ lba*0x9E3779B97F4A7C15 ^ off*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Buffer is a literal-bytes source anchored at a base LBA. Content outside
// [Base, Base+len(Data)/SectorSize) is zero.
type Buffer struct {
	Base  int64
	Data  []byte
	Label string
}

// NewBuffer returns a literal source holding data at sector base. The data
// is copied and padded to a whole number of sectors, so the caller keeps
// ownership of data.
func NewBuffer(base int64, data []byte, label string) *Buffer {
	n := (len(data) + SectorSize - 1) / SectorSize * SectorSize
	padded := make([]byte, n)
	copy(padded, data)
	return &Buffer{Base: base, Data: padded, Label: label}
}

// OwnedBuffer wraps data — which must already be a whole number of sectors
// — as a literal source without copying. Ownership of data transfers to
// the buffer: the caller must not modify it afterwards. Streaming paths
// that materialize into a fresh slice use this to avoid NewBuffer's second
// allocation and copy.
func OwnedBuffer(base int64, data []byte, label string) *Buffer {
	if len(data)%SectorSize != 0 {
		panic("disk: OwnedBuffer data not a multiple of the sector size")
	}
	return &Buffer{Base: base, Data: data, Label: label}
}

// Fill copies literal content for the requested sectors.
func (b *Buffer) Fill(lba int64, buf []byte) {
	if len(buf)%SectorSize != 0 {
		panic("disk: Fill buffer not a multiple of the sector size")
	}
	for i := range buf {
		buf[i] = 0
	}
	srcStart := (lba - b.Base) * SectorSize
	if srcStart >= int64(len(b.Data)) || srcStart+int64(len(buf)) <= 0 {
		return
	}
	dstOff := int64(0)
	if srcStart < 0 {
		dstOff = -srcStart
		srcStart = 0
	}
	copy(buf[dstOff:], b.Data[srcStart:])
}

func (b *Buffer) Name() string {
	if b.Label != "" {
		return b.Label
	}
	return fmt.Sprintf("buffer(base=%d,%dB)", b.Base, len(b.Data))
}

// Payload describes data in flight between disk, controllers, network, and
// memory: count sectors of content for absolute address LBA, provided by
// Source. The simulation moves payloads by reference and materializes bytes
// only when something inspects them.
type Payload struct {
	LBA    int64
	Count  int64
	Source SectorSource
}

// Bytes materializes the payload's content.
func (p Payload) Bytes() []byte {
	buf := make([]byte, p.Count*SectorSize)
	if p.Source != nil {
		p.Source.Fill(p.LBA, buf)
	}
	return buf
}

// AppendTo materializes the payload's content onto the end of dst and
// returns the extended slice. Unlike append(dst, p.Bytes()...) it fills the
// destination in place, with no intermediate slice.
func (p Payload) AppendTo(dst []byte) []byte {
	off := len(dst)
	n := int(p.Count) * SectorSize
	if cap(dst)-off < n {
		grown := make([]byte, off, off+n)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+n]
	if p.Source == nil {
		Zero.Fill(p.LBA, dst[off:])
		return dst
	}
	p.Source.Fill(p.LBA, dst[off:])
	return dst
}

// Len reports the payload length in bytes.
func (p Payload) Len() int64 { return p.Count * SectorSize }
