package disk

import (
	"fmt"
	"sort"
)

// Extent is a half-open sector range [Start, End) whose content comes from
// Source.
type Extent struct {
	Start, End int64
	Source     SectorSource
}

func (e Extent) String() string {
	return fmt.Sprintf("[%d,%d)=%s", e.Start, e.End, e.Source.Name())
}

// Store is the content state of a disk: a total, ordered, non-overlapping
// cover of [0, Sectors) by extents. A fresh store is one zero extent — the
// "all blocks empty" state of an undeployed local disk.
type Store struct {
	sectors int64
	extents []Extent
	// scratch is the extent array retired by the previous Write, reused as
	// the build target of the next one. The two arrays ping-pong, so
	// steady-state writes (the background copy issues one per chunk) do
	// not allocate.
	scratch []Extent
}

// NewStore returns an all-zero store of the given size in sectors.
func NewStore(sectors int64) *Store {
	if sectors <= 0 {
		panic("disk: store must have a positive sector count")
	}
	return &Store{
		sectors: sectors,
		extents: []Extent{{Start: 0, End: sectors, Source: Zero}},
	}
}

// Sectors reports the store capacity in sectors.
func (s *Store) Sectors() int64 { return s.sectors }

func (s *Store) checkRange(lba, count int64) {
	if lba < 0 || count <= 0 || lba+count > s.sectors {
		panic(fmt.Sprintf("disk: range [%d,+%d) outside %d-sector store", lba, count, s.sectors))
	}
}

// find returns the index of the extent containing lba.
func (s *Store) find(lba int64) int {
	return sort.Search(len(s.extents), func(i int) bool { return s.extents[i].End > lba })
}

// Write records that sectors [lba, lba+count) now have content from src.
func (s *Store) Write(lba, count int64, src SectorSource) {
	s.checkRange(lba, count)
	end := lba + count
	i := s.find(lba)
	out := s.scratch[:0]
	out = append(out, s.extents[:i]...)
	// Left remainder of the extent containing lba.
	if e := s.extents[i]; e.Start < lba {
		out = append(out, Extent{Start: e.Start, End: lba, Source: e.Source})
	}
	out = append(out, Extent{Start: lba, End: end, Source: src})
	// Skip fully covered extents; keep the right remainder.
	j := i
	for j < len(s.extents) && s.extents[j].End <= end {
		j++
	}
	if j < len(s.extents) && s.extents[j].Start < end {
		e := s.extents[j]
		out = append(out, Extent{Start: end, End: e.End, Source: e.Source})
		j++
	}
	out = append(out, s.extents[j:]...)
	s.scratch = s.extents
	s.extents = coalesce(out)
}

// coalesce merges adjacent extents with the same source. Sources produce
// content by absolute LBA, so merging is always content-preserving.
func coalesce(in []Extent) []Extent {
	out := in[:0]
	for _, e := range in {
		if n := len(out); n > 0 && out[n-1].Source == e.Source && out[n-1].End == e.Start {
			out[n-1].End = e.End
			continue
		}
		out = append(out, e)
	}
	return out
}

// ReadAt materializes the content of sectors [lba, lba+len(buf)/SectorSize)
// into buf.
func (s *Store) ReadAt(lba int64, buf []byte) {
	if len(buf)%SectorSize != 0 {
		panic("disk: ReadAt buffer not a multiple of the sector size")
	}
	count := int64(len(buf) / SectorSize)
	s.checkRange(lba, count)
	off := int64(0)
	for count > 0 {
		e := s.extents[s.find(lba)]
		n := e.End - lba
		if n > count {
			n = count
		}
		e.Source.Fill(lba, buf[off*SectorSize:(off+n)*SectorSize])
		lba += n
		off += n
		count -= n
	}
}

// SourceAt reports the source providing the content of sector lba.
func (s *Store) SourceAt(lba int64) SectorSource {
	s.checkRange(lba, 1)
	return s.extents[s.find(lba)].Source
}

// ReadPayload returns a payload for [lba, lba+count). When a single source
// covers the whole range the payload stays symbolic; otherwise content is
// materialized into a literal buffer.
func (s *Store) ReadPayload(lba, count int64) Payload {
	s.checkRange(lba, count)
	i := s.find(lba)
	if s.extents[i].End >= lba+count {
		return Payload{LBA: lba, Count: count, Source: s.extents[i].Source}
	}
	buf := make([]byte, count*SectorSize)
	s.ReadAt(lba, buf)
	return Payload{LBA: lba, Count: count, Source: OwnedBuffer(lba, buf, "materialized")}
}

// Extents returns a copy of the extent list.
func (s *Store) Extents() []Extent {
	out := make([]Extent, len(s.extents))
	copy(out, s.extents)
	return out
}

// CountBySource reports the number of sectors attributed to each source
// name — the provenance summary used by deployment verification.
func (s *Store) CountBySource() map[string]int64 {
	m := make(map[string]int64)
	for _, e := range s.extents {
		m[e.Source.Name()] += e.End - e.Start
	}
	return m
}
