package disk

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFreshStoreIsZero(t *testing.T) {
	s := NewStore(100)
	buf := make([]byte, 3*SectorSize)
	s.ReadAt(10, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh store not zero")
		}
	}
	if len(s.Extents()) != 1 {
		t.Fatalf("fresh store has %d extents, want 1", len(s.Extents()))
	}
}

func TestWriteReadBack(t *testing.T) {
	s := NewStore(100)
	data := make([]byte, 2*SectorSize)
	for i := range data {
		data[i] = byte(i)
	}
	s.Write(5, 2, NewBuffer(5, data, "t"))
	got := make([]byte, 2*SectorSize)
	s.ReadAt(5, got)
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
}

func TestWriteSplitsExtents(t *testing.T) {
	s := NewStore(100)
	src := Synth{Seed: 1}
	s.Write(40, 20, src)
	exts := s.Extents()
	if len(exts) != 3 {
		t.Fatalf("extents = %v, want zero|synth|zero", exts)
	}
	if exts[1].Start != 40 || exts[1].End != 60 {
		t.Fatalf("middle extent = %v", exts[1])
	}
	if s.SourceAt(39) != Zero || s.SourceAt(40) != SectorSource(src) || s.SourceAt(60) != Zero {
		t.Fatal("SourceAt boundaries wrong")
	}
}

func TestOverwriteMiddle(t *testing.T) {
	s := NewStore(100)
	a, b := Synth{Seed: 1}, Synth{Seed: 2}
	s.Write(0, 100, a)
	s.Write(30, 10, b)
	exts := s.Extents()
	if len(exts) != 3 {
		t.Fatalf("extents = %v", exts)
	}
	if s.SourceAt(29) != SectorSource(a) || s.SourceAt(30) != SectorSource(b) ||
		s.SourceAt(39) != SectorSource(b) || s.SourceAt(40) != SectorSource(a) {
		t.Fatal("overwrite boundaries wrong")
	}
}

func TestCoalesceAdjacentSameSource(t *testing.T) {
	s := NewStore(100)
	src := Synth{Seed: 9}
	s.Write(0, 10, src)
	s.Write(10, 10, src)
	s.Write(20, 10, src)
	exts := s.Extents()
	if len(exts) != 2 { // merged synth extent + trailing zero
		t.Fatalf("extents not coalesced: %v", exts)
	}
	if exts[0].Start != 0 || exts[0].End != 30 {
		t.Fatalf("merged extent = %v", exts[0])
	}
}

func TestWriteSpanningManyExtents(t *testing.T) {
	s := NewStore(100)
	for i := int64(0); i < 10; i++ {
		s.Write(i*10, 5, Synth{Seed: i})
	}
	big := Synth{Seed: 999}
	s.Write(3, 90, big)
	if s.SourceAt(3) != SectorSource(big) || s.SourceAt(92) != SectorSource(big) {
		t.Fatal("spanning write did not cover range")
	}
	if s.SourceAt(2) == SectorSource(big) || s.SourceAt(93) == SectorSource(big) {
		t.Fatal("spanning write leaked outside range")
	}
}

func TestReadAcrossExtentBoundary(t *testing.T) {
	s := NewStore(100)
	left := NewBuffer(0, bytes.Repeat([]byte{0xAA}, SectorSize), "L")
	right := NewBuffer(1, bytes.Repeat([]byte{0xBB}, SectorSize), "R")
	s.Write(0, 1, left)
	s.Write(1, 1, right)
	buf := make([]byte, 2*SectorSize)
	s.ReadAt(0, buf)
	if buf[0] != 0xAA || buf[SectorSize] != 0xBB {
		t.Fatal("cross-extent read mixed up content")
	}
}

func TestReadPayloadSymbolicWhenSingleSource(t *testing.T) {
	s := NewStore(100)
	img := NewSynthImage("ubuntu", 100*SectorSize, 7)
	s.Write(0, 100, img)
	p := s.ReadPayload(10, 50)
	if p.Source != SectorSource(img) {
		t.Fatalf("payload source = %v, want image", p.Source.Name())
	}
}

func TestReadPayloadMaterializesAcrossSources(t *testing.T) {
	s := NewStore(100)
	s.Write(0, 50, Synth{Seed: 1})
	p := s.ReadPayload(40, 20) // spans synth and zero
	want := make([]byte, 20*SectorSize)
	s.ReadAt(40, want)
	if !bytes.Equal(p.Bytes(), want) {
		t.Fatal("materialized payload differs from ReadAt")
	}
}

func TestCountBySource(t *testing.T) {
	s := NewStore(100)
	s.Write(0, 30, Synth{Seed: 1, Label: "a"})
	s.Write(50, 10, Synth{Seed: 2, Label: "b"})
	m := s.CountBySource()
	if m["a"] != 30 || m["b"] != 10 || m["zero"] != 60 {
		t.Fatalf("CountBySource = %v", m)
	}
}

func TestRangeChecks(t *testing.T) {
	s := NewStore(10)
	for _, f := range []func(){
		func() { s.Write(-1, 1, Zero) },
		func() { s.Write(5, 6, Zero) },
		func() { s.ReadAt(9, make([]byte, 2*SectorSize)) },
		func() { s.SourceAt(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

// TestStoreMatchesReferenceProperty performs random writes against both the
// extent store and a flat reference byte array and checks they agree.
func TestStoreMatchesReferenceProperty(t *testing.T) {
	const sectors = 64
	type op struct {
		LBA   uint8
		Count uint8
		Seed  int64
	}
	f := func(ops []op) bool {
		s := NewStore(sectors)
		ref := make([]byte, sectors*SectorSize)
		for _, o := range ops {
			lba := int64(o.LBA) % sectors
			count := int64(o.Count)%8 + 1
			if lba+count > sectors {
				count = sectors - lba
			}
			src := Synth{Seed: o.Seed}
			s.Write(lba, count, src)
			src.Fill(lba, ref[lba*SectorSize:(lba+count)*SectorSize])
		}
		got := make([]byte, sectors*SectorSize)
		s.ReadAt(0, got)
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestExtentInvariantProperty checks the cover invariant after random writes:
// extents are sorted, non-overlapping, contiguous, and span [0, Sectors).
func TestExtentInvariantProperty(t *testing.T) {
	f := func(writes []uint16) bool {
		s := NewStore(256)
		for i, w := range writes {
			lba := int64(w) % 256
			count := int64(w)/256%16 + 1
			if lba+count > 256 {
				count = 256 - lba
			}
			s.Write(lba, count, Synth{Seed: int64(i % 3)})
		}
		exts := s.Extents()
		if exts[0].Start != 0 || exts[len(exts)-1].End != 256 {
			return false
		}
		for i := 1; i < len(exts); i++ {
			if exts[i].Start != exts[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
