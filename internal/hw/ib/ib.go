// Package ib models an InfiniBand fabric at the verbs level: host channel
// adapters posting RDMA operations to queue pairs, completion polling, and
// a switched fabric with link-rate serialization.
//
// The paper's testbed uses Mellanox MT26428 4X QDR HCAs (32 Gb/s signaling,
// ≈3.2 GB/s payload after 8b/10b) behind a Grid Director switch. BMcast
// leaves the HCA untouched (direct hardware access), so its latency stays
// bare-metal; the KVM baseline assigns the device directly but still pays
// IOMMU translation and interrupt-path costs, which the ExtraLatency dial
// models (paper §5.5.3: +23.6% latency, equal saturated throughput).
package ib

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Fabric is the InfiniBand subnet: switch latency plus per-HCA link state.
type Fabric struct {
	k *sim.Kernel
	// SwitchLatency is the per-hop forwarding latency.
	SwitchLatency sim.Duration
	// LinkRate is the per-link payload bandwidth in bytes/sec.
	LinkRate float64
	// BaseLatency is the end-to-end zero-byte latency (HCA processing on
	// both sides plus propagation).
	BaseLatency sim.Duration

	hcas []*HCA
}

// QDR4X returns the testbed fabric: 4X QDR through one switch.
func QDR4X(k *sim.Kernel) *Fabric {
	return &Fabric{
		k:             k,
		SwitchLatency: 100 * sim.Nanosecond,
		LinkRate:      3.2e9,
		BaseLatency:   1300 * sim.Nanosecond,
	}
}

// HCA is a host channel adapter.
type HCA struct {
	Name   string
	Node   int
	fabric *Fabric

	// ExtraLatency is added to every operation by the virtualization
	// platform (IOMMU translation, interrupt remapping). Zero on bare
	// metal and under BMcast.
	ExtraLatency sim.Duration

	txBusyUntil sim.Time
	cq          *sim.Queue[completion]

	Ops       metrics.Counter
	BytesSent metrics.Counter
}

type completion struct {
	bytes int64
	at    sim.Time
}

// NewHCA attaches a new adapter to the fabric.
func (f *Fabric) NewHCA(name string) *HCA {
	h := &HCA{
		Name:   name,
		Node:   len(f.hcas),
		fabric: f,
		cq:     sim.NewQueue[completion](f.k, name+".cq"),
	}
	f.hcas = append(f.hcas, h)
	return h
}

// HCA returns the adapter at node index i.
func (f *Fabric) HCA(i int) *HCA { return f.hcas[i] }

// Size reports the number of attached adapters.
func (f *Fabric) Size() int { return len(f.hcas) }

// opTime computes serialization start/end on the sender link.
func (h *HCA) opTime(bytes int64) (start, end sim.Time) {
	now := h.fabric.k.Now()
	start = now
	if h.txBusyUntil > start {
		start = h.txBusyUntil
	}
	end = start.Add(sim.RateDuration(bytes, h.fabric.LinkRate))
	h.txBusyUntil = end
	return start, end
}

// Post enqueues an RDMA write of the given size toward dst without
// blocking; a completion is delivered to the *destination* HCA's
// completion queue when the data lands, and to the sender's when the
// local ACK returns. This models pipelined ib_rdma_bw behaviour.
func (h *HCA) Post(dst *HCA, bytes int64) {
	f := h.fabric
	_, end := h.opTime(bytes)
	arrive := end.Add(f.BaseLatency + f.SwitchLatency + h.ExtraLatency + dst.ExtraLatency)
	h.Ops.Inc()
	h.BytesSent.Add(bytes)
	f.k.At(arrive, func() {
		dst.cq.Push(completion{bytes: bytes, at: f.k.Now()})
	})
	f.k.At(arrive+sim.Time(f.BaseLatency/2), func() {
		h.cq.Push(completion{bytes: bytes, at: f.k.Now()})
	})
}

// PollCQ blocks until one completion is available on this HCA.
func (h *HCA) PollCQ(p *sim.Proc) {
	h.cq.Pop(p)
}

// RDMAWrite performs one blocking RDMA write: post, then wait for the
// local completion. This is the ib_rdma_lat measurement path.
func (h *HCA) RDMAWrite(p *sim.Proc, dst *HCA, bytes int64) sim.Duration {
	start := p.Now()
	h.Post(dst, bytes)
	h.PollCQ(p)
	return p.Now().Sub(start)
}

// Send performs a blocking send to dst and wakes the receiver's CQ; used
// by the MPI point-to-point layer.
func (h *HCA) Send(p *sim.Proc, dst *HCA, bytes int64) {
	h.Post(dst, bytes)
	h.PollCQ(p)
}

// RecvWait blocks until a message lands in this HCA's completion queue.
func (h *HCA) RecvWait(p *sim.Proc) { h.cq.Pop(p) }

// Pending reports queued completions (useful in tests).
func (h *HCA) Pending() int { return h.cq.Len() }

func (h *HCA) String() string { return fmt.Sprintf("hca(%s,node=%d)", h.Name, h.Node) }
