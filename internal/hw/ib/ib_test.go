package ib

import (
	"testing"

	"repro/internal/sim"
)

func TestRDMAWriteLatency(t *testing.T) {
	k := sim.New(1)
	f := QDR4X(k)
	a, b := f.NewHCA("a"), f.NewHCA("b")
	var lat sim.Duration
	k.Spawn("p", func(p *sim.Proc) { lat = a.RDMAWrite(p, b, 64<<10) })
	k.Run()
	// 64 KB at 3.2 GB/s = 20.48 µs + base/switch latencies.
	if lat < 20*sim.Microsecond || lat > 25*sim.Microsecond {
		t.Fatalf("RDMA latency = %v, want ~22µs", lat)
	}
}

func TestExtraLatencyAdds(t *testing.T) {
	k := sim.New(1)
	f := QDR4X(k)
	a, b := f.NewHCA("a"), f.NewHCA("b")
	var base, extra sim.Duration
	k.Spawn("p", func(p *sim.Proc) {
		base = a.RDMAWrite(p, b, 4096)
		a.ExtraLatency, b.ExtraLatency = 2*sim.Microsecond, 2*sim.Microsecond
		extra = a.RDMAWrite(p, b, 4096)
	})
	k.Run()
	if extra-base != 4*sim.Microsecond {
		t.Fatalf("extra latency delta = %v, want 4µs", extra-base)
	}
}

func TestPipelinedPostsSerializeOnLink(t *testing.T) {
	k := sim.New(1)
	f := QDR4X(k)
	a, b := f.NewHCA("a"), f.NewHCA("b")
	var elapsed sim.Duration
	const n = 100
	k.Spawn("p", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < n; i++ {
			a.Post(b, 64<<10)
		}
		for i := 0; i < n; i++ {
			a.PollCQ(p)
		}
		elapsed = p.Now().Sub(start)
	})
	k.Run()
	rate := float64(n*64<<10) / elapsed.Seconds()
	if rate < 3.0e9 || rate > 3.3e9 {
		t.Fatalf("pipelined rate = %.2f GB/s, want ~3.2 (link rate)", rate/1e9)
	}
}

func TestSendRecvPair(t *testing.T) {
	k := sim.New(1)
	f := QDR4X(k)
	a, b := f.NewHCA("a"), f.NewHCA("b")
	if f.Size() != 2 || f.HCA(1) != b {
		t.Fatal("fabric registry wrong")
	}
	got := false
	k.Spawn("recv", func(p *sim.Proc) {
		b.RecvWait(p)
		got = true
	})
	k.Spawn("send", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		a.Send(p, b, 4096)
	})
	k.Run()
	if !got {
		t.Fatal("receiver never woke")
	}
	if a.Ops.Value() != 1 || a.BytesSent.Value() != 4096 {
		t.Fatal("sender stats wrong")
	}
}
