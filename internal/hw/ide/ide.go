// Package ide models an IDE/ATA host controller at register level: the
// task-file command block, the control block, and a bus-master DMA engine
// with PRD tables in guest memory.
//
// The model is deliberately faithful to the interface contract a device
// mediator depends on (paper §3.2): commands are issued by programming the
// LBA/count registers and writing the command register; status is polled
// or signalled by interrupt; DMA targets are described by a PRD table
// whose physical address sits in a bus-master register. BMcast's IDE
// mediator interprets, intercepts, and injects traffic at exactly this
// level.
package ide

import (
	"fmt"

	"repro/internal/hw/disk"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/mem"
	"repro/internal/sim"
)

// Command-block register offsets (from the command base, e.g. 0x1F0).
const (
	RegData        = 0 // 16-bit PIO data port
	RegErrFeature  = 1 // error (read) / features (write)
	RegSectorCount = 2
	RegLBALow      = 3
	RegLBAMid      = 4
	RegLBAHigh     = 5
	RegDevice      = 6
	RegStatusCmd   = 7 // status (read) / command (write)
)

// Control-block register offset (from the control base, e.g. 0x3F6).
const (
	RegDevControl = 0 // alt status (read) / device control (write)
)

// Device control bits.
const (
	CtlNIEN = 1 << 1 // disable interrupt generation
	CtlSRST = 1 << 2 // soft reset
)

// Status register bits.
const (
	StatusERR  = 1 << 0
	StatusDRQ  = 1 << 3
	StatusDF   = 1 << 5
	StatusDRDY = 1 << 6
	StatusBSY  = 1 << 7
)

// Device register bits.
const (
	DeviceLBA = 1 << 6
)

// ATA commands implemented by the model.
const (
	CmdReadDMA     = 0xC8
	CmdWriteDMA    = 0xCA
	CmdReadDMAExt  = 0x25
	CmdWriteDMAExt = 0x35
	CmdFlushCache  = 0xE7
	CmdIdentify    = 0xEC
)

// Bus-master register offsets (from the bus-master base).
const (
	BMRegCmd    = 0
	BMRegStatus = 2
	BMRegPRDT   = 4 // 32-bit PRD table physical address
)

// Bus-master command bits.
const (
	BMCmdStart = 1 << 0
	BMCmdRead  = 1 << 3 // direction: device-to-memory
)

// Bus-master status bits.
const (
	BMStatusActive = 1 << 0
	BMStatusError  = 1 << 1
	BMStatusIRQ    = 1 << 2
)

// PRDEntrySize is the size of one physical region descriptor.
const PRDEntrySize = 8

// PRDEOT marks the last PRD entry.
const PRDEOT = 1 << 15

// latched models the ATA "hob" register pair: writing pushes the current
// value to previous, which LBA48 commands consume as the high-order byte.
type latched struct{ cur, prev uint8 }

func (l *latched) write(v uint8) { l.prev, l.cur = l.cur, v }

// Controller is one IDE channel with one attached drive.
type Controller struct {
	Name string

	k      *sim.Kernel
	memory *mem.Memory
	drive  *disk.Device
	IRQ    *hwio.IRQ

	// Task file.
	feature latched
	count   latched
	lbaLow  latched
	lbaMid  latched
	lbaHigh latched
	device  uint8
	status  uint8
	errReg  uint8
	nIEN    bool

	// Bus master.
	bmCmd    uint8
	bmStatus uint8
	prdtAddr uint32

	// Pending command, set by a command-register write, consumed by the
	// engine once the bus master starts (or immediately for non-data
	// commands).
	pendingCmd  uint8
	pendingLBA  int64
	pendingN    int64
	pendingData bool
	execReady   *sim.Signal

	// PIO data buffer for IDENTIFY.
	pioBuf []byte
	pioPos int

	// DMA content hints keyed by buffer address (see SetNextDMA).
	hints map[int64]dmaHint

	// CmdLog counts executed commands by opcode, for tests and reports.
	CmdLog map[uint8]int64
}

// New creates a controller in front of drive, DMAing through memory and
// signalling through irq. Register it in an I/O space with Regions.
func New(k *sim.Kernel, name string, drive *disk.Device, memory *mem.Memory, irq *hwio.IRQ) *Controller {
	c := &Controller{
		Name:      name,
		k:         k,
		memory:    memory,
		drive:     drive,
		IRQ:       irq,
		status:    StatusDRDY,
		execReady: k.NewSignal(name + ".exec"),
		CmdLog:    make(map[uint8]int64),
		hints:     make(map[int64]dmaHint),
	}
	k.Spawn(name+".engine", c.engine)
	return c
}

// Drive exposes the attached disk device.
func (c *Controller) Drive() *disk.Device { return c.drive }

// cmdBlock, ctlBlock, and busMaster adapt the controller's three register
// banks to io.Handler.
type cmdBlock struct{ c *Controller }
type ctlBlock struct{ c *Controller }
type busMaster struct{ c *Controller }

// CmdBlock returns the command-block register bank (task file).
func (c *Controller) CmdBlock() hwio.Handler { return cmdBlock{c} }

// CtlBlock returns the control-block register bank.
func (c *Controller) CtlBlock() hwio.Handler { return ctlBlock{c} }

// BusMaster returns the bus-master DMA register bank.
func (c *Controller) BusMaster() hwio.Handler { return busMaster{c} }

// RegisterRegions registers the controller's three regions in ios using
// conventional legacy addresses offset by channel. It returns the region
// names for tap installation.
func (c *Controller) RegisterRegions(ios *hwio.Space) (cmd, ctl, bm string) {
	cmd, ctl, bm = c.Name+".cmd", c.Name+".ctl", c.Name+".bm"
	ios.Register(cmd, hwio.PIO, 0x1F0, 8, c.CmdBlock())
	ios.Register(ctl, hwio.PIO, 0x3F6, 1, c.CtlBlock())
	ios.Register(bm, hwio.PIO, 0xC000, 8, c.BusMaster())
	return cmd, ctl, bm
}

func (b cmdBlock) IORead(_ *sim.Proc, off int64, _ int) uint64 {
	c := b.c
	switch off {
	case RegData:
		if c.status&StatusDRQ != 0 && c.pioPos < len(c.pioBuf) {
			v := uint64(c.pioBuf[c.pioPos]) | uint64(c.pioBuf[c.pioPos+1])<<8
			c.pioPos += 2
			if c.pioPos >= len(c.pioBuf) {
				c.status &^= StatusDRQ
			}
			return v
		}
		return 0
	case RegErrFeature:
		return uint64(c.errReg)
	case RegSectorCount:
		return uint64(c.count.cur)
	case RegLBALow:
		return uint64(c.lbaLow.cur)
	case RegLBAMid:
		return uint64(c.lbaMid.cur)
	case RegLBAHigh:
		return uint64(c.lbaHigh.cur)
	case RegDevice:
		return uint64(c.device)
	case RegStatusCmd:
		return uint64(c.status)
	}
	return 0xFF
}

func (b cmdBlock) IOWrite(_ *sim.Proc, off int64, _ int, v uint64) {
	c := b.c
	x := uint8(v)
	switch off {
	case RegErrFeature:
		c.feature.write(x)
	case RegSectorCount:
		c.count.write(x)
	case RegLBALow:
		c.lbaLow.write(x)
	case RegLBAMid:
		c.lbaMid.write(x)
	case RegLBAHigh:
		c.lbaHigh.write(x)
	case RegDevice:
		c.device = x
	case RegStatusCmd:
		c.issue(x)
	}
}

func (b ctlBlock) IORead(_ *sim.Proc, _ int64, _ int) uint64 {
	return uint64(b.c.status) // alternate status
}

func (b ctlBlock) IOWrite(_ *sim.Proc, _ int64, _ int, v uint64) {
	c := b.c
	c.nIEN = v&CtlNIEN != 0
	if v&CtlSRST != 0 {
		c.reset()
	}
}

func (b busMaster) IORead(_ *sim.Proc, off int64, size int) uint64 {
	c := b.c
	switch off {
	case BMRegCmd:
		return uint64(c.bmCmd)
	case BMRegStatus:
		return uint64(c.bmStatus)
	case BMRegPRDT:
		return uint64(c.prdtAddr)
	}
	_ = size
	return 0xFF
}

func (b busMaster) IOWrite(_ *sim.Proc, off int64, _ int, v uint64) {
	c := b.c
	switch off {
	case BMRegCmd:
		was := c.bmCmd
		c.bmCmd = uint8(v)
		if was&BMCmdStart == 0 && c.bmCmd&BMCmdStart != 0 {
			c.bmStatus |= BMStatusActive
			c.execReady.Broadcast()
		}
		if c.bmCmd&BMCmdStart == 0 {
			c.bmStatus &^= BMStatusActive
		}
	case BMRegStatus:
		// Writing 1 to the IRQ/error bits clears them.
		c.bmStatus &^= uint8(v) & (BMStatusIRQ | BMStatusError)
	case BMRegPRDT:
		c.prdtAddr = uint32(v)
	}
}

func (c *Controller) reset() {
	c.status = StatusDRDY
	c.errReg = 0
	c.pendingCmd = 0
	c.pioBuf = nil
	c.bmStatus = 0
	c.bmCmd = 0
}

// issue handles a command-register write.
func (c *Controller) issue(cmd uint8) {
	if c.status&StatusBSY != 0 {
		return // command register ignored while busy
	}
	c.errReg = 0
	switch cmd {
	case CmdReadDMA, CmdWriteDMA:
		c.pendingLBA = int64(c.lbaLow.cur) | int64(c.lbaMid.cur)<<8 |
			int64(c.lbaHigh.cur)<<16 | int64(c.device&0x0F)<<24
		c.pendingN = int64(c.count.cur)
		if c.pendingN == 0 {
			c.pendingN = 256
		}
		c.pendingCmd = cmd
		c.pendingData = true
		c.status = StatusBSY
		c.execReady.Broadcast()
	case CmdReadDMAExt, CmdWriteDMAExt:
		c.pendingLBA = int64(c.lbaLow.cur) | int64(c.lbaMid.cur)<<8 | int64(c.lbaHigh.cur)<<16 |
			int64(c.lbaLow.prev)<<24 | int64(c.lbaMid.prev)<<32 | int64(c.lbaHigh.prev)<<40
		c.pendingN = int64(c.count.cur) | int64(c.count.prev)<<8
		if c.pendingN == 0 {
			c.pendingN = 65536
		}
		c.pendingCmd = cmd
		c.pendingData = true
		c.status = StatusBSY
		c.execReady.Broadcast()
	case CmdFlushCache:
		c.pendingCmd = cmd
		c.pendingData = false
		c.status = StatusBSY
		c.execReady.Broadcast()
	case CmdIdentify:
		c.pioBuf = c.identifyData()
		c.pioPos = 0
		c.status = StatusDRDY | StatusDRQ
		c.CmdLog[cmd]++
		c.raiseIRQ()
	default:
		c.errReg = 0x04 // ABRT
		c.status = StatusDRDY | StatusERR
		c.raiseIRQ()
	}
}

// identifyData builds a minimal IDENTIFY DEVICE block: enough for a driver
// to find the sector count and DMA capability.
func (c *Controller) identifyData() []byte {
	b := make([]byte, 512)
	sectors := c.drive.Sectors
	// Words 60-61: LBA28 capacity; words 100-103: LBA48 capacity.
	put16 := func(word int, v uint16) { b[word*2] = byte(v); b[word*2+1] = byte(v >> 8) }
	lba28 := sectors
	if lba28 > 0x0FFFFFFF {
		lba28 = 0x0FFFFFFF
	}
	put16(60, uint16(lba28))
	put16(61, uint16(lba28>>16))
	put16(83, 1<<10) // LBA48 supported
	for i := 0; i < 4; i++ {
		put16(100+i, uint16(sectors>>(16*i)))
	}
	return b
}

// dmaHint is a DMA content annotation: src supplies write data; discard
// marks read data as not-to-be-materialized.
type dmaHint struct {
	src     disk.SectorSource
	discard bool
}

// SetNextDMA annotates the DMA buffer at bufAddr: for a write command
// whose PRD table starts at that buffer, src supplies the content; for a
// read command, discard=true means the data is not materialized into
// guest memory. This is a simulation affordance standing in for "the
// bytes are already in the buffer": performance workloads move symbolic
// payloads without allocating, and keying by buffer address keeps guest
// and VMM hints from ever colliding. The architectural state machine is
// unaffected.
func (c *Controller) SetNextDMA(bufAddr int64, src disk.SectorSource, discard bool) {
	c.hints[bufAddr] = dmaHint{src: src, discard: discard}
}

// TakeHintAt removes and returns the DMA annotation for bufAddr. A
// mediator that swallows a guest command takes its hint and re-arms it on
// replay.
func (c *Controller) TakeHintAt(bufAddr int64) (src disk.SectorSource, discard, armed bool) {
	h, ok := c.hints[bufAddr]
	if !ok {
		return nil, false, false
	}
	delete(c.hints, bufAddr)
	return h.src, h.discard, true
}

// engine executes accepted commands against the drive.
func (c *Controller) engine(p *sim.Proc) {
	for {
		p.WaitCond(c.execReady, func() bool {
			if c.pendingCmd == 0 {
				return false
			}
			if c.pendingData {
				return c.bmCmd&BMCmdStart != 0
			}
			return true
		})
		cmd := c.pendingCmd
		c.pendingCmd = 0
		c.CmdLog[cmd]++
		switch cmd {
		case CmdFlushCache:
			p.Sleep(500 * sim.Microsecond)
			c.complete(false)
			continue
		}
		lba, n := c.pendingLBA, c.pendingN
		write := cmd == CmdWriteDMA || cmd == CmdWriteDMAExt
		var hintSrc disk.SectorSource
		var discard bool
		if entries := c.prdEntries(); len(entries) > 0 {
			hintSrc, discard, _ = c.TakeHintAt(entries[0].Start)
		}

		if lba < 0 || n <= 0 || lba+n > c.drive.Sectors {
			c.errReg = 0x10 // IDNF
			c.complete(true)
			continue
		}
		if write {
			src := hintSrc
			if src == nil {
				src = c.readPRDData(lba, n)
			}
			c.drive.Write(p, lba, n, src)
		} else {
			pl := c.drive.Read(p, lba, n)
			if !discard {
				c.writePRDData(pl)
			}
		}
		c.complete(false)
	}
}

func (c *Controller) complete(isErr bool) {
	c.status = StatusDRDY
	if isErr {
		c.status |= StatusERR
		c.bmStatus |= BMStatusError
	}
	c.bmStatus &^= BMStatusActive
	c.bmStatus |= BMStatusIRQ
	c.raiseIRQ()
}

func (c *Controller) raiseIRQ() {
	if !c.nIEN {
		c.IRQ.Raise()
	}
}

// prdEntries parses the PRD table at the current bus-master address.
func (c *Controller) prdEntries() []mem.Region {
	var out []mem.Region
	addr := int64(c.prdtAddr)
	for i := 0; ; i++ {
		e := c.memory.Read(addr, PRDEntrySize)
		bufAddr := int64(uint32(e[0]) | uint32(e[1])<<8 | uint32(e[2])<<16 | uint32(e[3])<<24)
		count := int64(uint16(e[4]) | uint16(e[5])<<8)
		if count == 0 {
			count = 65536
		}
		flags := uint16(e[6]) | uint16(e[7])<<8
		out = append(out, mem.Region{Start: bufAddr, Size: count})
		if flags&PRDEOT != 0 || i > 4096 {
			break
		}
		addr += PRDEntrySize
	}
	return out
}

// readPRDData gathers literal write data from guest memory via the PRD
// table, producing a source anchored at lba.
func (c *Controller) readPRDData(lba, n int64) disk.SectorSource {
	want := n * disk.SectorSize
	buf := make([]byte, 0, want)
	for _, r := range c.prdEntries() {
		take := r.Size
		if rem := want - int64(len(buf)); take > rem {
			take = rem
		}
		buf = append(buf, c.memory.Read(r.Start, take)...)
		if int64(len(buf)) >= want {
			break
		}
	}
	if int64(len(buf)) < want {
		buf = append(buf, make([]byte, want-int64(len(buf)))...)
	}
	return disk.NewBuffer(lba, buf, fmt.Sprintf("%s.dma", c.Name))
}

// writePRDData scatters read data into guest memory via the PRD table.
func (c *Controller) writePRDData(pl disk.Payload) {
	data := pl.Bytes()
	for _, r := range c.prdEntries() {
		take := r.Size
		if rem := int64(len(data)); take > rem {
			take = rem
		}
		c.memory.Write(r.Start, data[:take])
		data = data[take:]
		if len(data) == 0 {
			break
		}
	}
}

// WritePRDTable is a helper for drivers and mediators: it writes a PRD
// table at tableAddr describing a single contiguous buffer of size bytes
// at bufAddr, splitting into 64 KB entries.
func WritePRDTable(m *mem.Memory, tableAddr, bufAddr, size int64) {
	for size > 0 {
		chunk := int64(65536)
		if chunk > size {
			chunk = size
		}
		e := make([]byte, PRDEntrySize)
		e[0], e[1], e[2], e[3] = byte(bufAddr), byte(bufAddr>>8), byte(bufAddr>>16), byte(bufAddr>>24)
		cnt := uint16(chunk) // 65536 encodes as 0
		e[4], e[5] = byte(cnt), byte(cnt>>8)
		size -= chunk
		bufAddr += chunk
		if size == 0 {
			e[7] = byte(PRDEOT >> 8)
		}
		m.Write(tableAddr, e)
		tableAddr += PRDEntrySize
	}
}

// Busy reports whether the device is executing a command (BSY set).
func (c *Controller) Busy() bool { return c.status&StatusBSY != 0 }

// InterruptsDisabled reports the nIEN state.
func (c *Controller) InterruptsDisabled() bool { return c.nIEN }
