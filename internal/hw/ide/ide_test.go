package ide

import (
	"bytes"
	"testing"

	"repro/internal/hw/disk"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/mem"
	"repro/internal/sim"
)

// rig assembles controller + drive + memory + an inline test driver that
// programs the registers the way a real minimal driver would.
type rig struct {
	k    *sim.Kernel
	m    *mem.Memory
	d    *disk.Device
	c    *Controller
	ios  *hwio.Space
	done *sim.Signal
	irqs int

	cmdBase, ctlBase, bmBase int64
}

func newRig() *rig {
	k := sim.New(1)
	m := mem.New(64 << 20)
	p := disk.Constellation2()
	p.Sectors = 1 << 20
	d := disk.NewDevice(k, "sda", p)
	irq := hwio.NewIRQ(k, "ide")
	c := New(k, "ide0", d, m, irq)
	ios := hwio.NewSpace()
	c.RegisterRegions(ios)
	r := &rig{k: k, m: m, d: d, c: c, ios: ios,
		done: k.NewSignal("drv.done"), cmdBase: 0x1F0, ctlBase: 0x3F6, bmBase: 0xC000}
	irq.SetHandler(func() {
		r.irqs++
		// Real handlers read status (ack) and clear the BM IRQ bit.
		r.ios.Read(nil, hwio.PIO, r.cmdBase+RegStatusCmd, 1)
		r.ios.Write(nil, hwio.PIO, r.bmBase+BMRegStatus, 1, BMStatusIRQ)
		r.done.Broadcast()
	})
	return r
}

const (
	prdTableAddr = 0x10000
	dmaBufAddr   = 0x20000
)

func (r *rig) out(p *sim.Proc, addr int64, v uint64) { r.ios.Write(p, hwio.PIO, addr, 1, v) }
func (r *rig) in(p *sim.Proc, addr int64) uint64     { return r.ios.Read(p, hwio.PIO, addr, 1) }

// dmaCmd issues an LBA48 DMA transfer and waits for the completion IRQ.
func (r *rig) dmaCmd(p *sim.Proc, cmd uint8, lba, count int64) {
	WritePRDTable(r.m, prdTableAddr, dmaBufAddr, count*disk.SectorSize)
	r.ios.Write(p, hwio.PIO, r.bmBase+BMRegPRDT, 4, uint64(prdTableAddr))
	r.out(p, r.cmdBase+RegSectorCount, uint64(count>>8))
	r.out(p, r.cmdBase+RegSectorCount, uint64(count&0xFF))
	r.out(p, r.cmdBase+RegLBALow, uint64(lba>>24&0xFF))
	r.out(p, r.cmdBase+RegLBALow, uint64(lba&0xFF))
	r.out(p, r.cmdBase+RegLBAMid, uint64(lba>>32&0xFF))
	r.out(p, r.cmdBase+RegLBAMid, uint64(lba>>8&0xFF))
	r.out(p, r.cmdBase+RegLBAHigh, uint64(lba>>40&0xFF))
	r.out(p, r.cmdBase+RegLBAHigh, uint64(lba>>16&0xFF))
	r.out(p, r.cmdBase+RegDevice, DeviceLBA)
	r.out(p, r.cmdBase+RegStatusCmd, uint64(cmd))
	dir := uint64(0)
	if cmd == CmdReadDMAExt || cmd == CmdReadDMA {
		dir = BMCmdRead
	}
	r.out(p, r.bmBase+BMRegCmd, BMCmdStart|dir)
	p.Wait(r.done)
	r.out(p, r.bmBase+BMRegCmd, 0) // stop bus master
}

func TestDMAWriteRead(t *testing.T) {
	r := newRig()
	data := bytes.Repeat([]byte{0xA5, 0x5A}, disk.SectorSize) // 2 sectors
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.m.Write(dmaBufAddr, data)
		r.dmaCmd(p, CmdWriteDMAExt, 123, 2)
		// Overwrite the buffer, read back via DMA, verify.
		r.m.Write(dmaBufAddr, make([]byte, len(data)))
		r.dmaCmd(p, CmdReadDMAExt, 123, 2)
		got := r.m.Read(dmaBufAddr, int64(len(data)))
		if !bytes.Equal(got, data) {
			t.Error("DMA round trip mismatch")
		}
	})
	r.k.Run()
	if r.irqs != 2 {
		t.Fatalf("irqs = %d, want 2", r.irqs)
	}
	if r.c.CmdLog[CmdWriteDMAExt] != 1 || r.c.CmdLog[CmdReadDMAExt] != 1 {
		t.Fatalf("command log = %v", r.c.CmdLog)
	}
}

func TestLBA48Decoding(t *testing.T) {
	r := newRig()
	// LBA that exercises the hob latches (> 2^28 would be out of range
	// for the test disk, so use a value needing the second-byte writes).
	const lba = 0x0003_4567
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.m.Write(dmaBufAddr, bytes.Repeat([]byte{7}, disk.SectorSize))
		r.dmaCmd(p, CmdWriteDMAExt, lba, 1)
	})
	r.k.Run()
	if got := r.d.Store().SourceAt(lba); got == disk.Zero {
		t.Fatal("write did not land at the decoded LBA")
	}
	if got := r.d.Store().SourceAt(lba + 1); got != disk.Zero {
		t.Fatal("write spilled past the decoded range")
	}
}

func TestLegacyLBA28Command(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		WritePRDTable(r.m, prdTableAddr, dmaBufAddr, disk.SectorSize)
		r.ios.Write(p, hwio.PIO, r.bmBase+BMRegPRDT, 4, prdTableAddr)
		r.out(p, r.cmdBase+RegSectorCount, 1)
		r.out(p, r.cmdBase+RegLBALow, 0x11)
		r.out(p, r.cmdBase+RegLBAMid, 0x22)
		r.out(p, r.cmdBase+RegLBAHigh, 0x03)
		r.out(p, r.cmdBase+RegDevice, DeviceLBA|0x0) // LBA bits 24-27 = 0
		r.m.Write(dmaBufAddr, bytes.Repeat([]byte{9}, disk.SectorSize))
		r.out(p, r.cmdBase+RegStatusCmd, CmdWriteDMA)
		r.out(p, r.bmBase+BMRegCmd, BMCmdStart)
		p.Wait(r.done)
	})
	r.k.Run()
	const lba = 0x032211
	if r.d.Store().SourceAt(lba) == disk.Zero {
		t.Fatal("LBA28 write did not land")
	}
}

func TestBusyUntilComplete(t *testing.T) {
	r := newRig()
	var during, after uint64
	r.k.Spawn("drv", func(p *sim.Proc) {
		WritePRDTable(r.m, prdTableAddr, dmaBufAddr, disk.SectorSize)
		r.ios.Write(p, hwio.PIO, r.bmBase+BMRegPRDT, 4, prdTableAddr)
		r.out(p, r.cmdBase+RegSectorCount, 1)
		r.out(p, r.cmdBase+RegLBALow, 9)
		r.out(p, r.cmdBase+RegLBAMid, 0)
		r.out(p, r.cmdBase+RegLBAHigh, 0)
		r.out(p, r.cmdBase+RegDevice, DeviceLBA)
		r.out(p, r.cmdBase+RegStatusCmd, CmdReadDMA)
		during = r.in(p, r.cmdBase+RegStatusCmd)
		r.out(p, r.bmBase+BMRegCmd, BMCmdStart|BMCmdRead)
		p.Wait(r.done)
		after = r.in(p, r.cmdBase+RegStatusCmd)
	})
	r.k.Run()
	if during&StatusBSY == 0 {
		t.Fatal("status not BSY after command issue")
	}
	if after&StatusBSY != 0 || after&StatusDRDY == 0 {
		t.Fatalf("status after completion = %#x", after)
	}
}

func TestNIENSuppressesIRQ(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.out(p, r.ctlBase+RegDevControl, CtlNIEN)
		WritePRDTable(r.m, prdTableAddr, dmaBufAddr, disk.SectorSize)
		r.ios.Write(p, hwio.PIO, r.bmBase+BMRegPRDT, 4, prdTableAddr)
		r.out(p, r.cmdBase+RegSectorCount, 1)
		r.out(p, r.cmdBase+RegLBALow, 1)
		r.out(p, r.cmdBase+RegLBAMid, 0)
		r.out(p, r.cmdBase+RegLBAHigh, 0)
		r.out(p, r.cmdBase+RegDevice, DeviceLBA)
		r.out(p, r.cmdBase+RegStatusCmd, CmdReadDMA)
		r.out(p, r.bmBase+BMRegCmd, BMCmdStart|BMCmdRead)
		// Poll for completion instead of waiting for the IRQ — this is
		// exactly what the mediator's polling thread does.
		for r.in(p, r.cmdBase+RegStatusCmd)&StatusBSY != 0 {
			p.Sleep(100 * sim.Microsecond)
		}
	})
	r.k.Run()
	if r.irqs != 0 {
		t.Fatalf("irqs = %d with nIEN set, want 0", r.irqs)
	}
	// Completion is still visible in the BM status IRQ bit.
	if r.c.bmStatus&BMStatusIRQ == 0 {
		t.Fatal("BM IRQ bit not set on polled completion")
	}
}

func TestOutOfRangeCommandErrors(t *testing.T) {
	r := newRig()
	var status uint64
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.dmaCmd(p, CmdReadDMAExt, r.d.Sectors+100, 1)
		status = r.in(p, r.cmdBase+RegStatusCmd)
	})
	r.k.Run()
	if status&StatusERR == 0 {
		t.Fatalf("status = %#x, want ERR", status)
	}
}

func TestUnknownCommandAborts(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.out(p, r.cmdBase+RegStatusCmd, 0xFB)
		p.Wait(r.done)
		if errv := r.in(p, r.cmdBase+RegErrFeature); errv&0x04 == 0 {
			t.Errorf("error reg = %#x, want ABRT", errv)
		}
	})
	r.k.Run()
}

func TestIdentify(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.out(p, r.cmdBase+RegStatusCmd, CmdIdentify)
		p.Wait(r.done)
		words := make([]uint16, 256)
		for i := range words {
			words[i] = uint16(r.in(p, r.cmdBase+RegData))
		}
		sectors := int64(words[100]) | int64(words[101])<<16 |
			int64(words[102])<<32 | int64(words[103])<<48
		if sectors != r.d.Sectors {
			t.Errorf("IDENTIFY sectors = %d, want %d", sectors, r.d.Sectors)
		}
		if words[83]&(1<<10) == 0 {
			t.Error("LBA48 support bit not set")
		}
		if st := r.in(p, r.cmdBase+RegStatusCmd); st&StatusDRQ != 0 {
			t.Errorf("DRQ still set after draining identify data: %#x", st)
		}
	})
	r.k.Run()
}

func TestSoftReset(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.out(p, r.cmdBase+RegStatusCmd, CmdIdentify)
		p.Wait(r.done)
		r.out(p, r.ctlBase+RegDevControl, CtlSRST)
		if st := r.in(p, r.cmdBase+RegStatusCmd); st != StatusDRDY {
			t.Errorf("status after SRST = %#x, want DRDY", st)
		}
	})
	r.k.Run()
}

func TestSetNextDMASymbolicWrite(t *testing.T) {
	r := newRig()
	src := disk.Synth{Seed: 77, Label: "workload"}
	r.k.Spawn("drv", func(p *sim.Proc) {
		r.c.SetNextDMA(dmaBufAddr, src, false)
		r.dmaCmd(p, CmdWriteDMAExt, 500, 8)
	})
	r.k.Run()
	if got := r.d.Store().SourceAt(500); got != disk.SectorSource(src) {
		t.Fatalf("store source = %v, want workload synth", got.Name())
	}
}

func TestSetNextDMADiscardRead(t *testing.T) {
	r := newRig()
	r.k.Spawn("drv", func(p *sim.Proc) {
		// Seed sector 5 with known bytes, then read with discard: memory
		// must stay untouched.
		r.m.Write(dmaBufAddr, bytes.Repeat([]byte{0xEE}, disk.SectorSize))
		r.dmaCmd(p, CmdWriteDMAExt, 5, 1)
		r.m.Write(dmaBufAddr, bytes.Repeat([]byte{0x11}, disk.SectorSize))
		r.c.SetNextDMA(dmaBufAddr, nil, true)
		r.dmaCmd(p, CmdReadDMAExt, 5, 1)
		got := r.m.Read(dmaBufAddr, disk.SectorSize)
		if got[0] != 0x11 {
			t.Error("discarded DMA read overwrote guest memory")
		}
	})
	r.k.Run()
}

func TestDeviceAccessorsBypassTap(t *testing.T) {
	// The mediator drives the controller through the handler interfaces
	// directly; this must work identically to guest access.
	r := newRig()
	r.k.Spawn("vmm", func(p *sim.Proc) {
		cb := r.c.CmdBlock()
		bm := r.c.BusMaster()
		WritePRDTable(r.m, prdTableAddr, dmaBufAddr, disk.SectorSize)
		bm.IOWrite(p, BMRegPRDT, 4, prdTableAddr)
		cb.IOWrite(p, RegSectorCount, 1, 0)
		cb.IOWrite(p, RegSectorCount, 1, 1)
		cb.IOWrite(p, RegLBALow, 1, 0)
		cb.IOWrite(p, RegLBALow, 1, 42)
		cb.IOWrite(p, RegLBAMid, 1, 0)
		cb.IOWrite(p, RegLBAMid, 1, 0)
		cb.IOWrite(p, RegLBAHigh, 1, 0)
		cb.IOWrite(p, RegLBAHigh, 1, 0)
		cb.IOWrite(p, RegDevice, 1, DeviceLBA)
		r.c.SetNextDMA(dmaBufAddr, disk.Synth{Seed: 3}, false)
		cb.IOWrite(p, RegStatusCmd, 1, CmdWriteDMAExt)
		bm.IOWrite(p, BMRegCmd, 1, BMCmdStart)
		for cb.IORead(p, RegStatusCmd, 1)&StatusBSY != 0 {
			p.Sleep(50 * sim.Microsecond)
		}
	})
	r.k.Run()
	if r.d.Store().SourceAt(42) == disk.Zero {
		t.Fatal("VMM-side command did not execute")
	}
}
