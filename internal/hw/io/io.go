// Package io models the machine's I/O register space: PIO ports and MMIO
// regions exposed by devices, with interception taps.
//
// A tap is the simulation's equivalent of a VM exit on a trapped register
// access: while BMcast virtualizes, its device mediators install taps on
// the storage controller regions (PIO exits, or EPT-unmapped MMIO pages);
// de-virtualization removes the taps, after which guest accesses reach the
// device directly with zero added cost — exactly the paper's "all hardware
// accesses pass through the VMM" end state.
package io

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Kind distinguishes port I/O from memory-mapped I/O.
type Kind int

const (
	// PIO is x86 port-mapped I/O (IN/OUT instructions).
	PIO Kind = iota
	// MMIO is memory-mapped I/O.
	MMIO
)

func (k Kind) String() string {
	if k == PIO {
		return "pio"
	}
	return "mmio"
}

// Handler is a device's register bank.
type Handler interface {
	// IORead returns the value of the size-byte register at off.
	IORead(p *sim.Proc, off int64, size int) uint64
	// IOWrite stores v into the size-byte register at off.
	IOWrite(p *sim.Proc, off int64, size int, v uint64)
}

// Tap intercepts accesses to a region, as a VMM trap handler would. A tap
// that reports handled=false passes the access through to the device.
type Tap interface {
	// TapRead intercepts a register read.
	TapRead(p *sim.Proc, r *Region, off int64, size int) (v uint64, handled bool)
	// TapWrite intercepts a register write.
	TapWrite(p *sim.Proc, r *Region, off int64, size int, v uint64) (handled bool)
}

// Region is a registered range of the I/O space.
type Region struct {
	Name    string
	Kind    Kind
	Base    int64
	Size    int64
	handler Handler
	tap     Tap
}

func (r *Region) String() string {
	return fmt.Sprintf("%s %s [%#x,+%#x)", r.Name, r.Kind, r.Base, r.Size)
}

// Device performs an untapped access directly against the device handler.
// VMM-side code uses it: the hypervisor's own device accesses do not trap.
func (r *Region) Device() Handler { return r.handler }

// Space is the I/O address space of one machine. PIO and MMIO live in
// separate address ranges.
type Space struct {
	regions [2][]*Region // indexed by Kind, sorted by Base

	// Traps counts tapped accesses (≈ VM exits due to I/O) and Direct
	// counts untapped guest accesses.
	Traps  int64
	Direct int64
}

// NewSpace returns an empty I/O space.
func NewSpace() *Space { return &Space{} }

// Register adds a region backed by h. Overlapping regions of the same kind
// panic.
func (s *Space) Register(name string, kind Kind, base, size int64, h Handler) *Region {
	if size <= 0 {
		panic("io: region size must be positive")
	}
	r := &Region{Name: name, Kind: kind, Base: base, Size: size, handler: h}
	list := s.regions[kind]
	for _, other := range list {
		if base < other.Base+other.Size && other.Base < base+size {
			panic(fmt.Sprintf("io: region %v overlaps %v", r, other))
		}
	}
	list = append(list, r)
	sort.Slice(list, func(i, j int) bool { return list[i].Base < list[j].Base })
	s.regions[kind] = list
	return r
}

// Find locates the region of the given kind containing addr, or nil.
func (s *Space) Find(kind Kind, addr int64) *Region {
	list := s.regions[kind]
	i := sort.Search(len(list), func(i int) bool { return list[i].Base+list[i].Size > addr })
	if i < len(list) && addr >= list[i].Base {
		return list[i]
	}
	return nil
}

// Lookup returns the region registered under name, or nil.
func (s *Space) Lookup(name string) *Region {
	for _, list := range s.regions {
		for _, r := range list {
			if r.Name == name {
				return r
			}
		}
	}
	return nil
}

// SetTap installs (or, with nil, removes) a tap on the named region. It
// panics if the region does not exist.
func (s *Space) SetTap(name string, t Tap) {
	r := s.Lookup(name)
	if r == nil {
		panic("io: SetTap on unknown region " + name)
	}
	r.tap = t
}

// Tapped reports whether the named region currently has a tap.
func (s *Space) Tapped(name string) bool {
	r := s.Lookup(name)
	return r != nil && r.tap != nil
}

// Read performs a guest read of the size-byte register at addr.
func (s *Space) Read(p *sim.Proc, kind Kind, addr int64, size int) uint64 {
	r := s.Find(kind, addr)
	if r == nil {
		// Reads of unimplemented registers float high, as on real buses.
		return (1 << (8 * uint(size))) - 1
	}
	off := addr - r.Base
	if r.tap != nil {
		s.Traps++
		if v, handled := r.tap.TapRead(p, r, off, size); handled {
			return v
		}
	} else {
		s.Direct++
	}
	return r.handler.IORead(p, off, size)
}

// Write performs a guest write of the size-byte register at addr.
func (s *Space) Write(p *sim.Proc, kind Kind, addr int64, size int, v uint64) {
	r := s.Find(kind, addr)
	if r == nil {
		return // writes to unimplemented registers are ignored
	}
	off := addr - r.Base
	if r.tap != nil {
		s.Traps++
		if r.tap.TapWrite(p, r, off, size, v) {
			return
		}
	} else {
		s.Direct++
	}
	r.handler.IOWrite(p, off, size, v)
}

// Regions returns every registered region, PIO first, sorted by base.
func (s *Space) Regions() []*Region {
	var out []*Region
	out = append(out, s.regions[PIO]...)
	out = append(out, s.regions[MMIO]...)
	return out
}

// IRQ is a device interrupt line. BMcast does not virtualize interrupt
// controllers, so interrupts always reach the guest's registered handler
// directly; mediators instead make the device suppress interrupt
// generation when needed (paper §3.2).
type IRQ struct {
	k       *sim.Kernel
	Name    string
	handler func()
	Raised  int64
}

// NewIRQ returns an interrupt line delivered through kernel k.
func NewIRQ(k *sim.Kernel, name string) *IRQ { return &IRQ{k: k, Name: name} }

// SetHandler installs the guest's interrupt handler.
func (q *IRQ) SetHandler(fn func()) { q.handler = fn }

// Raise asserts the line; the handler runs as a scheduled event at the
// current instant.
func (q *IRQ) Raise() {
	q.Raised++
	if q.handler != nil {
		h := q.handler
		q.k.After(0, h)
	}
}
