package io

import (
	"testing"

	"repro/internal/sim"
)

// regbank is a trivial register file for tests.
type regbank struct {
	regs map[int64]uint64
}

func newRegbank() *regbank { return &regbank{regs: make(map[int64]uint64)} }

func (b *regbank) IORead(_ *sim.Proc, off int64, _ int) uint64 { return b.regs[off] }
func (b *regbank) IOWrite(_ *sim.Proc, off int64, _ int, v uint64) {
	b.regs[off] = v
}

func TestRegisterAndRoute(t *testing.T) {
	s := NewSpace()
	b := newRegbank()
	s.Register("ide", PIO, 0x1F0, 8, b)
	s.Write(nil, PIO, 0x1F2, 1, 42)
	if got := s.Read(nil, PIO, 0x1F2, 1); got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
	if b.regs[2] != 42 {
		t.Fatal("write not routed to region-relative offset")
	}
}

func TestUnmappedAccess(t *testing.T) {
	s := NewSpace()
	if got := s.Read(nil, PIO, 0x9999, 1); got != 0xFF {
		t.Fatalf("unmapped 1-byte read = %#x, want 0xFF", got)
	}
	if got := s.Read(nil, MMIO, 0x9999, 4); got != 0xFFFFFFFF {
		t.Fatalf("unmapped 4-byte read = %#x, want 0xFFFFFFFF", got)
	}
	s.Write(nil, PIO, 0x9999, 1, 1) // must not panic
}

func TestOverlapPanics(t *testing.T) {
	s := NewSpace()
	s.Register("a", PIO, 0x100, 0x10, newRegbank())
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping registration did not panic")
		}
	}()
	s.Register("b", PIO, 0x108, 0x10, newRegbank())
}

func TestPIOandMMIOSeparate(t *testing.T) {
	s := NewSpace()
	pio := newRegbank()
	mmio := newRegbank()
	s.Register("p", PIO, 0x100, 8, pio)
	s.Register("m", MMIO, 0x100, 8, mmio) // same base, different kind: fine
	s.Write(nil, PIO, 0x100, 1, 1)
	s.Write(nil, MMIO, 0x100, 1, 2)
	if pio.regs[0] != 1 || mmio.regs[0] != 2 {
		t.Fatal("PIO and MMIO spaces not independent")
	}
}

// countingTap intercepts writes, letting reads pass through.
type countingTap struct {
	reads, writes int
	swallowWrites bool
}

func (c *countingTap) TapRead(_ *sim.Proc, _ *Region, _ int64, _ int) (uint64, bool) {
	c.reads++
	return 0, false
}

func (c *countingTap) TapWrite(_ *sim.Proc, _ *Region, _ int64, _ int, _ uint64) bool {
	c.writes++
	return c.swallowWrites
}

func TestTapInterception(t *testing.T) {
	s := NewSpace()
	b := newRegbank()
	s.Register("dev", MMIO, 0x1000, 0x100, b)
	tap := &countingTap{swallowWrites: true}
	s.SetTap("dev", tap)

	s.Write(nil, MMIO, 0x1000, 4, 99)
	if tap.writes != 1 {
		t.Fatal("tap did not see the write")
	}
	if b.regs[0] == 99 {
		t.Fatal("swallowed write reached the device")
	}
	s.Read(nil, MMIO, 0x1000, 4)
	if tap.reads != 1 {
		t.Fatal("tap did not see the read")
	}
	if s.Traps != 2 {
		t.Fatalf("Traps = %d, want 2", s.Traps)
	}
}

func TestTapPassThrough(t *testing.T) {
	s := NewSpace()
	b := newRegbank()
	s.Register("dev", PIO, 0, 8, b)
	s.SetTap("dev", &countingTap{swallowWrites: false})
	s.Write(nil, PIO, 0, 1, 7)
	if b.regs[0] != 7 {
		t.Fatal("unhandled write did not pass through to the device")
	}
}

func TestDetapRestoresDirectAccess(t *testing.T) {
	s := NewSpace()
	b := newRegbank()
	s.Register("dev", PIO, 0, 8, b)
	tap := &countingTap{}
	s.SetTap("dev", tap)
	s.Read(nil, PIO, 0, 1)
	s.SetTap("dev", nil) // de-virtualization
	if s.Tapped("dev") {
		t.Fatal("Tapped after removal")
	}
	s.Read(nil, PIO, 0, 1)
	if tap.reads != 1 {
		t.Fatal("tap saw access after removal")
	}
	if s.Direct != 1 {
		t.Fatalf("Direct = %d, want 1", s.Direct)
	}
}

func TestDeviceBypassesTap(t *testing.T) {
	s := NewSpace()
	b := newRegbank()
	r := s.Register("dev", PIO, 0, 8, b)
	tap := &countingTap{}
	s.SetTap("dev", tap)
	// VMM-side access through Device() must not trap.
	r.Device().IOWrite(nil, 3, 1, 5)
	if tap.writes != 0 {
		t.Fatal("device-side access trapped")
	}
	if b.regs[3] != 5 {
		t.Fatal("device-side write lost")
	}
}

func TestLookupAndFind(t *testing.T) {
	s := NewSpace()
	s.Register("a", PIO, 0x100, 8, newRegbank())
	s.Register("b", PIO, 0x200, 8, newRegbank())
	if s.Lookup("b") == nil || s.Lookup("c") != nil {
		t.Fatal("Lookup wrong")
	}
	if r := s.Find(PIO, 0x204); r == nil || r.Name != "b" {
		t.Fatalf("Find(0x204) = %v", r)
	}
	if s.Find(PIO, 0x208) != nil {
		t.Fatal("Find past region end should be nil")
	}
	if len(s.Regions()) != 2 {
		t.Fatal("Regions() wrong length")
	}
}

func TestIRQDelivery(t *testing.T) {
	k := sim.New(1)
	q := NewIRQ(k, "ide")
	fired := 0
	q.SetHandler(func() { fired++ })
	q.Raise()
	q.Raise()
	k.Run()
	if fired != 2 || q.Raised != 2 {
		t.Fatalf("fired=%d Raised=%d, want 2/2", fired, q.Raised)
	}
}

func TestIRQWithoutHandler(t *testing.T) {
	k := sim.New(1)
	q := NewIRQ(k, "x")
	q.Raise() // must not panic
	k.Run()
	if q.Raised != 1 {
		t.Fatal("Raised not counted")
	}
}
