// Package mem models guest-physical memory for a simulated machine.
//
// BMcast identity-maps guest-physical to machine-physical addresses and
// reserves its own region by manipulating the BIOS memory map so the guest
// never allocates it (paper §3.4). This package provides exactly that: a
// sparse byte-addressable memory, region reservation from the top of RAM,
// and an e820-style map that hides reserved regions from the guest.
package mem

import "fmt"

// PageSize is the allocation granularity of the sparse backing store.
const PageSize = 4096

// Region is a contiguous range of physical memory.
type Region struct {
	Start int64
	Size  int64
	Owner string
}

// End reports the first address past the region.
func (r Region) End() int64 { return r.Start + r.Size }

// Contains reports whether the address range [addr, addr+n) lies inside r.
func (r Region) Contains(addr, n int64) bool {
	return addr >= r.Start && addr+n <= r.End()
}

func (r Region) String() string {
	return fmt.Sprintf("[%#x-%#x) %s", r.Start, r.End(), r.Owner)
}

// Memory is sparse guest-physical memory. Pages materialize on first write;
// reads of untouched pages return zeros.
type Memory struct {
	size     int64
	pages    map[int64][]byte
	reserved []Region
}

// New returns a memory of the given size in bytes.
func New(size int64) *Memory {
	if size <= 0 || size%PageSize != 0 {
		panic("mem: size must be a positive multiple of the page size")
	}
	return &Memory{size: size, pages: make(map[int64][]byte)}
}

// Size reports total physical memory in bytes.
func (m *Memory) Size() int64 { return m.size }

// check panics on out-of-range accesses; simulated DMA engines and drivers
// are trusted code, so a violation is a bug in the simulation.
func (m *Memory) check(addr, n int64) {
	if addr < 0 || n < 0 || addr+n > m.size {
		panic(fmt.Sprintf("mem: access [%#x,+%d) outside %d-byte memory", addr, n, m.size))
	}
}

// Write copies data into memory at addr.
func (m *Memory) Write(addr int64, data []byte) {
	m.check(addr, int64(len(data)))
	for len(data) > 0 {
		page := addr / PageSize
		off := addr % PageSize
		p, ok := m.pages[page]
		if !ok {
			p = make([]byte, PageSize)
			m.pages[page] = p
		}
		n := copy(p[off:], data)
		data = data[n:]
		addr += int64(n)
	}
}

// Read copies n bytes starting at addr into a fresh slice.
func (m *Memory) Read(addr, n int64) []byte {
	out := make([]byte, n)
	m.ReadInto(addr, out)
	return out
}

// ReadInto fills buf with the bytes starting at addr. It is the
// allocation-free variant of Read for hot paths whose callers own a
// reusable (often stack) buffer.
func (m *Memory) ReadInto(addr int64, buf []byte) {
	m.check(addr, int64(len(buf)))
	for len(buf) > 0 {
		page := addr / PageSize
		off := addr % PageSize
		var c int
		if p, ok := m.pages[page]; ok {
			c = copy(buf, p[off:])
		} else {
			c = len(buf)
			if rem := PageSize - int(off); c > rem {
				c = rem
			}
			for i := 0; i < c; i++ {
				buf[i] = 0
			}
		}
		buf = buf[c:]
		addr += int64(c)
	}
}

// Reserve carves a region of the given size from the top of usable memory,
// on page alignment, and records it as owned by owner. This models the
// VMM's BIOS-map manipulation: the guest's e820 map will not include it.
func (m *Memory) Reserve(size int64, owner string) Region {
	if size <= 0 {
		panic("mem: reservation size must be positive")
	}
	size = (size + PageSize - 1) / PageSize * PageSize
	top := m.size
	for _, r := range m.reserved {
		if r.Start < top {
			top = r.Start
		}
	}
	if top-size < 0 {
		panic("mem: reservation exceeds physical memory")
	}
	reg := Region{Start: top - size, Size: size, Owner: owner}
	m.reserved = append(m.reserved, reg)
	return reg
}

// Release removes a reservation, returning the region to the guest-visible
// map. It reports whether the region was found.
func (m *Memory) Release(reg Region) bool {
	for i, r := range m.reserved {
		if r == reg {
			m.reserved = append(m.reserved[:i], m.reserved[i+1:]...)
			return true
		}
	}
	return false
}

// Reserved returns the current reservations.
func (m *Memory) Reserved() []Region {
	out := make([]Region, len(m.reserved))
	copy(out, m.reserved)
	return out
}

// E820 reports the guest-visible usable memory map: the full range minus
// reserved regions, as the firmware would present it.
func (m *Memory) E820() []Region {
	usable := []Region{{Start: 0, Size: m.size, Owner: "usable"}}
	for _, res := range m.reserved {
		var next []Region
		for _, u := range usable {
			// Subtract res from u.
			if res.End() <= u.Start || res.Start >= u.End() {
				next = append(next, u)
				continue
			}
			if res.Start > u.Start {
				next = append(next, Region{Start: u.Start, Size: res.Start - u.Start, Owner: "usable"})
			}
			if res.End() < u.End() {
				next = append(next, Region{Start: res.End(), Size: u.End() - res.End(), Owner: "usable"})
			}
		}
		usable = next
	}
	return usable
}

// UsableSize reports the total bytes visible to the guest.
func (m *Memory) UsableSize() int64 {
	var n int64
	for _, r := range m.E820() {
		n += r.Size
	}
	return n
}
