package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(1 << 20)
	data := []byte("hello, physical memory")
	m.Write(4090, data) // straddles a page boundary
	got := m.Read(4090, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatalf("Read = %q, want %q", got, data)
	}
}

func TestUntouchedReadsZero(t *testing.T) {
	m := New(1 << 20)
	got := m.Read(123456, 100)
	for _, b := range got {
		if b != 0 {
			t.Fatal("untouched memory not zero")
		}
	}
}

func TestReadSpanningWrittenAndUnwritten(t *testing.T) {
	m := New(1 << 20)
	m.Write(PageSize, []byte{1, 2, 3})
	got := m.Read(PageSize-2, 7)
	want := []byte{0, 0, 1, 2, 3, 0, 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("Read = %v, want %v", got, want)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(1 << 20)
	for _, f := range []func(){
		func() { m.Read(1<<20-1, 2) },
		func() { m.Write(-1, []byte{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestReserveFromTop(t *testing.T) {
	m := New(16 << 20)
	r := m.Reserve(128*PageSize, "vmm")
	if r.End() != 16<<20 {
		t.Fatalf("reservation not at top: %v", r)
	}
	if r.Size != 128*PageSize {
		t.Fatalf("reservation size = %d", r.Size)
	}
	if m.UsableSize() != 16<<20-128*PageSize {
		t.Fatalf("usable = %d", m.UsableSize())
	}
}

func TestReserveStacks(t *testing.T) {
	m := New(16 << 20)
	r1 := m.Reserve(PageSize, "a")
	r2 := m.Reserve(PageSize, "b")
	if r2.End() != r1.Start {
		t.Fatalf("second reservation %v not directly below first %v", r2, r1)
	}
}

func TestReserveRoundsToPage(t *testing.T) {
	m := New(16 << 20)
	r := m.Reserve(100, "x")
	if r.Size != PageSize {
		t.Fatalf("size = %d, want one page", r.Size)
	}
}

func TestRelease(t *testing.T) {
	m := New(16 << 20)
	r := m.Reserve(PageSize, "vmm")
	if !m.Release(r) {
		t.Fatal("Release returned false for live reservation")
	}
	if m.UsableSize() != 16<<20 {
		t.Fatal("release did not restore usable memory")
	}
	if m.Release(r) {
		t.Fatal("double release returned true")
	}
}

func TestE820HidesReservation(t *testing.T) {
	m := New(16 << 20)
	r := m.Reserve(1<<20, "vmm")
	for _, u := range m.E820() {
		if u.Start < r.End() && r.Start < u.End() {
			t.Fatalf("usable region %v overlaps reservation %v", u, r)
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Start: 100, Size: 50}
	if !r.Contains(100, 50) || !r.Contains(120, 10) {
		t.Fatal("Contains false negatives")
	}
	if r.Contains(99, 2) || r.Contains(149, 2) {
		t.Fatal("Contains false positives")
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	m := New(1 << 20)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := int64(off)
		m.Write(addr, data)
		return bytes.Equal(m.Read(addr, int64(len(data))), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
