// Package nic models Ethernet network interface controllers.
//
// BMcast dedicates one NIC to the VMM for streaming deployment and drives
// it with a small polling driver (the paper's PRO/1000, X540, RTL816x and
// NetXtreme drivers are 600–760 LOC each precisely because they only need
// polled send/receive). This package provides that device: MAC filtering,
// an rx queue for polled receive, an optional receive callback for
// interrupt-style delivery, and counters.
package nic

import (
	"repro/internal/ethernet"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Model identifies the NIC hardware type, mirroring the drivers the paper
// implements. All models share behaviour; the name feeds reports.
type Model string

// NIC models supported by the paper's VMM drivers.
const (
	IntelPro1000     Model = "Intel PRO/1000"
	IntelX540        Model = "Intel X540"
	RealtekRTL816x   Model = "Realtek RTL816x"
	BroadcomNetXtrem Model = "Broadcom NetXtreme"
)

// NIC is a network interface attached to a link.
type NIC struct {
	Name  string
	Model Model
	MAC   ethernet.MAC

	k    *sim.Kernel
	link *ethernet.Link

	rx        *sim.Queue[*ethernet.Frame]
	onReceive func(*ethernet.Frame)

	// Promiscuous disables destination MAC filtering.
	Promiscuous bool

	TxFrames metrics.Counter
	RxFrames metrics.Counter
	TxBytes  metrics.Counter
	RxBytes  metrics.Counter
	Filtered metrics.Counter
}

// New creates a NIC with the given address attached to the station side of
// link.
func New(k *sim.Kernel, name string, model Model, mac ethernet.MAC, link *ethernet.Link) *NIC {
	n := &NIC{
		Name:  name,
		Model: model,
		MAC:   mac,
		k:     k,
		link:  link,
		rx:    sim.NewQueue[*ethernet.Frame](k, name+".rx"),
	}
	link.AttachA(n)
	return n
}

// Deliver implements ethernet.Port: frames arriving from the link. The
// frame reference passes to the receive callback or the rx queue consumer;
// filtered frames are released here.
func (n *NIC) Deliver(f *ethernet.Frame) {
	if !n.Promiscuous && f.Dst != n.MAC && f.Dst != ethernet.Broadcast {
		n.Filtered.Inc()
		f.Release()
		return
	}
	n.RxFrames.Inc()
	n.RxBytes.Add(f.Size)
	if n.onReceive != nil {
		n.onReceive(f)
		return
	}
	n.rx.Push(f)
}

// Send transmits a frame. Src is stamped with the NIC's MAC.
func (n *NIC) Send(f *ethernet.Frame) {
	f.Src = n.MAC
	n.TxFrames.Inc()
	n.TxBytes.Add(f.Size)
	n.link.SendFromA(f)
}

// MTU reports the attached link's MTU.
func (n *NIC) MTU() int64 { return n.link.MTU() }

// SetOnReceive installs a delivery callback, bypassing the rx queue. Pass
// nil to return to queued (polled) receive.
func (n *NIC) SetOnReceive(fn func(*ethernet.Frame)) { n.onReceive = fn }

// Recv blocks the process until a frame arrives (polled driver model).
func (n *NIC) Recv(p *sim.Proc) *ethernet.Frame {
	f, _ := n.rx.Pop(p)
	return f
}

// TryRecv returns a queued frame without blocking.
func (n *NIC) TryRecv() (*ethernet.Frame, bool) { return n.rx.TryPop() }

// RxPending reports the number of queued received frames.
func (n *NIC) RxPending() int { return n.rx.Len() }
