package nic

import (
	"testing"

	"repro/internal/ethernet"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/mem"
	"repro/internal/sim"
)

func pair(k *sim.Kernel) (*NIC, *NIC) {
	sw := ethernet.NewSwitch(k, "sw", sim.Microsecond)
	a := New(k, "a", IntelPro1000, 0x0A, sw.Connect(ethernet.GigabitJumbo()))
	b := New(k, "b", RealtekRTL816x, 0x0B, sw.Connect(ethernet.GigabitJumbo()))
	return a, b
}

func TestSendReceivePolled(t *testing.T) {
	k := sim.New(1)
	a, b := pair(k)
	a.Send(&ethernet.Frame{Dst: 0x0B, Size: 500, Payload: "hi"})
	k.Run()
	f, ok := b.TryRecv()
	if !ok || f.Payload.(string) != "hi" {
		t.Fatal("polled receive failed")
	}
	if f.Src != 0x0A {
		t.Fatal("source MAC not stamped")
	}
	if a.TxFrames.Value() != 1 || b.RxFrames.Value() != 1 {
		t.Fatal("counters wrong")
	}
}

func TestMACFiltering(t *testing.T) {
	k := sim.New(1)
	a, b := pair(k)
	a.Send(&ethernet.Frame{Dst: 0xEE, Size: 100}) // not b's address
	k.Run()
	if b.RxPending() != 0 || b.Filtered.Value() != 1 {
		t.Fatalf("filtering failed: pending=%d filtered=%d", b.RxPending(), b.Filtered.Value())
	}
	b.Promiscuous = true
	a.Send(&ethernet.Frame{Dst: 0xEE, Size: 100})
	k.Run()
	if b.RxPending() != 1 {
		t.Fatal("promiscuous mode did not accept the frame")
	}
}

func TestBroadcastAccepted(t *testing.T) {
	k := sim.New(1)
	a, b := pair(k)
	a.Send(&ethernet.Frame{Dst: ethernet.Broadcast, Size: 64})
	k.Run()
	if b.RxPending() != 1 {
		t.Fatal("broadcast not accepted")
	}
}

func TestOnReceiveCallback(t *testing.T) {
	k := sim.New(1)
	a, b := pair(k)
	var got *ethernet.Frame
	b.SetOnReceive(func(f *ethernet.Frame) { got = f })
	a.Send(&ethernet.Frame{Dst: 0x0B, Size: 64, Payload: 42})
	k.Run()
	if got == nil || got.Payload.(int) != 42 {
		t.Fatal("callback delivery failed")
	}
	if b.RxPending() != 0 {
		t.Fatal("callback frame also queued")
	}
}

func TestBlockingRecv(t *testing.T) {
	k := sim.New(1)
	a, b := pair(k)
	var at sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		b.Recv(p)
		at = p.Now()
	})
	k.Spawn("tx", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		a.Send(&ethernet.Frame{Dst: 0x0B, Size: 64})
	})
	k.Run()
	if at < sim.Time(5*sim.Millisecond) {
		t.Fatalf("Recv returned at %v before send", at)
	}
}

// --- RingNIC ---------------------------------------------------------------

func ringRig(k *sim.Kernel) (*RingNIC, *NIC, *mem.Memory, *hwio.Space, *hwio.IRQ) {
	sw := ethernet.NewSwitch(k, "sw", sim.Microsecond)
	base := New(k, "a", IntelPro1000, 0x0A, sw.Connect(ethernet.GigabitJumbo()))
	peer := New(k, "b", IntelPro1000, 0x0B, sw.Connect(ethernet.GigabitJumbo()))
	m := mem.New(16 << 20)
	irq := hwio.NewIRQ(k, "nic")
	r := NewRingNIC(k, base, m, irq)
	ios := hwio.NewSpace()
	r.RegisterRegion(ios)
	return r, peer, m, ios, irq
}

func TestRingTransmit(t *testing.T) {
	k := sim.New(1)
	r, peer, m, ios, _ := ringRig(k)
	const txRing, buf = 0x1000, 0x8000
	WriteDesc(m, txRing, 0, buf, 500)
	r.StageTxFrame(buf, &ethernet.Frame{Dst: 0x0B, Size: 500, Payload: "x"})
	ios.Write(nil, hwio.MMIO, RingBase+RegTDBAL, 8, txRing)
	ios.Write(nil, hwio.MMIO, RingBase+RegTDLEN, 4, 8)
	ios.Write(nil, hwio.MMIO, RingBase+RegCTRL, 4, CtrlEnable)
	ios.Write(nil, hwio.MMIO, RingBase+RegTDT, 4, 1)
	k.Run()
	if peer.RxPending() != 1 {
		t.Fatal("ring transmit did not deliver")
	}
	if !DescDone(m, txRing, 0) {
		t.Fatal("TX descriptor DD not set")
	}
	if r.TxCompleted != 1 {
		t.Fatalf("TxCompleted = %d", r.TxCompleted)
	}
}

func TestRingReceive(t *testing.T) {
	k := sim.New(1)
	r, peer, m, ios, irq := ringRig(k)
	irqs := 0
	irq.SetHandler(func() { irqs++ })
	const rxRing, buf = 0x2000, 0x9000
	WriteDesc(m, rxRing, 0, buf, 9018)
	WriteDesc(m, rxRing, 1, buf+0x2400, 9018)
	ios.Write(nil, hwio.MMIO, RingBase+RegIMS, 4, 1)
	ios.Write(nil, hwio.MMIO, RingBase+RegRDBAL, 8, rxRing)
	ios.Write(nil, hwio.MMIO, RingBase+RegRDLEN, 4, 2)
	ios.Write(nil, hwio.MMIO, RingBase+RegRDT, 4, 1)
	ios.Write(nil, hwio.MMIO, RingBase+RegCTRL, 4, CtrlEnable)
	peer.Send(&ethernet.Frame{Dst: 0x0A, Size: 800, Payload: "in"})
	k.Run()
	if !DescDone(m, rxRing, 0) {
		t.Fatal("RX descriptor DD not set")
	}
	f, ok := r.TakeRxFrame(buf)
	if !ok || f.Payload.(string) != "in" {
		t.Fatal("RX frame not retrievable")
	}
	if irqs != 1 {
		t.Fatalf("irqs = %d", irqs)
	}
}

func TestRingRxDropWhenFull(t *testing.T) {
	k := sim.New(1)
	r, peer, m, ios, _ := ringRig(k)
	const rxRing = 0x2000
	WriteDesc(m, rxRing, 0, 0x9000, 9018)
	ios.Write(nil, hwio.MMIO, RingBase+RegRDBAL, 8, rxRing)
	ios.Write(nil, hwio.MMIO, RingBase+RegRDLEN, 4, 2)
	ios.Write(nil, hwio.MMIO, RingBase+RegRDT, 4, 0) // head == tail: no buffers
	ios.Write(nil, hwio.MMIO, RingBase+RegCTRL, 4, CtrlEnable)
	peer.Send(&ethernet.Frame{Dst: 0x0A, Size: 100})
	k.Run()
	if r.RxDropped != 1 {
		t.Fatalf("RxDropped = %d, want 1", r.RxDropped)
	}
}

func TestRingDisabledIgnoresTraffic(t *testing.T) {
	k := sim.New(1)
	r, peer, _, _, _ := ringRig(k)
	peer.Send(&ethernet.Frame{Dst: 0x0A, Size: 100})
	k.Run()
	if r.RxDelivered != 0 || r.RxDropped != 1 {
		t.Fatalf("disabled ring handled traffic: delivered=%d dropped=%d", r.RxDelivered, r.RxDropped)
	}
}
