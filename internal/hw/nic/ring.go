package nic

import (
	"encoding/binary"

	"repro/internal/ethernet"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/mem"
	"repro/internal/sim"
)

// RingNIC is an e1000-style descriptor-ring front end over a NIC: the
// driver programs transmit/receive descriptor rings in guest memory and
// head/tail registers; the hardware consumes TX descriptors, fills RX
// descriptors, and raises interrupts. This is the register surface the
// paper's shared-NIC mediator (§6) virtualizes with shadow rings.
//
// Frame payloads travel through a buffer-address-keyed side table (the
// same simulation affordance as the storage DMA hints): StageTxFrame
// attaches the frame a TX buffer "contains", and TakeRxFrame collects the
// frame the hardware "wrote" into an RX buffer.
type RingNIC struct {
	*NIC
	Name string

	k      *sim.Kernel
	memory *mem.Memory
	IRQ    *hwio.IRQ

	ctrl uint32
	ims  uint32

	tdba, rdba uint64
	tdlen      uint32 // ring sizes in descriptors
	rdlen      uint32
	tdh, tdt   uint32
	rdh, rdt   uint32

	txFrames map[int64]*ethernet.Frame
	rxFrames map[int64]*ethernet.Frame

	TxCompleted int64
	RxDelivered int64
	RxDropped   int64 // no free RX descriptor
}

// Register offsets (subset of the e1000 layout).
const (
	RegCTRL  = 0x0000
	RegIMS   = 0x00D0
	RegRDBAL = 0x2800
	RegRDLEN = 0x2808
	RegRDH   = 0x2810
	RegRDT   = 0x2818
	RegTDBAL = 0x3800
	RegTDLEN = 0x3808
	RegTDH   = 0x3810
	RegTDT   = 0x3818
)

// CTRL bits.
const CtrlEnable = 1 << 1

// Descriptor layout: 16 bytes (addr 8, length 2, reserved, status 1).
const (
	DescSize   = 16
	DescDD     = 1 << 0 // descriptor done
	descStatus = 12     // status byte offset
)

// RingBase is the conventional MMIO base for the guest NIC's registers.
const RingBase = 0xE000_0000

// NewRingNIC wraps a NIC with the descriptor-ring register interface.
func NewRingNIC(k *sim.Kernel, base *NIC, memory *mem.Memory, irq *hwio.IRQ) *RingNIC {
	r := &RingNIC{
		NIC:      base,
		Name:     base.Name + ".ring",
		k:        k,
		memory:   memory,
		IRQ:      irq,
		txFrames: make(map[int64]*ethernet.Frame),
		rxFrames: make(map[int64]*ethernet.Frame),
	}
	base.SetOnReceive(r.hwReceive)
	return r
}

// RegisterRegion registers the ring register bank in ios, returning the
// region name for tap installation.
func (r *RingNIC) RegisterRegion(ios *hwio.Space) string {
	name := r.Name + ".regs"
	ios.Register(name, hwio.MMIO, RingBase, 0x4000, r)
	return name
}

// IORead implements io.Handler.
func (r *RingNIC) IORead(_ *sim.Proc, off int64, _ int) uint64 {
	switch off {
	case RegCTRL:
		return uint64(r.ctrl)
	case RegIMS:
		return uint64(r.ims)
	case RegRDBAL:
		return r.rdba
	case RegRDLEN:
		return uint64(r.rdlen)
	case RegRDH:
		return uint64(r.rdh)
	case RegRDT:
		return uint64(r.rdt)
	case RegTDBAL:
		return r.tdba
	case RegTDLEN:
		return uint64(r.tdlen)
	case RegTDH:
		return uint64(r.tdh)
	case RegTDT:
		return uint64(r.tdt)
	}
	return 0
}

// IOWrite implements io.Handler.
func (r *RingNIC) IOWrite(_ *sim.Proc, off int64, _ int, v uint64) {
	switch off {
	case RegCTRL:
		r.ctrl = uint32(v)
	case RegIMS:
		r.ims = uint32(v)
	case RegRDBAL:
		r.rdba = v
	case RegRDLEN:
		r.rdlen = uint32(v)
	case RegRDH:
		r.rdh = uint32(v)
	case RegRDT:
		r.rdt = uint32(v)
	case RegTDBAL:
		r.tdba = v
	case RegTDLEN:
		r.tdlen = uint32(v)
	case RegTDH:
		r.tdh = uint32(v)
	case RegTDT:
		r.tdt = uint32(v)
		r.processTx()
	}
}

// StageTxFrame attaches the frame "contained" in the TX buffer at addr.
func (r *RingNIC) StageTxFrame(addr int64, f *ethernet.Frame) { r.txFrames[addr] = f }

// TakeRxFrame collects the frame the hardware stored in the RX buffer at
// addr, consuming it.
func (r *RingNIC) TakeRxFrame(addr int64) (*ethernet.Frame, bool) {
	f, ok := r.rxFrames[addr]
	if ok {
		delete(r.rxFrames, addr)
	}
	return f, ok
}

// StageRxFrame stores a frame into an RX buffer (used by the shared-NIC
// mediator when copying frames into the guest's ring).
func (r *RingNIC) StageRxFrame(addr int64, f *ethernet.Frame) { r.rxFrames[addr] = f }

func (r *RingNIC) readDesc(base uint64, idx uint32) (addr int64, status byte) {
	b := r.memory.Read(int64(base)+int64(idx)*DescSize, DescSize)
	return int64(binary.LittleEndian.Uint64(b)), b[descStatus]
}

func (r *RingNIC) writeDescStatus(base uint64, idx uint32, status byte) {
	r.memory.Write(int64(base)+int64(idx)*DescSize+descStatus, []byte{status})
}

// WriteDesc is a driver/mediator helper: program descriptor idx of the
// ring at base with a buffer address.
func WriteDesc(m *mem.Memory, base uint64, idx uint32, addr int64, length uint16) {
	b := make([]byte, DescSize)
	binary.LittleEndian.PutUint64(b, uint64(addr))
	binary.LittleEndian.PutUint16(b[8:], length)
	m.Write(int64(base)+int64(idx)*DescSize, b)
}

// ReadDescAddr is a mediator helper: the buffer address of descriptor idx.
func ReadDescAddr(m *mem.Memory, base uint64, idx uint32) int64 {
	b := m.Read(int64(base)+int64(idx)*DescSize, 8)
	return int64(binary.LittleEndian.Uint64(b))
}

// DescDone reports whether descriptor idx has the DD bit set.
func DescDone(m *mem.Memory, base uint64, idx uint32) bool {
	b := m.Read(int64(base)+int64(idx)*DescSize+descStatus, 1)
	return b[0]&DescDD != 0
}

// SetDescDone sets/clears the DD bit of descriptor idx.
func SetDescDone(m *mem.Memory, base uint64, idx uint32, done bool) {
	v := byte(0)
	if done {
		v = DescDD
	}
	m.Write(int64(base)+int64(idx)*DescSize+descStatus, []byte{v})
}

// processTx transmits descriptors from head to tail.
func (r *RingNIC) processTx() {
	if r.ctrl&CtrlEnable == 0 || r.tdlen == 0 {
		return
	}
	sent := false
	for r.tdh != r.tdt {
		addr, _ := r.readDesc(r.tdba, r.tdh)
		if f, ok := r.txFrames[addr]; ok {
			delete(r.txFrames, addr)
			r.Send(f)
			r.TxCompleted++
			sent = true
		}
		r.writeDescStatus(r.tdba, r.tdh, DescDD)
		r.tdh = (r.tdh + 1) % r.tdlen
	}
	if sent && r.ims != 0 {
		r.IRQ.Raise()
	}
}

// hwReceive places an arriving frame into the next free RX descriptor.
func (r *RingNIC) hwReceive(f *ethernet.Frame) {
	if r.ctrl&CtrlEnable == 0 || r.rdlen == 0 || r.rdh == r.rdt {
		r.RxDropped++
		f.Release()
		return
	}
	addr, _ := r.readDesc(r.rdba, r.rdh)
	r.rxFrames[addr] = f
	r.writeDescStatus(r.rdba, r.rdh, DescDD)
	r.rdh = (r.rdh + 1) % r.rdlen
	r.RxDelivered++
	if r.ims != 0 {
		r.IRQ.Raise()
	}
}

// Heads reports the current head registers (for mediators and tests).
func (r *RingNIC) Heads() (tdh, rdh uint32) { return r.tdh, r.rdh }

var _ hwio.Handler = (*RingNIC)(nil)
