// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The repository builds in a hermetic container with no module proxy, so
// the real x/tools framework cannot be vendored in; this package keeps the
// same shape (Analyzer{Name, Doc, Run}, Pass.Reportf) so the bmcastlint
// analyzers port to the upstream API mechanically if the dependency ever
// becomes available. Only the subset bmcastlint needs exists: no facts, no
// Requires graph, no flag plumbing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and is the token a
	// `//bmcast:allow <name>` directive must carry to suppress it.
	Name string
	// Doc is the one-paragraph rationale shown by the driver's help.
	Doc string
	// Run inspects the package and reports findings through pass.Report.
	// The returned value is unused (kept for x/tools signature parity).
	Run func(pass *Pass) (any, error)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it; analyzers
	// should prefer Reportf.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ObjectOf resolves an identifier to its object (uses before defs),
// or nil when the identifier is not in the type info.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}
