package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// simFixturePath places a fixture inside the simulation subtree so the
// determinism analyzers apply; exemptFixturePath places the same kind of
// code in the tooling subtree where they must stay silent.
const (
	simFixturePath    = "repro/internal/sim/lintfixture"
	exemptFixturePath = "repro/cmd/lintfixture"
	moduleFixturePath = "repro/internal/lintfixture"
)

func TestWalltime(t *testing.T) {
	linttest.Run(t, "testdata/src/walltime", simFixturePath, lint.WalltimeAnalyzer)
}

func TestWalltimeSkipsExemptPackages(t *testing.T) {
	// The exempt fixture calls time.Now, rand.Intn, time.Sleep and
	// spawns a goroutine, with no want comments: any finding fails the
	// test.
	linttest.Run(t, "testdata/src/exempt", exemptFixturePath,
		lint.WalltimeAnalyzer, lint.SeededRandAnalyzer, lint.SimDriftAnalyzer)
}

func TestWalltimeSkipsForeignPackages(t *testing.T) {
	// A dependency outside the module (go vet feeds the vettool every
	// import for fact extraction) must never be flagged.
	linttest.Run(t, "testdata/src/exempt", "example.com/outside",
		lint.WalltimeAnalyzer, lint.SeededRandAnalyzer, lint.SimDriftAnalyzer,
		lint.MapIterAnalyzer, lint.PooledReleaseAnalyzer)
}

func TestSeededRand(t *testing.T) {
	linttest.Run(t, "testdata/src/seededrand", simFixturePath, lint.SeededRandAnalyzer)
}

func TestMapIter(t *testing.T) {
	linttest.Run(t, "testdata/src/mapiter", moduleFixturePath, lint.MapIterAnalyzer)
}

func TestPooledRelease(t *testing.T) {
	linttest.Run(t, "testdata/src/pooledrelease", moduleFixturePath, lint.PooledReleaseAnalyzer)
}

func TestSimDrift(t *testing.T) {
	linttest.Run(t, "testdata/src/simdrift", simFixturePath, lint.SimDriftAnalyzer)
}

func TestSimDriftShardExecutor(t *testing.T) {
	// The parallel shard executor's shape: barrier-synchronized worker
	// goroutines are legitimate when annotated with a reasoned allow
	// directive; the same goroutine shape bare, or a channel-racing
	// mailbox merge, must be flagged.
	linttest.Run(t, "testdata/src/shardexec", simFixturePath, lint.SimDriftAnalyzer)
}

func TestSimDriftTenantGenerator(t *testing.T) {
	// The tenants arrival-generator shape: open-loop traffic loops must
	// draw gaps from the kernel's clock and seeded source, never the
	// wall clock or raw goroutines.
	linttest.Run(t, "testdata/src/tenantdrift", simFixturePath, lint.SimDriftAnalyzer)
}

func TestSpanLeak(t *testing.T) {
	linttest.Run(t, "testdata/src/spanleak", moduleFixturePath, lint.SpanLeakAnalyzer)
}

func TestCauseRestore(t *testing.T) {
	linttest.Run(t, "testdata/src/causerestore", moduleFixturePath, lint.CauseRestoreAnalyzer)
}

func TestFrameBalance(t *testing.T) {
	linttest.Run(t, "testdata/src/framebalance", moduleFixturePath, lint.FrameBalanceAnalyzer)
}

func TestSpanLeakSkipsForeignPackages(t *testing.T) {
	// The flagged fixture re-checked under a foreign import path must be
	// silent — but its want comments would then fail the run, so reuse
	// the exempt fixture (which models no tracked APIs) for the flow
	// analyzers and rely on scoping tests in lint.InModule for the rest.
	linttest.Run(t, "testdata/src/exempt", "example.com/outside",
		lint.SpanLeakAnalyzer, lint.CauseRestoreAnalyzer, lint.FrameBalanceAnalyzer)
}

func TestIsSimPackage(t *testing.T) {
	cases := []struct {
		path string
		sim  bool
	}{
		{"repro/internal/sim", true},
		{"repro/internal/cpuvirt", true},
		{"repro/internal/hw/disk", true},
		{"repro/internal/experiments", true},
		{"repro/internal/sim [repro/internal/sim.test]", true},
		{"repro", true},
		{"repro/internal/lint", false},
		{"repro/internal/lint/linttest", false},
		{"repro/cmd/bmcast-sim", false},
		{"repro/examples/quickstart", false},
		{"time", false},
		{"math/rand", false},
		{"reprox/internal/sim", false},
	}
	for _, c := range cases {
		if got := lint.IsSimPackage(c.path); got != c.sim {
			t.Errorf("IsSimPackage(%q) = %v, want %v", c.path, got, c.sim)
		}
	}
}
