package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// CauseRestoreAnalyzer proves that every captured previous-cause from
// trace.SwapCause is restored before the function returns. The
// canonical idiom
//
//	prev := trace.SwapCause(p, sp)
//	defer trace.SwapCause(p, prev)
//
// settles the obligation at the defer statement: passing prev back into
// SwapCause (or any call) hands it off. A captured prev that reaches a
// return un-restored leaves the proc annotated with a stale cause, which
// mis-attributes every later span on that proc.
//
// SwapCause calls whose result is discarded (`trace.SwapCause(p, sp)`
// as a statement) are deliberate fire-and-forget annotations and are
// not tracked.
var CauseRestoreAnalyzer = &analysis.Analyzer{
	Name: "causerestore",
	Doc: "report captured trace.SwapCause results that are not swapped back on every path out of the function; " +
		"use defer trace.SwapCause(p, prev) to restore the previous cause",
	Run: runCauseRestore,
}

var causeRestoreRules = flowRules{
	acquires:       swapCauseAcquires,
	consumeMethods: nil, // only a hand-off (the restore call) settles
	leakFormat: "previous cause %s captured from SwapCause is not restored on every path out of the function; " +
		"restore it with defer trace.SwapCause(p, %[1]s) or annotate with //bmcast:allow causerestore",
	overwriteFormat: "%s is reassigned while it still holds an unrestored previous cause",
}

func runCauseRestore(pass *analysis.Pass) (any, error) {
	runFlow(pass, causeRestoreRules)
	return nil, nil
}

// swapCauseAcquires recognizes `prev := SwapCause(p, sp)` (package
// function or dotted selector, two arguments, *Span result) with a
// captured, non-blank result.
func swapCauseAcquires(info *types.Info, n ast.Node) []acquisition {
	s, ok := n.(*ast.AssignStmt)
	if !ok || len(s.Lhs) != len(s.Rhs) {
		return nil
	}
	var out []acquisition
	for i, rhs := range s.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || !isSwapCause(info, call) {
			continue
		}
		if v, id := lhsVar(info, s.Lhs[i]); v != nil {
			out = append(out, acquisition{v: v, pos: id.Pos()})
		}
	}
	return out
}

// isSwapCause matches a two-argument function call named SwapCause
// returning *Span. Like isSpanBegin the match is structural so fixtures
// can model the API locally.
func isSwapCause(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 2 {
		return false
	}
	var name *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun
	case *ast.SelectorExpr:
		name = fun.Sel
	default:
		return false
	}
	if name.Name != "SwapCause" {
		return false
	}
	if _, ok := info.Uses[name].(*types.Func); !ok {
		return false
	}
	return namedResult(info.TypeOf(call), "Span")
}
