// Package cfg builds intra-function control-flow graphs over go/ast and
// runs forward dataflow analyses over them. It is the foundation of the
// path-sensitive bmcastlint analyzers (spanleak, causerestore,
// framebalance, pooledrelease): where the original analyzers reasoned
// about straight-line statement order, these reason about every path a
// function can take — early returns, goto, labeled break/continue,
// switch fallthrough, select arms — and prove an invariant on all of
// them.
//
// The graph is deliberately small: basic blocks of ast.Node slices with
// successor edges. Compound statements are decomposed — a block holds
// only the parts that execute when control passes through it (an if's
// Init and Cond, a for's Cond, a range's operand), never a nested body;
// bodies live in their own blocks. Analyzers therefore never need to
// guard against visiting the same code twice.
//
// Three modeling decisions analyzers rely on:
//
//   - Defer statements appear as ordinary *ast.DeferStmt nodes at the
//     point where the defer is *registered*. A deferred call runs at
//     every function exit reachable from that point, so a forward
//     analysis may treat "defer release(x)" as settling x's obligation
//     right there — paths that never execute the defer statement never
//     see the node. Analyzers that care about when the deferred body
//     actually runs (use-after-release) instead skip DeferStmt effects.
//   - panic(...), os.Exit(...) and runtime.Goexit() terminate their
//     block with no successor: such paths never reach Exit, so
//     obligations checked "on every path out of the function" are not
//     demanded on panic paths.
//   - Function literals are opaque: the builder never descends into a
//     FuncLit body. Each literal should be built as its own Graph.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
)

// Block is one basic block: nodes that execute in order, then a
// transfer of control to one of Succs. A block with no successors
// terminates execution (return blocks instead edge to the synthetic
// Exit; successor-less blocks are panic/os.Exit paths or empty selects).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Graph is the control-flow graph of one function body. Blocks[0] is
// the entry block; Exit is a synthetic, empty block every return and
// the fall-off-the-end path feed into. Exit carries the function's
// final dataflow facts.
type Graph struct {
	Blocks []*Block
	Exit   *Block
}

// New builds the control-flow graph for one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	entry := b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = entry
	b.labels = make(map[string]*labelInfo)
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit) // fall off the end
	for _, pg := range b.gotos {
		if li := b.labels[pg.label]; li != nil {
			b.edge(pg.from, li.target)
		}
	}
	return b.g
}

// labelInfo tracks one label: the block its statement starts (goto
// target) and, when it labels a loop/switch/select, where labeled
// break and continue go.
type labelInfo struct {
	target     *Block
	breakTo    *Block
	continueTo *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g      *Graph
	cur    *Block
	labels map[string]*labelInfo
	gotos  []pendingGoto

	// Innermost-last targets for unlabeled break/continue. Loops push
	// both; switch/select push only breaks.
	breaks    []*Block
	continues []*Block

	// fallthroughTo is the next case body while building a switch case.
	fallthroughTo *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// ensureLabel returns the labelInfo for name, creating its target block
// on first reference (forward gotos reference labels not yet declared).
func (b *builder) ensureLabel(name string) *labelInfo {
	if li, ok := b.labels[name]; ok {
		return li
	}
	li := &labelInfo{target: b.newBlock()}
	b.labels[name] = li
	return li
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, nil)
	}
}

// stmt lowers one statement. label is non-nil when the statement is the
// body of a LabeledStmt, so loops/switches register labeled targets.
func (b *builder) stmt(s ast.Stmt, label *labelInfo) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.ensureLabel(s.Label.Name)
		b.edge(b.cur, li.target)
		b.cur = li.target
		b.stmt(s.Stmt, li)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock() // anything after is unreachable

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.breakTo != nil {
					b.edge(b.cur, li.breakTo)
				}
			} else if n := len(b.breaks); n > 0 {
				b.edge(b.cur, b.breaks[n-1])
			}
		case token.CONTINUE:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.continueTo != nil {
					b.edge(b.cur, li.continueTo)
				}
			} else if n := len(b.continues); n > 0 {
				b.edge(b.cur, b.continues[n-1])
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.edge(b.cur, b.fallthroughTo)
			}
		}
		b.cur = b.newBlock()

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body, nil)
		b.edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else, nil)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		post := b.newBlock()
		join := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, join) // `for {}` has no normal exit
		}
		if label != nil {
			label.breakTo, label.continueTo = join, post
		}
		b.breaks = append(b.breaks, join)
		b.continues = append(b.continues, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.add(s.Post)
		}
		b.edge(post, head)
		b.cur = join

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		// The RangeStmt node itself models the per-iteration key/value
		// assignment; analyzers treat s.Key/s.Value as assigned here.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock()
		join := b.newBlock()
		b.edge(head, body)
		b.edge(head, join)
		if label != nil {
			label.breakTo, label.continueTo = join, head
		}
		b.breaks = append(b.breaks, join)
		b.continues = append(b.continues, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.edge(b.cur, head)
		b.cur = join

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, func(cc *ast.CaseClause) {
			for _, e := range cc.List {
				b.add(e) // case expressions evaluate in the head block
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, func(*ast.CaseClause) {})

	case *ast.SelectStmt:
		head := b.cur
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no successors, path ends here.
			b.cur = b.newBlock()
			return
		}
		join := b.newBlock()
		if label != nil {
			label.breakTo = join
		}
		b.breaks = append(b.breaks, join)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			arm := b.newBlock()
			b.edge(head, arm)
			b.cur = arm
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = join

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && terminatesFlow(call) {
			b.cur = b.newBlock() // panic/os.Exit: no way out of this block
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, DeferStmt, GoStmt, ...
		b.add(s)
	}
}

// switchBody lowers the shared shape of switch and type-switch: head
// evaluates the dispatch, every case body is its own block, fallthrough
// chains to the next body, and a missing default adds a head→join edge.
func (b *builder) switchBody(body *ast.BlockStmt, label *labelInfo, headParts func(*ast.CaseClause)) {
	head := b.cur
	join := b.newBlock()
	if label != nil {
		label.breakTo = join
	}
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, cl := range body.List {
		clauses = append(clauses, cl.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		headParts(cc)
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}
	b.breaks = append(b.breaks, join)
	savedFall := b.fallthroughTo
	for i, cc := range clauses {
		if i+1 < len(bodies) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		b.edge(b.cur, join)
	}
	b.fallthroughTo = savedFall
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

// terminatesFlow reports whether a call never returns: the panic
// builtin, os.Exit, runtime.Goexit, and the testing Fatal family are
// matched by name (the builder has no type information; shadowing these
// names is assumed not to happen in checked code).
func terminatesFlow(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			switch {
			case x.Name == "os" && fn.Sel.Name == "Exit":
				return true
			case x.Name == "runtime" && fn.Sel.Name == "Goexit":
				return true
			case fn.Sel.Name == "Fatal" || fn.Sel.Name == "Fatalf":
				// t.Fatal / log.Fatal: both stop this goroutine's flow.
				return true
			}
		}
	}
	return false
}

// String renders the graph for tests and debugging: one line per block
// with its nodes printed as source and its successor indexes.
func (g *Graph) String() string {
	return g.render(nil)
}

// StringFset is String with real positions resolved through fset (the
// printer needs no fset for shape, but tests read better with one).
func (g *Graph) StringFset(fset *token.FileSet) string {
	return g.render(fset)
}

func (g *Graph) render(fset *token.FileSet) string {
	if fset == nil {
		fset = token.NewFileSet()
	}
	var buf bytes.Buffer
	for _, blk := range g.Blocks {
		fmt.Fprintf(&buf, "b%d:", blk.Index)
		if blk == g.Exit {
			buf.WriteString(" <exit>")
		}
		for _, n := range blk.Nodes {
			var nb bytes.Buffer
			if rs, ok := n.(*ast.RangeStmt); ok {
				// Print only the header; the body is in other blocks.
				nb.WriteString("range-assign ")
				if rs.Key != nil {
					printer.Fprint(&nb, fset, rs.Key)
				}
				if rs.Value != nil {
					nb.WriteString(", ")
					printer.Fprint(&nb, fset, rs.Value)
				}
			} else {
				printer.Fprint(&nb, fset, n)
			}
			fmt.Fprintf(&buf, " {%s}", singleLine(nb.String()))
		}
		buf.WriteString(" ->")
		for _, s := range blk.Succs {
			fmt.Fprintf(&buf, " b%d", s.Index)
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}

func singleLine(s string) string {
	out := make([]byte, 0, len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == '\t' || c == ' ' {
			space = true
			continue
		}
		if space && len(out) > 0 {
			out = append(out, ' ')
		}
		space = false
		out = append(out, c)
	}
	return string(out)
}
