package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint/cfg"
)

// build parses a function body and constructs its CFG.
func build(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return cfg.New(fd.Body)
}

// blockWith returns the block whose rendered form contains substr,
// failing the test when zero or several match.
func blockWith(t *testing.T, g *cfg.Graph, substr string) *cfg.Block {
	t.Helper()
	lines := strings.Split(strings.TrimRight(g.String(), "\n"), "\n")
	found := -1
	for i, l := range lines {
		if strings.Contains(l, substr) {
			if found >= 0 {
				t.Fatalf("blockWith(%q): blocks b%d and b%d both match\n%s", substr, found, i, g)
			}
			found = i
		}
	}
	if found < 0 {
		t.Fatalf("blockWith(%q): no block matches\n%s", substr, g)
	}
	return g.Blocks[found]
}

// reaches reports whether to is reachable from from along Succs edges.
func reaches(from, to *cfg.Block) bool {
	seen := map[*cfg.Block]bool{from: true}
	work := []*cfg.Block{from}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		if b == to {
			return true
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return false
}

func entry(g *cfg.Graph) *cfg.Block { return g.Blocks[0] }

func TestReturnMakesTailUnreachable(t *testing.T) {
	g := build(t, `
	a()
	return
	b()`)
	if !reaches(entry(g), g.Exit) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if reaches(entry(g), blockWith(t, g, "b()")) {
		t.Fatalf("code after return should be unreachable:\n%s", g)
	}
}

func TestPanicBlockHasNoSuccessors(t *testing.T) {
	g := build(t, `
	if c {
		panic("invariant")
	}
	rest()`)
	pb := blockWith(t, g, `panic("invariant")`)
	if len(pb.Succs) != 0 {
		t.Fatalf("panic block has successors %v:\n%s", pb.Succs, g)
	}
	if !reaches(entry(g), blockWith(t, g, "rest()")) {
		t.Fatalf("non-panic path lost:\n%s", g)
	}
}

func TestGotoSkipsAndBranchesBack(t *testing.T) {
	g := build(t, `
	goto done
	skipped()
done:
	fini()`)
	if reaches(entry(g), blockWith(t, g, "skipped()")) {
		t.Fatalf("statement jumped over should be unreachable:\n%s", g)
	}
	if !reaches(entry(g), blockWith(t, g, "fini()")) {
		t.Fatalf("goto target unreachable:\n%s", g)
	}
}

func TestBackwardGotoFormsLoop(t *testing.T) {
	g := build(t, `
top:
	step()
	if c {
		goto top
	}
	done()`)
	// The label block carries both step() and the if condition; a real
	// cycle means one of its successors (the goto branch) leads back.
	sb := blockWith(t, g, "step()")
	cyclic := false
	for _, s := range sb.Succs {
		if reaches(s, sb) {
			cyclic = true
		}
	}
	if !cyclic {
		t.Fatalf("backward goto should form a cycle through the label:\n%s", g)
	}
	if !reaches(entry(g), blockWith(t, g, "done()")) {
		t.Fatalf("fallthrough exit lost:\n%s", g)
	}
}

func TestLabeledBreakEscapesBothLoops(t *testing.T) {
	labeled := build(t, `
outer:
	for {
		for {
			break outer
		}
	}
	done()`)
	if !reaches(entry(labeled), blockWith(t, labeled, "done()")) {
		t.Fatalf("break outer should reach past both loops:\n%s", labeled)
	}

	plain := build(t, `
	for {
		for {
			break
		}
	}
	done()`)
	if reaches(entry(plain), blockWith(t, plain, "done()")) {
		t.Fatalf("plain break escapes only the inner loop; done() must stay unreachable:\n%s", plain)
	}
}

func TestLabeledContinueTargetsOuterPost(t *testing.T) {
	labeled := build(t, `
outer:
	for i := 0; i < 9; i++ {
		for {
			continue outer
		}
	}
	done()`)
	if !reaches(entry(labeled), blockWith(t, labeled, "i++")) {
		t.Fatalf("continue outer should reach the outer post statement:\n%s", labeled)
	}

	plain := build(t, `
	for i := 0; i < 9; i++ {
		for {
			continue
		}
	}
	done()`)
	if reaches(entry(plain), blockWith(t, plain, "i++")) {
		t.Fatalf("plain continue loops the inner for{} forever; outer post must stay unreachable:\n%s", plain)
	}
}

func TestSelectArmsAreParallelBlocks(t *testing.T) {
	g := build(t, `
	select {
	case v := <-a:
		useA(v)
	case w := <-b:
		useB(w)
	}
	after()`)
	armA := blockWith(t, g, "useA(v)")
	armB := blockWith(t, g, "useB(w)")
	if reaches(armA, armB) || reaches(armB, armA) {
		t.Fatalf("select arms must not flow into each other:\n%s", g)
	}
	after := blockWith(t, g, "after()")
	if !reaches(armA, after) || !reaches(armB, after) {
		t.Fatalf("both arms must rejoin:\n%s", g)
	}
}

func TestEmptySelectTerminatesFlow(t *testing.T) {
	g := build(t, `
	pre()
	select {}
	after()`)
	if reaches(entry(g), g.Exit) {
		t.Fatalf("select{} blocks forever; exit must be unreachable:\n%s", g)
	}
	if reaches(entry(g), blockWith(t, g, "after()")) {
		t.Fatalf("code after select{} must be unreachable:\n%s", g)
	}
}

func TestSwitchFallthroughChainsBodies(t *testing.T) {
	g := build(t, `
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		dflt()
	}
	after()`)
	one := blockWith(t, g, "one()")
	two := blockWith(t, g, "two()")
	linked := false
	for _, s := range one.Succs {
		if reaches(s, two) || s == two {
			linked = true
		}
	}
	if !linked {
		t.Fatalf("fallthrough must chain case 1 into case 2:\n%s", g)
	}
	dflt := blockWith(t, g, "dflt()")
	if reaches(one, dflt) {
		t.Fatalf("fallthrough must not reach the default body:\n%s", g)
	}
	if !reaches(two, blockWith(t, g, "after()")) {
		t.Fatalf("cases must rejoin:\n%s", g)
	}
}

func TestDeferAppearsAtRegistrationPointOnly(t *testing.T) {
	g := build(t, `
	if c {
		defer f()
	}
	g()`)
	db := blockWith(t, g, "defer f()")
	var deferNode ast.Node
	for _, n := range db.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			deferNode = n
		}
	}
	if deferNode == nil {
		t.Fatalf("defer statement should appear as a DeferStmt node:\n%s", g)
	}
	if db == blockWith(t, g, "g()") {
		t.Fatalf("conditional defer must live in the branch block, not the join:\n%s", g)
	}
	// The branch-not-taken path must bypass the defer registration.
	bypass := false
	for _, s := range blockWith(t, g, "c").Succs {
		if s != db && reaches(s, g.Exit) {
			bypass = true
		}
	}
	if !bypass {
		t.Fatalf("cond-false path should reach exit without the defer block:\n%s", g)
	}
}

func TestRangeHeaderCarriesTheRangeMarker(t *testing.T) {
	g := build(t, `
	for _, v := range xs {
		body(v)
	}
	after()`)
	head := blockWith(t, g, "range-assign")
	var marker bool
	for _, n := range head.Nodes {
		if _, ok := n.(*ast.RangeStmt); ok {
			marker = true
		}
	}
	if !marker {
		t.Fatalf("range head should carry the RangeStmt marker node:\n%s", g)
	}
	body := blockWith(t, g, "body(v)")
	if !reaches(body, head) {
		t.Fatalf("loop body must edge back to the range head:\n%s", g)
	}
	if !reaches(head, blockWith(t, g, "after()")) {
		t.Fatalf("range must be able to terminate:\n%s", g)
	}
}
