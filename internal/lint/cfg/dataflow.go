package cfg

import (
	"go/ast"
	"go/types"
)

// Facts is a dataflow fact set: each tracked variable maps to a small
// non-zero analyzer-defined state. Absence (state 0) is the lattice
// bottom — "no obligation / nothing known". Analyzers typically encode
// an acquisition-site index in the state so the fixpoint solution can
// name a witness when it reports.
type Facts map[*types.Var]uint8

// Clone returns an independent copy.
func (f Facts) Clone() Facts {
	out := make(Facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Equal reports whether two fact sets assign identical states.
func (f Facts) Equal(o Facts) bool {
	if len(f) != len(o) {
		return false
	}
	for k, v := range f {
		if o[k] != v {
			return false
		}
	}
	return true
}

// Analysis is one forward dataflow problem over a Graph.
type Analysis struct {
	// Transfer applies node n's effect to f in place. It must be
	// deterministic in (n, f): the solver calls it repeatedly during
	// fixpoint iteration, and callers replay it over the solution.
	Transfer func(n ast.Node, f Facts)
	// Join merges the states one variable has on two control-flow edges
	// meeting at a block. Either argument may be 0 (the variable is
	// untracked on that edge). Returning 0 drops the variable. Join
	// must be commutative and idempotent; a "may" analysis returns the
	// non-zero side (an obligation on any path survives the merge), a
	// "must" analysis returns 0 unless both sides agree.
	Join func(a, b uint8) uint8
}

// Forward solves the analysis to fixpoint and returns the facts at
// entry to every *reachable* block. Unreachable blocks (code after
// return/panic, bodies of `if false`-style dead branches are still
// reachable — only blocks with no path from entry are excluded) have no
// entry in the result, so their edges never pollute joins: a must-fact
// established before `return` inside a branch is not killed by the
// dead fallthrough edge behind it.
func Forward(g *Graph, an Analysis) map[*Block]Facts {
	if len(g.Blocks) == 0 {
		return nil
	}
	in := make(map[*Block]Facts, len(g.Blocks))
	entry := g.Blocks[0]
	in[entry] = Facts{}

	queued := make([]bool, len(g.Blocks))
	work := []*Block{entry}
	queued[entry.Index] = true

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		out := in[b].Clone()
		for _, n := range b.Nodes {
			an.Transfer(n, out)
		}
		for _, s := range b.Succs {
			cur, seen := in[s]
			var next Facts
			if !seen {
				next = out.Clone()
			} else {
				next = mergeFacts(cur, out, an.Join)
				if next.Equal(cur) {
					continue
				}
			}
			in[s] = next
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// mergeFacts joins two fact sets variable by variable.
func mergeFacts(a, b Facts, join func(x, y uint8) uint8) Facts {
	out := make(Facts, len(a))
	for v, sa := range a {
		if s := join(sa, b[v]); s != 0 {
			out[v] = s
		}
	}
	for v, sb := range b {
		if _, done := a[v]; done {
			continue
		}
		if s := join(0, sb); s != 0 {
			out[v] = s
		}
	}
	return out
}

// MayJoin keeps an obligation that exists on either edge — the join for
// leak-style analyses ("must be settled on every path"). When both
// edges carry an obligation from different sites, the smaller site
// index wins so reports are deterministic.
func MayJoin(a, b uint8) uint8 {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

// MustJoin keeps a fact only when both edges agree it holds — the join
// for poison-style analyses ("released on every path reaching here").
// Differing non-zero sites collapse to the smaller index: the fact
// (released) holds either way, and the witness stays deterministic.
func MustJoin(a, b uint8) uint8 {
	if a == 0 || b == 0 {
		return 0
	}
	if a < b {
		return a
	}
	return b
}
