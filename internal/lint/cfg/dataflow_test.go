package cfg_test

import (
	"go/ast"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint/cfg"
)

// Hand-built graphs exercise the solver without the builder in the way.
// Nodes are sentinel identifiers; the transfer function interprets
// "acq"/"rel" as acquire/release of one tracked variable.

var testVar = types.NewVar(token.NoPos, nil, "x", types.Typ[types.Int])

func sentinel(name string) ast.Node { return &ast.Ident{Name: name} }

func testTransfer(n ast.Node, f cfg.Facts) {
	id, ok := n.(*ast.Ident)
	if !ok {
		return
	}
	switch id.Name {
	case "acq":
		f[testVar] = 1
	case "acq2":
		f[testVar] = 2
	case "rel":
		delete(f, testVar)
	}
}

// graph builds a Graph from an adjacency list; block i gets nodes[i].
func graph(nodes [][]ast.Node, edges map[int][]int, exit int) *cfg.Graph {
	g := &cfg.Graph{}
	for i := range nodes {
		g.Blocks = append(g.Blocks, &cfg.Block{Index: i, Nodes: nodes[i]})
	}
	for from, tos := range edges {
		for _, to := range tos {
			g.Blocks[from].Succs = append(g.Blocks[from].Succs, g.Blocks[to])
		}
	}
	g.Exit = g.Blocks[exit]
	return g
}

func TestForwardDiamondMayKeepsOneSidedFact(t *testing.T) {
	// b0 -> b1(acq) -> b3(exit); b0 -> b2 -> b3
	g := graph(
		[][]ast.Node{nil, {sentinel("acq")}, nil, nil},
		map[int][]int{0: {1, 2}, 1: {3}, 2: {3}},
		3,
	)
	in := cfg.Forward(g, cfg.Analysis{Transfer: testTransfer, Join: cfg.MayJoin})
	if got := in[g.Exit][testVar]; got != 1 {
		t.Fatalf("may-join should keep the one-sided obligation at exit, got state %d", got)
	}
}

func TestForwardDiamondMustDropsOneSidedFact(t *testing.T) {
	g := graph(
		[][]ast.Node{nil, {sentinel("acq")}, nil, nil},
		map[int][]int{0: {1, 2}, 1: {3}, 2: {3}},
		3,
	)
	in := cfg.Forward(g, cfg.Analysis{Transfer: testTransfer, Join: cfg.MustJoin})
	if got := in[g.Exit][testVar]; got != 0 {
		t.Fatalf("must-join should drop a fact missing on one edge, got state %d", got)
	}
}

func TestForwardMustKeepsTwoSidedFactWithSmallerWitness(t *testing.T) {
	// Both branches establish the fact from different sites; the join
	// keeps it and picks the smaller site index deterministically.
	g := graph(
		[][]ast.Node{nil, {sentinel("acq")}, {sentinel("acq2")}, nil},
		map[int][]int{0: {1, 2}, 1: {3}, 2: {3}},
		3,
	)
	in := cfg.Forward(g, cfg.Analysis{Transfer: testTransfer, Join: cfg.MustJoin})
	if got := in[g.Exit][testVar]; got != 1 {
		t.Fatalf("must-join of sites 1 and 2 should keep site 1, got state %d", got)
	}
}

func TestForwardLoopReachesFixpoint(t *testing.T) {
	// b0 -> b1(head) -> b2(acq, body) -> b1; b1 -> b3(exit). The acquire
	// flows around the back edge; the solver must terminate and the
	// obligation must be visible at head and exit.
	g := graph(
		[][]ast.Node{nil, nil, {sentinel("acq")}, nil},
		map[int][]int{0: {1}, 1: {2, 3}, 2: {1}},
		3,
	)
	in := cfg.Forward(g, cfg.Analysis{Transfer: testTransfer, Join: cfg.MayJoin})
	if got := in[g.Blocks[1]][testVar]; got != 1 {
		t.Fatalf("back-edge fact should reach the loop head, got state %d", got)
	}
	if got := in[g.Exit][testVar]; got != 1 {
		t.Fatalf("loop-carried fact should reach exit, got state %d", got)
	}
}

func TestForwardReleaseInLoopBodyClearsExit(t *testing.T) {
	// Same loop, but the body releases what it acquires: nothing leaks.
	g := graph(
		[][]ast.Node{nil, nil, {sentinel("acq"), sentinel("rel")}, nil},
		map[int][]int{0: {1}, 1: {2, 3}, 2: {1}},
		3,
	)
	in := cfg.Forward(g, cfg.Analysis{Transfer: testTransfer, Join: cfg.MayJoin})
	if got := in[g.Exit][testVar]; got != 0 {
		t.Fatalf("balanced loop body should leave exit clean, got state %d", got)
	}
}

func TestForwardIgnoresUnreachableBlocks(t *testing.T) {
	// b2 feeds the join but nothing reaches b2: its (empty) facts must
	// not dilute the must-join, and it must not appear in the solution.
	// This models the dead fallthrough edge after a `return` inside a
	// branch.
	g := graph(
		[][]ast.Node{{sentinel("acq")}, nil, nil, nil},
		map[int][]int{0: {1}, 1: {3}, 2: {3}},
		3,
	)
	in := cfg.Forward(g, cfg.Analysis{Transfer: testTransfer, Join: cfg.MustJoin})
	if _, ok := in[g.Blocks[2]]; ok {
		t.Fatalf("unreachable block should have no solution entry")
	}
	if got := in[g.Exit][testVar]; got != 1 {
		t.Fatalf("dead edge must not kill the must-fact at exit, got state %d", got)
	}
}

func TestFactsCloneIsIndependent(t *testing.T) {
	f := cfg.Facts{testVar: 1}
	c := f.Clone()
	c[testVar] = 2
	if f[testVar] != 1 {
		t.Fatalf("Clone must not share storage")
	}
	if f.Equal(c) {
		t.Fatalf("Equal must see differing states")
	}
	delete(c, testVar)
	if f.Equal(c) {
		t.Fatalf("Equal must see differing sizes")
	}
	if !f.Equal(cfg.Facts{testVar: 1}) {
		t.Fatalf("Equal must accept identical sets")
	}
}

func TestJoinOperators(t *testing.T) {
	cases := []struct {
		a, b, may, must uint8
	}{
		{0, 0, 0, 0},
		{1, 0, 1, 0},
		{0, 2, 2, 0},
		{2, 1, 1, 1},
		{3, 3, 3, 3},
	}
	for _, c := range cases {
		if got := cfg.MayJoin(c.a, c.b); got != c.may {
			t.Errorf("MayJoin(%d,%d) = %d, want %d", c.a, c.b, got, c.may)
		}
		if got := cfg.MustJoin(c.a, c.b); got != c.must {
			t.Errorf("MustJoin(%d,%d) = %d, want %d", c.a, c.b, got, c.must)
		}
	}
}
