package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch for code that legitimately breaks a bmcastlint
// invariant is a line comment of the form
//
//	//bmcast:allow <analyzer> [free-form justification]
//
// A directive suppresses diagnostics from exactly one analyzer, and only
// on its own line (end-of-line form) or on the single line immediately
// below it (standalone form). Anything looser — a directive floating a few
// lines above the violation, or one naming a different analyzer — must not
// suppress, so that stale directives rot visibly instead of silently
// widening their blast radius.

// directivePrefix is the comment prefix that marks a bmcastlint directive.
// Like //go: directives, there is no space after the //.
const directivePrefix = "//bmcast:"

// Malformed records a directive comment that looks like one of ours but
// cannot be honoured: unknown verb, missing or unknown analyzer name.
// The driver reports these as findings so typos fail the build instead of
// silently not suppressing.
type Malformed struct {
	Pos    token.Pos
	Reason string
}

// Directive is one well-formed //bmcast:allow comment. Used is set when
// the directive actually suppresses a diagnostic, so the driver can
// report stale directives — a suppression that suppresses nothing is
// drift between the comment and the code it annotates.
type Directive struct {
	Pos      token.Pos
	Analyzer string
	Used     bool
}

// Allowlist holds the parsed suppressions for one file.
type Allowlist struct {
	// byLine maps analyzer name -> covered file line -> the directives
	// covering that line (normally one; overlapping coverage keeps both).
	byLine     map[string]map[int][]*Directive
	Directives []*Directive
	Malformed  []Malformed
}

// Allows reports whether diagnostics from the named analyzer are
// suppressed on the given (1-based) file line, marking the covering
// directives as used.
func (a Allowlist) Allows(analyzer string, line int) bool {
	ds := a.byLine[analyzer][line]
	for _, d := range ds {
		d.Used = true
	}
	return len(ds) > 0
}

// ParseAllowlist scans every comment of file for bmcast directives.
// known is the set of analyzer names a directive may legitimately name;
// directives naming anything else are recorded as Malformed.
func ParseAllowlist(fset *token.FileSet, file *ast.File, known map[string]bool) Allowlist {
	a := Allowlist{byLine: make(map[string]map[int][]*Directive)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			verb, args, _ := strings.Cut(rest, " ")
			if verb != "allow" {
				a.Malformed = append(a.Malformed, Malformed{
					Pos:    c.Pos(),
					Reason: "unknown bmcast directive verb " + quote(verb) + " (only //bmcast:allow <analyzer> exists)",
				})
				continue
			}
			name, _, _ := strings.Cut(strings.TrimSpace(args), " ")
			if name == "" {
				a.Malformed = append(a.Malformed, Malformed{
					Pos:    c.Pos(),
					Reason: "bmcast:allow directive names no analyzer",
				})
				continue
			}
			if !known[name] {
				a.Malformed = append(a.Malformed, Malformed{
					Pos:    c.Pos(),
					Reason: "bmcast:allow names unknown analyzer " + quote(name),
				})
				continue
			}
			if a.byLine[name] == nil {
				a.byLine[name] = make(map[int][]*Directive)
			}
			// The directive covers its own line (end-of-line form) and the
			// next line (standalone form). Nothing further: distance breeds
			// stale suppressions.
			d := &Directive{Pos: c.Pos(), Analyzer: name}
			a.Directives = append(a.Directives, d)
			line := fset.Position(c.Pos()).Line
			a.byLine[name][line] = append(a.byLine[name][line], d)
			a.byLine[name][line+1] = append(a.byLine[name][line+1], d)
		}
	}
	return a
}

// quote wraps a token in double quotes for an error message.
func quote(s string) string { return `"` + s + `"` }
