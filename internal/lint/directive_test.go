package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestDirectiveEndOfLineSuppressesOwnLine(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package x

func f() {
	_ = 1 //bmcast:allow walltime timing the harness
}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	a := ParseAllowlist(fset, f, AnalyzerNames())
	if len(a.Malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %+v", a.Malformed)
	}
	if !a.Allows("walltime", 4) {
		t.Error("end-of-line directive must suppress its own line")
	}
	if !a.Allows("walltime", 5) {
		t.Error("directive must also cover the following line (standalone form)")
	}
	if a.Allows("walltime", 3) {
		t.Error("directive must not reach the line above it")
	}
	if a.Allows("walltime", 6) {
		t.Error("directive must not reach two lines below")
	}
	if a.Allows("seededrand", 4) {
		t.Error("directive must suppress only the named analyzer")
	}
}

func TestDirectiveStandaloneSuppressesNextLineOnly(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package x

func f() {
	//bmcast:allow seededrand demo seed
	_ = 1
	_ = 2
}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	a := ParseAllowlist(fset, f, AnalyzerNames())
	if !a.Allows("seededrand", 5) {
		t.Error("standalone directive must suppress the next line")
	}
	if a.Allows("seededrand", 6) {
		t.Error("directive on the wrong line (two above) must not suppress")
	}
}

func TestDirectiveMalformed(t *testing.T) {
	cases := []struct {
		src    string
		reason string // substring of the expected malformed reason
	}{
		{"//bmcast:allow", "names no analyzer"},
		{"//bmcast:allow   ", "names no analyzer"},
		{"//bmcast:allow waltime typo in the name", "unknown analyzer"},
		{"//bmcast:allow notananalyzer", "unknown analyzer"},
		{"//bmcast:deny walltime", "unknown bmcast directive verb"},
		{"//bmcast:allowwalltime", "unknown bmcast directive verb"},
	}
	for _, c := range cases {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "x.go", "package x\n\n"+c.src+"\nfunc f() {}\n", parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		a := ParseAllowlist(fset, f, AnalyzerNames())
		if len(a.Malformed) != 1 {
			t.Errorf("%q: got %d malformed entries, want 1 (%+v)", c.src, len(a.Malformed), a.Malformed)
			continue
		}
		if !strings.Contains(a.Malformed[0].Reason, c.reason) {
			t.Errorf("%q: reason %q does not mention %q", c.src, a.Malformed[0].Reason, c.reason)
		}
		for name := range AnalyzerNames() {
			line := fset.Position(a.Malformed[0].Pos).Line
			if a.Allows(name, line) || a.Allows(name, line+1) {
				t.Errorf("%q: malformed directive must not suppress %s", c.src, name)
			}
		}
	}
}

func TestDirectiveIgnoresOrdinaryComments(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package x

// bmcast:allow walltime -- a prose mention with a space is not a directive
// and neither is //bmcast:allow inside a doc sentence.
func f() {}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	a := ParseAllowlist(fset, f, AnalyzerNames())
	if len(a.Malformed) != 0 {
		t.Errorf("prose comments misparsed as directives: %+v", a.Malformed)
	}
	for line := 1; line <= 6; line++ {
		if a.Allows("walltime", line) {
			t.Errorf("prose comment must not suppress anything (line %d)", line)
		}
	}
}
