package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
)

// This file is the shared engine behind the path-sensitive resource
// analyzers (spanleak, causerestore, framebalance). All three prove the
// same shape of invariant — a value acquired here must be settled on
// every path out of the function — and differ only in what acquires and
// what settles:
//
//	analyzer     acquires                      settles
//	spanleak     sp := r.Begin/BeginChild(..)  sp.End(), or sp escapes
//	causerestore prev := SwapCause(p, sp)      SwapCause(_, prev), or prev escapes
//	framebalance f, _ := pool.Get(); f.Retain  f.Release(), or f escapes
//
// "Escapes" is deliberately broad and identical everywhere: returning
// the value, storing it into anything that is not a plain local
// (field, map, slice, global), passing it as a call argument, sending
// it on a channel, or taking its address hands the obligation to
// someone this intra-function analysis cannot see, so the value is
// treated as settled. That is the zero-false-positive bar: every
// report means no path settles the value and no path hands it off.
//
// Paths ending in panic/os.Exit are exempt (the cfg package gives them
// no edge to the function exit), matching the runtime contract: a
// panicking deployment is already lost, and the trace leak checker in
// the fleet harness owns that case.

// occKind classifies one syntactic occurrence of a tracked variable.
type occKind int

const (
	// occNeutral reads the value without settling it: a receiver of a
	// non-consuming method, a field access, a nil comparison.
	occNeutral occKind = iota
	// occSettle settles the obligation: a consuming method call, or any
	// escape (return / store / call argument / send / address-of).
	occSettle
	// occOverwrite is the variable appearing as a plain assignment
	// target: the old value is lost, which leaks an open obligation.
	occOverwrite
)

// flowRules parameterizes checkFlowBody for one analyzer.
type flowRules struct {
	// acquires returns the obligations node n creates, in source order.
	acquires func(info *types.Info, n ast.Node) []acquisition
	// consumeMethods are method names on the tracked value that settle
	// it (End, Release). May be empty: then only escape settles.
	consumeMethods map[string]bool
	// leakFormat renders the exit-path diagnostic; it receives the
	// acquisition description and the variable name.
	leakFormat string
	// overwriteFormat renders the lost-before-settled diagnostic for a
	// plain reassignment; it receives the variable name.
	overwriteFormat string
}

// acquisition is one point where a tracked obligation is created.
type acquisition struct {
	v *types.Var
	// id is the identifier the obligation is bound to, for positions.
	pos token.Pos
	// reacquire marks obligations renewed through an existing value
	// (f.Retain()): they keep an earlier site as witness if one is
	// already open, instead of moving it.
	reacquire bool
}

// runFlow applies one flow analysis to every function in the package:
// declared functions and every function literal, each as its own graph.
func runFlow(pass *analysis.Pass, rules flowRules) {
	if !InModule(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFlowBody(pass, rules, fn.Body)
				}
			case *ast.FuncLit:
				checkFlowBody(pass, rules, fn.Body)
				// keep descending: nested literals are found below
			}
			return true
		})
	}
}

// checkFlowBody proves the rules over one function body.
func checkFlowBody(pass *analysis.Pass, rules flowRules, body *ast.BlockStmt) {
	info := pass.TypesInfo
	g := cfg.New(body)

	// Variables captured by a closure or address-taken anywhere in this
	// body are untrackable: a deferred closure may settle them later
	// regardless of where the acquisition sits, so tracking them risks
	// false positives. (The closure body is analyzed as its own
	// function; obligations it acquires itself are still proven.)
	untrackable := untrackableVars(info, body)

	// Deterministic site table: acquisitions in block/node order.
	var sites []acquisition
	siteOf := make(map[token.Pos]uint8)
	trackedVars := make(map[*types.Var]bool)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			for _, a := range rules.acquires(info, n) {
				if untrackable[a.v] {
					continue
				}
				if _, dup := siteOf[a.pos]; dup {
					continue
				}
				if len(sites) >= 255 {
					return // give up on absurdly large functions
				}
				siteOf[a.pos] = uint8(len(sites) + 1)
				sites = append(sites, a)
				trackedVars[a.v] = true
			}
		}
	}
	if len(sites) == 0 {
		return
	}

	transfer := func(report bool) func(n ast.Node, f cfg.Facts) {
		return func(n ast.Node, f cfg.Facts) {
			forEachTrackedUse(info, n, trackedVars, rules.consumeMethods,
				func(v *types.Var, id *ast.Ident, k occKind) {
					switch k {
					case occSettle:
						delete(f, v)
					case occOverwrite:
						if f[v] != 0 {
							if report {
								pass.Reportf(id.Pos(), rules.overwriteFormat, id.Name)
							}
							delete(f, v)
						}
					}
				})
			for _, a := range rules.acquires(info, n) {
				st, ok := siteOf[a.pos]
				if !ok {
					continue // untrackable or beyond the site cap
				}
				if a.reacquire && f[a.v] != 0 {
					continue // keep the earlier witness
				}
				f[a.v] = st
			}
		}
	}

	in := cfg.Forward(g, cfg.Analysis{Transfer: transfer(false), Join: cfg.MayJoin})

	// Replay the solution once, in block order, to report overwrites.
	rt := transfer(true)
	for _, b := range g.Blocks {
		f, reachable := in[b]
		if !reachable {
			continue
		}
		f = f.Clone()
		for _, n := range b.Nodes {
			rt(n, f)
		}
	}

	// Obligations still open at the function exit leak on some path.
	var leaked []int
	seen := make(map[uint8]bool)
	for _, st := range in[g.Exit] {
		if st != 0 && !seen[st] {
			seen[st] = true
			leaked = append(leaked, int(st)-1)
		}
	}
	sort.Ints(leaked)
	for _, i := range leaked {
		pass.Reportf(sites[i].pos, rules.leakFormat, sites[i].v.Name())
	}
}

// untrackableVars collects variables that a function literal captures
// or whose address is taken anywhere under body.
func untrackableVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	mark := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					out[v] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			mark(x.Body)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if id, ok := unparen(x.X).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						out[v] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// forEachTrackedUse walks one CFG node (which never contains nested
// statement bodies — the cfg builder decomposes those) and classifies
// every identifier occurrence resolving to a tracked variable. Function
// literals are not entered: captured variables are excluded from
// tracking up front.
func forEachTrackedUse(info *types.Info, root ast.Node, tracked map[*types.Var]bool,
	consumeMethods map[string]bool, visit func(*types.Var, *ast.Ident, occKind)) {

	// A RangeStmt node in a block is the cfg builder's marker for the
	// per-iteration key/value assignment only — the operand and body are
	// placed in other blocks. Visit just the assignment targets.
	if rs, ok := root.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && tracked[v] {
					visit(v, id, occOverwrite)
				}
			}
		}
		return
	}

	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !tracked[v] {
			return true
		}
		visit(v, id, classifyUse(stack, id, consumeMethods))
		return true
	})
	// The final Inspect(nil) calls popped the stack back; nothing to do.
}

// classifyUse decides how the innermost enclosing construct treats the
// value of id. stack is the ancestor chain, id last.
func classifyUse(stack []ast.Node, id *ast.Ident, consumeMethods map[string]bool) occKind {
	// Find the nearest non-paren ancestor.
	i := len(stack) - 2
	for i >= 0 {
		if _, isParen := stack[i].(*ast.ParenExpr); isParen {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return occNeutral
	}
	switch p := stack[i].(type) {
	case *ast.SelectorExpr:
		if unparen(p.X) != ast.Expr(id) {
			return occNeutral // id is the Sel, resolved elsewhere
		}
		// id.method(...) / id.field: consuming method settles; every
		// other receiver or field access is a plain read.
		if i > 0 {
			if call, ok := stack[i-1].(*ast.CallExpr); ok && unparen(call.Fun) == ast.Expr(p) {
				if consumeMethods[p.Sel.Name] {
					return occSettle
				}
			}
		}
		return occNeutral
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(id) {
				return occOverwrite
			}
		}
		// id on the right-hand side: aliased or stored somewhere. A
		// pure discard (`_ = id`) is a read, not a hand-off.
		if len(p.Lhs) == len(p.Rhs) {
			for k, rhs := range p.Rhs {
				if rhs == ast.Expr(id) {
					if lid, ok := p.Lhs[k].(*ast.Ident); ok && lid.Name == "_" {
						return occNeutral
					}
				}
			}
		}
		return occSettle
	case *ast.BinaryExpr:
		return occNeutral // comparisons (sp != nil) read, never settle
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return occSettle // address escapes
		}
		return occNeutral
	case *ast.IfStmt, *ast.SwitchStmt, *ast.CaseClause, *ast.IncDecStmt, *ast.ExprStmt:
		return occNeutral
	default:
		// Return, call argument, composite literal, channel send, map
		// index, range operand, conversion, ... — the value flows
		// somewhere this analysis cannot follow; treat as settled.
		return occSettle
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// --- shared type-shape matchers ------------------------------------------

// namedResult reports whether t (possibly behind a pointer) is a named
// type with the given name.
func namedResult(t types.Type, name string) bool {
	tn := namedOf(t)
	return tn != nil && tn.Name() == name
}

// methodCall returns the selector of call when it invokes a method (a
// *types.Func with a receiver) named name, or nil.
func methodCall(info *types.Info, call *ast.CallExpr, name string) *ast.SelectorExpr {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return nil
	}
	return sel
}

// lhsVar resolves a plain, non-blank identifier assignment target to
// its variable (definitions and reassignments both).
func lhsVar(info *types.Info, e ast.Expr) (*types.Var, *ast.Ident) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, id
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v, id
	}
	return nil, nil
}
