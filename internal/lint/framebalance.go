package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// FrameBalanceAnalyzer proves that ref-counted frames from an
// aoe.FramePool are balanced on every path: each `f, _ := pool.Get()`
// and each `f.Retain()` must be matched by `f.Release()` — or by the
// frame escaping to another owner (sent to a NIC, queued, returned) —
// before the function exits. An unbalanced path strands the frame
// outside the pool's freelist, which silently degrades the zero-alloc
// serving path back to per-frame heap allocation.
var FrameBalanceAnalyzer = &analysis.Analyzer{
	Name: "framebalance",
	Doc: "report FramePool frames whose retain (Get/Retain) is not balanced by Release on every path out of the function; " +
		"handing the frame off (send, queue, return) also settles it",
	Run: runFrameBalance,
}

var frameBalanceRules = flowRules{
	acquires:       frameAcquires,
	consumeMethods: map[string]bool{"Release": true},
	leakFormat: "pooled frame %s is not Released (or handed off) on every path out of the function; " +
		"the reference strands the buffer outside the pool — balance it or annotate with //bmcast:allow framebalance",
	overwriteFormat: "%s is reassigned while it still holds an unreleased pooled frame",
}

func runFrameBalance(pass *analysis.Pass) (any, error) {
	runFlow(pass, frameBalanceRules)
	return nil, nil
}

// frameAcquires recognizes two acquisition shapes:
//
//	f, msg := pool.Get()   — pool has named type FramePool; fresh reference
//	f.Retain()             — f has named type Frame; renews the obligation
func frameAcquires(info *types.Info, n ast.Node) []acquisition {
	if _, ok := n.(*ast.RangeStmt); ok {
		return nil // cfg marker node: operand/body live in other blocks
	}
	var out []acquisition
	if s, ok := n.(*ast.AssignStmt); ok && len(s.Rhs) == 1 && len(s.Lhs) >= 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if sel := methodCall(info, call, "Get"); sel != nil &&
				namedResult(info.TypeOf(sel.X), "FramePool") {
				if v, id := lhsVar(info, s.Lhs[0]); v != nil {
					out = append(out, acquisition{v: v, pos: id.Pos()})
				}
			}
		}
	}
	// Retain may appear inside any expression position of the node.
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel := methodCall(info, call, "Retain")
		if sel == nil || len(call.Args) != 0 {
			return true
		}
		id, ok := unparen(sel.X).(*ast.Ident)
		if !ok || !namedResult(info.TypeOf(id), "Frame") {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			out = append(out, acquisition{v: v, pos: id.Pos(), reacquire: true})
		}
		return true
	})
	return out
}
