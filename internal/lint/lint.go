// Package lint implements bmcastlint: static analyzers that machine-check
// the simulator's determinism and safety invariants on every build.
//
// The invariants (DESIGN.md §7):
//
//   - walltime: simulation code runs on sim-time only. Wall-clock reads
//     (time.Now, time.Since, time.Until) make runs unrepeatable.
//   - seededrand: all randomness flows from the experiment seed through an
//     injected *rand.Rand. The global math/rand functions and wall-clock
//     seeded sources are forbidden.
//   - simdrift: sim code must not race the Go scheduler: no go
//     statements, no real-time sleeps or timers, no multi-case selects.
//   - mapiter: map iteration order must not escape into ordered output
//     (returned slices, io.Writer streams) without a sort in between.
//   - pooledrelease: pooled records (sim event free-list, AoE request
//     pool, disk buffers) must not be touched after release.
//   - spanleak: a *trace.Span from Begin/BeginChild reaches End (or
//     escapes to a new owner) on every path out of the function.
//   - causerestore: a captured trace.SwapCause result is restored on
//     every path out of the function.
//   - framebalance: FramePool retains and releases balance on every path.
//
// The last four are path-sensitive: they run a forward dataflow analysis
// over the intra-function CFG built by repro/internal/lint/cfg, so early
// returns and branchy error paths are proven, not sampled (DESIGN.md §11).
//
// Violations are suppressed only by an explicit, line-anchored
// `//bmcast:allow <analyzer>` directive; see directive.go. A directive
// that suppresses nothing is itself reported.
package lint

import (
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzers is the bmcastlint suite in reporting order.
var Analyzers = []*analysis.Analyzer{
	WalltimeAnalyzer,
	SeededRandAnalyzer,
	SimDriftAnalyzer,
	MapIterAnalyzer,
	PooledReleaseAnalyzer,
	SpanLeakAnalyzer,
	CauseRestoreAnalyzer,
	FrameBalanceAnalyzer,
}

// AnalyzerNames returns the set of names a //bmcast:allow directive may
// reference.
func AnalyzerNames() map[string]bool {
	names := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		names[a.Name] = true
	}
	return names
}

// modulePrefix is the import-path prefix of this module's own packages.
// Analyzers never fire outside it (go vet also hands the vettool every
// dependency package for fact extraction; those must stay silent).
const modulePrefix = "repro"

// simExempt lists module subtrees that are tooling, not simulation: the
// lint suite itself and the command-line drivers. Wall-clock time and
// ad-hoc randomness are legal there (drivers time real executions); the
// determinism analyzers skip them. mapiter and pooledrelease still apply.
var simExempt = []string{
	"repro/internal/lint",
	"repro/cmd",
	"repro/examples",
}

// normalizePkgPath strips the " [repro/foo.test]" suffix go vet appends to
// test variants of a package, so classification sees the plain path.
func normalizePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

func hasPathPrefix(path, prefix string) bool {
	return path == prefix || (len(path) > len(prefix) &&
		path[:len(prefix)] == prefix && path[len(prefix)] == '/')
}

// InModule reports whether path is one of this module's own packages
// (including test variants). All analyzers are scoped to it.
func InModule(path string) bool {
	return hasPathPrefix(normalizePkgPath(path), modulePrefix)
}

// IsSimPackage reports whether the package at path is simulation code,
// i.e. subject to the walltime and seededrand determinism invariants.
// Everything in the module is, except the simExempt tooling subtrees —
// new packages are guilty until proven tooling.
func IsSimPackage(path string) bool {
	path = normalizePkgPath(path)
	if !hasPathPrefix(path, modulePrefix) {
		return false
	}
	for _, ex := range simExempt {
		if hasPathPrefix(path, ex) {
			return false
		}
	}
	return true
}
