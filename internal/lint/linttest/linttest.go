// Package linttest runs bmcastlint analyzers over testdata fixtures the
// way golang.org/x/tools/go/analysis/analysistest does: fixture sources
// carry `// want "regexp"` comments naming the diagnostics they expect,
// and the harness fails the test on any missing or unexpected finding.
// (The real analysistest is unavailable in this hermetic build; this
// covers the subset the suite needs, including multiple wants per line.)
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run type-checks the fixture package in dir under the given import path
// (the path decides whether lint.IsSimPackage applies) and checks the
// analyzers' findings against the fixture's want comments.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	files, wants := parseFixture(t, fset, dir)

	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}

	findings, err := lint.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected finding [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unhit want matching f and reports success.
func claim(wants []*want, f lint.Finding) bool {
	base := filepath.Base(f.Pos.Filename)
	for _, w := range wants {
		if !w.hit && w.file == base && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// parseFixture parses every .go file in dir and extracts want comments.
func parseFixture(t *testing.T, fset *token.FileSet, dir string) ([]*ast.File, []*want) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, arg[1], err)
					}
					wants = append(wants, &want{file: e.Name(), line: line, re: re})
				}
			}
		}
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
	})
	return files, wants
}
