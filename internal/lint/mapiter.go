package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// MapIterAnalyzer flags `range` over a map whose iteration order escapes
// into ordered output. Go randomizes map iteration order on purpose; any
// code that lets that order reach a returned slice or an io.Writer makes
// output differ run to run even under a fixed seed — the bug class the
// registry's Snapshot and the chrome-trace exporter each had to sort their
// way out of.
//
// A range over a map is reported when its body either
//
//   - writes through an ordered sink (fmt.Fprint*, io.WriteString, or a
//     Write/WriteString/WriteByte/WriteRune method, e.g. on bytes.Buffer
//     or strings.Builder), or
//   - appends to a slice that the enclosing function returns, with no
//     sort call (package sort or slices) between the loop and the return.
//
// The classic collect-then-sort idiom —
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// — is therefore not flagged, while returning the unsorted collection is.
var MapIterAnalyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flag map iteration whose nondeterministic order escapes into " +
		"returned slices or writer output without an intervening sort",
	Run: runMapIter,
}

func runMapIter(pass *analysis.Pass) (any, error) {
	if !InModule(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMapIter(pass, fd)
		}
	}
	return nil, nil
}

func checkFuncMapIter(pass *analysis.Pass, fd *ast.FuncDecl) {
	returned := returnedObjects(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink := orderedSinkInBody(pass, rs.Body, returned); sink != "" {
			if sink == "return" && sortedAfter(pass, fd, rs) {
				return true
			}
			pass.Reportf(rs.For,
				"map iteration order escapes into %s; sort before emitting (or iterate a sorted key slice)",
				describeSink(sink))
		}
		return true
	})
}

func describeSink(sink string) string {
	if sink == "return" {
		return "a returned slice"
	}
	return sink
}

// returnedObjects collects the variables whose value can leave fd through
// a return statement (plain identifier results and named result
// parameters).
func returnedObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// orderedSinkInBody reports how loop-order-dependent data leaves the range
// body: a writer-call description, "return" for an append chained to a
// returned slice, or "" for no escape.
func orderedSinkInBody(pass *analysis.Pass, body *ast.BlockStmt, returned map[types.Object]bool) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if s := writerCall(pass, call); s != "" {
			sink = s
			return false
		}
		// x = append(x, ...) where x is (eventually) returned.
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				if target := appendTarget(pass, call); target != nil && returned[target] {
					sink = "return"
					return false
				}
			}
		}
		return true
	})
	return sink
}

// appendTarget resolves the variable an `append` call's result is assigned
// to, when the enclosing statement has the canonical `x = append(x, ...)`
// shape (detected by matching the first argument).
func appendTarget(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		return pass.TypesInfo.Uses[id]
	}
	return nil
}

// writerCall describes call if it emits bytes in call order: fmt.Fprint*,
// io.WriteString, or a Write* method on any receiver. Empty when not.
func writerCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	name := obj.Name()
	if recv := obj.Type().(*types.Signature).Recv(); recv == nil {
		switch {
		case obj.Pkg().Path() == "fmt" && (name == "Fprint" || name == "Fprintf" || name == "Fprintln"):
			return "fmt." + name
		case obj.Pkg().Path() == "io" && name == "WriteString":
			return "io.WriteString"
		}
		return ""
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return "a " + name + " call"
	}
	return ""
}

// sortedAfter reports whether a sort (package sort or slices) happens
// after rs within fd — the collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= rs.End() {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p == "sort" || p == "slices" {
			found = true
		}
		return true
	})
	return found
}
