package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
)

// PooledReleaseAnalyzer flags use of a pooled value after it has been
// released back to its pool within the same function. The simulator leans
// on free-lists for its zero-alloc hot paths — the sim kernel's event
// records, the AoE initiator's request pool, recycled disk buffers — and
// a record touched after release is the worst kind of bug: it corrupts
// whichever *later* event reuses the record, far from the culprit, and
// only under workloads that recycle fast enough.
//
// A value is considered released by any of:
//
//   - a call releasing its single pointer argument: x.release(v),
//     pool.Put(v), x.free(v). The lowercase names are the simulator's
//     internal free-list convention and always count; the exported
//     spellings (Release/Put/Free) are also common API verbs for leases
//     and semaphores, so they count only with pool evidence — a
//     pool-named receiver, or an argument type this package demonstrably
//     pushes onto a free list
//   - a free-list push: append(x.free, v), append(x.reqPool, v) — any
//     append whose destination name contains "free" or "pool"
//   - a Release/Free method on the value itself, v.Release() — but only
//     when the package demonstrably pools v's type (it appears in one of
//     the two patterns above somewhere in the package). This keeps
//     semaphore-style Release methods (sim.Resource, hw/mem.Memory) out
//     of scope: releasing capacity is not releasing memory.
//
// The analysis runs forward over the intra-function CFG with a
// must-join: a variable counts as released at a point only when *every*
// path reaching that point has released it. Releases on one arm of a
// branch therefore do not poison code after the join — early-return
// error paths (`if err != nil { release(v); return }`) stay clean — but
// uses later in the same path, in later branches, in defers registered
// after the release, or on a loop's next iteration are reported, until
// the variable is reassigned (revived). Releases inside a defer, go
// statement, or function literal are not recorded: they execute at
// another point in time. This is deliberately a same-function analysis —
// cheap, zero false positives on the idioms the simulator uses — not a
// whole-program escape analysis.
var PooledReleaseAnalyzer = &analysis.Analyzer{
	Name: "pooledrelease",
	Doc: "flag reads/writes through a pooled value after its release/free-list " +
		"put within the same function",
	Run: runPooledRelease,
}

// releaseMethodsOnValue are method names that release their receiver
// (gated on the receiver's type being pooled in this package).
var releaseMethodsOnValue = map[string]bool{"Release": true, "Free": true}

// releaseFuncs are function/method names that release their single
// pointer argument.
var releaseFuncs = map[string]bool{"release": true, "free": true, "put": true, "Put": true, "Release": true, "Free": true}

type prChecker struct {
	pass *analysis.Pass
	// pushed is the set of named types this package appends to a
	// free-list-named slice — the strongest pooling evidence, used to
	// qualify exported-name release calls.
	pushed map[*types.TypeName]bool
	// pooled additionally includes types released through qualifying
	// release calls; only these may be released through a receiver method.
	pooled map[*types.TypeName]bool
}

func runPooledRelease(pass *analysis.Pass) (any, error) {
	if !InModule(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &prChecker{
		pass:   pass,
		pushed: map[*types.TypeName]bool{},
		pooled: map[*types.TypeName]bool{},
	}
	// Two evidence passes: free-list pushes first, because they decide
	// whether an exported-name release call qualifies at all.
	for _, f := range pass.Files {
		c.collectPushedTypes(f)
	}
	for _, f := range pass.Files {
		c.collectPooledTypes(f)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.checkBody(fn.Body)
				}
			case *ast.FuncLit:
				c.checkBody(fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// collectPushedTypes records the named types that flow into a free-list
// push anywhere in f.
func (c *prChecker) collectPushedTypes(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, arg := range c.freelistPushArgs(call) {
				if tn := namedOf(c.pass.TypesInfo.TypeOf(arg)); tn != nil {
					c.pushed[tn] = true
					c.pooled[tn] = true
				}
			}
		}
		return true
	})
}

// collectPooledTypes additionally records types that flow into a
// qualifying release call anywhere in f.
func (c *prChecker) collectPooledTypes(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if arg := c.releaseCallArg(call); arg != nil {
				if tn := namedOf(c.pass.TypesInfo.TypeOf(arg)); tn != nil {
					c.pooled[tn] = true
				}
			}
		}
		return true
	})
}

// releaseOp is one release of a local variable at a call position.
type releaseOp struct {
	v  *types.Var
	at token.Pos
}

// checkBody runs the use-after-release dataflow over one function body.
func (c *prChecker) checkBody(body *ast.BlockStmt) {
	g := cfg.New(body)

	// Deterministic table of release sites, in block/node order. The
	// dataflow state for a released variable is its site index + 1.
	var sites []token.Pos
	siteOf := make(map[token.Pos]uint8)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			for _, op := range c.releasesIn(n) {
				if _, dup := siteOf[op.at]; dup {
					continue
				}
				if len(sites) >= 255 {
					return
				}
				siteOf[op.at] = uint8(len(sites) + 1)
				sites = append(sites, op.at)
			}
		}
	}
	if len(sites) == 0 {
		return
	}

	transfer := func(report bool) func(n ast.Node, f cfg.Facts) {
		return func(n ast.Node, f cfg.Facts) {
			// Range headers re-bind the key/value variables each
			// iteration: a fresh record, never a released one.
			if rs, ok := n.(*ast.RangeStmt); ok {
				for _, e := range []ast.Expr{rs.Key, rs.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
							delete(f, v)
						}
					}
				}
				return
			}
			// 1. Uses of already-released values are violations. A plain
			// identifier being overwritten on an assignment's left-hand
			// side is not a use — it is the revival below.
			if report && len(f) > 0 {
				c.reportUses(n, f, sites, assignTargets(n))
			}
			// 2. Reassignment revives a variable: `e = &event{}` or
			// `pr = pool.Get()` makes it a fresh record.
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
							delete(f, v)
						}
					}
				}
			}
			// 3. Record the releases this node performs — except defers
			// and goroutines, which run at another point in time.
			switch n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				return
			}
			for _, op := range c.releasesIn(n) {
				f[op.v] = siteOf[op.at]
			}
		}
	}

	in := cfg.Forward(g, cfg.Analysis{Transfer: transfer(false), Join: cfg.MustJoin})

	rt := transfer(true)
	for _, b := range g.Blocks {
		f, reachable := in[b]
		if !reachable {
			continue
		}
		f = f.Clone()
		for _, n := range b.Nodes {
			rt(n, f)
		}
	}
}

// releasesIn scans one CFG node for release patterns. Function literals
// are opaque (analyzed as their own bodies) and a RangeStmt node is only
// the key/value re-binding marker.
func (c *prChecker) releasesIn(n ast.Node) []releaseOp {
	if _, ok := n.(*ast.RangeStmt); ok {
		return nil
	}
	var out []releaseOp
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if args := c.freelistPushArgs(call); args != nil {
			for _, arg := range args {
				if v := c.localVar(arg); v != nil {
					out = append(out, releaseOp{v: v, at: call.Pos()})
				}
			}
			return true
		}
		if arg := c.releaseCallArg(call); arg != nil {
			if v := c.localVar(arg); v != nil {
				out = append(out, releaseOp{v: v, at: call.Pos()})
			}
			return true
		}
		// v.Release() / v.Free(): receiver released, if its type is
		// actually pooled somewhere in this package.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			releaseMethodsOnValue[sel.Sel.Name] && len(call.Args) == 0 {
			if tn := namedOf(c.pass.TypesInfo.TypeOf(sel.X)); tn != nil && c.pooled[tn] {
				if v := c.localVar(sel.X); v != nil {
					out = append(out, releaseOp{v: v, at: call.Pos()})
				}
			}
		}
		return true
	})
	return out
}

// freelistPushArgs returns the values call pushes onto a free list
// (append(x.free, v...) with a pool-named destination), or nil.
func (c *prChecker) freelistPushArgs(call *ast.CallExpr) []ast.Expr {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return nil
	}
	if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if !isPoolName(exprName(call.Args[0])) {
		return nil
	}
	return call.Args[1:]
}

// releaseCallArg returns the single pointer argument released by an
// x.release(v)-shaped call, or nil. Exported release verbs (Release,
// Put, Free) are also ordinary API names — returning a lease, freeing a
// semaphore slot — so they qualify only with pool evidence: a pool-named
// receiver or an argument type this package pushes onto a free list.
func (c *prChecker) releaseCallArg(call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !releaseFuncs[sel.Sel.Name] || len(call.Args) != 1 {
		return nil
	}
	t := c.pass.TypesInfo.TypeOf(call.Args[0])
	if t == nil {
		return nil
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return nil
	}
	if ast.IsExported(sel.Sel.Name) && !isPoolName(exprName(sel.X)) {
		if tn := namedOf(t); tn == nil || !c.pushed[tn] {
			return nil
		}
	}
	return call.Args[0]
}

// localVar resolves expr to a plain local identifier's variable, or nil.
// Field selectors (in.pending[id]) are beyond this tracking.
func (c *prChecker) localVar(expr ast.Expr) *types.Var {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

// namedOf unwraps pointers to the defining TypeName, or nil for
// unnamed/builtin types.
func namedOf(t types.Type) *types.TypeName {
	for t != nil {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj()
		default:
			return nil
		}
	}
	return nil
}

// assignTargets returns the exact identifier nodes that n overwrites
// (plain-ident LHS of an assignment).
func assignTargets(n ast.Node) map[*ast.Ident]bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	out := make(map[*ast.Ident]bool, len(as.Lhs))
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			out[id] = true
		}
	}
	return out
}

// reportUses flags every identifier under node that resolves to a
// released variable, except the exempt overwrite targets. Unlike the
// release scan this *does* descend into defers and function literals: a
// closure or deferred call reading a record released earlier on this
// path still touches recycled memory when it runs.
func (c *prChecker) reportUses(node ast.Node, released cfg.Facts, sites []token.Pos, exempt map[*ast.Ident]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || exempt[id] {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if st := released[v]; st != 0 {
			c.pass.Reportf(id.Pos(),
				"%s used after being released to its pool at %s; the record may already belong to another owner",
				id.Name, c.pass.Fset.Position(sites[st-1]))
		}
		return true
	})
}

// exprName renders the trailing name of an identifier or selector chain
// ("free" for k.free), for pool-name matching.
func exprName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// isPoolName reports whether a destination name marks a free-list.
func isPoolName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "free") || strings.Contains(l, "pool")
}
