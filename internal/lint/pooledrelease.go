package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// PooledReleaseAnalyzer flags use of a pooled value after it has been
// released back to its pool within the same function. The simulator leans
// on free-lists for its zero-alloc hot paths — the sim kernel's event
// records, the AoE initiator's request pool, recycled disk buffers — and
// a record touched after release is the worst kind of bug: it corrupts
// whichever *later* event reuses the record, far from the culprit, and
// only under workloads that recycle fast enough.
//
// A value is considered released by any of:
//
//   - a call releasing its single pointer argument: x.release(v),
//     pool.Put(v), x.free(v)
//   - a free-list push: append(x.free, v), append(x.reqPool, v) — any
//     append whose destination name contains "free" or "pool"
//   - a Release/Free method on the value itself, v.Release() — but only
//     when the package demonstrably pools v's type (it appears in one of
//     the two patterns above somewhere in the package). This keeps
//     semaphore-style Release methods (sim.Resource, hw/mem.Memory) out
//     of scope: releasing capacity is not releasing memory.
//
// After the release statement, any read or write through the released
// variable in the same straight-line block (or in blocks nested under
// later statements) is reported, until the variable is reassigned.
// Releases inside a conditional branch do not poison code after the
// branch: early-return error paths (`if err != nil { release(v); return }`)
// stay clean. This is deliberately a same-function, straight-line
// analysis — cheap, zero false positives on the idioms the simulator
// uses — not a whole-program escape analysis.
var PooledReleaseAnalyzer = &analysis.Analyzer{
	Name: "pooledrelease",
	Doc: "flag reads/writes through a pooled value after its release/free-list " +
		"put within the same function",
	Run: runPooledRelease,
}

// releaseMethodsOnValue are method names that release their receiver
// (gated on the receiver's type being pooled in this package).
var releaseMethodsOnValue = map[string]bool{"Release": true, "Free": true}

// releaseFuncs are function/method names that release their single
// pointer argument.
var releaseFuncs = map[string]bool{"release": true, "free": true, "put": true, "Put": true, "Release": true, "Free": true}

type prChecker struct {
	pass *analysis.Pass
	// pooled is the set of named types this package puts on a free list;
	// only these may be released through a receiver method.
	pooled map[*types.TypeName]bool
}

func runPooledRelease(pass *analysis.Pass) (any, error) {
	if !InModule(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &prChecker{pass: pass, pooled: map[*types.TypeName]bool{}}
	for _, f := range pass.Files {
		c.collectPooledTypes(f)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkBlock(fd.Body.List, map[*types.Var]token.Pos{})
		}
	}
	return nil, nil
}

// collectPooledTypes records the named types that flow into a free-list
// push or a release call anywhere in f.
func (c *prChecker) collectPooledTypes(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if args := c.freelistPushArgs(call); args != nil {
			for _, arg := range args {
				if tn := namedOf(c.pass.TypesInfo.TypeOf(arg)); tn != nil {
					c.pooled[tn] = true
				}
			}
		}
		if arg := c.releaseCallArg(call); arg != nil {
			if tn := namedOf(c.pass.TypesInfo.TypeOf(arg)); tn != nil {
				c.pooled[tn] = true
			}
		}
		return true
	})
}

// freelistPushArgs returns the values call pushes onto a free list
// (append(x.free, v...) with a pool-named destination), or nil.
func (c *prChecker) freelistPushArgs(call *ast.CallExpr) []ast.Expr {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return nil
	}
	if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if !isPoolName(exprName(call.Args[0])) {
		return nil
	}
	return call.Args[1:]
}

// releaseCallArg returns the single pointer argument released by an
// x.release(v)-shaped call, or nil.
func (c *prChecker) releaseCallArg(call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !releaseFuncs[sel.Sel.Name] || len(call.Args) != 1 {
		return nil
	}
	t := c.pass.TypesInfo.TypeOf(call.Args[0])
	if t == nil {
		return nil
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return nil
	}
	return call.Args[0]
}

// namedOf unwraps pointers to the defining TypeName, or nil for
// unnamed/builtin types.
func namedOf(t types.Type) *types.TypeName {
	for t != nil {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj()
		default:
			return nil
		}
	}
	return nil
}

// checkBlock walks stmts in order, tracking which pooled variables have
// been released so far. released maps the variable to the position of its
// release. The map is mutated for statements at this level; nested
// conditional bodies get a copy so their releases stay local to the
// branch.
func (c *prChecker) checkBlock(stmts []ast.Stmt, released map[*types.Var]token.Pos) {
	for _, stmt := range stmts {
		// 1. Uses of already-released values are violations. Compound
		// statements contribute only their header expressions here — their
		// bodies are visited exactly once by the recursion below. A plain
		// identifier being overwritten on an assignment's left-hand side
		// is not a use — it is the revival below — so those exact nodes
		// are exempt.
		if len(released) > 0 {
			for _, part := range shallowParts(stmt) {
				c.reportUses(part, released, assignTargets(stmt))
			}
		}

		// 2. Reassignment revives a variable: `e = &event{}` or
		// `pr = pool.Get()` makes it a fresh record.
		if as, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
						delete(released, v)
					}
				}
			}
		}

		// 3. Record new releases performed by this statement — but only
		// when the statement executes unconditionally at this level
		// (defers and goroutines run elsewhere in time; branches are
		// handled below with local copies).
		switch s := stmt.(type) {
		case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt:
			c.markReleases(s, released)
		case *ast.BlockStmt:
			c.checkBlock(s.List, released) // plain block: same certainty
		case *ast.IfStmt:
			c.checkBranchBody(s.Body, released)
			if s.Else != nil {
				if eb, ok := s.Else.(*ast.BlockStmt); ok {
					c.checkBranchBody(eb, released)
				} else {
					c.checkBlock([]ast.Stmt{s.Else}, cloneReleased(released))
				}
			}
		case *ast.ForStmt:
			c.checkBranchBody(s.Body, released)
		case *ast.RangeStmt:
			c.checkBranchBody(s.Body, released)
		case *ast.SwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					c.checkBlock(cc.Body, cloneReleased(released))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					c.checkBlock(cc.Body, cloneReleased(released))
				}
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					c.checkBlock(cc.Body, cloneReleased(released))
				}
			}
		}
	}
}

// checkBranchBody analyzes a conditionally-executed body: outer releases
// are visible inside (using a released value in a later branch is still a
// bug), but releases made inside stay inside.
func (c *prChecker) checkBranchBody(body *ast.BlockStmt, released map[*types.Var]token.Pos) {
	c.checkBlock(body.List, cloneReleased(released))
}

func cloneReleased(m map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// shallowParts returns the pieces of stmt that checkBlock's recursion
// does not visit on its own: the whole statement for simple statements,
// and only the header expressions (init, condition, ranged operand, case
// values, comm statements) for compound ones, whose bodies are recursed.
func shallowParts(stmt ast.Stmt) []ast.Node {
	// Optional fields (Init, Cond, ...) are nil interfaces when absent;
	// converting them to ast.Node keeps them nil, so one check suffices.
	add := func(parts []ast.Node, ns ...ast.Node) []ast.Node {
		for _, n := range ns {
			if n != nil {
				parts = append(parts, n)
			}
		}
		return parts
	}
	switch s := stmt.(type) {
	case *ast.IfStmt:
		return add(nil, s.Init, s.Cond)
	case *ast.ForStmt:
		return add(nil, s.Init, s.Cond, s.Post)
	case *ast.RangeStmt:
		return add(nil, s.X)
	case *ast.SwitchStmt:
		parts := add(nil, s.Init, s.Tag)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					parts = add(parts, e)
				}
			}
		}
		return parts
	case *ast.TypeSwitchStmt:
		return add(nil, s.Init, s.Assign)
	case *ast.SelectStmt:
		var parts []ast.Node
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				parts = add(parts, cc.Comm)
			}
		}
		return parts
	case *ast.BlockStmt:
		return nil // fully covered by recursion
	default:
		return []ast.Node{stmt}
	}
}

// assignTargets returns the exact identifier nodes that stmt overwrites
// (plain-ident LHS of an assignment).
func assignTargets(stmt ast.Stmt) map[*ast.Ident]bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	out := make(map[*ast.Ident]bool, len(as.Lhs))
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			out[id] = true
		}
	}
	return out
}

// reportUses flags every identifier under node that resolves to a
// released variable, except the exempt overwrite targets.
func (c *prChecker) reportUses(node ast.Node, released map[*types.Var]token.Pos, exempt map[*ast.Ident]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || exempt[id] {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if relPos, wasReleased := released[v]; wasReleased {
			c.pass.Reportf(id.Pos(),
				"%s used after being released to its pool at %s; the record may already belong to another owner",
				id.Name, c.pass.Fset.Position(relPos))
		}
		return true
	})
}

// markReleases scans one unconditionally-executed statement for release
// patterns and records the released variables.
func (c *prChecker) markReleases(stmt ast.Stmt, released map[*types.Var]token.Pos) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if args := c.freelistPushArgs(call); args != nil {
			for _, arg := range args {
				c.markVar(arg, call.Pos(), released)
			}
			return true
		}
		if arg := c.releaseCallArg(call); arg != nil {
			c.markVar(arg, call.Pos(), released)
			return true
		}
		// v.Release() / v.Free(): receiver released, if its type is
		// actually pooled somewhere in this package.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			releaseMethodsOnValue[sel.Sel.Name] && len(call.Args) == 0 {
			if tn := namedOf(c.pass.TypesInfo.TypeOf(sel.X)); tn != nil && c.pooled[tn] {
				c.markVar(sel.X, call.Pos(), released)
			}
		}
		return true
	})
}

// markVar records expr as released when it is a plain local identifier.
// Field selectors (in.pending[id]) are beyond straight-line tracking.
func (c *prChecker) markVar(expr ast.Expr, at token.Pos, released map[*types.Var]token.Pos) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && !v.IsField() {
		released[v] = at
	}
}

// exprName renders the trailing name of an identifier or selector chain
// ("free" for k.free), for pool-name matching.
func exprName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// isPoolName reports whether a destination name marks a free-list.
func isPoolName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "free") || strings.Contains(l, "pool")
}
