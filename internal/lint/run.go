package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// DirectiveCheckName is the pseudo-analyzer name under which malformed
// //bmcast: directives are reported. It is not suppressible: a directive
// broken enough to be reported is broken enough to fix.
const DirectiveCheckName = "bmcastdirective"

// Finding is one diagnostic after directive filtering, ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Run executes every analyzer in analyzers over one type-checked package
// and returns the findings that survive //bmcast:allow filtering, in
// source order. Malformed directives are themselves findings (under
// DirectiveCheckName) for packages inside this module, and so is a
// directive that suppressed nothing for an analyzer that actually ran —
// stale suppressions rot visibly. Directives naming analyzers outside
// this run are left alone (a partial run proves nothing about them).
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	analyzers []*analysis.Analyzer) ([]Finding, error) {

	known := AnalyzerNames()
	allow := make(map[string]Allowlist, len(files)) // by filename
	var findings []Finding
	if InModule(pkg.Path()) {
		for _, f := range files {
			a := ParseAllowlist(fset, f, known)
			allow[fset.Position(f.Pos()).Filename] = a
			for _, m := range a.Malformed {
				findings = append(findings, Finding{
					Analyzer: DirectiveCheckName,
					Pos:      fset.Position(m.Pos),
					Message:  m.Reason,
				})
			}
		}
	}

	for _, az := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  az,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := az.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if allow[pos.Filename].Allows(name, pos.Line) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if _, err := az.Run(pass); err != nil {
			return nil, err
		}
	}

	ran := make(map[string]bool, len(analyzers))
	for _, az := range analyzers {
		ran[az.Name] = true
	}
	for _, f := range files {
		a := allow[fset.Position(f.Pos()).Filename]
		for _, d := range a.Directives {
			if !d.Used && ran[d.Analyzer] {
				findings = append(findings, Finding{
					Analyzer: DirectiveCheckName,
					Pos:      fset.Position(d.Pos),
					Message:  "//bmcast:allow " + d.Analyzer + " suppresses nothing; remove the stale directive",
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}
