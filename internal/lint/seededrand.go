package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// SeededRandAnalyzer forbids nondeterministic randomness in simulation
// packages. Two shapes are flagged:
//
//  1. The package-level convenience functions of math/rand and
//     math/rand/v2 (rand.Intn, rand.Float64, rand.Shuffle, ...). They draw
//     from a process-global source that is shared across cells, seeded
//     behind the simulator's back (auto-seeded since Go 1.20), and ordered
//     by goroutine interleaving — three separate ways to lose determinism.
//     Simulation code takes an injected *rand.Rand derived from the
//     experiment seed (sim.Kernel.Rand, BootProfile.Seed) instead.
//
//  2. Source construction whose seed derives from the wall clock:
//     rand.New(rand.NewSource(time.Now().UnixNano())) and friends.
//     rand.NewSource itself is legal — it is exactly how the kernel turns
//     the experiment seed into a stream — but feeding it the clock
//     reintroduces the nondeterminism the seed plumbing exists to remove.
var SeededRandAnalyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions and wall-clock-seeded sources in " +
		"simulation packages; randomness must flow from the experiment seed",
	Run: runSeededRand,
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

func runSeededRand(pass *analysis.Pass) (any, error) {
	if !IsSimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || obj.Pkg() == nil || !isRandPkg(obj.Pkg().Path()) {
				return true
			}
			if obj.Type().(*types.Signature).Recv() != nil {
				return true // methods on an injected *rand.Rand are the fix, not the bug
			}
			switch obj.Name() {
			case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
				// Constructors are legal unless their seed reads the clock.
				if call := enclosingCall(f, id); call != nil && callReadsClock(pass, call) {
					pass.Reportf(id.Pos(),
						"rand.%s seeded from the wall clock; derive the seed from the experiment seed instead",
						obj.Name())
				}
			default:
				pass.Reportf(id.Pos(),
					"rand.%s draws from the global math/rand source; simulation code must use an injected *rand.Rand derived from the experiment seed",
					obj.Name())
			}
			return true
		})
	}
	return nil, nil
}

// enclosingCall finds the innermost CallExpr whose callee expression
// contains id (so `rand.New` in `rand.New(src)` resolves to that call, but
// `src` as an argument does not). ast.Inspect visits outer calls before
// inner ones, so the last match wins.
func enclosingCall(f *ast.File, id *ast.Ident) *ast.CallExpr {
	var best *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok &&
			id.Pos() >= call.Fun.Pos() && id.End() <= call.Fun.End() {
			best = call
		}
		return true
	})
	return best
}

// callReadsClock reports whether any argument of call (transitively, in
// the source text of the call) invokes a wall-clock function of "time".
func callReadsClock(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if ok && obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
				obj.Type().(*types.Signature).Recv() == nil && walltimeForbidden[obj.Name()] {
				found = true
			}
			return !found
		})
	}
	return found
}
