package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// simdriftForbidden are the package-level functions of "time" that put
// real-time scheduling into a goroutine: they stall or wake execution on
// the wall clock, so two runs of the same seed interleave differently.
// (Pure clock *reads* — Now/Since/Until — are the walltime analyzer's
// territory.)
var simdriftForbidden = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// SimDriftAnalyzer flags scheduling nondeterminism in simulation
// packages: `go` statements, real-time sleeps and timers, and `select`s
// with two or more live communication cases.
//
// The sim kernel serializes all model execution onto one logical thread
// and advances a virtual clock; byte-identical same-seed traces — and
// the ROADMAP's planned parallel kernel, which shards that loop — depend
// on no model code racing the Go scheduler. A `go` statement hands
// ordering to the runtime, a timer wakes on machine speed, and a
// multi-case select resolves readiness ties by coin flip. The two
// legitimate uses (the kernel's own coroutine substrate, the experiment
// runner's worker pool with ordered merge) carry reasoned
// //bmcast:allow simdrift directives.
var SimDriftAnalyzer = &analysis.Analyzer{
	Name: "simdrift",
	Doc: "flag scheduling nondeterminism in simulation packages: go statements, " +
		"time.Sleep/After/timers, and selects with 2+ live comm cases",
	Run: runSimDrift,
}

func runSimDrift(pass *analysis.Pass) (any, error) {
	if !IsSimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(x.Pos(),
					"go statement hands execution order to the runtime scheduler; "+
						"sim code must run on the kernel's logical thread (annotate deliberate substrates with //bmcast:allow simdrift)")
			case *ast.SelectStmt:
				live := 0
				for _, cl := range x.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						live++
					}
				}
				if live >= 2 {
					pass.Reportf(x.Pos(),
						"select with %d live comm cases resolves readiness ties nondeterministically; "+
							"sim code must not race channels (annotate with //bmcast:allow simdrift)", live)
				}
			case *ast.Ident:
				obj, ok := pass.TypesInfo.Uses[x].(*types.Func)
				if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				if obj.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if simdriftForbidden[obj.Name()] {
					pass.Reportf(x.Pos(),
						"time.%s schedules on the wall clock; sim code must advance on sim.Kernel events (annotate harness code with //bmcast:allow simdrift)",
						obj.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
