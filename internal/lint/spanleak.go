package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// SpanLeakAnalyzer proves that every *trace.Span obtained from
// Recorder.Begin/BeginChild reaches End — or escapes to another owner —
// on every path out of the function that acquired it. A span left open
// past a return is invisible until the per-cell OpenSpans leak check
// happens to run that cell; this analyzer makes the invariant
// machine-checked at build time.
var SpanLeakAnalyzer = &analysis.Analyzer{
	Name: "spanleak",
	Doc: "report *trace.Span values from Begin/BeginChild that miss End on some path out of the function; " +
		"returning, storing, or handing the span to trace.SwapCause settles it",
	Run: runSpanLeak,
}

var spanLeakRules = flowRules{
	acquires:       spanAcquires,
	consumeMethods: map[string]bool{"End": true},
	leakFormat: "span %s is not Ended (or handed off) on every path out of the function; " +
		"an early return leaves it open — defer %[1]s.End() or annotate with //bmcast:allow spanleak",
	overwriteFormat: "%s is reassigned while its span is still open; the old span can no longer be Ended",
}

func runSpanLeak(pass *analysis.Pass) (any, error) {
	runFlow(pass, spanLeakRules)
	if InModule(pass.Pkg.Path()) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if es, ok := n.(*ast.ExprStmt); ok {
					if call, ok := unparen(es.X).(*ast.CallExpr); ok && isSpanBegin(pass.TypesInfo, call) {
						pass.Reportf(es.Pos(), "result of %s is discarded; the span can never be Ended",
							beginCallName(call))
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// spanAcquires recognizes `sp := r.Begin(...)` / `sp = r.BeginChild(...)`
// in assignments and `var sp = r.Begin(...)` declarations.
func spanAcquires(info *types.Info, n ast.Node) []acquisition {
	var out []acquisition
	bind := func(lhs, rhs ast.Expr) {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || !isSpanBegin(info, call) {
			return
		}
		if v, id := lhsVar(info, lhs); v != nil {
			out = append(out, acquisition{v: v, pos: id.Pos()})
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Rhs {
				bind(s.Lhs[i], s.Rhs[i])
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i := range vs.Values {
						bind(vs.Names[i], vs.Values[i])
					}
				}
			}
		}
	}
	return out
}

// isSpanBegin matches a method call named Begin or BeginChild whose
// result is a *Span. The match is structural (type name, not import
// path) so linttest fixtures can model the recorder without importing
// internal/trace; within the module only the real tracer has this shape.
func isSpanBegin(info *types.Info, call *ast.CallExpr) bool {
	name := beginCallName(call)
	if name == "" {
		return false
	}
	if methodCall(info, call, name) == nil {
		return false
	}
	return namedResult(info.TypeOf(call), "Span")
}

func beginCallName(call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Begin", "BeginChild":
		return sel.Sel.Name
	}
	return ""
}
