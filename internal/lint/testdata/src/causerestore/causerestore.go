// Fixture for the causerestore analyzer. SwapCause is modeled locally —
// the analyzer matches the two-argument SwapCause → *Span shape
// structurally, exactly as it does against repro/internal/trace.
package fixture

type Span struct{ Name string }

type Proc struct{ cause *Span }

func SwapCause(p *Proc, sp *Span) *Span { old := p.cause; p.cause = sp; return old }

func work() error { return nil }

func goodDeferRestore(p *Proc, sp *Span) error {
	prev := SwapCause(p, sp)
	defer SwapCause(p, prev)
	return work()
}

func goodSequentialRestore(p *Proc, sp *Span) {
	prev := SwapCause(p, sp)
	_ = work()
	SwapCause(p, prev)
}

func goodUncaptured(p *Proc, sp *Span) {
	// Fire-and-forget annotation: nothing captured, nothing owed.
	SwapCause(p, sp)
}

func badNoRestore(p *Proc, sp *Span) {
	prev := SwapCause(p, sp) // want "not restored"
	_ = prev
}

func badEarlyReturn(p *Proc, sp *Span, err error) error {
	prev := SwapCause(p, sp) // want "not restored"
	if err != nil {
		return err // leaves the proc annotated with sp's cause
	}
	SwapCause(p, prev)
	return nil
}

func badOverwrite(p *Proc, a, b *Span) {
	prev := SwapCause(p, a)
	prev = SwapCause(p, b) // want "reassigned while it still holds"
	SwapCause(p, prev)
}

func allowedPermanentChange(p *Proc, sp *Span) {
	prev := SwapCause(p, sp) //bmcast:allow causerestore fixture: cause change is intentionally permanent
	_ = prev
}
