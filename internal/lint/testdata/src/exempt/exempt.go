// Fixture for analyzer scoping: type-checked under an exempt import path
// (repro/cmd/...), where harness code may read the wall clock and use
// ad-hoc randomness freely. No finding is expected anywhere in this file.
package fixture

import (
	"math/rand"
	"time"
)

func harnessTiming() (time.Duration, int) {
	start := time.Now()
	n := rand.Intn(10)
	return time.Since(start), n
}
