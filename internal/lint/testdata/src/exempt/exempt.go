// Fixture for analyzer scoping: type-checked under an exempt import path
// (repro/cmd/...), where harness code may read the wall clock and use
// ad-hoc randomness freely. No finding is expected anywhere in this file.
package fixture

import (
	"math/rand"
	"time"
)

func harnessTiming() (time.Duration, int) {
	start := time.Now()
	n := rand.Intn(10)
	return time.Since(start), n
}

func harnessParallelism(cells []func()) {
	// Drivers may use real goroutines, sleeps and racy selects freely:
	// simdrift only polices simulation packages.
	done := make(chan int, len(cells))
	stop := make(chan int)
	for _, c := range cells {
		go func(f func()) { f(); done <- 1 }(c)
	}
	time.Sleep(time.Millisecond)
	select {
	case <-done:
	case <-stop:
	}
}
