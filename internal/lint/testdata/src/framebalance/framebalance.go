// Fixture for the framebalance analyzer. The pool API is modeled
// locally — the analyzer matches the FramePool.Get / Frame.Retain /
// Frame.Release shape structurally, exactly as it does against
// repro/internal/aoe.
package fixture

type Frame struct {
	ref  int
	Data []byte
}

func (f *Frame) Retain()  { f.ref++ }
func (f *Frame) Release() { f.ref-- }

type Message struct{ Op int }

type FramePool struct{ frames []*Frame }

func (p *FramePool) Get() (*Frame, *Message) { return &Frame{ref: 1}, &Message{} }

type NIC struct{}

func (n *NIC) Send(f *Frame) {}

func goodReleaseOrSend(p *FramePool, nic *NIC, drop bool) {
	f, m := p.Get()
	_ = m
	if drop {
		f.Release()
		return
	}
	nic.Send(f) // the NIC owns the reference now
}

func goodChannelHandoff(p *FramePool, out chan *Frame) {
	f, m := p.Get()
	_ = m
	out <- f
}

func goodReturnEscape(p *FramePool) *Frame {
	f, m := p.Get()
	_ = m
	return f
}

func goodRetainBalanced(f *Frame, err error) error {
	f.Retain()
	defer f.Release()
	return err
}

func goodLoopPerIteration(p *FramePool, n int) {
	for i := 0; i < n; i++ {
		f, m := p.Get()
		_ = m
		f.Release()
	}
}

func badEarlyReturn(p *FramePool, err error) error {
	f, m := p.Get() // want "not Released"
	_ = m
	if err != nil {
		return err // strands the reference
	}
	f.Release()
	return nil
}

func badRetainLeak(f *Frame, skip bool) {
	f.Retain() // want "not Released"
	if skip {
		return // retained reference never dropped
	}
	f.Release()
}

func badOverwrite(p *FramePool) {
	f, m := p.Get()
	f, m = p.Get() // want "reassigned while it still holds"
	_ = m
	f.Release()
}

func allowedSessionCache(p *FramePool) {
	f, m := p.Get() //bmcast:allow framebalance fixture: cached for the whole session
	_ = m
	_ = f
}
