// Fixture for the mapiter analyzer: map iteration order escaping into
// ordered output (returned slices, writer streams) is flagged; the
// collect-then-sort idiom and order-insensitive reductions are not.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

func badReturnedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order escapes"
		keys = append(keys, k)
	}
	return keys
}

func goodCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func badWriterInBody(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration order escapes"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func badStringBuilder(m map[string]int) string {
	sink := &builder{}
	for k := range m { // want "map iteration order escapes"
		sink.WriteString(k)
	}
	return sink.s
}

func goodReduction(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodSliceRange(xs []string, w io.Writer) {
	for _, x := range xs { // slices iterate in order; nothing to flag
		fmt.Fprintln(w, x)
	}
}

func allowedDump(w io.Writer, m map[string]int) {
	//bmcast:allow mapiter fixture: debug dump, order irrelevant
	for k := range m {
		fmt.Fprintln(w, k)
	}
}

// builder is a local stand-in for strings.Builder so the fixture needs no
// extra imports.
type builder struct{ s string }

func (b *builder) WriteString(s string) (int, error) { b.s += s; return len(s), nil }
