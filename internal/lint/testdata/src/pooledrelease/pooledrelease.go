// Fixture for the pooledrelease analyzer: touching a pooled record after
// returning it to its free list is flagged; conditional early-return
// release paths and reassignment (taking a fresh record) are not.
package fixture

type record struct {
	id   int
	data []byte
}

type pool struct {
	freeList []*record
}

func (p *pool) get() *record {
	if n := len(p.freeList) - 1; n >= 0 {
		r := p.freeList[n]
		p.freeList = p.freeList[:n]
		return r
	}
	return &record{}
}

func (p *pool) release(r *record) {
	r.data = r.data[:0]
	p.freeList = append(p.freeList, r)
}

func badUseAfterRelease(p *pool) int {
	r := p.get()
	r.id = 1
	p.release(r)
	return r.id // want "used after being released"
}

func badUseAfterFreelistPush(p *pool, r *record) {
	p.freeList = append(p.freeList, r)
	r.id = 7 // want "used after being released"
}

func badWriteInLaterBranch(p *pool, cond bool) {
	r := p.get()
	p.release(r)
	if cond {
		r.id = 9 // want "used after being released"
	}
}

func badDoubleRelease(p *pool) {
	r := p.get()
	p.release(r)
	p.release(r) // want "used after being released"
}

func goodEarlyReturnRelease(p *pool, fail bool) int {
	r := p.get()
	if fail {
		p.release(r)
		return -1
	}
	id := r.id // the release above is on the abandoned branch
	p.release(r)
	return id
}

func goodReassignmentRevives(p *pool) int {
	r := p.get()
	p.release(r)
	r = p.get()
	return r.id // fresh record
}

func goodReleaseLast(p *pool) int {
	r := p.get()
	id := r.id
	p.release(r)
	return id
}

func allowedUse(p *pool) int {
	r := p.get()
	p.release(r)
	//bmcast:allow pooledrelease fixture: the escape hatch
	return r.id
}

// Free pushes the record onto a package-level free list, which marks
// *record as a pooled type, so the receiver form r.Free() also counts as
// a release.
var recordFreeList []*record

func (r *record) Free() { recordFreeList = append(recordFreeList, r) }

func badUseAfterSelfFree(r *record) {
	r.Free()
	r.id = 3 // want "used after being released"
}

// gauge has a Release method but is never pooled anywhere in this
// package: semaphore-style release-then-reuse must not be flagged.
type gauge struct{ held int }

func (g *gauge) Acquire() { g.held++ }
func (g *gauge) Release() { g.held-- }

func goodSemaphoreRelease(g *gauge) int {
	g.Acquire()
	g.Release()
	g.Acquire() // not a pooled record: reuse is the whole point
	return g.held
}

// The CFG engine sees releases on every path, not just straight-line
// statement order: if-init releases, loop back-edges and defers are all
// modeled.

func badReleaseInIfInit(p *pool, r *record) {
	if q := p.get(); q != nil {
		p.release(r)
	} else {
		p.release(r)
	}
	r.id = 4 // want "used after being released"
}

func consume(int) {}

func badDeferAfterRelease(p *pool) {
	r := p.get()
	p.release(r)
	defer consume(r.id) // want "used after being released"
}

func goodDeferredReleaseRunsLast(p *pool) int {
	r := p.get()
	defer p.release(r)
	return r.id // the deferred release has not happened yet
}

// lease has an exported Release API on a non-pool receiver and its type
// is never pushed onto a free list: returning a lease is not recycling
// memory, and touching it afterwards is legal.
type lease struct{ state int }

type controller struct{ leases []*lease }

func (c *controller) Release(l *lease) { l.state = 2 }

func goodLeaseReleaseIsNotPooling(c *controller, l *lease) int {
	if c == nil {
		return 0
	}
	c.Release(l)
	return l.state // still a live object, not recycled memory
}

// An exported Put on a pool-named receiver is pooling, evidence or not.
type bufPool struct{ items []*record }

func (p *bufPool) Put(r *record) { p.items = append(p.items, r) }

func badExportedPutOnPool(pp *bufPool, r *record) {
	pp.Put(r)
	r.id = 5 // want "used after being released"
}
