// Fixture for the pooledrelease analyzer: touching a pooled record after
// returning it to its free list is flagged; conditional early-return
// release paths and reassignment (taking a fresh record) are not.
package fixture

type record struct {
	id   int
	data []byte
}

type pool struct {
	freeList []*record
}

func (p *pool) get() *record {
	if n := len(p.freeList) - 1; n >= 0 {
		r := p.freeList[n]
		p.freeList = p.freeList[:n]
		return r
	}
	return &record{}
}

func (p *pool) release(r *record) {
	r.data = r.data[:0]
	p.freeList = append(p.freeList, r)
}

func badUseAfterRelease(p *pool) int {
	r := p.get()
	r.id = 1
	p.release(r)
	return r.id // want "used after being released"
}

func badUseAfterFreelistPush(p *pool, r *record) {
	p.freeList = append(p.freeList, r)
	r.id = 7 // want "used after being released"
}

func badWriteInLaterBranch(p *pool, cond bool) {
	r := p.get()
	p.release(r)
	if cond {
		r.id = 9 // want "used after being released"
	}
}

func badDoubleRelease(p *pool) {
	r := p.get()
	p.release(r)
	p.release(r) // want "used after being released"
}

func goodEarlyReturnRelease(p *pool, fail bool) int {
	r := p.get()
	if fail {
		p.release(r)
		return -1
	}
	id := r.id // the release above is on the abandoned branch
	p.release(r)
	return id
}

func goodReassignmentRevives(p *pool) int {
	r := p.get()
	p.release(r)
	r = p.get()
	return r.id // fresh record
}

func goodReleaseLast(p *pool) int {
	r := p.get()
	id := r.id
	p.release(r)
	return id
}

func allowedUse(p *pool) int {
	r := p.get()
	p.release(r)
	//bmcast:allow pooledrelease fixture: the escape hatch
	return r.id
}

// Free pushes the record onto a package-level free list, which marks
// *record as a pooled type, so the receiver form r.Free() also counts as
// a release.
var recordFreeList []*record

func (r *record) Free() { recordFreeList = append(recordFreeList, r) }

func badUseAfterSelfFree(r *record) {
	r.Free()
	r.id = 3 // want "used after being released"
}

// gauge has a Release method but is never pooled anywhere in this
// package: semaphore-style release-then-reuse must not be flagged.
type gauge struct{ held int }

func (g *gauge) Acquire() { g.held++ }
func (g *gauge) Release() { g.held-- }

func goodSemaphoreRelease(g *gauge) int {
	g.Acquire()
	g.Release()
	g.Acquire() // not a pooled record: reuse is the whole point
	return g.held
}
