// Fixture for the seededrand analyzer: type-checked as a simulation
// package. Global math/rand draws and wall-clock-seeded sources are
// flagged; seed-injected streams are the approved replacement.
package fixture

import (
	"math/rand"
	"time"
)

func badGlobalDraw() int {
	return rand.Intn(10) // want "global math/rand"
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand"
}

func badGlobalFloat() float64 {
	return rand.Float64() // want "global math/rand"
}

func badClockSeed() *rand.Rand {
	// Both the constructor and the source are clock-seeded here.
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock" "seeded from the wall clock"
}

func goodInjectedSeed(seed int64) *rand.Rand {
	// The kernel's own idiom: the seed flows in from experiment config.
	return rand.New(rand.NewSource(seed))
}

func goodDrawFromInjected(rng *rand.Rand) int {
	// Methods on an injected stream are the fix, not the bug.
	return rng.Intn(10)
}

func allowedStandalone() int {
	//bmcast:allow seededrand fixture: the escape hatch
	return rand.Int()
}

func allowedEndOfLine() int {
	return rand.Intn(3) //bmcast:allow seededrand fixture: end-of-line form
}
