// Fixture for the simdrift analyzer modeling the parallel shard
// executor's shape (internal/sim/shard.go): OS-thread worker goroutines
// coordinated by atomic epochs. The executor itself is legitimate
// concurrency inside a sim package — worker count cannot affect the
// window schedule, so it carries a reasoned //bmcast:allow — but the
// same shape WITHOUT the directive must be flagged: an unannotated
// goroutine in sim code is exactly the drift the analyzer exists for.
package fixture

import (
	"runtime"
	"sync/atomic"
)

type executor struct {
	epoch atomic.Uint64
	quit  atomic.Bool
	next  atomic.Int64
	done  atomic.Int64
}

// spawnWorkersAllowed mirrors the real executor: the go statement is
// deliberate, reasoned, and suppressed by the directive on its line.
func (e *executor) spawnWorkersAllowed(n int, work func()) {
	for i := 1; i < n; i++ {
		go func() { //bmcast:allow simdrift fixture: barrier-synchronized shard worker; work-stealing order cannot affect the window schedule
			seen := uint64(0)
			for !e.quit.Load() {
				if cur := e.epoch.Load(); cur != seen {
					seen = cur
					work()
					e.done.Add(1)
					continue
				}
				runtime.Gosched()
			}
		}()
	}
}

// spawnWorkersBare is the same shape with no directive: flagged.
func (e *executor) spawnWorkersBare(work func()) {
	go func() { // want "go statement"
		for !e.quit.Load() {
			work()
			runtime.Gosched()
		}
	}()
}

// stealDomain is the work-stealing loop body; pure atomics, no
// goroutines, no findings.
func (e *executor) stealDomain(domains []func()) {
	for {
		i := int(e.next.Add(1)) - 1
		if i >= len(domains) {
			return
		}
		domains[i]()
		e.done.Add(1)
	}
}

// mergeMailboxes drains per-shard outboxes through a channel race: the
// select makes barrier merge order depend on runtime readiness, which is
// exactly the nondeterminism the executor's sorted merge avoids.
func mergeMailboxes(a, b chan int, sink func(int)) {
	for {
		select { // want "resolves readiness ties nondeterministically"
		case v, ok := <-a:
			if !ok {
				return
			}
			sink(v)
		case v := <-b:
			sink(v)
		}
	}
}
