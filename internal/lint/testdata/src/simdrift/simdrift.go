// Fixture for the simdrift analyzer: type-checked as a simulation
// package, so every scheduling-nondeterminism source must be flagged
// unless a correctly placed //bmcast:allow simdrift directive covers it.
package fixture

import "time"

func badGo(work func()) {
	go work() // want "go statement"
}

func badGoClosure(n int) {
	go func() { _ = n }() // want "go statement"
}

func badSleep() {
	time.Sleep(time.Millisecond) // want "schedules on the wall clock"
}

func badTimers(done func()) {
	_ = time.After(time.Second)  // want "schedules on the wall clock"
	_ = time.Tick(time.Second)   // want "schedules on the wall clock"
	t := time.NewTimer(0)        // want "schedules on the wall clock"
	k := time.NewTicker(1)       // want "schedules on the wall clock"
	a := time.AfterFunc(0, done) // want "schedules on the wall clock"
	_, _, _ = t, k, a
}

func badRacySelect(a, b chan int) int {
	select { // want "resolves readiness ties nondeterministically"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func goodSingleCaseSelect(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

func goodSelectWithDefault(a chan int) int {
	// One live case plus default never races: default fires exactly when
	// the single channel is not ready.
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

func clockReadsBelongToWalltime() {
	// time.Now is the walltime analyzer's finding, not simdrift's; with
	// only simdrift running this line must stay silent.
	_ = time.Now()
}

func allowedSubstrate(work func()) {
	go work() //bmcast:allow simdrift fixture: serialized coroutine substrate
}
