// Fixture for the spanleak analyzer. The recorder API is modeled
// locally — the analyzer matches the Begin/BeginChild → *Span shape
// structurally, exactly as it does against repro/internal/trace.
package fixture

type Span struct{ Open bool }

func (s *Span) End() {}

type Proc struct{ cause *Span }

type Recorder struct{}

func (r *Recorder) Begin(name string) *Span             { return &Span{Open: true} }
func (r *Recorder) BeginChild(p *Span, nm string) *Span { return &Span{Open: true} }
func SwapCause(p *Proc, sp *Span) *Span                 { old := p.cause; p.cause = sp; return old }

type holder struct{ sp *Span }

func badEarlyReturn(r *Recorder, err error) error {
	sp := r.Begin("deploy") // want "not Ended"
	if err != nil {
		return err // leaks sp open
	}
	sp.End()
	return nil
}

func badNeverEnded(r *Recorder) {
	sp := r.Begin("deploy") // want "not Ended"
	_ = sp
}

func badDiscarded(r *Recorder) {
	r.Begin("deploy") // want "discarded"
}

func badOverwrite(r *Recorder) {
	sp := r.Begin("a")
	sp = r.Begin("b") // want "reassigned while its span is still open"
	sp.End()
}

func badLoopContinue(r *Recorder, n int) {
	for i := 0; i < n; i++ {
		sp := r.Begin("iter") // want "not Ended"
		if i == 0 {
			continue // leaks this iteration's span
		}
		sp.End()
	}
}

func badLabeledBreak(r *Recorder, stop bool) {
outer:
	for {
		for {
			sp := r.Begin("inner") // want "not Ended"
			if stop {
				break outer // leaks sp
			}
			sp.End()
		}
	}
}

func goodDeferEnd(r *Recorder, err error) error {
	sp := r.Begin("deploy")
	defer sp.End()
	if err != nil {
		return err
	}
	return nil
}

func goodEndOnEveryBranch(r *Recorder, ok bool) {
	sp := r.Begin("deploy")
	if ok {
		sp.End()
		return
	}
	sp.End()
}

func goodEscapeReturn(r *Recorder) *Span {
	sp := r.Begin("deploy")
	return sp // caller owns it now
}

func goodEscapeStore(r *Recorder, h *holder) {
	sp := r.Begin("deploy")
	h.sp = sp // the holder owns it now
}

func goodSwapCauseHandoff(r *Recorder, p *Proc) {
	sp := r.Begin("deploy")
	SwapCause(p, sp) // the proc annotation owns it now
}

func goodPanicPathExempt(r *Recorder, broken bool) {
	sp := r.Begin("deploy")
	if broken {
		panic("invariant") // panic paths owe no End
	}
	sp.End()
}

func goodConditionalBegin(r *Recorder, traced bool) {
	// The mediator idiom: sp stays nil when tracing is off; a nil-safe
	// End covers both paths.
	var sp *Span
	if traced {
		sp = r.Begin("io")
	}
	defer sp.End()
}

func goodClosureCapture(r *Recorder) {
	// Captured variables are untrackable: the deferred closure may End
	// the span no matter where the Begin sits.
	var sp *Span
	defer func() { sp.End() }()
	sp = r.Begin("deploy")
}

func allowedOpenOnPurpose(r *Recorder) {
	sp := r.Begin("leak-fixture") //bmcast:allow spanleak fixture: deliberately left open
	_ = sp
}
