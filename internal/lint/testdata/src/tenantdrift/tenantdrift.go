// Fixture for the simdrift analyzer shaped like the tenants arrival
// generator (internal/tenants): open-loop traffic loops are a magnet for
// wall-clock scheduling — a goroutine pumping arrivals off time.Sleep
// replays differently on every run. Arrival gaps must elapse on the sim
// kernel, drawn from its seeded source.
package fixture

import (
	"math/rand"
	"time"
)

// kernel stands in for sim.Kernel: callbacks scheduled through it run in
// simulated time, so none of its methods are drift sources.
type kernel struct{}

func (k *kernel) After(d time.Duration, fn func()) {}
func (k *kernel) Spawn(name string, fn func())     {}

// badArrivalLoop pumps Poisson arrivals from a raw goroutine on the wall
// clock: both the goroutine and the sleep break seeded replay.
func badArrivalLoop(rng *rand.Rand, submit func()) {
	go func() { // want "go statement"
		for {
			gap := time.Duration(rng.ExpFloat64() * float64(time.Second))
			time.Sleep(gap) // want "schedules on the wall clock"
			submit()
		}
	}()
}

// badTenantHold parks a tenant's hold period on a wall-clock timer.
func badTenantHold(release func()) {
	_ = time.AfterFunc(10*time.Second, release) // want "schedules on the wall clock"
}

// badDrainRace resolves the generator's drain against a timeout by
// whichever channel the runtime polls first.
func badDrainRace(drained, timeout chan struct{}) bool {
	select { // want "resolves readiness ties nondeterministically"
	case <-drained:
		return true
	case <-timeout:
		return false
	}
}

// goodArrivalLoop reschedules itself through the kernel: gaps elapse in
// simulated time from the seeded source, so the arrival sequence replays
// byte-identically.
func goodArrivalLoop(k *kernel, rng *rand.Rand, submit func()) {
	var tick func()
	tick = func() {
		submit()
		k.After(time.Duration(rng.ExpFloat64()*float64(time.Second)), tick)
	}
	k.Spawn("tenants.arrivals", tick)
}

// allowedBridge: a real-time driver feeding the generator from outside
// the simulation is legal only behind an explicit directive.
func allowedBridge(pump func()) {
	go pump() //bmcast:allow simdrift fixture: real-time driver bridge
}
