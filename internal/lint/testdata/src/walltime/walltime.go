// Fixture for the walltime analyzer: type-checked as a simulation
// package, so every wall-clock read must be flagged unless a correctly
// placed //bmcast:allow walltime directive covers it. (Sleeps and
// timers are the simdrift analyzer's territory and have their own
// fixture.)
package fixture

import "time"

func bad() time.Duration {
	start := time.Now()      // want "wall clock"
	_ = time.Until(start)    // want "wall clock"
	return time.Since(start) // want "wall clock"
}

func badStamps() {
	_ = time.Now().UnixNano() // want "wall clock"
	_ = time.Now().Round(0)   // want "wall clock"
}

func durationMathIsFine(d time.Duration) time.Duration {
	// Duration values and their methods never touch the clock.
	return 2*d + time.Millisecond.Round(time.Microsecond)
}

func allowedStandalone() time.Time {
	//bmcast:allow walltime fixture: standalone directive covers the next line
	return time.Now()
}

func allowedEndOfLine() {
	_ = time.Now() //bmcast:allow walltime fixture: end-of-line form
}

func directiveTooFarAway() {
	//bmcast:allow walltime fixture: two lines up, must not suppress // want "suppresses nothing"
	_ = 0
	_ = time.Now() // want "wall clock"
}

func directiveForOtherAnalyzer() {
	// A directive naming an analyzer that is not part of this run is
	// not audited for staleness (the run proves nothing about it).
	//bmcast:allow seededrand fixture: wrong analyzer, must not suppress
	_ = time.Now() // want "wall clock"
}
