// Fixture for the walltime analyzer: type-checked as a simulation
// package, so every wall-clock read must be flagged unless a correctly
// placed //bmcast:allow walltime directive covers it.
package fixture

import "time"

func bad() time.Duration {
	start := time.Now()          // want "wall clock"
	time.Sleep(time.Millisecond) // want "wall clock"
	return time.Since(start)     // want "wall clock"
}

func badTimers() {
	_ = time.NewTimer(time.Second)  // want "wall clock"
	_ = time.NewTicker(time.Second) // want "wall clock"
	_ = time.After(time.Second)     // want "wall clock"
}

func durationMathIsFine(d time.Duration) time.Duration {
	// Duration values and their methods never touch the clock.
	return 2*d + time.Millisecond.Round(time.Microsecond)
}

func allowedStandalone() time.Time {
	//bmcast:allow walltime fixture: standalone directive covers the next line
	return time.Now()
}

func allowedEndOfLine() {
	time.Sleep(time.Millisecond) //bmcast:allow walltime fixture: end-of-line form
}

func directiveTooFarAway() {
	//bmcast:allow walltime fixture: two lines up, must not suppress
	_ = 0
	time.Sleep(time.Millisecond) // want "wall clock"
}

func directiveForOtherAnalyzer() {
	//bmcast:allow seededrand fixture: wrong analyzer, must not suppress
	time.Sleep(time.Millisecond) // want "wall clock"
}
