package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// walltimeForbidden are the package-level functions of "time" that read
// the wall clock. Pure value constructors (time.Duration arithmetic,
// time.Unix on stored stamps) are fine — it is the *clock* that breaks
// determinism, not the types. The scheduling side of the time package
// (Sleep, After, timers) is owned by the simdrift analyzer: those stall
// or wake goroutines on real time, which is a scheduling hazard rather
// than a clock read.
var walltimeForbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// WalltimeAnalyzer forbids wall-clock reads in simulation packages.
//
// Simulation code advances on sim.Kernel's virtual clock only; a single
// time.Now() smuggled into a model makes runs differ between machines and
// between repetitions, which silently invalidates every same-seed
// comparison the experiment harness depends on. Harness code that times
// real execution (the parallel runner's per-cell wall clock) carries a
// line-anchored //bmcast:allow walltime directive instead.
var WalltimeAnalyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Since/Until in simulation packages; " +
		"sim code must read sim.Kernel time only",
	Run: runWalltime,
}

func runWalltime(pass *analysis.Pass) (any, error) {
	if !IsSimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if obj.Type().(*types.Signature).Recv() != nil {
				return true // methods on Time/Duration values are harmless
			}
			if walltimeForbidden[obj.Name()] {
				pass.Reportf(id.Pos(),
					"time.%s reads the wall clock; simulation code must use sim.Kernel time (annotate harness code with //bmcast:allow walltime)",
					obj.Name())
			}
			return true
		})
	}
	return nil, nil
}
