// Package machine assembles simulated hardware into the paper's testbed
// machines: FUJITSU PRIMERGY RX200 S6 servers with two 6-core Xeon X5680s,
// 96 GB of memory, a 500 GB SATA drive behind an IDE or AHCI controller,
// two gigabit NICs (one dedicated to the VMM), and a 4X QDR InfiniBand
// HCA, all connected through shared switches.
package machine

import (
	"fmt"

	"repro/internal/cpuvirt"
	"repro/internal/ethernet"
	"repro/internal/firmware"
	"repro/internal/hw/ahci"
	"repro/internal/hw/disk"
	"repro/internal/hw/ib"
	"repro/internal/hw/ide"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/mem"
	"repro/internal/hw/nic"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// StorageKind selects the machine's disk controller type.
type StorageKind int

// Supported storage controllers (the paper implements mediators for both).
const (
	StorageIDE StorageKind = iota
	StorageAHCI
)

func (s StorageKind) String() string {
	if s == StorageAHCI {
		return "ahci"
	}
	return "ide"
}

// Config describes one machine.
type Config struct {
	Name         string
	NCPU         int
	MemBytes     int64
	Disk         disk.Params
	Storage      StorageKind
	FirmwareInit sim.Duration
}

// RX200S6 returns the paper's testbed configuration.
func RX200S6(name string) Config {
	return Config{
		Name:         name,
		NCPU:         12, // 2 × 6 cores, hyper-threading disabled
		MemBytes:     96 << 30,
		Disk:         disk.Constellation2(),
		Storage:      StorageAHCI,
		FirmwareInit: 133 * sim.Second,
	}
}

// Machine is one assembled server.
type Machine struct {
	K    *sim.Kernel
	Name string

	Mem      *mem.Memory
	IO       *hwio.Space
	World    *cpuvirt.World
	Firmware *firmware.Firmware

	Disk       *disk.Device
	Storage    StorageKind
	IDE        *ide.Controller
	AHCI       *ahci.HBA
	StorageIRQ *hwio.IRQ
	// StorageRegions are the I/O-space region names of the storage
	// controller, for mediator tap installation.
	StorageRegions []string

	NICs []*nic.NIC
	IB   *ib.HCA

	// Trace and Metrics are the machine's observability sinks, set by the
	// testbed (or left nil). Components reached through the machine (VMM,
	// mediators) record into them; all recording is nil-safe.
	Trace   *trace.Recorder
	Metrics *metrics.Registry

	// SharedPools marks the machine as living in a shard domain of a
	// parallel testbed (DESIGN.md §13): frame pools created for its
	// endpoints must be Share()d because the storage server releases
	// request frames from another domain.
	SharedPools bool
}

// New assembles a machine on kernel k.
func New(k *sim.Kernel, cfg Config) *Machine {
	m := &Machine{
		K:       k,
		Name:    cfg.Name,
		Mem:     mem.New(cfg.MemBytes),
		IO:      hwio.NewSpace(),
		World:   cpuvirt.NewWorld(k, cfg.NCPU),
		Storage: cfg.Storage,
	}
	m.Firmware = firmware.New(m.Mem, cfg.FirmwareInit)
	m.Disk = disk.NewDevice(k, cfg.Name+".sda", cfg.Disk)
	m.StorageIRQ = hwio.NewIRQ(k, cfg.Name+".storage-irq")
	switch cfg.Storage {
	case StorageIDE:
		m.IDE = ide.New(k, cfg.Name+".ide0", m.Disk, m.Mem, m.StorageIRQ)
		cmd, ctl, bm := m.IDE.RegisterRegions(m.IO)
		m.StorageRegions = []string{cmd, ctl, bm}
	case StorageAHCI:
		m.AHCI = ahci.New(k, cfg.Name+".ahci0", m.Disk, m.Mem, m.StorageIRQ)
		m.StorageRegions = []string{m.AHCI.RegisterRegion(m.IO)}
	default:
		panic(fmt.Sprintf("machine: unknown storage kind %d", cfg.Storage))
	}
	return m
}

// AttachNIC connects a new NIC to link and records it. By convention NIC 0
// is the guest's and NIC 1 is dedicated to the VMM, matching the testbed's
// two Intel 82575EB ports.
func (m *Machine) AttachNIC(model nic.Model, mac ethernet.MAC, link *ethernet.Link) *nic.NIC {
	n := nic.New(m.K, fmt.Sprintf("%s.eth%d", m.Name, len(m.NICs)), model, mac, link)
	m.NICs = append(m.NICs, n)
	return n
}

// AttachIB connects the machine to an InfiniBand fabric.
func (m *Machine) AttachIB(f *ib.Fabric) *ib.HCA {
	m.IB = f.NewHCA(m.Name + ".ib0")
	return m.IB
}

// SetDiskImage pre-loads the local disk with an image (the bare-metal
// "already deployed" starting state used by baseline measurements).
func (m *Machine) SetDiskImage(img *disk.Image) {
	n := img.Sectors
	if n > m.Disk.Sectors {
		n = m.Disk.Sectors
	}
	m.Disk.Store().Write(0, n, img)
}

// SetNextStorageDMA annotates the DMA buffer at bufAddr on whichever
// controller the machine has (see ide.Controller.SetNextDMA).
func (m *Machine) SetNextStorageDMA(bufAddr int64, src disk.SectorSource, discard bool) {
	switch m.Storage {
	case StorageIDE:
		m.IDE.SetNextDMA(bufAddr, src, discard)
	case StorageAHCI:
		m.AHCI.SetNextDMA(bufAddr, src, discard)
	}
}

// TakeStorageDMAHint removes and returns the DMA annotation for bufAddr
// from the machine's storage controller (see ide.Controller.TakeHintAt).
func (m *Machine) TakeStorageDMAHint(bufAddr int64) (src disk.SectorSource, discard, armed bool) {
	switch m.Storage {
	case StorageIDE:
		return m.IDE.TakeHintAt(bufAddr)
	default:
		return m.AHCI.TakeHintAt(bufAddr)
	}
}

// StorageBusy reports whether the storage controller is executing a
// command.
func (m *Machine) StorageBusy() bool {
	switch m.Storage {
	case StorageIDE:
		return m.IDE.Busy()
	default:
		return m.AHCI.Busy()
	}
}
