package machine

import (
	"testing"

	"repro/internal/ethernet"
	"repro/internal/hw/disk"
	"repro/internal/hw/ib"
	"repro/internal/hw/nic"
	"repro/internal/sim"
)

func TestRX200S6Assembly(t *testing.T) {
	k := sim.New(1)
	cfg := RX200S6("m0")
	m := New(k, cfg)
	if m.World.NCPU() != 12 {
		t.Fatalf("NCPU = %d, want 12", m.World.NCPU())
	}
	if m.Mem.Size() != 96<<30 {
		t.Fatalf("memory = %d, want 96 GB", m.Mem.Size())
	}
	if m.Storage != StorageAHCI || m.AHCI == nil {
		t.Fatal("default storage should be AHCI")
	}
	if len(m.StorageRegions) == 0 || m.IO.Lookup(m.StorageRegions[0]) == nil {
		t.Fatal("storage regions not registered")
	}
	if m.Firmware.InitTime != 133*sim.Second {
		t.Fatalf("firmware init = %v", m.Firmware.InitTime)
	}
}

func TestIDEVariant(t *testing.T) {
	k := sim.New(1)
	cfg := RX200S6("m0")
	cfg.Storage = StorageIDE
	m := New(k, cfg)
	if m.IDE == nil || m.AHCI != nil {
		t.Fatal("IDE variant misassembled")
	}
	if len(m.StorageRegions) != 3 {
		t.Fatalf("IDE regions = %d, want 3 (cmd/ctl/bm)", len(m.StorageRegions))
	}
	if StorageIDE.String() != "ide" || StorageAHCI.String() != "ahci" {
		t.Fatal("StorageKind names wrong")
	}
}

func TestAttachments(t *testing.T) {
	k := sim.New(1)
	m := New(k, RX200S6("m0"))
	sw := ethernet.NewSwitch(k, "sw", sim.Microsecond)
	n0 := m.AttachNIC(nic.IntelPro1000, 0x10, sw.Connect(ethernet.GigabitJumbo()))
	n1 := m.AttachNIC(nic.IntelPro1000, 0x11, sw.Connect(ethernet.GigabitJumbo()))
	if len(m.NICs) != 2 || m.NICs[0] != n0 || m.NICs[1] != n1 {
		t.Fatal("NIC attachment bookkeeping wrong")
	}
	fabric := ib.QDR4X(k)
	h := m.AttachIB(fabric)
	if m.IB != h || fabric.Size() != 1 {
		t.Fatal("IB attachment wrong")
	}
}

func TestSetDiskImage(t *testing.T) {
	k := sim.New(1)
	cfg := RX200S6("m0")
	cfg.Disk.Sectors = 1 << 20
	m := New(k, cfg)
	img := disk.NewSynthImage("img", 16<<20, 3)
	m.SetDiskImage(img)
	if m.Disk.Store().SourceAt(0) != disk.SectorSource(img) {
		t.Fatal("image not preloaded")
	}
	if m.Disk.Store().SourceAt(img.Sectors) != disk.Zero {
		t.Fatal("preload spilled past the image")
	}
}

func TestStorageDMAHints(t *testing.T) {
	k := sim.New(1)
	cfg := RX200S6("m0")
	cfg.Disk.Sectors = 1 << 20
	m := New(k, cfg)
	src := disk.Synth{Seed: 1}
	m.SetNextStorageDMA(0x1000, src, true)
	got, discard, armed := m.TakeStorageDMAHint(0x1000)
	if !armed || !discard || got != disk.SectorSource(src) {
		t.Fatal("hint round trip failed")
	}
	if _, _, armed := m.TakeStorageDMAHint(0x1000); armed {
		t.Fatal("hint not consumed")
	}
	if m.StorageBusy() {
		t.Fatal("fresh controller reports busy")
	}
}
