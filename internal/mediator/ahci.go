package mediator

import (
	"fmt"

	"repro/internal/cpuvirt"
	"repro/internal/hw/ahci"
	"repro/internal/hw/disk"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/mem"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// vmmSlot is the command slot the mediator reserves for its own requests.
// Guest drivers allocate from the low slots; the mediator's emulated PxCI
// always hides this bit from the guest.
const vmmSlot = 31

// ahciCommand is an interpreted guest command: the slot plus everything
// parsed from the in-memory command header, FIS, and PRDT.
type ahciCommand struct {
	slot        int
	opcode      uint8
	lba, count  int64
	write       bool
	data        bool
	cause       *trace.Span // issuing proc's causal span, captured at interpret time
	ctba        uint64
	prdtl       int
	bufAddr     int64
	hintSrc     disk.SectorSource
	hintDiscard bool
	hintArmed   bool
}

// AHCI is the device mediator for the AHCI HBA. It interprets the in-
// memory command list the guest builds (paper §3.2: "in association with
// in-memory data structures including queues"), intercepts PxCI writes,
// and emulates PxCI/status reads while it holds the device.
type AHCI struct {
	m       *machine.Machine
	hba     *ahci.HBA
	backend Backend
	stats   Stats

	attached bool
	vmmDepth int // >0: the VMM owns the device; guest issues are queued

	// Shadows from interpretation.
	shCLB  uint64
	shGHC  uint32
	shPxIE uint32

	heldCI    uint32 // guest slots queued during VMM ownership
	redirCI   uint32 // guest slots being served by redirection
	queuedCmd []ahciCommand

	vmmRegion mem.Region
	dummyLBA  int64
	devLock   *sim.Resource

	// Pre-built spawn names and reusable scratch for the redirect path,
	// which runs once per intercepted guest read and must not allocate
	// per command.
	redirName   string
	protectName string
	parts       []disk.Payload
	dmaBuf      []byte

	// VirtualIRQ selects the rejected design alternative for the
	// ablation benchmark: inject completion interrupts from the VMM
	// instead of the dummy-sector restart. The mediator must then also
	// emulate PxIS for the slots it completed virtually.
	VirtualIRQ bool
	virtIS     uint32
}

// VMM scratch layout within the reserved region (after the IDE offsets so
// one region can serve either mediator).
const (
	vmmCTBAOff = 0x4000
)

// NewAHCI builds the mediator for machine m (which must use AHCI storage).
func NewAHCI(m *machine.Machine, backend Backend, vmmRegion mem.Region) *AHCI {
	if m.AHCI == nil {
		panic("mediator: machine has no AHCI controller")
	}
	return &AHCI{
		m:           m,
		hba:         m.AHCI,
		backend:     backend,
		vmmRegion:   vmmRegion,
		dummyLBA:    m.Disk.Sectors - 1,
		devLock:     sim.NewResource(m.K, m.Name+".med.dev", 1),
		redirName:   m.AHCI.Name + ".med.redirect",
		protectName: m.AHCI.Name + ".med.protect",
	}
}

// Attach implements Mediator.
func (md *AHCI) Attach() {
	md.m.IO.SetTap(md.hba.Name+".abar", md)
	md.attached = true
}

// Detach implements Mediator.
func (md *AHCI) Detach() {
	if !md.Quiesced() {
		panic("mediator: detach with mediation in flight")
	}
	md.m.IO.SetTap(md.hba.Name+".abar", nil)
	md.attached = false
}

// Quiesced implements Mediator.
func (md *AHCI) Quiesced() bool {
	return md.vmmDepth == 0 && md.heldCI == 0 && md.redirCI == 0 &&
		len(md.queuedCmd) == 0 && md.devLock.InUse() == 0
}

// Stats implements Mediator.
func (md *AHCI) Stats() *Stats { return &md.stats }

func (md *AHCI) device() hwio.Handler {
	return md.m.IO.Lookup(md.hba.Name + ".abar").Device()
}

// TapRead implements io.Tap: PxCI emulation hides the VMM slot and keeps
// held/redirected guest slots visibly "in flight".
func (md *AHCI) TapRead(p *sim.Proc, _ *hwio.Region, off int64, size int) (uint64, bool) {
	md.m.World.Exit(p, cpuvirt.ExitMMIO)
	switch off {
	case ahci.PortBase + ahci.PxCI:
		real := uint32(md.device().IORead(p, off, size))
		return uint64(real&^(1<<vmmSlot) | md.heldCI | md.redirCI), true
	case ahci.PortBase + ahci.PxIS:
		if md.virtIS != 0 {
			real := uint32(md.device().IORead(p, off, size))
			return uint64(real | md.virtIS), true
		}
	}
	return 0, false
}

// TapWrite implements io.Tap: interpretation of command issues.
func (md *AHCI) TapWrite(p *sim.Proc, _ *hwio.Region, off int64, size int, v uint64) bool {
	md.m.World.Exit(p, cpuvirt.ExitMMIO)
	switch off {
	case ahci.RegGHC:
		md.shGHC = uint32(v)
	case ahci.PortBase + ahci.PxCLB:
		md.shCLB = md.shCLB&^0xFFFFFFFF | v&0xFFFFFFFF
	case ahci.PortBase + ahci.PxCLBU:
		md.shCLB = md.shCLB&0xFFFFFFFF | v<<32
	case ahci.PortBase + ahci.PxIS:
		md.virtIS &^= uint32(v) // guest acks virtual completions too
	case ahci.PortBase + ahci.PxIE:
		md.shPxIE = uint32(v)
		if md.vmmDepth > 0 {
			return true // VMM holds the real PxIE masked
		}
	case ahci.PortBase + ahci.PxCI:
		return md.onGuestIssue(p, uint32(v))
	}
	return false
}

// onGuestIssue interprets newly issued slots; it reports whether the
// hardware write was swallowed (always true: pass-through bits are
// re-issued selectively).
func (md *AHCI) onGuestIssue(p *sim.Proc, ci uint32) bool {
	var passMask uint32
	for slot := 0; slot < ahci.NumSlots; slot++ {
		if ci&(1<<slot) == 0 {
			continue
		}
		md.stats.GuestCommands.Inc()
		cmd := md.interpret(slot)
		// The redirect/protect handlers run on freshly spawned procs, so
		// the issuing proc's causal span travels with the command.
		cmd.cause = trace.Cause(p)
		cmd.hintSrc, cmd.hintDiscard, cmd.hintArmed = md.m.TakeStorageDMAHint(cmd.bufAddr)
		if md.vmmDepth > 0 {
			md.stats.QueuedCommands.Inc()
			md.heldCI |= 1 << slot
			md.queuedCmd = append(md.queuedCmd, cmd)
			continue
		}
		if md.dispatch(cmd) {
			continue // mediator took the slot over
		}
		passMask |= 1 << slot
	}
	if passMask != 0 {
		md.device().IOWrite(nil, ahci.PortBase+ahci.PxCI, 4, uint64(passMask))
	}
	return true
}

// interpret parses the guest's command structures out of guest memory —
// the I/O interpretation step.
func (md *AHCI) interpret(slot int) ahciCommand {
	hd := ahci.ReadCmdHeader(md.m.Mem, md.shCLB, slot)
	cmd := ahciCommand{slot: slot, ctba: hd.CTBA, prdtl: hd.PRDTL}
	// Data information: the guest DMA buffer from the first PRDT entry.
	if hd.PRDTL > 0 {
		cmd.bufAddr = ahci.ReadPRD(md.m.Mem, hd.CTBA, 0).Addr
	}
	fis, err := ahci.ReadFIS(md.m.Mem, hd.CTBA)
	if err != nil {
		return cmd // not a data command; let the device fault it
	}
	cmd.opcode = fis.Command
	cmd.lba, cmd.count = fis.LBA, fis.Count
	switch fis.Command {
	case ahci.CmdReadDMAExt:
		cmd.data = true
	case ahci.CmdWriteDMAExt:
		cmd.data = true
		cmd.write = true
	}
	return cmd
}

// dispatch routes an interpreted command; it reports whether the mediator
// took the slot over.
func (md *AHCI) dispatch(cmd ahciCommand) bool {
	if !cmd.data {
		md.rearmHint(cmd)
		return false
	}
	if md.backend.Protected(cmd.lba, cmd.count) {
		md.stats.ProtectedHits.Inc()
		md.redirCI |= 1 << cmd.slot
		md.m.K.Spawn(md.protectName, func(p *sim.Proc) { md.protectAccess(p, cmd) })
		return true
	}
	if cmd.write {
		md.backend.GuestWrote(cmd.lba, cmd.count)
		md.stats.PassedThrough.Inc()
		md.rearmHint(cmd)
		return false
	}
	md.backend.GuestRead(cmd.lba, cmd.count)
	if md.backend.AllFilled(cmd.lba, cmd.count) {
		md.stats.PassedThrough.Inc()
		md.rearmHint(cmd)
		return false
	}
	md.stats.Redirects.Inc()
	md.redirCI |= 1 << cmd.slot
	md.m.K.Spawn(md.redirName, func(p *sim.Proc) { md.redirect(p, cmd) })
	return true
}

func (md *AHCI) rearmHint(cmd ahciCommand) {
	if cmd.hintArmed {
		md.hba.SetNextDMA(cmd.bufAddr, cmd.hintSrc, cmd.hintDiscard)
	}
}

// acquire takes the device for VMM use: serialize against other VMM work,
// switch to ownership mode, and wait for in-flight guest commands to
// drain ("1. Find").
func (md *AHCI) acquire(p *sim.Proc) {
	md.devLock.Acquire(p)
	md.vmmDepth++
	dev := md.device()
	for {
		ci := uint32(dev.IORead(p, ahci.PortBase+ahci.PxCI, 4))
		if ci == 0 && !md.hba.Busy() {
			break
		}
		md.stats.Polls.Inc()
		md.m.World.Exit(nil, cpuvirt.ExitPreemptionTimer)
		p.Sleep(md.backend.PollInterval())
	}
}

// release returns the device to the guest and replays held commands.
func (md *AHCI) release(p *sim.Proc) {
	md.vmmDepth--
	if md.vmmDepth == 0 {
		queued := md.queuedCmd
		md.queuedCmd = nil
		var passMask uint32
		for _, cmd := range queued {
			md.heldCI &^= 1 << cmd.slot
			if !md.dispatch(cmd) {
				passMask |= 1 << cmd.slot
			}
		}
		if passMask != 0 {
			md.device().IOWrite(nil, ahci.PortBase+ahci.PxCI, 4, uint64(passMask))
		}
	}
	md.devLock.Release()
}

// vmmSlotOp runs one VMM command through the reserved slot with port
// interrupts masked, polling for completion ("2. Request").
func (md *AHCI) vmmSlotOp(p *sim.Proc, write bool, payload disk.Payload, keepIRQ bool) {
	dev := md.device()
	ctba := uint64(md.vmmRegion.Start + vmmCTBAOff)
	buf := md.vmmRegion.Start + vmmBufOff
	opcode := uint8(ahci.CmdReadDMAExt)
	if write {
		opcode = ahci.CmdWriteDMAExt
	}
	ahci.WriteFIS(md.m.Mem, ctba, ahci.FIS{Command: opcode, LBA: payload.LBA, Count: payload.Count})
	ahci.WritePRDT(md.m.Mem, ctba, []ahci.PRD{{Addr: buf, Bytes: payload.Count * disk.SectorSize}})
	ahci.WriteCmdHeader(md.m.Mem, md.shCLB, vmmSlot, ahci.CmdHeader{
		FISLen: 5, Write: write, PRDTL: 1, CTBA: ctba,
	})
	if write {
		md.hba.SetNextDMA(buf, payload.Source, false)
	} else {
		md.hba.SetNextDMA(buf, nil, true)
	}
	if keepIRQ {
		dev.IOWrite(p, ahci.PortBase+ahci.PxIE, 4, uint64(md.shPxIE))
	} else {
		dev.IOWrite(p, ahci.PortBase+ahci.PxIE, 4, 0)
	}
	dev.IOWrite(p, ahci.PortBase+ahci.PxCI, 4, 1<<vmmSlot)
	if keepIRQ {
		return
	}
	for uint32(dev.IORead(p, ahci.PortBase+ahci.PxCI, 4))&(1<<vmmSlot) != 0 {
		md.stats.Polls.Inc()
		md.m.World.Exit(nil, cpuvirt.ExitPreemptionTimer)
		md.m.World.RecordVMMWork(2 * sim.Microsecond)
		p.Sleep(md.backend.PollInterval())
	}
	// Quietly acknowledge the completion the VMM caused, then restore
	// the guest's interrupt enable.
	dev.IOWrite(p, ahci.PortBase+ahci.PxIS, 4, uint64(ahci.ISDHRS))
	dev.IOWrite(p, ahci.PortBase+ahci.PxIE, 4, uint64(md.shPxIE))
}

// redirect performs copy-on-read for one intercepted guest read slot.
func (md *AHCI) redirect(p *sim.Proc, cmd ahciCommand) {
	var sp *trace.Span
	if md.m.Trace != nil { // variadic attrs box; skip entirely when not tracing
		sp = md.m.Trace.BeginChild(cmd.cause, md.m.Name, "mediator", "redirect",
			trace.Int("lba", cmd.lba), trace.Int("count", cmd.count))
	}
	defer sp.End()
	// The backend fetch below issues AoE round trips on this proc; parent
	// them under the redirect span.
	trace.SwapCause(p, sp)
	md.acquire(p)
	defer md.release(p)

	parts := md.parts[:0] // scratch guarded by devLock; one redirect at a time
	defer func() { md.parts = parts[:0] }()
	cursor := cmd.lba
	appendLocal := func(upto int64) {
		for cursor < upto {
			n := upto - cursor
			if n > 2048 {
				n = 2048
			}
			md.vmmSlotOp(p, false, disk.Payload{LBA: cursor, Count: n}, false)
			parts = append(parts, md.m.Disk.Store().ReadPayload(cursor, n))
			cursor += n
		}
	}
	for _, run := range md.backend.UnfilledRuns(cmd.lba, cmd.count) {
		appendLocal(run.LBA)
		pl, err := md.backend.Fetch(p, run.LBA, run.Count)
		if err != nil {
			md.m.K.Tracef("mediator: fetch [%d,+%d) failed: %v", run.LBA, run.Count, err)
			md.finishSlot(p, cmd)
			return
		}
		md.vmmSlotOp(p, true, pl, false) // write-through to the local disk
		md.backend.MarkFilled(run.LBA, run.Count)
		md.stats.RedirectBytes.Add(run.Count * disk.SectorSize)
		parts = append(parts, pl)
		cursor = run.End()
	}
	appendLocal(cmd.lba + cmd.count)

	if !cmd.hintDiscard {
		md.copyToGuestPRDT(cmd, parts)
	}
	md.finishSlot(p, cmd)
}

// protectAccess hides the VMM's bitmap region from the guest.
func (md *AHCI) protectAccess(p *sim.Proc, cmd ahciCommand) {
	var sp *trace.Span
	if md.m.Trace != nil {
		sp = md.m.Trace.BeginChild(cmd.cause, md.m.Name, "mediator", "protect",
			trace.Int("lba", cmd.lba), trace.Int("count", cmd.count))
	}
	defer sp.End()
	trace.SwapCause(p, sp)
	md.acquire(p)
	defer md.release(p)
	if !cmd.write && !cmd.hintDiscard {
		zero := disk.Payload{LBA: cmd.lba, Count: cmd.count, Source: disk.Zero}
		md.copyToGuestPRDT(cmd, []disk.Payload{zero})
	}
	md.finishSlot(p, cmd)
}

// finishSlot completes a mediator-owned slot toward the guest: clear the
// emulated CI bit, then have the device read a dummy sector through the
// VMM slot with interrupts enabled so the completion interrupt is
// generated by real hardware ("4. Restart").
func (md *AHCI) finishSlot(p *sim.Proc, cmd ahciCommand) {
	md.redirCI &^= 1 << cmd.slot
	if md.VirtualIRQ {
		// Ablation path: virtual PxIS bit plus injected interrupt.
		md.m.World.RecordVMMWork(virtIRQCost)
		p.Sleep(virtIRQCost)
		md.virtIS |= ahci.ISDHRS
		if md.shPxIE&ahci.ISDHRS != 0 && md.shGHC&ahci.GHCInterruptEnable != 0 {
			md.hba.IRQ.Raise()
		}
		return
	}
	md.stats.DummyRestarts.Inc()
	dummy := disk.Payload{LBA: md.dummyLBA, Count: 1, Source: disk.Zero}
	md.vmmSlotOp(p, false, dummy, true)
	// Hold the device until the dummy drains (drive-cache hit) so the
	// next VMM request finds it idle.
	for uint32(md.device().IORead(p, ahci.PortBase+ahci.PxCI, 4))&(1<<vmmSlot) != 0 {
		md.stats.Polls.Inc()
		p.Sleep(md.backend.PollInterval())
	}
}

// copyToGuestPRDT is the virtual-DMA step: scatter assembled data into the
// guest's PRDT buffers parsed from its command table.
func (md *AHCI) copyToGuestPRDT(cmd ahciCommand, parts []disk.Payload) {
	data := md.dmaBuf[:0]
	for _, pl := range parts {
		data = pl.AppendTo(data)
	}
	md.dmaBuf = data[:0] // keep the grown backing array for the next command
	for i := 0; i < cmd.prdtl; i++ {
		prd := ahci.ReadPRD(md.m.Mem, cmd.ctba, i)
		n := prd.Bytes
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		md.m.Mem.Write(prd.Addr, data[:n])
		data = data[n:]
		if len(data) == 0 {
			break
		}
	}
}

// InsertWrite implements Mediator.
func (md *AHCI) InsertWrite(p *sim.Proc, payload disk.Payload, guard func() bool) bool {
	var sp *trace.Span
	if md.m.Trace != nil {
		sp = md.m.Trace.BeginChild(trace.Cause(p), md.m.Name, "mediator", "insert-write",
			trace.Int("lba", payload.LBA), trace.Int("count", payload.Count))
	}
	defer sp.End()
	md.acquire(p)
	defer md.release(p)
	if guard != nil && !guard() {
		return false
	}
	md.stats.Inserted.Inc()
	md.stats.InsertedBytes.Add(payload.Count * disk.SectorSize)
	md.vmmSlotOp(p, true, payload, false)
	return true
}

// InsertRead implements Mediator.
func (md *AHCI) InsertRead(p *sim.Proc, lba, count int64) (disk.Payload, bool) {
	var sp *trace.Span
	if md.m.Trace != nil {
		sp = md.m.Trace.BeginChild(trace.Cause(p), md.m.Name, "mediator", "insert-read",
			trace.Int("lba", lba), trace.Int("count", count))
	}
	defer sp.End()
	md.acquire(p)
	defer md.release(p)
	md.vmmSlotOp(p, false, disk.Payload{LBA: lba, Count: count}, false)
	return md.m.Disk.Store().ReadPayload(lba, count), true
}

var _ Mediator = (*AHCI)(nil)
var _ hwio.Tap = (*AHCI)(nil)

func (md *AHCI) String() string { return fmt.Sprintf("ahci-mediator(%s)", md.hba.Name) }
