package mediator_test

import (
	"bytes"
	"testing"

	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/machine"
	"repro/internal/mediator"
	"repro/internal/sim"
)

type ahciRig struct {
	k   *sim.Kernel
	m   *machine.Machine
	o   *guest.OS
	md  *mediator.AHCI
	be  *fakeBackend
	img *disk.Image
}

func newAHCIRig(t *testing.T) *ahciRig {
	t.Helper()
	k := sim.New(13)
	cfg := machine.RX200S6("m0")
	cfg.Storage = machine.StorageAHCI
	cfg.MemBytes = 256 << 20
	cfg.Disk.Sectors = 1 << 20
	m := machine.New(k, cfg)
	img := disk.NewSynthImage("ubuntu", 64<<20, 5)
	region := m.Firmware.ReserveForVMM(16 << 20)
	be := newFakeBackend(img)
	md := mediator.NewAHCI(m, be, region)
	md.Attach()
	o := guest.NewOS("ubuntu", m)
	return &ahciRig{k: k, m: m, o: o, md: md, be: be, img: img}
}

func (r *ahciRig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.k.Spawn("guest", func(p *sim.Proc) {
		if err := r.o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		fn(p)
	})
	r.k.Run()
}

func TestAHCIRedirectServesImageContent(t *testing.T) {
	r := newAHCIRig(t)
	var got []byte
	r.run(t, func(p *sim.Proc) {
		b, err := r.o.ReadSectors(p, 200, 16, false)
		if err != nil {
			t.Error(err)
			return
		}
		got = b
	})
	want := make([]byte, 16*disk.SectorSize)
	r.img.ReadAt(200, want)
	if !bytes.Equal(got, want) {
		t.Fatal("redirected AHCI read returned wrong content")
	}
	if r.md.Stats().Redirects.Value() != 1 {
		t.Fatalf("Redirects = %d", r.md.Stats().Redirects.Value())
	}
	// Write-through happened.
	local := make([]byte, 16*disk.SectorSize)
	r.m.Disk.Store().ReadAt(200, local)
	if !bytes.Equal(local, want) {
		t.Fatal("redirect did not write through")
	}
}

func TestAHCIConcurrentSlotsWithRedirects(t *testing.T) {
	// Several guest requests in flight at once: some redirect, some pass
	// through; all must complete with correct content.
	r := newAHCIRig(t)
	r.be.MarkFilled(0, 1000) // low sectors local
	r.m.Disk.Store().Write(0, 1000, r.img)
	results := make([]bool, 6)
	r.k.Spawn("init", func(p *sim.Proc) {
		if err := r.o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 6; i++ {
			i := i
			r.k.Spawn("io", func(wp *sim.Proc) {
				lba := int64(i) * 200 // alternates filled/unfilled regions
				if i%2 == 1 {
					lba = 2000 + int64(i)*500 // unfilled: needs redirect
				}
				b, err := r.o.ReadSectors(wp, lba, 8, false)
				if err != nil {
					t.Error(err)
					return
				}
				want := make([]byte, 8*disk.SectorSize)
				r.img.ReadAt(lba, want)
				if !bytes.Equal(b, want) {
					t.Errorf("slot %d content mismatch at %d", i, lba)
					return
				}
				results[i] = true
			})
		}
	})
	r.k.Run()
	for i, ok := range results {
		if !ok {
			t.Fatalf("concurrent request %d did not complete", i)
		}
	}
	if r.md.Stats().Redirects.Value() == 0 {
		t.Fatal("no redirects occurred")
	}
}

func TestAHCIGuestQueuedDuringInsertion(t *testing.T) {
	r := newAHCIRig(t)
	gsrc := disk.Synth{Seed: 4, Label: "guest"}
	var insertDone, guestDone sim.Time
	r.k.Spawn("guest", func(p *sim.Proc) {
		if err := r.o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		r.k.Spawn("vmm", func(vp *sim.Proc) {
			r.md.InsertWrite(vp, r.img.Payload(8000, 2048), nil)
			insertDone = vp.Now()
		})
		p.Sleep(2 * sim.Millisecond)
		if err := r.o.WriteSectors(p, disk.Payload{LBA: 8100, Count: 8, Source: gsrc}); err != nil {
			t.Error(err)
			return
		}
		guestDone = p.Now()
	})
	r.k.Run()
	if r.md.Stats().QueuedCommands.Value() != 1 {
		t.Fatalf("QueuedCommands = %d, want 1", r.md.Stats().QueuedCommands.Value())
	}
	if guestDone <= insertDone {
		t.Fatalf("guest write at %v before insertion end %v", guestDone, insertDone)
	}
	if got := r.m.Disk.Store().SourceAt(8100); got != disk.SectorSource(gsrc) {
		t.Fatal("queued guest write lost")
	}
}

func TestAHCIProtectedRegion(t *testing.T) {
	r := newAHCIRig(t)
	r.be.protected = mediator.Run{LBA: 900000, Count: 1024}
	secret := disk.Synth{Seed: 0x5EC, Label: "vmm-bitmap"}
	r.m.Disk.Store().Write(900000, 1024, secret)
	r.run(t, func(p *sim.Proc) {
		got, err := r.o.ReadSectors(p, 900000, 8, false)
		if err != nil {
			t.Error(err)
			return
		}
		for _, b := range got {
			if b != 0 {
				t.Error("protected region leaked through AHCI mediator")
				return
			}
		}
		if err := r.o.WriteSectors(p, disk.Payload{LBA: 900000, Count: 8, Source: disk.Synth{Seed: 1}}); err != nil {
			t.Error(err)
		}
	})
	if got := r.m.Disk.Store().SourceAt(900000); got != disk.SectorSource(secret) {
		t.Fatal("protected region overwritten")
	}
}

func TestAHCIDetachZeroTraps(t *testing.T) {
	r := newAHCIRig(t)
	r.be.MarkFilled(0, 1<<19)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.o.ReadSectors(p, 0, 8, true); err != nil {
			t.Error(err)
			return
		}
		if !r.md.Quiesced() {
			t.Error("not quiesced")
			return
		}
		r.md.Detach()
		before := r.m.IO.Traps
		if _, err := r.o.ReadSectors(p, 64, 8, true); err != nil {
			t.Error(err)
			return
		}
		if r.m.IO.Traps != before {
			t.Error("AHCI access trapped after detach")
		}
	})
}

func TestAHCIVMMSlotHiddenFromGuest(t *testing.T) {
	// While a VMM insertion is in flight, the guest's PxCI view must not
	// show the VMM's slot 31.
	r := newAHCIRig(t)
	r.k.Spawn("guest", func(p *sim.Proc) {
		if err := r.o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		r.k.Spawn("vmm", func(vp *sim.Proc) {
			r.md.InsertWrite(vp, r.img.Payload(4000, 2048), nil)
		})
		p.Sleep(3 * sim.Millisecond) // insertion in flight
		ci := r.m.IO.Read(p, 1, 0xF000_0000+0x100+0x38, 4)
		if ci&(1<<31) != 0 {
			t.Error("guest sees the VMM's command slot")
		}
	})
	r.k.Run()
}

func TestAHCIInsertReadRoundTrip(t *testing.T) {
	r := newAHCIRig(t)
	src := disk.Synth{Seed: 21, Label: "x"}
	r.run(t, func(p *sim.Proc) {
		if ok := r.md.InsertWrite(p, disk.Payload{LBA: 3000, Count: 64, Source: src}, nil); !ok {
			t.Error("insert write refused")
			return
		}
		pl, ok := r.md.InsertRead(p, 3000, 64)
		if !ok {
			t.Error("insert read refused")
			return
		}
		if pl.Source != disk.SectorSource(src) {
			t.Error("insert read returned wrong content")
		}
	})
}
