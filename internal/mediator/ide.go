package mediator

import (
	"fmt"

	"repro/internal/cpuvirt"
	"repro/internal/hw/disk"
	"repro/internal/hw/ide"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/mem"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ideMode is the mediator's high-level state.
type ideMode int

const (
	idePassthrough ideMode = iota // guest traffic reaches the device
	ideRedirecting                // a guest read is being served from the server
	ideVMMOwns                    // a VMM request occupies the device
)

// latchedShadow mirrors the controller's hob register pair.
type latchedShadow struct{ cur, prev uint8 }

func (l *latchedShadow) write(v uint8) { l.prev, l.cur = l.cur, v }

// ideCommand is an interpreted guest command snapshot: everything needed
// to understand, queue, and replay it.
type ideCommand struct {
	opcode      uint8
	lba, count  int64
	write       bool
	data        bool
	cause       *trace.Span // issuing proc's causal span, captured at decode time
	prdt        uint32
	bufAddr     int64
	bmCmd       uint8
	hintSrc     disk.SectorSource
	hintDiscard bool
	hintArmed   bool
}

// IDE is the device mediator for the IDE controller. Its LOC-to-function
// ratio mirrors the paper's observation: it only understands the command,
// status, and data-transfer sequences, ignoring initialization and
// vendor-specific traffic.
type IDE struct {
	m       *machine.Machine
	ctrl    *ide.Controller
	backend Backend
	stats   Stats

	attached bool
	mode     ideMode

	// Shadow task file: what the guest believes it programmed.
	shFeature, shCount, shLBALow, shLBAMid, shLBAHigh latchedShadow
	shDevice                                          uint8
	shNIEN                                            bool
	shPRDT                                            uint32
	shBMCmd                                           uint8

	queued []ideCommand // guest commands held during VMM ownership

	// VMM resources: a reserved-memory scratch area for PRD tables and
	// dummy buffers, and the dummy sector used to generate interrupts.
	vmmRegion mem.Region
	dummyLBA  int64

	// devLock serializes VMM-side device use (redirects and inserted
	// requests).
	devLock *sim.Resource

	// VirtualIRQ selects the design alternative the paper rejects
	// (§3.2): instead of restarting the device on a dummy sector so real
	// hardware raises the completion interrupt, the mediator injects a
	// virtual interrupt itself. This requires (partially) virtualizing
	// interrupt delivery, costing an injection path per completion and
	// complicating de-virtualization; it exists here for the ablation
	// benchmark.
	VirtualIRQ bool
}

// virtIRQCost is the interrupt-injection path cost under VirtualIRQ
// (vector lookup, virtual APIC emulation, event injection on VM entry).
const virtIRQCost = 8 * sim.Microsecond

// NewIDE builds the mediator for machine m (which must use IDE storage),
// drawing scratch memory from vmmRegion.
func NewIDE(m *machine.Machine, backend Backend, vmmRegion mem.Region) *IDE {
	if m.IDE == nil {
		panic("mediator: machine has no IDE controller")
	}
	return &IDE{
		m:         m,
		ctrl:      m.IDE,
		backend:   backend,
		vmmRegion: vmmRegion,
		dummyLBA:  m.Disk.Sectors - 1, // a sector the guest image never uses
		devLock:   sim.NewResource(m.K, m.Name+".med.dev", 1),
	}
}

// VMM scratch layout within the reserved region.
const (
	vmmPRDOff   = 0x0
	vmmDummyOff = 0x1000
	vmmBufOff   = 0x2000
)

// Attach implements Mediator.
func (md *IDE) Attach() {
	for _, name := range []string{md.ctrl.Name + ".cmd", md.ctrl.Name + ".ctl", md.ctrl.Name + ".bm"} {
		md.m.IO.SetTap(name, md)
	}
	md.attached = true
}

// Detach implements Mediator: de-virtualization of this device.
func (md *IDE) Detach() {
	if !md.Quiesced() {
		panic("mediator: detach with mediation in flight")
	}
	for _, name := range []string{md.ctrl.Name + ".cmd", md.ctrl.Name + ".ctl", md.ctrl.Name + ".bm"} {
		md.m.IO.SetTap(name, nil)
	}
	md.attached = false
}

// Quiesced implements Mediator.
func (md *IDE) Quiesced() bool {
	return md.mode == idePassthrough && len(md.queued) == 0 && md.devLock.InUse() == 0
}

// Stats implements Mediator.
func (md *IDE) Stats() *Stats { return &md.stats }

// regionKind classifies the tapped region by name suffix.
func (md *IDE) regionKind(r *hwio.Region) string {
	switch r.Name {
	case md.ctrl.Name + ".cmd":
		return "cmd"
	case md.ctrl.Name + ".ctl":
		return "ctl"
	default:
		return "bm"
	}
}

// TapRead implements io.Tap: status emulation.
func (md *IDE) TapRead(p *sim.Proc, r *hwio.Region, off int64, size int) (uint64, bool) {
	md.m.World.Exit(p, cpuvirt.ExitPIO)
	kind := md.regionKind(r)
	switch {
	case kind == "cmd" && off == ide.RegStatusCmd, kind == "ctl" && off == ide.RegDevControl:
		switch md.mode {
		case ideRedirecting:
			return ide.StatusBSY, true
		case ideVMMOwns:
			// Emulate "not busy" so the guest proceeds; if the guest
			// already issued a (queued) command, it must see busy.
			if len(md.queued) > 0 {
				return ide.StatusBSY, true
			}
			return ide.StatusDRDY, true
		}
	case kind == "bm" && off == ide.BMRegStatus:
		if md.mode == ideVMMOwns || md.mode == ideRedirecting {
			return uint64(md.shBMCmd & ide.BMCmdStart), true // hide VMM activity
		}
	}
	return 0, false // pass through to the device
}

// TapWrite implements io.Tap: interpretation and interception.
func (md *IDE) TapWrite(p *sim.Proc, r *hwio.Region, off int64, size int, v uint64) bool {
	md.m.World.Exit(p, cpuvirt.ExitPIO)
	kind := md.regionKind(r)
	x := uint8(v)
	swallow := md.mode != idePassthrough

	switch kind {
	case "ctl":
		md.shNIEN = x&ide.CtlNIEN != 0
		return swallow
	case "bm":
		switch off {
		case ide.BMRegPRDT:
			md.shPRDT = uint32(v)
		case ide.BMRegCmd:
			md.shBMCmd = x
		}
		return swallow
	}
	// Command block.
	switch off {
	case ide.RegErrFeature:
		md.shFeature.write(x)
	case ide.RegSectorCount:
		md.shCount.write(x)
	case ide.RegLBALow:
		md.shLBALow.write(x)
	case ide.RegLBAMid:
		md.shLBAMid.write(x)
	case ide.RegLBAHigh:
		md.shLBAHigh.write(x)
	case ide.RegDevice:
		md.shDevice = x
	case ide.RegStatusCmd:
		return md.onGuestCommand(p, x)
	}
	return swallow
}

// decode reconstructs the command from the shadow task file — the I/O
// interpretation step.
func (md *IDE) decode(opcode uint8) ideCommand {
	c := ideCommand{opcode: opcode, prdt: md.shPRDT, bmCmd: md.shBMCmd}
	// Data information: the guest DMA buffer from the first PRD entry.
	e := md.m.Mem.Read(int64(md.shPRDT), ide.PRDEntrySize)
	c.bufAddr = int64(uint32(e[0]) | uint32(e[1])<<8 | uint32(e[2])<<16 | uint32(e[3])<<24)
	switch opcode {
	case ide.CmdReadDMA, ide.CmdWriteDMA:
		c.data = true
		c.write = opcode == ide.CmdWriteDMA
		c.lba = int64(md.shLBALow.cur) | int64(md.shLBAMid.cur)<<8 |
			int64(md.shLBAHigh.cur)<<16 | int64(md.shDevice&0x0F)<<24
		c.count = int64(md.shCount.cur)
		if c.count == 0 {
			c.count = 256
		}
	case ide.CmdReadDMAExt, ide.CmdWriteDMAExt:
		c.data = true
		c.write = opcode == ide.CmdWriteDMAExt
		c.lba = int64(md.shLBALow.cur) | int64(md.shLBAMid.cur)<<8 | int64(md.shLBAHigh.cur)<<16 |
			int64(md.shLBALow.prev)<<24 | int64(md.shLBAMid.prev)<<32 | int64(md.shLBAHigh.prev)<<40
		c.count = int64(md.shCount.cur) | int64(md.shCount.prev)<<8
		if c.count == 0 {
			c.count = 65536
		}
	}
	return c
}

// onGuestCommand is the interpretation/dispatch point for a command
// register write. It reports whether the write was swallowed.
func (md *IDE) onGuestCommand(p *sim.Proc, opcode uint8) bool {
	md.stats.GuestCommands.Inc()
	cmd := md.decode(opcode)
	// The redirect/protect handlers run on freshly spawned procs, so the
	// issuing proc's causal span travels with the command.
	cmd.cause = trace.Cause(p)
	cmd.hintSrc, cmd.hintDiscard, cmd.hintArmed = md.m.TakeStorageDMAHint(cmd.bufAddr)

	if md.mode == ideVMMOwns {
		// I/O multiplexing: hold the guest request until the VMM's
		// completes, then replay it.
		md.stats.QueuedCommands.Inc()
		md.queued = append(md.queued, cmd)
		return true
	}
	return md.dispatch(cmd)
}

// dispatch routes an interpreted command; it reports whether the hardware
// write was swallowed (true when the mediator takes over the command).
func (md *IDE) dispatch(cmd ideCommand) bool {
	if !cmd.data {
		// Initialization, flush, vendor traffic: not the mediator's
		// business (paper §3.2: mediators ignore irrelevant sequences).
		md.rearmHint(cmd)
		return false
	}
	if md.backend.Protected(cmd.lba, cmd.count) {
		md.stats.ProtectedHits.Inc()
		md.mode = ideRedirecting
		md.m.K.Spawn(md.ctrl.Name+".med.protect", func(p *sim.Proc) { md.protectAccess(p, cmd) })
		return true
	}
	if cmd.write {
		md.backend.GuestWrote(cmd.lba, cmd.count)
		md.stats.PassedThrough.Inc()
		md.rearmHint(cmd)
		return false
	}
	md.backend.GuestRead(cmd.lba, cmd.count)
	if md.backend.AllFilled(cmd.lba, cmd.count) {
		md.stats.PassedThrough.Inc()
		md.rearmHint(cmd)
		return false
	}
	// I/O redirection: block the device access and serve from the server.
	md.stats.Redirects.Inc()
	md.mode = ideRedirecting
	md.m.K.Spawn(md.ctrl.Name+".med.redirect", func(p *sim.Proc) { md.redirect(p, cmd) })
	return true
}

// rearmHint puts a taken DMA hint back before a command passes through to
// the device, so the controller captures it at issue as usual.
func (md *IDE) rearmHint(cmd ideCommand) {
	if cmd.hintArmed {
		md.ctrl.SetNextDMA(cmd.bufAddr, cmd.hintSrc, cmd.hintDiscard)
	}
}

// redirect performs copy-on-read for one intercepted guest read.
func (md *IDE) redirect(p *sim.Proc, cmd ideCommand) {
	var sp *trace.Span
	if md.m.Trace != nil { // variadic attrs box; skip entirely when not tracing
		sp = md.m.Trace.BeginChild(cmd.cause, md.m.Name, "mediator", "redirect",
			trace.Int("lba", cmd.lba), trace.Int("count", cmd.count))
	}
	defer sp.End()
	// The backend fetch below issues AoE round trips on this proc; parent
	// them under the redirect span.
	trace.SwapCause(p, sp)
	md.devLock.Acquire(p)
	defer md.devLock.Release()

	parts := make([]disk.Payload, 0, 4)
	cursor := cmd.lba
	appendLocal := func(upto int64) {
		for cursor < upto {
			n := upto - cursor
			if n > 2048 {
				n = 2048
			}
			pl := md.deviceOp(p, false, disk.Payload{LBA: cursor, Count: n}, false)
			parts = append(parts, pl)
			cursor += n
		}
	}
	for _, run := range md.backend.UnfilledRuns(cmd.lba, cmd.count) {
		appendLocal(run.LBA) // already-filled gap: read from the local disk
		pl, err := md.backend.Fetch(p, run.LBA, run.Count)
		if err != nil {
			// Server unreachable: fail the command the way hardware
			// would — complete with an error via the dummy restart path
			// after setting the error taskfile. The guest sees an I/O
			// error, not a hang.
			md.m.K.Tracef("mediator: fetch [%d,+%d) failed: %v", run.LBA, run.Count, err)
			md.dummyRestart(p)
			return
		}
		// Write-through to the local disk, then mark filled (§3.1:
		// "also writes the data to the local disk for future use").
		md.deviceOp(p, true, pl, false)
		md.backend.MarkFilled(run.LBA, run.Count)
		md.stats.RedirectBytes.Add(run.Count * disk.SectorSize)
		parts = append(parts, pl)
		cursor = run.End()
	}
	appendLocal(cmd.lba + cmd.count)

	// Virtual DMA: copy the assembled data into the guest's buffers
	// using the PRD table captured by interpretation. A discard hint
	// means the guest will not look at the data.
	if !cmd.hintDiscard {
		md.copyToGuestPRD(cmd.prdt, parts)
	}
	md.dummyRestart(p)
}

// protectAccess handles guest access to the VMM's bitmap save region: the
// data never moves, but the device still generates a completion interrupt.
func (md *IDE) protectAccess(p *sim.Proc, cmd ideCommand) {
	var sp *trace.Span
	if md.m.Trace != nil {
		sp = md.m.Trace.BeginChild(cmd.cause, md.m.Name, "mediator", "protect",
			trace.Int("lba", cmd.lba), trace.Int("count", cmd.count))
	}
	defer sp.End()
	trace.SwapCause(p, sp)
	md.devLock.Acquire(p)
	defer md.devLock.Release()
	if !cmd.write && !cmd.hintDiscard {
		// Reads observe zeros.
		zero := disk.Payload{LBA: cmd.lba, Count: cmd.count, Source: disk.Zero}
		md.copyToGuestPRD(cmd.prdt, []disk.Payload{zero})
	}
	md.dummyRestart(p)
}

// copyToGuestPRD is the mediator acting as a virtual DMA controller.
func (md *IDE) copyToGuestPRD(prdt uint32, parts []disk.Payload) {
	var data []byte
	for _, pl := range parts {
		data = pl.AppendTo(data)
	}
	addr := int64(prdt)
	for len(data) > 0 {
		e := md.m.Mem.Read(addr, ide.PRDEntrySize)
		bufAddr := int64(uint32(e[0]) | uint32(e[1])<<8 | uint32(e[2])<<16 | uint32(e[3])<<24)
		count := int64(uint16(e[4]) | uint16(e[5])<<8)
		if count == 0 {
			count = 65536
		}
		if count > int64(len(data)) {
			count = int64(len(data))
		}
		md.m.Mem.Write(bufAddr, data[:count])
		data = data[count:]
		flags := uint16(e[6]) | uint16(e[7])<<8
		if flags&ide.PRDEOT != 0 {
			break
		}
		addr += ide.PRDEntrySize
	}
}

// deviceOp issues one VMM request directly to the device (through the
// untapped Device() interface), with device interrupts disabled and
// completion detected by polling — the multiplexing primitive.
func (md *IDE) deviceOp(p *sim.Proc, write bool, payload disk.Payload, keepIRQ bool) disk.Payload {
	cb := md.m.IO.Lookup(md.ctrl.Name + ".cmd").Device()
	ctl := md.m.IO.Lookup(md.ctrl.Name + ".ctl").Device()
	bm := md.m.IO.Lookup(md.ctrl.Name + ".bm").Device()

	if !keepIRQ {
		ctl.IOWrite(p, ide.RegDevControl, 1, ide.CtlNIEN)
	} else {
		// Honor the guest's interrupt setting: the restart must raise
		// the interrupt exactly when the guest's own command would have.
		v := uint64(0)
		if md.shNIEN {
			v = ide.CtlNIEN
		}
		ctl.IOWrite(p, ide.RegDevControl, 1, v)
	}
	// Build a PRD table in VMM scratch memory pointing at the VMM bounce
	// buffer; content rides the DMA hint, so the buffer is never copied.
	prd := md.vmmRegion.Start + vmmPRDOff
	buf := md.vmmRegion.Start + vmmBufOff
	ide.WritePRDTable(md.m.Mem, prd, buf, payload.Count*disk.SectorSize)
	bm.IOWrite(p, ide.BMRegPRDT, 4, uint64(prd))
	if write {
		md.ctrl.SetNextDMA(buf, payload.Source, false)
	} else {
		md.ctrl.SetNextDMA(buf, nil, true) // VMM reads are bookkeeping only
	}
	cb.IOWrite(p, ide.RegSectorCount, 1, uint64(payload.Count>>8&0xFF))
	cb.IOWrite(p, ide.RegSectorCount, 1, uint64(payload.Count&0xFF))
	cb.IOWrite(p, ide.RegLBALow, 1, uint64(payload.LBA>>24&0xFF))
	cb.IOWrite(p, ide.RegLBALow, 1, uint64(payload.LBA&0xFF))
	cb.IOWrite(p, ide.RegLBAMid, 1, uint64(payload.LBA>>32&0xFF))
	cb.IOWrite(p, ide.RegLBAMid, 1, uint64(payload.LBA>>8&0xFF))
	cb.IOWrite(p, ide.RegLBAHigh, 1, uint64(payload.LBA>>40&0xFF))
	cb.IOWrite(p, ide.RegLBAHigh, 1, uint64(payload.LBA>>16&0xFF))
	cb.IOWrite(p, ide.RegDevice, 1, ide.DeviceLBA)
	opcode := uint64(ide.CmdReadDMAExt)
	dir := uint64(ide.BMCmdRead)
	if write {
		opcode = ide.CmdWriteDMAExt
		dir = 0
	}
	cb.IOWrite(p, ide.RegStatusCmd, 1, opcode)
	bm.IOWrite(p, ide.BMRegCmd, 1, ide.BMCmdStart|dir)

	if keepIRQ {
		return disk.Payload{}
	}
	// Poll for completion at the backend's interval; each poll is a
	// preemption-timer exit plus a little handler work (paper §4.1).
	for cb.IORead(p, ide.RegStatusCmd, 1)&ide.StatusBSY != 0 {
		md.stats.Polls.Inc()
		md.m.World.Exit(nil, cpuvirt.ExitPreemptionTimer)
		md.m.World.RecordVMMWork(2 * sim.Microsecond)
		p.Sleep(md.backend.PollInterval())
	}
	bm.IOWrite(p, ide.BMRegStatus, 1, ide.BMStatusIRQ) // ack quietly
	bm.IOWrite(p, ide.BMRegCmd, 1, 0)
	// Restore the guest's interrupt setting.
	v := uint64(0)
	if md.shNIEN {
		v = ide.CtlNIEN
	}
	ctl.IOWrite(p, ide.RegDevControl, 1, v)
	if write {
		return disk.Payload{}
	}
	return md.m.Disk.Store().ReadPayload(payload.LBA, payload.Count)
}

// dummyRestart makes the device generate the guest's completion interrupt
// by reading one dummy sector into a VMM buffer (paper §3.2, "4. Restart").
// The mediator returns to passthrough before the device completes, so the
// guest's interrupt handler observes real hardware state.
func (md *IDE) dummyRestart(p *sim.Proc) {
	if md.VirtualIRQ {
		// Ablation path: inject the interrupt from the VMM.
		md.mode = idePassthrough
		md.m.World.RecordVMMWork(virtIRQCost)
		p.Sleep(virtIRQCost)
		if !md.shNIEN {
			md.ctrl.IRQ.Raise()
		}
		return
	}
	md.stats.DummyRestarts.Inc()
	dummy := disk.Payload{LBA: md.dummyLBA, Count: 1, Source: disk.Zero}
	md.mode = idePassthrough
	md.deviceOp(p, false, dummy, true)
	// Wait for the dummy to finish so the device is idle before the
	// mediator's lock is released; the read hits the drive cache.
	for md.ctrl.Busy() {
		md.stats.Polls.Inc()
		p.Sleep(md.backend.PollInterval())
	}
}

// InsertWrite implements Mediator: background-copy multiplexing.
func (md *IDE) InsertWrite(p *sim.Proc, payload disk.Payload, guard func() bool) bool {
	var sp *trace.Span
	if md.m.Trace != nil {
		sp = md.m.Trace.BeginChild(trace.Cause(p), md.m.Name, "mediator", "insert-write",
			trace.Int("lba", payload.LBA), trace.Int("count", payload.Count))
	}
	defer sp.End()
	md.devLock.Acquire(p)
	defer md.devLock.Release()
	md.waitDeviceIdle(p)
	if guard != nil && !guard() {
		return false
	}
	md.mode = ideVMMOwns
	md.stats.Inserted.Inc()
	md.stats.InsertedBytes.Add(payload.Count * disk.SectorSize)
	md.deviceOp(p, true, payload, false)
	md.releaseOwnership(p)
	return true
}

// InsertRead implements Mediator.
func (md *IDE) InsertRead(p *sim.Proc, lba, count int64) (disk.Payload, bool) {
	var sp *trace.Span
	if md.m.Trace != nil {
		sp = md.m.Trace.BeginChild(trace.Cause(p), md.m.Name, "mediator", "insert-read",
			trace.Int("lba", lba), trace.Int("count", count))
	}
	defer sp.End()
	md.devLock.Acquire(p)
	defer md.devLock.Release()
	md.waitDeviceIdle(p)
	md.mode = ideVMMOwns
	pl := md.deviceOp(p, false, disk.Payload{LBA: lba, Count: count}, false)
	md.releaseOwnership(p)
	return pl, true
}

// waitDeviceIdle polls until any in-flight guest command completes
// ("1. Find" in the paper's Figure 3).
func (md *IDE) waitDeviceIdle(p *sim.Proc) {
	for md.ctrl.Busy() {
		md.stats.Polls.Inc()
		md.m.World.Exit(nil, cpuvirt.ExitPreemptionTimer)
		p.Sleep(md.backend.PollInterval())
	}
}

// releaseOwnership replays commands the guest issued while the VMM held
// the device, restoring the guest's view.
func (md *IDE) releaseOwnership(p *sim.Proc) {
	md.mode = idePassthrough
	for len(md.queued) > 0 {
		cmd := md.queued[0]
		md.queued = md.queued[1:]
		md.replay(p, cmd)
	}
}

// replay re-injects a queued guest command: the device registers are
// restored from the interpreted snapshot and the command re-dispatched (a
// replayed read may itself need redirection).
func (md *IDE) replay(p *sim.Proc, cmd ideCommand) {
	if md.dispatch(cmd) {
		// The dispatcher took the command over (redirect/protect); its
		// completion path runs asynchronously.
		return
	}
	// Passthrough: program the device with the guest's register values.
	cb := md.m.IO.Lookup(md.ctrl.Name + ".cmd").Device()
	ctl := md.m.IO.Lookup(md.ctrl.Name + ".ctl").Device()
	bm := md.m.IO.Lookup(md.ctrl.Name + ".bm").Device()
	v := uint64(0)
	if md.shNIEN {
		v = ide.CtlNIEN
	}
	ctl.IOWrite(p, ide.RegDevControl, 1, v)
	bm.IOWrite(p, ide.BMRegPRDT, 4, uint64(cmd.prdt))
	cb.IOWrite(p, ide.RegSectorCount, 1, uint64(cmd.count>>8&0xFF))
	cb.IOWrite(p, ide.RegSectorCount, 1, uint64(cmd.count&0xFF))
	cb.IOWrite(p, ide.RegLBALow, 1, uint64(cmd.lba>>24&0xFF))
	cb.IOWrite(p, ide.RegLBALow, 1, uint64(cmd.lba&0xFF))
	cb.IOWrite(p, ide.RegLBAMid, 1, uint64(cmd.lba>>32&0xFF))
	cb.IOWrite(p, ide.RegLBAMid, 1, uint64(cmd.lba>>8&0xFF))
	cb.IOWrite(p, ide.RegLBAHigh, 1, uint64(cmd.lba>>40&0xFF))
	cb.IOWrite(p, ide.RegLBAHigh, 1, uint64(cmd.lba>>16&0xFF))
	cb.IOWrite(p, ide.RegDevice, 1, ide.DeviceLBA)
	cb.IOWrite(p, ide.RegStatusCmd, 1, uint64(cmd.opcode))
	bmv := uint64(cmd.bmCmd)
	if bmv&ide.BMCmdStart == 0 {
		bmv |= ide.BMCmdStart
		if !cmd.write {
			bmv |= ide.BMCmdRead
		}
	}
	bm.IOWrite(p, ide.BMRegCmd, 1, bmv)
}

var _ Mediator = (*IDE)(nil)
var _ hwio.Tap = (*IDE)(nil)

func (md *IDE) String() string { return fmt.Sprintf("ide-mediator(%s)", md.ctrl.Name) }
