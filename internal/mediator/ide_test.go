package mediator_test

import (
	"bytes"
	"testing"

	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/machine"
	"repro/internal/mediator"
	"repro/internal/sim"
)

// fakeBackend implements mediator.Backend over a plain filled-set, serving
// fetches straight from an image with a fixed latency.
type fakeBackend struct {
	img       *disk.Image
	filled    map[int64]bool
	protected mediator.Run
	fetches   int
	guestR    int
	guestW    int
	fetchLat  sim.Duration
}

func newFakeBackend(img *disk.Image) *fakeBackend {
	return &fakeBackend{img: img, filled: make(map[int64]bool), fetchLat: 300 * sim.Microsecond}
}

func (f *fakeBackend) AllFilled(lba, count int64) bool {
	for i := lba; i < lba+count; i++ {
		if !f.filled[i] {
			return false
		}
	}
	return true
}

func (f *fakeBackend) UnfilledRuns(lba, count int64) []mediator.Run {
	var runs []mediator.Run
	for i := lba; i < lba+count; i++ {
		if f.filled[i] {
			continue
		}
		if n := len(runs); n > 0 && runs[n-1].End() == i {
			runs[n-1].Count++
		} else {
			runs = append(runs, mediator.Run{LBA: i, Count: 1})
		}
	}
	return runs
}

func (f *fakeBackend) Fetch(p *sim.Proc, lba, count int64) (disk.Payload, error) {
	f.fetches++
	p.Sleep(f.fetchLat)
	return f.img.Payload(lba, count), nil
}

func (f *fakeBackend) MarkFilled(lba, count int64) {
	for i := lba; i < lba+count; i++ {
		f.filled[i] = true
	}
}

func (f *fakeBackend) GuestWrote(lba, count int64) {
	f.guestW++
	f.MarkFilled(lba, count)
}

func (f *fakeBackend) GuestRead(_, _ int64)       { f.guestR++ }
func (f *fakeBackend) PollInterval() sim.Duration { return 100 * sim.Microsecond }
func (f *fakeBackend) Protected(lba, count int64) bool {
	return f.protected.Count > 0 && lba < f.protected.End() && f.protected.LBA < lba+count
}

type ideRig struct {
	k   *sim.Kernel
	m   *machine.Machine
	o   *guest.OS
	md  *mediator.IDE
	be  *fakeBackend
	img *disk.Image
}

func newIDERig(t *testing.T) *ideRig {
	t.Helper()
	k := sim.New(7)
	cfg := machine.RX200S6("m0")
	cfg.Storage = machine.StorageIDE
	cfg.MemBytes = 256 << 20
	cfg.Disk.Sectors = 1 << 20
	m := machine.New(k, cfg)
	img := disk.NewSynthImage("ubuntu", 64<<20, 5)
	vmmRegion := m.Firmware.ReserveForVMM(16 << 20)
	be := newFakeBackend(img)
	md := mediator.NewIDE(m, be, vmmRegion)
	md.Attach()
	o := guest.NewOS("ubuntu", m)
	return &ideRig{k: k, m: m, o: o, md: md, be: be, img: img}
}

func (r *ideRig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.k.Spawn("guest", func(p *sim.Proc) {
		if err := r.o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		fn(p)
	})
	r.k.Run()
}

func TestRedirectServesImageContent(t *testing.T) {
	r := newIDERig(t)
	var got []byte
	r.run(t, func(p *sim.Proc) {
		b, err := r.o.ReadSectors(p, 100, 16, false)
		if err != nil {
			t.Error(err)
			return
		}
		got = b
	})
	want := make([]byte, 16*disk.SectorSize)
	r.img.ReadAt(100, want)
	if !bytes.Equal(got, want) {
		t.Fatal("redirected read returned wrong content")
	}
	if r.md.Stats().Redirects.Value() != 1 {
		t.Fatalf("Redirects = %d, want 1", r.md.Stats().Redirects.Value())
	}
	if r.md.Stats().DummyRestarts.Value() != 1 {
		t.Fatalf("DummyRestarts = %d, want 1", r.md.Stats().DummyRestarts.Value())
	}
	if !r.be.AllFilled(100, 16) {
		t.Fatal("redirect did not mark blocks filled")
	}
	// Copy-on-read must have written through to the local disk.
	local := make([]byte, 16*disk.SectorSize)
	r.m.Disk.Store().ReadAt(100, local)
	if !bytes.Equal(local, want) {
		t.Fatal("redirect did not write through to the local disk")
	}
}

func TestSecondReadIsLocal(t *testing.T) {
	r := newIDERig(t)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.o.ReadSectors(p, 100, 16, false); err != nil {
			t.Error(err)
			return
		}
		if _, err := r.o.ReadSectors(p, 100, 16, false); err != nil {
			t.Error(err)
		}
	})
	if r.md.Stats().Redirects.Value() != 1 {
		t.Fatalf("Redirects = %d, want 1 (second read local)", r.md.Stats().Redirects.Value())
	}
	if r.be.fetches != 1 {
		t.Fatalf("fetches = %d, want 1", r.be.fetches)
	}
}

func TestPartiallyFilledReadMerges(t *testing.T) {
	r := newIDERig(t)
	// Pre-fill sectors 104..108 with guest data on the local disk.
	guestSrc := disk.Synth{Seed: 99, Label: "guest-data"}
	r.run(t, func(p *sim.Proc) {
		if err := r.o.WriteSectors(p, disk.Payload{LBA: 104, Count: 4, Source: guestSrc}); err != nil {
			t.Error(err)
			return
		}
		got, err := r.o.ReadSectors(p, 100, 16, false)
		if err != nil {
			t.Error(err)
			return
		}
		// Expected: image content except 104..108 which is guest data.
		want := make([]byte, 16*disk.SectorSize)
		r.img.ReadAt(100, want)
		guestSrc.Fill(104, want[4*disk.SectorSize:8*disk.SectorSize])
		if !bytes.Equal(got, want) {
			t.Error("merged read lost guest-written data")
		}
	})
}

func TestGuestWritePassesThrough(t *testing.T) {
	r := newIDERig(t)
	src := disk.Synth{Seed: 3, Label: "w"}
	r.run(t, func(p *sim.Proc) {
		if err := r.o.WriteSectors(p, disk.Payload{LBA: 500, Count: 8, Source: src}); err != nil {
			t.Error(err)
		}
	})
	if r.md.Stats().Redirects.Value() != 0 {
		t.Fatal("write triggered a redirect")
	}
	if r.be.guestW != 1 {
		t.Fatalf("GuestWrote calls = %d, want 1", r.be.guestW)
	}
	if got := r.m.Disk.Store().SourceAt(500); got != disk.SectorSource(src) {
		t.Fatal("guest write did not reach the local disk")
	}
}

func TestInsertWriteWhileGuestIdle(t *testing.T) {
	r := newIDERig(t)
	irqsBefore := r.m.StorageIRQ.Raised
	r.run(t, func(p *sim.Proc) {
		ok := r.md.InsertWrite(p, r.img.Payload(2000, 128), nil)
		if !ok {
			t.Error("InsertWrite refused")
		}
	})
	if r.m.Disk.Store().SourceAt(2000) != disk.SectorSource(r.img) {
		t.Fatal("inserted write did not land")
	}
	// The VMM's request must not interrupt the guest. (Driver init's
	// IDENTIFY raises one IRQ; nothing after.)
	if extra := r.m.StorageIRQ.Raised - irqsBefore; extra != 1 {
		t.Fatalf("IRQs raised = %d, want 1 (identify only)", extra)
	}
	if r.md.Stats().Polls.Value() == 0 {
		t.Fatal("insertion did not poll for completion")
	}
}

func TestInsertWriteGuardAborts(t *testing.T) {
	r := newIDERig(t)
	r.run(t, func(p *sim.Proc) {
		if r.md.InsertWrite(p, r.img.Payload(2000, 8), func() bool { return false }) {
			t.Error("guarded InsertWrite proceeded")
		}
	})
	if r.m.Disk.Store().SourceAt(2000) != disk.Zero {
		t.Fatal("aborted insertion still wrote")
	}
}

func TestGuestCommandQueuedDuringInsertion(t *testing.T) {
	r := newIDERig(t)
	gsrc := disk.Synth{Seed: 4, Label: "guest"}
	var insertDone, guestDone sim.Time
	r.k.Spawn("guest", func(p *sim.Proc) {
		if err := r.o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		// Start a large VMM insertion, then immediately issue a guest
		// write; the write must be queued and execute after.
		r.k.Spawn("vmm", func(vp *sim.Proc) {
			r.md.InsertWrite(vp, r.img.Payload(4000, 2048), nil) // 1 MB
			insertDone = vp.Now()
		})
		p.Sleep(2 * sim.Millisecond) // insertion now owns the device
		if err := r.o.WriteSectors(p, disk.Payload{LBA: 4100, Count: 8, Source: gsrc}); err != nil {
			t.Error(err)
			return
		}
		guestDone = p.Now()
	})
	r.k.Run()
	if r.md.Stats().QueuedCommands.Value() != 1 {
		t.Fatalf("QueuedCommands = %d, want 1", r.md.Stats().QueuedCommands.Value())
	}
	if guestDone <= insertDone {
		t.Fatalf("guest write finished at %v before insertion at %v", guestDone, insertDone)
	}
	// The guest write targeted a range inside the VMM's insertion and
	// executed after it: guest data must win.
	if got := r.m.Disk.Store().SourceAt(4100); got != disk.SectorSource(gsrc) {
		t.Fatalf("store source = %s, want guest data", got.Name())
	}
	if got := r.m.Disk.Store().SourceAt(4099); got != disk.SectorSource(r.img) {
		t.Fatal("VMM data missing around the guest write")
	}
}

func TestProtectedRegionHidden(t *testing.T) {
	r := newIDERig(t)
	r.be.protected = mediator.Run{LBA: 900000, Count: 1024}
	// Seed the protected region with "bitmap" content.
	secret := disk.Synth{Seed: 0x5EC, Label: "vmm-bitmap"}
	r.m.Disk.Store().Write(900000, 1024, secret)
	r.run(t, func(p *sim.Proc) {
		got, err := r.o.ReadSectors(p, 900000, 8, false)
		if err != nil {
			t.Error(err)
			return
		}
		for _, b := range got {
			if b != 0 {
				t.Error("protected region leaked data to the guest")
				return
			}
		}
		// Guest write to the protected region must be dropped.
		if err := r.o.WriteSectors(p, disk.Payload{LBA: 900000, Count: 8, Source: disk.Synth{Seed: 1}}); err != nil {
			t.Error(err)
		}
	})
	if got := r.m.Disk.Store().SourceAt(900000); got != disk.SectorSource(secret) {
		t.Fatal("guest write clobbered the protected region")
	}
	if r.md.Stats().ProtectedHits.Value() != 2 {
		t.Fatalf("ProtectedHits = %d, want 2", r.md.Stats().ProtectedHits.Value())
	}
}

func TestDetachRestoresBareMetal(t *testing.T) {
	r := newIDERig(t)
	r.be.MarkFilled(0, 1<<19) // pretend deployment finished for low half
	r.run(t, func(p *sim.Proc) {
		if _, err := r.o.ReadSectors(p, 0, 8, true); err != nil {
			t.Error(err)
			return
		}
		if !r.md.Quiesced() {
			t.Error("mediator not quiesced while guest idle")
			return
		}
		r.md.Detach()
		trapsAfter := r.m.IO.Traps
		if _, err := r.o.ReadSectors(p, 64, 8, true); err != nil {
			t.Error(err)
			return
		}
		if r.m.IO.Traps != trapsAfter {
			t.Error("guest access trapped after detach")
		}
	})
}

func TestExitsChargedDuringMediation(t *testing.T) {
	r := newIDERig(t)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.o.ReadSectors(p, 0, 8, true); err != nil {
			t.Error(err)
		}
	})
	if r.m.World.TotalExits() == 0 {
		t.Fatal("no VM exits charged for tapped I/O")
	}
}
