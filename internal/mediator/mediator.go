// Package mediator implements BMcast's device mediators: the components
// that let physical storage controllers be shared between the guest OS and
// the VMM while remaining directly exposed, and then seamlessly
// de-virtualized (paper §3.2).
//
// A mediator performs three tasks built on register-level I/O
// interpretation:
//
//   - I/O interpretation: it taps the controller's registers, shadows the
//     task file / command list, and reconstructs command, status, and data
//     (DMA buffer) information from the traffic it sees.
//   - I/O redirection (copy-on-read): a guest read touching unfilled
//     blocks is blocked before reaching the device, satisfied from the
//     storage server, written through to the local disk, copied into the
//     guest's DMA buffers by the mediator acting as a virtual DMA
//     controller, and completed by restarting the device on a one-sector
//     dummy read so the device itself raises the completion interrupt.
//   - I/O multiplexing (background copy): the VMM's own requests are
//     inserted when the device is idle, with device interrupts disabled
//     and completion detected by polling; guest requests arriving
//     meanwhile are queued behind an emulated idle status and replayed
//     afterwards.
package mediator

import (
	"repro/internal/hw/disk"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Run is a contiguous sector range (mirror of core.Run to keep the
// dependency pointing from the VMM to the mediator).
type Run struct {
	LBA   int64
	Count int64
}

// End reports the first sector past the run.
func (r Run) End() int64 { return r.LBA + r.Count }

// Backend is what the VMM provides to a mediator: block state, server
// fetches, and polling policy.
type Backend interface {
	// AllFilled reports whether every sector of the range already holds
	// valid local data.
	AllFilled(lba, count int64) bool
	// UnfilledRuns returns the unfilled sub-ranges of the range.
	UnfilledRuns(lba, count int64) []Run
	// Fetch retrieves a range from the storage server, blocking.
	Fetch(p *sim.Proc, lba, count int64) (disk.Payload, error)
	// MarkFilled records that the range now holds valid local data.
	MarkFilled(lba, count int64)
	// GuestWrote records a guest write (fills blocks with guest data and
	// feeds the moderation's guest-I/O-frequency estimate).
	GuestWrote(lba, count int64)
	// GuestRead feeds the moderation's guest-I/O-frequency estimate.
	GuestRead(lba, count int64)
	// PollInterval is the current device polling interval, derived from
	// recent network round-trip and I/O latency (paper §4.1).
	PollInterval() sim.Duration
	// Protected reports whether the range intersects the VMM's on-disk
	// bitmap save area, which must be hidden from the guest (§3.3).
	Protected(lba, count int64) bool
}

// Mediator is the per-controller mediation interface used by the VMM.
type Mediator interface {
	// Attach installs the mediator's taps; the controller's registers
	// start trapping.
	Attach()
	// Detach removes the taps — the de-virtualization step. It must only
	// be called when Quiesced reports true.
	Detach()
	// InsertWrite performs I/O multiplexing: write the payload to the
	// local disk as a VMM request. The guard, if non-nil, runs after the
	// device has been acquired and can cancel the insertion (used for
	// the atomic bitmap re-check); InsertWrite reports whether the write
	// was performed.
	InsertWrite(p *sim.Proc, payload disk.Payload, guard func() bool) bool
	// InsertRead performs I/O multiplexing for a VMM read of the local
	// disk (used for bitmap recovery at boot).
	InsertRead(p *sim.Proc, lba, count int64) (disk.Payload, bool)
	// Quiesced reports whether the mediator holds no in-flight mediated
	// state, i.e. a consistent hardware state for de-virtualization.
	Quiesced() bool
	// Stats exposes mediation counters.
	Stats() *Stats
}

// Stats are the mediation counters every mediator maintains.
type Stats struct {
	GuestCommands  metrics.Counter // guest commands observed
	PassedThrough  metrics.Counter // data commands passed to the device untouched
	Redirects      metrics.Counter // copy-on-read redirections
	RedirectBytes  metrics.Counter
	Inserted       metrics.Counter // VMM requests multiplexed in
	InsertedBytes  metrics.Counter
	QueuedCommands metrics.Counter // guest commands queued during insertion
	DummyRestarts  metrics.Counter // interrupt-generation dummy reads
	Polls          metrics.Counter // polling iterations
	ProtectedHits  metrics.Counter // guest accesses to the protected area
}

// Register adopts the mediator's counters into reg under "mediator.*"
// names labeled with the node. No-op on a nil registry.
func (s *Stats) Register(reg *metrics.Registry, node string) {
	l := metrics.L("node", node)
	reg.RegisterCounter("mediator.guest_commands", &s.GuestCommands, l)
	reg.RegisterCounter("mediator.passed_through", &s.PassedThrough, l)
	reg.RegisterCounter("mediator.redirects", &s.Redirects, l)
	reg.RegisterCounter("mediator.redirect_bytes", &s.RedirectBytes, l)
	reg.RegisterCounter("mediator.inserted", &s.Inserted, l)
	reg.RegisterCounter("mediator.inserted_bytes", &s.InsertedBytes, l)
	reg.RegisterCounter("mediator.queued_commands", &s.QueuedCommands, l)
	reg.RegisterCounter("mediator.dummy_restarts", &s.DummyRestarts, l)
	reg.RegisterCounter("mediator.polls", &s.Polls, l)
	reg.RegisterCounter("mediator.protected_hits", &s.ProtectedHits, l)
}
