package mediator

import (
	"repro/internal/cpuvirt"
	"repro/internal/ethernet"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/mem"
	"repro/internal/hw/nic"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// SharedNIC is the §6 alternative the paper implements but does not
// deploy: a device mediator that lets the guest and VMM share one NIC.
//
// The mediator maintains shadow transmit/receive rings in VMM memory and
// points the physical NIC at them; the guest's rings stay in guest memory
// and are virtualized — the mediator copies descriptors between guest and
// shadow rings, interleaving its own frames into the shadow TX ring, and
// demultiplexes received frames by EtherType (AoE to the VMM, everything
// else to the guest). Guest register accesses to the ring bank trap; the
// head/tail registers the guest sees are emulated.
//
// The paper's reasons for preferring a dedicated NIC are visible here:
// every guest TDT write costs a trap plus descriptor copying, receive
// demultiplexing adds latency and jitter to guest traffic, and bulk VMM
// transfers contend with the guest for the wire.
type SharedNIC struct {
	m       *machine.Machine
	ring    *nic.RingNIC
	regName string

	attached bool

	// Guest-visible (virtualized) ring state.
	gTDBA, gRDBA uint64
	gTDLEN       uint32
	gRDLEN       uint32
	gTDH, gTDT   uint32
	gRDH, gRDT   uint32
	gCTRL        uint32
	gIMS         uint32

	// Shadow rings in VMM memory.
	sTXBase, sRXBase uint64
	sTXLen, sRXLen   uint32
	sTDT             uint32
	sRDT             uint32
	sRDH             uint32 // VMM's own consumption cursor of the shadow RX ring

	// VMM-side receive queue (demuxed AoE frames) and transmit staging.
	vmmRx     []*ethernet.Frame
	onReceive func(*ethernet.Frame)
	vmmBufSeq int64

	// Stats.
	GuestTxFrames metrics.Counter
	GuestRxFrames metrics.Counter
	VMMTxFrames   metrics.Counter
	VMMRxFrames   metrics.Counter
	Traps         metrics.Counter
}

// Instrument adopts the shared-NIC mediator's counters into reg under
// "mediator.nic.*" names labeled with the node. No-op on a nil registry.
func (md *SharedNIC) Instrument(reg *metrics.Registry, node string) {
	l := metrics.L("node", node)
	reg.RegisterCounter("mediator.nic.guest_tx_frames", &md.GuestTxFrames, l)
	reg.RegisterCounter("mediator.nic.guest_rx_frames", &md.GuestRxFrames, l)
	reg.RegisterCounter("mediator.nic.vmm_tx_frames", &md.VMMTxFrames, l)
	reg.RegisterCounter("mediator.nic.vmm_rx_frames", &md.VMMRxFrames, l)
	reg.RegisterCounter("mediator.nic.traps", &md.Traps, l)
}

// Shadow ring geometry within the VMM region.
const (
	snicTXOff   = 0x10000
	snicRXOff   = 0x14000
	snicBufOff  = 0x20000
	snicRingLen = 256
)

// NewSharedNIC builds the mediator over the machine's ring NIC. vmmRegion
// provides shadow-ring and buffer memory.
func NewSharedNIC(m *machine.Machine, ring *nic.RingNIC, regName string, vmmRegion mem.Region) *SharedNIC {
	md := &SharedNIC{
		m:       m,
		ring:    ring,
		regName: regName,
		sTXBase: uint64(vmmRegion.Start + snicTXOff),
		sRXBase: uint64(vmmRegion.Start + snicRXOff),
		sTXLen:  snicRingLen,
		sRXLen:  snicRingLen,
	}
	return md
}

// Attach installs the tap and takes ownership of the physical NIC: the
// real rings become the shadow rings, interrupts are masked (the VMM
// polls), and RX buffers are pre-posted.
func (md *SharedNIC) Attach() {
	md.m.IO.SetTap(md.regName, md)
	dev := md.m.IO.Lookup(md.regName).Device()
	// Pre-post shadow RX descriptors pointing at VMM buffers.
	for i := uint32(0); i < md.sRXLen; i++ {
		nic.WriteDesc(md.m.Mem, md.sRXBase, i, md.vmmBuf(int64(i)), 9018)
	}
	dev.IOWrite(nil, nic.RegIMS, 4, 0) // VMM polls; no interrupts
	dev.IOWrite(nil, nic.RegTDBAL, 8, md.sTXBase)
	dev.IOWrite(nil, nic.RegTDLEN, 4, uint64(md.sTXLen))
	dev.IOWrite(nil, nic.RegTDH, 4, 0)
	dev.IOWrite(nil, nic.RegTDT, 4, 0)
	dev.IOWrite(nil, nic.RegRDBAL, 8, md.sRXBase)
	dev.IOWrite(nil, nic.RegRDLEN, 4, uint64(md.sRXLen))
	dev.IOWrite(nil, nic.RegRDH, 4, 0)
	md.sRDT = md.sRXLen - 1
	dev.IOWrite(nil, nic.RegRDT, 4, uint64(md.sRDT))
	dev.IOWrite(nil, nic.RegCTRL, 4, nic.CtrlEnable)
	md.attached = true
}

// Detach removes the tap. De-virtualizing a shared NIC would additionally
// require handing the ring state back to the guest — exactly the
// complication the paper cites for preferring a dedicated NIC.
func (md *SharedNIC) Detach() {
	md.m.IO.SetTap(md.regName, nil)
	md.attached = false
}

func (md *SharedNIC) vmmBuf(i int64) int64 {
	base := md.sRXBase - uint64(snicRXOff) + uint64(snicBufOff)
	return int64(base) + i*0x2400 // 9 KB-aligned buffers
}

// --- io.Tap: guest register virtualization -------------------------------

// TapRead implements io.Tap: the guest sees its own virtual ring state.
func (md *SharedNIC) TapRead(p *sim.Proc, _ *hwio.Region, off int64, _ int) (uint64, bool) {
	md.m.World.Exit(p, cpuvirt.ExitMMIO)
	md.Traps.Inc()
	switch off {
	case nic.RegCTRL:
		return uint64(md.gCTRL), true
	case nic.RegIMS:
		return uint64(md.gIMS), true
	case nic.RegTDBAL:
		return md.gTDBA, true
	case nic.RegTDLEN:
		return uint64(md.gTDLEN), true
	case nic.RegTDH:
		return uint64(md.gTDH), true
	case nic.RegTDT:
		return uint64(md.gTDT), true
	case nic.RegRDBAL:
		return md.gRDBA, true
	case nic.RegRDLEN:
		return uint64(md.gRDLEN), true
	case nic.RegRDH:
		return uint64(md.gRDH), true
	case nic.RegRDT:
		return uint64(md.gRDT), true
	}
	return 0, true
}

// TapWrite implements io.Tap.
func (md *SharedNIC) TapWrite(p *sim.Proc, _ *hwio.Region, off int64, _ int, v uint64) bool {
	md.m.World.Exit(p, cpuvirt.ExitMMIO)
	md.Traps.Inc()
	switch off {
	case nic.RegCTRL:
		md.gCTRL = uint32(v)
	case nic.RegIMS:
		md.gIMS = uint32(v)
	case nic.RegTDBAL:
		md.gTDBA = v
	case nic.RegTDLEN:
		md.gTDLEN = uint32(v)
	case nic.RegTDH:
		md.gTDH = uint32(v)
	case nic.RegTDT:
		md.gTDT = uint32(v)
		md.forwardGuestTx()
	case nic.RegRDBAL:
		md.gRDBA = v
	case nic.RegRDLEN:
		md.gRDLEN = uint32(v)
	case nic.RegRDH:
		md.gRDH = uint32(v)
	case nic.RegRDT:
		md.gRDT = uint32(v)
	}
	return true // the guest never touches the real registers
}

// forwardGuestTx copies newly issued guest TX descriptors into the shadow
// ring. Buffer addresses carry over unchanged (the frame side table is
// keyed by address), so no payload copy is needed on transmit.
func (md *SharedNIC) forwardGuestTx() {
	if md.gCTRL&nic.CtrlEnable == 0 || md.gTDLEN == 0 {
		return
	}
	dev := md.m.IO.Lookup(md.regName).Device()
	for md.gTDH != md.gTDT {
		addr := nic.ReadDescAddr(md.m.Mem, md.gTDBA, md.gTDH)
		nic.WriteDesc(md.m.Mem, md.sTXBase, md.sTDT, addr, 9018)
		md.sTDT = (md.sTDT + 1) % md.sTXLen
		// Completion is synchronous in the model: mark the guest's
		// descriptor done as soon as the hardware consumes it.
		nic.SetDescDone(md.m.Mem, md.gTDBA, md.gTDH, true)
		md.gTDH = (md.gTDH + 1) % md.gTDLEN
		md.GuestTxFrames.Inc()
	}
	dev.IOWrite(nil, nic.RegTDT, 4, uint64(md.sTDT))
	if md.gIMS != 0 {
		md.ring.IRQ.Raise()
	}
}

// Poll drains the shadow RX ring, demultiplexing AoE frames to the VMM
// and everything else into the guest's RX ring. The VMM's polling thread
// calls this at its usual interval.
func (md *SharedNIC) Poll() {
	dev := md.m.IO.Lookup(md.regName).Device()
	rdh := uint32(dev.IORead(nil, nic.RegRDH, 4))
	delivered := false
	for md.sRDH != rdh {
		bufAddr := nic.ReadDescAddr(md.m.Mem, md.sRXBase, md.sRDH)
		f, ok := md.ring.TakeRxFrame(bufAddr)
		nic.SetDescDone(md.m.Mem, md.sRXBase, md.sRDH, false)
		// Recycle the descriptor for the hardware.
		md.sRDT = (md.sRDT + 1) % md.sRXLen
		dev.IOWrite(nil, nic.RegRDT, 4, uint64(md.sRDT))
		md.sRDH = (md.sRDH + 1) % md.sRXLen
		if !ok {
			continue
		}
		if f.EtherType == aoeEtherType {
			md.VMMRxFrames.Inc()
			if md.onReceive != nil {
				md.onReceive(f)
			} else {
				md.vmmRx = append(md.vmmRx, f)
			}
			continue
		}
		if md.copyToGuestRx(f) {
			delivered = true
		}
	}
	if delivered && md.gIMS != 0 {
		md.ring.IRQ.Raise()
	}
}

// aoeEtherType mirrors aoe.EtherType without importing the package (the
// aoe package imports this one's transport consumer side).
const aoeEtherType = 0x88A2

// copyToGuestRx stores a frame into the guest's next free RX descriptor.
func (md *SharedNIC) copyToGuestRx(f *ethernet.Frame) bool {
	if md.gCTRL&nic.CtrlEnable == 0 || md.gRDLEN == 0 || md.gRDH == md.gRDT {
		f.Release()
		return false // guest has no buffer; drop, as hardware would
	}
	addr := nic.ReadDescAddr(md.m.Mem, md.gRDBA, md.gRDH)
	md.ring.StageRxFrame(addr, f)
	nic.SetDescDone(md.m.Mem, md.gRDBA, md.gRDH, true)
	md.gRDH = (md.gRDH + 1) % md.gRDLEN
	md.GuestRxFrames.Inc()
	return true
}

// --- aoe.Transport: the VMM's network path over the shared NIC ----------

// Send transmits a VMM frame by staging it at a VMM buffer and appending
// a shadow TX descriptor — interleaved with guest traffic.
func (md *SharedNIC) Send(f *ethernet.Frame) {
	md.VMMTxFrames.Inc()
	buf := md.vmmBuf(512 + md.vmmBufSeq%int64(md.sTXLen))
	md.vmmBufSeq++
	md.ring.StageTxFrame(buf, f)
	nic.WriteDesc(md.m.Mem, md.sTXBase, md.sTDT, buf, 9018)
	md.sTDT = (md.sTDT + 1) % md.sTXLen
	md.m.IO.Lookup(md.regName).Device().IOWrite(nil, nic.RegTDT, 4, uint64(md.sTDT))
}

// MTU implements aoe.Transport.
func (md *SharedNIC) MTU() int64 { return md.ring.MTU() }

// SetOnReceive implements aoe.Transport for the VMM's demuxed AoE frames.
func (md *SharedNIC) SetOnReceive(fn func(*ethernet.Frame)) { md.onReceive = fn }

// TryRecv implements aoe.Transport.
func (md *SharedNIC) TryRecv() (*ethernet.Frame, bool) {
	if len(md.vmmRx) == 0 {
		return nil, false
	}
	f := md.vmmRx[0]
	md.vmmRx = md.vmmRx[1:]
	return f, true
}

var _ hwio.Tap = (*SharedNIC)(nil)
