package mediator_test

import (
	"testing"

	"repro/internal/aoe"
	"repro/internal/ethernet"
	"repro/internal/guest"
	"repro/internal/hw/disk"
	hwio "repro/internal/hw/io"
	"repro/internal/hw/nic"
	"repro/internal/machine"
	"repro/internal/mediator"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vblade"
)

// echoPeer answers every non-AoE frame it receives.
type echoPeer struct {
	n       *nic.NIC
	Echoed  metrics.Counter
	replyTo ethernet.MAC
}

func newEchoPeer(k *sim.Kernel, mac ethernet.MAC, link *ethernet.Link) *echoPeer {
	e := &echoPeer{}
	e.n = nic.New(k, "peer", nic.RealtekRTL816x, mac, link)
	e.n.SetOnReceive(func(f *ethernet.Frame) {
		e.Echoed.Inc()
		e.n.Send(&ethernet.Frame{Dst: f.Src, EtherType: f.EtherType, Payload: f.Payload, Size: f.Size})
	})
	return e
}

// snicRig wires one machine whose single NIC is shared between the guest
// (ring driver) and the VMM (AoE initiator) via the shared-NIC mediator,
// plus a vblade server and an echo peer on the same switch.
type snicRig struct {
	k      *sim.Kernel
	m      *machine.Machine
	ring   *nic.RingNIC
	med    *mediator.SharedNIC
	drv    *guest.NetDriver
	init   *aoe.Initiator
	server *vblade.Server
	peer   *echoPeer
	img    *disk.Image
}

func newSNICRig(t *testing.T) *snicRig {
	t.Helper()
	k := sim.New(11)
	sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)

	cfg := machine.RX200S6("m0")
	cfg.MemBytes = 256 << 20
	m := machine.New(k, cfg)
	link := sw.Connect(ethernet.GigabitJumbo())
	base := m.AttachNIC(nic.IntelPro1000, 0x20, link)
	irq := hwio.NewIRQ(k, "nic")
	ring := nic.NewRingNIC(k, base, m.Mem, irq)
	regName := ring.RegisterRegion(m.IO)

	// Server and echo peer.
	servNIC := nic.New(k, "srv", nic.IntelX540, 0x01, sw.Connect(ethernet.GigabitJumbo()))
	img := disk.NewSynthImage("img", 64<<20, 3)
	srv := vblade.NewServer(k, servNIC, 4)
	srv.AddTarget(0, 0, img)
	srv.Start()
	peer := newEchoPeer(k, 0x99, sw.Connect(ethernet.GigabitJumbo()))

	region := m.Firmware.ReserveForVMM(16 << 20)
	med := mediator.NewSharedNIC(m, ring, regName, region)
	med.Attach()
	// The VMM's polling thread drains the shadow RX ring.
	k.Spawn("snic.poll", func(p *sim.Proc) {
		for {
			med.Poll()
			p.Sleep(100 * sim.Microsecond)
		}
	})

	drv := guest.NewNetDriver(m, ring, irq)
	in := aoe.NewInitiator(k, med, 0x01, 0, 0)
	return &snicRig{k: k, m: m, ring: ring, med: med, drv: drv, init: in, server: srv, peer: peer, img: img}
}

func TestSharedNICGuestTraffic(t *testing.T) {
	r := newSNICRig(t)
	got := 0
	r.k.Spawn("guest", func(p *sim.Proc) {
		if err := r.drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			r.drv.Send(p, &ethernet.Frame{Dst: 0x99, EtherType: 0x0800, Size: 1200, Payload: i})
			f, err := r.drv.Recv(p, 100*sim.Millisecond)
			if err != nil {
				t.Error(err)
				return
			}
			if f.Payload.(int) != i {
				t.Errorf("echo %d returned payload %v", i, f.Payload)
				return
			}
			got++
		}
		r.k.Stop()
	})
	r.k.Run()
	if got != 5 {
		t.Fatalf("echoed %d of 5 frames", got)
	}
	if r.med.GuestTxFrames.Value() != 5 || r.med.GuestRxFrames.Value() != 5 {
		t.Fatalf("mediator counted tx=%d rx=%d", r.med.GuestTxFrames.Value(), r.med.GuestRxFrames.Value())
	}
	if r.med.Traps.Value() == 0 {
		t.Fatal("guest ring accesses did not trap")
	}
}

func TestSharedNICVMMTraffic(t *testing.T) {
	r := newSNICRig(t)
	r.k.Spawn("vmm", func(p *sim.Proc) {
		pl, err := r.init.Read(p, 100, 64)
		if err != nil {
			t.Error(err)
			return
		}
		want := r.img.Payload(100, 64)
		if string(pl.Bytes()) != string(want.Bytes()) {
			t.Error("AoE over shared NIC returned wrong content")
		}
		r.k.Stop()
	})
	r.k.Run()
	if r.med.VMMRxFrames.Value() == 0 || r.med.VMMTxFrames.Value() == 0 {
		t.Fatal("VMM frames did not flow through the mediator")
	}
}

func TestSharedNICInterleaving(t *testing.T) {
	// Guest echo traffic and VMM bulk AoE reads run concurrently over
	// the one NIC; both must complete, and AoE frames must never reach
	// the guest ring.
	r := newSNICRig(t)
	guestDone, vmmDone := false, false
	r.k.Spawn("guest", func(p *sim.Proc) {
		if err := r.drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 20; i++ {
			r.drv.Send(p, &ethernet.Frame{Dst: 0x99, EtherType: 0x0800, Size: 1500, Payload: i})
			if _, err := r.drv.Recv(p, 500*sim.Millisecond); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(2 * sim.Millisecond)
		}
		guestDone = true
	})
	r.k.Spawn("vmm", func(p *sim.Proc) {
		for i := int64(0); i < 16; i++ { // 16 MB of bulk reads
			if _, err := r.init.Read(p, i*2048, 2048); err != nil {
				t.Error(err)
				return
			}
		}
		vmmDone = true
	})
	r.k.RunUntil(sim.Time(10 * sim.Second))
	if !guestDone || !vmmDone {
		t.Fatalf("guest=%v vmm=%v did not finish", guestDone, vmmDone)
	}
	if r.med.GuestRxFrames.Value() != 20 {
		t.Fatalf("guest received %d frames, want 20 (AoE leaked into the guest ring?)",
			r.med.GuestRxFrames.Value())
	}
}

// TestSharedNICLatencyPenalty quantifies the paper's §6 argument for a
// dedicated NIC: guest round-trip latency through the mediator under
// concurrent VMM bulk traffic is visibly worse than over a dedicated NIC.
func TestSharedNICLatencyPenalty(t *testing.T) {
	// Shared: RTT while the VMM streams.
	r := newSNICRig(t)
	var sharedRTT sim.Duration
	r.k.Spawn("vmm", func(p *sim.Proc) {
		for i := int64(0); ; i++ {
			if _, err := r.init.Read(p, (i*2048)%65536, 2048); err != nil {
				return
			}
		}
	})
	r.k.Spawn("guest", func(p *sim.Proc) {
		if err := r.drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		var total sim.Duration
		const n = 20
		for i := 0; i < n; i++ {
			start := p.Now()
			r.drv.Send(p, &ethernet.Frame{Dst: 0x99, EtherType: 0x0800, Size: 256, Payload: i})
			if _, err := r.drv.Recv(p, sim.Second); err != nil {
				t.Error(err)
				return
			}
			total += p.Now().Sub(start)
			p.Sleep(5 * sim.Millisecond)
		}
		sharedRTT = total / n
		r.k.Stop()
	})
	r.k.RunUntil(sim.Time(30 * sim.Second))

	// Dedicated: same echo over a NIC the guest owns outright.
	k := sim.New(11)
	sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)
	cl := nic.New(k, "cl", nic.IntelPro1000, 0x20, sw.Connect(ethernet.GigabitJumbo()))
	peer := newEchoPeer(k, 0x99, sw.Connect(ethernet.GigabitJumbo()))
	_ = peer
	var dedicatedRTT sim.Duration
	k.Spawn("guest", func(p *sim.Proc) {
		var total sim.Duration
		const n = 20
		done := k.NewSignal("echo")
		var got bool
		cl.SetOnReceive(func(*ethernet.Frame) { got = true; done.Broadcast() })
		for i := 0; i < n; i++ {
			got = false
			start := p.Now()
			cl.Send(&ethernet.Frame{Dst: 0x99, EtherType: 0x0800, Size: 256, Payload: i})
			p.WaitCond(done, func() bool { return got })
			total += p.Now().Sub(start)
			p.Sleep(5 * sim.Millisecond)
		}
		dedicatedRTT = total / n
	})
	k.Run()

	if sharedRTT <= dedicatedRTT {
		t.Fatalf("shared-NIC RTT %v not worse than dedicated %v", sharedRTT, dedicatedRTT)
	}
	t.Logf("guest RTT: dedicated %v vs shared-under-load %v (+%.0f%%)",
		dedicatedRTT, sharedRTT, (float64(sharedRTT)/float64(dedicatedRTT)-1)*100)
}
