// Package metrics provides the measurement primitives used by the BMcast
// experiments: counters, latency histograms with percentile queries, and
// windowed time series for throughput-over-time figures.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Counter accumulates a monotonically increasing count.
type Counter struct {
	n int64
}

// Add increases the counter by delta.
func (c *Counter) Add(delta int64) { c.n += delta }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// histChunk is the sample-block size: big enough that per-block overhead
// vanishes, small enough that an idle histogram wastes little.
const histChunk = 1 << 15

// Histogram records duration samples and answers mean/percentile queries.
// Samples are kept exactly; the experiment scales involved (thousands to a
// few million samples) make this affordable and precise.
//
// Storage is chunked: the first block grows geometrically (small
// histograms stay small), and once it reaches histChunk samples each
// further block is allocated at full size and never reallocated. The
// hot observers — the per-exit cpuvirt histogram logs every VM exit of a
// fleet run — would otherwise spend more time in growslice copies of a
// multi-megabyte slice than in the simulation around them.
//
// Percentile queries sort into a separate cached slice, invalidated by
// Observe/Reset: samples keep insertion order, and a burst of queries
// (the fleet tables ask for p50/p99/max per column) sorts once.
type Histogram struct {
	full     [][]sim.Duration // completed blocks, each len histChunk
	head     []sim.Duration   // current block, appended in place
	sorted   []sim.Duration   // cached sort of samples; valid when sortedOK
	sortedOK bool
	sum      int64
}

// Observe records one sample.
func (h *Histogram) Observe(d sim.Duration) {
	if len(h.head) == histChunk {
		h.full = append(h.full, h.head)
		h.head = make([]sim.Duration, 0, histChunk)
	}
	h.head = append(h.head, d)
	h.sum += int64(d)
	h.sortedOK = false
}

// Count reports the number of samples.
func (h *Histogram) Count() int { return len(h.full)*histChunk + len(h.head) }

// Mean reports the arithmetic mean of the samples, or 0 with no samples.
func (h *Histogram) Mean() sim.Duration {
	if h.Count() == 0 {
		return 0
	}
	return sim.Duration(h.sum / int64(h.Count()))
}

// sortedView returns the cached ascending sort of the samples,
// rebuilding it only when samples changed since the last query.
func (h *Histogram) sortedView() []sim.Duration {
	if !h.sortedOK {
		h.sorted = h.sorted[:0]
		for _, blk := range h.full {
			h.sorted = append(h.sorted, blk...)
		}
		h.sorted = append(h.sorted, h.head...)
		sort.Slice(h.sorted, func(i, j int) bool { return h.sorted[i] < h.sorted[j] })
		h.sortedOK = true
	}
	return h.sorted
}

// Percentile reports the p-th percentile (0 < p <= 100) using
// nearest-rank. It returns 0 with no samples.
func (h *Histogram) Percentile(p float64) sim.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	s := h.sortedView()
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() sim.Duration {
	if h.Count() == 0 {
		return 0
	}
	if h.sortedOK {
		return h.sorted[0]
	}
	min := sim.Duration(math.MaxInt64)
	for _, blk := range h.full {
		for _, s := range blk {
			if s < min {
				min = s
			}
		}
	}
	for _, s := range h.head {
		if s < min {
			min = s
		}
	}
	return min
}

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() sim.Duration { return h.Percentile(100) }

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.full = nil
	h.head = h.head[:0]
	h.sum = 0
	h.sortedOK = false
}

// Point is one sample of a time series.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series of (time, value) points, used for
// throughput/latency-over-time figures.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a point. Points must be appended in nondecreasing time order.
func (s *Series) Append(t sim.Time, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic(fmt.Sprintf("metrics: series %q time went backwards", s.Name))
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Mean reports the average of all point values, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// MeanBetween reports the average of point values with from <= T < to.
func (s *Series) MeanBetween(from, to sim.Time) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Last reports the final point value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Window accumulates per-interval counts and emits a throughput series
// (events per second per window). It is driven by Tick calls from the
// simulation.
type Window struct {
	Series   Series
	interval sim.Duration
	start    sim.Time
	count    float64
}

// NewWindow returns a windowed throughput accumulator with the given
// aggregation interval.
func NewWindow(name string, interval sim.Duration) *Window {
	if interval <= 0 {
		panic("metrics: window interval must be positive")
	}
	return &Window{Series: Series{Name: name}, interval: interval}
}

// Add records n events at time t, flushing any completed windows first.
func (w *Window) Add(t sim.Time, n float64) {
	w.flushUpTo(t)
	w.count += n
}

// Flush emits every window that ends at or before t.
func (w *Window) Flush(t sim.Time) { w.flushUpTo(t) }

func (w *Window) flushUpTo(t sim.Time) {
	for t >= w.start.Add(w.interval) {
		rate := w.count / w.interval.Seconds()
		w.Series.Append(w.start.Add(w.interval), rate)
		w.count = 0
		w.start = w.start.Add(w.interval)
	}
}
