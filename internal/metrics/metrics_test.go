package metrics

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("Value after reset = %d", c.Value())
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	for i := 1; i <= 4; i++ {
		h.Observe(sim.Duration(i) * sim.Second)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	want := sim.Duration(2500) * sim.Millisecond
	if h.Mean() != want {
		t.Fatalf("Mean = %v, want %v", h.Mean(), want)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 100; i >= 1; i-- { // reverse order: sorting must handle it
		h.Observe(sim.Duration(i) * sim.Millisecond)
	}
	if got := h.Percentile(50); got != 50*sim.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := h.Percentile(99); got != 99*sim.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", got)
	}
	if got := h.Min(); got != sim.Millisecond {
		t.Fatalf("Min = %v, want 1ms", got)
	}
	if got := h.Max(); got != 100*sim.Millisecond {
		t.Fatalf("Max = %v, want 100ms", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram queries should return 0")
	}
}

func TestHistogramObserveAfterQuery(t *testing.T) {
	var h Histogram
	h.Observe(10 * sim.Millisecond)
	_ = h.Percentile(50)
	h.Observe(sim.Millisecond) // must re-sort
	if got := h.Min(); got != sim.Millisecond {
		t.Fatalf("Min after late observe = %v, want 1ms", got)
	}
}

func TestHistogramPercentileBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var h Histogram
		for _, v := range raw {
			h.Observe(sim.Duration(v))
		}
		if len(raw) == 0 {
			return h.Percentile(50) == 0
		}
		p50 := h.Percentile(50)
		return h.Min() <= p50 && p50 <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(sim.Time(sim.Second), 10)
	s.Append(sim.Time(2*sim.Second), 20)
	s.Append(sim.Time(3*sim.Second), 30)
	if s.Mean() != 20 {
		t.Fatalf("Mean = %v, want 20", s.Mean())
	}
	if s.Last() != 30 {
		t.Fatalf("Last = %v, want 30", s.Last())
	}
	got := s.MeanBetween(sim.Time(sim.Second), sim.Time(3*sim.Second))
	if got != 15 {
		t.Fatalf("MeanBetween = %v, want 15", got)
	}
}

func TestSeriesBackwardsTimePanics(t *testing.T) {
	var s Series
	s.Append(sim.Time(2*sim.Second), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards append did not panic")
		}
	}()
	s.Append(sim.Time(sim.Second), 2)
}

func TestWindowThroughput(t *testing.T) {
	w := NewWindow("tput", sim.Second)
	// 100 events in [0,1), 200 in [1,2).
	w.Add(sim.Time(500*sim.Millisecond), 100)
	w.Add(sim.Time(1500*sim.Millisecond), 200)
	w.Flush(sim.Time(2 * sim.Second))
	pts := w.Series.Points
	if len(pts) < 2 {
		t.Fatalf("got %d windows, want >= 2", len(pts))
	}
	if pts[0].V != 100 {
		t.Fatalf("window 0 rate = %v, want 100/s", pts[0].V)
	}
	if pts[1].V != 200 {
		t.Fatalf("window 1 rate = %v, want 200/s", pts[1].V)
	}
}

func TestWindowSkipsEmptyIntervals(t *testing.T) {
	w := NewWindow("tput", sim.Second)
	w.Add(sim.Time(100*sim.Millisecond), 10)
	w.Add(sim.Time(5*sim.Second+100*sim.Millisecond), 10)
	w.Flush(sim.Time(6 * sim.Second))
	// Windows 1..4 must exist with zero rate.
	pts := w.Series.Points
	if len(pts) != 6 {
		t.Fatalf("got %d windows, want 6", len(pts))
	}
	for i := 1; i <= 4; i++ {
		if pts[i].V != 0 {
			t.Fatalf("idle window %d rate = %v, want 0", i, pts[i].V)
		}
	}
}

// --- pinned Min/Max/Percentile edge cases --------------------------------

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(7 * sim.Millisecond)
	for _, p := range []float64{0.0001, 1, 50, 99, 100} {
		if got := h.Percentile(p); got != 7*sim.Millisecond {
			t.Fatalf("n=1 p%v = %v, want 7ms", p, got)
		}
	}
	if h.Min() != 7*sim.Millisecond || h.Max() != 7*sim.Millisecond {
		t.Fatalf("n=1 min/max = %v/%v, want 7ms/7ms", h.Min(), h.Max())
	}
}

func TestHistogramTwoSamples(t *testing.T) {
	var h Histogram
	h.Observe(20 * sim.Millisecond)
	h.Observe(10 * sim.Millisecond)
	if h.Min() != 10*sim.Millisecond {
		t.Fatalf("n=2 Min = %v, want 10ms", h.Min())
	}
	if h.Max() != 20*sim.Millisecond {
		t.Fatalf("n=2 Max = %v, want 20ms", h.Max())
	}
	// Nearest-rank: p50 of two samples is exactly rank 1, p50+ε rank 2.
	if got := h.Percentile(50); got != 10*sim.Millisecond {
		t.Fatalf("n=2 p50 = %v, want 10ms", got)
	}
	if got := h.Percentile(50.1); got != 20*sim.Millisecond {
		t.Fatalf("n=2 p50.1 = %v, want 20ms", got)
	}
}

func TestHistogramPercentileExactRankBoundaries(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Observe(sim.Duration(i) * sim.Millisecond)
	}
	// With n=10, p = 10k% falls exactly on rank k (nearest-rank ceiling).
	for k := 1; k <= 10; k++ {
		want := sim.Duration(k) * sim.Millisecond
		if got := h.Percentile(float64(k) * 10); got != want {
			t.Fatalf("p%d = %v, want %v", k*10, got, want)
		}
	}
	// Just above a rank boundary moves to the next sample.
	if got := h.Percentile(10.01); got != 2*sim.Millisecond {
		t.Fatalf("p10.01 = %v, want 2ms", got)
	}
	// Min must be the true smallest sample, not a percentile artifact.
	if got := h.Min(); got != sim.Millisecond {
		t.Fatalf("Min = %v, want 1ms", got)
	}
}

func TestHistogramMinUnsortedDirect(t *testing.T) {
	var h Histogram
	h.Observe(5 * sim.Millisecond)
	h.Observe(3 * sim.Millisecond)
	h.Observe(9 * sim.Millisecond)
	// Min before any Percentile call exercises the unsorted scan path.
	if got := h.Min(); got != 3*sim.Millisecond {
		t.Fatalf("unsorted Min = %v, want 3ms", got)
	}
}

// --- Window boundary and flush semantics ---------------------------------

func TestWindowBoundaryEvent(t *testing.T) {
	w := NewWindow("tput", sim.Second)
	w.Add(sim.Time(500*sim.Millisecond), 100)
	// An event landing exactly on the window boundary belongs to the new
	// window: the old one is flushed first.
	w.Add(sim.Time(sim.Second), 50)
	w.Flush(sim.Time(2 * sim.Second))
	pts := w.Series.Points
	if len(pts) != 2 {
		t.Fatalf("got %d windows, want 2", len(pts))
	}
	if pts[0].V != 100 {
		t.Fatalf("window 0 rate = %v, want 100/s", pts[0].V)
	}
	if pts[1].V != 50 {
		t.Fatalf("window 1 rate = %v, want 50/s (boundary event counts forward)", pts[1].V)
	}
	if pts[0].T != sim.Time(sim.Second) || pts[1].T != sim.Time(2*sim.Second) {
		t.Fatalf("window end times = %v, %v", pts[0].T, pts[1].T)
	}
}

func TestWindowMultiGapZeroPoints(t *testing.T) {
	w := NewWindow("tput", 100*sim.Millisecond)
	w.Add(sim.Time(50*sim.Millisecond), 1)
	w.Add(sim.Time(350*sim.Millisecond), 1) // two empty windows in between
	w.Flush(sim.Time(400 * sim.Millisecond))
	pts := w.Series.Points
	if len(pts) != 4 {
		t.Fatalf("got %d windows, want 4", len(pts))
	}
	wantRates := []float64{10, 0, 0, 10}
	for i, want := range wantRates {
		if pts[i].V != want {
			t.Fatalf("window %d rate = %v, want %v", i, pts[i].V, want)
		}
	}
}

func TestWindowFlushIdempotent(t *testing.T) {
	w := NewWindow("tput", sim.Second)
	w.Add(sim.Time(200*sim.Millisecond), 42)
	w.Flush(sim.Time(3 * sim.Second))
	n := len(w.Series.Points)
	w.Flush(sim.Time(3 * sim.Second)) // same instant: no new points
	if len(w.Series.Points) != n {
		t.Fatalf("repeated Flush added points: %d -> %d", n, len(w.Series.Points))
	}
	w.Flush(sim.Time(3*sim.Second) + sim.Time(500*sim.Millisecond)) // mid-window: still nothing
	if len(w.Series.Points) != n {
		t.Fatalf("mid-window Flush added points: %d -> %d", n, len(w.Series.Points))
	}
	w.Flush(sim.Time(4 * sim.Second)) // next boundary: exactly one zero point
	if len(w.Series.Points) != n+1 || w.Series.Points[n].V != 0 {
		t.Fatalf("boundary Flush: %d points, last %v", len(w.Series.Points), w.Series.Points[len(w.Series.Points)-1])
	}
}
