package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Label is one dimension of an instrument's identity (node, device,
// exit_reason, ...).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Gauge holds a last-written value (e.g. a queue depth or rate). The
// set/inc/dec surface covers the population-style gauges (free-pool
// size, queue depth, quarantine census) that move by one element at a
// time.
type Gauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) { g.v += delta }

// Inc increases the gauge by one.
func (g *Gauge) Inc() { g.v++ }

// Dec decreases the gauge by one.
func (g *Gauge) Dec() { g.v-- }

// Value reports the current gauge value.
func (g *Gauge) Value() float64 { return g.v }

// Registry is a labeled instrument registry: counters, gauges, and
// histograms registered by name plus labels, snapshotted as one
// consistent view for programmatic assertions or a text dump.
//
// Instruments are obtained once (get-or-create or by adopting an
// already-embedded instrument) and then updated directly, so the hot
// path never pays a map lookup. Registration is mutex-guarded so
// concurrent setup under -race is safe; instrument updates follow the
// simulation's single-active-goroutine discipline.
//
// A nil *Registry is valid: getters return live but unregistered
// instruments and Register* calls are no-ops, so instrumented code
// needs no registry-presence branches.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

type entry struct {
	name   string
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// key canonicalizes name+labels; labels are order-insensitive.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) upsert(name string, labels []Label, fill func(*entry)) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := key(name, labels)
	e, ok := r.entries[id]
	if !ok {
		e = &entry{name: name, labels: append([]Label(nil), labels...)}
		r.entries[id] = e
	}
	fill(e)
	return e
}

// Counter returns the counter registered under name+labels, creating it
// if needed. On a nil registry it returns a fresh unregistered counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	e := r.upsert(name, labels, func(e *entry) {
		if e.c == nil {
			e.c = &Counter{}
		}
	})
	return e.c
}

// Gauge returns the gauge registered under name+labels, creating it if
// needed. On a nil registry it returns a fresh unregistered gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	e := r.upsert(name, labels, func(e *entry) {
		if e.g == nil {
			e.g = &Gauge{}
		}
	})
	return e.g
}

// Histogram returns the histogram registered under name+labels,
// creating it if needed. On a nil registry it returns a fresh
// unregistered histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	e := r.upsert(name, labels, func(e *entry) {
		if e.h == nil {
			e.h = &Histogram{}
		}
	})
	return e.h
}

// RegisterCounter adopts an existing counter (typically embedded in a
// component's stats struct) under name+labels. Re-registering the same
// identity replaces the previous instrument. No-op on a nil registry.
func (r *Registry) RegisterCounter(name string, c *Counter, labels ...Label) {
	if r == nil || c == nil {
		return
	}
	r.upsert(name, labels, func(e *entry) { e.c = c })
}

// RegisterGauge adopts an existing gauge under name+labels.
func (r *Registry) RegisterGauge(name string, g *Gauge, labels ...Label) {
	if r == nil || g == nil {
		return
	}
	r.upsert(name, labels, func(e *entry) { e.g = g })
}

// RegisterHistogram adopts an existing histogram under name+labels.
func (r *Registry) RegisterHistogram(name string, h *Histogram, labels ...Label) {
	if r == nil || h == nil {
		return
	}
	r.upsert(name, labels, func(e *entry) { e.h = h })
}

// Sample is one instrument's state inside a Snapshot.
type Sample struct {
	Name   string
	Labels []Label
	Kind   string // "counter", "gauge", or "histogram"

	// Value holds the counter count or gauge value.
	Value float64

	// Histogram summary (Kind == "histogram").
	Count int
	Mean  sim.Duration
	Min   sim.Duration
	Max   sim.Duration
	P50   sim.Duration
	P99   sim.Duration
}

// Snapshot is a consistent, sorted view of every registered instrument.
type Snapshot struct {
	Samples []Sample
}

// Snapshot captures every instrument, sorted by canonical identity so
// output is deterministic. On a nil registry it returns an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	entries := make([]*entry, len(ids))
	for i, id := range ids {
		entries[i] = r.entries[id]
	}
	r.mu.Unlock()

	for _, e := range entries {
		if e.c != nil {
			snap.Samples = append(snap.Samples, Sample{
				Name: e.name, Labels: e.labels, Kind: "counter", Value: float64(e.c.Value()),
			})
		}
		if e.g != nil {
			snap.Samples = append(snap.Samples, Sample{
				Name: e.name, Labels: e.labels, Kind: "gauge", Value: e.g.Value(),
			})
		}
		if e.h != nil {
			snap.Samples = append(snap.Samples, Sample{
				Name: e.name, Labels: e.labels, Kind: "histogram",
				Count: e.h.Count(), Mean: e.h.Mean(),
				Min: e.h.Min(), Max: e.h.Max(),
				P50: e.h.Percentile(50), P99: e.h.Percentile(99),
			})
		}
	}
	return snap
}

// Get returns the sample registered under name+labels, if present.
func (s Snapshot) Get(name string, labels ...Label) (Sample, bool) {
	id := key(name, labels)
	for _, sample := range s.Samples {
		if key(sample.Name, sample.Labels) == id {
			return sample, true
		}
	}
	return Sample{}, false
}

// CounterValue returns the counter value under name+labels, or 0.
func (s Snapshot) CounterValue(name string, labels ...Label) int64 {
	sample, ok := s.Get(name, labels...)
	if !ok || sample.Kind != "counter" {
		return 0
	}
	return int64(sample.Value)
}

// Prefixed returns the samples whose name starts with prefix — the
// per-subsystem view (e.g. everything under "cpuvirt.").
func (s Snapshot) Prefixed(prefix string) []Sample {
	var out []Sample
	for _, sample := range s.Samples {
		if strings.HasPrefix(sample.Name, prefix) {
			out = append(out, sample)
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON. Samples are already in
// canonical sorted order, so same-state snapshots serialize
// byte-identically — the machine-readable side channel for bmcast-obs
// and bench tooling.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot previously written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}

// WriteText renders the snapshot as an aligned text dump for the CLIs.
func (s Snapshot) WriteText(w io.Writer) {
	width := 0
	for _, sample := range s.Samples {
		if n := len(key(sample.Name, sample.Labels)); n > width {
			width = n
		}
	}
	for _, sample := range s.Samples {
		id := key(sample.Name, sample.Labels)
		switch sample.Kind {
		case "counter":
			fmt.Fprintf(w, "counter    %-*s %d\n", width, id, int64(sample.Value))
		case "gauge":
			fmt.Fprintf(w, "gauge      %-*s %g\n", width, id, sample.Value)
		default:
			fmt.Fprintf(w, "histogram  %-*s n=%d mean=%v min=%v p50=%v p99=%v max=%v\n",
				width, id, sample.Count, sample.Mean, sample.Min, sample.P50, sample.P99, sample.Max)
		}
	}
}
