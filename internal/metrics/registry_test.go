package metrics

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("aoe.retransmits", L("node", "node0"))
	c2 := r.Counter("aoe.retransmits", L("node", "node0"))
	if c1 != c2 {
		t.Fatal("same identity returned distinct counters")
	}
	c3 := r.Counter("aoe.retransmits", L("node", "node1"))
	if c1 == c3 {
		t.Fatal("distinct labels share a counter")
	}
	c1.Add(3)
	if got := r.Snapshot().CounterValue("aoe.retransmits", L("node", "node0")); got != 3 {
		t.Fatalf("snapshot counter = %d, want 3", got)
	}
}

func TestRegistryLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("a", "1"), L("b", "2"))
	b := r.Counter("x", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order changed instrument identity")
	}
}

func TestRegistryAdoptExisting(t *testing.T) {
	r := NewRegistry()
	var stats struct {
		Redirects Counter
	}
	r.RegisterCounter("mediator.redirects", &stats.Redirects, L("node", "node0"))
	stats.Redirects.Add(7)
	if got := r.Snapshot().CounterValue("mediator.redirects", L("node", "node0")); got != 7 {
		t.Fatalf("adopted counter snapshot = %d, want 7", got)
	}
	// Re-registering the same identity replaces the instrument.
	var fresh Counter
	fresh.Add(1)
	r.RegisterCounter("mediator.redirects", &fresh, L("node", "node0"))
	if got := r.Snapshot().CounterValue("mediator.redirects", L("node", "node0")); got != 1 {
		t.Fatalf("replaced counter snapshot = %d, want 1", got)
	}
}

func TestRegistryGaugeAndHistogram(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("vblade.queue_depth")
	g.Set(4)
	g.Add(-1)
	h := r.Histogram("cpuvirt.exit_cost", L("reason", "pio"))
	h.Observe(1200 * sim.Nanosecond)
	h.Observe(800 * sim.Nanosecond)

	snap := r.Snapshot()
	gs, ok := snap.Get("vblade.queue_depth")
	if !ok || gs.Kind != "gauge" || gs.Value != 3 {
		t.Fatalf("gauge sample = %+v, ok=%v", gs, ok)
	}
	hs, ok := snap.Get("cpuvirt.exit_cost", L("reason", "pio"))
	if !ok || hs.Kind != "histogram" || hs.Count != 2 ||
		hs.Min != 800*sim.Nanosecond || hs.Max != 1200*sim.Nanosecond {
		t.Fatalf("histogram sample = %+v, ok=%v", hs, ok)
	}
}

// TestGaugeIncDec pins the set/inc/dec convenience surface the control
// plane uses for population gauges (free pool, queue depth, quarantine).
func TestGaugeIncDec(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("cloud.queue_depth")
	g.Set(3)
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Fatalf("after Set(3)+Inc+Inc+Dec, Value = %g, want 4", got)
	}
	gs, ok := r.Snapshot().Get("cloud.queue_depth")
	if !ok || gs.Kind != "gauge" || gs.Value != 4 {
		t.Fatalf("gauge snapshot = %+v, ok=%v", gs, ok)
	}
	// A population gauge can legitimately pass through negative values
	// (dec before the matching inc lands in the same instant); Dec must
	// not clamp.
	var free Gauge
	free.Dec()
	if free.Value() != -1 {
		t.Fatalf("Dec on zero gauge = %g, want -1", free.Value())
	}
	// Adopted gauges behave identically to created ones.
	var depth Gauge
	r.RegisterGauge("cloud.free_pool", &depth)
	depth.Inc()
	if got, _ := r.Snapshot().Get("cloud.free_pool"); got.Value != 1 {
		t.Fatalf("adopted gauge snapshot = %+v", got)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc() // live but unregistered
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(sim.Millisecond)
	r.RegisterCounter("w", &Counter{})
	r.RegisterGauge("w", &Gauge{})
	r.RegisterHistogram("w", &Histogram{})
	if snap := r.Snapshot(); len(snap.Samples) != 0 {
		t.Fatalf("nil registry snapshot has %d samples", len(snap.Samples))
	}
}

func TestRegistrySnapshotDeterministicAndPrefixed(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.second")
	r.Counter("a.first", L("node", "n1"))
	r.Counter("a.first", L("node", "n0"))
	snap := r.Snapshot()
	var ids []string
	for _, s := range snap.Samples {
		ids = append(ids, key(s.Name, s.Labels))
	}
	want := []string{"a.first{node=n0}", "a.first{node=n1}", "b.second"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", ids, want)
		}
	}
	if got := snap.Prefixed("a."); len(got) != 2 {
		t.Fatalf("Prefixed(a.) = %d samples, want 2", len(got))
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		//bmcast:allow simdrift test exercises cross-goroutine registry safety, not sim behavior
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared", L("k", "v"))
				r.Histogram("hist", L("k", "v"))
			}
		}()
	}
	wg.Wait()
	if len(r.Snapshot().Samples) != 2 {
		t.Fatalf("concurrent registration produced %d samples, want 2", len(r.Snapshot().Samples))
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("mediator.redirects", L("node", "node0")).Add(12)
	r.Gauge("vblade.queue_depth").Set(2)
	r.Histogram("aoe.rtt").Observe(400 * sim.Microsecond)
	var b strings.Builder
	r.Snapshot().WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"counter", "mediator.redirects{node=node0}", "12",
		"gauge", "vblade.queue_depth",
		"histogram", "aoe.rtt", "n=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
}
