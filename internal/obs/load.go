package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// chromeEvent mirrors the exporter's entry shape; unknown fields are
// ignored so traces annotated by other tools still load.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// LoadChromeTrace rebuilds a trace recorder from Chrome trace-event JSON
// previously written by trace.WriteChromeTrace. Span IDs and causal
// edges round-trip through the span args (span_id / parent / flow_from);
// the paired "s"/"f" flow events are redundant with those and skipped.
// The recorder's clock is pinned at the latest instant in the trace.
func LoadChromeTrace(r io.Reader) (*trace.Recorder, error) {
	var ct chromeTrace
	if err := json.NewDecoder(r).Decode(&ct); err != nil {
		return nil, fmt.Errorf("obs: parse chrome trace: %w", err)
	}

	// Pass 1: metadata. process_name maps pid → node.
	nodeOf := map[int]string{}
	for _, e := range ct.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			if name, ok := e.Args["name"].(string); ok {
				nodeOf[e.Pid] = name
			}
		}
	}

	// Pass 2: find the trace end so the recorder's "now" is pinned there
	// (open spans re-imported as open must report their exported length).
	var end sim.Time
	for _, e := range ct.TraceEvents {
		if e.Ph != "X" && e.Ph != "i" {
			continue
		}
		t := toSimTime(e.TS)
		if e.Dur != nil {
			t = t.Add(toSimDur(*e.Dur))
		}
		if t > end {
			end = t
		}
	}
	rec := trace.NewRecorder(trace.FixedClock(end))

	// Pass 3: spans and events.
	for _, e := range ct.TraceEvents {
		node, ok := nodeOf[e.Pid]
		if !ok {
			node = fmt.Sprintf("pid%d", e.Pid)
		}
		switch e.Ph {
		case "X":
			s := trace.Span{
				Node:  node,
				Cat:   e.Cat,
				Name:  e.Name,
				Start: toSimTime(e.TS),
			}
			s.Stop = s.Start
			if e.Dur != nil {
				s.Stop = s.Start.Add(toSimDur(*e.Dur))
			}
			s.ID = argInt64(e.Args, "span_id")
			s.Parent = argInt64(e.Args, "parent")
			s.FlowFrom = argInt64(e.Args, "flow_from")
			if u, _ := e.Args["unfinished"].(bool); u {
				s.Open = true
			}
			s.Args = restAttrs(e.Args)
			if s.ID == 0 {
				return nil, fmt.Errorf("obs: span %q at ts=%v has no span_id arg (trace not written by this tool?)", e.Name, e.TS)
			}
			rec.ImportSpan(s)
		case "i":
			rec.ImportEvent(trace.Event{
				Time: toSimTime(e.TS),
				Node: node,
				Cat:  e.Cat,
				Name: e.Name,
				Args: restAttrs(e.Args),
			})
		}
		// "M" handled above; "s"/"f" flow events are redundant.
	}
	return rec, nil
}

// toSimTime converts trace microseconds back to simulation nanoseconds.
// Exported values are exact multiples of 1/1000 µs, so rounding recovers
// the original integer nanosecond.
func toSimTime(ts float64) sim.Time { return sim.Time(math.Round(ts * float64(sim.Microsecond))) }

func toSimDur(d float64) sim.Duration { return sim.Duration(math.Round(d * float64(sim.Microsecond))) }

// argInt64 fetches a numeric arg (JSON numbers decode as float64).
func argInt64(args map[string]any, key string) int64 {
	switch v := args[key].(type) {
	case float64:
		return int64(v)
	case int64:
		return v
	}
	return 0
}

// restAttrs converts the args object back to attributes, dropping the
// exporter's bookkeeping keys and restoring integral floats to int64 so
// a loaded trace analyzes identically to a live one. Keys are sorted for
// deterministic attribute order.
func restAttrs(args map[string]any) []trace.Attr {
	if len(args) == 0 {
		return nil
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		switch k {
		case "span_id", "parent", "flow_from", "unfinished":
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return nil
	}
	out := make([]trace.Attr, 0, len(keys))
	for _, k := range keys {
		v := args[k]
		if f, ok := v.(float64); ok && f == math.Trunc(f) {
			v = int64(f)
		}
		out = append(out, trace.Attr{Key: k, Value: v})
	}
	return out
}
