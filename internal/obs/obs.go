// Package obs is the causal-trace analysis layer: it turns a recorded
// deployment trace (live *trace.Recorder or a re-imported Chrome trace)
// into a deterministic critical-path and latency-attribution report —
// the paper's §5 evaluation currency ("where does time-to-bare-metal
// go") as a machine-checkable artifact.
//
// # Attribution model
//
// Each instance's time-to-ready window [requested, ready] is decomposed
// by exact hierarchical subtraction, so the buckets sum to the measured
// total by construction (no residual "other" bucket):
//
//	firmware        requested → Initialization span start
//	vmm-init        the Initialization phase (VMM network boot)
//	guest-local     boot window time outside mediated commands
//	mediation       mediated-command time outside AoE round trips
//	net-wait        AoE round-trip time not accounted on the server
//	server-queue    vblade queue wait (serve-span qwait attribute)
//	cache-miss      cold-storage stalls (serve-span cold attribute)
//	server-service  remaining vblade service time (CPU + copy-out)
//
// Only spans on the guest's critical path count: mediated redirect and
// protect spans parented (transitively) under the guest's boot, and the
// AoE round trips parented under those. Background-copy traffic hangs
// off bg-fetch spans and is excluded automatically by the parent filter.
//
// # Determinism
//
// All arithmetic is integer nanoseconds; instances, buckets, sources,
// and anomalies are emitted in sorted order; the JSON encoding has no
// maps. Same seed, same trace, byte-identical report.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BucketNames is the fixed bucket order of every attribution.
var BucketNames = []string{
	"firmware", "vmm-init", "guest-local", "mediation",
	"net-wait", "server-queue", "cache-miss", "server-service",
}

// Bucket is one attribution component.
type Bucket struct {
	Name string `json:"name"`
	Dur  int64  `json:"dur_ns"`
}

// PathStep is one hop of an instance's critical-path chain.
type PathStep struct {
	Node string `json:"node"`
	Cat  string `json:"cat"`
	Name string `json:"name"`
	Dur  int64  `json:"dur_ns"`
}

// Instance is one analyzed deployment.
type Instance struct {
	Node            string     `json:"node"`
	ID              int64      `json:"instance"` // cloud instance ID, -1 unknown
	Requested       int64      `json:"requested_ns"`
	Ready           int64      `json:"ready_ns"`
	BareMetal       int64      `json:"baremetal_ns,omitempty"`
	TimeToReady     int64      `json:"time_to_ready_ns"`
	TimeToBareMetal int64      `json:"time_to_baremetal_ns,omitempty"`
	Buckets         []Bucket   `json:"buckets"`
	CriticalPath    []PathStep `json:"critical_path,omitempty"`
}

// Percentiles summarizes a latency population (nearest-rank).
type Percentiles struct {
	P50   int64 `json:"p50_ns"`
	P99   int64 `json:"p99_ns"`
	Worst int64 `json:"worst_ns"`
}

// Fleet is the cross-instance summary.
type Fleet struct {
	Instances int          `json:"instances"`
	Ready     Percentiles  `json:"time_to_ready"`
	BareMetal *Percentiles `json:"time_to_baremetal,omitempty"`
	Buckets   []Bucket     `json:"bucket_totals"`
}

// Source is one serving source's byte count (from the metrics snapshot).
type Source struct {
	Node  string `json:"node"`
	Bytes int64  `json:"served_bytes"`
}

// Anomaly flags an instance whose time-to-ready is well above the fleet
// median, with the bucket that explains most of the delta.
type Anomaly struct {
	Node        string  `json:"node"`
	ID          int64   `json:"instance"`
	DeltaPct    float64 `json:"delta_pct"`      // % over fleet median
	TopBucket   string  `json:"top_bucket"`     // largest bucket excess vs median
	TopSharePct float64 `json:"top_share_pct"`  // share of the delta it explains
}

// Report is the full analysis output.
type Report struct {
	Instances []Instance `json:"instances"`
	Fleet     Fleet      `json:"fleet"`
	Sources   []Source   `json:"sources,omitempty"`
	Anomalies []Anomaly  `json:"anomalies,omitempty"`
}

// anomalyThreshold flags instances this fraction above the median.
const anomalyThreshold = 1.10

// index holds one-pass lookups over a trace. A fleet trace carries
// hundreds of thousands of spans and hundreds of instances; analysis
// walks each instance's own spans through these maps instead of
// re-scanning the whole trace per node, which turned Analyze quadratic.
type index struct {
	byID     map[int64]*trace.Span
	byNode   map[string][]*trace.Span
	events   map[string][]*trace.Event
	children map[int64][]*trace.Span
	flows    map[int64][]*trace.Span
	// serves lists aoe/serve spans keyed by the request span they flowed
	// from, for the per-request server-side split.
	serves map[int64][]*trace.Span
}

// newIndex builds every lookup in one pass over spans and events; all
// per-key lists preserve recording order, so downstream iteration sees
// the same sequence a full scan would.
func newIndex(tr *trace.Recorder) *index {
	spans := tr.Spans()
	ix := &index{
		byID:     make(map[int64]*trace.Span, len(spans)),
		byNode:   map[string][]*trace.Span{},
		events:   map[string][]*trace.Event{},
		children: map[int64][]*trace.Span{},
		flows:    map[int64][]*trace.Span{},
		serves:   map[int64][]*trace.Span{},
	}
	for _, s := range spans {
		ix.byID[s.ID] = s
		ix.byNode[s.Node] = append(ix.byNode[s.Node], s)
		if s.Parent != 0 {
			ix.children[s.Parent] = append(ix.children[s.Parent], s)
		}
		if s.FlowFrom != 0 {
			ix.flows[s.FlowFrom] = append(ix.flows[s.FlowFrom], s)
			if s.Cat == "aoe" && s.Name == "serve" {
				ix.serves[s.FlowFrom] = append(ix.serves[s.FlowFrom], s)
			}
		}
	}
	for i := range tr.Events() {
		e := &tr.Events()[i]
		ix.events[e.Node] = append(ix.events[e.Node], e)
	}
	return ix
}

// Analyze builds the report from a recorded trace and an optional
// metrics snapshot (pass the zero Snapshot when none is available).
func Analyze(tr *trace.Recorder, snap metrics.Snapshot) (*Report, error) {
	if tr == nil {
		return nil, fmt.Errorf("obs: nil trace recorder")
	}
	ix := newIndex(tr)
	nodes := instanceNodes(ix)
	rep := &Report{}
	for _, node := range nodes {
		in, err := analyzeInstance(ix, node)
		if err != nil {
			return nil, fmt.Errorf("obs: %s: %w", node, err)
		}
		if in != nil {
			rep.Instances = append(rep.Instances, *in)
		}
	}
	rep.Fleet = summarize(rep.Instances)
	rep.Sources = sources(snap)
	rep.Anomalies = anomalies(rep.Instances)
	return rep, nil
}

// instanceNodes lists, sorted, every node with an Initialization phase
// span — the signature of a deployment start.
func instanceNodes(ix *index) []string {
	var out []string
	for node, spans := range ix.byNode {
		for _, s := range spans {
			if s.Cat == "phase" && s.Name == "Initialization" {
				out = append(out, node)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// cloudEvent returns the time of the first cloud event with the given
// name on node, and the instance ID attribute (-1 if absent).
func cloudEvent(ix *index, node, name string) (sim.Time, int64, bool) {
	for _, e := range ix.events[node] {
		if e.Cat == "cloud" && e.Name == name {
			return e.Time, attrInt(e.Args, "instance", -1), true
		}
	}
	return 0, -1, false
}

// analyzeInstance decomposes one node's deployment. It returns nil (no
// error) when the node never reached ready.
func analyzeInstance(ix *index, node string) (*Instance, error) {
	var init, boot *trace.Span
	for _, s := range ix.byNode[node] {
		if init == nil && s.Cat == "phase" && s.Name == "Initialization" {
			init = s
		}
		if boot == nil && s.Cat == "guest" && s.Name == "boot" {
			boot = s
		}
	}
	if init == nil {
		return nil, fmt.Errorf("no Initialization span")
	}

	requested, id, haveReq := cloudEvent(ix, node, "requested")
	if !haveReq {
		// Single-node runs (bmcast-sim) have no cloud control plane; the
		// window starts at the earliest recorded instant on the node.
		requested = init.Start
		for _, e := range ix.events[node] {
			if e.Time < requested {
				requested = e.Time
			}
		}
	}
	ready, _, haveReady := cloudEvent(ix, node, "ready")
	if !haveReady {
		if boot == nil || boot.Open {
			return nil, nil // never became ready; nothing to attribute
		}
		ready = boot.Stop
	}
	in := &Instance{
		Node:        node,
		ID:          id,
		Requested:   int64(requested),
		Ready:       int64(ready),
		TimeToReady: int64(ready.Sub(requested)),
	}
	if bm, _, ok := cloudEvent(ix, node, "baremetal"); ok {
		in.BareMetal, in.TimeToBareMetal = int64(bm), int64(bm.Sub(requested))
	} else if sp := firstPhase(ix, node, "BareMetal"); sp != nil {
		in.BareMetal, in.TimeToBareMetal = int64(sp.Start), int64(sp.Start.Sub(requested))
	}

	in.Buckets = attribute(ix, node, init, requested, ready)
	if boot != nil {
		in.CriticalPath = criticalPath(ix, boot)
	}
	return in, nil
}

func firstPhase(ix *index, node, name string) *trace.Span {
	for _, s := range ix.byNode[node] {
		if s.Cat == "phase" && s.Name == name {
			return s
		}
	}
	return nil
}

// attribute performs the exact-sum decomposition of [requested, ready].
func attribute(ix *index, node string, init *trace.Span, requested, ready sim.Time) []Bucket {
	total := ready.Sub(requested)
	firmware := clampDur(init.Start.Sub(requested), total)
	initStop := init.Stop
	if init.Open || initStop > ready {
		initStop = ready
	}
	vmmInit := clampDur(initStop.Sub(init.Start), total-firmware)
	// Boot window: everything after VMM init up to ready.
	w0, w1 := init.Start.Add(vmmInit), ready

	// Mediated guest commands: redirect/protect spans on this node that
	// are on the guest's causal path (transitively under the boot span,
	// or parentless for robustness against untraced issue paths).
	var med []*trace.Span
	medIDs := map[int64]bool{}
	for _, s := range ix.byNode[node] {
		if s.Cat != "mediator" {
			continue
		}
		if s.Name != "redirect" && s.Name != "protect" {
			continue
		}
		if !onGuestPath(ix.byID, s) {
			continue
		}
		med = append(med, s)
		medIDs[s.ID] = true
	}
	medUnion := unionWithin(med, w0, w1)

	// AoE round trips issued by those mediated commands.
	var reqs []*trace.Span
	for _, s := range ix.byNode[node] {
		if s.Cat != "aoe" {
			continue
		}
		if s.Name != "read" && s.Name != "write" {
			continue
		}
		if !medIDs[s.Parent] {
			continue
		}
		reqs = append(reqs, s)
	}
	aoeUnion := unionWithin(reqs, w0, w1)
	mediation := medUnion - aoeUnion
	guestLocal := clampDur(w1.Sub(w0)-medUnion, w1.Sub(w0))

	// Per-request server-side split. The requests are serialized by the
	// mediator's device lock, so their clipped durations sum to the
	// union; apportion guards the exact-sum property anyway.
	durs := make([]int64, len(reqs))
	for i, r := range reqs {
		durs[i] = int64(clipLen(r, w0, w1))
	}
	durs = apportion(int64(aoeUnion), durs)
	var netWait, queue, miss, service int64
	for i, r := range reqs {
		var qsum, csum, ssum int64
		for _, sv := range ix.serves[r.ID] {
			q := attrInt(sv.Args, "qwait", 0)
			c := attrInt(sv.Args, "cold", 0)
			d := int64(sv.Duration())
			qsum += q
			csum += c
			ssum += maxInt64(d-c, 0)
		}
		server := qsum + csum + ssum
		if server > durs[i] {
			server = durs[i]
		}
		parts := apportion(server, []int64{qsum, csum, ssum})
		queue += parts[0]
		miss += parts[1]
		service += parts[2]
		netWait += durs[i] - server
	}

	return []Bucket{
		{Name: "firmware", Dur: int64(firmware)},
		{Name: "vmm-init", Dur: int64(vmmInit)},
		{Name: "guest-local", Dur: int64(guestLocal)},
		{Name: "mediation", Dur: int64(mediation)},
		{Name: "net-wait", Dur: netWait},
		{Name: "server-queue", Dur: queue},
		{Name: "cache-miss", Dur: miss},
		{Name: "server-service", Dur: service},
	}
}

// onGuestPath reports whether s is transitively parented under a guest
// boot span. Parentless mediated commands (issued by an untraced proc)
// count as guest-path for robustness.
func onGuestPath(byID map[int64]*trace.Span, s *trace.Span) bool {
	if s.Parent == 0 {
		return true
	}
	for cur := byID[s.Parent]; cur != nil; cur = byID[cur.Parent] {
		if cur.Cat == "guest" && cur.Name == "boot" {
			return true
		}
		if cur.Cat == "vmm" { // bg-fetch / bg-write: background traffic
			return false
		}
		if cur.Parent == 0 {
			return true // rooted elsewhere (e.g. directly under a phase)
		}
	}
	return true
}

// criticalPath walks the longest-child chain down from the boot span,
// crossing to the server via the flow edge at the bottom.
func criticalPath(ix *index, boot *trace.Span) []PathStep {
	var out []PathStep
	for cur := boot; cur != nil; {
		out = append(out, PathStep{Node: cur.Node, Cat: cur.Cat, Name: cur.Name, Dur: int64(cur.Duration())})
		next := longest(ix.children[cur.ID])
		if next == nil {
			// Cross the network: the serve span this request flowed into.
			if sv := longest(ix.flows[cur.ID]); sv != nil && sv != cur {
				out = append(out, PathStep{Node: sv.Node, Cat: sv.Cat, Name: sv.Name, Dur: int64(sv.Duration())})
			}
			break
		}
		cur = next
	}
	return out
}

// longest picks the longest span (earliest start, then lowest ID, break
// ties) — deterministic under equal durations.
func longest(spans []*trace.Span) *trace.Span {
	var best *trace.Span
	for _, s := range spans {
		if best == nil || s.Duration() > best.Duration() ||
			(s.Duration() == best.Duration() && s.ID < best.ID) {
			best = s
		}
	}
	return best
}

// summarize computes fleet percentiles and bucket totals.
func summarize(ins []Instance) Fleet {
	f := Fleet{Instances: len(ins)}
	if len(ins) == 0 {
		return f
	}
	ready := make([]int64, 0, len(ins))
	var bm []int64
	totals := make([]int64, len(BucketNames))
	for _, in := range ins {
		ready = append(ready, in.TimeToReady)
		if in.TimeToBareMetal > 0 {
			bm = append(bm, in.TimeToBareMetal)
		}
		for i, b := range in.Buckets {
			totals[i] += b.Dur
		}
	}
	f.Ready = percentiles(ready)
	if len(bm) > 0 {
		p := percentiles(bm)
		f.BareMetal = &p
	}
	for i, name := range BucketNames {
		f.Buckets = append(f.Buckets, Bucket{Name: name, Dur: totals[i]})
	}
	return f
}

// percentiles computes nearest-rank p50/p99/worst over vs.
func percentiles(vs []int64) Percentiles {
	s := append([]int64(nil), vs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(p float64) int64 {
		r := int(math.Ceil(p / 100 * float64(len(s))))
		if r < 1 {
			r = 1
		}
		if r > len(s) {
			r = len(s)
		}
		return s[r-1]
	}
	return Percentiles{P50: rank(50), P99: rank(99), Worst: s[len(s)-1]}
}

// sources extracts per-source served bytes from the snapshot.
func sources(snap metrics.Snapshot) []Source {
	var out []Source
	for _, s := range snap.Prefixed("vblade.bytes_served") {
		node := ""
		for _, l := range s.Labels {
			if l.Key == "node" {
				node = l.Value
			}
		}
		out = append(out, Source{Node: node, Bytes: int64(s.Value)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// anomalies flags instances >10% over the fleet median and names the
// bucket explaining the largest share of the excess.
func anomalies(ins []Instance) []Anomaly {
	if len(ins) < 2 {
		return nil
	}
	ttrs := make([]int64, len(ins))
	for i, in := range ins {
		ttrs[i] = in.TimeToReady
	}
	median := percentiles(ttrs).P50
	if median <= 0 {
		return nil
	}
	// Per-bucket medians across the fleet.
	bmed := make([]int64, len(BucketNames))
	col := make([]int64, len(ins))
	for bi := range BucketNames {
		for i, in := range ins {
			col[i] = in.Buckets[bi].Dur
		}
		bmed[bi] = percentiles(col).P50
	}
	var out []Anomaly
	for _, in := range ins {
		if float64(in.TimeToReady) <= anomalyThreshold*float64(median) {
			continue
		}
		delta := in.TimeToReady - median
		topIdx, topExcess := 0, int64(0)
		for bi, b := range in.Buckets {
			if ex := b.Dur - bmed[bi]; ex > topExcess {
				topIdx, topExcess = bi, ex
			}
		}
		share := 0.0
		if delta > 0 {
			share = roundPct(100 * float64(topExcess) / float64(delta))
		}
		out = append(out, Anomaly{
			Node:        in.Node,
			ID:          in.ID,
			DeltaPct:    roundPct(100 * float64(delta) / float64(median)),
			TopBucket:   BucketNames[topIdx],
			TopSharePct: share,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DeltaPct != out[j].DeltaPct {
			return out[i].DeltaPct > out[j].DeltaPct
		}
		return out[i].Node < out[j].Node
	})
	return out
}

func roundPct(x float64) float64 {
	if x < 0 {
		return float64(int64(x*10-0.5)) / 10
	}
	return float64(int64(x*10+0.5)) / 10
}

// --- interval helpers ----------------------------------------------------

// clipLen returns the length of span s clipped to [a, b].
func clipLen(s *trace.Span, a, b sim.Time) sim.Duration {
	lo, hi := s.Start, s.Stop
	if s.Open {
		hi = b
	}
	if lo < a {
		lo = a
	}
	if hi > b {
		hi = b
	}
	if hi <= lo {
		return 0
	}
	return hi.Sub(lo)
}

// unionWithin returns the total length of the union of the spans clipped
// to [a, b].
func unionWithin(spans []*trace.Span, a, b sim.Time) sim.Duration {
	type iv struct{ lo, hi sim.Time }
	ivs := make([]iv, 0, len(spans))
	for _, s := range spans {
		lo, hi := s.Start, s.Stop
		if s.Open {
			hi = b
		}
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if hi > lo {
			ivs = append(ivs, iv{lo, hi})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var total sim.Duration
	var curLo, curHi sim.Time
	started := false
	for _, v := range ivs {
		if !started || v.lo > curHi {
			if started {
				total += curHi.Sub(curLo)
			}
			curLo, curHi, started = v.lo, v.hi, true
			continue
		}
		if v.hi > curHi {
			curHi = v.hi
		}
	}
	if started {
		total += curHi.Sub(curLo)
	}
	return total
}

// apportion scales parts to sum exactly to total, preserving proportions
// via largest-remainder integer apportionment. A zero parts-sum returns
// all zeros (total is then unattributed by the caller's construction).
func apportion(total int64, parts []int64) []int64 {
	out := make([]int64, len(parts))
	var sum int64
	for _, p := range parts {
		sum += p
	}
	if sum == 0 || total == 0 {
		return out
	}
	if sum == total {
		copy(out, parts)
		return out
	}
	type rem struct {
		idx int
		r   uint64
	}
	rems := make([]rem, len(parts))
	var assigned int64
	for i, p := range parts {
		// p*total can exceed int64 for nanosecond durations; do the
		// scaled division in 128 bits. p <= sum, so the quotient fits.
		hi, lo := bits.Mul64(uint64(p), uint64(total))
		q, r := bits.Div64(hi, lo, uint64(sum))
		out[i] = int64(q)
		rems[i] = rem{idx: i, r: r}
		assigned += out[i]
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].r != rems[j].r {
			return rems[i].r > rems[j].r
		}
		return rems[i].idx < rems[j].idx
	})
	for k := int64(0); k < total-assigned; k++ {
		out[rems[int(k)%len(rems)].idx]++
	}
	return out
}

func clampDur(d, max sim.Duration) sim.Duration {
	if d < 0 {
		return 0
	}
	if d > max {
		return max
	}
	return d
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// attrInt fetches an integer attribute by key, accepting the int64 the
// live recorder stores and the float64 a JSON re-import produces.
func attrInt(attrs []trace.Attr, key string, def int64) int64 {
	for _, a := range attrs {
		if a.Key != key {
			continue
		}
		switch v := a.Value.(type) {
		case int64:
			return v
		case int:
			return int64(v)
		case float64:
			return int64(v)
		}
	}
	return def
}
