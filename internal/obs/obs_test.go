package obs

import (
	"bytes"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// singleDeploy runs one traced deployment to bare metal.
func singleDeploy(t *testing.T) (*testbed.Testbed, *testbed.Node) {
	t.Helper()
	cfg := testbed.DefaultConfig()
	cfg.ImageBytes = 32 << 20
	cfg.DiskSectors = 1 << 20
	cfg.EnableTrace = true
	tb := testbed.New(cfg)
	n := tb.AddNode(cfg)
	n.M.Firmware.InitTime = sim.Second
	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 4 << 20
	bp.CPUTime = sim.Second
	bp.SpanSectors = cfg.ImageBytes / 2 / 512
	ok := false
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		res, err := tb.DeployBMcast(p, n, core.DefaultConfig(), bp)
		if err != nil {
			t.Error(err)
			tb.K.Stop()
			return
		}
		tb.WaitBareMetal(p, n, res)
		ok = true
		tb.K.Stop()
	})
	tb.K.Run()
	if !ok {
		t.Fatal("deployment did not complete")
	}
	return tb, n
}

// fleetDeploy runs a small traced cloud fleet to bare metal.
func fleetDeploy(t *testing.T, fleet int, seed int64) *testbed.Testbed {
	t.Helper()
	cfg := testbed.DefaultConfig()
	cfg.Seed = seed
	cfg.ImageBytes = 32 << 20
	cfg.DiskSectors = 1 << 20
	cfg.EnableTrace = true
	tb := testbed.New(cfg)
	c := cloud.NewController(tb, cfg, fleet)
	c.BootProfile.TotalBytes = 4 << 20
	c.BootProfile.CPUTime = sim.Second
	for _, n := range tb.Nodes {
		n.M.Firmware.InitTime = 2 * sim.Second
	}
	for i := 0; i < fleet; i++ {
		tb.K.Spawn("tenant", func(p *sim.Proc) {
			in, err := c.Request(cloud.StrategyBMcast)
			if err != nil {
				t.Error(err)
				return
			}
			if !in.WaitReady(p) {
				t.Errorf("instance %d: %v", in.ID, in.Err())
			}
		})
	}
	// Run until every instance reached bare metal (the controller's
	// deploy procs keep running past ready to watch the hand-off).
	allBare := func() bool {
		ins := c.Instances()
		if len(ins) < fleet {
			return false
		}
		for _, in := range ins {
			if in.BareMetalAt == 0 {
				return false
			}
		}
		return true
	}
	for !allBare() && tb.K.Pending() > 0 {
		tb.K.RunUntil(tb.K.Now().Add(sim.Hour))
	}
	if !allBare() {
		t.Fatal("fleet did not reach bare metal")
	}
	return tb
}

// TestSingleDeploymentAttribution checks the exact-sum property on one
// deployment and the shape of the critical path.
func TestSingleDeploymentAttribution(t *testing.T) {
	tb, n := singleDeploy(t)
	rep, err := Analyze(tb.Trace, tb.Metrics.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instances) != 1 {
		t.Fatalf("analyzed %d instances, want 1", len(rep.Instances))
	}
	in := rep.Instances[0]
	if in.Node != n.M.Name {
		t.Fatalf("instance node = %q, want %q", in.Node, n.M.Name)
	}
	var sum int64
	for _, b := range in.Buckets {
		if b.Dur < 0 {
			t.Fatalf("bucket %s is negative: %d", b.Name, b.Dur)
		}
		sum += b.Dur
	}
	if sum != in.TimeToReady {
		t.Fatalf("buckets sum to %d, time-to-ready is %d (off by %d)",
			sum, in.TimeToReady, in.TimeToReady-sum)
	}
	if in.TimeToReady <= 0 {
		t.Fatal("non-positive time-to-ready")
	}
	// The big contributors must be non-zero on a real deployment.
	byName := map[string]int64{}
	for _, b := range in.Buckets {
		byName[b.Name] += b.Dur
	}
	// No cloud control plane here, so the window starts at the
	// Initialization span and the firmware bucket is legitimately zero.
	for _, want := range []string{"vmm-init", "guest-local", "mediation", "net-wait"} {
		if byName[want] == 0 {
			t.Fatalf("bucket %q is zero on a real deployment: %+v", want, in.Buckets)
		}
	}

	cp := in.CriticalPath
	if len(cp) < 2 {
		t.Fatalf("critical path too short: %+v", cp)
	}
	if cp[0].Cat != "guest" || cp[0].Name != "boot" {
		t.Fatalf("critical path must start at the boot span, got %+v", cp[0])
	}
	// Sources come from the metrics snapshot.
	if len(rep.Sources) == 0 || rep.Sources[0].Bytes == 0 {
		t.Fatalf("no served-bytes sources: %+v", rep.Sources)
	}
}

// TestFleetAttribution checks exact-sum per instance across a cloud
// fleet, plus the fleet summary invariants.
func TestFleetAttribution(t *testing.T) {
	tb := fleetDeploy(t, 4, 1)
	rep, err := Analyze(tb.Trace, tb.Metrics.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instances) != 4 {
		t.Fatalf("analyzed %d instances, want 4", len(rep.Instances))
	}
	ids := map[int64]bool{}
	for _, in := range rep.Instances {
		if in.ID < 0 {
			t.Fatalf("instance on %s has no cloud ID", in.Node)
		}
		ids[in.ID] = true
		var sum int64
		for _, b := range in.Buckets {
			sum += b.Dur
		}
		if sum != in.TimeToReady {
			t.Fatalf("instance %d: buckets sum %d != time-to-ready %d", in.ID, sum, in.TimeToReady)
		}
		if in.TimeToBareMetal < in.TimeToReady {
			t.Fatalf("instance %d: bare-metal %d before ready %d", in.ID, in.TimeToBareMetal, in.TimeToReady)
		}
	}
	if len(ids) != 4 {
		t.Fatalf("duplicate instance IDs: %v", ids)
	}
	f := rep.Fleet
	if f.Instances != 4 || f.Ready.P50 <= 0 || f.Ready.Worst < f.Ready.P99 || f.Ready.P99 < f.Ready.P50 {
		t.Fatalf("fleet percentiles malformed: %+v", f)
	}
	if f.BareMetal == nil || f.BareMetal.P50 < f.Ready.P50 {
		t.Fatalf("bare-metal percentiles malformed: %+v", f.BareMetal)
	}
	var bsum, tsum int64
	for _, b := range f.Buckets {
		bsum += b.Dur
	}
	for _, in := range rep.Instances {
		tsum += in.TimeToReady
	}
	if bsum != tsum {
		t.Fatalf("fleet bucket totals %d != sum of time-to-ready %d", bsum, tsum)
	}
}

// TestReportDeterministic renders the analysis of two identical runs and
// requires byte-identical JSON.
func TestReportDeterministic(t *testing.T) {
	render := func() []byte {
		tb := fleetDeploy(t, 3, 7)
		rep, err := Analyze(tb.Trace, tb.Metrics.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed analyses differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestChromeTraceRoundTrip exports a trace, re-imports it, and requires
// the imported recorder to carry the same spans/events and produce the
// same analysis bytes as the live recorder.
func TestChromeTraceRoundTrip(t *testing.T) {
	tb, _ := singleDeploy(t)
	snap := tb.Metrics.Snapshot()

	var exported bytes.Buffer
	if err := tb.Trace.WriteChromeTrace(&exported); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadChromeTrace(bytes.NewReader(exported.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(loaded.Spans()), len(tb.Trace.Spans()); got != want {
		t.Fatalf("loaded %d spans, want %d", got, want)
	}
	if got, want := len(loaded.Events()), len(tb.Trace.Events()); got != want {
		t.Fatalf("loaded %d events, want %d", got, want)
	}
	for i, s := range tb.Trace.Spans() {
		l := loaded.SpanByID(s.ID)
		if l == nil {
			t.Fatalf("span %d lost on round trip", s.ID)
		}
		if l.Parent != s.Parent || l.FlowFrom != s.FlowFrom || l.Node != s.Node ||
			l.Cat != s.Cat || l.Name != s.Name || l.Start != s.Start || l.Open != s.Open {
			t.Fatalf("span %d mismatch:\nlive   %+v\nloaded %+v", i, *s, *l)
		}
		if !s.Open && l.Stop != s.Stop {
			t.Fatalf("span %d stop mismatch: live %v loaded %v", s.ID, s.Stop, l.Stop)
		}
	}

	liveRep, err := Analyze(tb.Trace, snap)
	if err != nil {
		t.Fatal(err)
	}
	loadedRep, err := Analyze(loaded, snap)
	if err != nil {
		t.Fatal(err)
	}
	var live, reimported bytes.Buffer
	if err := liveRep.WriteJSON(&live); err != nil {
		t.Fatal(err)
	}
	if err := loadedRep.WriteJSON(&reimported); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), reimported.Bytes()) {
		t.Fatalf("live vs re-imported analysis differ:\n--- live ---\n%s\n--- loaded ---\n%s",
			live.Bytes(), reimported.Bytes())
	}
}

// TestReportWritersRender smoke-tests the text renderer and the JSON
// round trip through ReadReport.
func TestReportWritersRender(t *testing.T) {
	tb, _ := singleDeploy(t)
	rep, err := Analyze(tb.Trace, tb.Metrics.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	rep.WriteText(&txt)
	for _, want := range []string{"time-to-ready", "where the time went", "firmware", "critical path"} {
		if !bytes.Contains(txt.Bytes(), []byte(want)) {
			t.Fatalf("text report missing %q:\n%s", want, txt.String())
		}
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(js.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Fleet.Instances != rep.Fleet.Instances || len(back.Instances) != len(rep.Instances) {
		t.Fatal("report JSON round trip lost instances")
	}
}

// TestApportionExact pins the largest-remainder apportionment: exact
// total, proportionality, and 128-bit safety at nanosecond scales.
func TestApportionExact(t *testing.T) {
	cases := []struct {
		total int64
		parts []int64
	}{
		{100, []int64{1, 1, 1}},
		{7, []int64{3, 3, 3}},
		{0, []int64{5, 5}},
		{10, []int64{0, 0}},
		{1 << 40, []int64{1 << 39, 1 << 38, 1 << 37}},
		// ~18 minutes in ns split three ways: p*total overflows int64.
		{1_000_000_000_000, []int64{999_999_999_999, 1, 500_000_000_000}},
	}
	for _, c := range cases {
		out := apportion(c.total, c.parts)
		var psum, osum int64
		for _, p := range c.parts {
			psum += p
		}
		for _, o := range out {
			if o < 0 {
				t.Fatalf("apportion(%d, %v) = %v: negative share", c.total, c.parts, out)
			}
			osum += o
		}
		want := c.total
		if psum == 0 {
			want = 0
		}
		if osum != want {
			t.Fatalf("apportion(%d, %v) = %v: sums to %d, want %d", c.total, c.parts, out, osum, want)
		}
	}
}

// TestAnalyzeNil pins the error path.
func TestAnalyzeNil(t *testing.T) {
	if _, err := Analyze(nil, metrics.Snapshot{}); err == nil {
		t.Fatal("Analyze(nil) must error")
	}
	var _ = trace.Recorder{} // keep the import grouping honest
}
