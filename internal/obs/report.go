package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// WriteJSON writes the report as indented JSON. Every collection is
// emitted in sorted order and all durations are integer nanoseconds, so
// the same trace always serializes byte-identically — the property the
// CI determinism check diffs on.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report previously written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteText renders the human-readable report: fleet percentiles, the
// attribution table, per-source skew, anomalies, and (single-instance
// runs) the critical path.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "instances analyzed: %d\n", r.Fleet.Instances)
	if r.Fleet.Instances == 0 {
		return
	}
	fmt.Fprintf(w, "\ntime-to-ready      p50=%v  p99=%v  worst=%v\n",
		sim.Duration(r.Fleet.Ready.P50), sim.Duration(r.Fleet.Ready.P99), sim.Duration(r.Fleet.Ready.Worst))
	if bm := r.Fleet.BareMetal; bm != nil {
		fmt.Fprintf(w, "time-to-bare-metal p50=%v  p99=%v  worst=%v\n",
			sim.Duration(bm.P50), sim.Duration(bm.P99), sim.Duration(bm.Worst))
	}

	var total int64
	for _, b := range r.Fleet.Buckets {
		total += b.Dur
	}
	fmt.Fprintf(w, "\nwhere the time went (fleet total %v):\n", sim.Duration(total))
	for _, b := range r.Fleet.Buckets {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(b.Dur) / float64(total)
		}
		fmt.Fprintf(w, "  %-15s %12v  %5.1f%%\n", b.Name, sim.Duration(b.Dur), pct)
	}

	if len(r.Sources) > 0 {
		var served int64
		for _, s := range r.Sources {
			served += s.Bytes
		}
		fmt.Fprintf(w, "\nserved bytes by source:\n")
		for _, s := range r.Sources {
			pct := 0.0
			if served > 0 {
				pct = 100 * float64(s.Bytes) / float64(served)
			}
			fmt.Fprintf(w, "  %-12s %14d  %5.1f%%\n", s.Node, s.Bytes, pct)
		}
	}

	if len(r.Anomalies) > 0 {
		fmt.Fprintf(w, "\nanomalies (>10%% over fleet median):\n")
		for _, a := range r.Anomalies {
			id := fmt.Sprintf("instance %d", a.ID)
			if a.ID < 0 {
				id = "instance ?"
			}
			fmt.Fprintf(w, "  %s (%s): +%.1f%% vs fleet median, %.1f%% of delta = %s\n",
				id, a.Node, a.DeltaPct, a.TopSharePct, a.TopBucket)
		}
	}

	if len(r.Instances) == 1 && len(r.Instances[0].CriticalPath) > 0 {
		fmt.Fprintf(w, "\ncritical path:\n")
		for _, st := range r.Instances[0].CriticalPath {
			fmt.Fprintf(w, "  %-10s %-9s %-10s %v\n", st.Node, st.Cat, st.Name, sim.Duration(st.Dur))
		}
	}
}
