// Package report renders experiment results as aligned text tables and
// series summaries, the form the experiment CLI and EXPERIMENTS.md use.
package report

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Table is a titled grid of results.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case sim.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// SeriesSummary condenses a time series for tabular reporting: samples
// binned into nBins intervals with their mean values.
func SeriesSummary(s *metrics.Series, nBins int) string {
	if len(s.Points) == 0 {
		return "(empty)"
	}
	first, last := s.Points[0].T, s.Points[len(s.Points)-1].T
	span := last.Sub(first)
	if span <= 0 || nBins < 1 {
		return fmt.Sprintf("%.1f", s.Mean())
	}
	var b strings.Builder
	for i := 0; i < nBins; i++ {
		from := first.Add(sim.Duration(int64(span) * int64(i) / int64(nBins)))
		to := first.Add(sim.Duration(int64(span) * int64(i+1) / int64(nBins)))
		fmt.Fprintf(&b, "%.0f ", s.MeanBetween(from, to+1))
	}
	return strings.TrimSpace(b.String())
}
