package report

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func sample() *Table {
	t := &Table{Title: "T", Columns: []string{"name", "value"}}
	t.AddRow("alpha", 1.25)
	t.AddRow("b", sim.Duration(1500*sim.Millisecond))
	t.AddNote("hello %d", 7)
	return t
}

func TestTableString(t *testing.T) {
	out := sample().String()
	for _, want := range []string{"== T ==", "alpha", "1.2", "1.500s", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: the header and rows share the separator structure.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count: %d", len(lines))
	}
}

func TestTableMarkdown(t *testing.T) {
	out := sample().Markdown()
	for _, want := range []string{"### T", "| name | value |", "| --- | --- |", "| alpha | 1.2 |", "*hello 7*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesSummary(t *testing.T) {
	var s metrics.Series
	for i := 0; i < 100; i++ {
		s.Append(sim.Time(int64(i)*int64(sim.Second)), float64(i))
	}
	out := SeriesSummary(&s, 4)
	if len(strings.Fields(out)) != 4 {
		t.Fatalf("summary has %d bins, want 4: %q", len(strings.Fields(out)), out)
	}
	var empty metrics.Series
	if got := SeriesSummary(&empty, 4); got != "(empty)" {
		t.Fatalf("empty series summary = %q", got)
	}
	var one metrics.Series
	one.Append(0, 42)
	if got := SeriesSummary(&one, 4); !strings.Contains(got, "42") {
		t.Fatalf("single-point summary = %q", got)
	}
}
