package sim

import (
	"fmt"
	"math/rand"
)

// event is the kernel's record for one scheduled callback. Records are
// pooled: once an event fires, its record returns to the kernel's free
// list and is reused by a later At/After, so steady-state scheduling does
// not allocate. Callers never hold *event directly — At and After return a
// Handle, which stays valid (as a guaranteed no-op) after the record is
// recycled.
type event struct {
	when     Time
	seq      uint64 // schedule order; 0 once fired (invalidates handles)
	fn       func()
	index    int32 // position in the kernel's heap, -1 when not queued
	canceled bool
}

// Handle identifies a scheduled event so it can be canceled. The zero
// Handle is inert. A Handle held past its event's firing is harmless:
// the record's sequence number changes when the kernel recycles it, so a
// stale Cancel or Canceled is a no-op rather than an aliased mutation of
// whatever event reuses the record.
type Handle struct {
	k   *Kernel
	e   *event
	seq uint64
}

// live reports whether the handle still refers to the event it was issued
// for (scheduled or canceled, but not yet fired and recycled).
func (h Handle) live() bool { return h.e != nil && h.e.seq == h.seq }

// When reports the instant the event is scheduled to fire, or zero once
// the event has fired.
func (h Handle) When() Time {
	if !h.live() {
		return 0
	}
	return h.e.when
}

// Cancel prevents the event from firing, removing it from the event heap
// immediately (no tombstone is left behind). Canceling an already-fired or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if !h.live() || h.e.canceled {
		return
	}
	h.e.canceled = true
	if h.e.index >= 0 {
		h.k.remove(h.e)
	}
	// Canceled records are left to the garbage collector rather than
	// recycled, so Canceled() keeps answering truthfully for this handle.
	h.e.fn = nil
}

// Canceled reports whether Cancel was called before the event fired.
func (h Handle) Canceled() bool { return h.live() && h.e.canceled }

// Kernel is a discrete-event simulation engine. It is not safe for use from
// multiple goroutines except through the Proc handshake it manages itself.
type Kernel struct {
	now      Time
	heap     []*event // 4-ary min-heap ordered by (when, seq)
	free     []*event // recycled fired records, reused by At
	seq      uint64
	rng      *rand.Rand
	yield    chan struct{} // processes signal the kernel loop here
	procs    int           // live processes (running or parked)
	stopped  bool
	tracer   func(t Time, format string, args ...any)
	procHook func(t Time, ev ProcEvent, name string)

	// dom is non-nil when this kernel is one domain of a ShardSet (see
	// shard.go); it carries the outbox for cross-domain posts.
	dom *shardDomain
}

// ProcEvent classifies process lifecycle notifications for SetProcHook.
type ProcEvent uint8

// Process lifecycle events.
const (
	ProcSpawn ProcEvent = iota // process created
	ProcPark                   // process blocked, control returned to kernel
	ProcWake                   // process resumed
	ProcExit                   // process function returned
)

func (e ProcEvent) String() string {
	switch e {
	case ProcSpawn:
		return "proc-spawn"
	case ProcPark:
		return "proc-park"
	case ProcWake:
		return "proc-wake"
	default:
		return "proc-exit"
	}
}

// SetProcHook installs an observer for process lifecycle events (spawn,
// park, wake, exit). A nil hook — the default — disables observation;
// the only cost left on the scheduling path is one pointer check.
func (k *Kernel) SetProcHook(fn func(t Time, ev ProcEvent, name string)) { k.procHook = fn }

func (k *Kernel) notifyProc(ev ProcEvent, name string) {
	if k.procHook != nil {
		k.procHook(k.now, ev, name)
	}
}

// New returns a kernel whose random source is seeded with seed.
// The same seed always produces an identical run.
func New(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now reports the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// SetTracer installs a trace sink invoked by Tracef. A nil tracer disables
// tracing.
func (k *Kernel) SetTracer(fn func(t Time, format string, args ...any)) { k.tracer = fn }

// Tracef reports a trace line to the installed tracer, if any.
func (k *Kernel) Tracef(format string, args ...any) {
	if k.tracer != nil {
		k.tracer(k.now, format, args...)
	}
}

// At schedules fn to run at instant t, which must not be in the past.
func (k *Kernel) At(t Time, fn func()) Handle {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	var e *event
	if n := len(k.free) - 1; n >= 0 {
		e = k.free[n]
		k.free[n] = nil
		k.free = k.free[:n]
	} else {
		e = &event{}
	}
	e.when, e.seq, e.fn, e.canceled = t, k.seq, fn, false
	k.push(e)
	return Handle{k: k, e: e, seq: e.seq}
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (k *Kernel) After(d Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Stop makes Run return after the currently firing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// step fires the earliest pending event. It reports false when no events
// remain. The fired record is recycled before its callback runs, so a
// callback that immediately reschedules (the common timer-tick pattern)
// reuses the same cache-hot record.
func (k *Kernel) step() bool {
	if len(k.heap) == 0 {
		return false
	}
	e := k.popMin()
	if e.when < k.now {
		panic("sim: event heap time went backwards")
	}
	k.now = e.when
	fn := e.fn
	e.fn = nil
	e.seq = 0 // invalidate outstanding handles
	k.free = append(k.free, e)
	fn()
	return true
}

// Run fires events until none remain or Stop is called. Processes parked on
// signals with no pending wakeup are left parked; this mirrors a simulation
// that has gone quiescent.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.step() {
	}
}

// RunUntil fires events up to and including instant t, then sets the clock
// to t if it has not already advanced past it. If Stop fired mid-run the
// clock stays at the last fired event: events scheduled before t may still
// be pending, and warping past them would make a later RunUntil pop an
// event from the clock's past.
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for !k.stopped {
		if len(k.heap) == 0 || k.heap[0].when > t {
			break
		}
		k.step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// Pending reports the number of scheduled events. Canceled events are
// removed from the heap eagerly, so every counted event will fire.
func (k *Kernel) Pending() int { return len(k.heap) }

// --- 4-ary event heap ------------------------------------------------------
//
// A 4-ary layout halves the tree depth of the binary container/heap it
// replaced and keeps sibling comparisons inside one or two cache lines.
// Entries are concrete *event pointers — no interface boxing on push/pop —
// and the index field supports O(log n) removal for Cancel.

func eventLess(a, b *event) bool {
	return a.when < b.when || (a.when == b.when && a.seq < b.seq)
}

func (k *Kernel) push(e *event) {
	e.index = int32(len(k.heap))
	k.heap = append(k.heap, e)
	k.siftUp(int(e.index))
}

// popMin removes and returns the earliest event, leaving index == -1.
func (k *Kernel) popMin() *event {
	h := k.heap
	e := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	k.heap = h[:n]
	if n > 0 {
		h[0] = last
		last.index = 0
		k.siftDown(0)
	}
	e.index = -1
	return e
}

// remove deletes e from an arbitrary heap position.
func (k *Kernel) remove(e *event) {
	i := int(e.index)
	h := k.heap
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	k.heap = h[:n]
	if i < n {
		h[i] = last
		last.index = int32(i)
		k.siftDown(i)
		k.siftUp(int(last.index))
	}
	e.index = -1
}

func (k *Kernel) siftUp(i int) {
	h := k.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !eventLess(e, p) {
			break
		}
		h[i] = p
		p.index = int32(i)
		i = parent
	}
	h[i] = e
	e.index = int32(i)
}

func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	e := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		limit := first + 4
		if limit > n {
			limit = n
		}
		for c := first + 1; c < limit; c++ {
			if eventLess(h[c], h[best]) {
				best = c
			}
		}
		if !eventLess(h[best], e) {
			break
		}
		h[i] = h[best]
		h[i].index = int32(i)
		i = best
	}
	h[i] = e
	e.index = int32(i)
}
