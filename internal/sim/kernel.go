package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. It can be canceled before it fires.
type Event struct {
	when     Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when not queued
}

// When reports the instant the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine. It is not safe for use from
// multiple goroutines except through the Proc handshake it manages itself.
type Kernel struct {
	now      Time
	events   eventHeap
	seq      uint64
	rng      *rand.Rand
	yield    chan struct{} // processes signal the kernel loop here
	procs    int           // live processes (running or parked)
	stopped  bool
	tracer   func(t Time, format string, args ...any)
	procHook func(t Time, ev ProcEvent, name string)
}

// ProcEvent classifies process lifecycle notifications for SetProcHook.
type ProcEvent uint8

// Process lifecycle events.
const (
	ProcSpawn ProcEvent = iota // process created
	ProcPark                   // process blocked, control returned to kernel
	ProcWake                   // process resumed
	ProcExit                   // process function returned
)

func (e ProcEvent) String() string {
	switch e {
	case ProcSpawn:
		return "proc-spawn"
	case ProcPark:
		return "proc-park"
	case ProcWake:
		return "proc-wake"
	default:
		return "proc-exit"
	}
}

// SetProcHook installs an observer for process lifecycle events (spawn,
// park, wake, exit). A nil hook — the default — disables observation;
// the only cost left on the scheduling path is one pointer check.
func (k *Kernel) SetProcHook(fn func(t Time, ev ProcEvent, name string)) { k.procHook = fn }

func (k *Kernel) notifyProc(ev ProcEvent, name string) {
	if k.procHook != nil {
		k.procHook(k.now, ev, name)
	}
}

// New returns a kernel whose random source is seeded with seed.
// The same seed always produces an identical run.
func New(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now reports the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// SetTracer installs a trace sink invoked by Tracef. A nil tracer disables
// tracing.
func (k *Kernel) SetTracer(fn func(t Time, format string, args ...any)) { k.tracer = fn }

// Tracef reports a trace line to the installed tracer, if any.
func (k *Kernel) Tracef(format string, args ...any) {
	if k.tracer != nil {
		k.tracer(k.now, format, args...)
	}
}

// At schedules fn to run at instant t, which must not be in the past.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	e := &Event{when: t, seq: k.seq, fn: fn, index: -1}
	heap.Push(&k.events, e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Stop makes Run return after the currently firing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// step fires the earliest pending event. It reports false when no events
// remain.
func (k *Kernel) step() bool {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*Event)
		if e.canceled {
			continue
		}
		if e.when < k.now {
			panic("sim: event heap time went backwards")
		}
		k.now = e.when
		e.fn()
		return true
	}
	return false
}

// Run fires events until none remain or Stop is called. Processes parked on
// signals with no pending wakeup are left parked; this mirrors a simulation
// that has gone quiescent.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.step() {
	}
}

// RunUntil fires events up to and including instant t, then sets the clock
// to t if it has not already advanced past it.
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for !k.stopped {
		e := k.peek()
		if e == nil || e.when > t {
			break
		}
		k.step()
	}
	if k.now < t {
		k.now = t
	}
}

func (k *Kernel) peek() *Event {
	for len(k.events) > 0 && k.events[0].canceled {
		heap.Pop(&k.events)
	}
	if len(k.events) == 0 {
		return nil
	}
	return k.events[0]
}

// Pending reports the number of scheduled (uncanceled) events.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.events {
		if !e.canceled {
			n++
		}
	}
	return n
}
