package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := New(1)
	var order []int
	k.After(30*Millisecond, func() { order = append(order, 3) })
	k.After(10*Millisecond, func() { order = append(order, 1) })
	k.After(20*Millisecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if k.Now() != Time(30*Millisecond) {
		t.Fatalf("clock = %v, want 30ms", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEventCancel(t *testing.T) {
	k := New(1)
	fired := false
	e := k.After(Second, func() { fired = true })
	e.Cancel()
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestNestedScheduling(t *testing.T) {
	k := New(1)
	var hits []Time
	k.After(Second, func() {
		hits = append(hits, k.Now())
		k.After(Second, func() { hits = append(hits, k.Now()) })
	})
	k.Run()
	if len(hits) != 2 || hits[0] != Time(Second) || hits[1] != Time(2*Second) {
		t.Fatalf("nested events fired at %v", hits)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New(1)
	k.After(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(0, func() {})
	})
	k.Run()
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.After(Duration(i)*Second, func() { count++ })
	}
	k.RunUntil(Time(5 * Second))
	if count != 5 {
		t.Fatalf("fired %d events by 5s, want 5", count)
	}
	if k.Now() != Time(5*Second) {
		t.Fatalf("clock = %v, want 5s", k.Now())
	}
	k.Run()
	if count != 10 {
		t.Fatalf("fired %d events total, want 10", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := New(1)
	k.RunUntil(Time(42 * Second))
	if k.Now() != Time(42*Second) {
		t.Fatalf("clock = %v, want 42s", k.Now())
	}
}

// A Stop fired mid-RunUntil must leave the clock at the last fired event,
// not warp it to the target instant: events scheduled before the target may
// still be pending, and a warped clock would put them in the past — the next
// RunUntil would panic popping them.
func TestRunUntilStopDoesNotWarpClock(t *testing.T) {
	k := New(1)
	count := 0
	k.After(1*Second, func() { k.Stop() })
	k.After(2*Second, func() { count++ })
	k.RunUntil(Time(Hour))
	if k.Now() != Time(Second) {
		t.Fatalf("clock = %v after mid-run Stop, want 1s", k.Now())
	}
	k.RunUntil(Time(Hour)) // must fire the 2s event, not panic
	if count != 1 {
		t.Fatalf("pending event did not fire after resume (count=%d)", count)
	}
	if k.Now() != Time(Hour) {
		t.Fatalf("clock = %v after clean RunUntil, want 1h", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.After(Duration(i)*Second, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("fired %d events before Stop, want 3", count)
	}
}

func TestPending(t *testing.T) {
	k := New(1)
	e1 := k.After(Second, func() {})
	k.After(2*Second, func() {})
	if got := k.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	e1.Cancel()
	if got := k.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
}

// TestSchedulingZeroAllocAmortized pins the free-list contract: once the
// record pool and heap are warm, a schedule+fire cycle performs no heap
// allocations at all.
func TestSchedulingZeroAllocAmortized(t *testing.T) {
	k := New(1)
	n := 0
	fn := func() { n++ }
	for i := 0; i < 64; i++ { // warm the free list and heap capacity
		k.After(Duration(i)*Microsecond, fn)
	}
	k.Run()
	avg := testing.AllocsPerRun(1000, func() {
		k.After(Microsecond, fn)
		k.Run()
	})
	if avg != 0 {
		t.Fatalf("schedule+fire allocates %.2f objects/event, want 0", avg)
	}
}

// TestCancelRemovesEagerly exercises removal from interior heap positions:
// canceling must not leave tombstones behind, and the survivors must still
// fire in timestamp order.
func TestCancelRemovesEagerly(t *testing.T) {
	k := New(7)
	type ev struct {
		h     Handle
		at    Duration
		alive bool
	}
	var evs []*ev
	var fired []Duration
	for i := 0; i < 200; i++ {
		d := Duration(k.Rand().Intn(1000)) * Millisecond
		e := &ev{at: d, alive: true}
		e.h = k.After(d, func() { fired = append(fired, e.at) })
		evs = append(evs, e)
	}
	alive := 200
	for i, e := range evs {
		if i%3 == 0 {
			e.h.Cancel()
			e.alive = false
			alive--
		}
	}
	if got := k.Pending(); got != alive {
		t.Fatalf("Pending = %d after cancels, want %d (no tombstones)", got, alive)
	}
	k.Run()
	if len(fired) != alive {
		t.Fatalf("%d events fired, want %d", len(fired), alive)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of order at %d: %v < %v", i, fired[i], fired[i-1])
		}
	}
}

// TestStaleHandleIsInert pins the pooling safety contract: a handle held
// past its event's firing must be a no-op even after the kernel recycles
// the record for a new event.
func TestStaleHandleIsInert(t *testing.T) {
	k := New(1)
	stale := k.After(Millisecond, func() {})
	k.Run() // fires; record returns to the pool
	fired := false
	fresh := k.After(Millisecond, func() { fired = true }) // reuses the record
	stale.Cancel()
	if stale.Canceled() {
		t.Fatal("stale handle reports Canceled")
	}
	if stale.When() != 0 {
		t.Fatal("stale handle reports a scheduled instant")
	}
	k.Run()
	if !fired {
		t.Fatal("stale Cancel killed an unrelated recycled event")
	}
	_ = fresh
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		k := New(99)
		var trace []int64
		for i := 0; i < 50; i++ {
			d := Duration(k.Rand().Intn(1000)) * Millisecond
			k.After(d, func() { trace = append(trace, int64(k.Now())) })
		}
		k.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{2 * Second, "2.000s"},
		{15 * Millisecond, "15.000ms"},
		{7 * Microsecond, "7.000µs"},
		{42, "42ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestRateDuration(t *testing.T) {
	// 100 MB at 100 MB/s takes one second.
	d := RateDuration(100<<20, 100*(1<<20))
	if d != Second {
		t.Fatalf("RateDuration = %v, want 1s", d)
	}
	if RateDuration(1000, 0) != 0 {
		t.Fatal("zero rate should yield zero duration")
	}
}

func TestTimeAddSubProperty(t *testing.T) {
	f := func(base int32, delta int32) bool {
		t0 := Time(int64(base) * int64(Millisecond))
		d := Duration(int64(delta) * int64(Millisecond))
		return t0.Add(d).Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTracer(t *testing.T) {
	k := New(1)
	var lines int
	k.SetTracer(func(_ Time, _ string, _ ...any) { lines++ })
	k.After(Second, func() { k.Tracef("hello %d", 1) })
	k.Run()
	if lines != 1 {
		t.Fatalf("tracer saw %d lines, want 1", lines)
	}
	k.SetTracer(nil)
	k.Tracef("ignored") // must not panic
}
