package sim

import "fmt"

// Proc is a simulation process: a goroutine that runs model logic
// sequentially against the virtual clock. A process blocks with Sleep or
// Wait; while it is blocked, control returns to the kernel and other events
// fire. Exactly one of {kernel loop, one process} executes at any moment.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	done   bool

	// transferFn is the cached resume closure. Sleep, SleepUntil, and the
	// wait paths run on the hot path of every simulated I/O, so they must
	// not allocate a fresh closure per call.
	transferFn func()
	// pw is the process's reusable waiter record for plain Wait. A parked
	// process waits on exactly one signal at a time, so one record (reset
	// before each enqueue) serves every Wait this process ever performs.
	pw *waiter
	// tw is the reusable timed-wait state for WaitTimeout, lazily built.
	tw *timedWaiter

	// annotation is an opaque per-process slot for layers above the kernel
	// (the tracer stores the current causal span here). Storing a pointer
	// in the interface does not allocate.
	annotation any
}

// Annotation returns the process's opaque annotation slot.
func (p *Proc) Annotation() any { return p.annotation }

// SetAnnotation replaces the process's opaque annotation slot.
func (p *Proc) SetAnnotation(v any) { p.annotation = v }

// Spawn starts fn as a new process. The process begins executing at the
// current simulation time, after already-scheduled events for this instant.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	p.transferFn = func() { p.transfer() }
	k.procs++
	k.notifyProc(ProcSpawn, name)
	//bmcast:allow simdrift coroutine substrate: control is handed off strictly serially over resume channels
	go func() {
		<-p.resume // wait until the kernel hands us control
		defer func() {
			p.done = true
			k.procs--
			k.notifyProc(ProcExit, name)
			k.yield <- struct{}{} // return control to the kernel loop
		}()
		fn(p)
	}()
	k.After(0, p.transferFn)
	return p
}

// transfer hands control from the kernel loop to the process and blocks the
// kernel until the process parks or finishes.
func (p *Proc) transfer() {
	p.resume <- struct{}{}
	<-p.k.yield
}

// park returns control to the kernel loop and blocks until the process is
// resumed by a scheduled event.
func (p *Proc) park() {
	p.k.notifyProc(ProcPark, p.name)
	p.k.yield <- struct{}{}
	<-p.resume
	p.k.notifyProc(ProcWake, p.name)
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current simulation time.
func (p *Proc) Now() Time { return p.k.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.k.After(d, p.transferFn)
	p.park()
}

// SleepUntil suspends the process until instant t. If t is not after the
// current time the process still yields once, allowing other events at this
// instant to run first.
func (p *Proc) SleepUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.At(t, p.transferFn)
	p.park()
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Wait parks the process until s is broadcast or signaled to it.
func (p *Proc) Wait(s *Signal) {
	s.add(p)
	p.park()
}

// WaitCond repeatedly waits on s until cond reports true. It checks cond
// before the first wait, so a condition that already holds returns
// immediately.
func (p *Proc) WaitCond(s *Signal, cond func() bool) {
	for !cond() {
		p.Wait(s)
	}
}

// timedWaiter is a process's reusable WaitTimeout state: the waiter record,
// the signal and deadline of the current round, and the cached timeout
// callback. The timer event is never canceled — a stale timer recognizes
// itself by the deadline mismatch (or the done flag) and fires as a no-op,
// which lets its event record recycle through the kernel's free list.
type timedWaiter struct {
	w        *waiter
	s        *Signal
	deadline Time
	fired    bool
	timeout  func()
}

// WaitTimeout parks the process until s fires or d elapses. It reports true
// if the signal fired, false on timeout.
func (p *Proc) WaitTimeout(s *Signal, d Duration) bool {
	if d < 0 {
		d = 0
	}
	if p.tw == nil {
		t := &timedWaiter{}
		t.w = newWaiter(func() {
			t.fired = true
			p.transfer()
		})
		t.timeout = func() {
			if t.w.done || p.k.now != t.deadline {
				return // the wait already completed, or this timer is stale
			}
			t.w.done = true
			t.s.remove(t.w)
			p.transfer()
		}
		p.tw = t
	}
	t := p.tw
	w := t.w
	if w.inflight > 0 {
		// A broadcast wakeup for the previous wait is still scheduled (the
		// timer won that race at the same instant). The record cannot be
		// reused until it drains, so this rare round pays for a one-shot.
		fired := false
		ow := newWaiter(func() {
			fired = true
			p.transfer()
		})
		s.addWaiter(ow)
		timer := p.k.After(d, func() {
			if ow.done {
				return
			}
			ow.done = true
			s.remove(ow)
			p.transfer()
		})
		p.park()
		if fired {
			timer.Cancel()
		}
		return fired
	}
	t.s, t.deadline, t.fired, w.done = s, p.k.now.Add(d), false, false
	s.addWaiter(w)
	p.k.After(d, t.timeout)
	p.park()
	return t.fired
}

// Signal is a broadcast condition variable for processes. Broadcast wakes
// every currently parked waiter; waiters that arrive afterwards wait for the
// next broadcast.
type Signal struct {
	k       *Kernel
	waiters []*waiter
	spare   []*waiter // ping-pong buffer: Broadcast swaps, never reallocates
	name    string
}

// waiter is one parked wait. Records are long-lived (a process reuses one
// record across all its waits), so the Broadcast wake event is a closure
// built once at construction, not per broadcast. inflight counts scheduled
// wake events that have not yet run; a record must not be re-enqueued while
// one is outstanding or the stale wakeup would fire the next wait early.
type waiter struct {
	wake     func()
	fire     func() // cached Broadcast wake event
	done     bool
	inflight int
}

// newWaiter builds a waiter whose Broadcast wake event is pre-bound.
func newWaiter(wake func()) *waiter {
	w := &waiter{wake: wake}
	w.fire = func() {
		w.inflight--
		if w.done {
			return
		}
		w.done = true
		w.wake()
	}
	return w
}

// NewSignal returns a signal bound to kernel k.
func (k *Kernel) NewSignal(name string) *Signal { return &Signal{k: k, name: name} }

func (s *Signal) add(p *Proc) {
	if p.pw == nil {
		p.pw = newWaiter(p.transferFn)
	}
	p.pw.done = false
	s.addWaiter(p.pw)
}

func (s *Signal) addWaiter(w *waiter) { s.waiters = append(s.waiters, w) }

func (s *Signal) remove(w *waiter) {
	for i, x := range s.waiters {
		if x == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Broadcast wakes all waiters at the current instant. Wakeups are scheduled
// events, so the caller continues first.
func (s *Signal) Broadcast() {
	ws := s.waiters
	if len(ws) == 0 {
		return
	}
	s.waiters = s.spare[:0]
	for _, w := range ws {
		w.inflight++
		s.k.After(0, w.fire)
	}
	s.spare = ws[:0]
}

// Waiters reports how many processes are parked on the signal.
func (s *Signal) Waiters() int { return len(s.waiters) }

// String identifies the signal by name.
func (s *Signal) String() string { return fmt.Sprintf("signal(%s)", s.name) }
