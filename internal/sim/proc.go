package sim

import "fmt"

// Proc is a simulation process: a goroutine that runs model logic
// sequentially against the virtual clock. A process blocks with Sleep or
// Wait; while it is blocked, control returns to the kernel and other events
// fire. Exactly one of {kernel loop, one process} executes at any moment.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	done   bool
}

// Spawn starts fn as a new process. The process begins executing at the
// current simulation time, after already-scheduled events for this instant.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.procs++
	k.notifyProc(ProcSpawn, name)
	go func() {
		<-p.resume // wait until the kernel hands us control
		defer func() {
			p.done = true
			k.procs--
			k.notifyProc(ProcExit, name)
			k.yield <- struct{}{} // return control to the kernel loop
		}()
		fn(p)
	}()
	k.After(0, func() { p.transfer() })
	return p
}

// transfer hands control from the kernel loop to the process and blocks the
// kernel until the process parks or finishes.
func (p *Proc) transfer() {
	p.resume <- struct{}{}
	<-p.k.yield
}

// park returns control to the kernel loop and blocks until the process is
// resumed by a scheduled event.
func (p *Proc) park() {
	p.k.notifyProc(ProcPark, p.name)
	p.k.yield <- struct{}{}
	<-p.resume
	p.k.notifyProc(ProcWake, p.name)
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current simulation time.
func (p *Proc) Now() Time { return p.k.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.k.After(d, func() { p.transfer() })
	p.park()
}

// SleepUntil suspends the process until instant t. If t is not after the
// current time the process still yields once, allowing other events at this
// instant to run first.
func (p *Proc) SleepUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.At(t, func() { p.transfer() })
	p.park()
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Wait parks the process until s is broadcast or signaled to it.
func (p *Proc) Wait(s *Signal) {
	s.add(p)
	p.park()
}

// WaitCond repeatedly waits on s until cond reports true. It checks cond
// before the first wait, so a condition that already holds returns
// immediately.
func (p *Proc) WaitCond(s *Signal, cond func() bool) {
	for !cond() {
		p.Wait(s)
	}
}

// WaitTimeout parks the process until s fires or d elapses. It reports true
// if the signal fired, false on timeout.
func (p *Proc) WaitTimeout(s *Signal, d Duration) bool {
	fired := false
	w := &waiter{wake: func() {
		fired = true
		p.transfer()
	}}
	s.addWaiter(w)
	timer := p.k.After(d, func() {
		if w.done {
			return
		}
		w.done = true
		s.remove(w)
		p.transfer()
	})
	p.park()
	if fired {
		timer.Cancel()
	}
	return fired
}

// Signal is a broadcast condition variable for processes. Broadcast wakes
// every currently parked waiter; waiters that arrive afterwards wait for the
// next broadcast.
type Signal struct {
	k       *Kernel
	waiters []*waiter
	name    string
}

type waiter struct {
	wake func()
	done bool
}

// NewSignal returns a signal bound to kernel k.
func (k *Kernel) NewSignal(name string) *Signal { return &Signal{k: k, name: name} }

func (s *Signal) add(p *Proc) {
	s.addWaiter(&waiter{wake: func() { p.transfer() }})
}

func (s *Signal) addWaiter(w *waiter) { s.waiters = append(s.waiters, w) }

func (s *Signal) remove(w *waiter) {
	for i, x := range s.waiters {
		if x == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Broadcast wakes all waiters at the current instant. Wakeups are scheduled
// events, so the caller continues first.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w := w
		s.k.After(0, func() {
			if w.done {
				return
			}
			w.done = true
			w.wake()
		})
	}
}

// Waiters reports how many processes are parked on the signal.
func (s *Signal) Waiters() int { return len(s.waiters) }

// String identifies the signal by name.
func (s *Signal) String() string { return fmt.Sprintf("signal(%s)", s.name) }
