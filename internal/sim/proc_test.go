package sim

import "testing"

func TestProcSleep(t *testing.T) {
	k := New(1)
	var wake Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Second)
		wake = p.Now()
	})
	k.Run()
	if wake != Time(5*Second) {
		t.Fatalf("woke at %v, want 5s", wake)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	k := New(1)
	var marks []Time
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(Second)
			marks = append(marks, p.Now())
		}
	})
	k.Run()
	want := []Time{Time(Second), Time(2 * Second), Time(3 * Second)}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	k := New(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(1 * Second)
		order = append(order, "a1")
		p.Sleep(2 * Second) // wakes at 3s
		order = append(order, "a3")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(2 * Second)
		order = append(order, "b2")
	})
	k.Run()
	if len(order) != 3 || order[0] != "a1" || order[1] != "b2" || order[2] != "a3" {
		t.Fatalf("interleaving wrong: %v", order)
	}
}

func TestSignalBroadcast(t *testing.T) {
	k := New(1)
	s := k.NewSignal("go")
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			p.Wait(s)
			woken++
		})
	}
	k.Spawn("caster", func(p *Proc) {
		p.Sleep(Second)
		s.Broadcast()
	})
	k.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestSignalNoSpuriousWake(t *testing.T) {
	k := New(1)
	s := k.NewSignal("never")
	woken := false
	k.Spawn("w", func(p *Proc) {
		p.Wait(s)
		woken = true
	})
	k.Run() // goes quiescent with the waiter parked
	if woken {
		t.Fatal("waiter woke without broadcast")
	}
	if s.Waiters() != 1 {
		t.Fatalf("Waiters = %d, want 1", s.Waiters())
	}
}

func TestWaitCond(t *testing.T) {
	k := New(1)
	s := k.NewSignal("cond")
	n := 0
	var done Time
	k.Spawn("waiter", func(p *Proc) {
		p.WaitCond(s, func() bool { return n >= 3 })
		done = p.Now()
	})
	k.Spawn("incr", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(Second)
			n++
			s.Broadcast()
		}
	})
	k.Run()
	if done != Time(3*Second) {
		t.Fatalf("condition met at %v, want 3s", done)
	}
}

func TestWaitCondAlreadyTrue(t *testing.T) {
	k := New(1)
	s := k.NewSignal("cond")
	reached := false
	k.Spawn("waiter", func(p *Proc) {
		p.WaitCond(s, func() bool { return true })
		reached = true
	})
	k.Run()
	if !reached {
		t.Fatal("WaitCond blocked on an already-true condition")
	}
}

func TestWaitTimeoutFires(t *testing.T) {
	k := New(1)
	s := k.NewSignal("slow")
	var fired bool
	var at Time
	k.Spawn("w", func(p *Proc) {
		fired = p.WaitTimeout(s, 2*Second)
		at = p.Now()
	})
	k.Spawn("caster", func(p *Proc) {
		p.Sleep(Second)
		s.Broadcast()
	})
	k.Run()
	if !fired || at != Time(Second) {
		t.Fatalf("WaitTimeout fired=%v at %v, want true at 1s", fired, at)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	k := New(1)
	s := k.NewSignal("never")
	var fired bool
	var at Time
	k.Spawn("w", func(p *Proc) {
		fired = p.WaitTimeout(s, 2*Second)
		at = p.Now()
	})
	k.Run()
	if fired || at != Time(2*Second) {
		t.Fatalf("WaitTimeout fired=%v at %v, want false at 2s", fired, at)
	}
	if s.Waiters() != 0 {
		t.Fatalf("timed-out waiter still registered: %d", s.Waiters())
	}
}

func TestWaitTimeoutLateBroadcastHarmless(t *testing.T) {
	k := New(1)
	s := k.NewSignal("late")
	var wakes int
	k.Spawn("w", func(p *Proc) {
		p.WaitTimeout(s, Second)
		wakes++
	})
	k.Spawn("caster", func(p *Proc) {
		p.Sleep(5 * Second)
		s.Broadcast() // waiter already timed out; must not double-wake
	})
	k.Run()
	if wakes != 1 {
		t.Fatalf("process woke %d times, want 1", wakes)
	}
}

func TestProcDone(t *testing.T) {
	k := New(1)
	p := k.Spawn("p", func(p *Proc) { p.Sleep(Second) })
	if p.Done() {
		t.Fatal("Done before run")
	}
	k.Run()
	if !p.Done() {
		t.Fatal("not Done after run")
	}
	if p.Name() != "p" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestYieldOrdering(t *testing.T) {
	k := New(1)
	var order []string
	k.Spawn("first", func(p *Proc) {
		order = append(order, "first-before")
		p.Yield()
		order = append(order, "first-after")
	})
	k.Spawn("second", func(p *Proc) {
		order = append(order, "second")
	})
	k.Run()
	if order[0] != "first-before" || order[1] != "second" || order[2] != "first-after" {
		t.Fatalf("yield ordering wrong: %v", order)
	}
}
