package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
)

// This file is the conservative parallel executor: a ShardSet partitions a
// scenario into domains (one kernel each) that execute windows of virtual
// time in parallel and exchange timestamped cross-domain events at window
// barriers.
//
// Determinism contract (DESIGN.md §13). The partition and the window grid
// are properties of the *model* (fixed at build time), not of the executor:
// a ShardSet built the same way always runs the same domains over the same
// window sequence and merges cross-domain posts in the same canonical
// (time, source domain, source sequence) order, regardless of how many OS
// workers execute the windows. Worker count therefore cannot influence any
// simulation outcome — same seed ⇒ byte-identical traces, metrics, and
// stdout at any -shards value — because within a window domains share no
// mutable state (everything crossing a boundary goes through Post).
//
// Conservatism. A post sent at local time t is delivered no earlier than
// the end of the window that sent it. When the window width W is at most
// the minimum cross-domain latency L (link propagation + switch latency),
// this is exactly the Chandy-Misra-Bryant lookahead argument: the send
// completes in [T, T+W) and the natural arrival t+L ≥ T+L ≥ T+W, so the
// clamp never moves an arrival and the parallel run is event-for-event the
// sequential schedule. With W > L, boundary deliveries quantize up to the
// next window edge — a documented modeling choice (the grid is part of the
// scenario) that buys W/L fewer barriers; the quantization is identical at
// every shard count, so determinism is unaffected.

// XHandler consumes a cross-domain payload on the destination kernel, the
// typed (allocation-free) alternative to posting a closure.
type XHandler interface{ XDeliver(payload any) }

// xpost is one cross-domain event awaiting delivery at a barrier.
type xpost struct {
	at      Time
	src     int32
	seq     uint64
	dst     *Kernel
	h       XHandler
	payload any
	fn      func()
}

// xevent is a pooled delivery record: the scheduled kernel event that fires
// one delivered post on the destination domain. Pooling keeps the per-post
// steady state at zero allocations, mirroring the kernel's event records.
type xevent struct {
	h       XHandler
	payload any
	fn      func()
	fire    func()
}

// shardDomain is the per-kernel view of its ShardSet membership.
type shardDomain struct {
	set    *ShardSet
	id     int32
	outbox []xpost
	seq    uint64
	xfree  []*xevent
}

// ShardSet runs a fixed partition of kernels ("domains") under the
// barrier-window protocol. Build every domain with NewDomain before the
// first Run; the partition must not change afterwards.
type ShardSet struct {
	seed       int64
	window     Duration
	reqWorkers int
	domains    []*Kernel

	frontier  Time // end of the last executed window
	windowEnd Time // end of the window currently executing
	stopped   bool

	scratch []xpost   // barrier merge buffer, reused across windows
	active  []*Kernel // domains live in the window currently executing

	// Worker coordination. The epoch counter releases workers into a
	// parallel window; nextDom hands out domains (work stealing); done
	// counts completed domains. A worker may lag arbitrarily — it can
	// attempt to join a window whose barrier has already closed — so
	// access to the window state (active, windowEnd, the counters) is
	// gated: a worker must win tryEnter before touching anything, and
	// the coordinator sets the closed bit and drains all entrants out
	// before it rewrites the state for the next window. The gate reuses
	// the same fields every window, keeping the steady state allocation
	// free. These atomics also give the race detector its
	// happens-before edges.
	epoch   atomic.Uint64
	nextDom atomic.Int64
	done    atomic.Int64
	gate    atomic.Uint64 // gateClosed bit | count of workers entered
	exits   atomic.Uint64 // workers that entered and left the window
}

// gateClosed marks the window gate shut: tryEnter fails, so the
// coordinator may rewrite window state once every prior entrant exited.
const gateClosed = uint64(1) << 63

// tryEnter registers the caller as a worker inside the current window.
// It fails when the gate is closed (the window's barrier already
// completed, or the next window is still being set up).
func (s *ShardSet) tryEnter() bool {
	for {
		v := s.gate.Load()
		if v&gateClosed != 0 {
			return false
		}
		if s.gate.CompareAndSwap(v, v+1) {
			return true
		}
	}
}

// closeGate shuts the window gate and returns how many workers entered.
func (s *ShardSet) closeGate() uint64 {
	for {
		v := s.gate.Load()
		if s.gate.CompareAndSwap(v, v|gateClosed) {
			return v &^ gateClosed
		}
	}
}

// work executes domains from the shared hand-out counter until none
// remain. Which worker runs which domain is immaterial: domains are
// independent within a window and the barrier merge is order-canonical.
func (s *ShardSet) work() {
	for {
		i := s.nextDom.Add(1) - 1
		if i >= int64(len(s.active)) {
			return
		}
		s.active[i].runWindow(s.windowEnd)
		s.done.Add(1)
	}
}

// NewShardSet returns an empty shard set. workers is the requested
// parallelism (the -shards value); the executor clamps the live worker
// count to GOMAXPROCS at Run time, which is invisible to results. window
// is the barrier width W; see the package comment for how W relates to
// cross-domain latency.
func NewShardSet(seed int64, workers int, window Duration) *ShardSet {
	if workers < 1 {
		workers = 1
	}
	if window <= 0 {
		panic("sim: shard window must be positive")
	}
	s := &ShardSet{seed: seed, reqWorkers: workers, window: window}
	s.gate.Store(gateClosed) // no window is executing yet
	return s
}

// NewDomain adds a kernel to the set. Domains are identified by creation
// order, which is part of the model: cross-domain posts merge by (time,
// domain index, sequence), so builders must create domains in a fixed
// order. Each domain's RNG seed derives from the set seed and the domain
// index only.
func (s *ShardSet) NewDomain(name string) *Kernel {
	idx := int32(len(s.domains))
	k := New(domainSeed(s.seed, idx))
	k.dom = &shardDomain{set: s, id: idx}
	s.domains = append(s.domains, k)
	_ = name
	return k
}

// domainSeed derives a per-domain RNG seed (splitmix64 finalizer over the
// set seed and domain index) so domains draw from independent streams that
// depend only on their fixed index.
func domainSeed(seed int64, idx int32) int64 {
	z := uint64(seed) + (uint64(idx)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Domains returns the set's kernels in domain order.
func (s *ShardSet) Domains() []*Kernel { return s.domains }

// Window reports the barrier window width W.
func (s *ShardSet) Window() Duration { return s.window }

// Workers reports the requested parallelism.
func (s *ShardSet) Workers() int { return s.reqWorkers }

// Now reports the set frontier: every domain has executed all its events
// before this instant.
func (s *ShardSet) Now() Time { return s.frontier }

// Pending reports the total scheduled events across all domains.
func (s *ShardSet) Pending() int {
	n := 0
	for _, k := range s.domains {
		n += len(k.heap)
	}
	return n
}

// Stop makes Run return at the next barrier.
func (s *ShardSet) Stop() { s.stopped = true }

// Sharded reports whether k belongs to a ShardSet.
func (k *Kernel) Sharded() bool { return k.dom != nil }

// Shard returns the ShardSet k belongs to, or nil.
func (k *Kernel) Shard() *ShardSet {
	if k.dom == nil {
		return nil
	}
	return k.dom.set
}

// Post schedules fn on the dst kernel at instant at, clamped to the end of
// the executing window (the conservative delivery rule). Within one source
// domain posts deliver in (time, post order); across domains they merge in
// (time, domain index, post order). Posting to the local kernel degrades
// to At, and a kernel outside any ShardSet may only post to itself.
func (k *Kernel) Post(dst *Kernel, at Time, fn func()) {
	if dst == k {
		if at < k.now {
			at = k.now
		}
		k.At(at, fn)
		return
	}
	k.post(dst, at, nil, nil, fn)
}

// PostDeliver schedules h.XDeliver(payload) on dst at instant at under the
// same delivery rule as Post, without allocating a closure per post.
func (k *Kernel) PostDeliver(dst *Kernel, at Time, h XHandler, payload any) {
	k.post(dst, at, h, payload, nil)
}

func (k *Kernel) post(dst *Kernel, at Time, h XHandler, payload any, fn func()) {
	d := k.dom
	if d == nil || dst.dom == nil || dst.dom.set != d.set {
		panic("sim: cross-domain post between kernels not in one ShardSet")
	}
	if dst == k {
		// Local delivery is exact: no window clamp, no barrier.
		if at < k.now {
			at = k.now
		}
		k.deliverPost(xpost{at: at, h: h, payload: payload, fn: fn})
		return
	}
	s := d.set
	if at < s.windowEnd {
		at = s.windowEnd
	}
	d.seq++
	d.outbox = append(d.outbox, xpost{at: at, src: d.id, seq: d.seq, dst: dst, h: h, payload: payload, fn: fn})
}

// runWindow fires every local event strictly before end. Unlike RunUntil it
// never warps the clock: a domain's Now stays at its last executed event,
// so timestamps are execution artifacts, not barrier artifacts.
func (k *Kernel) runWindow(end Time) {
	k.stopped = false
	for !k.stopped {
		if len(k.heap) == 0 || k.heap[0].when >= end {
			return
		}
		k.step()
	}
}

// nextWhen reports the earliest scheduled event, if any.
func (k *Kernel) nextWhen() (Time, bool) {
	if len(k.heap) == 0 {
		return 0, false
	}
	return k.heap[0].when, true
}

// deliverPost schedules one merged post as a local kernel event using a
// pooled delivery record.
func (k *Kernel) deliverPost(x xpost) {
	d := k.dom
	var rec *xevent
	if n := len(d.xfree); n > 0 {
		rec = d.xfree[n-1]
		d.xfree = d.xfree[:n-1]
	} else {
		rec = &xevent{}
		rec.fire = func() {
			h, payload, fn := rec.h, rec.payload, rec.fn
			rec.h, rec.payload, rec.fn = nil, nil, nil
			d.xfree = append(d.xfree, rec)
			if h != nil {
				h.XDeliver(payload)
				return
			}
			fn()
		}
	}
	rec.h, rec.payload, rec.fn = x.h, x.payload, x.fn
	k.At(x.at, rec.fire)
}

// Run executes barrier windows until stop reports true (checked at every
// barrier), Stop is called, or the whole set is quiescent. stop may be nil.
func (s *ShardSet) Run(stop func() bool) {
	s.RunUntil(Time(1)<<62, stop)
}

// RunUntil executes barrier windows until the frontier reaches horizon,
// stop reports true, Stop is called, or the set is quiescent.
func (s *ShardSet) RunUntil(horizon Time, stop func() bool) {
	s.stopped = false
	workers := s.reqWorkers
	if max := runtime.GOMAXPROCS(0); workers > max {
		// Fewer live workers than requested shards: pure execution policy,
		// invisible to simulation results (see determinism contract).
		workers = max
	}
	if workers > len(s.domains) {
		workers = len(s.domains)
	}

	var quit atomic.Bool
	if workers > 1 {
		// The helper workers exist only inside this call. They spin through
		// barrier phases (with Gosched so a loaded scheduler still makes
		// progress) because windows are short and dense; parking them on
		// channels would cost a wake per worker per window.
		for w := 1; w < workers; w++ {
			go func() { //bmcast:allow simdrift shard executor workers: domains are handed out via atomics and each kernel window runs on exactly one worker
				last := s.epoch.Load()
				for {
					e := s.epoch.Load()
					if quit.Load() {
						return
					}
					if e == last {
						runtime.Gosched()
						continue
					}
					last = e
					// A failed enter means the window already closed
					// without us (it was drained by the others) or is
					// mid-setup; the next epoch bump will re-release us.
					if s.tryEnter() {
						s.work()
						s.exits.Add(1)
					}
				}
			}()
		}
		defer quit.Store(true)
	}

	for !s.stopped && (stop == nil || !stop()) {
		// Find the next populated window. Every event and undelivered post
		// is at or after the frontier, so the grid floor of the earliest
		// event is the next window that will fire anything.
		t := Time(0)
		ok := false
		for _, k := range s.domains {
			if w, kok := k.nextWhen(); kok && (!ok || w < t) {
				t, ok = w, true
			}
		}
		if !ok || t >= horizon {
			s.frontier = horizon
			if !ok {
				s.frontier = s.windowEnd
			}
			return
		}
		T := Time(int64(t) - int64(t)%int64(s.window))
		end := T.Add(s.window)
		s.windowEnd = end

		s.active = s.active[:0]
		for _, k := range s.domains {
			if w, kok := k.nextWhen(); kok && w < end {
				s.active = append(s.active, k)
			}
		}
		if workers > 1 && len(s.active) > 1 {
			// The gate is closed and drained here (initial state, or the
			// previous parallel barrier), so no worker can observe the
			// resets or the window state rewritten above.
			s.nextDom.Store(0)
			s.done.Store(0)
			s.exits.Store(0)
			s.gate.Store(0) // open the window
			s.epoch.Add(1)  // release workers into it
			s.work()        // the coordinator is a worker too
			for s.done.Load() < int64(len(s.active)) {
				runtime.Gosched()
			}
			// All domains ran; shut the door and wait out every worker
			// that made it inside, so none can touch window state after
			// this barrier.
			for entered := s.closeGate(); s.exits.Load() < entered; {
				runtime.Gosched()
			}
		} else {
			for _, k := range s.active {
				k.runWindow(end)
			}
		}
		s.frontier = end
		s.mergePosts()
	}
}

// mergePosts drains every domain's outbox and schedules the posts on their
// destinations in canonical (time, source domain, sequence) order, so the
// destination heap order — and therefore the whole next window — is
// independent of execution interleaving.
func (s *ShardSet) mergePosts() {
	s.scratch = s.scratch[:0]
	for _, k := range s.domains {
		d := k.dom
		if len(d.outbox) > 0 {
			s.scratch = append(s.scratch, d.outbox...)
			for i := range d.outbox {
				d.outbox[i] = xpost{}
			}
			d.outbox = d.outbox[:0]
		}
	}
	if len(s.scratch) == 0 {
		return
	}
	sort.Slice(s.scratch, func(i, j int) bool {
		a, b := &s.scratch[i], &s.scratch[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, x := range s.scratch {
		if x.at < x.dst.now {
			panic(fmt.Sprintf("sim: cross-domain post at %v behind destination clock %v", x.at, x.dst.now))
		}
		x.dst.deliverPost(x)
	}
}
