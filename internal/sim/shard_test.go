package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// shardPingModel builds a small set of domains that exchange posts on a
// fixed cadence and records a log line per delivery. Each domain appends
// to its own log — domains share no mutable state within a window, the
// same contract every real model obeys — and run() concatenates the logs
// in domain order after quiescence. The merged log is the byte-identity
// proxy: any ordering or timing difference between runs shows up as a
// diff. (A single shared log slice would itself be a data race between
// concurrently executing windows, and its append order would reflect
// worker scheduling — exactly what the contract excludes from the model.)
func shardPingModel(workers int, window Duration) (s *ShardSet, run func() []string) {
	s = NewShardSet(42, workers, window)
	const n = 5
	doms := make([]*Kernel, n)
	for i := 0; i < n; i++ {
		doms[i] = s.NewDomain(fmt.Sprintf("d%d", i))
	}
	logs := make([][]string, n)
	for i := 0; i < n; i++ {
		i := i
		k := doms[i]
		var tick func()
		count := 0
		tick = func() {
			count++
			logs[i] = append(logs[i], fmt.Sprintf("d%d tick %d at %v rng %d", i, count, k.Now(), k.Rand().Intn(1000)))
			// Fan a post to every other domain, arriving one window out.
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				j := j
				from, tc := i, count
				k.PostDeliver(doms[j], k.Now().Add(2*Microsecond), xfunc(func(any) {
					logs[j] = append(logs[j], fmt.Sprintf("d%d got d%d/%d at %v", j, from, tc, doms[j].Now()))
				}), nil)
			}
			if count < 8 {
				k.After(Duration(50+10*i)*Microsecond, tick)
			}
		}
		k.After(Duration(10*(i+1))*Microsecond, tick)
	}
	run = func() []string {
		s.Run(nil)
		var merged []string
		for _, l := range logs {
			merged = append(merged, l...)
		}
		return merged
	}
	return s, run
}

// xfunc adapts a func to XHandler for tests.
type xfunc func(payload any)

func (f xfunc) XDeliver(payload any) { f(payload) }

func TestShardWorkerCountInvariance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var want []string
	for _, workers := range []int{1, 2, 4, 8} {
		// Force real parallel execution even on a single-CPU machine so
		// the worker pool itself is exercised (and race-checked).
		runtime.GOMAXPROCS(4)
		_, run := shardPingModel(workers, 100*Microsecond)
		log := run()
		if workers == 1 {
			want = log
			continue
		}
		if len(log) != len(want) {
			t.Fatalf("workers=%d: got %d log lines, want %d", workers, len(log), len(want))
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("workers=%d: line %d = %q, want %q", workers, i, log[i], want[i])
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("model produced no log lines")
	}
}

func TestShardWindowInvariantUnderWorkers(t *testing.T) {
	// Different window widths are allowed to produce different schedules
	// (the grid is part of the model); the same width must not.
	_, run1 := shardPingModel(1, 2*Microsecond)
	log1 := run1()
	_, run2 := shardPingModel(3, 2*Microsecond)
	log2 := run2()
	if len(log1) != len(log2) {
		t.Fatalf("log lengths differ: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("line %d differs:\n  %q\n  %q", i, log1[i], log2[i])
		}
	}
}

func TestShardPostClamp(t *testing.T) {
	s := NewShardSet(1, 1, 100*Microsecond)
	a := s.NewDomain("a")
	b := s.NewDomain("b")
	var got Time
	a.At(Time(10*Microsecond), func() {
		// Arrival inside the sending window must defer to the window end.
		a.Post(b, a.Now().Add(1*Microsecond), func() { got = b.Now() })
	})
	s.Run(nil)
	if got != Time(100*Microsecond) {
		t.Fatalf("clamped delivery at %v, want %v", got, Time(100*Microsecond))
	}
}

func TestShardPostMergeOrder(t *testing.T) {
	// Same-timestamp posts from different domains must deliver in domain
	// order regardless of which domain's window ran first.
	s := NewShardSet(1, 1, 10*Microsecond)
	a := s.NewDomain("a")
	b := s.NewDomain("b")
	c := s.NewDomain("c")
	var order []string
	at := Time(50 * Microsecond)
	b.At(Time(1*Microsecond), func() {
		b.Post(c, at, func() { order = append(order, "from-b") })
		b.Post(c, at, func() { order = append(order, "from-b2") })
	})
	a.At(Time(2*Microsecond), func() {
		a.Post(c, at, func() { order = append(order, "from-a") })
	})
	s.Run(nil)
	want := []string{"from-a", "from-b", "from-b2"}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
}

func TestShardQuiescenceFastForward(t *testing.T) {
	// A long idle gap must be skipped, not iterated window by window: the
	// set jumps to the grid floor of the next event.
	s := NewShardSet(7, 1, 100*Microsecond)
	a := s.NewDomain("a")
	fired := false
	a.At(Time(10*Second), func() { fired = true })
	s.Run(nil)
	if !fired {
		t.Fatal("event did not fire")
	}
	if a.Now() != Time(10*Second) {
		t.Fatalf("domain clock %v, want %v", a.Now(), Time(10*Second))
	}
}

func TestShardRunUntilHorizon(t *testing.T) {
	s := NewShardSet(7, 1, 100*Microsecond)
	a := s.NewDomain("a")
	fired := 0
	a.At(Time(1*Millisecond), func() { fired++ })
	a.At(Time(2*Second), func() { fired++ })
	s.RunUntil(Time(1*Second), nil)
	if fired != 1 {
		t.Fatalf("fired %d events before horizon, want 1", fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d, want 1", s.Pending())
	}
	s.RunUntil(Time(3*Second), nil)
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}

func TestShardStopAtBarrier(t *testing.T) {
	s := NewShardSet(7, 1, 10*Microsecond)
	a := s.NewDomain("a")
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired == 3 {
			s.Stop()
		}
		a.After(15*Microsecond, tick)
	}
	a.After(15*Microsecond, tick)
	s.Run(nil)
	if fired != 3 {
		t.Fatalf("fired %d ticks, want 3 (stop at barrier)", fired)
	}
}

func TestShardLocalPostIsImmediate(t *testing.T) {
	// Posting to the local kernel degrades to At: no window clamp.
	s := NewShardSet(1, 1, 100*Microsecond)
	a := s.NewDomain("a")
	var got Time
	a.At(Time(10*Microsecond), func() {
		a.Post(a, a.Now().Add(1*Microsecond), func() { got = a.Now() })
	})
	s.Run(nil)
	if got != Time(11*Microsecond) {
		t.Fatalf("local post delivered at %v, want %v", got, Time(11*Microsecond))
	}
}

func TestShardDomainSeedsIndependent(t *testing.T) {
	s := NewShardSet(99, 1, 100*Microsecond)
	a := s.NewDomain("a")
	b := s.NewDomain("b")
	if a.Rand().Int63() == b.Rand().Int63() {
		t.Fatal("domain RNG streams coincide")
	}
	// Rebuilding the set reproduces the same streams.
	s2 := NewShardSet(99, 4, 100*Microsecond)
	a2 := s2.NewDomain("a")
	if a2.Rand().Int63() == 0 {
		t.Fatal("degenerate seed")
	}
}

func TestShardProcsInsideDomains(t *testing.T) {
	// Procs (coroutines) must work inside a domain window, including
	// sleeps that span windows.
	s := NewShardSet(5, 1, 50*Microsecond)
	a := s.NewDomain("a")
	b := s.NewDomain("b")
	var log []string
	a.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(120 * Microsecond)
			log = append(log, fmt.Sprintf("a wake %d at %v", i, a.Now()))
			a.Post(b, a.Now().Add(2*Microsecond), func() {
				log = append(log, fmt.Sprintf("b event at %v", b.Now()))
			})
		}
	})
	s.Run(nil)
	if len(log) != 6 {
		t.Fatalf("got %d log lines, want 6: %v", len(log), log)
	}
}

func BenchmarkShardWindow(b *testing.B) {
	s := NewShardSet(1, 1, 100*Microsecond)
	doms := make([]*Kernel, 8)
	for i := range doms {
		doms[i] = s.NewDomain(fmt.Sprintf("d%d", i))
	}
	for i, k := range doms {
		k := k
		next := doms[(i+1)%len(doms)]
		var tick func()
		tick = func() {
			k.PostDeliver(next, k.Now().Add(2*Microsecond), xfunc(func(any) {}), nil)
			k.After(97*Microsecond, tick)
		}
		k.After(Duration(i+1)*Microsecond, tick)
	}
	b.ResetTimer()
	horizon := Time(0)
	for i := 0; i < b.N; i++ {
		horizon = horizon.Add(Duration(100 * Millisecond))
		s.RunUntil(horizon, nil)
	}
}
