package sim

// Queue is an unbounded FIFO queue with blocking Pop for processes. It is
// the channel of the simulation world: producers push without blocking,
// consumers park until an item is available.
type Queue[T any] struct {
	k        *Kernel
	items    []T
	head     int // index of the next item to pop; items[:head] are consumed
	nonEmpty *Signal
	closed   bool
}

// NewQueue returns an empty queue bound to kernel k.
func NewQueue[T any](k *Kernel, name string) *Queue[T] {
	return &Queue[T]{k: k, nonEmpty: k.NewSignal(name + ".nonempty")}
}

// Push appends v to the queue and wakes any parked consumers.
func (q *Queue[T]) Push(v T) {
	if q.closed {
		panic("sim: push to closed queue")
	}
	q.items = append(q.items, v)
	q.nonEmpty.Broadcast()
}

// TryPop removes and returns the head item without blocking. ok is false if
// the queue is empty. Popping advances a head index rather than re-slicing,
// so a drained queue's backing array is reused instead of reallocated.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if q.head >= len(q.items) {
		return v, false
	}
	v = q.items[q.head]
	var zero T
	q.items[q.head] = zero // release the reference for the collector
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

// Pop blocks the process until an item is available or the queue is closed.
// ok is false only when the queue was closed while empty.
func (q *Queue[T]) Pop(p *Proc) (v T, ok bool) {
	for {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		if q.closed {
			return v, false
		}
		p.Wait(q.nonEmpty)
	}
}

// Close marks the queue closed, waking blocked consumers. Items already in
// the queue can still be popped.
func (q *Queue[T]) Close() {
	q.closed = true
	q.nonEmpty.Broadcast()
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Resource is a counting semaphore with FIFO admission. It models an
// exclusive or limited-capacity facility (a disk arm, a server thread pool).
type Resource struct {
	k        *Kernel
	capacity int
	inUse    int
	released *Signal
}

// NewResource returns a resource admitting capacity simultaneous holders.
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{k: k, capacity: capacity, released: k.NewSignal(name + ".released")}
}

// Acquire blocks the process until a unit of the resource is free, then
// takes it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		p.Wait(r.released)
	}
	r.inUse++
}

// TryAcquire takes a unit without blocking, reporting whether it succeeded.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.inUse++
	return true
}

// Release returns a unit of the resource and wakes waiters.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of unacquired resource")
	}
	r.inUse--
	r.released.Broadcast()
}

// InUse reports the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Capacity reports the total number of units.
func (r *Resource) Capacity() int { return r.capacity }
