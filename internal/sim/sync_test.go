package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	k := New(1)
	q := NewQueue[int](k, "q")
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Pop(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Second)
			q.Push(i)
		}
		q.Close()
	})
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("queue not FIFO: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("consumed %d items, want 5", len(got))
	}
}

func TestQueueTryPop(t *testing.T) {
	k := New(1)
	q := NewQueue[string](k, "q")
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue returned ok")
	}
	q.Push("x")
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	v, ok := q.TryPop()
	if !ok || v != "x" {
		t.Fatalf("TryPop = %q, %v", v, ok)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	k := New(1)
	q := NewQueue[int](k, "q")
	q.Push(1)
	q.Push(2)
	q.Close()
	var got []int
	k.Spawn("c", func(p *Proc) {
		for {
			v, ok := q.Pop(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	k.Run()
	if len(got) != 2 {
		t.Fatalf("drained %d items after close, want 2", len(got))
	}
	if !q.Closed() {
		t.Fatal("Closed() = false")
	}
}

func TestQueuePushAfterClosePanics(t *testing.T) {
	k := New(1)
	q := NewQueue[int](k, "q")
	q.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("push after close did not panic")
		}
	}()
	q.Push(1)
}

func TestResourceExclusion(t *testing.T) {
	k := New(1)
	r := NewResource(k, "disk", 1)
	var maxConcurrent, current int
	for i := 0; i < 4; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			current++
			if current > maxConcurrent {
				maxConcurrent = current
			}
			p.Sleep(Second)
			current--
			r.Release()
		})
	}
	k.Run()
	if maxConcurrent != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxConcurrent)
	}
	if k.Now() != Time(4*Second) {
		t.Fatalf("serialized work finished at %v, want 4s", k.Now())
	}
}

func TestResourceCapacity(t *testing.T) {
	k := New(1)
	r := NewResource(k, "pool", 2)
	if !r.TryAcquire() || !r.TryAcquire() {
		t.Fatal("TryAcquire failed with free capacity")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire succeeded beyond capacity")
	}
	if r.InUse() != 2 || r.Capacity() != 2 {
		t.Fatalf("InUse=%d Capacity=%d", r.InUse(), r.Capacity())
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire failed after release")
	}
}

func TestResourceReleaseUnheldPanics(t *testing.T) {
	k := New(1)
	r := NewResource(k, "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("release of unheld resource did not panic")
		}
	}()
	r.Release()
}

func TestQueueOrderProperty(t *testing.T) {
	// Whatever sequence is pushed is popped in the same order.
	f := func(values []int) bool {
		k := New(7)
		q := NewQueue[int](k, "q")
		var got []int
		k.Spawn("c", func(p *Proc) {
			for {
				v, ok := q.Pop(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		k.Spawn("p", func(p *Proc) {
			for _, v := range values {
				q.Push(v)
				p.Sleep(Millisecond)
			}
			q.Close()
		})
		k.Run()
		if len(got) != len(values) {
			return false
		}
		for i := range got {
			if got[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
