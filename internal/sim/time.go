// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event heap. Model code runs
// either as plain scheduled callbacks or as processes: goroutines that hand
// control back to the kernel whenever they block (Sleep, Wait, queue pops).
// Exactly one goroutine — the kernel loop or a single process — runs at any
// instant, so simulations are fully deterministic for a given seed and are
// safe without additional locking.
//
// All of BMcast's simulated hardware (disks, controllers, NICs, the network)
// and software (guest OS, VMM, mediators, servers) is built on this package.
package sim

import "fmt"

// Time is an instant on the simulation clock, in nanoseconds since the
// start of the run. The zero Time is the beginning of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports d as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds reports d as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= Second || d <= -Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond || d <= -Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond || d <= -Microsecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// DurationOf converts a floating-point number of seconds to a Duration.
func DurationOf(seconds float64) Duration { return Duration(seconds * float64(Second)) }

// RateDuration returns the time needed to move n bytes at rate bytes/sec.
func RateDuration(n int64, bytesPerSec float64) Duration {
	if bytesPerSec <= 0 {
		return 0
	}
	return Duration(float64(n) / bytesPerSec * float64(Second))
}
