// Package tenants generates deterministic open-loop tenant traffic for
// the elastic control plane: lease/deploy/release request arrivals drawn
// from a seeded Poisson process with burst and diurnal modulation and
// per-tenant priorities. All randomness comes from the simulation
// kernel's seeded source, so the same seed and profile replay the exact
// same arrival sequence — the property the elasticity experiment's
// determinism test pins.
package tenants

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Profile describes one tenant population's traffic. The arrival process
// is open-loop: arrivals do not slow down when the control plane backs
// up, which is exactly what makes overload shedding observable.
type Profile struct {
	// Rate is the base arrival rate in requests per simulated second.
	Rate float64
	// Duration is how long arrivals are generated.
	Duration sim.Duration
	// Hold is the mean instance hold time (exponentially distributed);
	// tenants release their machine after holding it.
	Hold sim.Duration
	// Deadline, when nonzero, is each request's dispatch deadline
	// relative to submission; past it the front end sheds the request.
	Deadline sim.Duration

	// Burst multiplies the rate by BurstFactor for BurstFor out of every
	// BurstEvery (disabled unless all three are positive).
	BurstEvery  sim.Duration
	BurstFor    sim.Duration
	BurstFactor float64

	// Diurnal modulates the rate by 1 + DiurnalAmp·sin(2πt/Period) —
	// the day/night swing, compressed (disabled unless both positive;
	// DiurnalAmp must stay below 1).
	DiurnalPeriod sim.Duration
	DiurnalAmp    float64

	// PriorityWeights weight the low/normal/high request priorities.
	// All-zero means every request is normal priority.
	PriorityWeights [3]float64
}

// DefaultProfile is a light steady load: 0.2 req/s for 2 minutes, 10 s
// mean hold, 30 s deadlines, no burst or diurnal swing.
func DefaultProfile() Profile {
	return Profile{
		Rate:     0.2,
		Duration: 2 * sim.Minute,
		Hold:     10 * sim.Second,
		Deadline: 30 * sim.Second,
	}
}

// bursting reports whether the burst window is active at offset t from
// the generator start.
func (pr Profile) bursting(t sim.Duration) bool {
	if pr.BurstEvery <= 0 || pr.BurstFor <= 0 || pr.BurstFactor <= 1 {
		return false
	}
	return t%pr.BurstEvery < pr.BurstFor
}

// rateAt is the instantaneous arrival rate at offset t.
func (pr Profile) rateAt(t sim.Duration) float64 {
	r := pr.Rate
	if pr.bursting(t) {
		r *= pr.BurstFactor
	}
	if pr.DiurnalPeriod > 0 && pr.DiurnalAmp > 0 {
		r *= 1 + pr.DiurnalAmp*math.Sin(2*math.Pi*float64(t)/float64(pr.DiurnalPeriod))
	}
	return r
}

// maxRate bounds rateAt over all t — the thinning envelope.
func (pr Profile) maxRate() float64 {
	r := pr.Rate
	if pr.BurstEvery > 0 && pr.BurstFor > 0 && pr.BurstFactor > 1 {
		r *= pr.BurstFactor
	}
	if pr.DiurnalPeriod > 0 && pr.DiurnalAmp > 0 {
		r *= 1 + pr.DiurnalAmp
	}
	return r
}

// String renders the profile in its flag grammar, round-tripping Parse.
func (pr Profile) String() string {
	parts := []string{
		"rate=" + strconv.FormatFloat(pr.Rate, 'g', -1, 64),
		"dur=" + fmtDuration(pr.Duration),
		"hold=" + fmtDuration(pr.Hold),
	}
	if pr.Deadline > 0 {
		parts = append(parts, "deadline="+fmtDuration(pr.Deadline))
	}
	if pr.BurstEvery > 0 {
		parts = append(parts, fmt.Sprintf("burst=%s/%s/%s",
			fmtDuration(pr.BurstEvery), fmtDuration(pr.BurstFor),
			strconv.FormatFloat(pr.BurstFactor, 'g', -1, 64)))
	}
	if pr.DiurnalPeriod > 0 {
		parts = append(parts, fmt.Sprintf("diurnal=%s/%s",
			fmtDuration(pr.DiurnalPeriod),
			strconv.FormatFloat(pr.DiurnalAmp, 'g', -1, 64)))
	}
	if pr.PriorityWeights != [3]float64{} {
		parts = append(parts, fmt.Sprintf("prio=%s/%s/%s",
			strconv.FormatFloat(pr.PriorityWeights[0], 'g', -1, 64),
			strconv.FormatFloat(pr.PriorityWeights[1], 'g', -1, 64),
			strconv.FormatFloat(pr.PriorityWeights[2], 'g', -1, 64)))
	}
	return strings.Join(parts, ",")
}

func fmtDuration(d sim.Duration) string { return time.Duration(d).String() }

func parseDuration(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %s", s)
	}
	return sim.Duration(d), nil
}

// Parse reads a profile from its flag grammar: comma-separated key=value
// pairs — rate (req/s), dur, hold, deadline (durations),
// burst=EVERY/FOR/FACTOR, diurnal=PERIOD/AMP, prio=LOW/NORMAL/HIGH
// weights.
func Parse(input string) (Profile, error) {
	var pr Profile
	for _, kv := range strings.Split(input, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Profile{}, fmt.Errorf("tenants: %q: want key=value", kv)
		}
		var err error
		switch k {
		case "rate":
			pr.Rate, err = strconv.ParseFloat(v, 64)
		case "dur":
			pr.Duration, err = parseDuration(v)
		case "hold":
			pr.Hold, err = parseDuration(v)
		case "deadline":
			pr.Deadline, err = parseDuration(v)
		case "burst":
			var f [3]string
			if n := copy(f[:], strings.Split(v, "/")); n != 3 {
				return Profile{}, fmt.Errorf("tenants: burst=%q: want EVERY/FOR/FACTOR", v)
			}
			if pr.BurstEvery, err = parseDuration(f[0]); err == nil {
				if pr.BurstFor, err = parseDuration(f[1]); err == nil {
					pr.BurstFactor, err = strconv.ParseFloat(f[2], 64)
				}
			}
		case "diurnal":
			var f [2]string
			if n := copy(f[:], strings.Split(v, "/")); n != 2 {
				return Profile{}, fmt.Errorf("tenants: diurnal=%q: want PERIOD/AMP", v)
			}
			if pr.DiurnalPeriod, err = parseDuration(f[0]); err == nil {
				pr.DiurnalAmp, err = strconv.ParseFloat(f[1], 64)
			}
		case "prio":
			ws := strings.Split(v, "/")
			if len(ws) != 3 {
				return Profile{}, fmt.Errorf("tenants: prio=%q: want LOW/NORMAL/HIGH", v)
			}
			for i, w := range ws {
				if pr.PriorityWeights[i], err = strconv.ParseFloat(w, 64); err != nil {
					break
				}
				if pr.PriorityWeights[i] < 0 {
					return Profile{}, fmt.Errorf("tenants: prio=%q: negative weight", v)
				}
			}
		default:
			return Profile{}, fmt.Errorf("tenants: unknown key %q", k)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("tenants: %q: %v", kv, err)
		}
	}
	if pr.Rate < 0 {
		return Profile{}, fmt.Errorf("tenants: negative rate")
	}
	if pr.DiurnalAmp < 0 || pr.DiurnalAmp >= 1 {
		if pr.DiurnalAmp != 0 {
			return Profile{}, fmt.Errorf("tenants: diurnal amplitude %g outside [0,1)", pr.DiurnalAmp)
		}
	}
	return pr, nil
}

// Generator runs one tenant population against an admission front end.
type Generator struct {
	k *sim.Kernel
	f *cloud.Frontend
	p Profile

	// Generated counts arrivals; Completed held-and-released leases;
	// Failed deployment failures; Shed admission rejections.
	Generated metrics.Counter
	Completed metrics.Counter
	Failed    metrics.Counter
	Shed      metrics.Counter
	// Active gauges tenants currently in flight (queued, deploying, or
	// holding).
	Active metrics.Gauge

	active  int
	stopped bool
	drained *sim.Signal
}

// NewGenerator builds a generator on kernel k, submitting through f,
// registering its instruments in reg (nil-safe).
func NewGenerator(k *sim.Kernel, f *cloud.Frontend, reg *metrics.Registry, profile Profile) *Generator {
	g := &Generator{
		k:       k,
		f:       f,
		p:       profile,
		drained: k.NewSignal("tenants.drained"),
	}
	reg.RegisterCounter("tenants.generated", &g.Generated)
	reg.RegisterCounter("tenants.completed", &g.Completed)
	reg.RegisterCounter("tenants.failed", &g.Failed)
	reg.RegisterCounter("tenants.shed", &g.Shed)
	reg.RegisterGauge("tenants.active", &g.Active)
	return g
}

// Profile returns the generator's traffic profile.
func (g *Generator) Profile() Profile { return g.p }

// Start spawns the arrival process.
func (g *Generator) Start() {
	g.k.Spawn("tenants.arrivals", g.arrivals)
}

// WaitDrained blocks until arrivals have stopped and every in-flight
// tenant has resolved (completed, failed, or shed).
func (g *Generator) WaitDrained(p *sim.Proc) {
	p.WaitCond(g.drained, func() bool { return g.stopped && g.active == 0 })
}

// arrivals is the open-loop Poisson process: sample inter-arrival gaps at
// the envelope rate from the kernel's seeded source, then thin each
// arrival down to the instantaneous burst/diurnal rate. Thinning keeps
// the draw count per accepted arrival constant, so profiles with the
// same envelope consume the RNG stream identically.
func (g *Generator) arrivals(p *sim.Proc) {
	max := g.p.maxRate()
	if max <= 0 || g.p.Duration <= 0 {
		g.finishArrivals()
		return
	}
	rng := g.k.Rand()
	start := p.Now()
	end := start.Add(g.p.Duration)
	for {
		gap := sim.Duration(rng.ExpFloat64() / max * float64(sim.Second))
		if gap < 1 {
			gap = 1 // never two arrivals in the same instant
		}
		p.Sleep(gap)
		if p.Now() >= end {
			break
		}
		t := p.Now().Sub(start)
		if rng.Float64()*max > g.p.rateAt(t) {
			continue // thinned: outside the burst/diurnal envelope
		}
		prio := g.pickPriority(rng.Float64())
		id := int(g.Generated.Value())
		g.Generated.Inc()
		g.active++
		g.Active.Set(float64(g.active))
		g.k.Spawn(fmt.Sprintf("tenants.tenant.%d", id), func(tp *sim.Proc) {
			g.tenant(tp, prio)
		})
	}
	g.finishArrivals()
}

func (g *Generator) finishArrivals() {
	g.stopped = true
	g.drained.Broadcast()
}

// pickPriority maps one uniform draw through the priority weights.
func (g *Generator) pickPriority(u float64) cloud.Priority {
	w := g.p.PriorityWeights
	total := w[0] + w[1] + w[2]
	if total <= 0 {
		return cloud.PriorityNormal
	}
	u *= total
	if u < w[0] {
		return cloud.PriorityLow
	}
	if u < w[0]+w[1] {
		return cloud.PriorityNormal
	}
	return cloud.PriorityHigh
}

// tenant is one lease lifecycle: submit, wait for the machine, hold it,
// release it. A tenant that is shed or whose deployment fails just goes
// away — open-loop traffic does not retry.
func (g *Generator) tenant(p *sim.Proc, prio cloud.Priority) {
	defer func() {
		g.active--
		g.Active.Set(float64(g.active))
		g.drained.Broadcast()
	}()
	var deadline sim.Time
	if g.p.Deadline > 0 {
		deadline = p.Now().Add(g.p.Deadline)
	}
	req := g.f.Submit(cloud.StrategyBMcast, prio, deadline)
	in, err := req.Wait(p)
	if err != nil {
		g.Shed.Inc()
		return
	}
	c := g.f.Controller()
	if !in.WaitReady(p) {
		g.Failed.Inc()
		// A failed lease still owns its machine until released (unless
		// the controller already reclaimed it).
		_ = c.Release(in)
		return
	}
	// Hold the machine only after the hand-off completes, so release
	// never yanks a machine mid-copy. A post-ready failure (watchdog
	// during the background copy) ends the lease early.
	if !in.WaitBareMetal(p) {
		g.Failed.Inc()
		_ = c.Release(in)
		return
	}
	hold := sim.Duration(g.k.Rand().ExpFloat64() * float64(g.p.Hold))
	if hold > 0 {
		p.Sleep(hold)
	}
	if err := c.Release(in); err == nil {
		g.Completed.Inc()
	} else {
		g.Failed.Inc()
	}
}
