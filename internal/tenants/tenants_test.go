package tenants

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func TestProfileParseRoundTrip(t *testing.T) {
	in := "rate=0.3,dur=3m0s,hold=20s,deadline=45s,burst=1m0s/10s/3,diurnal=2m0s/0.5,prio=1/2/1"
	pr, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Rate != 0.3 || pr.Duration != 3*sim.Minute || pr.Hold != 20*sim.Second ||
		pr.Deadline != 45*sim.Second || pr.BurstEvery != sim.Minute ||
		pr.BurstFor != 10*sim.Second || pr.BurstFactor != 3 ||
		pr.DiurnalPeriod != 2*sim.Minute || pr.DiurnalAmp != 0.5 ||
		pr.PriorityWeights != [3]float64{1, 2, 1} {
		t.Fatalf("parsed profile = %+v", pr)
	}
	if got := pr.String(); got != in {
		t.Fatalf("String = %q, want %q", got, in)
	}
	// A minimal profile omits the optional clauses.
	min, err := Parse("rate=1,dur=10s,hold=5s")
	if err != nil {
		t.Fatal(err)
	}
	if s := min.String(); strings.Contains(s, "burst") || strings.Contains(s, "prio") {
		t.Fatalf("minimal profile renders optional clauses: %q", s)
	}
	if _, err := Parse(min.String()); err != nil {
		t.Fatalf("minimal round trip: %v", err)
	}
}

func TestProfileParseErrors(t *testing.T) {
	for _, bad := range []string{
		"rate=abc",            // bad number
		"nope=1",              // unknown key
		"rate",                // not key=value
		"rate=-1",             // negative rate
		"dur=-5s",             // negative duration
		"burst=1s/1s",         // burst needs three fields
		"diurnal=1s",          // diurnal needs two fields
		"diurnal=1s/1.5",      // amplitude out of range
		"prio=1/2",            // three weights required
		"prio=1/-1/1",         // negative weight
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestRateModulation(t *testing.T) {
	pr := Profile{
		Rate: 1, BurstEvery: 60 * sim.Second, BurstFor: 10 * sim.Second, BurstFactor: 3,
		DiurnalPeriod: 120 * sim.Second, DiurnalAmp: 0.5,
	}
	if !pr.bursting(5 * sim.Second) {
		t.Error("t=5s should be inside the burst window")
	}
	if pr.bursting(30 * sim.Second) {
		t.Error("t=30s should be outside the burst window")
	}
	if !pr.bursting(65 * sim.Second) {
		t.Error("burst window should recur every BurstEvery")
	}
	max := pr.maxRate()
	for _, tt := range []sim.Duration{0, 5 * sim.Second, 30 * sim.Second, 61 * sim.Second, 90 * sim.Second} {
		r := pr.rateAt(tt)
		if r < 0 || r > max {
			t.Errorf("rateAt(%v) = %g outside [0, %g]", tt, r, max)
		}
	}
	if pr.rateAt(30*sim.Second) >= pr.rateAt(5*sim.Second) {
		t.Error("burst window does not raise the rate")
	}
}

func TestPickPriorityWeights(t *testing.T) {
	g := &Generator{p: Profile{PriorityWeights: [3]float64{1, 2, 1}}}
	cases := []struct {
		u    float64
		want cloud.Priority
	}{
		{0.0, cloud.PriorityLow},
		{0.2, cloud.PriorityLow},
		{0.3, cloud.PriorityNormal},
		{0.7, cloud.PriorityNormal},
		{0.8, cloud.PriorityHigh},
		{0.99, cloud.PriorityHigh},
	}
	for _, c := range cases {
		if got := g.pickPriority(c.u); got != c.want {
			t.Errorf("pickPriority(%g) = %v, want %v", c.u, got, c.want)
		}
	}
	// All-zero weights: everything is normal priority.
	g0 := &Generator{}
	if got := g0.pickPriority(0.01); got != cloud.PriorityNormal {
		t.Errorf("unweighted pickPriority = %v, want normal", got)
	}
}

// runTraffic builds a small testbed + frontend + generator, runs the
// profile to drain, and returns the generator, frontend, and a signature
// of the arrival sequence (submission time + priority per request).
func runTraffic(t *testing.T, seed int64, profile Profile) (*Generator, *cloud.Frontend, string) {
	t.Helper()
	tcfg := testbed.DefaultConfig()
	tcfg.Seed = seed
	tcfg.ImageBytes = 64 << 20
	tcfg.DiskSectors = 1 << 20
	tb := testbed.New(tcfg)
	c := cloud.NewController(tb, tcfg, 4)
	c.BootProfile.TotalBytes = 8 << 20
	c.BootProfile.CPUTime = 2 * sim.Second
	c.VMMConfig.WriteInterval = 2 * sim.Millisecond
	for _, n := range tb.Nodes {
		n.M.Firmware.InitTime = 2 * sim.Second
	}
	f := cloud.NewFrontend(c, cloud.AdmissionConfig{QueueLimit: 16, TokenRate: 4, TokenBurst: 4})
	g := NewGenerator(tb.K, f, tb.Metrics, profile)
	g.Start()
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if !g.stopped || g.active != 0 {
		t.Fatalf("traffic did not drain: stopped=%v active=%d", g.stopped, g.active)
	}
	var sig strings.Builder
	for _, r := range f.Requests() {
		fmt.Fprintf(&sig, "%d@%v:%v;", r.ID, r.SubmittedAt, r.Priority)
	}
	return g, f, sig.String()
}

// TestGeneratorDeterministicArrivals: the same seed and profile replay
// the identical arrival sequence, and every arrival is accounted for as
// completed, failed, or shed.
func TestGeneratorDeterministicArrivals(t *testing.T) {
	profile := Profile{
		Rate: 0.25, Duration: 60 * sim.Second, Hold: 5 * sim.Second,
		Deadline: 30 * sim.Second,
		BurstEvery: 30 * sim.Second, BurstFor: 8 * sim.Second, BurstFactor: 3,
		PriorityWeights: [3]float64{1, 2, 1},
	}
	g1, f1, sig1 := runTraffic(t, 11, profile)
	g2, _, sig2 := runTraffic(t, 11, profile)
	if sig1 != sig2 {
		t.Fatalf("same seed produced different arrivals:\n%s\n%s", sig1, sig2)
	}
	if g1.Generated.Value() == 0 {
		t.Fatal("no arrivals generated")
	}
	sum := g1.Completed.Value() + g1.Failed.Value() + g1.Shed.Value()
	if sum != g1.Generated.Value() {
		t.Fatalf("accounting: completed+failed+shed = %d, generated = %d", sum, g1.Generated.Value())
	}
	if g2.Generated.Value() != g1.Generated.Value() {
		t.Fatalf("generated differs across identical runs: %d vs %d",
			g1.Generated.Value(), g2.Generated.Value())
	}
	if int64(len(f1.Requests())) != g1.Generated.Value() {
		t.Fatalf("frontend saw %d requests, generator made %d", len(f1.Requests()), g1.Generated.Value())
	}
	// A different seed produces a different sequence (overwhelmingly).
	_, _, sig3 := runTraffic(t, 12, profile)
	if sig3 == sig1 {
		t.Fatal("different seeds produced identical arrival sequences")
	}
	// All machines end up back in the pool once traffic drains.
	if free := f1.Controller().FreeMachines(); free != 4 {
		t.Fatalf("free = %d after drain, want 4", free)
	}
}
